# Empty dependencies file for bench_raw_lookup.
# This may be replaced when dependencies are built.
