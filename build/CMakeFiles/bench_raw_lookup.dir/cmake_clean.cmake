file(REMOVE_RECURSE
  "CMakeFiles/bench_raw_lookup.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_raw_lookup.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_raw_lookup.dir/bench/bench_raw_lookup.cc.o"
  "CMakeFiles/bench_raw_lookup.dir/bench/bench_raw_lookup.cc.o.d"
  "bench/bench_raw_lookup"
  "bench/bench_raw_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raw_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
