file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_microflow.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_table2_microflow.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_table2_microflow.dir/bench/bench_table2_microflow.cc.o"
  "CMakeFiles/bench_table2_microflow.dir/bench/bench_table2_microflow.cc.o.d"
  "bench/bench_table2_microflow"
  "bench/bench_table2_microflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_microflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
