# Empty dependencies file for bench_table2_microflow.
# This may be replaced when dependencies are built.
