file(REMOVE_RECURSE
  "CMakeFiles/bench_bridge_compare.dir/bench/bench_bridge_compare.cc.o"
  "CMakeFiles/bench_bridge_compare.dir/bench/bench_bridge_compare.cc.o.d"
  "CMakeFiles/bench_bridge_compare.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_bridge_compare.dir/bench/bench_common.cc.o.d"
  "bench/bench_bridge_compare"
  "bench/bench_bridge_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bridge_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
