# Empty dependencies file for bench_bridge_compare.
# This may be replaced when dependencies are built.
