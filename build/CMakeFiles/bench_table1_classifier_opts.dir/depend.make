# Empty dependencies file for bench_table1_classifier_opts.
# This may be replaced when dependencies are built.
