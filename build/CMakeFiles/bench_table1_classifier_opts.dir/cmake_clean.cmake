file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_classifier_opts.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_table1_classifier_opts.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_table1_classifier_opts.dir/bench/bench_table1_classifier_opts.cc.o"
  "CMakeFiles/bench_table1_classifier_opts.dir/bench/bench_table1_classifier_opts.cc.o.d"
  "bench/bench_table1_classifier_opts"
  "bench/bench_table1_classifier_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_classifier_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
