# Empty dependencies file for bench_fig4_to_7_production.
# This may be replaced when dependencies are built.
