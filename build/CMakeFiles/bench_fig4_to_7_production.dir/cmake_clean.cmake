file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_to_7_production.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig4_to_7_production.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig4_to_7_production.dir/bench/bench_fig4_to_7_production.cc.o"
  "CMakeFiles/bench_fig4_to_7_production.dir/bench/bench_fig4_to_7_production.cc.o.d"
  "bench/bench_fig4_to_7_production"
  "bench/bench_fig4_to_7_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_to_7_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
