# Empty compiler generated dependencies file for bench_fig8_tuples_vs_rate.
# This may be replaced when dependencies are built.
