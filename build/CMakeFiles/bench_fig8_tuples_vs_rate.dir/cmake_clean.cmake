file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tuples_vs_rate.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig8_tuples_vs_rate.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig8_tuples_vs_rate.dir/bench/bench_fig8_tuples_vs_rate.cc.o"
  "CMakeFiles/bench_fig8_tuples_vs_rate.dir/bench/bench_fig8_tuples_vs_rate.cc.o.d"
  "bench/bench_fig8_tuples_vs_rate"
  "bench/bench_fig8_tuples_vs_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tuples_vs_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
