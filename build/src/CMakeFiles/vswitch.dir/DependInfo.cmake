
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/linux_bridge.cc" "src/CMakeFiles/vswitch.dir/baseline/linux_bridge.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/baseline/linux_bridge.cc.o.d"
  "/root/repo/src/classifier/classifier.cc" "src/CMakeFiles/vswitch.dir/classifier/classifier.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/classifier/classifier.cc.o.d"
  "/root/repo/src/datapath/datapath.cc" "src/CMakeFiles/vswitch.dir/datapath/datapath.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/datapath/datapath.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/CMakeFiles/vswitch.dir/net/fabric.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/net/fabric.cc.o.d"
  "/root/repo/src/ofproto/flow_parser.cc" "src/CMakeFiles/vswitch.dir/ofproto/flow_parser.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/ofproto/flow_parser.cc.o.d"
  "/root/repo/src/ofproto/flow_table.cc" "src/CMakeFiles/vswitch.dir/ofproto/flow_table.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/ofproto/flow_table.cc.o.d"
  "/root/repo/src/ofproto/mac_learning.cc" "src/CMakeFiles/vswitch.dir/ofproto/mac_learning.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/ofproto/mac_learning.cc.o.d"
  "/root/repo/src/ofproto/pipeline.cc" "src/CMakeFiles/vswitch.dir/ofproto/pipeline.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/ofproto/pipeline.cc.o.d"
  "/root/repo/src/packet/flow_key.cc" "src/CMakeFiles/vswitch.dir/packet/flow_key.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/packet/flow_key.cc.o.d"
  "/root/repo/src/packet/parser.cc" "src/CMakeFiles/vswitch.dir/packet/parser.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/packet/parser.cc.o.d"
  "/root/repo/src/sim/fleet.cc" "src/CMakeFiles/vswitch.dir/sim/fleet.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/sim/fleet.cc.o.d"
  "/root/repo/src/util/prefix_trie.cc" "src/CMakeFiles/vswitch.dir/util/prefix_trie.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/util/prefix_trie.cc.o.d"
  "/root/repo/src/vswitchd/config.cc" "src/CMakeFiles/vswitch.dir/vswitchd/config.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/vswitchd/config.cc.o.d"
  "/root/repo/src/vswitchd/switch.cc" "src/CMakeFiles/vswitch.dir/vswitchd/switch.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/vswitchd/switch.cc.o.d"
  "/root/repo/src/workload/table_gen.cc" "src/CMakeFiles/vswitch.dir/workload/table_gen.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/workload/table_gen.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/CMakeFiles/vswitch.dir/workload/workloads.cc.o" "gcc" "src/CMakeFiles/vswitch.dir/workload/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
