file(REMOVE_RECURSE
  "libvswitch.a"
)
