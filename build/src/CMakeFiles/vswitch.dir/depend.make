# Empty dependencies file for vswitch.
# This may be replaced when dependencies are built.
