file(REMOVE_RECURSE
  "CMakeFiles/example_port_scan_acl.dir/port_scan_acl.cc.o"
  "CMakeFiles/example_port_scan_acl.dir/port_scan_acl.cc.o.d"
  "example_port_scan_acl"
  "example_port_scan_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_port_scan_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
