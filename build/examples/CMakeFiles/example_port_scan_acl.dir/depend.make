# Empty dependencies file for example_port_scan_acl.
# This may be replaced when dependencies are built.
