# Empty compiler generated dependencies file for example_datacenter_fabric.
# This may be replaced when dependencies are built.
