file(REMOVE_RECURSE
  "CMakeFiles/example_datacenter_fabric.dir/datacenter_fabric.cc.o"
  "CMakeFiles/example_datacenter_fabric.dir/datacenter_fabric.cc.o.d"
  "example_datacenter_fabric"
  "example_datacenter_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datacenter_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
