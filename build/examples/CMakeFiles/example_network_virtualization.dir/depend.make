# Empty dependencies file for example_network_virtualization.
# This may be replaced when dependencies are built.
