file(REMOVE_RECURSE
  "CMakeFiles/example_network_virtualization.dir/network_virtualization.cc.o"
  "CMakeFiles/example_network_virtualization.dir/network_virtualization.cc.o.d"
  "example_network_virtualization"
  "example_network_virtualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
