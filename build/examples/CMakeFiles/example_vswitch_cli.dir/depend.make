# Empty dependencies file for example_vswitch_cli.
# This may be replaced when dependencies are built.
