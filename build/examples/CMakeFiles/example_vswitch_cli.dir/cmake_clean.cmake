file(REMOVE_RECURSE
  "CMakeFiles/example_vswitch_cli.dir/vswitch_cli.cc.o"
  "CMakeFiles/example_vswitch_cli.dir/vswitch_cli.cc.o.d"
  "example_vswitch_cli"
  "example_vswitch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vswitch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
