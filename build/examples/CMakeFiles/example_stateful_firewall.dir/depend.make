# Empty dependencies file for example_stateful_firewall.
# This may be replaced when dependencies are built.
