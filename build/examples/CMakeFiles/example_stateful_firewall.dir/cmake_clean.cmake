file(REMOVE_RECURSE
  "CMakeFiles/example_stateful_firewall.dir/stateful_firewall.cc.o"
  "CMakeFiles/example_stateful_firewall.dir/stateful_firewall.cc.o.d"
  "example_stateful_firewall"
  "example_stateful_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stateful_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
