file(REMOVE_RECURSE
  "CMakeFiles/example_mac_learning_switch.dir/mac_learning_switch.cc.o"
  "CMakeFiles/example_mac_learning_switch.dir/mac_learning_switch.cc.o.d"
  "example_mac_learning_switch"
  "example_mac_learning_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mac_learning_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
