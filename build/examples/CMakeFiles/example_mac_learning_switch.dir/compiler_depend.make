# Empty compiler generated dependencies file for example_mac_learning_switch.
# This may be replaced when dependencies are built.
