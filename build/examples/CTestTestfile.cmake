# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_datacenter_fabric "/root/repo/build/examples/example_datacenter_fabric")
set_tests_properties(example_datacenter_fabric PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mac_learning_switch "/root/repo/build/examples/example_mac_learning_switch")
set_tests_properties(example_mac_learning_switch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_virtualization "/root/repo/build/examples/example_network_virtualization")
set_tests_properties(example_network_virtualization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_port_scan_acl "/root/repo/build/examples/example_port_scan_acl")
set_tests_properties(example_port_scan_acl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stateful_firewall "/root/repo/build/examples/example_stateful_firewall")
set_tests_properties(example_stateful_firewall PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vswitch_cli "/root/repo/build/examples/example_vswitch_cli" "--demo")
set_tests_properties(example_vswitch_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
