
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bridge_test.cc" "tests/CMakeFiles/vswitch_tests.dir/bridge_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/bridge_test.cc.o.d"
  "/root/repo/tests/classifier_property_test.cc" "tests/CMakeFiles/vswitch_tests.dir/classifier_property_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/classifier_property_test.cc.o.d"
  "/root/repo/tests/classifier_test.cc" "tests/CMakeFiles/vswitch_tests.dir/classifier_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/classifier_test.cc.o.d"
  "/root/repo/tests/concurrent_emc_test.cc" "tests/CMakeFiles/vswitch_tests.dir/concurrent_emc_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/concurrent_emc_test.cc.o.d"
  "/root/repo/tests/config_test.cc" "tests/CMakeFiles/vswitch_tests.dir/config_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/config_test.cc.o.d"
  "/root/repo/tests/conntrack_test.cc" "tests/CMakeFiles/vswitch_tests.dir/conntrack_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/conntrack_test.cc.o.d"
  "/root/repo/tests/cuckoo_test.cc" "tests/CMakeFiles/vswitch_tests.dir/cuckoo_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/cuckoo_test.cc.o.d"
  "/root/repo/tests/datapath_test.cc" "tests/CMakeFiles/vswitch_tests.dir/datapath_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/datapath_test.cc.o.d"
  "/root/repo/tests/fabric_test.cc" "tests/CMakeFiles/vswitch_tests.dir/fabric_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/fabric_test.cc.o.d"
  "/root/repo/tests/field_zoo_test.cc" "tests/CMakeFiles/vswitch_tests.dir/field_zoo_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/field_zoo_test.cc.o.d"
  "/root/repo/tests/flat_hash_test.cc" "tests/CMakeFiles/vswitch_tests.dir/flat_hash_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/flat_hash_test.cc.o.d"
  "/root/repo/tests/fleet_test.cc" "tests/CMakeFiles/vswitch_tests.dir/fleet_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/fleet_test.cc.o.d"
  "/root/repo/tests/flow_key_test.cc" "tests/CMakeFiles/vswitch_tests.dir/flow_key_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/flow_key_test.cc.o.d"
  "/root/repo/tests/flow_parser_test.cc" "tests/CMakeFiles/vswitch_tests.dir/flow_parser_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/flow_parser_test.cc.o.d"
  "/root/repo/tests/flow_stats_test.cc" "tests/CMakeFiles/vswitch_tests.dir/flow_stats_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/flow_stats_test.cc.o.d"
  "/root/repo/tests/mac_learning_test.cc" "tests/CMakeFiles/vswitch_tests.dir/mac_learning_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/mac_learning_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/vswitch_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/vswitch_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/prefix_trie_test.cc" "tests/CMakeFiles/vswitch_tests.dir/prefix_trie_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/prefix_trie_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/vswitch_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/vswitch_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/switch_test.cc" "tests/CMakeFiles/vswitch_tests.dir/switch_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/switch_test.cc.o.d"
  "/root/repo/tests/wildcards_test.cc" "tests/CMakeFiles/vswitch_tests.dir/wildcards_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/wildcards_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/vswitch_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/vswitch_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vswitch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
