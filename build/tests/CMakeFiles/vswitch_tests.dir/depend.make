# Empty dependencies file for vswitch_tests.
# This may be replaced when dependencies are built.
