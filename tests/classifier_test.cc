// Unit tests for the tuple space search classifier (paper §3.2, §5).
#include "classifier/classifier.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ovs {
namespace {

using testutil::RuleSet;
using testutil::TestRule;

FlowKey tcp_packet(Ipv4 dst, uint16_t sport, uint16_t dport) {
  FlowKey k;
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  k.set_nw_src(Ipv4(1, 2, 3, 4));
  k.set_nw_dst(dst);
  k.set_tp_src(sport);
  k.set_tp_dst(dport);
  return k;
}

TEST(ClassifierTest, EmptyLookupReturnsNull) {
  Classifier c;
  FlowKey k;
  EXPECT_EQ(c.lookup(k), nullptr);
  EXPECT_EQ(c.rule_count(), 0u);
  EXPECT_EQ(c.tuple_count(), 0u);
}

TEST(ClassifierTest, ExactMatchBasics) {
  RuleSet rs;
  TestRule* r = rs.add(MatchBuilder().ip().nw_dst(Ipv4(9, 1, 1, 1)), 10, 1);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(9, 1, 1, 1), 1, 2)), r);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(9, 1, 1, 2), 1, 2)),
            nullptr);
}

TEST(ClassifierTest, OneTuplePerUniqueMask) {
  RuleSet rs;
  // Two rules with the same mask share a tuple; a third mask adds one.
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(1, 1, 1, 1)), 1);
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(2, 2, 2, 2)), 1);
  EXPECT_EQ(rs.classifier().tuple_count(), 1u);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(3, 0, 0, 0), 8), 1);
  EXPECT_EQ(rs.classifier().tuple_count(), 2u);
  EXPECT_EQ(rs.classifier().rule_count(), 3u);
}

TEST(ClassifierTest, HighestPriorityWinsAcrossTuples) {
  RuleSet rs;
  TestRule* lo = rs.add(MatchBuilder().ip(), 1, 1);
  TestRule* hi =
      rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 1, 1, 0), 24), 7, 2);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(9, 1, 1, 5), 1, 2)), hi);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(8, 0, 0, 1), 1, 2)), lo);
}

TEST(ClassifierTest, SameKeyDifferentPrioritiesChained) {
  RuleSet rs;
  TestRule* lo = rs.add(MatchBuilder().ip().nw_dst(Ipv4(5, 5, 5, 5)), 1, 1);
  TestRule* hi = rs.add(MatchBuilder().ip().nw_dst(Ipv4(5, 5, 5, 5)), 9, 2);
  TestRule* mid = rs.add(MatchBuilder().ip().nw_dst(Ipv4(5, 5, 5, 5)), 5, 3);
  EXPECT_EQ(rs.classifier().rule_count(), 3u);
  EXPECT_EQ(rs.classifier().tuple_count(), 1u);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(5, 5, 5, 5), 1, 2)), hi);
  rs.remove(hi);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(5, 5, 5, 5), 1, 2)), mid);
  rs.remove(mid);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(5, 5, 5, 5), 1, 2)), lo);
}

TEST(ClassifierTest, FindExact) {
  RuleSet rs;
  Match m = MatchBuilder().ip().nw_dst(Ipv4(5, 5, 5, 5));
  TestRule* r = rs.add(m, 5, 1);
  EXPECT_EQ(rs.classifier().find_exact(m, 5), r);
  EXPECT_EQ(rs.classifier().find_exact(m, 6), nullptr);
  Match other = MatchBuilder().ip().nw_dst(Ipv4(5, 5, 5, 6));
  EXPECT_EQ(rs.classifier().find_exact(other, 5), nullptr);
}

TEST(ClassifierTest, RemoveEmptiesTuple) {
  RuleSet rs;
  TestRule* r = rs.add(MatchBuilder().ip().nw_dst(Ipv4(1, 1, 1, 1)), 1);
  EXPECT_EQ(rs.classifier().tuple_count(), 1u);
  rs.remove(r);
  EXPECT_EQ(rs.classifier().tuple_count(), 0u);
  EXPECT_EQ(rs.classifier().rule_count(), 0u);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(1, 1, 1, 1), 1, 2)),
            nullptr);
}

TEST(ClassifierTest, CatchAllRuleMatchesEverything) {
  RuleSet rs;
  TestRule* all = rs.add(Match{}, 0, 1);
  FlowKey anything;
  anything.set_eth_type(0x1234);
  EXPECT_EQ(rs.classifier().lookup(anything), all);
}

// --- Priority sorting (§5.2) -----------------------------------------------

TEST(ClassifierTest, PrioritySortingTerminatesEarly) {
  ClassifierConfig cfg;
  cfg.staged_lookup = false;
  cfg.prefix_tracking = false;
  cfg.port_prefix_tracking = false;
  RuleSet rs(cfg);
  // Tuple A: pri 100 (matches). Tuple B: pri_max 10. Tuple C: pri_max 5.
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(9, 9, 9, 9)), 100, 1);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8), 10, 2);
  rs.add(MatchBuilder().ip().nw_src_prefix(Ipv4(0, 0, 0, 0), 0), 5, 3);

  rs.classifier().reset_stats();
  const Rule* r = rs.classifier().lookup(tcp_packet(Ipv4(9, 9, 9, 9), 1, 2));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 1);
  // Only the first (highest pri_max) tuple may be searched.
  EXPECT_EQ(rs.classifier().stats().tuples_searched, 1u);
}

TEST(ClassifierTest, NoPrioritySortingSearchesAllTuples) {
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  RuleSet rs(cfg);
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(9, 9, 9, 9)), 100, 1);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8), 10, 2);
  rs.add(MatchBuilder().ip().nw_src_prefix(Ipv4(0, 0, 0, 0), 0), 5, 3);

  rs.classifier().reset_stats();
  const Rule* r = rs.classifier().lookup(tcp_packet(Ipv4(9, 9, 9, 9), 1, 2));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 1);  // still correct result
  EXPECT_EQ(rs.classifier().stats().tuples_searched, 3u);
}

TEST(ClassifierTest, PrioritySortingStillFindsLowerPriorityMatch) {
  RuleSet rs;
  TestRule* lo =
      rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(8, 0, 0, 0), 8), 1, 1);
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(9, 9, 9, 9)), 100, 2);
  EXPECT_EQ(rs.classifier().lookup(tcp_packet(Ipv4(8, 1, 1, 1), 1, 2)), lo);
}

// --- Partitioning (§5.5) ----------------------------------------------------

TEST(ClassifierTest, MetadataPartitionSkipsTuples) {
  ClassifierConfig cfg;
  cfg.staged_lookup = false;  // isolate partitioning
  RuleSet rs(cfg);
  // Pipeline-stage style rules: exact metadata + L4 match. The metadata=2
  // tuple gets the higher priority so priority sorting visits it first and
  // the partition check — not early termination — must skip it.
  rs.add(MatchBuilder().metadata(1).tcp().tp_dst(80), 10, 1);
  rs.add(MatchBuilder().metadata(2).tcp().tp_src(22), 20, 2);

  FlowKey pkt = tcp_packet(Ipv4(9, 9, 9, 9), 5, 80);
  pkt.set_metadata(1);
  rs.classifier().reset_stats();
  const Rule* r = rs.classifier().lookup(pkt);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 1);
  // The metadata=2 tuple must be skipped without a hash probe.
  EXPECT_EQ(rs.classifier().stats().tuples_searched, 1u);
  EXPECT_EQ(rs.classifier().stats().tuples_skipped, 1u);
}

TEST(ClassifierTest, PartitionSkipUnwildcardsMetadata) {
  ClassifierConfig cfg;
  cfg.staged_lookup = false;
  RuleSet rs(cfg);
  rs.add(MatchBuilder().metadata(2).tcp().tp_src(22), 10, 1);
  FlowKey pkt = tcp_packet(Ipv4(9, 9, 9, 9), 22, 80);
  pkt.set_metadata(1);
  FlowWildcards wc;
  EXPECT_EQ(rs.classifier().lookup(pkt, &wc), nullptr);
  // The skip decision depended on metadata, so it must appear in the mask.
  EXPECT_TRUE(wc.is_exact(FieldId::kMetadata));
  // And because of the skip, L4 must stay wildcarded.
  EXPECT_FALSE(wc.has_field(FieldId::kTpSrc));
}

// --- first_match_only (megaflow-cache mode, §4.2) ---------------------------

TEST(ClassifierTest, FirstMatchOnlyTerminatesOnAnyMatch) {
  ClassifierConfig cfg;
  cfg.first_match_only = true;
  RuleSet rs(cfg);
  // Disjoint entries, as userspace installs them into the megaflow cache.
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(1, 1, 1, 1)), 0, 1);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(2, 0, 0, 0), 8), 0, 2);
  rs.add(MatchBuilder().arp(), 0, 3);

  const Rule* r = rs.classifier().lookup(tcp_packet(Ipv4(2, 5, 5, 5), 1, 2));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 2);
}

// --- Update characteristics -------------------------------------------------

TEST(ClassifierTest, UpdatesAreCheapManyRules) {
  // O(1) updates (§3.2): inserting 100k rules into one tuple must not blow
  // up; this is a smoke test that also exercises table growth.
  RuleSet rs;
  for (uint32_t i = 0; i < 100000; ++i)
    rs.add(MatchBuilder().ip().nw_dst(Ipv4(i | 0x0a000000u)), 1, (int)i);
  EXPECT_EQ(rs.classifier().rule_count(), 100000u);
  EXPECT_EQ(rs.classifier().tuple_count(), 1u);
  const Rule* r =
      rs.classifier().lookup(tcp_packet(Ipv4(0x0a000000u | 77777), 1, 2));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 77777);
}

TEST(ClassifierTest, ForEachRuleVisitsAll) {
  RuleSet rs;
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(1, 1, 1, 1)), 1, 1);
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(1, 1, 1, 1)), 2, 2);  // same key
  rs.add(MatchBuilder().arp(), 3, 3);
  int count = 0, id_sum = 0;
  rs.classifier().for_each_rule([&](const Rule* r) {
    ++count;
    id_sum += static_cast<const TestRule*>(r)->id;
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(id_sum, 6);
}

}  // namespace
}  // namespace ovs
