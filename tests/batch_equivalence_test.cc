// Property test: Datapath::process_batch is observably identical to calling
// receive() per packet — same per-packet path and actions, same upcall queue,
// same per-entry statistics, same datapath counters — across randomized
// workloads and every cache-flag combination. The only licensed divergence
// is the cumulative tuples_searched counter: deduplicated burst followers
// never physically probe a table.
#include <gtest/gtest.h>

#include <vector>

#include "datapath/datapath.h"
#include "packet/match.h"
#include "test_util.h"
#include "util/rng.h"

namespace ovs {
namespace {

using testutil::dp_tcp_pkt;

// Installs the same K /8 megaflows into both datapaths; dsts 10.x–(10+K-1).x
// are covered, anything above misses.
void fill(Datapath& dp, int k) {
  for (int i = 0; i < k; ++i) {
    dp.install(MatchBuilder().ip().nw_dst_prefix(
                   Ipv4(uint8_t(10 + i), 0, 0, 0), 8),
               DpActions().output(uint32_t(i + 1)), 0);
  }
}

// A workload mixing repeated microflows (intra-burst dedup), distinct
// microflows sharing megaflows (group stats), and uncovered dsts (misses).
std::vector<Packet> random_workload(Rng& rng, size_t n, int k) {
  std::vector<Packet> pkts;
  pkts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint8_t oct = uint8_t(10 + rng.uniform(size_t(k) + 2));
    pkts.push_back(dp_tcp_pkt(Ipv4(oct, uint8_t(rng.uniform(3)), 0, 1),
                              uint16_t(rng.uniform(6)), 80));
  }
  return pkts;
}

void expect_equivalent(Datapath& seq, Datapath& bat,
                       const std::vector<Packet>& pkts, size_t batch_size,
                       uint64_t t0) {
  // Sequential reference: one receive() per packet.
  std::vector<Datapath::RxResult> want;
  want.reserve(pkts.size());
  uint64_t now = t0;
  for (size_t off = 0; off < pkts.size(); off += batch_size) {
    const size_t n = std::min(batch_size, pkts.size() - off);
    for (size_t i = 0; i < n; ++i) want.push_back(seq.receive(pkts[off + i], now));
    now += 1000;
  }

  // Batched run over the same virtual timestamps.
  std::vector<Datapath::RxResult> got(pkts.size());
  now = t0;
  for (size_t off = 0; off < pkts.size(); off += batch_size) {
    const size_t n = std::min(batch_size, pkts.size() - off);
    bat.process_batch(std::span<const Packet>(pkts.data() + off, n), now,
                      got.data() + off);
    now += 1000;
  }

  for (size_t i = 0; i < pkts.size(); ++i) {
    EXPECT_EQ(got[i].path, want[i].path) << "packet " << i;
    const bool want_null = want[i].actions == nullptr;
    const bool got_null = got[i].actions == nullptr;
    ASSERT_EQ(got_null, want_null) << "packet " << i;
    if (!want_null) {
      EXPECT_EQ(got[i].actions->to_string(), want[i].actions->to_string())
          << "packet " << i;
    }
  }

  // Upcall queues: same packets in the same order.
  auto uq_s = seq.take_upcalls(pkts.size() + 1);
  auto uq_b = bat.take_upcalls(pkts.size() + 1);
  ASSERT_EQ(uq_b.size(), uq_s.size());
  for (size_t i = 0; i < uq_s.size(); ++i)
    EXPECT_EQ(uq_b[i].key, uq_s[i].key) << "upcall " << i;

  // Per-entry statistics (same install order => same dump order).
  auto es = seq.dump();
  auto eb = bat.dump();
  ASSERT_EQ(eb.size(), es.size());
  for (size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(eb[i]->packets(), es[i]->packets()) << "entry " << i;
    EXPECT_EQ(eb[i]->bytes(), es[i]->bytes()) << "entry " << i;
    EXPECT_EQ(eb[i]->used_ns(), es[i]->used_ns()) << "entry " << i;
  }

  // Datapath counters, minus the licensed tuples_searched divergence.
  const auto ss = seq.stats();
  const auto sb = bat.stats();
  EXPECT_EQ(sb.packets, ss.packets);
  EXPECT_EQ(sb.microflow_hits, ss.microflow_hits);
  EXPECT_EQ(sb.megaflow_hits, ss.megaflow_hits);
  EXPECT_EQ(sb.misses, ss.misses);
  EXPECT_EQ(sb.upcall_drops, ss.upcall_drops);
  EXPECT_EQ(sb.stale_microflow_hits, ss.stale_microflow_hits);
}

class BatchEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, bool, size_t>> {};

TEST_P(BatchEquivalence, RandomWorkloads) {
  const auto [microflow, concurrent_emc, batch_size] = GetParam();
  DatapathConfig cfg;
  cfg.microflow_enabled = microflow;
  cfg.use_concurrent_emc = concurrent_emc;

  for (uint64_t seed : {0x1ull, 0xBEEFull, 0x5EEDull}) {
    Datapath seq(cfg), bat(cfg);
    fill(seq, 6);
    fill(bat, 6);
    Rng rng(seed);
    const auto pkts = random_workload(rng, 400, 6);
    expect_equivalent(seq, bat, pkts, batch_size, /*t0=*/1000);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FlagMatrix, BatchEquivalence,
    ::testing::Combine(::testing::Bool(),          // microflow_enabled
                       ::testing::Bool(),          // use_concurrent_emc
                       ::testing::Values<size_t>(1, 8, 32, 128, 300)));

// Removal mid-stream: batches must see the same stale-EMC corrections the
// sequential path sees.
TEST(BatchEquivalenceTest, RemovalStaleness) {
  for (bool cemc : {false, true}) {
    DatapathConfig cfg;
    cfg.use_concurrent_emc = cemc;
    Datapath seq(cfg), bat(cfg);
    fill(seq, 2);
    fill(bat, 2);

    Rng rng(0xDEAD);
    auto warm = random_workload(rng, 64, 2);
    expect_equivalent(seq, bat, warm, 16, 1000);

    // Remove the first megaflow from both; EMC entries become stale.
    seq.remove(seq.dump()[0]);
    bat.remove(bat.dump()[0]);

    Rng rng2(0xDEAD);
    auto after = random_workload(rng2, 64, 2);
    expect_equivalent(seq, bat, after, 16, 200000);

    seq.purge_dead();
    bat.purge_dead();
    Rng rng3(0xF00D);
    auto post_purge = random_workload(rng3, 64, 2);
    expect_equivalent(seq, bat, post_purge, 16, 400000);
  }
}

}  // namespace
}  // namespace ovs
