// Megaflow invariant checker tests (datapath/dp_check.h): targeted
// violations are detected and quarantined, healthy caches pass, and — the
// property test — every randomized table_gen workload the switch can
// produce keeps the datapath disjoint, EMC-coherent, and stats-conserving
// on both backends.
#include "datapath/dp_check.h"

#include <gtest/gtest.h>

#include <string>

#include "datapath/dp_backend.h"
#include "sim/clock.h"
#include "util/rng.h"
#include "vswitchd/switch.h"
#include "workload/table_gen.h"

namespace ovs {
namespace {

void expect_clean(const Switch& sw, const std::string& context) {
  const DpCheckReport r = run_dp_check(sw.backend());
  EXPECT_TRUE(r.ok()) << context << ": overlaps=" << r.overlap_violations
                      << " dups=" << r.duplicate_keys
                      << " emc_dangling=" << r.emc_dangling_hints
                      << " stats=" << r.stats_violations
                      << (r.details.empty() ? "" : "; " + r.details[0]);
  EXPECT_EQ(r.flows_checked, sw.backend().flow_count());
}

// --- Targeted violations ----------------------------------------------------

TEST(DpCheckTest, EmptyAndSingleFlowCachesPass) {
  SingleDpBackend be{DatapathConfig{}};
  EXPECT_TRUE(run_dp_check(be).ok());
  be.install(MatchBuilder().ip(), DpActions().output(2), 0);
  const DpCheckReport r = run_dp_check(be);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.flows_checked, 1u);
}

TEST(DpCheckTest, DetectsCrossMaskOverlapAndQuarantinesLaterEntry) {
  SingleDpBackend be{DatapathConfig{}};
  // Entry A: ip dst 9/8. Entry B: any tcp. A tcp packet to 9.x matches
  // both, and the actions differ — exactly the misdelivery the kernel's
  // first-match semantics cannot tolerate.
  DpBackend::FlowRef a = be.install(
      MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8),
      DpActions().output(2), 0);
  DpBackend::FlowRef b =
      be.install(MatchBuilder().tcp(), DpActions().output(3), 0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  DpCheckReport r = run_dp_check(be);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.overlap_violations, 1u);
  ASSERT_EQ(r.quarantine.size(), 1u);
  EXPECT_EQ(r.quarantine[0], b);  // the later entry of the pair goes

  EXPECT_EQ(quarantine_flows(be, r), 1u);
  EXPECT_EQ(be.flow_count(), 1u);
  EXPECT_TRUE(run_dp_check(be).ok());
}

TEST(DpCheckTest, BenignOverlapIsCountedButNotQuarantined) {
  SingleDpBackend be{DatapathConfig{}};
  be.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8),
             DpActions().output(2), 0);
  be.install(MatchBuilder().tcp(), DpActions().output(2), 0);

  const DpCheckReport r = run_dp_check(be);
  EXPECT_TRUE(r.ok());  // same actions cannot misdeliver
  EXPECT_EQ(r.benign_overlaps, 1u);
  EXPECT_TRUE(r.quarantine.empty());

  DpCheckConfig strict;
  strict.quarantine_benign_overlaps = true;
  const DpCheckReport rs = run_dp_check(be, strict);
  EXPECT_EQ(rs.benign_overlaps, 1u);
  EXPECT_EQ(rs.quarantine.size(), 1u);
}

TEST(DpCheckTest, OverlapDetectionWorksOnShardedBackend) {
  ShardedDatapathConfig cfg;
  cfg.n_workers = 2;
  MtDpBackend be{cfg};
  be.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8),
             DpActions().output(2), 0);
  be.install(MatchBuilder().tcp(), DpActions().output(3), 0);
  const DpCheckReport r = run_dp_check(be);
  EXPECT_EQ(r.overlap_violations, 1u);
  EXPECT_EQ(quarantine_flows(be, r), 1u);
  EXPECT_TRUE(run_dp_check(be).ok());
}

TEST(DpCheckTest, DisjointEntriesPassMaskPairProbing) {
  SingleDpBackend be{DatapathConfig{}};
  // Different masks whose regions cannot intersect: both constrain nw_dst
  // in their common mask to different values.
  be.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8),
             DpActions().output(2), 0);
  be.install(MatchBuilder().tcp().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8),
             DpActions().output(3), 0);
  const DpCheckReport r = run_dp_check(be);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.benign_overlaps, 0u);
  EXPECT_GE(r.mask_pairs_checked, 1u);
}

// --- Offload shadow coherence (DESIGN.md §13) -------------------------------

// Three mutation classes mirror OffloadTable::Corruption: a stale action
// snapshot, a slot whose owner is gone, and an inflated hit counter. The
// checker must catch each, and flushing the flagged slots must restore a
// clean report without touching the megaflows themselves.
class DpCheckOffloadTest : public ::testing::Test {
 protected:
  DpCheckOffloadTest() : be_([] {
    DatapathConfig cfg;
    cfg.offload_slots = 8;
    return cfg;
  }()) {
    a_ = be_.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8),
                     DpActions().output(2), 0);
    b_ = be_.install(MatchBuilder().tcp().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8),
                     DpActions().output(3), 0);
    EXPECT_TRUE(be_.offload_install(a_, 0));
    EXPECT_TRUE(be_.offload_install(b_, 0));
  }

  void expect_caught(uint64_t DpCheckReport::*field) {
    DpCheckReport r = run_dp_check(be_);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.*field, 1u);
    EXPECT_EQ(r.offload_flush.size(), 1u);
    EXPECT_TRUE(r.quarantine.empty());  // repair is slot flush, not delete
    quarantine_flows(be_, r);
    EXPECT_EQ(be_.flow_count(), 2u);
    EXPECT_EQ(be_.offload_size(), 1u);
    EXPECT_TRUE(run_dp_check(be_).ok());
  }

  SingleDpBackend be_;
  DpBackend::FlowRef a_ = nullptr;
  DpBackend::FlowRef b_ = nullptr;
};

TEST_F(DpCheckOffloadTest, CoherentSlotsPass) {
  const DpCheckReport r = run_dp_check(be_);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.offload_checked, 2u);
}

TEST_F(DpCheckOffloadTest, CatchesStaleActionSnapshot) {
  ASSERT_TRUE(be_.offload_corrupt(0, OffloadTable::Corruption::kStaleActions));
  expect_caught(&DpCheckReport::offload_stale_actions);
}

TEST_F(DpCheckOffloadTest, CatchesDanglingSlotAfterMegaflowDelete) {
  // Bypass the backend's auto-evict (remove() would flush the slot) with the
  // targeted corruption, modeling a reconciliation bug that re-keys a slot
  // to a dead owner.
  ASSERT_TRUE(be_.offload_corrupt(0, OffloadTable::Corruption::kOrphanSlot));
  expect_caught(&DpCheckReport::offload_dangling);
}

TEST_F(DpCheckOffloadTest, CatchesInflatedHitCounter) {
  ASSERT_TRUE(be_.offload_corrupt(0, OffloadTable::Corruption::kInflateHits));
  expect_caught(&DpCheckReport::offload_stat_violations);
}

TEST_F(DpCheckOffloadTest, BackendRemoveKeepsSlotsCoherent) {
  // The non-bypassed path: remove() auto-evicts the owner's slot, so no
  // dangling slot survives for the checker to find.
  be_.remove(a_);
  be_.purge_dead();
  EXPECT_EQ(be_.offload_size(), 1u);
  EXPECT_TRUE(run_dp_check(be_).ok());
}

TEST(DpCheckOffloadShardedTest, CatchesCorruptionOnShardedBackend) {
  ShardedDatapathConfig cfg;
  cfg.n_workers = 2;
  cfg.offload_slots = 8;
  MtDpBackend be{cfg};
  DpBackend::FlowRef f = be.install(
      MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8),
      DpActions().output(2), 0);
  ASSERT_TRUE(be.offload_install(f, 0));
  be.offload_commit();
  ASSERT_TRUE(be.offload_corrupt(0, OffloadTable::Corruption::kStaleActions));
  DpCheckReport r = run_dp_check(be);
  EXPECT_EQ(r.offload_stale_actions, 1u);
  quarantine_flows(be, r);
  EXPECT_EQ(be.offload_size(), 0u);
  EXPECT_TRUE(run_dp_check(be).ok());
}

// --- Property test: randomized workloads keep the invariant -----------------

// Drives a tenant workload from the table_gen NVP pipeline (randomized
// topology, ACL mix, and traffic) and asserts the checker passes at every
// maintenance boundary and at the end. Megaflow disjointness is a
// *construction* property of translation + wildcard tracking (§5); this is
// the regression net under it.
void run_nvp_property(uint64_t seed, size_t workers) {
  SwitchConfig cfg;
  cfg.datapath_workers = workers;
  Switch sw(cfg);
  NvpConfig nvp;
  nvp.n_tenants = 3;
  nvp.vms_per_tenant = 4;
  nvp.acl_tenant_fraction = 0.6;
  nvp.stateful_acl_tenants = true;
  nvp.seed = seed;
  const NvpTopology topo = install_nvp_pipeline(sw, nvp);

  Rng rng(seed ^ 0xD15C);
  VirtualClock clock;
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 150; ++i) {
      const NvpVm& a = topo.vms[rng.uniform(topo.vms.size())];
      const auto peers = topo.tenant_vms(a.tenant);
      const NvpVm& b = *peers[rng.uniform(peers.size())];
      sw.inject(nvp_packet(a, b, static_cast<uint16_t>(
                                     rng.range(1024, 60000)),
                           static_cast<uint16_t>(
                               rng.chance(0.3) ? 22 : 80),
                           rng.chance(0.9) ? ipproto::kTcp : ipproto::kUdp),
                clock.now());
      if ((i & 31) == 31) sw.handle_upcalls(clock.now());
    }
    sw.handle_upcalls(clock.now());
    clock.advance(200 * kMillisecond);
    if (round % 4 == 3) {
      sw.run_maintenance(clock.now());
      expect_clean(sw, "seed " + std::to_string(seed) + " round " +
                           std::to_string(round));
    }
  }
  ASSERT_GT(sw.backend().flow_count(), 0u);
  expect_clean(sw, "seed " + std::to_string(seed) + " final");
}

TEST(DpCheckPropertyTest, RandomizedNvpWorkloadsStayDisjointSingle) {
  for (uint64_t seed : {11ull, 29ull, 47ull}) run_nvp_property(seed, 0);
}

TEST(DpCheckPropertyTest, RandomizedNvpWorkloadsStayDisjointSharded) {
  for (uint64_t seed : {11ull, 29ull}) run_nvp_property(seed, 4);
}

// After a crash/restart cycle the reconciled cache must still satisfy the
// invariant (restart() itself gates on this; the external check makes the
// property visible to the test suite).
TEST(DpCheckPropertyTest, InvariantHoldsAcrossCrashAndReconcile) {
  SwitchConfig cfg;
  Switch sw(cfg);
  NvpConfig nvp;
  nvp.seed = 99;
  const NvpTopology topo = install_nvp_pipeline(sw, nvp);

  Rng rng(0xC4A5);
  VirtualClock clock;
  auto drive = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < 100; ++i) {
        const NvpVm& a = topo.vms[rng.uniform(topo.vms.size())];
        const auto peers = topo.tenant_vms(a.tenant);
        const NvpVm& b = *peers[rng.uniform(peers.size())];
        sw.inject(nvp_packet(a, b,
                             static_cast<uint16_t>(rng.range(1024, 60000)),
                             80),
                  clock.now());
      }
      sw.handle_upcalls(clock.now());
      clock.advance(100 * kMillisecond);
    }
  };
  drive(6);
  ASSERT_GT(sw.backend().flow_count(), 0u);
  expect_clean(sw, "pre-crash");

  sw.crash();
  ASSERT_NE(sw.lifecycle(), LifecycleState::kServing);
  clock.advance(kSecond);
  ASSERT_TRUE(sw.restart(clock.now()));
  expect_clean(sw, "post-reconcile");
  drive(3);
  expect_clean(sw, "post-recovery traffic");
}

}  // namespace
}  // namespace ovs
