// Tests for workload and table generators.
#include "workload/workloads.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/table_gen.h"

namespace ovs {
namespace {

TEST(TcpCrrTest, TransactionShape) {
  TcpCrrWorkload::Config cfg;
  TcpCrrWorkload crr(cfg);
  auto pkts = crr.next_transaction();
  ASSERT_EQ(pkts.size(), TcpCrrWorkload::kPacketsPerTransaction);
  // SYN first, from the client.
  EXPECT_EQ(pkts[0].key.tcp_flags(), 0x002);
  EXPECT_EQ(pkts[0].key.in_port(), cfg.client_port);
  EXPECT_EQ(pkts[0].key.nw_dst(), cfg.server_ip);
  // SYN-ACK from the server side.
  EXPECT_EQ(pkts[1].key.in_port(), cfg.server_port);
  EXPECT_EQ(pkts[1].key.nw_src(), cfg.server_ip);
  // All client-side packets of one transaction share the ephemeral port.
  const uint16_t eph = pkts[0].key.tp_src();
  EXPECT_GE(eph, 32768);
  EXPECT_EQ(pkts[2].key.tp_src(), eph);
  EXPECT_EQ(pkts[1].key.tp_dst(), eph);
}

TEST(TcpCrrTest, FreshPortPerTransaction) {
  TcpCrrWorkload::Config cfg;
  cfg.sessions = 3;
  TcpCrrWorkload crr(cfg);
  std::set<uint16_t> ports;
  for (int i = 0; i < 30; ++i) {
    auto pkts = crr.next_transaction();
    ports.insert(pkts[0].key.tp_src());
  }
  EXPECT_EQ(ports.size(), 30u) << "every transaction must be a new microflow";
  EXPECT_EQ(crr.transactions(), 30u);
}

TEST(PortScanTest, SweepsPorts) {
  PortScanWorkload scan(PortScanWorkload::Config{});
  Packet a = scan.next();
  Packet b = scan.next();
  EXPECT_EQ(a.key.tp_dst() + 1, b.key.tp_dst());
  EXPECT_EQ(a.key.nw_dst(), b.key.nw_dst());
  EXPECT_EQ(a.key.tp_src(), b.key.tp_src());
}

TEST(LongLivedFlowsTest, DrawsFromFixedSet) {
  LongLivedFlowsWorkload::Config cfg;
  cfg.n_flows = 10;
  LongLivedFlowsWorkload w(cfg);
  std::set<uint32_t> srcs;
  for (int i = 0; i < 500; ++i) srcs.insert(w.next().key.nw_src().value());
  EXPECT_LE(srcs.size(), 10u);
  EXPECT_GT(srcs.size(), 5u);  // Zipf still touches most of a small set
}

TEST(SkewSamplerTest, SeedDeterminism) {
  // Same (n, s, seed) -> identical draw sequence, run to run and across
  // separately constructed samplers. Fleet fingerprints and bench baselines
  // (bench_offload's off-mode identity gate in particular) rely on this.
  SkewSampler a(4096, 1.1);
  SkewSampler b(4096, 1.1);
  Rng ra(99), rb(99);
  for (int i = 0; i < 4096; ++i) ASSERT_EQ(a.sample(ra), b.sample(rb));

  // The uniform arm (s = 0) consumes exactly one Rng draw per sample, like
  // the Zipf arm, so toggling skew never shifts downstream draw positions.
  SkewSampler u(4096, 0.0);
  Rng ru1(7), ru2(7);
  for (int i = 0; i < 1024; ++i) u.sample(ru1);
  for (int i = 0; i < 1024; ++i) ru2.next();
  EXPECT_EQ(ru1.next(), ru2.next());
}

TEST(SkewSamplerTest, SkewConcentratesMass) {
  // Zipf with s > 1 puts most draws on the head ranks; uniform does not.
  // (Coarse sanity, not a distribution test — the sampler is deterministic.)
  Rng rng(3);
  SkewSampler zipf(1000, 1.3);
  size_t zipf_head = 0;
  for (int i = 0; i < 20000; ++i) zipf_head += zipf.sample(rng) < 10;
  SkewSampler flat(1000, 0.0);
  size_t flat_head = 0;
  for (int i = 0; i < 20000; ++i) flat_head += flat.sample(rng) < 10;
  EXPECT_GT(zipf_head, 20000u / 4);   // head-heavy
  EXPECT_LT(flat_head, 20000u / 20);  // ~1% of draws
  // Every index stays in range even at the CDF tail.
  for (int i = 0; i < 1000; ++i) ASSERT_LT(zipf.sample(rng), zipf.size());
}

TEST(LongLivedFlowsTest, SeedDeterminism) {
  LongLivedFlowsWorkload::Config cfg;
  cfg.n_flows = 64;
  cfg.seed = 123;
  LongLivedFlowsWorkload w1(cfg), w2(cfg);
  for (int i = 0; i < 512; ++i)
    ASSERT_EQ(w1.next().key.nw_src().value(), w2.next().key.nw_src().value());
}

TEST(TableGenTest, PaperTableSemantics) {
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);
  install_paper_microbench_table(sw, 2);
  EXPECT_EQ(sw.table(0).flow_count(), 4u);

  // ARP beats everything.
  FlowKey arp;
  arp.set_in_port(1);
  arp.set_eth_type(ethertype::kArp);
  auto xr = sw.pipeline().translate(arp, 0);
  EXPECT_EQ(xr.actions.to_string(), "output:2");

  // The ACL flow matches only the exact triple.
  FlowKey acl;
  acl.set_in_port(1);
  acl.set_eth_type(ethertype::kIpv4);
  acl.set_nw_proto(ipproto::kTcp);
  acl.set_nw_dst(Ipv4(9, 1, 1, 1));
  acl.set_tp_src(10);
  acl.set_tp_dst(10);
  EXPECT_FALSE(sw.pipeline().translate(acl, 0).actions.drops());
}

class NvpPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.n_tenants = 2;
    cfg_.vms_per_tenant = 2;
    cfg_.acl_tenant_fraction = 0.5;  // tenant 1 has ACLs, tenant 2 not
    cfg_.acls_per_tenant = 2;
    topo_ = install_nvp_pipeline(sw_, cfg_);
  }
  Switch sw_;
  NvpConfig cfg_;
  NvpTopology topo_;
};

TEST_F(NvpPipelineTest, IntraTenantForwarding) {
  auto t1 = topo_.tenant_vms(1);
  ASSERT_EQ(t1.size(), 2u);
  Packet p = nvp_packet(*t1[0], *t1[1], 50000, 80);
  auto xr = sw_.pipeline().translate(p.key, 0);
  EXPECT_EQ(xr.actions.to_string(),
            "set(metadata=1),set(reg1=" + std::to_string(t1[1]->port) +
                "),output:" + std::to_string(t1[1]->port));
  EXPECT_EQ(xr.table_lookups, 4u);
}

TEST_F(NvpPipelineTest, TenantsAreIsolated) {
  auto t1 = topo_.tenant_vms(1);
  auto t2 = topo_.tenant_vms(2);
  // Cross-tenant packet: the L2 table has no binding for the dst MAC in
  // tenant 1's logical datapath -> dropped.
  Packet p = nvp_packet(*t1[0], *t2[0], 50000, 80);
  auto xr = sw_.pipeline().translate(p.key, 0);
  EXPECT_TRUE(xr.actions.drops());
}

TEST_F(NvpPipelineTest, AclBlocksConfiguredPorts) {
  auto t1 = topo_.tenant_vms(1);  // the ACL tenant
  ASSERT_FALSE(topo_.blocked_ports.empty());
  Packet blocked =
      nvp_packet(*t1[0], *t1[1], 50000, topo_.blocked_ports[0]);
  EXPECT_TRUE(sw_.pipeline().translate(blocked.key, 0).actions.drops());
}

TEST_F(NvpPipelineTest, NonAclTenantMegaflowsIgnoreL4) {
  // §5.3: "megaflows for traffic on logical datapaths without L4 ACLs
  // [should] avoid matching on L4 port".
  auto t2 = topo_.tenant_vms(2);  // no ACLs
  Packet p = nvp_packet(*t2[0], *t2[1], 50000, 80);
  auto xr = sw_.pipeline().translate(p.key, 0);
  EXPECT_FALSE(xr.actions.drops());
  EXPECT_FALSE(xr.megaflow.mask.has_field(FieldId::kTpDst));
  EXPECT_FALSE(xr.megaflow.mask.has_field(FieldId::kTpSrc));
}

TEST_F(NvpPipelineTest, AclTenantMegaflowsMatchL4) {
  auto t1 = topo_.tenant_vms(1);
  Packet p = nvp_packet(*t1[0], *t1[1], 50000, 80);
  auto xr = sw_.pipeline().translate(p.key, 0);
  EXPECT_FALSE(xr.actions.drops());
  EXPECT_TRUE(xr.megaflow.mask.has_field(FieldId::kTpDst));
}

TEST_F(NvpPipelineTest, TunnelIngressClassified) {
  auto t2 = topo_.tenant_vms(2);
  Packet p = nvp_packet(*t2[0], *t2[1], 50000, 80);
  p.key.set_in_port(cfg_.tunnel_port);
  p.key.set_tun_id(2);  // tenant 2's tunnel key
  auto xr = sw_.pipeline().translate(p.key, 0);
  EXPECT_FALSE(xr.actions.drops());
  // Tunnel megaflows must match the tunnel id (ingress classification).
  EXPECT_TRUE(xr.megaflow.mask.is_exact(FieldId::kTunId));
}

TEST(RandomClassifierTest, BuildsRequestedShape) {
  Rng rng(5);
  Classifier cls;
  auto rules = build_random_classifier(cls, 5000, 10, rng);
  EXPECT_EQ(cls.rule_count(), rules.size());
  EXPECT_GE(rules.size(), 4900u);
  EXPECT_LE(cls.tuple_count(), 10u);
  EXPECT_GE(cls.tuple_count(), 8u);
  // Lookups return rules that actually match.
  for (int i = 0; i < 200; ++i) {
    FlowKey pkt = random_classifier_packet(rng);
    const Rule* r = cls.lookup(pkt);
    if (r != nullptr) {
      EXPECT_TRUE(r->match().matches(pkt));
    }
  }
}

}  // namespace
}  // namespace ovs
