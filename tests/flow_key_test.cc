// Tests for the flow key / mask data model.
#include "packet/flow_key.h"

#include <gtest/gtest.h>

#include "packet/match.h"
#include "util/rng.h"

namespace ovs {
namespace {

TEST(FlowKeyTest, FieldRoundTripAllFields) {
  // Every single-word field must round-trip through get/set without
  // clobbering neighbours.
  for (size_t i = 0; i < kNumFields; ++i) {
    const auto f = static_cast<FieldId>(i);
    const FieldInfo& fi = field_info(f);
    if (fi.width == 128) continue;  // typed accessors tested below
    FlowKey k;
    const uint64_t v = 0xa5a5a5a5a5a5a5a5ULL &
                       ((fi.width == 64) ? ~uint64_t{0}
                                         : ((uint64_t{1} << fi.width) - 1));
    k.set(f, v);
    EXPECT_EQ(k.get(f), v) << fi.name;
    k.set(f, 0);
    EXPECT_TRUE(k.is_zero()) << fi.name;
  }
}

TEST(FlowKeyTest, TypedAccessors) {
  FlowKey k;
  k.set_in_port(7);
  k.set_eth_src(EthAddr(1, 2, 3, 4, 5, 6));
  k.set_eth_dst(kEthBroadcast);
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_src(Ipv4(10, 0, 0, 1));
  k.set_nw_dst(Ipv4(10, 0, 0, 2));
  k.set_nw_proto(ipproto::kTcp);
  k.set_tp_src(12345);
  k.set_tp_dst(80);
  k.set_ipv6_src(Ipv6(0x1111, 0x2222));
  k.set_reg(2, 99);
  k.set_metadata(0xfeed);
  k.set_tun_id(42);

  EXPECT_EQ(k.in_port(), 7u);
  EXPECT_EQ(k.eth_src(), EthAddr(1, 2, 3, 4, 5, 6));
  EXPECT_TRUE(k.eth_dst().is_broadcast());
  EXPECT_EQ(k.eth_type(), ethertype::kIpv4);
  EXPECT_EQ(k.nw_src(), Ipv4(10, 0, 0, 1));
  EXPECT_EQ(k.nw_dst(), Ipv4(10, 0, 0, 2));
  EXPECT_EQ(k.nw_proto(), ipproto::kTcp);
  EXPECT_EQ(k.tp_src(), 12345);
  EXPECT_EQ(k.tp_dst(), 80);
  EXPECT_EQ(k.ipv6_src(), Ipv6(0x1111, 0x2222));
  EXPECT_EQ(k.reg(2), 99u);
  EXPECT_EQ(k.metadata(), 0xfeedu);
  EXPECT_EQ(k.tun_id(), 42u);
}

TEST(FlowKeyTest, FieldsDoNotOverlap) {
  // Setting each field to all-ones one at a time must never disturb others.
  for (size_t i = 0; i < kNumFields; ++i) {
    FlowMask m;
    m.set_exact(static_cast<FieldId>(i));
    for (size_t j = 0; j < kNumFields; ++j) {
      if (i == j) continue;
      // The intersection of distinct field masks must be empty.
      FlowMask mj;
      mj.set_exact(static_cast<FieldId>(j));
      for (size_t w = 0; w < kFlowWords; ++w)
        EXPECT_EQ(m.w[w] & mj.w[w], 0u)
            << field_info(static_cast<FieldId>(i)).name << " vs "
            << field_info(static_cast<FieldId>(j)).name;
    }
  }
}

TEST(FlowMaskTest, PrefixMask) {
  FlowMask m;
  m.set_prefix(FieldId::kNwDst, 24);
  EXPECT_EQ(m.prefix_len(FieldId::kNwDst), 24);
  EXPECT_TRUE(m.has_field(FieldId::kNwDst));
  EXPECT_FALSE(m.is_exact(FieldId::kNwDst));
  m.set_prefix(FieldId::kNwDst, 32);
  EXPECT_TRUE(m.is_exact(FieldId::kNwDst));
}

TEST(FlowMaskTest, PrefixLenDetectsNonPrefix) {
  FlowMask m;
  m.set_exact(FieldId::kNwSrc);
  EXPECT_EQ(m.prefix_len(FieldId::kNwSrc), 32);
  // Punch a hole: no longer a prefix.
  m.w[field_info(FieldId::kNwSrc).word] &=
      ~(uint64_t{1} << (field_info(FieldId::kNwSrc).shift + 16));
  EXPECT_EQ(m.prefix_len(FieldId::kNwSrc), -1);
}

TEST(FlowMaskTest, Ipv6PrefixAcrossWords) {
  FlowMask m;
  m.set_prefix(FieldId::kIpv6Dst, 80);  // 64 + 16 bits
  EXPECT_EQ(m.prefix_len(FieldId::kIpv6Dst), 80);
  EXPECT_EQ(m.w[12], ~uint64_t{0});
  EXPECT_EQ(m.w[13], ~uint64_t{0} << 48);
  FlowMask e;
  e.set_exact(FieldId::kIpv6Dst);
  EXPECT_EQ(e.prefix_len(FieldId::kIpv6Dst), 128);
}

TEST(FlowMaskTest, ClampPrefix) {
  FlowMask m;
  m.set_exact(FieldId::kNwDst);
  m.set_exact(FieldId::kEthType);
  m.clamp_prefix(FieldId::kNwDst, 16);
  EXPECT_EQ(m.prefix_len(FieldId::kNwDst), 16);
  EXPECT_TRUE(m.is_exact(FieldId::kEthType));  // other fields untouched
}

TEST(FlowMaskTest, LastStage) {
  FlowMask m;
  EXPECT_EQ(m.last_stage(), 0u);  // empty mask occupies one stage
  m.set_exact(FieldId::kInPort);
  EXPECT_EQ(m.last_stage(), 0u);
  m.set_exact(FieldId::kEthDst);
  EXPECT_EQ(m.last_stage(), 1u);
  m.set_exact(FieldId::kNwDst);
  EXPECT_EQ(m.last_stage(), 2u);
  m.set_exact(FieldId::kTpDst);
  EXPECT_EQ(m.last_stage(), 3u);
}

TEST(FlowMaskTest, StageLayoutMatchesPaperOrder) {
  // Metadata, L2, L3, L4 — "in decreasing order of traffic granularity".
  EXPECT_EQ(stage_of_word(field_info(FieldId::kInPort).word),
            Stage::kMetadata);
  EXPECT_EQ(stage_of_word(field_info(FieldId::kTunId).word),
            Stage::kMetadata);
  EXPECT_EQ(stage_of_word(field_info(FieldId::kEthSrc).word), Stage::kL2);
  EXPECT_EQ(stage_of_word(field_info(FieldId::kEthType).word), Stage::kL2);
  EXPECT_EQ(stage_of_word(field_info(FieldId::kNwDst).word), Stage::kL3);
  EXPECT_EQ(stage_of_word(field_info(FieldId::kIpv6Src).word), Stage::kL3);
  EXPECT_EQ(stage_of_word(field_info(FieldId::kTpDst).word), Stage::kL4);
}

TEST(MaskedOpsTest, MaskedEqualAndHashAgree) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    FlowKey pkt, key;
    FlowMask mask;
    for (size_t w = 0; w < kFlowWords; ++w) {
      pkt.w[w] = rng.next();
      mask.w[w] = rng.chance(0.5) ? rng.next() : 0;
    }
    key = pkt;
    apply_mask(key, mask);
    EXPECT_TRUE(masked_equal(pkt, key, mask));
    EXPECT_EQ(hash_masked_range(pkt, mask, 0, kFlowWords, 0),
              hash_masked_range(key, mask, 0, kFlowWords, 0));
    // Perturb a masked bit -> inequality.
    FlowKey pkt2 = pkt;
    size_t w = rng.uniform(kFlowWords);
    if (mask.w[w] != 0) {
      // Pick one set mask bit.
      uint64_t bit = mask.w[w] & (~mask.w[w] + 1);
      pkt2.w[w] ^= bit;
      EXPECT_FALSE(masked_equal(pkt2, key, mask));
    }
    // Perturb an unmasked bit -> still equal.
    FlowKey pkt3 = pkt;
    if (~mask.w[w] != 0) {
      uint64_t bit = ~mask.w[w] & (mask.w[w] + 1);
      if (bit != 0) {
        pkt3.w[w] ^= bit;
        EXPECT_TRUE(masked_equal(pkt3, key, mask));
      }
    }
  }
}

TEST(MaskedOpsTest, IncrementalHashEqualsOneShot) {
  Rng rng(123);
  FlowKey pkt;
  FlowMask mask;
  for (size_t w = 0; w < kFlowWords; ++w) {
    pkt.w[w] = rng.next();
    mask.w[w] = rng.next();
  }
  const uint64_t one_shot = hash_masked_range(pkt, mask, 0, kFlowWords, 0);
  uint64_t h = 0;
  size_t from = 0;
  for (size_t s = 0; s < kNumStages; ++s) {
    h = hash_masked_range(pkt, mask, from, kStageEnd[s], h);
    from = kStageEnd[s];
  }
  EXPECT_EQ(h, one_shot);
}

TEST(MatchBuilderTest, BuildsNormalizedMatch) {
  Match m = MatchBuilder().tcp().nw_dst_prefix(Ipv4(9, 1, 1, 99), 24).tp_dst(80);
  EXPECT_TRUE(m.mask.is_exact(FieldId::kEthType));
  EXPECT_TRUE(m.mask.is_exact(FieldId::kNwProto));
  EXPECT_EQ(m.mask.prefix_len(FieldId::kNwDst), 24);
  // Key must be pre-masked: host bits cleared.
  EXPECT_EQ(m.key.nw_dst(), Ipv4(9, 1, 1, 0));

  FlowKey pkt;
  pkt.set_eth_type(ethertype::kIpv4);
  pkt.set_nw_proto(ipproto::kTcp);
  pkt.set_nw_dst(Ipv4(9, 1, 1, 42));
  pkt.set_tp_dst(80);
  pkt.set_tp_src(55555);
  EXPECT_TRUE(m.matches(pkt));
  pkt.set_nw_dst(Ipv4(9, 1, 2, 42));
  EXPECT_FALSE(m.matches(pkt));
}

TEST(FormatTest, KeyAndMaskToString) {
  FlowKey k;
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  k.set_nw_dst(Ipv4(1, 2, 3, 4));
  const std::string s = k.to_string();
  EXPECT_NE(s.find("dl_type=0x0800"), std::string::npos);
  EXPECT_NE(s.find("nw_dst=1.2.3.4"), std::string::npos);

  FlowMask m;
  m.set_exact(FieldId::kEthType);
  m.set_prefix(FieldId::kNwDst, 16);
  const std::string ms = m.to_string();
  EXPECT_NE(ms.find("eth_type=exact"), std::string::npos);
  EXPECT_NE(ms.find("nw_dst=/16"), std::string::npos);
}

}  // namespace
}  // namespace ovs
