// Tests for the optimistic concurrent cuckoo map (§4.1).
#include "util/cuckoo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "util/rng.h"

namespace ovs {
namespace {

TEST(CuckooMapTest, InsertFindErase) {
  CuckooMap64 m;
  uint64_t v = 0;
  EXPECT_FALSE(m.find(42, &v));
  EXPECT_TRUE(m.insert(42, 4200));
  EXPECT_TRUE(m.find(42, &v));
  EXPECT_EQ(v, 4200u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase(42));
  EXPECT_FALSE(m.find(42, &v));
  EXPECT_FALSE(m.erase(42));
  EXPECT_EQ(m.size(), 0u);
}

TEST(CuckooMapTest, ReservedKeyZeroRejected) {
  CuckooMap64 m;
  uint64_t v = 0;
  EXPECT_FALSE(m.insert(0, 1));
  EXPECT_FALSE(m.find(0, &v));
  EXPECT_FALSE(m.erase(0));
  EXPECT_EQ(m.size(), 0u);
  // Neighbouring keys are unaffected.
  m.insert(1, 11);
  EXPECT_FALSE(m.erase(0));
  ASSERT_TRUE(m.find(1, &v));
  EXPECT_EQ(v, 11u);
}

TEST(CuckooMapTest, InsertUpdatesExisting) {
  CuckooMap64 m;
  m.insert(7, 1);
  m.insert(7, 2);
  EXPECT_EQ(m.size(), 1u);
  uint64_t v = 0;
  ASSERT_TRUE(m.find(7, &v));
  EXPECT_EQ(v, 2u);
}

TEST(CuckooMapTest, GrowsUnderLoad) {
  CuckooMap64 m(16);
  const size_t n = 50000;
  for (uint64_t k = 1; k <= n; ++k) ASSERT_TRUE(m.insert(k, k * 3));
  EXPECT_EQ(m.size(), n);
  for (uint64_t k = 1; k <= n; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(m.find(k, &v)) << k;
    ASSERT_EQ(v, k * 3) << k;
  }
  // Keys never inserted must miss.
  uint64_t v;
  EXPECT_FALSE(m.find(n + 1, &v));
  EXPECT_FALSE(m.find(~uint64_t{0}, &v));
}

TEST(CuckooMapTest, RandomizedAgainstModel) {
  CuckooMap64 m(32);
  std::map<uint64_t, uint64_t> model;
  Rng rng(17);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t k = 1 + rng.uniform(2000);
    switch (rng.uniform(3)) {
      case 0:
        m.insert(k, i);
        model[k] = static_cast<uint64_t>(i);
        break;
      case 1:
        EXPECT_EQ(m.erase(k), model.erase(k) > 0);
        break;
      default: {
        uint64_t v = 0;
        auto it = model.find(k);
        if (it == model.end()) {
          EXPECT_FALSE(m.find(k, &v)) << k;
        } else {
          ASSERT_TRUE(m.find(k, &v)) << k;
          EXPECT_EQ(v, it->second) << k;
        }
      }
    }
  }
  EXPECT_EQ(m.size(), model.size());
  m.for_each([&](uint64_t k, uint64_t v) {
    auto it = model.find(k);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(it->second, v);
  });
}

TEST(CuckooMapTest, AdversarialCollidingKeys) {
  // Dense sequential keys stress the displacement path.
  CuckooMap64 m(16);
  for (uint64_t k = 1; k <= 4096; ++k) ASSERT_TRUE(m.insert(k, ~k));
  for (uint64_t k = 1; k <= 4096; ++k) {
    uint64_t v;
    ASSERT_TRUE(m.find(k, &v));
    EXPECT_EQ(v, ~k);
  }
}

// Concurrency: one writer churns; readers must only ever observe values
// consistent with the invariant value == hash_mix64(key), and must always
// find keys from the stable (never-erased) set.
TEST(CuckooMapTest, ConcurrentReadersSeeConsistentValues) {
  CuckooMap64 m(64);
  constexpr uint64_t kStableKeys = 512;
  for (uint64_t k = 1; k <= kStableKeys; ++k)
    ASSERT_TRUE(m.insert(k, hash_mix64(k)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> stable_misses{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = 1 + rng.uniform(kStableKeys * 4);
        uint64_t v = 0;
        if (m.find(k, &v)) {
          if (v != hash_mix64(k))
            violations.fetch_add(1, std::memory_order_relaxed);
        } else if (k <= kStableKeys) {
          stable_misses.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: churn the volatile key range (forces kicks and growth) until
  // the readers have made real progress, so scheduling jitter can't end
  // the experiment before the race window was exercised.
  Rng wrng(5);
  for (int batch = 0;
       batch < 2000 && (batch < 20 || reads.load() < 20000); ++batch) {
    for (int i = 0; i < 10000; ++i) {
      const uint64_t k = kStableKeys + 1 + wrng.uniform(kStableKeys * 3);
      if (wrng.chance(0.6))
        ASSERT_TRUE(m.insert(k, hash_mix64(k)));
      else
        m.erase(k);
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0u) << "torn or stale-keyed value observed";
  EXPECT_EQ(stable_misses.load(), 0u)
      << "a permanently-present key was missed during displacement";

  // Post-conditions: all stable keys still intact.
  for (uint64_t k = 1; k <= kStableKeys; ++k) {
    uint64_t v;
    ASSERT_TRUE(m.find(k, &v));
    EXPECT_EQ(v, hash_mix64(k));
  }
}

}  // namespace
}  // namespace ovs
