// Tests for the Linux-bridge baseline (§7.2 comparison).
#include "baseline/linux_bridge.h"

#include <gtest/gtest.h>

namespace ovs {
namespace {

Packet l2_pkt(uint32_t in_port, EthAddr src, EthAddr dst) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(src);
  p.key.set_eth_dst(dst);
  p.key.set_eth_type(ethertype::kIpv4);
  return p;
}

TEST(LinuxBridgeTest, LearnsThenForwards) {
  LinuxBridge br;
  br.add_port(1);
  br.add_port(2);
  EthAddr a(2, 0, 0, 0, 0, 1), b(2, 0, 0, 0, 0, 2);
  // Unknown destination: flood.
  EXPECT_EQ(br.process(l2_pkt(1, a, b), 0), LinuxBridge::Verdict::kFlooded);
  // Reply: a is now known.
  EXPECT_EQ(br.process(l2_pkt(2, b, a), 1), LinuxBridge::Verdict::kForwarded);
  EXPECT_EQ(br.stats().flooded, 1u);
  EXPECT_EQ(br.stats().forwarded, 1u);
}

TEST(LinuxBridgeTest, DropRuleMatches) {
  LinuxBridge br;
  br.add_port(1);
  // The paper's example: drop STP BPDUs (we key on the STP multicast MAC).
  br.add_drop_rule(MatchBuilder().eth_dst(EthAddr(1, 0x80, 0xc2, 0, 0, 0)));
  Packet bpdu = l2_pkt(1, EthAddr(2, 0, 0, 0, 0, 1),
                       EthAddr(1, 0x80, 0xc2, 0, 0, 0));
  EXPECT_EQ(br.process(bpdu, 0), LinuxBridge::Verdict::kDropped);
  Packet normal = l2_pkt(1, EthAddr(2, 0, 0, 0, 0, 1),
                         EthAddr(2, 0, 0, 0, 0, 9));
  EXPECT_NE(br.process(normal, 0), LinuxBridge::Verdict::kDropped);
}

TEST(LinuxBridgeTest, PerPacketRuleCostIsCharged) {
  // §7.2: one iptables rule raised Linux bridge CPU 26-fold. The model must
  // charge the netfilter hook on EVERY packet once a rule exists.
  LinuxBridge no_rules;
  LinuxBridge with_rule;
  for (LinuxBridge* b : {&no_rules, &with_rule}) {
    b->add_port(1);
    b->add_port(2);
  }
  with_rule.add_drop_rule(
      MatchBuilder().eth_dst(EthAddr(1, 0x80, 0xc2, 0, 0, 0)));

  Packet p = l2_pkt(1, EthAddr(2, 0, 0, 0, 0, 1), EthAddr(2, 0, 0, 0, 0, 2));
  for (int i = 0; i < 1000; ++i) {
    no_rules.process(p, i);
    with_rule.process(p, i);
  }
  EXPECT_GT(with_rule.cycles(), no_rules.cycles() * 10)
      << "netfilter must be a per-packet cost";
  EXPECT_EQ(with_rule.stats().dropped, 0u);  // the rule never matched
}

}  // namespace
}  // namespace ovs
