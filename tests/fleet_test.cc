// Sanity tests for the fleet simulator (Figures 4-7 substrate).
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace ovs {
namespace {

FleetConfig tiny_config() {
  FleetConfig cfg;
  cfg.n_hypervisors = 12;
  cfg.n_intervals = 4;
  cfg.sim_seconds_per_interval = 0.5;
  cfg.pps_log_mean = 7.0;  // keep the test fast but cache-dominated
  cfg.pps_log_sigma = 1.0;
  cfg.outlier_fraction = 0;
  return cfg;
}

TEST(FleetTest, ProducesOneSamplePerHypervisorInterval) {
  FleetConfig cfg = tiny_config();
  FleetResults r = run_fleet(cfg);
  EXPECT_EQ(r.intervals.size(), cfg.n_hypervisors * cfg.n_intervals);
  EXPECT_EQ(r.hypervisors.size(), cfg.n_hypervisors);
}

TEST(FleetTest, RatesAreConsistent) {
  FleetResults r = run_fleet(tiny_config());
  for (const FleetInterval& iv : r.intervals) {
    EXPECT_GE(iv.hit_rate, 0.0);
    EXPECT_LE(iv.hit_rate, 1.0);
    EXPECT_GE(iv.hit_pps, 0.0);
    EXPECT_GE(iv.miss_pps, 0.0);
    EXPECT_GE(iv.user_cpu_pct, 0.0);
    EXPECT_GE(iv.kernel_cpu_pct, 0.0);
  }
  for (const FleetHypervisor& hv : r.hypervisors) {
    EXPECT_LE(hv.flows_min, hv.flows_mean);
    EXPECT_LE(hv.flows_mean, hv.flows_max);
    EXPECT_GT(hv.flows_max, 0.0);
  }
}

TEST(FleetTest, CachingIsEffectiveAtSteadyState) {
  // §7.1: overall cache hit rate 97.7%. Steady-state intervals (after the
  // first) must show high hit rates.
  FleetResults r = run_fleet(tiny_config());
  double hits = 0, total = 0;
  for (const FleetInterval& iv : r.intervals) {
    if (iv.interval == 0) continue;  // warm-up
    hits += iv.hit_pps;
    total += iv.hit_pps + iv.miss_pps;
  }
  ASSERT_GT(total, 0.0);
  EXPECT_GT(hits / total, 0.90);
}

TEST(FleetTest, OutliersBurnMoreCpu) {
  FleetConfig cfg = tiny_config();
  cfg.n_hypervisors = 8;
  cfg.outlier_fraction = 1.1;  // force all outliers
  cfg.outlier_pps_factor = 2;
  cfg.outlier_conns_factor = 2;
  FleetResults outliers = run_fleet(cfg);

  FleetConfig cfg2 = cfg;
  cfg2.outlier_fraction = 0;
  FleetResults normal = run_fleet(cfg2);

  Distribution cpu_out, cpu_norm;
  for (const FleetInterval& iv : outliers.intervals)
    if (iv.interval > 0) cpu_out.add(iv.user_cpu_pct);
  for (const FleetInterval& iv : normal.intervals)
    if (iv.interval > 0) cpu_norm.add(iv.user_cpu_pct);
  EXPECT_GT(cpu_out.mean(), cpu_norm.mean());
}

TEST(FleetTest, StormIntervalsAreMarkedAndContained) {
  FleetConfig cfg = tiny_config();
  cfg.n_hypervisors = 6;
  cfg.storm_fraction = 0.34;  // 2 of 6 hypervisors stormed
  cfg.storm_first_interval = 1;
  cfg.storm_last_interval = 2;
  FleetResults r = run_fleet(cfg);

  size_t stormy_hvs = 0;
  for (size_t hv = 0; hv < cfg.n_hypervisors; ++hv) {
    bool any_stormy = false;
    for (const FleetInterval& iv : r.intervals) {
      if (iv.hypervisor != hv) continue;
      const bool in_window = iv.interval >= cfg.storm_first_interval &&
                             iv.interval <= cfg.storm_last_interval;
      if (iv.stormy) {
        any_stormy = true;
        EXPECT_TRUE(in_window) << "storm outside its window";
      }
    }
    stormy_hvs += any_stormy ? 1 : 0;
  }
  EXPECT_EQ(stormy_hvs, 2u);
  // Unstormed hypervisors never see bounded-queue drops at these rates.
  for (const FleetInterval& iv : r.intervals) {
    if (!iv.stormy) {
      EXPECT_EQ(iv.drop_pps, 0.0);
    }
  }
}

TEST(FleetTest, DegradationTogglePreservesDeterminism) {
  FleetConfig cfg = tiny_config();
  cfg.storm_fraction = 0.2;
  cfg.storm_first_interval = 1;
  cfg.storm_last_interval = 3;
  cfg.degradation = false;  // ablation runs must be reproducible too
  FleetResults a = run_fleet(cfg);
  FleetResults b = run_fleet(cfg);
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(a.intervals[i].flows, b.intervals[i].flows);
    EXPECT_DOUBLE_EQ(a.intervals[i].drop_pps, b.intervals[i].drop_pps);
  }
}

TEST(FleetTest, RackFaultScheduleIsCorrelatedAndWindowed) {
  FleetConfig cfg = tiny_config();
  cfg.n_hypervisors = 12;
  cfg.rack_size = 4;                // racks {0..3}, {4..7}, {8..11}
  cfg.fault_rack_fraction = 0.34;   // 1 of 3 racks: the middle one
  cfg.fault_first_interval = 1;
  cfg.fault_last_interval = 2;
  cfg.fault_install_fail_prob = 1.0;  // every install fails in the window
  FleetResults r = run_fleet(cfg);

  for (const FleetInterval& iv : r.intervals) {
    const bool in_middle_rack = iv.hypervisor >= 4 && iv.hypervisor < 8;
    const bool in_window = iv.interval >= cfg.fault_first_interval &&
                           iv.interval <= cfg.fault_last_interval;
    EXPECT_EQ(iv.faulted, in_middle_rack && in_window)
        << "hv " << iv.hypervisor << " interval " << iv.interval;
    if (!in_middle_rack) {
      EXPECT_EQ(iv.install_fails, 0u)
          << "install failure outside the faulted rack (hv "
          << iv.hypervisor << ")";
    }
  }
  // Every hypervisor in the faulted rack sees failures inside the window
  // (correlated rack-level outage), and none outside it.
  for (size_t hv = 4; hv < 8; ++hv) {
    uint64_t inside = 0, outside = 0;
    for (const FleetInterval& iv : r.intervals) {
      if (iv.hypervisor != hv) continue;
      (iv.faulted ? inside : outside) += iv.install_fails;
    }
    EXPECT_GT(inside, 0u) << "hv " << hv;
    EXPECT_EQ(outside, 0u) << "hv " << hv;
  }
}

TEST(FleetTest, CrashScheduleIsRackCorrelatedAndRecovers) {
  FleetConfig cfg = tiny_config();
  cfg.n_hypervisors = 12;
  cfg.rack_size = 4;               // racks {0..3}, {4..7}, {8..11}
  cfg.crash_rack_fraction = 0.34;  // 1 of 3 racks; with no faulted racks
                                   // the band sits at rack 0 (hvs 0-3)
  cfg.crash_interval = 1;
  cfg.n_intervals = 5;
  cfg.self_check = true;           // periodic invariant sweep stays clean
  FleetResults r = run_fleet(cfg);

  size_t crashed_hvs = 0;
  for (size_t hv = 0; hv < cfg.n_hypervisors; ++hv) {
    bool any_crashed = false;
    for (const FleetInterval& iv : r.intervals) {
      if (iv.hypervisor != hv) continue;
      if (iv.crashed) {
        any_crashed = true;
        // Crash fires at crash_interval's maintenance; recovery completes
        // within the following interval's maintenance ticks.
        EXPECT_GE(iv.interval, cfg.crash_interval);
        EXPECT_LE(iv.interval, cfg.crash_interval + 1);
      }
      // The background self-check never finds anything to quarantine in a
      // healthy fleet, crash or not.
      EXPECT_EQ(iv.quarantined, 0u);
    }
    crashed_hvs += any_crashed ? 1 : 0;
    // The datapath cache survives the daemon crash, so hypervisors keep a
    // non-trivial hit rate even in the blackout interval and serve flows
    // again by the end of the run.
    const FleetInterval& last = r.intervals[hv * cfg.n_intervals +
                                            (cfg.n_intervals - 1)];
    EXPECT_FALSE(last.crashed) << "hv " << hv << " still not serving";
    EXPECT_GT(last.flows, 0u);
  }
  EXPECT_EQ(crashed_hvs, 4u);

  // The whole crash-and-reconcile schedule replays bit-identically.
  FleetResults r2 = run_fleet(cfg);
  ASSERT_EQ(r.intervals.size(), r2.intervals.size());
  for (size_t i = 0; i < r.intervals.size(); ++i) {
    EXPECT_EQ(r.intervals[i].crashed, r2.intervals[i].crashed);
    EXPECT_EQ(r.intervals[i].flows, r2.intervals[i].flows);
    EXPECT_DOUBLE_EQ(r.intervals[i].hit_rate, r2.intervals[i].hit_rate);
  }
}

TEST(FleetTest, MultiWorkerFleetMatchesCachingExpectations) {
  FleetConfig cfg = tiny_config();
  cfg.n_hypervisors = 4;
  cfg.datapath_workers = 4;
  cfg.revalidator_threads = 4;
  cfg.rx_batch = 16;
  FleetResults r = run_fleet(cfg);
  EXPECT_EQ(r.intervals.size(), cfg.n_hypervisors * cfg.n_intervals);
  double hits = 0, total = 0;
  for (const FleetInterval& iv : r.intervals) {
    if (iv.interval == 0) continue;
    hits += iv.hit_pps;
    total += iv.hit_pps + iv.miss_pps;
  }
  ASSERT_GT(total, 0.0);
  // Looser than the single-worker steady-state bound: a 4-hypervisor fleet
  // over a few short intervals is still warm-up-heavy.
  EXPECT_GT(hits / total, 0.80);
  // Multi-worker runs stay deterministic: workers are driven synchronously
  // and the revalidator applies serially.
  FleetResults r2 = run_fleet(cfg);
  ASSERT_EQ(r.intervals.size(), r2.intervals.size());
  for (size_t i = 0; i < r.intervals.size(); ++i)
    EXPECT_EQ(r.intervals[i].flows, r2.intervals[i].flows);
}

TEST(FleetTest, CtrlPlaneFleetConvergesThroughFaultsAndFailover) {
  // Control-plane lockstep mode (DESIGN.md §12): a policy change fans out
  // mid-run while one rack's wire is lossy, then the active controller is
  // killed holding the fleet and a standby takes over. The run must still
  // certify the final policy epoch fleet-wide.
  FleetConfig cfg = tiny_config();
  cfg.n_hypervisors = 8;
  cfg.rack_size = 4;
  cfg.control_plane = true;
  cfg.standby_controllers = 1;
  cfg.fault_rack_fraction = 0.5;
  cfg.fault_first_interval = 1;
  cfg.fault_last_interval = 2;
  cfg.ctrl_msg_drop_prob = 0.15;
  cfg.ctrl_conn_reset_prob = 0.02;
  cfg.policy_change_interval = 1;
  cfg.controller_crash_interval = 1;  // dies right after the fan-out starts
  FleetResults r = run_fleet(cfg);

  EXPECT_TRUE(r.control.final_converged);
  EXPECT_EQ(r.control.controller_crashes, 1u);
  EXPECT_EQ(r.control.takeovers, 1u);
  EXPECT_GE(r.control.policy_pushes, 2u);  // baseline + change
  EXPECT_GT(r.control.flow_mods_applied, 0u);
  EXPECT_GT(r.control.syncs_completed, 0u);
  EXPECT_GT(r.control.gossip_messages, 0u);
  // The traffic plane is untouched by control-plane events: per-interval
  // figures still come out one per (hypervisor, interval).
  EXPECT_EQ(r.intervals.size(), cfg.n_hypervisors * cfg.n_intervals);

  // And the whole scenario — wire faults, crash, takeover, re-push — is
  // bit-identical on replay.
  FleetResults r2 = run_fleet(cfg);
  EXPECT_EQ(r2.control.final_converged, r.control.final_converged);
  EXPECT_EQ(r2.control.convergence_ns, r.control.convergence_ns);
  EXPECT_EQ(r2.control.flow_mods_applied, r.control.flow_mods_applied);
  EXPECT_EQ(r2.control.retransmits, r.control.retransmits);
  EXPECT_EQ(r2.control.wire_dropped, r.control.wire_dropped);
  ASSERT_EQ(r.intervals.size(), r2.intervals.size());
  for (size_t i = 0; i < r.intervals.size(); ++i)
    EXPECT_EQ(r.intervals[i].flows, r2.intervals[i].flows);
}

TEST(FleetTest, CtrlPlaneOffIsBitForBitLegacy) {
  // The lockstep refactor must not perturb the legacy mode: control_plane
  // defaults to off and produces identical figures to the seed path.
  FleetConfig cfg = tiny_config();
  FleetResults legacy = run_fleet(cfg);
  EXPECT_FALSE(legacy.control.final_converged);
  EXPECT_EQ(legacy.control.policy_pushes, 0u);
  EXPECT_EQ(legacy.control.flow_mods_applied, 0u);
}

TEST(FleetTest, DeterministicForFixedSeed) {
  FleetResults a = run_fleet(tiny_config());
  FleetResults b = run_fleet(tiny_config());
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.intervals[i].hit_rate, b.intervals[i].hit_rate);
    EXPECT_EQ(a.intervals[i].flows, b.intervals[i].flows);
  }
}

}  // namespace
}  // namespace ovs
