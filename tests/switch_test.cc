// Integration tests: the full Switch — pipeline + datapath + upcall handling
// + revalidation (§3.1, §4, §6).
#include "vswitchd/switch.h"

#include <gtest/gtest.h>

#include "sim/clock.h"

namespace ovs {
namespace {

Packet tcp_pkt(uint32_t in_port, Ipv4 src, Ipv4 dst, uint16_t sport,
               uint16_t dport) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(EthAddr(0, 0, 0, 0, 0, (uint8_t)in_port));
  p.key.set_eth_dst(EthAddr(0, 0, 0, 0, 0, 0x99));
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(src);
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  p.size_bytes = 100;
  return p;
}

class SwitchTest : public ::testing::Test {
 protected:
  void setup_l3_switch(SwitchConfig cfg = {}) {
    sw_ = std::make_unique<Switch>(cfg);
    sw_->add_port(1);
    sw_->add_port(2);
    sw_->table(0).add_flow(
        MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 10,
        OfActions().output(2));
    sw_->table(0).add_flow(
        MatchBuilder().ip().nw_dst_prefix(Ipv4(20, 0, 0, 0), 8), 10,
        OfActions().output(1));
  }

  std::unique_ptr<Switch> sw_;
  VirtualClock clock_;
};

TEST_F(SwitchTest, MissThenSetupThenCacheHits) {
  setup_l3_switch();
  Packet p = tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), 1000, 80);

  EXPECT_EQ(sw_->inject(p, clock_.now()), Datapath::Path::kMiss);
  EXPECT_EQ(sw_->handle_upcalls(clock_.now()), 1u);
  EXPECT_EQ(sw_->counters().flow_setups, 1u);
  // The queued packet was forwarded as part of setup.
  EXPECT_EQ(sw_->port_stats(2).tx_packets, 1u);

  // The first packet after setup passes through the megaflow table, which
  // populates the EMC (§4.2); the next one is an EMC hit.
  EXPECT_EQ(sw_->inject(p, clock_.now()), Datapath::Path::kMegaflowHit);
  EXPECT_EQ(sw_->inject(p, clock_.now()), Datapath::Path::kMicroflowHit);
  // Different connection, same /8: megaflow hit, no new upcall.
  Packet p2 = tcp_pkt(1, Ipv4(1, 1, 1, 2), Ipv4(10, 9, 9, 9), 2222, 443);
  EXPECT_EQ(sw_->inject(p2, clock_.now()), Datapath::Path::kMegaflowHit);
  EXPECT_EQ(sw_->handle_upcalls(clock_.now()), 0u);
  EXPECT_EQ(sw_->port_stats(2).tx_packets, 4u);
  EXPECT_EQ(sw_->datapath().flow_count(), 1u);  // one megaflow covers all
}

TEST_F(SwitchTest, OutputHandlerObservesForwarding) {
  setup_l3_switch();
  std::vector<std::pair<uint32_t, Ipv4>> seen;
  sw_->set_output_handler([&](uint32_t port, const Packet& pkt) {
    seen.emplace_back(port, pkt.key.nw_dst());
  });
  Packet p = tcp_pkt(2, Ipv4(1, 1, 1, 1), Ipv4(20, 0, 0, 7), 1, 2);
  sw_->inject(p, 0);
  sw_->handle_upcalls(0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 1u);
  EXPECT_EQ(seen[0].second, Ipv4(20, 0, 0, 7));
}

TEST_F(SwitchTest, MegaflowsDisabledInstallsExactEntries) {
  SwitchConfig cfg;
  cfg.megaflows_enabled = false;  // Table 1's first row
  setup_l3_switch(cfg);
  for (uint16_t i = 0; i < 10; ++i) {
    sw_->inject(tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), 1000 + i, 80),
                0);
    sw_->handle_upcalls(0);
  }
  // One cache entry per connection, one mask ("Flows"=N, "Masks"=1).
  EXPECT_EQ(sw_->datapath().flow_count(), 10u);
  EXPECT_EQ(sw_->datapath().mask_count(), 1u);
  // A fresh connection always misses.
  EXPECT_EQ(
      sw_->inject(tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), 7777, 80),
                  0),
      Datapath::Path::kMiss);
}

TEST_F(SwitchTest, IdleFlowsEvictedByRevalidator) {
  setup_l3_switch();
  sw_->inject(tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), 1, 2), 0);
  sw_->handle_upcalls(0);
  EXPECT_EQ(sw_->datapath().flow_count(), 1u);

  // Before the idle timeout: kept.
  clock_.advance(5 * kSecond);
  sw_->run_maintenance(clock_.now());
  EXPECT_EQ(sw_->datapath().flow_count(), 1u);

  // Past the 10 s idle timeout: evicted.
  clock_.advance(6 * kSecond);
  sw_->run_maintenance(clock_.now());
  EXPECT_EQ(sw_->datapath().flow_count(), 0u);
  EXPECT_EQ(sw_->counters().reval_deleted_idle, 1u);
}

TEST_F(SwitchTest, TrafficKeepsFlowsAlive) {
  setup_l3_switch();
  Packet p = tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), 1, 2);
  sw_->inject(p, 0);
  sw_->handle_upcalls(0);
  for (int i = 1; i <= 30; ++i) {
    clock_.advance(1 * kSecond);
    sw_->inject(p, clock_.now());
    sw_->run_maintenance(clock_.now());
    EXPECT_EQ(sw_->datapath().flow_count(), 1u) << "second " << i;
  }
}

TEST_F(SwitchTest, FlowTableChangeUpdatesCachedActions) {
  setup_l3_switch();
  sw_->add_port(3);
  Packet p = tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), 1, 2);
  sw_->inject(p, 0);
  sw_->handle_upcalls(0);
  EXPECT_EQ(sw_->inject(p, 0), Datapath::Path::kMegaflowHit);
  EXPECT_EQ(sw_->port_stats(2).tx_packets, 2u);

  // Repoint the /8 toward port 3 (e.g. a VM migrated).
  sw_->table(0).add_flow(
      MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 10,
      OfActions().output(3));
  clock_.advance(kSecond);
  sw_->run_maintenance(clock_.now());
  EXPECT_EQ(sw_->counters().reval_updated_actions, 1u);

  sw_->inject(p, clock_.now());
  EXPECT_EQ(sw_->port_stats(3).tx_packets, 1u);  // now out port 3
}

TEST_F(SwitchTest, FlowDeletionInvalidatesCache) {
  setup_l3_switch();
  Packet p = tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), 1, 2);
  sw_->inject(p, 0);
  sw_->handle_upcalls(0);

  sw_->table(0).delete_flow(
      MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 10);
  clock_.advance(kSecond);
  sw_->run_maintenance(clock_.now());
  // The re-translation now misses (different wildcards): flow removed.
  EXPECT_EQ(sw_->datapath().flow_count(), 0u);
  EXPECT_EQ(sw_->inject(p, clock_.now()), Datapath::Path::kMiss);
}

TEST_F(SwitchTest, FlowLimitEnforced) {
  SwitchConfig cfg;
  cfg.flow_limit = 50;
  cfg.dynamic_flow_limit = false;
  cfg.megaflows_enabled = false;  // force one entry per connection
  setup_l3_switch(cfg);
  for (uint16_t i = 0; i < 200; ++i) {
    sw_->inject(
        tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), (uint16_t)(100 + i),
                80),
        clock_.now());
    sw_->handle_upcalls(clock_.now());
    clock_.advance(kMillisecond);
  }
  EXPECT_EQ(sw_->datapath().flow_count(), 200u);
  sw_->run_maintenance(clock_.now());
  EXPECT_LE(sw_->datapath().flow_count(), 50u);
  EXPECT_GT(sw_->counters().evicted_flow_limit, 0u);
}

TEST_F(SwitchTest, DynamicFlowLimitTracksRevalidationBudget) {
  SwitchConfig cfg;
  cfg.flow_limit = 200000;
  cfg.max_revalidation_ns = 1 * kSecond;
  cfg.cost.reval_per_flow = 20000;  // pretend revalidation is expensive
  cfg.cost.ghz = 2.0;
  setup_l3_switch(cfg);
  sw_->run_maintenance(clock_.now());
  // Budget: 2e9 cycles/s / 20000 = 100k flows < configured 200k.
  EXPECT_EQ(sw_->effective_flow_limit(), 100000u);
}

TEST_F(SwitchTest, MacMoveRevalidatesNormalFlows) {
  SwitchConfig cfg;
  std::unique_ptr<Switch>& sw = sw_;
  sw = std::make_unique<Switch>(cfg);
  sw->add_port(1);
  sw->add_port(2);
  sw->add_port(3);
  sw->table(0).add_flow(Match{}, 0, OfActions().normal());

  // Host A (port 1) talks to host B; B was learned on port 2.
  Packet from_b = tcp_pkt(2, Ipv4(2, 2, 2, 2), Ipv4(1, 1, 1, 1), 2, 1);
  from_b.key.set_eth_src(EthAddr(0, 0, 0, 0, 0, 0xbb));
  from_b.key.set_eth_dst(EthAddr(0, 0, 0, 0, 0, 0xaa));
  sw->inject(from_b, 0);
  sw->handle_upcalls(0);

  Packet to_b = tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  to_b.key.set_eth_src(EthAddr(0, 0, 0, 0, 0, 0xaa));
  to_b.key.set_eth_dst(EthAddr(0, 0, 0, 0, 0, 0xbb));
  sw->inject(to_b, 0);
  sw->handle_upcalls(0);
  EXPECT_EQ(sw->port_stats(2).tx_packets, 1u);

  // B migrates to port 3 and sends traffic (gratuitous frame).
  Packet from_b3 = from_b;
  from_b3.key.set_in_port(3);
  clock_.advance(kSecond);
  sw->inject(from_b3, clock_.now());
  sw->handle_upcalls(clock_.now());
  sw->run_maintenance(clock_.now());

  // Traffic to B must now exit port 3 (cached flow updated, not stale).
  const uint64_t p3_before = sw->port_stats(3).tx_packets;
  const uint64_t p2_before = sw->port_stats(2).tx_packets;
  sw->inject(to_b, clock_.now());
  sw->handle_upcalls(clock_.now());
  EXPECT_EQ(sw->port_stats(3).tx_packets, p3_before + 1);
  EXPECT_EQ(sw->port_stats(2).tx_packets, p2_before);  // unchanged
}

TEST_F(SwitchTest, TagModeSkipsUnrelatedFlows) {
  SwitchConfig cfg;
  cfg.reval_mode = RevalidationMode::kTags;
  sw_ = std::make_unique<Switch>(cfg);
  sw_->add_port(1);
  sw_->add_port(2);
  sw_->table(0).add_flow(Match{}, 0, OfActions().normal());

  // Set up flows for several distinct MAC pairs.
  for (uint8_t i = 0; i < 8; ++i) {
    Packet p = tcp_pkt(1, Ipv4(1, 1, 1, i), Ipv4(2, 2, 2, i), 1, 2);
    p.key.set_eth_src(EthAddr(0, 0, 0, 0, 1, i));
    p.key.set_eth_dst(EthAddr(0, 0, 0, 0, 2, i));
    sw_->inject(p, 0);
    sw_->handle_upcalls(0);
  }
  sw_->run_maintenance(clock_.now());  // absorb initial learning churn

  // Move ONE binding; tag mode should skip most unrelated flows.
  Packet mover = tcp_pkt(2, Ipv4(9, 9, 9, 9), Ipv4(1, 1, 1, 0), 9, 9);
  mover.key.set_eth_src(EthAddr(0, 0, 0, 0, 1, 0));  // MAC of host 0 moved
  mover.key.set_eth_dst(EthAddr(0, 0, 0, 0, 9, 9));
  clock_.advance(kSecond);
  sw_->inject(mover, clock_.now());
  sw_->handle_upcalls(clock_.now());
  sw_->run_maintenance(clock_.now());
  EXPECT_GT(sw_->counters().reval_skipped_by_tags, 0u);
}

TEST_F(SwitchTest, ControllerActionCounted) {
  SwitchConfig cfg;
  setup_l3_switch(cfg);
  sw_->table(0).add_flow(MatchBuilder().arp(), 100,
                         OfActions().controller());
  Packet arp;
  arp.key.set_in_port(1);
  arp.key.set_eth_type(ethertype::kArp);
  arp.key.set_arp_op(1);
  sw_->inject(arp, 0);
  sw_->handle_upcalls(0);
  EXPECT_EQ(sw_->counters().to_controller, 1u);
}

TEST_F(SwitchTest, CpuAccountingAccumulates) {
  setup_l3_switch();
  EXPECT_EQ(sw_->cpu().kernel_cycles, 0.0);
  Packet p = tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 5), 1, 2);
  sw_->inject(p, 0);
  const double k1 = sw_->cpu().kernel_cycles;
  EXPECT_GT(k1, 0.0);
  sw_->handle_upcalls(0);
  EXPECT_GT(sw_->cpu().user_cycles, 0.0);
  // A cache hit charges fewer kernel cycles than the miss did.
  const double before = sw_->cpu().kernel_cycles;
  sw_->inject(p, 0);
  EXPECT_LT(sw_->cpu().kernel_cycles - before, k1);
}

TEST_F(SwitchTest, UpcallBatchingChargesFewerCycles) {
  SwitchConfig batched;
  SwitchConfig unbatched;
  unbatched.batching = false;
  for (SwitchConfig* c : {&batched, &unbatched}) c->n_tables = 1;

  double user[2];
  int idx = 0;
  for (SwitchConfig* c : {&batched, &unbatched}) {
    Switch sw(*c);
    sw.add_port(1);
    sw.add_port(2);
    sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));
    for (uint16_t i = 0; i < 32; ++i)
      sw.inject(tcp_pkt(1, Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, (uint8_t)i),
                        (uint16_t)(100 + i), 80),
                0);
    sw.handle_upcalls(0);
    user[idx++] = sw.cpu().user_cycles;
  }
  EXPECT_LT(user[0], user[1]);  // batching amortizes the syscall cost
}

// Conntrack-pressure degradation (DESIGN.md §15): sustained occupancy of
// the bounded connection table ratchets the megaflow limit down (the
// per-connection megaflows ct churn mints are the cost being shed), with
// the same engage/hysteresis shape as the mask-explosion detector.
TEST(StatefulPressureTest, CtPressureBacksOffFlowLimitWithHysteresis) {
  SwitchConfig cfg;
  cfg.ct_max_entries = 8;
  cfg.degradation.ct_pressure_ratio = 0.75;
  Switch sw(cfg);
  sw.add_port(1);
  VirtualClock clock;

  auto conn = [](uint16_t n) {
    FlowKey k;
    k.set_eth_type(ethertype::kIpv4);
    k.set_nw_proto(ipproto::kTcp);
    k.set_nw_src(Ipv4(192, 168, 0, 1));
    k.set_nw_dst(Ipv4(10, 0, 0, 2));
    k.set_tp_src(static_cast<uint16_t>(1024 + n));
    k.set_tp_dst(80);
    return k;
  };

  // Below the engage ratio nothing happens.
  for (uint16_t n = 0; n < 5; ++n) sw.ct_commit(conn(n), 0, clock.now());
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // 5/8 = 0.625 < 0.75
  EXPECT_FALSE(sw.ct_pressure_active());
  EXPECT_EQ(sw.counters().ct_pressure_engaged, 0u);

  // Crossing it engages once and applies a multiplicative backoff.
  sw.ct_commit(conn(5), 0, clock.now());  // 6/8 = 0.75
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_TRUE(sw.ct_pressure_active());
  EXPECT_EQ(sw.counters().ct_pressure_engaged, 1u);
  const uint64_t backoffs = sw.counters().flow_limit_backoffs;
  EXPECT_GE(backoffs, 1u);

  // Pressure persisting at engage level keeps ratcheting (no re-engage).
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_EQ(sw.counters().ct_pressure_engaged, 1u);
  EXPECT_EQ(sw.counters().flow_limit_backoffs, backoffs + 1);

  // The mid-band (between ratio/2 and ratio) neither ratchets further nor
  // disengages: hysteresis, not a point threshold.
  for (uint16_t n = 0; n < 3; ++n) sw.ct_remove(conn(n), 0);
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // 3/8 = 0.375 >= 0.75/2
  EXPECT_TRUE(sw.ct_pressure_active());
  EXPECT_EQ(sw.counters().flow_limit_backoffs, backoffs + 1);

  // Falling below half the engage ratio disengages.
  sw.ct_remove(conn(3), 0);
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // 2/8 = 0.25 < 0.375
  EXPECT_FALSE(sw.ct_pressure_active());
  EXPECT_EQ(sw.counters().ct_pressure_engaged, 1u);
  EXPECT_EQ(sw.counters().flow_limit_backoffs, backoffs + 1);
}

// The knob defaults to off: a switch without ct_pressure_ratio set behaves
// bit-for-bit like the pre-detector switch even with a full table.
TEST(StatefulPressureTest, CtPressureDefaultsOff) {
  SwitchConfig cfg;
  cfg.ct_max_entries = 4;
  Switch sw(cfg);
  sw.add_port(1);
  VirtualClock clock;
  for (uint16_t n = 0; n < 4; ++n) {
    FlowKey k;
    k.set_eth_type(ethertype::kIpv4);
    k.set_nw_proto(ipproto::kTcp);
    k.set_nw_src(Ipv4(192, 168, 0, 1));
    k.set_nw_dst(Ipv4(10, 0, 0, 2));
    k.set_tp_src(static_cast<uint16_t>(2000 + n));
    k.set_tp_dst(80);
    sw.ct_commit(k, 0, clock.now());
  }
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_FALSE(sw.ct_pressure_active());
  EXPECT_EQ(sw.counters().ct_pressure_engaged, 0u);
  EXPECT_EQ(sw.counters().flow_limit_backoffs, 0u);
}

}  // namespace
}  // namespace ovs
