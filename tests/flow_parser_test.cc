// Tests for the ovs-ofctl-style flow text parser and formatter.
#include "ofproto/flow_parser.h"

#include <gtest/gtest.h>

#include "vswitchd/switch.h"

namespace ovs {
namespace {

ParsedFlow must_parse(const std::string& s) {
  FlowParseResult r = parse_flow(s);
  EXPECT_TRUE(r.ok) << s << " -> " << r.error;
  return r.flow;
}

TEST(FlowParserTest, MinimalFlow) {
  ParsedFlow f = must_parse("actions=drop");
  EXPECT_EQ(f.table, 0u);
  EXPECT_EQ(f.priority, 0);
  EXPECT_TRUE(f.match.mask.is_zero());
  EXPECT_EQ(f.actions.to_string(), "drop");
}

TEST(FlowParserTest, FullTcpAcl) {
  ParsedFlow f = must_parse(
      "table=2, priority=100, tcp, nw_dst=9.1.1.0/24, tp_dst=80, "
      "actions=output:2");
  EXPECT_EQ(f.table, 2u);
  EXPECT_EQ(f.priority, 100);
  EXPECT_TRUE(f.match.mask.is_exact(FieldId::kEthType));
  EXPECT_TRUE(f.match.mask.is_exact(FieldId::kNwProto));
  EXPECT_EQ(f.match.key.nw_proto(), ipproto::kTcp);
  EXPECT_EQ(f.match.mask.prefix_len(FieldId::kNwDst), 24);
  EXPECT_EQ(f.match.key.nw_dst(), Ipv4(9, 1, 1, 0));
  EXPECT_EQ(f.match.key.tp_dst(), 80);
  ASSERT_EQ(f.actions.list.size(), 1u);
  EXPECT_EQ(std::get<OfOutput>(f.actions.list[0]).port, 2u);
}

TEST(FlowParserTest, ProtocolKeywords) {
  EXPECT_EQ(must_parse("arp, actions=normal").match.key.eth_type(),
            ethertype::kArp);
  EXPECT_EQ(must_parse("udp, actions=drop").match.key.nw_proto(),
            ipproto::kUdp);
  EXPECT_EQ(must_parse("icmp, actions=drop").match.key.nw_proto(),
            ipproto::kIcmp);
  EXPECT_EQ(must_parse("ipv6, actions=drop").match.key.eth_type(),
            ethertype::kIpv6);
}

TEST(FlowParserTest, MacAndMetadataFields) {
  ParsedFlow f = must_parse(
      "priority=5, in_port=3, dl_src=02:00:00:00:00:01, "
      "dl_dst=ff:ff:ff:ff:ff:ff, metadata=7, reg1=42, actions=controller");
  EXPECT_EQ(f.match.key.in_port(), 3u);
  EXPECT_EQ(f.match.key.eth_src(), EthAddr(0x02, 0, 0, 0, 0, 1));
  EXPECT_TRUE(f.match.key.eth_dst().is_broadcast());
  EXPECT_EQ(f.match.key.metadata(), 7u);
  EXPECT_EQ(f.match.key.reg(1), 42u);
  EXPECT_TRUE(f.match.mask.is_exact(FieldId::kReg1));
}

TEST(FlowParserTest, Ipv6Prefix) {
  ParsedFlow f = must_parse(
      "ipv6, ipv6_dst=2001:db8:0:0:0:0:0:1/32, actions=output:1");
  EXPECT_EQ(f.match.mask.prefix_len(FieldId::kIpv6Dst), 32);
  EXPECT_EQ(f.match.key.ipv6_dst().hi() >> 32, 0x20010db8u);
}

TEST(FlowParserTest, MultiActionPipeline) {
  ParsedFlow f = must_parse(
      "ip, actions=set_field:5->reg0, resubmit(,3), output:9");
  ASSERT_EQ(f.actions.list.size(), 3u);
  EXPECT_EQ(std::get<OfSetField>(f.actions.list[0]).value, 5u);
  EXPECT_EQ(std::get<OfResubmit>(f.actions.list[1]).table, 3);
  EXPECT_EQ(std::get<OfOutput>(f.actions.list[2]).port, 9u);
}

TEST(FlowParserTest, SetFieldValueTypes) {
  ParsedFlow f = must_parse(
      "ip, actions=set_field:10.0.0.9->nw_dst, "
      "set_field:02:00:00:00:00:09->eth_dst, set_field:0x2a->reg2");
  EXPECT_EQ(std::get<OfSetField>(f.actions.list[0]).value,
            Ipv4(10, 0, 0, 9).value());
  EXPECT_EQ(std::get<OfSetField>(f.actions.list[1]).value,
            EthAddr(0x02, 0, 0, 0, 0, 9).bits());
  EXPECT_EQ(std::get<OfSetField>(f.actions.list[2]).value, 42u);
}

TEST(FlowParserTest, CtAndTunnelActions) {
  ParsedFlow f = must_parse("tcp, actions=ct(commit,table=4)");
  const auto& ct = std::get<OfCt>(f.actions.list[0]);
  EXPECT_TRUE(ct.commit);
  EXPECT_EQ(ct.next_table, 4);

  ParsedFlow g = must_parse("ip, actions=tunnel(1000,77)");
  const auto& t = std::get<OfTunnel>(g.actions.list[0]);
  EXPECT_EQ(t.port, 1000u);
  EXPECT_EQ(t.tun_id, 77u);
}

TEST(FlowParserTest, IcmpTypeCode) {
  ParsedFlow f = must_parse("icmp, icmp_type=3, icmp_code=4, actions=drop");
  EXPECT_EQ(f.match.key.tp_src(), 3);
  EXPECT_EQ(f.match.key.tp_dst(), 4);
}

TEST(FlowParserTest, PortPrefix) {
  ParsedFlow f = must_parse("tcp, tp_dst=1024/6, actions=drop");
  EXPECT_EQ(f.match.mask.prefix_len(FieldId::kTpDst), 6);
}

TEST(FlowParserTest, RejectsGarbage) {
  EXPECT_FALSE(parse_flow("").ok);  // no actions
  EXPECT_FALSE(parse_flow("ip").ok);
  EXPECT_FALSE(parse_flow("bogus=1, actions=drop").ok);
  EXPECT_FALSE(parse_flow("nw_dst=999.0.0.1, actions=drop").ok);
  EXPECT_FALSE(parse_flow("nw_dst=10.0.0.0/33, actions=drop").ok);
  EXPECT_FALSE(parse_flow("tp_dst=99999, actions=drop").ok);
  EXPECT_FALSE(parse_flow("ip, actions=fly:2").ok);
  EXPECT_FALSE(parse_flow("ip, actions=output:x").ok);
  EXPECT_FALSE(parse_flow("ip, actions=resubmit(,99)").ok);
  EXPECT_FALSE(parse_flow("ip, actions=ct(commit)").ok);  // needs table=
  EXPECT_FALSE(parse_flow("table=99, ip, actions=drop").ok);
  EXPECT_FALSE(parse_flow("dl_src=zz:00:00:00:00:01, actions=drop").ok);
}

TEST(FlowParserTest, ErrorsNameTheProblem) {
  EXPECT_NE(parse_flow("frobnicate=1, actions=drop").error.find("frobnicate"),
            std::string::npos);
  EXPECT_NE(parse_flow("ip, actions=warp:9").error.find("warp"),
            std::string::npos);
}

TEST(FlowParserTest, FormatRoundTrips) {
  const char* flows[] = {
      "table=0, priority=100, tcp, nw_dst=9.1.1.0/24, tp_dst=80, "
      "actions=output:2",
      "table=1, priority=5, arp, actions=normal",
      "table=2, priority=7, in_port=3, metadata=9, "
      "actions=set_field:5->reg0, resubmit(,3)",
      "table=3, priority=1, icmp, icmp_type=3, actions=drop",
      "table=0, priority=0, actions=controller",
      "table=1, priority=9, udp, tp_src=53, actions=tunnel(1000,42)",
      "table=0, priority=2, tcp, actions=ct(commit,table=1)",
  };
  for (const char* text : flows) {
    ParsedFlow f1 = must_parse(text);
    const std::string formatted =
        format_flow(f1.table, f1.priority, f1.match, f1.actions);
    ParsedFlow f2 = must_parse(formatted);
    EXPECT_EQ(f1.table, f2.table) << formatted;
    EXPECT_EQ(f1.priority, f2.priority) << formatted;
    EXPECT_EQ(f1.match, f2.match) << formatted;
    EXPECT_EQ(f1.actions, f2.actions) << formatted;
  }
}

TEST(FlowParserTest, SwitchTextInterface) {
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);
  EXPECT_EQ(sw.add_flow("table=0, priority=10, ip, nw_dst=10.0.0.0/8, "
                        "actions=output:2"),
            "");
  EXPECT_EQ(sw.add_flow("table=0, priority=20, arp, actions=normal"), "");
  EXPECT_NE(sw.add_flow("table=0, priority=1, junk, actions=drop"), "");

  auto flows = sw.dump_flows();
  ASSERT_EQ(flows.size(), 2u);
  // dump output must itself be parseable (stable round trip).
  for (const std::string& f : flows) EXPECT_TRUE(parse_flow(f).ok) << f;

  // And the flows must actually work.
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_dst(Ipv4(10, 1, 2, 3));
  sw.inject(p, 0);
  sw.handle_upcalls(0);
  EXPECT_EQ(sw.port_stats(2).tx_packets, 1u);
}

TEST(FlowParserTest, WhitespaceTolerance) {
  ParsedFlow f = must_parse(
      "  table=1 ,priority=3,  tcp ,nw_dst=1.2.3.4  , actions= output:7 ");
  EXPECT_EQ(f.table, 1u);
  EXPECT_EQ(f.match.key.nw_dst(), Ipv4(1, 2, 3, 4));
  EXPECT_EQ(std::get<OfOutput>(f.actions.list[0]).port, 7u);
}

TEST(FlowParserTest, CookieSupport) {
  ParsedFlow f = must_parse("cookie=0xdead, ip, actions=drop");
  EXPECT_EQ(f.cookie, 0xdeadu);
}

}  // namespace
}  // namespace ovs
