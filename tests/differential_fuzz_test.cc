// Model-based differential fuzzing: replay seeded scenarios against every
// switch configuration and diff per-packet action traces, converged probe
// results, ledger invariants, and the megaflow invariant checker against
// the naive OracleSwitch (src/testing/). A deliberately unsound
// configuration — the historical kTags revalidation ablation, whose Bloom
// tags track only MAC learning and so never repair flows invalidated by
// table changes — must be detected and the triggering scenario minimized
// by the delta-debugging shrinker.
//
// Budget knobs (CI sets these; defaults satisfy the acceptance bar):
//   VSWITCH_FUZZ_SEEDS   scenarios for the zero-divergence sweep (>= 200)
//   VSWITCH_FUZZ_EVENTS  events per generated scenario
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/differential.h"
#include "testing/oracle_switch.h"
#include "testing/scenario.h"

namespace ovs {
namespace {

using fuzz::DifferentialRunner;
using fuzz::DiffConfig;
using fuzz::Divergence;
using fuzz::FuzzEvent;
using fuzz::GeneratorConfig;
using fuzz::Scenario;

size_t env_or(const char* name, size_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

GeneratorConfig generator_config() {
  GeneratorConfig cfg;
  cfg.n_events = env_or("VSWITCH_FUZZ_EVENTS", cfg.n_events);
  return cfg;
}

// CI uploads FUZZ_REPRO_* from the build directory on failure; each file is
// a self-contained, replayable minimized scenario.
std::string repro_path(uint64_t seed, const std::string& config_name) {
  std::string tag = config_name;
  for (char& c : tag)
    if (c == '/' || c == ' ') c = '-';
  return "FUZZ_REPRO_seed" + std::to_string(seed) + "_" + tag + ".scenario";
}

TEST(DifferentialFuzz, EventSerializationRoundTrips) {
  const Scenario sc = fuzz::generate_scenario(7, generator_config());
  ASSERT_FALSE(sc.events.empty());
  for (const FuzzEvent& ev : sc.events) {
    FuzzEvent back;
    ASSERT_TRUE(FuzzEvent::from_line(ev.to_line(), &back)) << ev.to_line();
    EXPECT_EQ(ev.to_line(), back.to_line());
  }
  Scenario parsed;
  ASSERT_TRUE(Scenario::deserialize(sc.serialize(), &parsed));
  EXPECT_EQ(sc.serialize(), parsed.serialize());
  EXPECT_EQ(sc.seed, parsed.seed);
  EXPECT_EQ(sc.events.size(), parsed.events.size());
}

TEST(DifferentialFuzz, GeneratorIsDeterministic) {
  const GeneratorConfig cfg = generator_config();
  EXPECT_EQ(fuzz::generate_scenario(42, cfg).serialize(),
            fuzz::generate_scenario(42, cfg).serialize());
  EXPECT_NE(fuzz::generate_scenario(42, cfg).serialize(),
            fuzz::generate_scenario(43, cfg).serialize());
}

TEST(DifferentialFuzz, OracleEpochsModelLazyInvalidation) {
  fuzz::OracleSwitch oracle;
  oracle.add_port(1);
  oracle.add_port(2);
  ASSERT_EQ("", oracle.add_flow("priority=10, ip, nw_dst=10.1.0.0/16, "
                                "actions=output:2"));
  FlowKey k;
  k.set_in_port(1);
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_dst(Ipv4((10u << 24) | (1u << 16) | 5));
  k.set_nw_proto(ipproto::kTcp);
  EXPECT_EQ("output:2", oracle.current(k, 0).to_string());

  // A shadowing reroute opens a new epoch: both answers acceptable until
  // the runner observes a clean revalidation pass and collapses.
  ASSERT_EQ("", oracle.add_flow("priority=40, ip, nw_dst=10.1.0.0/16, "
                                "actions=output:1"));
  auto acc = oracle.acceptable(k, 0);
  ASSERT_EQ(3u, oracle.epoch_count());  // empty, +rule, +reroute
  std::vector<std::string> strs;
  for (const auto& a : acc) strs.push_back(a.to_string());
  EXPECT_NE(strs.end(), std::find(strs.begin(), strs.end(), "output:2"));
  // Hairpin suppression: output:1 == in_port, so the new epoch drops.
  EXPECT_NE(strs.end(), std::find(strs.begin(), strs.end(), "drop"));

  oracle.collapse();
  EXPECT_EQ(1u, oracle.epoch_count());
  EXPECT_EQ(1u, oracle.acceptable(k, 0).size());
}

// The acceptance bar: >= 200 seeded scenarios, every sound configuration,
// zero divergences. Any divergence is shrunk and written out as a
// FUZZ_REPRO_* artifact before the test fails.
TEST(DifferentialFuzz, AllConfigsMatchOracle) {
  const size_t n_seeds = env_or("VSWITCH_FUZZ_SEEDS", 200);
  const GeneratorConfig gcfg = generator_config();
  const std::vector<DiffConfig> cfgs = fuzz::standard_configs();
  ASSERT_EQ(10u, cfgs.size());
  DifferentialRunner runner;

  std::vector<std::string> failures;
  for (uint64_t seed = 1; seed <= n_seeds; ++seed) {
    const Scenario sc = fuzz::generate_scenario(seed, gcfg);
    for (const DiffConfig& cfg : cfgs) {
      std::optional<Divergence> d = runner.run(sc, cfg);
      if (!d) continue;
      const Scenario small = runner.shrink(sc, cfg);
      const std::string path = repro_path(seed, cfg.name);
      fuzz::save_scenario(path, small, d->to_string());
      failures.push_back(d->to_string() + " (repro: " + path + ", " +
                         std::to_string(small.events.size()) + " events)");
      if (failures.size() >= 4) break;  // enough signal; stop burning time
    }
    if (failures.size() >= 4) break;
  }
  EXPECT_TRUE(failures.empty()) << [&] {
    std::string all;
    for (const std::string& f : failures) all += f + "\n";
    return all;
  }();
}

// The classifier-engine matrix: the same seeded scenarios, but the switch
// under test runs the chained-tuple or bloom-gated engine (per-packet,
// batched, and sharded/batched variants) or a tenant-partitioned classifier
// (one point per engine, DESIGN.md §14) while the oracle stays pinned to
// the flat staged-TSS reference. Zero divergences means the alternative
// engines are end-to-end indistinguishable from the paper baseline —
// megaflow generation included, since unsound wildcards surface as probe
// or trace divergences here.
TEST(DifferentialFuzz, EngineMatrixMatchesOracle) {
  const size_t n_seeds = env_or("VSWITCH_FUZZ_SEEDS", 200);
  const GeneratorConfig gcfg = generator_config();
  const std::vector<DiffConfig> cfgs = fuzz::engine_configs();
  ASSERT_EQ(9u, cfgs.size());
  DifferentialRunner runner;

  std::vector<std::string> failures;
  for (uint64_t seed = 1; seed <= n_seeds; ++seed) {
    const Scenario sc = fuzz::generate_scenario(seed, gcfg);
    for (const DiffConfig& cfg : cfgs) {
      std::optional<Divergence> d = runner.run(sc, cfg);
      if (!d) continue;
      const Scenario small = runner.shrink(sc, cfg);
      const std::string path = repro_path(seed, cfg.name);
      fuzz::save_scenario(path, small, d->to_string());
      failures.push_back(d->to_string() + " (repro: " + path + ", " +
                         std::to_string(small.events.size()) + " events)");
      if (failures.size() >= 4) break;  // enough signal; stop burning time
    }
    if (failures.size() >= 4) break;
  }
  EXPECT_TRUE(failures.empty()) << [&] {
    std::string all;
    for (const std::string& f : failures) all += f + "\n";
    return all;
  }();
}

// The harness must have teeth: a switch with the historical tags-only
// revalidator (which silently skips repairing flows staled by table
// changes) must diverge, and the shrinker must cut the reproducer down to
// a handful of events.
TEST(DifferentialFuzz, TagsAblationIsCaughtAndShrunk) {
  const GeneratorConfig gcfg = generator_config();
  const DiffConfig ablation = fuzz::tags_ablation_config();
  DifferentialRunner runner;

  Scenario found;
  std::optional<Divergence> d;
  uint64_t found_seed = 0;
  for (uint64_t seed = 1; seed <= 50 && !d; ++seed) {
    Scenario sc = fuzz::generate_scenario(seed, gcfg);
    d = runner.run(sc, ablation);
    if (d) {
      found = std::move(sc);
      found_seed = seed;
    }
  }
  ASSERT_TRUE(d.has_value())
      << "tags ablation produced no divergence in 50 seeds: the harness "
         "has no bug-finding power";

  const Scenario small = runner.shrink(found, ablation);
  EXPECT_LE(small.events.size(), 10u)
      << "shrinker left " << small.events.size() << " events:\n"
      << small.serialize();
  std::optional<Divergence> still = runner.run(small, ablation);
  ASSERT_TRUE(still.has_value()) << "shrunk scenario no longer diverges";

  // The minimized reproducer is the bug's signature, not the harness's:
  // every sound configuration replays it cleanly.
  for (const DiffConfig& cfg : fuzz::standard_configs()) {
    std::optional<Divergence> dv = runner.run(small, cfg);
    EXPECT_FALSE(dv.has_value())
        << cfg.name << " diverges on the minimized scenario: "
        << dv->to_string() << "\n"
        << small.serialize();
  }

  // Round-trip through the corpus format and re-reproduce.
  const std::string path = repro_path(found_seed, ablation.name);
  ASSERT_TRUE(fuzz::save_scenario(path, small, still->to_string()));
  Scenario loaded;
  ASSERT_TRUE(fuzz::load_scenario(path, &loaded));
  EXPECT_EQ(small.serialize(), loaded.serialize());
  EXPECT_TRUE(runner.run(loaded, ablation).has_value());
  std::remove(path.c_str());
}

// Same teeth check for the second ablation (DESIGN.md §15): a switch that
// ignores conntrack generation as a revalidation dirtiness source keeps
// serving megaflows stamped with stale ct_state (or dead NAT bindings)
// after the connection table changed underneath them. The fuzzer must
// diverge on it and the shrinker must minimize the reproducer.
TEST(DifferentialFuzz, CtAblationIsCaughtAndShrunk) {
  const GeneratorConfig gcfg = generator_config();
  const DiffConfig ablation = fuzz::ct_ablation_config();
  DifferentialRunner runner;

  Scenario found;
  std::optional<Divergence> d;
  uint64_t found_seed = 0;
  for (uint64_t seed = 1; seed <= 50 && !d; ++seed) {
    Scenario sc = fuzz::generate_scenario(seed, gcfg);
    d = runner.run(sc, ablation);
    if (d) {
      found = std::move(sc);
      found_seed = seed;
    }
  }
  ASSERT_TRUE(d.has_value())
      << "ct ablation produced no divergence in 50 seeds: the stateful "
         "scenarios have no bug-finding power";

  const Scenario small = runner.shrink(found, ablation);
  EXPECT_LE(small.events.size(), 10u)
      << "shrinker left " << small.events.size() << " events:\n"
      << small.serialize();
  std::optional<Divergence> still = runner.run(small, ablation);
  ASSERT_TRUE(still.has_value()) << "shrunk scenario no longer diverges";

  // The minimized reproducer indicts the ablation, not the harness: every
  // sound configuration replays it cleanly.
  for (const DiffConfig& cfg : fuzz::standard_configs()) {
    std::optional<Divergence> dv = runner.run(small, cfg);
    EXPECT_FALSE(dv.has_value())
        << cfg.name << " diverges on the minimized scenario: "
        << dv->to_string() << "\n"
        << small.serialize();
  }

  // Round-trip through the corpus format and re-reproduce.
  const std::string path = repro_path(found_seed, ablation.name);
  ASSERT_TRUE(fuzz::save_scenario(path, small, still->to_string()));
  Scenario loaded;
  ASSERT_TRUE(fuzz::load_scenario(path, &loaded));
  EXPECT_EQ(small.serialize(), loaded.serialize());
  EXPECT_TRUE(runner.run(loaded, ablation).has_value());
  std::remove(path.c_str());
}

#ifdef VSWITCH_TEST_CORPUS_DIR
// Checked-in minimized reproducers replay as ordinary test cases: each must
// still diverge under its ablation and replay cleanly under every sound
// configuration.
TEST(DifferentialFuzz, CorpusTagsStaleActionsReplays) {
  const std::string path =
      std::string(VSWITCH_TEST_CORPUS_DIR) + "/tags_stale_actions.scenario";
  Scenario sc;
  ASSERT_TRUE(fuzz::load_scenario(path, &sc)) << path;
  ASSERT_FALSE(sc.events.empty());

  DifferentialRunner runner;
  std::optional<Divergence> d = runner.run(sc, fuzz::tags_ablation_config());
  ASSERT_TRUE(d.has_value())
      << "corpus scenario no longer reproduces the tags-ablation bug";
  EXPECT_EQ("probe", d->kind) << d->to_string();

  for (const DiffConfig& cfg : fuzz::standard_configs()) {
    std::optional<Divergence> dv = runner.run(sc, cfg);
    EXPECT_FALSE(dv.has_value()) << cfg.name << ": " << dv->to_string();
  }
  for (const DiffConfig& cfg : fuzz::engine_configs()) {
    std::optional<Divergence> dv = runner.run(sc, cfg);
    EXPECT_FALSE(dv.has_value()) << cfg.name << ": " << dv->to_string();
  }
}

// Regression corpus for a real bug this harness found: the revalidator kept
// megaflows whose installed mask was broader than the fresh translation
// required, as long as the witness key's actions still agreed (an empty-table
// drop entry pinning only in_port then swallowed packets newer rules should
// route). Every sound configuration must now replay this cleanly.
TEST(DifferentialFuzz, CorpusOverbroadDropMegaflowReplays) {
  const std::string path = std::string(VSWITCH_TEST_CORPUS_DIR) +
                           "/overbroad_drop_megaflow.scenario";
  Scenario sc;
  ASSERT_TRUE(fuzz::load_scenario(path, &sc)) << path;
  ASSERT_EQ(3u, sc.events.size());

  DifferentialRunner runner;
  for (const DiffConfig& cfg : fuzz::standard_configs()) {
    std::optional<Divergence> dv = runner.run(sc, cfg);
    EXPECT_FALSE(dv.has_value()) << cfg.name << ": " << dv->to_string();
  }
  for (const DiffConfig& cfg : fuzz::engine_configs()) {
    std::optional<Divergence> dv = runner.run(sc, cfg);
    EXPECT_FALSE(dv.has_value()) << cfg.name << ": " << dv->to_string();
  }
}
// The three minimized stateful reproducers: each must still diverge under
// the CT ablation — with the expected probe signature — and replay cleanly
// under every sound configuration (standard + engine matrix).
class CorpusCtScenario : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusCtScenario, DivergesUnderCtAblationOnly) {
  const std::string path =
      std::string(VSWITCH_TEST_CORPUS_DIR) + "/" + GetParam();
  Scenario sc;
  ASSERT_TRUE(fuzz::load_scenario(path, &sc)) << path;
  ASSERT_FALSE(sc.events.empty());

  DifferentialRunner runner;
  std::optional<Divergence> d = runner.run(sc, fuzz::ct_ablation_config());
  ASSERT_TRUE(d.has_value())
      << "corpus scenario no longer reproduces the ct-ablation bug: "
      << path;
  EXPECT_EQ("probe", d->kind) << d->to_string();

  for (const DiffConfig& cfg : fuzz::standard_configs()) {
    std::optional<Divergence> dv = runner.run(sc, cfg);
    EXPECT_FALSE(dv.has_value()) << cfg.name << ": " << dv->to_string();
  }
  for (const DiffConfig& cfg : fuzz::engine_configs()) {
    std::optional<Divergence> dv = runner.run(sc, cfg);
    EXPECT_FALSE(dv.has_value()) << cfg.name << ": " << dv->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    StatefulCorpus, CorpusCtScenario,
    ::testing::Values("ct_stale_ctstate.scenario",
                      "ct_expiry_reval.scenario",
                      "ct_nat_rebinding.scenario"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      name = name.substr(0, name.find('.'));
      return name;
    });
#endif

}  // namespace
}  // namespace ovs
