// Tests for the MAC learning table.
#include "ofproto/mac_learning.h"

#include <gtest/gtest.h>

#include "sim/clock.h"

namespace ovs {
namespace {

TEST(MacLearningTest, LearnAndLookup) {
  MacLearning ml;
  EthAddr mac(2, 2, 3, 4, 5, 6);
  EXPECT_FALSE(ml.lookup(mac, 0, 0).has_value());
  EXPECT_TRUE(ml.learn(mac, 0, 3, 0));
  auto port = ml.lookup(mac, 0, 1);
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, 3u);
}

TEST(MacLearningTest, VlanSeparatesBindings) {
  MacLearning ml;
  EthAddr mac(2, 2, 3, 4, 5, 6);
  ml.learn(mac, 10, 1, 0);
  ml.learn(mac, 20, 2, 0);
  EXPECT_EQ(*ml.lookup(mac, 10, 0), 1u);
  EXPECT_EQ(*ml.lookup(mac, 20, 0), 2u);
  EXPECT_FALSE(ml.lookup(mac, 30, 0).has_value());
}

TEST(MacLearningTest, RelearnSamePortIsNotAChange) {
  MacLearning ml;
  EthAddr mac(2, 0, 0, 0, 0, 1);
  EXPECT_TRUE(ml.learn(mac, 0, 1, 0));
  const uint64_t gen = ml.generation();
  EXPECT_FALSE(ml.learn(mac, 0, 1, 100));  // refresh only
  EXPECT_EQ(ml.generation(), gen);
}

TEST(MacLearningTest, MacMoveBumpsGenerationAndTags) {
  MacLearning ml;
  EthAddr mac(2, 0, 0, 0, 0, 1);
  ml.learn(mac, 0, 1, 0);
  ml.take_changed_tags();
  const uint64_t gen = ml.generation();
  EXPECT_TRUE(ml.learn(mac, 0, 2, 10));  // moved ports
  EXPECT_GT(ml.generation(), gen);
  EXPECT_EQ(*ml.lookup(mac, 0, 10), 2u);
  EXPECT_EQ(ml.take_changed_tags(), MacLearning::tag(mac, 0));
  EXPECT_EQ(ml.take_changed_tags(), 0u);  // drained
}

TEST(MacLearningTest, MulticastSourceNotLearned) {
  MacLearning ml;
  EthAddr mcast(0xff, 0, 0, 0, 0, 1);
  EXPECT_FALSE(ml.learn(mcast, 0, 1, 0));
  EXPECT_EQ(ml.size(), 0u);
}

TEST(MacLearningTest, ExpiryAfterIdle) {
  MacLearning::Config cfg;
  cfg.idle_ns = 100;
  MacLearning ml(cfg);
  EthAddr mac(2, 0, 0, 0, 0, 1);
  ml.learn(mac, 0, 1, 0);
  EXPECT_TRUE(ml.lookup(mac, 0, 50).has_value());
  EXPECT_FALSE(ml.lookup(mac, 0, 200).has_value());  // lazily expired
  EXPECT_EQ(ml.expire(200), 1u);
  EXPECT_EQ(ml.size(), 0u);
}

TEST(MacLearningTest, RefreshPreventsExpiry) {
  MacLearning::Config cfg;
  cfg.idle_ns = 100;
  MacLearning ml(cfg);
  EthAddr mac(2, 0, 0, 0, 0, 1);
  ml.learn(mac, 0, 1, 0);
  ml.learn(mac, 0, 1, 90);  // refresh
  EXPECT_EQ(ml.expire(150), 0u);
  EXPECT_TRUE(ml.lookup(mac, 0, 150).has_value());
}

TEST(MacLearningTest, TableSizeCapped) {
  MacLearning::Config cfg;
  cfg.max_entries = 4;
  MacLearning ml(cfg);
  for (uint64_t i = 1; i <= 10; ++i) ml.learn(EthAddr(i), 0, 1, 0);
  EXPECT_EQ(ml.size(), 4u);
}

TEST(MacLearningTest, TagIsDeterministicSingleBit) {
  const uint64_t t1 = MacLearning::tag(EthAddr(1, 2, 3, 4, 5, 6), 7);
  const uint64_t t2 = MacLearning::tag(EthAddr(1, 2, 3, 4, 5, 6), 7);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(__builtin_popcountll(t1), 1);
}

}  // namespace
}  // namespace ovs
