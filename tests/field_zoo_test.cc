// The "field zoo": parameterized sweeps exercising every matchable field
// individually — single-field rules must match exactly on their field,
// produce single-field megaflows, and every prefix length of every
// prefix-capable field must behave.
#include <gtest/gtest.h>

#include "classifier/classifier.h"
#include "test_util.h"
#include "util/rng.h"

namespace ovs {
namespace {

using testutil::RuleSet;

// Distinct test values per field (non-zero, within width).
uint64_t test_value(FieldId f) {
  const FieldInfo& fi = field_info(f);
  const uint64_t v = 0x5aa5c33c0f69ULL;
  if (fi.width >= 64) return v;
  return (v & ((uint64_t{1} << fi.width) - 1)) | 1;
}

class FieldZooTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FieldZooTest, SingleFieldRuleSemantics) {
  const auto f = static_cast<FieldId>(GetParam());
  const FieldInfo& fi = field_info(f);
  SCOPED_TRACE(fi.name);

  RuleSet rs;
  Match m;
  m.mask.set_exact(f);
  if (fi.width == 128) {
    m.key.w[fi.word] = 0x1111222233334444ULL;
    m.key.w[fi.word + 1] = 0x5555666677778888ULL;
  } else {
    m.key.set(f, test_value(f));
  }
  rs.add(m, 10, 1);

  // Matching packet.
  FlowKey hit;
  if (fi.width == 128) {
    hit.w[fi.word] = 0x1111222233334444ULL;
    hit.w[fi.word + 1] = 0x5555666677778888ULL;
  } else {
    hit.set(f, test_value(f));
  }
  // Noise in *other* fields must not matter.
  Rng rng(GetParam());
  for (size_t i = 0; i < kNumFields; ++i) {
    const auto other = static_cast<FieldId>(i);
    const FieldInfo& ofi = field_info(other);
    if (ofi.word == fi.word || (fi.width == 128 && ofi.word == fi.word + 1) ||
        (ofi.width == 128 && ofi.word + 1 == fi.word))
      continue;  // same word: could clobber
    if (ofi.width != 128) hit.set(other, rng.next());
  }

  FlowWildcards wc;
  const Rule* r = rs.classifier().lookup(hit, &wc);
  ASSERT_NE(r, nullptr);
  // The megaflow consults exactly this field.
  EXPECT_TRUE(wc.is_exact(f));
  int fields_set = 0;
  for (size_t i = 0; i < kNumFields; ++i)
    if (wc.has_field(static_cast<FieldId>(i))) ++fields_set;
  EXPECT_EQ(fields_set, fi.width == 128 ? 1 : fields_set) << wc.to_string();

  // Non-matching packet (flip the low bit of the field).
  FlowKey miss = hit;
  if (fi.width == 128)
    miss.w[fi.word + 1] ^= 1;
  else
    miss.set(f, test_value(f) ^ 1);
  EXPECT_EQ(rs.classifier().lookup(miss), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, FieldZooTest, ::testing::Range<size_t>(0, kNumFields),
    [](const ::testing::TestParamInfo<size_t>& p) {
      return std::string(field_info(static_cast<FieldId>(p.param)).name);
    });

// Prefix sweep: every prefix length of the IPv4 destination behaves, and
// the trie keeps megaflows no wider than necessary.
class PrefixSweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrefixSweepTest, Ipv4DstPrefixLength) {
  const unsigned len = GetParam();
  RuleSet rs;
  const Ipv4 net(0xC0A80000u & ipv4_prefix_mask(len));  // 192.168/16 base
  rs.add(MatchBuilder().ip().nw_dst_prefix(net, len), 10, 1);

  FlowKey inside;
  inside.set_eth_type(ethertype::kIpv4);
  inside.set_nw_dst(Ipv4(net.value() | (len < 32 ? 1u : 0u)));
  FlowWildcards wc;
  ASSERT_NE(rs.classifier().lookup(inside, &wc), nullptr) << "len " << len;
  const int got = wc.prefix_len(FieldId::kNwDst);
  ASSERT_GE(got, 0);
  EXPECT_LE(static_cast<unsigned>(got), len == 0 ? 32 : len);

  if (len > 0) {
    FlowKey outside = inside;
    // Flip the last bit inside the prefix.
    outside.set_nw_dst(
        Ipv4(inside.nw_dst().value() ^ (1u << (32 - len))));
    EXPECT_EQ(rs.classifier().lookup(outside), nullptr) << "len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PrefixSweepTest,
                         ::testing::Range(0u, 33u));

// Stage-boundary sweep: a rule whose mask stops at each stage terminates
// staged lookups of non-matching packets at exactly that stage.
struct StageCase {
  const char* name;
  FieldId field;
  Stage expected_stage;
};

class StageBoundaryTest : public ::testing::TestWithParam<StageCase> {};

TEST_P(StageBoundaryTest, MissTerminatesAtFieldStage) {
  const StageCase& sc = GetParam();
  SCOPED_TRACE(sc.name);
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.staged_lookup = true;
  RuleSet rs(cfg);

  // Rule matches metadata=1 plus the stage field; the packet diverges only
  // in the stage field, so the miss is detected exactly at its stage.
  Match m;
  m.mask.set_exact(FieldId::kTunId);
  m.key.set_tun_id(1);
  m.mask.set_exact(sc.field);
  m.key.set(sc.field, 1);
  m.mask.set_exact(FieldId::kTpDst);  // force the tuple to span to L4
  m.key.set_tp_dst(80);
  rs.add(m, 5, 1);

  FlowKey pkt;
  pkt.set_tun_id(1);
  pkt.set(sc.field, 2);  // diverge at the stage under test
  pkt.set_tp_dst(80);

  FlowWildcards wc;
  EXPECT_EQ(rs.classifier().lookup(pkt, &wc), nullptr);
  // Fields of LATER stages must stay wildcarded.
  if (sc.expected_stage < Stage::kL4) {
    EXPECT_FALSE(wc.has_field(FieldId::kTpDst)) << wc.to_string();
  }
  if (sc.expected_stage < Stage::kL3) {
    EXPECT_FALSE(wc.has_field(FieldId::kNwDst)) << wc.to_string();
  }
  if (sc.expected_stage < Stage::kL2) {
    EXPECT_FALSE(wc.has_field(FieldId::kEthDst)) << wc.to_string();
  }
  EXPECT_EQ(rs.classifier().stats().stage_terminations,
            sc.expected_stage == Stage::kL4 ? 0u : 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Stages, StageBoundaryTest,
    ::testing::Values(
        StageCase{"metadata", FieldId::kMetadata, Stage::kMetadata},
        StageCase{"l2", FieldId::kEthDst, Stage::kL2},
        StageCase{"l3", FieldId::kNwDst, Stage::kL3},
        StageCase{"l4", FieldId::kTpSrc, Stage::kL4}),
    [](const ::testing::TestParamInfo<StageCase>& p) {
      return p.param.name;
    });

}  // namespace
}  // namespace ovs
