// Multi-threaded revalidator tests (§4.3, §6): two-tier tag fast path
// semantics, MAC-move repair through the plan/apply split, thread-count
// determinism, and a TSan-targeted churn stress against the sharded
// backend (RevalidatorStress.*, run under -DVSWITCH_TSAN in CI).
#include "vswitchd/revalidator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datapath/dp_backend.h"
#include "ofproto/mac_learning.h"
#include "vswitchd/switch.h"

namespace ovs {
namespace {

constexpr uint64_t kMs = 1'000'000ULL;

Packet eth_pkt(EthAddr src, EthAddr dst, uint32_t in_port) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(src);
  p.key.set_eth_dst(dst);
  p.size_bytes = 100;
  return p;
}

// MACs whose Bloom tags occupy distinct bits of the 64-bit tag space, so
// "flows touched by this MAC" is exact instead of probabilistic.
std::vector<EthAddr> distinct_tag_macs(size_t n) {
  std::vector<EthAddr> macs;
  uint64_t used = 0;
  for (uint64_t v = 0x020000000001ULL; macs.size() < n; ++v) {
    const EthAddr mac(v);
    const uint64_t t = MacLearning::tag(mac, 0);
    if ((used & t) != 0) continue;
    used |= t;
    macs.push_back(mac);
  }
  return macs;
}

// A NORMAL L2 switch with `n_clients` clients on ports 100.. and one server
// on port 1; every client has two megaflows (client->server, server->client).
class TwoTierTest : public ::testing::Test {
 protected:
  void setup(size_t n_clients, RevalidationMode mode) {
    SwitchConfig cfg;
    cfg.datapath_workers = 4;
    cfg.reval_mode = mode;
    cfg.degradation.enabled = false;
    cfg.dynamic_flow_limit = false;
    cfg.idle_timeout_ns = ~uint64_t{0} / 2;
    sw_ = std::make_unique<Switch>(cfg);
    macs_ = distinct_tag_macs(n_clients + 1);
    sw_->add_port(1);
    sw_->add_port(2);  // migration target
    for (size_t i = 0; i < n_clients; ++i)
      sw_->add_port(static_cast<uint32_t>(100 + i));
    sw_->table(0).add_flow(MatchBuilder(), 1, OfActions().normal());
    sw_->pipeline().mac_learning().learn(server(), 0, 1, now_);
    for (size_t i = 0; i < n_clients; ++i) {
      sw_->inject(eth_pkt(client(i), server(), client_port(i)), now_);
      sw_->handle_upcalls(now_);
      sw_->inject(eth_pkt(server(), client(i), 1), now_);
      sw_->handle_upcalls(now_);
    }
    // Settle: consume the setup's MAC-learning generation bump.
    tick();
    ASSERT_EQ(sw_->backend().flow_count(), 2 * n_clients);
  }

  EthAddr server() const { return macs_[0]; }
  EthAddr client(size_t i) const { return macs_[i + 1]; }
  static uint32_t client_port(size_t i) {
    return static_cast<uint32_t>(100 + i);
  }
  void tick() {
    now_ += kMs;
    sw_->run_maintenance(now_);
  }
  uint64_t table_rule_packets() {
    uint64_t total = 0;
    sw_->table(0).for_each([&](const OfRule* r) { total += r->packets(); });
    return total;
  }

  std::unique_ptr<Switch> sw_;
  std::vector<EthAddr> macs_;
  uint64_t now_ = kMs;
};

TEST_F(TwoTierTest, TagsSkipUntouchedFlows) {
  setup(8, RevalidationMode::kTwoTier);
  // Move one client MAC: exactly its two flows carry the changed tag.
  sw_->pipeline().mac_learning().learn(client(0), 0, 2, now_);
  tick();
  const RevalPassStats& ps = sw_->last_reval_pass();
  EXPECT_EQ(ps.examined, 16u);
  EXPECT_EQ(ps.retranslated, 2u);
  EXPECT_EQ(ps.skipped_by_tags, 14u);
  EXPECT_EQ(sw_->counters().reval_skipped_by_tags, 14u);
}

TEST_F(TwoTierTest, FullModeRetranslatesEverything) {
  setup(8, RevalidationMode::kFull);
  sw_->pipeline().mac_learning().learn(client(0), 0, 2, now_);
  tick();
  const RevalPassStats& ps = sw_->last_reval_pass();
  EXPECT_EQ(ps.examined, 16u);
  EXPECT_EQ(ps.retranslated, 16u);
  EXPECT_EQ(ps.skipped_by_tags, 0u);
}

TEST_F(TwoTierTest, SkippedFlowsStillPushStatistics) {
  setup(4, RevalidationMode::kTwoTier);
  // Traffic on client 3's flow, then dirty client 0 only: client 3's flow
  // is tag-skipped in the next pass but its statistics must still reach
  // the OpenFlow rule (two-tier attribution survives MAC-only churn).
  const uint64_t rule_pkts_before = table_rule_packets();
  for (int i = 0; i < 5; ++i)
    sw_->inject(eth_pkt(client(3), server(), client_port(3)), now_);
  sw_->pipeline().mac_learning().learn(client(0), 0, 2, now_);
  tick();
  EXPECT_GT(sw_->last_reval_pass().skipped_by_tags, 0u);
  EXPECT_GE(table_rule_packets(), rule_pkts_before + 5);
}

TEST_F(TwoTierTest, MacMoveRepairsReverseFlow) {
  setup(4, RevalidationMode::kTwoTier);
  // Client 1 migrates from port 101 to port 2; the server->client megaflow
  // must be repaired in place (same shape, new output port).
  sw_->pipeline().mac_learning().learn(client(1), 0, 2, now_);
  const uint64_t updated_before = sw_->counters().reval_updated_actions;
  tick();
  EXPECT_GE(sw_->counters().reval_updated_actions, updated_before + 1);
  // Post-repair traffic to the moved client exits the new port via the
  // repaired cache entry (no upcall).
  const uint64_t port2_before = sw_->port_stats(2).tx_packets;
  const uint64_t setups_before = sw_->counters().flow_setups;
  sw_->inject(eth_pkt(server(), client(1), 1), now_);
  EXPECT_EQ(sw_->port_stats(2).tx_packets, port2_before + 1);
  EXPECT_EQ(sw_->counters().flow_setups, setups_before);
}

TEST_F(TwoTierTest, ForcedFullPassBypassesTags) {
  setup(4, RevalidationMode::kTwoTier);
  // Corrupt an entry via the fault path equivalent: directly scramble and
  // force a full pass. Tags must not shield the corrupted entry.
  sw_->backend().corrupt_entry(0);
  sw_->force_full_revalidation();
  tick();
  const RevalPassStats& ps = sw_->last_reval_pass();
  EXPECT_EQ(ps.skipped_by_tags, 0u);
  EXPECT_EQ(ps.retranslated, ps.examined);
  // The corrupted entry was repaired or evicted; traffic flows normally.
  EXPECT_GT(sw_->counters().reval_updated_actions +
                sw_->counters().reval_deleted_stale,
            0u);
}

// Thread-count determinism: the serial apply phase makes the pass outcome
// (flow set, counters, statistics) independent of how many plan threads ran.
TEST(RevalidatorDeterminism, OutcomeIndependentOfThreadCount) {
  auto run = [](size_t threads) {
    SwitchConfig cfg;
    cfg.datapath_workers = 2;
    cfg.revalidator_threads = threads;
    Switch sw(cfg);
    for (uint32_t p = 1; p <= 4; ++p) sw.add_port(p);
    for (uint32_t i = 0; i < 4; ++i)
      sw.table(0).add_flow(
          MatchBuilder().ip().nw_dst_prefix(
              Ipv4(static_cast<uint8_t>(10 + i), 0, 0, 0), 8),
          10, OfActions().output(i + 1));
    uint64_t now = kMs;
    for (uint32_t i = 0; i < 600; ++i) {
      Packet p;
      p.key.set_in_port(1 + i % 4);
      p.key.set_eth_type(ethertype::kIpv4);
      p.key.set_nw_proto(ipproto::kTcp);
      p.key.set_nw_src(Ipv4(1, 1, 1, 1));
      p.key.set_nw_dst(Ipv4(static_cast<uint8_t>(10 + i % 4),
                            static_cast<uint8_t>(i / 4), 0, 1));
      p.key.set_tp_src(static_cast<uint16_t>(1024 + i));
      p.key.set_tp_dst(80);
      p.size_bytes = 100;
      sw.inject(p, now);
      if ((i & 31) == 31) sw.handle_upcalls(now);
      now += 100'000;
    }
    sw.handle_upcalls(now);
    sw.run_maintenance(now);
    // Reroute one /8 and revalidate: repairs are applied serially.
    sw.table(0).add_flow(
        MatchBuilder().ip().nw_dst_prefix(Ipv4(11, 0, 0, 0), 8), 20,
        OfActions().output(4));
    now += kMs;
    sw.run_maintenance(now);

    std::multiset<std::string> flows;
    DpBackend& be = sw.backend();
    for (DpBackend::FlowRef f : be.dump())
      flows.insert(be.flow_match(f).to_string() + " -> " +
                   be.flow_actions(f).to_string());
    return std::tuple(flows, sw.counters().reval_updated_actions,
                      sw.counters().reval_deleted_stale,
                      sw.counters().reval_flows_examined,
                      be.flow_count());
  };
  const auto base = run(1);
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(4));
  EXPECT_EQ(base, run(8));
}

// Deadline accounting uses the plan makespan, not the summed work: more
// threads means a shorter modeled pass over the same flows.
TEST(RevalidatorDeterminism, MakespanShrinksWithThreads) {
  auto pass_stats = [](size_t threads) {
    SwitchConfig cfg;
    cfg.revalidator_threads = threads;
    cfg.dynamic_flow_limit = false;
    Switch sw(cfg);
    sw.add_port(1);
    sw.add_port(2);
    for (uint32_t i = 0; i < 200; ++i)
      sw.table(0).add_flow(
          MatchBuilder().ip().nw_dst(Ipv4(10, 0, static_cast<uint8_t>(i >> 8),
                                          static_cast<uint8_t>(i))),
          10, OfActions().output(2));
    uint64_t now = kMs;
    for (uint32_t i = 0; i < 200; ++i) {
      Packet p;
      p.key.set_in_port(1);
      p.key.set_eth_type(ethertype::kIpv4);
      p.key.set_nw_proto(ipproto::kTcp);
      p.key.set_nw_src(Ipv4(1, 1, 1, 1));
      p.key.set_nw_dst(Ipv4(10, 0, static_cast<uint8_t>(i >> 8),
                            static_cast<uint8_t>(i)));
      p.key.set_tp_src(1234);
      p.key.set_tp_dst(80);
      sw.inject(p, now);
      if ((i & 31) == 31) sw.handle_upcalls(now);
    }
    sw.handle_upcalls(now);
    // Force a full re-translation pass.
    sw.table(1).add_flow(MatchBuilder().ip().nw_src(Ipv4(192, 0, 2, 9)), 5,
                         OfActions::drop());
    sw.run_maintenance(now + kMs);
    return sw.last_reval_pass();
  };
  const RevalPassStats s1 = pass_stats(1);
  const RevalPassStats s4 = pass_stats(4);
  EXPECT_EQ(s1.examined, s4.examined);
  EXPECT_EQ(s1.retranslated, s4.retranslated);
  EXPECT_EQ(s1.threads_used, 1u);
  EXPECT_EQ(s4.threads_used, 4u);
  // Same total work, ~quarter the modeled latency.
  EXPECT_DOUBLE_EQ(s1.total_cycles, s4.total_cycles);
  EXPECT_LT(s4.makespan_cycles, s1.makespan_cycles / 2);
}

// TSan churn stress: sharded workers stream packets while the control
// thread runs multi-threaded plan passes and applies repairs (RCU action
// swaps, removes, reinstalls). No assertion beyond internal consistency —
// the point is the data-race-free execution under -DVSWITCH_TSAN.
TEST(RevalidatorStress, PlanUnderConcurrentTraffic) {
  DatapathConfig dcfg;
  auto be = make_dp_backend(dcfg, 4);
  ShardedDatapath* dp = be->sharded();
  ASSERT_NE(dp, nullptr);

  Pipeline pl(/*n_tables=*/4, {});
  pl.add_port(1);
  pl.add_port(2);
  constexpr size_t kFlows = 64;
  for (size_t i = 0; i < kFlows; ++i)
    pl.table(0).add_flow(
        MatchBuilder().ip().nw_dst(Ipv4(10, 0, 0, static_cast<uint8_t>(i))),
        10, OfActions().output(2));

  auto flow_pkt = [](size_t i) {
    Packet p;
    p.key.set_in_port(1);
    p.key.set_eth_type(ethertype::kIpv4);
    p.key.set_nw_proto(ipproto::kTcp);
    p.key.set_nw_src(Ipv4(1, 1, 1, 1));
    p.key.set_nw_dst(Ipv4(10, 0, 0, static_cast<uint8_t>(i)));
    p.key.set_tp_src(static_cast<uint16_t>(1000 + i));
    p.key.set_tp_dst(80);
    p.size_bytes = 100;
    return p;
  };

  // Install every flow through the real translation path.
  for (size_t i = 0; i < kFlows; ++i) {
    XlateResult xr = pl.translate(flow_pkt(i).key, kMs);
    ASSERT_NE(be->install(xr.megaflow, xr.actions, kMs), nullptr);
  }
  ASSERT_EQ(be->flow_count(), kFlows);

  dp->start();
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Packet> burst;
      for (size_t j = 0; j < 16; ++j)
        burst.push_back(flow_pkt((n + j) % kFlows));
      // Fixed timestamp: used_ns must never exceed the plan's now_ns, or
      // the unsigned idle-age check would see a wrapped (huge) age.
      dp->submit(n % 4, std::move(burst), kMs);
      ++n;
      if ((n & 15) == 0) dp->drain();
    }
    dp->drain();
  });

  Revalidator::Config rc;
  rc.n_threads = 4;
  rc.maybe_stale = true;
  rc.idle_ns = ~uint64_t{0} / 2;
  rc.reval_per_flow = 1;
  rc.per_table_lookup = 1;
  std::vector<RevalDecision> decisions;
  for (int pass = 0; pass < 25; ++pass) {
    if ((pass & 3) == 0) {
      // Mutate the pipeline between passes (never during plan): reroute a
      // rotating flow so some decisions become kUpdateActions.
      pl.table(0).add_flow(
          MatchBuilder().ip().nw_dst(
              Ipv4(10, 0, 0, static_cast<uint8_t>(pass % kFlows))),
          static_cast<int32_t>(20 + pass), OfActions().output(1));
    }
    const std::vector<DpBackend::FlowRef> flows = be->dump();
    const RevalPassStats ps = Revalidator::plan(
        *be, pl, flows, kMs + 1, rc, &decisions);
    EXPECT_EQ(ps.examined, flows.size());
    for (size_t i = 0; i < flows.size(); ++i) {
      RevalDecision& d = decisions[i];
      if (d.kind == RevalDecision::Kind::kUpdateActions) {
        be->update_actions(flows[i], std::move(d.xr.actions));
      } else if (d.kind == RevalDecision::Kind::kDeleteStale) {
        be->remove(flows[i]);
      }
    }
    be->purge_dead();
    // Keep the table populated: reinstall anything that was deleted.
    if (be->flow_count() < kFlows) {
      for (size_t i = 0; i < kFlows; ++i) {
        XlateResult xr = pl.translate(flow_pkt(i).key, kMs);
        be->install(xr.megaflow, xr.actions, kMs);
      }
    }
  }
  stop.store(true);
  traffic.join();
  dp->drain();
  dp->stop();
  EXPECT_EQ(be->flow_count(), kFlows);
  const Datapath::Stats s = be->stats();
  EXPECT_EQ(s.packets, s.microflow_hits + s.megaflow_hits + s.misses);
}

}  // namespace
}  // namespace ovs
