// Tests for the multi-worker (PMD-style) datapath: shared concurrent
// megaflow table, per-worker EMC shards, QSBR grace periods (§4.1).
#include "datapath/mt_datapath.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "packet/match.h"
#include "util/rng.h"

namespace ovs {
namespace {

using Path = ShardedDatapath::Path;

Packet tcp_pkt(Ipv4 dst, uint16_t sport, uint16_t dport) {
  Packet p;
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(1, 1, 1, 1));
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  p.size_bytes = 100;
  return p;
}

std::vector<ShardedDatapath::RxResult> run_batch(ShardedDatapath& dp,
                                                 size_t worker,
                                                 const std::vector<Packet>& b,
                                                 uint64_t now) {
  std::vector<ShardedDatapath::RxResult> res(b.size());
  dp.process_batch(worker, b, now, res.data());
  return res;
}

TEST(MtDatapathTest, MissQueuesUpcall) {
  ShardedDatapath dp;
  auto res = run_batch(dp, 0, {tcp_pkt(Ipv4(9, 9, 9, 9), 1, 2)}, 0);
  EXPECT_EQ(res[0].path, Path::kMiss);
  EXPECT_EQ(res[0].actions, nullptr);
  EXPECT_EQ(dp.upcall_queue_depth(), 1u);
  auto up = dp.take_upcalls(10);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].key.nw_dst(), Ipv4(9, 9, 9, 9));
  EXPECT_EQ(dp.stats().misses, 1u);
}

TEST(MtDatapathTest, MegaflowThenHintHit) {
  ShardedDatapath dp;
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8);
  MtMegaflow* e = dp.install(m, DpActions().output(2), 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(dp.flow_count(), 1u);
  EXPECT_EQ(dp.mask_count(), 1u);

  auto r1 = run_batch(dp, 0, {tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6)}, 10);
  EXPECT_EQ(r1[0].path, Path::kMegaflowHit);
  ASSERT_NE(r1[0].actions, nullptr);
  EXPECT_EQ(r1[0].actions->to_string(), "output:2");

  // Same microflow again: the EMC hint points at the right tuple.
  auto r2 = run_batch(dp, 0, {tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6)}, 20);
  EXPECT_EQ(r2[0].path, Path::kMicroflowHit);

  EXPECT_EQ(dp.stats().microflow_hits, 1u);
  EXPECT_EQ(dp.stats().megaflow_hits, 1u);
  EXPECT_EQ(e->packets(), 2u);
  EXPECT_EQ(e->bytes(), 200u);
  EXPECT_EQ(e->used_ns(), 20u);
}

TEST(MtDatapathTest, DuplicateInstallReturnsExisting) {
  ShardedDatapath dp;
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8);
  MtMegaflow* a = dp.install(m, DpActions().output(2), 0);
  MtMegaflow* b = dp.install(m, DpActions().output(3), 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(dp.flow_count(), 1u);
}

TEST(MtDatapathTest, BurstDedupGroupsStats) {
  ShardedDatapath dp;
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8);
  MtMegaflow* e = dp.install(m, DpActions().output(2), 0);

  // 32 copies of one microflow: the leader does the single classifier
  // search, every follower is a microflow hit, stats bump once.
  std::vector<Packet> burst(32, tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6));
  std::vector<ShardedDatapath::RxResult> res(burst.size());
  ShardedDatapath::BatchSummary sum;
  dp.process_batch(0, burst, 50, res.data(), &sum);

  EXPECT_EQ(res[0].path, Path::kMegaflowHit);
  for (size_t i = 1; i < res.size(); ++i) {
    EXPECT_EQ(res[i].path, Path::kMicroflowHit);
    EXPECT_EQ(res[i].actions, res[0].actions);
  }
  EXPECT_EQ(sum.packets, 32u);
  EXPECT_EQ(sum.emc_probes, 1u);
  EXPECT_EQ(sum.megaflow_lookups, 1u);
  EXPECT_EQ(sum.groups, 1u);
  EXPECT_EQ(e->packets(), 32u);
  EXPECT_EQ(e->bytes(), 3200u);
}

TEST(MtDatapathTest, RemoveIsDeferredAndStaleHintCorrected) {
  ShardedDatapath dp;
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8);
  MtMegaflow* e = dp.install(m, DpActions().output(2), 0);

  run_batch(dp, 0, {tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6)}, 10);  // install hint
  dp.remove(e);
  EXPECT_EQ(dp.flow_count(), 0u);
  EXPECT_EQ(dp.mask_count(), 0u);

  // The hint now misdirects: corrected on first use, packet misses.
  auto r = run_batch(dp, 0, {tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6)}, 20);
  EXPECT_EQ(r[0].path, Path::kMiss);
  EXPECT_EQ(dp.stats().stale_hints, 1u);

  dp.purge_dead();  // must not crash; entry freed after the grace period
  auto r2 = run_batch(dp, 0, {tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6)}, 30);
  EXPECT_EQ(r2[0].path, Path::kMiss);
}

TEST(MtDatapathTest, UpdateActionsSwapsRcuStyle) {
  ShardedDatapath dp;
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8);
  MtMegaflow* e = dp.install(m, DpActions().output(2), 0);

  auto r1 = run_batch(dp, 0, {tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6)}, 10);
  EXPECT_EQ(r1[0].actions->to_string(), "output:2");

  dp.update_actions(e, DpActions().output(7));
  auto r2 = run_batch(dp, 0, {tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6)}, 20);
  EXPECT_EQ(r2[0].actions->to_string(), "output:7");
  dp.purge_dead();  // frees the retired "output:2" list
}

TEST(MtDatapathTest, TupleDirectoryCapacity) {
  ShardedDatapathConfig cfg;
  cfg.max_tuples = 1;
  ShardedDatapath dp(cfg);
  EXPECT_NE(dp.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8),
                       DpActions().output(1), 0),
            nullptr);
  // Same mask reuses the tuple; a second mask does not fit.
  EXPECT_NE(dp.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8),
                       DpActions().output(2), 0),
            nullptr);
  EXPECT_EQ(dp.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(11, 0, 0, 0), 16),
                       DpActions().output(3), 0),
            nullptr);
}

TEST(MtDatapathTest, WorkersSeeSharedTable) {
  ShardedDatapathConfig cfg;
  cfg.n_workers = 2;
  ShardedDatapath dp(cfg);
  dp.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8),
             DpActions().output(2), 0);
  auto r0 = run_batch(dp, 0, {tcp_pkt(Ipv4(9, 1, 1, 1), 1, 1)}, 10);
  auto r1 = run_batch(dp, 1, {tcp_pkt(Ipv4(9, 2, 2, 2), 2, 2)}, 10);
  EXPECT_EQ(r0[0].path, Path::kMegaflowHit);
  EXPECT_EQ(r1[0].path, Path::kMegaflowHit);
  // EMC shards are private: worker 0 resolved 9.1.1.1, but worker 1's shard
  // has no hint for it, so worker 1 does a full search...
  auto r2 = run_batch(dp, 1, {tcp_pkt(Ipv4(9, 1, 1, 1), 1, 1)}, 20);
  EXPECT_EQ(r2[0].path, Path::kMegaflowHit);
  // ...which installed worker 1's own hint.
  auto r3 = run_batch(dp, 1, {tcp_pkt(Ipv4(9, 1, 1, 1), 1, 1)}, 30);
  EXPECT_EQ(r3[0].path, Path::kMicroflowHit);
}

// The concurrency smoke test the TSan CI job runs: four workers pump
// bursts through the pool while the control thread churns install /
// update_actions / remove / purge_dead over an overlapping rule set.
TEST(MtDatapathTest, ConcurrentChurnStress) {
  ShardedDatapathConfig cfg;
  cfg.n_workers = 4;
  cfg.emc_capacity_per_shard = 512;
  ShardedDatapath dp(cfg);

  constexpr int kPrefixes = 16;
  std::vector<MtMegaflow*> live(kPrefixes, nullptr);
  for (int i = 0; i < kPrefixes; ++i) {
    live[i] = dp.install(
        MatchBuilder().ip().nw_dst_prefix(Ipv4(uint8_t(10 + i), 0, 0, 0), 8),
        DpActions().output(uint32_t(i + 1)), 0);
    ASSERT_NE(live[i], nullptr);
  }

  std::atomic<uint64_t> delivered{0};
  dp.set_batch_callback(
      [&](size_t, std::span<const ShardedDatapath::RxResult> res) {
        // Touch every result: actions pointers must stay valid for the
        // whole read-side critical section even while the control thread
        // removes and retires entries.
        uint64_t n = 0;
        for (const auto& r : res)
          if (r.actions != nullptr && !r.actions->drops()) ++n;
        delivered.fetch_add(n, std::memory_order_relaxed);
      });
  dp.start();

  constexpr int kBursts = 200;
  constexpr size_t kBurstLen = 32;
  std::atomic<bool> stop_ctl{false};
  std::thread control([&] {
    Rng rng(0xC0117);
    uint64_t now = 0;
    while (!stop_ctl.load(std::memory_order_relaxed)) {
      const int i = static_cast<int>(rng.uniform(kPrefixes));
      if (live[i] != nullptr) {
        if (rng.uniform(2) == 0) {
          dp.update_actions(live[i], DpActions().output(rng.uniform(64) + 1));
        } else {
          dp.remove(live[i]);
          live[i] = nullptr;
        }
      } else {
        live[i] = dp.install(
            MatchBuilder().ip().nw_dst_prefix(
                Ipv4(uint8_t(10 + i), 0, 0, 0), 8),
            DpActions().output(uint32_t(i + 1)), now);
      }
      if (rng.uniform(4) == 0) dp.purge_dead();
      now += 1000;
    }
  });

  Rng rng(0xFEED);
  for (int b = 0; b < kBursts; ++b) {
    const size_t w = b % cfg.n_workers;
    std::vector<Packet> burst;
    burst.reserve(kBurstLen);
    for (size_t i = 0; i < kBurstLen; ++i) {
      burst.push_back(tcp_pkt(
          Ipv4(uint8_t(10 + rng.uniform(kPrefixes + 2)),  // some always-miss
               uint8_t(rng.uniform(4)), 1, 1),
          uint16_t(rng.uniform(8)), 80));
    }
    dp.submit(w, std::move(burst), uint64_t(b) * 1000);
    dp.take_upcalls(64);  // drain so the shared queue never stays full
  }
  dp.drain();
  stop_ctl.store(true, std::memory_order_relaxed);
  control.join();
  dp.stop();
  dp.purge_dead();

  const auto s = dp.stats();
  EXPECT_EQ(s.packets, uint64_t(kBursts) * kBurstLen);
  EXPECT_EQ(s.microflow_hits + s.megaflow_hits + s.misses, s.packets);
  EXPECT_GT(delivered.load(), 0u);
}

}  // namespace
}  // namespace ovs
