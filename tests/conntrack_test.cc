// Tests for the minimal connection tracker (§8.1).
#include "ofproto/conntrack.h"

#include <gtest/gtest.h>

namespace ovs {
namespace {

FlowKey flow(Ipv4 src, Ipv4 dst, uint16_t sport, uint16_t dport,
             uint8_t proto = ipproto::kTcp) {
  FlowKey k;
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(proto);
  k.set_nw_src(src);
  k.set_nw_dst(dst);
  k.set_tp_src(sport);
  k.set_tp_dst(dport);
  return k;
}

TEST(ConnTrackerTest, NewUntilCommitted) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1234, 80);
  EXPECT_EQ(ct.lookup(k), ct_state::kNew);
  ct.commit(k);
  EXPECT_EQ(ct.size(), 1u);
  EXPECT_TRUE(ct.lookup(k) & ct_state::kEstablished);
}

TEST(ConnTrackerTest, ReplyDirectionIsEstablished) {
  ConnTracker ct;
  FlowKey fwd = flow(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1234, 80);
  FlowKey rev = flow(Ipv4(10, 0, 0, 2), Ipv4(10, 0, 0, 1), 80, 1234);
  ct.commit(fwd);
  EXPECT_TRUE(ct.lookup(rev) & ct_state::kEstablished);
  // Exactly one of the two directions carries the reply bit.
  const bool fwd_reply = (ct.lookup(fwd) & ct_state::kReply) != 0;
  const bool rev_reply = (ct.lookup(rev) & ct_state::kReply) != 0;
  EXPECT_NE(fwd_reply, rev_reply);
}

TEST(ConnTrackerTest, DistinctConnectionsIndependent) {
  ConnTracker ct;
  FlowKey a = flow(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1234, 80);
  FlowKey b = flow(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1235, 80);
  ct.commit(a);
  EXPECT_TRUE(ct.lookup(a) & ct_state::kEstablished);
  EXPECT_EQ(ct.lookup(b), ct_state::kNew);  // different source port
}

TEST(ConnTrackerTest, ProtocolDistinguishes) {
  ConnTracker ct;
  FlowKey t = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 53, 53, ipproto::kTcp);
  FlowKey u = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 53, 53, ipproto::kUdp);
  ct.commit(t);
  EXPECT_TRUE(ct.lookup(t) & ct_state::kEstablished);
  EXPECT_EQ(ct.lookup(u), ct_state::kNew);
}

TEST(ConnTrackerTest, CommitIsIdempotent) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  FlowKey rev = flow(Ipv4(2, 2, 2, 2), Ipv4(1, 1, 1, 1), 2, 1);
  ct.commit(k);
  ct.commit(k);
  ct.commit(rev);  // same bidirectional connection
  EXPECT_EQ(ct.size(), 1u);
}

TEST(ConnTrackerTest, RemoveTearsDown) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  ct.commit(k);
  EXPECT_TRUE(ct.remove(k));
  EXPECT_EQ(ct.lookup(k), ct_state::kNew);
  EXPECT_FALSE(ct.remove(k));
}

}  // namespace
}  // namespace ovs
