// Tests for the minimal connection tracker (§8.1).
#include "ofproto/conntrack.h"

#include <gtest/gtest.h>

namespace ovs {
namespace {

FlowKey flow(Ipv4 src, Ipv4 dst, uint16_t sport, uint16_t dport,
             uint8_t proto = ipproto::kTcp) {
  FlowKey k;
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(proto);
  k.set_nw_src(src);
  k.set_nw_dst(dst);
  k.set_tp_src(sport);
  k.set_tp_dst(dport);
  return k;
}

TEST(ConnTrackerTest, NewUntilCommitted) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1234, 80);
  EXPECT_EQ(ct.lookup(k), ct_state::kNew);
  ct.commit(k);
  EXPECT_EQ(ct.size(), 1u);
  EXPECT_TRUE(ct.lookup(k) & ct_state::kEstablished);
}

TEST(ConnTrackerTest, ReplyDirectionIsEstablished) {
  ConnTracker ct;
  FlowKey fwd = flow(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1234, 80);
  FlowKey rev = flow(Ipv4(10, 0, 0, 2), Ipv4(10, 0, 0, 1), 80, 1234);
  ct.commit(fwd);
  EXPECT_TRUE(ct.lookup(rev) & ct_state::kEstablished);
  // Exactly one of the two directions carries the reply bit.
  const bool fwd_reply = (ct.lookup(fwd) & ct_state::kReply) != 0;
  const bool rev_reply = (ct.lookup(rev) & ct_state::kReply) != 0;
  EXPECT_NE(fwd_reply, rev_reply);
}

TEST(ConnTrackerTest, DistinctConnectionsIndependent) {
  ConnTracker ct;
  FlowKey a = flow(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1234, 80);
  FlowKey b = flow(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1235, 80);
  ct.commit(a);
  EXPECT_TRUE(ct.lookup(a) & ct_state::kEstablished);
  EXPECT_EQ(ct.lookup(b), ct_state::kNew);  // different source port
}

TEST(ConnTrackerTest, ProtocolDistinguishes) {
  ConnTracker ct;
  FlowKey t = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 53, 53, ipproto::kTcp);
  FlowKey u = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 53, 53, ipproto::kUdp);
  ct.commit(t);
  EXPECT_TRUE(ct.lookup(t) & ct_state::kEstablished);
  EXPECT_EQ(ct.lookup(u), ct_state::kNew);
}

TEST(ConnTrackerTest, CommitIsIdempotent) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  FlowKey rev = flow(Ipv4(2, 2, 2, 2), Ipv4(1, 1, 1, 1), 2, 1);
  ct.commit(k);
  ct.commit(k);
  ct.commit(rev);  // same bidirectional connection
  EXPECT_EQ(ct.size(), 1u);
}

TEST(ConnTrackerTest, RemoveTearsDown) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  ct.commit(k);
  EXPECT_TRUE(ct.remove(k));
  EXPECT_EQ(ct.lookup(k), ct_state::kNew);
  EXPECT_FALSE(ct.remove(k));
}

// --- Direction normalization edge cases -----------------------------------

// Regression: a fully symmetric 5-tuple (src==dst addr AND sport==dport) has
// no wire-decidable reply direction. The old canonical-order rule made both
// directions compare equal and stamped kReply on a packet identical to the
// committing one. Now such connections carry kSymmetric and never kReply.
TEST(ConnTrackerTest, SelfConnectionIsSymmetricNeverReply) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(10, 0, 0, 7), Ipv4(10, 0, 0, 7), 9999, 9999);
  ct.commit(k);
  const uint8_t st = ct.lookup(k);
  EXPECT_TRUE(st & ct_state::kEstablished);
  EXPECT_TRUE(st & ct_state::kSymmetric);
  EXPECT_FALSE(st & ct_state::kReply);
}

// Same addresses, different ports: the port pair alone decides direction and
// the reply bit still lands on exactly one side.
TEST(ConnTrackerTest, SameAddressPortTieBreak) {
  ConnTracker ct;
  FlowKey fwd = flow(Ipv4(10, 0, 0, 7), Ipv4(10, 0, 0, 7), 4000, 80);
  FlowKey rev = flow(Ipv4(10, 0, 0, 7), Ipv4(10, 0, 0, 7), 80, 4000);
  ct.commit(fwd);
  EXPECT_EQ(ct.size(), 1u);
  const uint8_t f = ct.lookup(fwd), r = ct.lookup(rev);
  EXPECT_TRUE(f & ct_state::kEstablished);
  EXPECT_TRUE(r & ct_state::kEstablished);
  EXPECT_FALSE(f & ct_state::kSymmetric);
  EXPECT_NE((f & ct_state::kReply) != 0, (r & ct_state::kReply) != 0);
  // The committing direction is the one WITHOUT the reply bit.
  EXPECT_FALSE(f & ct_state::kReply);
}

// Mirrored address/port pairs ((a,p1)->(b,p2) vs (b,p1)->(a,p2)) are
// DIFFERENT connections: normalization sorts endpoints, not fields.
TEST(ConnTrackerTest, MirroredEndpointsAreDistinct) {
  ConnTracker ct;
  FlowKey a = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 10, 20);
  FlowKey b = flow(Ipv4(2, 2, 2, 2), Ipv4(1, 1, 1, 1), 10, 20);
  ct.commit(a);
  EXPECT_EQ(ct.lookup(b), ct_state::kNew);
  ct.commit(b);
  EXPECT_EQ(ct.size(), 2u);
}

// --- Idempotence / generation ---------------------------------------------

// Re-committing an existing connection (either direction) must not bump the
// generation: revalidation treats generation movement as table dirtiness, so
// a refresh-only commit must not force a revalidation pass.
TEST(ConnTrackerTest, RecommitLeavesGenerationUnchanged) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  FlowKey rev = flow(Ipv4(2, 2, 2, 2), Ipv4(1, 1, 1, 1), 2, 1);
  EXPECT_TRUE(ct.commit(k));
  const uint64_t gen = ct.generation();
  EXPECT_FALSE(ct.commit(k));
  EXPECT_FALSE(ct.commit(rev));
  EXPECT_EQ(ct.generation(), gen);
  EXPECT_EQ(ct.stats().refreshed, 2u);
  EXPECT_TRUE(ct.remove(k));
  EXPECT_GT(ct.generation(), gen);
}

TEST(ConnTrackerTest, RemoveNonexistentIsNoOp) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  const uint64_t gen = ct.generation();
  EXPECT_FALSE(ct.remove(k));
  EXPECT_EQ(ct.generation(), gen);
  EXPECT_EQ(ct.stats().removed, 0u);
}

// --- Zones -----------------------------------------------------------------

TEST(ConnTrackerTest, ZonesIsolateConnections) {
  ConnTracker ct;
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  ct.commit(k, /*zone=*/1);
  EXPECT_TRUE(ct.lookup(k, 1) & ct_state::kEstablished);
  EXPECT_EQ(ct.lookup(k, 0), ct_state::kNew);
  EXPECT_EQ(ct.lookup(k, 2), ct_state::kNew);
  EXPECT_EQ(ct.zone_size(1), 1u);
  EXPECT_EQ(ct.zone_size(0), 0u);
  // Removing in the wrong zone touches nothing.
  EXPECT_FALSE(ct.remove(k, 0));
  EXPECT_TRUE(ct.remove(k, 1));
}

// --- Idle expiry -----------------------------------------------------------

// The expiry predicate is last_seen + timeout <= now: an entry is gone at
// EXACTLY the timeout boundary, alive one nanosecond before it.
TEST(ConnTrackerTest, ExpiryBoundaryIsInclusive) {
  ConnTrackerConfig cfg;
  cfg.idle_timeout_ns = 1000;
  ConnTracker ct(cfg);
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  ct.commit(k, 0, /*now_ns=*/5000);
  EXPECT_FALSE(ct.has_expirable(5999));
  EXPECT_EQ(ct.expire_idle(5999), 0u);
  EXPECT_EQ(ct.size(), 1u);
  EXPECT_TRUE(ct.has_expirable(6000));
  EXPECT_EQ(ct.expire_idle(6000), 1u);
  EXPECT_EQ(ct.lookup(k), ct_state::kNew);
  EXPECT_EQ(ct.stats().expired_idle, 1u);
}

// Re-commit refreshes last-seen; lookups never do. The tracker's contents
// must be a pure function of the mutation sequence (the oracle contract).
TEST(ConnTrackerTest, LookupNeverRefreshesButCommitDoes) {
  ConnTrackerConfig cfg;
  cfg.idle_timeout_ns = 1000;
  ConnTracker ct(cfg);
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  ct.commit(k, 0, 0);
  // Lookups between commit and expiry deadline change nothing.
  for (int i = 0; i < 8; ++i) ct.lookup(k);
  ct.commit(k, 0, 900);  // refresh: deadline moves to 1900
  EXPECT_EQ(ct.expire_idle(1000), 0u);
  EXPECT_EQ(ct.expire_idle(1899), 0u);
  EXPECT_EQ(ct.expire_idle(1900), 1u);
}

TEST(ConnTrackerTest, ZeroTimeoutNeverExpires) {
  ConnTracker ct;  // idle_timeout_ns = 0
  FlowKey k = flow(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 1, 2);
  ct.commit(k, 0, 1);
  EXPECT_FALSE(ct.has_expirable(~uint64_t{0}));
  EXPECT_EQ(ct.expire_idle(~uint64_t{0}), 0u);
  EXPECT_EQ(ct.size(), 1u);
}

// --- Capacity / eviction ---------------------------------------------------

FlowKey conn_n(uint32_t n, uint16_t dport = 80) {
  return flow(Ipv4(10, 0, (n >> 8) & 0xff, n & 0xff), Ipv4(192, 168, 0, 1),
              static_cast<uint16_t>(1024 + n), dport);
}

TEST(ConnTrackerTest, ZoneCapEvictsOwnZoneLru) {
  ConnTrackerConfig cfg;
  cfg.max_per_zone = 2;
  ConnTracker ct(cfg);
  ct.commit(conn_n(1), 1, 100);
  ct.commit(conn_n(2), 1, 200);
  ct.commit(conn_n(3), 2, 50);  // other zone: not eligible
  ct.commit(conn_n(4), 1, 300);  // zone 1 at cap: evicts conn 1 (its LRU)
  EXPECT_EQ(ct.lookup(conn_n(1), 1), ct_state::kNew);
  EXPECT_TRUE(ct.lookup(conn_n(2), 1) & ct_state::kEstablished);
  EXPECT_TRUE(ct.lookup(conn_n(3), 2) & ct_state::kEstablished);
  EXPECT_TRUE(ct.lookup(conn_n(4), 1) & ct_state::kEstablished);
  EXPECT_EQ(ct.stats().evicted_zone_cap, 1u);
  EXPECT_EQ(ct.stats().evicted_global_cap, 0u);
}

// Fair global eviction: the LARGEST zone pays, so a churning zone cannot
// displace a quiet zone's connections.
TEST(ConnTrackerTest, FairGlobalEvictionChargesLargestZone) {
  ConnTrackerConfig cfg;
  cfg.max_entries = 4;
  ConnTracker ct(cfg);
  ct.commit(conn_n(1), /*zone=*/7, 10);  // quiet victim zone, oldest overall
  ct.commit(conn_n(2), 1, 20);
  ct.commit(conn_n(3), 1, 30);
  ct.commit(conn_n(4), 1, 40);
  ct.commit(conn_n(5), 1, 50);  // global cap: zone 1 is largest -> its LRU
  EXPECT_EQ(ct.size(), 4u);
  EXPECT_TRUE(ct.lookup(conn_n(1), 7) & ct_state::kEstablished);
  EXPECT_EQ(ct.lookup(conn_n(2), 1), ct_state::kNew);
  EXPECT_EQ(ct.stats().evicted_global_cap, 1u);
}

TEST(ConnTrackerTest, UnfairGlobalEvictionChargesGlobalLru) {
  ConnTrackerConfig cfg;
  cfg.max_entries = 4;
  cfg.fair_eviction = false;
  ConnTracker ct(cfg);
  ct.commit(conn_n(1), 7, 10);  // globally oldest: pays under the ablation
  ct.commit(conn_n(2), 1, 20);
  ct.commit(conn_n(3), 1, 30);
  ct.commit(conn_n(4), 1, 40);
  ct.commit(conn_n(5), 1, 50);
  EXPECT_EQ(ct.lookup(conn_n(1), 7), ct_state::kNew);
  EXPECT_TRUE(ct.lookup(conn_n(2), 1) & ct_state::kEstablished);
}

// A refresh moves the entry to the back of its zone's LRU list.
TEST(ConnTrackerTest, RefreshProtectsFromEviction) {
  ConnTrackerConfig cfg;
  cfg.max_entries = 3;
  ConnTracker ct(cfg);
  ct.commit(conn_n(1), 0, 10);
  ct.commit(conn_n(2), 0, 20);
  ct.commit(conn_n(3), 0, 30);
  ct.commit(conn_n(1), 0, 40);  // refresh: conn 2 becomes LRU
  ct.commit(conn_n(4), 0, 50);
  EXPECT_TRUE(ct.lookup(conn_n(1)) & ct_state::kEstablished);
  EXPECT_EQ(ct.lookup(conn_n(2)), ct_state::kNew);
}

// --- NAT -------------------------------------------------------------------

TEST(ConnTrackerTest, SnatForwardAndReverseRewrites) {
  ConnTracker ct;
  FlowKey fwd = flow(Ipv4(10, 0, 0, 5), Ipv4(198, 51, 100, 1), 5555, 80);
  CtNatSpec nat{/*src=*/true, Ipv4(192, 0, 2, 9).value(), 40001};
  EXPECT_TRUE(ct.commit_nat(fwd, nat));
  EXPECT_EQ(ct.size(), 2u);  // primary + reverse entry
  EXPECT_EQ(ct.stats().nat_bindings, 1u);

  // Forward packets rewrite their SOURCE to the NAT binding.
  auto f = ct.nat_lookup(fwd);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->to_src);
  EXPECT_EQ(f->addr, Ipv4(192, 0, 2, 9).value());
  EXPECT_EQ(f->port, 40001);

  // Replies arrive addressed to the post-NAT tuple and rewrite their
  // DESTINATION back to the original source.
  FlowKey reply = flow(Ipv4(198, 51, 100, 1), Ipv4(192, 0, 2, 9), 80, 40001);
  EXPECT_TRUE(ct.lookup(reply) & ct_state::kEstablished);
  auto r = ct.nat_lookup(reply);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->to_src);
  EXPECT_EQ(r->addr, Ipv4(10, 0, 0, 5).value());
  EXPECT_EQ(r->port, 5555);
}

TEST(ConnTrackerTest, DnatReverseRewritesSource) {
  ConnTracker ct;
  // Client hits a VIP; DNAT to the backend.
  FlowKey fwd = flow(Ipv4(10, 0, 0, 5), Ipv4(203, 0, 113, 10), 5555, 80);
  CtNatSpec nat{/*src=*/false, Ipv4(10, 1, 0, 2).value(), 8080};
  EXPECT_TRUE(ct.commit_nat(fwd, nat));
  // Backend's reply rewrites its SOURCE back to the VIP.
  FlowKey reply = flow(Ipv4(10, 1, 0, 2), Ipv4(10, 0, 0, 5), 8080, 5555);
  auto r = ct.nat_lookup(reply);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->to_src);
  EXPECT_EQ(r->addr, Ipv4(203, 0, 113, 10).value());
  EXPECT_EQ(r->port, 80);
}

TEST(ConnTrackerTest, NoOpNatDegradesToPlainCommit) {
  ConnTracker ct;
  FlowKey fwd = flow(Ipv4(10, 0, 0, 5), Ipv4(198, 51, 100, 1), 5555, 80);
  CtNatSpec nat{/*src=*/true, Ipv4(10, 0, 0, 5).value(), 5555};  // identity
  EXPECT_TRUE(ct.commit_nat(fwd, nat));
  EXPECT_EQ(ct.size(), 1u);  // no reverse entry minted
  EXPECT_EQ(ct.stats().nat_bindings, 0u);
  EXPECT_FALSE(ct.nat_lookup(fwd).has_value());
}

TEST(ConnTrackerTest, RemoveCascadesToNatPair) {
  ConnTracker ct;
  FlowKey fwd = flow(Ipv4(10, 0, 0, 5), Ipv4(198, 51, 100, 1), 5555, 80);
  CtNatSpec nat{true, Ipv4(192, 0, 2, 9).value(), 40001};
  ct.commit_nat(fwd, nat);
  ASSERT_EQ(ct.size(), 2u);
  EXPECT_TRUE(ct.remove(fwd));
  EXPECT_EQ(ct.size(), 0u);  // reverse entry went with it
  FlowKey reply = flow(Ipv4(198, 51, 100, 1), Ipv4(192, 0, 2, 9), 80, 40001);
  EXPECT_EQ(ct.lookup(reply), ct_state::kNew);
}

// Removing via the POST-NAT tuple tears both entries down too: either half
// of the pair names the whole connection.
TEST(ConnTrackerTest, RemoveViaReverseTupleCascades) {
  ConnTracker ct;
  FlowKey fwd = flow(Ipv4(10, 0, 0, 5), Ipv4(198, 51, 100, 1), 5555, 80);
  CtNatSpec nat{true, Ipv4(192, 0, 2, 9).value(), 40001};
  ct.commit_nat(fwd, nat);
  FlowKey reply = flow(Ipv4(198, 51, 100, 1), Ipv4(192, 0, 2, 9), 80, 40001);
  EXPECT_TRUE(ct.remove(reply));
  EXPECT_EQ(ct.size(), 0u);
  EXPECT_EQ(ct.lookup(fwd), ct_state::kNew);
}

// First binding wins when the post-NAT tuple collides with a live distinct
// connection: the second commit keeps its forward rewrite but gets no
// reverse entry (deterministic, never flaps).
TEST(ConnTrackerTest, PostNatCollisionFirstWins) {
  ConnTracker ct;
  // A plain connection already occupies what will be the post-NAT tuple.
  FlowKey occupant = flow(Ipv4(192, 0, 2, 9), Ipv4(198, 51, 100, 1),
                          40001, 80);
  ct.commit(occupant);
  FlowKey fwd = flow(Ipv4(10, 0, 0, 5), Ipv4(198, 51, 100, 1), 5555, 80);
  CtNatSpec nat{true, Ipv4(192, 0, 2, 9).value(), 40001};
  EXPECT_TRUE(ct.commit_nat(fwd, nat));
  EXPECT_EQ(ct.size(), 2u);  // occupant + primary, no reverse entry
  // Forward rewrite still applies; the occupant keeps its tuple.
  EXPECT_TRUE(ct.nat_lookup(fwd).has_value());
  EXPECT_FALSE(ct.nat_lookup(occupant).has_value());
}

// Idle expiry of either half of a NAT pair removes both: a half-alive NAT
// connection would un-NAT replies for a connection that no longer exists.
TEST(ConnTrackerTest, ExpiryCascadesToNatPair) {
  ConnTrackerConfig cfg;
  cfg.idle_timeout_ns = 1000;
  ConnTracker ct(cfg);
  FlowKey fwd = flow(Ipv4(10, 0, 0, 5), Ipv4(198, 51, 100, 1), 5555, 80);
  CtNatSpec nat{true, Ipv4(192, 0, 2, 9).value(), 40001};
  ct.commit_nat(fwd, nat, 0, /*now_ns=*/100);
  ASSERT_EQ(ct.size(), 2u);
  EXPECT_EQ(ct.expire_idle(2000), 2u);
  EXPECT_EQ(ct.size(), 0u);
}

TEST(ConnTrackerTest, FlushDropsEverythingAndBumpsGeneration) {
  ConnTracker ct;
  ct.commit(conn_n(1));
  ct.commit(conn_n(2), 3);
  const uint64_t gen = ct.generation();
  ct.flush();
  EXPECT_EQ(ct.size(), 0u);
  EXPECT_EQ(ct.zone_size(3), 0u);
  EXPECT_GT(ct.generation(), gen);
  // Flushing an empty tracker is generation-neutral.
  const uint64_t gen2 = ct.generation();
  ct.flush();
  EXPECT_EQ(ct.generation(), gen2);
}

}  // namespace
}  // namespace ovs
