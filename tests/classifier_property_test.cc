// Property tests: under EVERY combination of optimization flags, the
// classifier must (a) agree with a naive linear scan, and (b) generate
// *sound* wildcards — any packet that matches the generated megaflow mask
// must receive the same classification result. Property (b) is the
// correctness condition for the entire megaflow cache (paper §5.1: "failing
// to match a field that must be included can cause incorrect packet
// forwarding, which makes such errors unacceptable").
#include <gtest/gtest.h>

#include <tuple>

#include "classifier/classifier.h"
#include "test_util.h"

namespace ovs {
namespace {

using testutil::RuleSet;
using testutil::TestRule;

struct ConfigCase {
  const char* name;
  ClassifierConfig cfg;
};

std::vector<ConfigCase> all_configs() {
  std::vector<ConfigCase> cases;
  cases.push_back({"none", ClassifierConfig::all_disabled()});
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.priority_sorting = true;
    cases.push_back({"priority_sorting", c});
  }
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.staged_lookup = true;
    cases.push_back({"staged", c});
  }
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.prefix_tracking = true;
    c.port_prefix_tracking = true;
    cases.push_back({"prefix", c});
  }
  {
    ClassifierConfig c = ClassifierConfig::all_disabled();
    c.partitioning = true;
    cases.push_back({"partitioning", c});
  }
  cases.push_back({"all", ClassifierConfig{}});
  {
    ClassifierConfig c;
    c.icmp_port_trie_bug = true;  // the bug must still be *correct*
    cases.push_back({"all_with_icmp_bug", c});
  }
  return cases;
}

class ClassifierPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(ClassifierPropertyTest, AgreesWithOracleAndWildcardsAreSound) {
  const auto [cfg_idx, seed] = GetParam();
  const ConfigCase cc = all_configs()[cfg_idx];
  SCOPED_TRACE(cc.name);

  Rng rng(seed);
  RuleSet rs(cc.cfg);

  // Build a random rule set with unique priorities (so the oracle's winner
  // is unambiguous), interleaving some removals to exercise updates.
  std::vector<TestRule*> live;
  int next_prio = 1;
  for (int i = 0; i < 120; ++i) {
    Match m = testutil::random_match(rng);
    // Skip exact duplicates of (match, priority) — forbidden by contract.
    live.push_back(rs.add(m, next_prio++, i));
    if (rng.chance(0.15) && !live.empty()) {
      size_t victim = rng.uniform(live.size());
      rs.remove(live[victim]);
      live.erase(live.begin() + static_cast<long>(victim));
    }
  }

  for (int q = 0; q < 400; ++q) {
    const FlowKey pkt = testutil::random_packet(rng);
    FlowWildcards wc;
    const Rule* got = rs.classifier().lookup(pkt, &wc);
    const TestRule* want = rs.naive_lookup(pkt);

    // (a) Same result as the oracle.
    if (want == nullptr) {
      ASSERT_EQ(got, nullptr) << pkt.to_string();
    } else {
      ASSERT_NE(got, nullptr) << pkt.to_string();
      ASSERT_EQ(static_cast<const TestRule*>(got)->priority(),
                want->priority())
          << pkt.to_string();
    }

    // (b) Wildcard soundness: flip bits OUTSIDE wc; result must not change.
    for (int trial = 0; trial < 10; ++trial) {
      FlowKey mutant = pkt;
      for (size_t w = 0; w < kFlowWords; ++w) {
        const uint64_t flip = rng.next() & ~wc.w[w];
        if (rng.chance(0.5)) mutant.w[w] ^= flip;
      }
      const TestRule* mutant_want = rs.naive_lookup(mutant);
      // The megaflow's action is `got`; the mutant would hit the same
      // megaflow, so the pipeline's answer for it must match.
      if (want == nullptr) {
        ASSERT_EQ(mutant_want, nullptr)
            << "unsound wildcards (" << cc.name << "):\n  pkt    "
            << pkt.to_string() << "\n  mutant " << mutant.to_string()
            << "\n  wc     " << wc.to_string();
      } else {
        ASSERT_NE(mutant_want, nullptr)
            << "unsound wildcards (" << cc.name << "):\n  pkt    "
            << pkt.to_string() << "\n  mutant " << mutant.to_string()
            << "\n  wc     " << wc.to_string();
        ASSERT_EQ(mutant_want->priority(), want->priority())
            << "unsound wildcards (" << cc.name << "):\n  pkt    "
            << pkt.to_string() << "\n  mutant " << mutant.to_string()
            << "\n  wc     " << wc.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClassifierPropertyTest,
    ::testing::Combine(::testing::Range<size_t>(0, 7),
                       ::testing::Values(11, 22, 33, 44)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& p) {
      return std::string(all_configs()[std::get<0>(p.param)].name) + "_s" +
             std::to_string(std::get<1>(p.param));
    });

// Optimized configurations must generate megaflows that are never *more
// specific* than the unoptimized ones on the same table & packet.
TEST(ClassifierGeneralityTest, OptimizationsOnlyWidenMegaflows) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    RuleSet base(ClassifierConfig::all_disabled());
    RuleSet opt;  // all optimizations
    int prio = 1;
    for (int i = 0; i < 60; ++i) {
      Match m = testutil::random_match(rng);
      base.add(m, prio, i);
      opt.add(m, prio, i);
      ++prio;
    }
    int wider = 0;
    for (int q = 0; q < 100; ++q) {
      FlowKey pkt = testutil::random_packet(rng);
      FlowWildcards wc_base, wc_opt;
      base.classifier().lookup(pkt, &wc_base);
      opt.classifier().lookup(pkt, &wc_opt);
      int bits_base = 0, bits_opt = 0;
      for (size_t w = 0; w < kFlowWords; ++w) {
        bits_base += __builtin_popcountll(wc_base.w[w]);
        bits_opt += __builtin_popcountll(wc_opt.w[w]);
      }
      EXPECT_LE(bits_opt, bits_base) << pkt.to_string();
      if (bits_opt < bits_base) ++wider;
    }
    // The optimizations must actually help on a meaningful fraction.
    EXPECT_GT(wider, 0);
  }
}

}  // namespace
}  // namespace ovs
