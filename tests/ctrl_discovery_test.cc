// Gossip discovery tests (DESIGN.md §12, Haeupler–Malkhi PODC 2015 spirit).
//
// The claims under test:
//   * from a ring-plus-random-chords start, pointer-doubling push-pull
//     gossip converges the whole fleet's controller belief in far fewer
//     than log2(N) rounds, and the round count grows very slowly with N;
//   * when the active controller dies its heartbeats age out and every
//     node's belief moves to the best live standby — failover is implicit;
//   * wire loss slows convergence but does not prevent it;
//   * runs replay bit-identically from the same seeds.
#include "ctrl/discovery.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ctrl/transport.h"
#include "sim/clock.h"
#include "util/fault.h"
#include "util/rng.h"

namespace ovs {
namespace {

struct Mesh {
  CtrlTransport net;
  DiscoveryService disco{&net};
  uint64_t now = 0;
  uint32_t c0, c1;  // controller ids (largest in the graph)

  explicit Mesh(size_t n_agents, DiscoveryConfig cfg = {},
                FaultInjector* fault = nullptr) : disco(&net, cfg) {
    if (fault != nullptr) net.set_fault(fault);
    c0 = static_cast<uint32_t>(n_agents + 1);
    c1 = static_cast<uint32_t>(n_agents + 2);
    Rng rng(cfg.seed ^ 0xABCD);
    for (uint32_t id = 1; id <= n_agents; ++id) {
      disco.add_node(id);
      attach(id);
      disco.add_link(id, 1 + id % static_cast<uint32_t>(n_agents));  // ring
      disco.add_link(id, 1 + static_cast<uint32_t>(rng.uniform(n_agents)));
    }
    disco.add_controller(c0, /*priority=*/2);
    disco.add_controller(c1, /*priority=*/1);
    attach(c0);
    attach(c1);
    disco.add_link(c0, c1);
    disco.add_link(c1, c0);
    for (int k = 0; k < 8; ++k) {
      disco.add_link(c0, 1 + static_cast<uint32_t>(rng.uniform(n_agents)));
      disco.add_link(c1, 1 + static_cast<uint32_t>(rng.uniform(n_agents)));
    }
  }

  void attach(uint32_t id) {
    net.attach(id, [this, id](const CtrlMsg& m, uint64_t at) {
      disco.on_gossip(id, m, at);
    });
  }

  // One synchronous round: request wave + reply wave both land.
  void round() {
    disco.run_round(now);
    now += 3 * TransportConfig{}.latency_ns;
    net.deliver_until(now);
    now += kMillisecond;
  }

  uint64_t rounds_to_converge(uint32_t leader, uint64_t max_rounds) {
    for (uint64_t r = 1; r <= max_rounds; ++r) {
      round();
      if (disco.converged(leader)) return r;
    }
    return UINT64_MAX;
  }
};

TEST(CtrlDiscovery, ConvergesInSubLogarithmicRounds) {
  Mesh small(64);
  const uint64_t r64 = small.rounds_to_converge(small.c0, 32);
  Mesh big(512);
  const uint64_t r512 = big.rounds_to_converge(big.c0, 32);

  ASSERT_NE(r64, UINT64_MAX);
  ASSERT_NE(r512, UINT64_MAX);
  // Well under log2(N) rounds, and an 8x fleet costs at most a couple more
  // rounds — the multiplicative-merge signature, not additive flooding.
  EXPECT_LE(r64, static_cast<uint64_t>(std::log2(64)));
  EXPECT_LE(r512, static_cast<uint64_t>(std::log2(512)));
  EXPECT_LE(r512, r64 + 3);
}

TEST(CtrlDiscovery, LeaderBeliefMovesToStandbyAfterDeath) {
  DiscoveryConfig cfg;
  Mesh m(128, cfg);
  ASSERT_NE(m.rounds_to_converge(m.c0, 32), UINT64_MAX);

  m.disco.set_alive(m.c0, false);
  // Heartbeats age out after beat_ttl_rounds; a few more rounds spread the
  // standby's freshness everywhere.
  const uint64_t r = m.rounds_to_converge(m.c1, cfg.beat_ttl_rounds + 16);
  ASSERT_NE(r, UINT64_MAX);
  EXPECT_EQ(m.disco.leader_of(1), m.c1);
  EXPECT_EQ(m.disco.leader_of(m.c1), m.c1);
}

TEST(CtrlDiscovery, ConvergesUnderWireLoss) {
  FaultInjector fault(41);
  fault.set_probability(FaultPoint::kCtrlMsgDrop, 0.25);
  Mesh m(128, DiscoveryConfig{}, &fault);
  const uint64_t r = m.rounds_to_converge(m.c0, 64);
  ASSERT_NE(r, UINT64_MAX);

  FaultInjector none(41);
  Mesh clean(128);
  const uint64_t rc = clean.rounds_to_converge(clean.c0, 64);
  EXPECT_GE(r, rc);  // loss can only slow it down
}

TEST(CtrlDiscovery, DeterministicReplay) {
  auto episode = [] {
    Mesh m(96);
    const uint64_t r = m.rounds_to_converge(m.c0, 32);
    return std::make_tuple(r, m.disco.gossip_sent(),
                           m.net.stats().delivered);
  };
  EXPECT_EQ(episode(), episode());
}

}  // namespace
}  // namespace ovs
