// Tests for switch configuration save/restore and text flow deletion.
#include "vswitchd/config.h"

#include <gtest/gtest.h>

#include "ofproto/flow_parser.h"

namespace ovs {
namespace {

Packet tcp_to(Ipv4 dst, uint16_t dport) {
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(1, 1, 1, 1));
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(40000);
  p.key.set_tp_dst(dport);
  return p;
}

TEST(ConfigTest, SaveLoadRoundTrip) {
  Switch a;
  a.add_port(1);
  a.add_port(2);
  a.add_port(7);
  ASSERT_EQ(a.add_flow("table=0, priority=10, tcp, nw_dst=9.1.1.0/24, "
                       "actions=output:2"),
            "");
  ASSERT_EQ(a.add_flow("table=0, priority=20, arp, actions=normal"), "");
  ASSERT_EQ(a.add_flow("table=1, priority=5, reg1=7, actions=output:7"), "");

  const std::string saved = save_switch_config(a);
  Switch b;
  ASSERT_EQ(load_switch_config(b, saved), "");

  EXPECT_EQ(a.dump_flows(), b.dump_flows());
  EXPECT_EQ(a.pipeline().ports(), b.pipeline().ports());
  // Save of the restored switch is identical (fixpoint).
  EXPECT_EQ(save_switch_config(b), saved);
}

TEST(ConfigTest, RestoredSwitchBehavesIdentically) {
  Switch a;
  a.add_port(1);
  a.add_port(2);
  a.add_flow("table=0, priority=10, tcp, nw_dst=9.1.1.0/24, "
             "actions=output:2");
  Switch b;
  ASSERT_EQ(load_switch_config(b, save_switch_config(a)), "");
  for (Switch* sw : {&a, &b}) {
    sw->inject(tcp_to(Ipv4(9, 1, 1, 5), 80), 0);
    sw->handle_upcalls(0);
  }
  EXPECT_EQ(a.port_stats(2).tx_packets, b.port_stats(2).tx_packets);
  EXPECT_EQ(a.datapath().flow_count(), b.datapath().flow_count());
}

TEST(ConfigTest, LoadRejectsBadLinesWithLineNumbers) {
  Switch sw;
  const std::string err =
      load_switch_config(sw, "port 1\nflow junk=1, actions=drop\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;

  EXPECT_NE(load_switch_config(sw, "frobnicate\n").find("line 1"),
            std::string::npos);
  EXPECT_NE(load_switch_config(sw, "port xyz\n").find("line 1"),
            std::string::npos);
}

TEST(ConfigTest, CommentsAndBlanksIgnored) {
  Switch sw;
  EXPECT_EQ(load_switch_config(sw,
                               "# header\n"
                               "\n"
                               "   # indented comment\n"
                               "port 3\n"),
            "");
  EXPECT_EQ(sw.pipeline().ports().size(), 1u);
}

TEST(DelFlowsTest, LooseMatchDeletion) {
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);
  sw.add_flow("table=0, priority=10, tcp, nw_dst=9.1.1.0/24, tp_dst=80, "
              "actions=output:2");
  sw.add_flow("table=0, priority=11, tcp, nw_dst=9.1.1.0/24, tp_dst=443, "
              "actions=output:2");
  sw.add_flow("table=0, priority=12, udp, nw_dst=9.1.1.0/24, "
              "actions=output:2");
  sw.add_flow("table=1, priority=5, tcp, actions=drop");
  ASSERT_EQ(sw.dump_flows().size(), 4u);

  // Delete all TCP flows in table 0 only.
  size_t n = 0;
  ASSERT_EQ(sw.del_flows("table=0, tcp", &n), "");
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(sw.dump_flows().size(), 2u);

  // Delete everything.
  ASSERT_EQ(sw.del_flows("", &n), "");
  EXPECT_EQ(n, 2u);
  EXPECT_TRUE(sw.dump_flows().empty());
}

TEST(DelFlowsTest, FilterValuesMustAgree) {
  Switch sw;
  sw.add_flow("table=0, priority=1, tcp, tp_dst=80, actions=drop");
  size_t n = 9;
  ASSERT_EQ(sw.del_flows("tcp, tp_dst=443", &n), "");
  EXPECT_EQ(n, 0u);  // value mismatch: nothing deleted
  ASSERT_EQ(sw.del_flows("tcp, tp_dst=80", &n), "");
  EXPECT_EQ(n, 1u);
}

TEST(DelFlowsTest, BadFilterReported) {
  Switch sw;
  EXPECT_NE(sw.del_flows("nonsense=1"), "");
}

TEST(VlanActionsTest, PushPopSugarAndParser) {
  FlowParseResult r =
      parse_flow("ip, actions=mod_vlan_vid:100, output:2");
  ASSERT_TRUE(r.ok) << r.error;
  const auto& sf = std::get<OfSetField>(r.flow.actions.list[0]);
  EXPECT_EQ(sf.field, FieldId::kVlanTci);
  EXPECT_EQ(sf.value, 0x1000u | 100u);

  FlowParseResult s = parse_flow("ip, actions=strip_vlan, output:2");
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_EQ(std::get<OfSetField>(s.flow.actions.list[0]).value, 0u);

  // End-to-end: tag on ingress, forwarded packet carries the TCI.
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);
  sw.add_flow("table=0, priority=1, ip, actions=mod_vlan_vid:100, output:2");
  uint16_t seen_tci = 0;
  sw.set_output_handler([&](uint32_t, const Packet& pkt) {
    seen_tci = pkt.key.vlan_tci();
  });
  sw.inject(tcp_to(Ipv4(5, 5, 5, 5), 80), 0);
  sw.handle_upcalls(0);
  EXPECT_EQ(seen_tci, 0x1000u | 100u);
}

}  // namespace
}  // namespace ovs
