// Megaflow generation tests: the caching-aware classification algorithm
// (paper §5). Each optimization must make generated megaflows *more
// general* (fewer bits matched) without ever changing lookup results.
#include <gtest/gtest.h>

#include "classifier/classifier.h"
#include "test_util.h"

namespace ovs {
namespace {

using testutil::RuleSet;
using testutil::TestRule;

FlowKey tcp_packet(Ipv4 dst, uint16_t sport, uint16_t dport,
                   Ipv4 src = Ipv4(1, 2, 3, 4)) {
  FlowKey k;
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  k.set_nw_src(src);
  k.set_nw_dst(dst);
  k.set_tp_src(sport);
  k.set_tp_dst(dport);
  return k;
}

// Builds the paper's §7.2 microbenchmark OpenFlow table:
//   arp                                           (highest priority)
//   ip  ip_dst=11.1.1.1/16
//   tcp ip_dst=9.1.1.1 tcp_src=10 tcp_dst=10
//   ip  ip_dst=9.1.1.1/24                         (lowest priority)
void add_paper_table(RuleSet& rs) {
  rs.add(MatchBuilder().arp(), 40, 1);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(11, 1, 1, 1), 16), 30, 2);
  rs.add(MatchBuilder().tcp().nw_dst(Ipv4(9, 1, 1, 1)).tp_src(10).tp_dst(10),
         20, 3);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 1, 1, 1), 24), 10, 4);
}

TEST(WildcardsTest, MatchedRuleMaskIsIncluded) {
  RuleSet rs;
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 1, 1, 0), 24), 5, 1);
  FlowWildcards wc;
  ASSERT_NE(rs.classifier().lookup(tcp_packet(Ipv4(9, 1, 1, 7), 1, 2), &wc),
            nullptr);
  EXPECT_TRUE(wc.is_exact(FieldId::kEthType));
  EXPECT_GE(wc.prefix_len(FieldId::kNwDst), 24);
}

TEST(WildcardsTest, L2OnlyTableWildcardsL3L4) {
  // §5.1: "if the OpenFlow table only looks at Ethernet addresses ... port
  // scans will not cause packets to go to userspace" — the megaflow must not
  // match on L3/L4 at all.
  RuleSet rs;
  for (uint64_t m = 1; m <= 4; ++m)
    rs.add(MatchBuilder().eth_dst(EthAddr(m)), 1, static_cast<int>(m));
  FlowKey pkt = tcp_packet(Ipv4(9, 9, 9, 9), 12345, 80);
  pkt.set_eth_dst(EthAddr(2));
  FlowWildcards wc;
  ASSERT_NE(rs.classifier().lookup(pkt, &wc), nullptr);
  EXPECT_TRUE(wc.is_exact(FieldId::kEthDst));
  EXPECT_FALSE(wc.has_field(FieldId::kNwDst));
  EXPECT_FALSE(wc.has_field(FieldId::kNwSrc));
  EXPECT_FALSE(wc.has_field(FieldId::kTpSrc));
  EXPECT_FALSE(wc.has_field(FieldId::kTpDst));
}

TEST(WildcardsTest, NoOptimizationsUnwildcardPorts) {
  // §7.2: "with no caching-aware packet classification, any TCP packet will
  // always generate a megaflow that matches on TCP source and destination
  // ports, because flow #3 matches on those fields".
  RuleSet rs(ClassifierConfig::all_disabled());
  add_paper_table(rs);
  FlowWildcards wc;
  ASSERT_NE(
      rs.classifier().lookup(tcp_packet(Ipv4(11, 1, 9, 9), 1000, 80), &wc),
      nullptr);
  EXPECT_TRUE(wc.is_exact(FieldId::kTpSrc));
  EXPECT_TRUE(wc.is_exact(FieldId::kTpDst));
}

TEST(WildcardsTest, PrioritySortingOmitsPortsForHigherPriorityMatch) {
  // §7.2: "with priority sorting, packets that match flow #2 can omit
  // matching on TCP ports, because flow #3 is never considered".
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.priority_sorting = true;
  RuleSet rs(cfg);
  add_paper_table(rs);
  FlowWildcards wc;
  const Rule* r =
      rs.classifier().lookup(tcp_packet(Ipv4(11, 1, 9, 9), 1000, 80), &wc);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 2);
  EXPECT_FALSE(wc.has_field(FieldId::kTpSrc));
  EXPECT_FALSE(wc.has_field(FieldId::kTpDst));
}

TEST(WildcardsTest, StagedLookupOmitsPortsWhenL3Differs) {
  // §7.2: "with staged lookup, IP packets not destined to 9.1.1.1 never need
  // to match on TCP ports, because flow #3 is identified as non-matching
  // after considering only the IP destination address".
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.staged_lookup = true;
  RuleSet rs(cfg);
  add_paper_table(rs);
  FlowWildcards wc;
  const Rule* r =
      rs.classifier().lookup(tcp_packet(Ipv4(10, 7, 7, 7), 1000, 80), &wc);
  EXPECT_EQ(r, nullptr);  // matches nothing
  EXPECT_FALSE(wc.has_field(FieldId::kTpSrc));
  EXPECT_FALSE(wc.has_field(FieldId::kTpDst));
  // But the L3 fields that were consulted are matched.
  EXPECT_TRUE(wc.has_field(FieldId::kNwDst));
}

TEST(WildcardsTest, StagedLookupStillUnwildcardsPortsOnFullSearch) {
  // A packet to 9.1.1.1 with the wrong ports reaches the L4 stage of flow
  // #3's tuple, so ports are (correctly) unwildcarded.
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.staged_lookup = true;
  RuleSet rs(cfg);
  add_paper_table(rs);
  FlowWildcards wc;
  const Rule* r =
      rs.classifier().lookup(tcp_packet(Ipv4(9, 1, 1, 1), 1000, 80), &wc);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 4);
  EXPECT_TRUE(wc.is_exact(FieldId::kTpSrc));
}

TEST(WildcardsTest, PrefixTrackingAvoidsFullAddressMatch) {
  // §5.4: flows 10/8 and 10.1.2.3/32; a packet to 10.5.6.7 must get a
  // megaflow much wider than /32 (the paper installs 10.5/16; bit-level
  // tracking yields /14).
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.prefix_tracking = true;
  RuleSet rs(cfg);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 2, 1);
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(10, 1, 2, 3)), 3, 2);
  FlowWildcards wc;
  const Rule* r =
      rs.classifier().lookup(tcp_packet(Ipv4(10, 5, 6, 7), 1, 2), &wc);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 1);
  const int plen = wc.prefix_len(FieldId::kNwDst);
  ASSERT_GE(plen, 8);
  EXPECT_LE(plen, 16);  // far more general than /32
}

TEST(WildcardsTest, WithoutPrefixTrackingFullAddressIsMatched) {
  RuleSet rs(ClassifierConfig::all_disabled());
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 2, 1);
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(10, 1, 2, 3)), 3, 2);
  FlowWildcards wc;
  ASSERT_NE(rs.classifier().lookup(tcp_packet(Ipv4(10, 5, 6, 7), 1, 2), &wc),
            nullptr);
  EXPECT_EQ(wc.prefix_len(FieldId::kNwDst), 32);
}

TEST(WildcardsTest, PrefixTrackingSkipsTuples) {
  // §5.4: for 10.1.6.1 no flow longer than /16 matches, so /24 and /32
  // tuples are skipped entirely.
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.prefix_tracking = true;
  RuleSet rs(cfg);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 1, 0, 0), 16), 1, 1);
  rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 1, 3, 0), 24), 1, 2);
  rs.add(MatchBuilder().ip().nw_dst(Ipv4(10, 1, 4, 5)), 1, 3);
  rs.classifier().reset_stats();
  FlowWildcards wc;
  const Rule* r =
      rs.classifier().lookup(tcp_packet(Ipv4(10, 1, 6, 1), 1, 2), &wc);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 1);
  EXPECT_EQ(rs.classifier().stats().tuples_skipped, 2u);
  EXPECT_EQ(rs.classifier().stats().tuples_searched, 1u);
}

TEST(WildcardsTest, PortPrefixTrackingKeepsHighPortsGeneral) {
  // §5.4 (last paragraph): a high-priority ACL on a specific port (e.g.
  // block SMTP) must not force all megaflows to match the full 16-bit port.
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.staged_lookup = true;
  cfg.port_prefix_tracking = true;
  RuleSet rs(cfg);
  rs.add(MatchBuilder().tcp().tp_dst(25), 100, 1);  // block SMTP
  rs.add(MatchBuilder().ip(), 1, 2);                // allow other IP
  FlowWildcards wc;
  const Rule* r =
      rs.classifier().lookup(tcp_packet(Ipv4(5, 5, 5, 5), 1000, 54321), &wc);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 2);
  const int plen = wc.prefix_len(FieldId::kTpDst);
  ASSERT_GE(plen, 0) << "port mask should be a prefix";
  EXPECT_LT(plen, 16) << "port must not be fully unwildcarded";
  // Port 25 = 0b0000000000011001: port 54321 has the top bit set, so a
  // 1-bit prefix should actually suffice.
  EXPECT_LE(plen, 2);
}

TEST(WildcardsTest, IcmpRulesDoNotPoisonPortTries) {
  // Regression test for the §7.1 production outliers: "flows that match on
  // an ICMP type or code caused all TCP flows to match on the entire TCP
  // source or destination port". With the bug fixed (default), the port
  // trie keeps working even with ICMP rules installed.
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.staged_lookup = true;
  cfg.port_prefix_tracking = true;
  RuleSet rs(cfg);
  rs.add(MatchBuilder().icmp().icmp_type(3).icmp_code(4), 90, 1);
  rs.add(MatchBuilder().tcp().tp_dst(25), 100, 2);
  rs.add(MatchBuilder().ip(), 1, 3);
  FlowWildcards wc;
  const Rule* r =
      rs.classifier().lookup(tcp_packet(Ipv4(5, 5, 5, 5), 1000, 54321), &wc);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(static_cast<const TestRule*>(r)->id, 3);
  EXPECT_FALSE(wc.is_exact(FieldId::kTpDst))
      << "ICMP rules must not defeat port prefix tracking";
}

TEST(WildcardsTest, IcmpBugModeReproducesOutlierSymptom) {
  // With the injected bug, the same table forces full port unwildcarding —
  // this is the Figure 7 outlier behaviour.
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.staged_lookup = true;
  cfg.port_prefix_tracking = true;
  cfg.icmp_port_trie_bug = true;
  RuleSet rs(cfg);
  rs.add(MatchBuilder().icmp().icmp_type(3).icmp_code(4), 90, 1);
  rs.add(MatchBuilder().tcp().tp_dst(25), 100, 2);
  rs.add(MatchBuilder().ip(), 1, 3);
  FlowWildcards wc;
  ASSERT_NE(
      rs.classifier().lookup(tcp_packet(Ipv4(5, 5, 5, 5), 1000, 54321), &wc),
      nullptr);
  EXPECT_TRUE(wc.is_exact(FieldId::kTpDst));
}

TEST(WildcardsTest, AllOptimizationsComposeOnPaperTable) {
  RuleSet rs;  // all optimizations on
  add_paper_table(rs);
  // Packet matching flow #2: ports stay wildcarded, dst is a /16-ish prefix.
  {
    FlowWildcards wc;
    const Rule* r =
        rs.classifier().lookup(tcp_packet(Ipv4(11, 1, 3, 3), 99, 80), &wc);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(static_cast<const TestRule*>(r)->id, 2);
    EXPECT_FALSE(wc.has_field(FieldId::kTpSrc));
    EXPECT_FALSE(wc.has_field(FieldId::kTpDst));
    EXPECT_LE(wc.prefix_len(FieldId::kNwDst), 16);
  }
  // Packet in 9.1.1/24 but not 9.1.1.1: prefix tracking skips flow #3's /32
  // tuple, so ports stay wildcarded and the address is narrower than /32.
  {
    FlowWildcards wc;
    const Rule* r =
        rs.classifier().lookup(tcp_packet(Ipv4(9, 1, 1, 200), 99, 80), &wc);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(static_cast<const TestRule*>(r)->id, 4);
    EXPECT_FALSE(wc.has_field(FieldId::kTpSrc));
    EXPECT_LT(wc.prefix_len(FieldId::kNwDst), 32);
  }
  // The exact ACL packet still matches fully.
  {
    FlowWildcards wc;
    const Rule* r =
        rs.classifier().lookup(tcp_packet(Ipv4(9, 1, 1, 1), 10, 10), &wc);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(static_cast<const TestRule*>(r)->id, 3);
  }
}

}  // namespace
}  // namespace ovs
