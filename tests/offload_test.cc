// Simulated NIC hardware-offload tier tests (DESIGN.md §13): the table
// itself, earned-slot placement with hysteresis, revalidation keeping slots
// coherent, crash/restart adopt-or-flush, and the sharded backend's
// RCU-published view semantics.
#include "datapath/offload_table.h"

#include <gtest/gtest.h>

#include "datapath/dp_backend.h"
#include "datapath/dp_check.h"
#include "sim/clock.h"
#include "vswitchd/switch.h"

namespace ovs {
namespace {

Packet make_udp(uint8_t dst_net, uint16_t sport = 40000) {
  Packet p;
  FlowKey& k = p.key;
  k.set_in_port(1);
  k.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, 1));
  k.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 2));
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kUdp);
  k.set_nw_src(Ipv4(1, 2, 3, 4));
  k.set_nw_dst(Ipv4(dst_net, 0, 0, 1));
  k.set_tp_src(sport);
  k.set_tp_dst(5001);
  p.size_bytes = 100;
  return p;
}

// --- The table itself -------------------------------------------------------

TEST(OffloadTableTest, InstallProbeEvict) {
  OffloadTable t(2);
  int owner_a = 0, owner_b = 0, owner_c = 0;
  const Match ma = MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8);
  const Match mb = MatchBuilder().ip().nw_dst_prefix(Ipv4(20, 0, 0, 0), 8);

  EXPECT_TRUE(t.install(ma, DpActions().output(2), &owner_a, 5));
  EXPECT_FALSE(t.install(ma, DpActions().output(2), &owner_a, 5))
      << "an owner holds at most one slot";
  EXPECT_TRUE(t.install(mb, DpActions().output(3), &owner_b, 6));
  EXPECT_FALSE(t.install(ma, DpActions().output(4), &owner_c, 7))
      << "table full";
  EXPECT_EQ(t.size(), 2u);

  const OffloadTable::Entry* e = t.probe(make_udp(10).key);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, &owner_a);
  EXPECT_EQ(e->actions, DpActions().output(2));
  EXPECT_EQ(e->installed_ns, 5u);
  EXPECT_EQ(t.probe(make_udp(30).key), nullptr);

  EXPECT_TRUE(t.sync_actions(&owner_a, DpActions().output(9)));
  EXPECT_EQ(t.probe(make_udp(10).key)->actions, DpActions().output(9));

  EXPECT_TRUE(t.evict(&owner_a));
  EXPECT_FALSE(t.evict(&owner_a));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.probe(make_udp(10).key), nullptr);
  ASSERT_NE(t.probe(make_udp(20).key), nullptr);
}

TEST(OffloadTableTest, CloneSharesCountersButNotSlots) {
  OffloadTable t(4);
  int owner = 0;
  ASSERT_TRUE(t.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8),
                        DpActions().output(2), &owner, 0));
  const std::unique_ptr<OffloadTable> view = t.clone();

  // Credit a hit against the clone, the way a worker credits a published
  // view; the master's slot must see it (shared counters).
  const OffloadTable::Entry* ve = view->probe(make_udp(10).key);
  ASSERT_NE(ve, nullptr);
  ve->counters->hits.fetch_add(7, std::memory_order_relaxed);
  EXPECT_EQ(t.find(&owner)->counters->hits.load(std::memory_order_relaxed),
            7u);

  // Slot membership is a deep copy: evicting from the master leaves the
  // old view intact (readers drain on the retired clone).
  EXPECT_TRUE(t.evict(&owner));
  EXPECT_NE(view->probe(make_udp(10).key), nullptr);
  EXPECT_EQ(view->size(), 1u);
  EXPECT_EQ(t.size(), 0u);
}

// --- Earned-slot placement through the Switch revalidator -------------------

class OffloadPlacementTest : public ::testing::Test {
 protected:
  void build(size_t slots, double min_ewma = 1.0,
             double challenge = 2.0, size_t workers = 0) {
    SwitchConfig cfg;
    cfg.offload_slots = slots;
    cfg.offload_min_ewma = min_ewma;
    cfg.offload_challenge_factor = challenge;
    cfg.datapath_workers = workers;
    sw_ = std::make_unique<Switch>(cfg);
    for (uint32_t p : {1u, 2u, 3u}) sw_->add_port(p);
    sw_->table(0).add_flow(
        MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 10,
        OfActions().output(2));
    sw_->table(0).add_flow(
        MatchBuilder().ip().nw_dst_prefix(Ipv4(20, 0, 0, 0), 8), 10,
        OfActions().output(3));
  }

  // One traffic interval: n_a packets to 10/8, n_b to 20/8, upcalls drained.
  void pump(size_t n_a, size_t n_b) {
    for (size_t i = 0; i < n_a; ++i) sw_->inject(make_udp(10), clock_.now());
    for (size_t i = 0; i < n_b; ++i) sw_->inject(make_udp(20), clock_.now());
    sw_->handle_upcalls(clock_.now());
  }

  // Advance one dump interval and run the revalidator (placement included).
  void tick() {
    clock_.advance(kSecond);
    sw_->run_maintenance(clock_.now());
  }

  std::unique_ptr<Switch> sw_;
  VirtualClock clock_;
};

TEST_F(OffloadPlacementTest, HotFlowsEarnFreeSlots) {
  build(/*slots=*/4);
  pump(50, 5);
  EXPECT_EQ(sw_->backend().offload_size(), 0u);  // not yet earned
  tick();
  EXPECT_EQ(sw_->backend().offload_size(), 2u);
  EXPECT_EQ(sw_->counters().offload_installs, 2u);

  // The offload tier answers before the EMC, from its own snapshot, and
  // still delivers to the right port.
  const auto tx2 = sw_->port_stats(2).tx_packets;
  EXPECT_EQ(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);
  EXPECT_EQ(sw_->port_stats(2).tx_packets, tx2 + 1);
  EXPECT_EQ(sw_->inject(make_udp(20), clock_.now()),
            Datapath::Path::kOffloadHit);

  // Offload hits credit the owner megaflow, so the ledger stays conserved
  // and slot hits never exceed owner packets.
  EXPECT_TRUE(run_dp_check(sw_->backend()).ok());
  EXPECT_GT(sw_->backend().stats().offload_hits, 0u);
}

TEST_F(OffloadPlacementTest, ColdFlowsBelowMinEwmaNeverEarn) {
  build(/*slots=*/4, /*min_ewma=*/10.0);
  for (int round = 0; round < 3; ++round) {
    pump(50, 2);  // B averages 2 packets/interval < 10
    tick();
  }
  EXPECT_EQ(sw_->backend().offload_size(), 1u);
  EXPECT_EQ(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);
  EXPECT_NE(sw_->inject(make_udp(20), clock_.now()),
            Datapath::Path::kOffloadHit);
}

TEST_F(OffloadPlacementTest, ColdIncumbentIsEvictedWhenItDecays) {
  build(/*slots=*/4, /*min_ewma=*/4.0);
  pump(50, 0);
  tick();
  ASSERT_EQ(sw_->backend().offload_size(), 1u);
  // A goes quiet: its EWMA halves every pass (alpha 0.5) until it falls
  // below min_ewma and the slot is reclaimed with no challenger needed.
  for (int round = 0; round < 8 && sw_->backend().offload_size() > 0;
       ++round)
    tick();
  EXPECT_EQ(sw_->backend().offload_size(), 0u);
  EXPECT_GE(sw_->counters().offload_evicts, 1u);
}

TEST_F(OffloadPlacementTest, HysteresisDampsSlotChurn) {
  build(/*slots=*/1, /*min_ewma=*/1.0, /*challenge=*/2.0);
  pump(50, 10);
  tick();  // A takes the single slot
  ASSERT_EQ(sw_->backend().offload_size(), 1u);
  EXPECT_EQ(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);

  // B edges ahead of A but not past the 2x hysteresis bar: no churn.
  pump(50, 60);
  tick();
  EXPECT_EQ(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);
  EXPECT_EQ(sw_->counters().offload_evicts, 0u);

  // B becomes clearly hotter; within a few passes its EWMA clears the bar
  // and it displaces A.
  for (int round = 0; round < 6; ++round) {
    pump(0, 400);
    tick();
  }
  EXPECT_EQ(sw_->inject(make_udp(20), clock_.now()),
            Datapath::Path::kOffloadHit);
  EXPECT_NE(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);
  EXPECT_GE(sw_->counters().offload_evicts, 1u);
  EXPECT_EQ(sw_->backend().offload_size(), 1u);
}

TEST_F(OffloadPlacementTest, DisabledTierStaysInert) {
  build(/*slots=*/0);
  pump(50, 50);
  tick();
  EXPECT_FALSE(sw_->backend().offload_enabled());
  EXPECT_EQ(sw_->backend().offload_capacity(), 0u);
  EXPECT_EQ(sw_->counters().offload_installs, 0u);
  EXPECT_EQ(sw_->backend().stats().offload_hits, 0u);
  EXPECT_NE(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);
}

// --- Revalidation keeps offloaded copies coherent ---------------------------

TEST_F(OffloadPlacementTest, RuleChangeRepairsOffloadedCopySamePass) {
  build(/*slots=*/4);
  pump(50, 0);
  tick();
  ASSERT_EQ(sw_->backend().offload_size(), 1u);

  // Rewire 10/8 to port 3. The megaflow's actions are stale until the next
  // revalidation pass, which must repair the offloaded snapshot in the same
  // pass it repairs the megaflow — no window where hardware forwards to the
  // old port after the pass completes.
  size_t n = 0;
  ASSERT_EQ(sw_->del_flows("ip, nw_dst=10.0.0.0/8", &n), "");
  ASSERT_EQ(n, 1u);
  ASSERT_EQ(sw_->add_flow("table=0, priority=10, ip, nw_dst=10.0.0.0/8, "
                          "actions=output:3"),
            "");
  tick();

  const auto tx3 = sw_->port_stats(3).tx_packets;
  EXPECT_EQ(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);
  EXPECT_EQ(sw_->port_stats(3).tx_packets, tx3 + 1);
  EXPECT_TRUE(run_dp_check(sw_->backend()).ok());
}

// --- Crash / restart: adopt-or-flush ----------------------------------------

TEST_F(OffloadPlacementTest, RestartAdoptsCoherentSlots) {
  build(/*slots=*/4);
  pump(50, 30);
  tick();
  ASSERT_EQ(sw_->backend().offload_size(), 2u);

  // The daemon dies; the NIC keeps its programmed slots and keeps
  // forwarding from them while userspace is gone.
  sw_->crash();
  ASSERT_NE(sw_->lifecycle(), LifecycleState::kServing);
  EXPECT_EQ(sw_->backend().offload_size(), 2u);
  EXPECT_EQ(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);

  clock_.advance(kSecond);
  ASSERT_TRUE(sw_->restart(clock_.now()));
  EXPECT_EQ(sw_->counters().offload_adopted, 2u);
  EXPECT_EQ(sw_->counters().offload_flushed, 0u);
  EXPECT_EQ(sw_->backend().offload_size(), 2u);
  EXPECT_EQ(sw_->inject(make_udp(10), clock_.now()),
            Datapath::Path::kOffloadHit);
  EXPECT_TRUE(run_dp_check(sw_->backend()).ok());
}

TEST_F(OffloadPlacementTest, RestartFlushesIncoherentSlot) {
  build(/*slots=*/4);
  pump(50, 30);
  tick();
  ASSERT_EQ(sw_->backend().offload_size(), 2u);

  sw_->crash();
  // While the daemon is down, one slot is re-keyed to a flow that no longer
  // exists (the corruption the adopt-or-flush sweep exists to catch; the
  // backend's own coherence hooks cannot have seen it).
  ASSERT_TRUE(sw_->backend().offload_corrupt(
      0, OffloadTable::Corruption::kOrphanSlot));

  clock_.advance(kSecond);
  ASSERT_TRUE(sw_->restart(clock_.now()));
  EXPECT_EQ(sw_->counters().offload_flushed, 1u);
  EXPECT_EQ(sw_->counters().offload_adopted, 1u);
  EXPECT_EQ(sw_->backend().offload_size(), 1u);
  EXPECT_TRUE(run_dp_check(sw_->backend()).ok());
}

// --- Sharded backend: RCU view publication ----------------------------------

TEST(OffloadMtTest, SlotVisibleToWorkersOnlyAfterCommit) {
  ShardedDatapathConfig cfg;
  cfg.n_workers = 2;
  cfg.offload_slots = 4;
  cfg.emc_enabled = false;  // keep the non-offload path deterministic
  MtDpBackend be{cfg};
  DpBackend::FlowRef f = be.install(
      MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8),
      DpActions().output(2), 0);
  ASSERT_NE(f, nullptr);

  const Packet p = make_udp(10);
  EXPECT_EQ(be.receive(p, 0).path, Datapath::Path::kMegaflowHit);

  // Programmed in the master but not yet published: the fast path still
  // serves from the megaflow table.
  ASSERT_TRUE(be.offload_install(f, 0));
  EXPECT_TRUE(be.offload_contains(f));
  EXPECT_EQ(be.receive(p, 0).path, Datapath::Path::kMegaflowHit);

  be.offload_commit();
  EXPECT_EQ(be.receive(p, 0).path, Datapath::Path::kOffloadHit);

  // Hits credited against the published view reach the master's slot, and
  // the owner megaflow was credited too (ledger conservation).
  uint64_t slot_hits = 0;
  for (const DpBackend::OffloadSlot& s : be.offload_dump())
    slot_hits += s.hits;
  EXPECT_EQ(slot_hits, 1u);
  EXPECT_EQ(be.flow_packets(f), 3u);
  EXPECT_TRUE(run_dp_check(be).ok());

  // Eviction publishes through purge_dead (the revalidator's end-of-pass
  // barrier) or an explicit commit.
  ASSERT_TRUE(be.offload_evict(f));
  EXPECT_EQ(be.receive(p, 0).path, Datapath::Path::kOffloadHit)
      << "stale published view still serves until the next commit";
  be.offload_commit();
  EXPECT_EQ(be.receive(p, 0).path, Datapath::Path::kMegaflowHit);
}

TEST(OffloadMtTest, ShardedSwitchServesOffloadHits) {
  SwitchConfig cfg;
  cfg.datapath_workers = 4;
  cfg.offload_slots = 8;
  Switch sw(cfg);
  for (uint32_t p : {1u, 2u}) sw.add_port(p);
  sw.table(0).add_flow(
      MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 10,
      OfActions().output(2));

  VirtualClock clock;
  std::vector<Packet> burst(16, make_udp(10));
  sw.inject_batch(burst, clock.now());
  sw.handle_upcalls(clock.now());
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // placement + publish
  ASSERT_EQ(sw.backend().offload_size(), 1u);

  const auto before = sw.backend().stats().offload_hits;
  sw.inject_batch(burst, clock.now());
  EXPECT_EQ(sw.backend().stats().offload_hits, before + burst.size());
  EXPECT_TRUE(run_dp_check(sw.backend()).ok());
}

}  // namespace
}  // namespace ovs
