// Fault-injection matrix and overload-degradation tests.
//
// The claims under test, per fault class (util/fault.h):
//   * convergence — once faults stop, bounded repeat traffic plus one
//     maintenance round restores every cached flow to the pipeline's
//     current answer, with no permanently lost connections;
//   * soundness — no fault ever makes the cache *answer wrongly* for live
//     entries after convergence (wildcarding stays sound);
//   * accounting — the switch's overload counters balance exactly
//     (see Switch::Counters invariants), so nothing is silently lost;
//   * determinism — the whole scenario replays bit-identically from the
//     same seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datapath/mt_datapath.h"
#include "sim/clock.h"
#include "util/fault.h"
#include "vswitchd/switch.h"
#include "workload/table_gen.h"

namespace ovs {
namespace {

Packet conn_packet(uint32_t port, uint32_t id) {
  Packet p;
  p.key.set_in_port(port);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(10, static_cast<uint8_t>(port),
                        static_cast<uint8_t>(id >> 8),
                        static_cast<uint8_t>(id)));
  p.key.set_nw_dst(Ipv4(9, 1, 1, 2));
  p.key.set_tp_src(static_cast<uint16_t>(1024 + (id % 60000)));
  p.key.set_tp_dst(80);
  return p;
}

void expect_accounting_invariants(const Switch& sw) {
  const Switch::Counters& c = sw.counters();
  // Every processed attempt (fresh or retry) installed, hit a dup, or
  // failed. Holds across a crash: crash() folds the queued upcalls into
  // upcalls_dropped and the pending retries into retry_abandoned, so
  // nothing leaves the ledger silently.
  EXPECT_EQ(c.upcalls_handled + c.upcalls_retried,
            c.flow_setups + c.setup_dups + c.install_fails);
  // Every failure was retried, is still pending, or was given up.
  EXPECT_EQ(c.install_fails,
            c.upcalls_retried + sw.retry_queue_depth() + c.retry_abandoned);
  // Every rule-add attempt was either admitted into a table or rejected by
  // the per-tenant mask cap — a rejection must not leak a partial rule.
  EXPECT_EQ(c.flow_adds_attempted,
            c.flow_adds_admitted + c.rules_rejected_mask_cap);
  // Reconciliation verdicts only ever come from examined flows, and
  // blackout cycles only from taken crashes.
  EXPECT_LE(c.flows_adopted + c.flows_repaired, c.reval_flows_examined);
  if (c.userspace_crashes == 0) EXPECT_EQ(c.reconcile_blackout_cycles, 0u);
}

// --- FaultInjector unit behavior -------------------------------------------

TEST(FaultInjectorTest, ScriptFiresAtExactOccurrences) {
  FaultInjector f(7);
  f.script(FaultPoint::kInstallTransient, {0, 2, 5});
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i)
    fired.push_back(f.should_fire(FaultPoint::kInstallTransient));
  EXPECT_EQ(fired, (std::vector<bool>{true, false, true, false, false, true,
                                      false, false}));
  EXPECT_EQ(f.fired(FaultPoint::kInstallTransient), 3u);
  EXPECT_EQ(f.occurrences(FaultPoint::kInstallTransient), 8u);
}

TEST(FaultInjectorTest, WindowFiresInHalfOpenRange) {
  FaultInjector f(7);
  f.arm_window(FaultPoint::kUpcallDrop, 2, 5);
  int n = 0;
  for (int i = 0; i < 10; ++i)
    if (f.should_fire(FaultPoint::kUpcallDrop)) ++n;
  EXPECT_EQ(n, 3);
}

TEST(FaultInjectorTest, ProbabilityStreamIsDeterministicAndIndependent) {
  auto run = [](bool also_arm_other) {
    FaultInjector f(1234);
    f.set_probability(FaultPoint::kUpcallDrop, 0.3);
    if (also_arm_other)
      f.set_probability(FaultPoint::kInstallTableFull, 0.9);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(f.should_fire(FaultPoint::kUpcallDrop));
      if (also_arm_other)
        (void)f.should_fire(FaultPoint::kInstallTableFull);
    }
    return out;
  };
  // Same seed -> same stream; arming another point must not perturb it.
  EXPECT_EQ(run(false), run(false));
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjectorTest, DisarmStopsFiringButKeepsCounters) {
  FaultInjector f(9);
  f.arm_window(FaultPoint::kEntryCorrupt, 0, 100);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(f.should_fire(FaultPoint::kEntryCorrupt));
  f.disarm(FaultPoint::kEntryCorrupt);
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(f.should_fire(FaultPoint::kEntryCorrupt));
  EXPECT_EQ(f.fired(FaultPoint::kEntryCorrupt), 10u);
  EXPECT_EQ(f.occurrences(FaultPoint::kEntryCorrupt), 20u);
}

TEST(FaultInjectorTest, ResetReplaysTheIdenticalFaultSchedule) {
  // reset() rewinds the occurrence counters, script cursors, and the
  // seed-derived probability streams while leaving schedules armed, so a
  // second run over the same decision points sees bit-identical faults
  // (replayable fault schedules for reconnect/recovery tests).
  FaultInjector f(0x5EED);
  f.set_probability(FaultPoint::kCtrlMsgDrop, 0.35);
  f.script(FaultPoint::kCtrlConnReset, {3, 7, 11});
  f.arm_window(FaultPoint::kCtrlMsgDelay, 5, 9);

  auto episode = [&f] {
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(f.should_fire(FaultPoint::kCtrlMsgDrop));
      out.push_back(f.should_fire(FaultPoint::kCtrlConnReset));
      out.push_back(f.should_fire(FaultPoint::kCtrlMsgDelay));
    }
    return out;
  };

  const std::vector<bool> first = episode();
  // Counters advanced and the script cursor is spent...
  EXPECT_EQ(f.occurrences(FaultPoint::kCtrlMsgDrop), 64u);
  EXPECT_EQ(f.fired(FaultPoint::kCtrlConnReset), 3u);
  ASSERT_NE(f.fired(FaultPoint::kCtrlMsgDrop), 0u);

  // ...until reset() rewinds everything to the origin.
  f.reset();
  EXPECT_EQ(f.occurrences(FaultPoint::kCtrlMsgDrop), 0u);
  EXPECT_EQ(f.fired(FaultPoint::kCtrlConnReset), 0u);
  EXPECT_EQ(episode(), first);

  // Per-point reset rewinds only that point: the drop stream replays while
  // the (un-reset) script stays spent.
  f.reset(FaultPoint::kCtrlMsgDrop);
  std::vector<bool> drops, resets;
  for (int i = 0; i < 64; ++i) {
    drops.push_back(f.should_fire(FaultPoint::kCtrlMsgDrop));
    resets.push_back(f.should_fire(FaultPoint::kCtrlConnReset));
    (void)f.should_fire(FaultPoint::kCtrlMsgDelay);
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(drops[static_cast<size_t>(i)], first[static_cast<size_t>(3 * i)]);
    EXPECT_FALSE(resets[static_cast<size_t>(i)]);
  }

  // Victim selection rewinds with the whole-injector reset too.
  f.reset();
  std::vector<uint64_t> picks1, picks2;
  for (int i = 0; i < 16; ++i) picks1.push_back(f.pick(1000));
  f.reset();
  for (int i = 0; i < 16; ++i) picks2.push_back(f.pick(1000));
  EXPECT_EQ(picks1, picks2);
}

// --- Fault matrix: convergence after every fault class ---------------------

class FaultMatrixTest : public ::testing::TestWithParam<FaultPoint> {};

TEST_P(FaultMatrixTest, ConvergesAfterFaultsStop) {
  FaultInjector fault(0xF00D + static_cast<uint64_t>(GetParam()));
  fault.set_probability(GetParam(), 0.3);
  // kReconcileStall is only consulted while a restart is reconciling, so
  // its matrix row needs a crash to reach that state: script one at the
  // first maintenance round.
  if (GetParam() == FaultPoint::kReconcileStall)
    fault.script(FaultPoint::kUserspaceCrash, {0});

  SwitchConfig cfg;
  cfg.megaflows_enabled = false;  // one exact-match entry per connection
  cfg.fault = &fault;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));

  constexpr uint32_t kConns = 200;
  VirtualClock clock;

  // Phase 1: faults armed. Repeat traffic over a fixed connection set;
  // whatever the fault does, nothing may crash or corrupt accounting.
  for (int round = 0; round < 10; ++round) {
    for (uint32_t i = 0; i < kConns; ++i)
      sw.inject(conn_packet(1, i), clock.now());
    sw.handle_upcalls(clock.now());
    clock.advance(100 * kMillisecond);
    if (round % 5 == 4) sw.run_maintenance(clock.now());
  }
  expect_accounting_invariants(sw);

  // Phase 2: faults stop. One maintenance round (repairs corruption,
  // reaps expirations, completes any pending crash recovery) plus one
  // clean traffic round must converge. A crash taken at the very last
  // armed maintenance can leave the switch mid-recovery, so drive
  // maintenance until it serves again (bounded: stalls are disarmed).
  fault.disarm_all();
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  for (int i = 0; i < 3 && sw.lifecycle() != LifecycleState::kServing; ++i)
    sw.run_maintenance(clock.now());
  ASSERT_EQ(sw.lifecycle(), LifecycleState::kServing);
  for (int round = 0; round < 3; ++round) {
    for (uint32_t i = 0; i < kConns; ++i)
      sw.inject(conn_packet(1, i), clock.now());
    sw.handle_upcalls(clock.now());
    clock.advance(200 * kMillisecond);  // lets any last retries come due
  }
  sw.handle_upcalls(clock.now());

  // Every connection is cached and every cached answer equals a fresh
  // translation (the convergence + soundness property).
  EXPECT_EQ(sw.datapath().flow_count(), kConns);
  for (const MegaflowEntry* e : sw.datapath().dump()) {
    const XlateResult want = sw.pipeline().translate(
        e->match().key, clock.now(), /*side_effects=*/false);
    EXPECT_EQ(e->actions(), want.actions) << e->match().key.to_string();
  }
  EXPECT_EQ(sw.retry_queue_depth(), 0u);
  EXPECT_EQ(sw.datapath().delayed_upcall_count(), 0u);
  expect_accounting_invariants(sw);

  // The armed point actually exercised something (occurrences consumed);
  // guards against a fault class silently becoming a no-op.
  EXPECT_GT(fault.occurrences(GetParam()), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultMatrixTest,
    ::testing::Values(FaultPoint::kUpcallDrop, FaultPoint::kUpcallDelay,
                      FaultPoint::kUpcallDuplicate,
                      FaultPoint::kInstallTableFull,
                      FaultPoint::kInstallTransient,
                      FaultPoint::kEntryCorrupt, FaultPoint::kEntryExpire,
                      FaultPoint::kRevalidatorStall,
                      FaultPoint::kUserspaceCrash,
                      FaultPoint::kReconcileStall),
    [](const ::testing::TestParamInfo<FaultPoint>& param_info) {
      return fault_point_name(param_info.param);
    });

TEST(FaultMatrixTest, ScenarioIsDeterministicFromSeed) {
  auto run = [] {
    FaultInjector fault(0xDE7);
    for (size_t i = 0; i < kNumFaultPoints; ++i)
      fault.set_probability(static_cast<FaultPoint>(i), 0.15);
    SwitchConfig cfg;
    cfg.megaflows_enabled = false;
    cfg.fault = &fault;
    Switch sw(cfg);
    sw.add_port(1);
    sw.add_port(2);
    sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));
    VirtualClock clock;
    for (int round = 0; round < 8; ++round) {
      for (uint32_t i = 0; i < 150; ++i)
        sw.inject(conn_packet(1, i), clock.now());
      sw.handle_upcalls(clock.now());
      clock.advance(100 * kMillisecond);
      if (round % 3 == 2) sw.run_maintenance(clock.now());
    }
    const Switch::Counters& c = sw.counters();
    return std::vector<uint64_t>{
        c.flow_setups,     c.setup_dups,      c.install_fails,
        c.upcalls_handled, c.upcalls_retried, c.retry_abandoned,
        c.upcalls_dropped, c.reval_stalls,    c.userspace_crashes,
        c.flows_adopted,   c.reconcile_stalls, sw.datapath().flow_count(),
        fault.total_fired()};
  };
  EXPECT_EQ(run(), run());
}

// Megaflow (wildcarded) corruption: the revalidator must repair entries
// whose actions were scrambled even though the pipeline never changed.
TEST(FaultMatrixTest, CorruptedMegaflowsRepairedByRevalidator) {
  FaultInjector fault(0xC0);
  SwitchConfig cfg;
  cfg.fault = &fault;
  Switch sw(cfg);
  sw.add_port(1);
  for (uint32_t p = 2; p <= 5; ++p) sw.add_port(p);
  for (uint8_t i = 0; i < 16; ++i)
    sw.table(0).add_flow(MatchBuilder().ip().nw_dst(Ipv4(9, 1, 1, i)), 10,
                         OfActions().output(2 + (i % 4)));

  VirtualClock clock;
  for (uint8_t i = 0; i < 16; ++i) {
    Packet p;
    p.key.set_in_port(1);
    p.key.set_eth_type(ethertype::kIpv4);
    p.key.set_nw_proto(ipproto::kUdp);
    p.key.set_nw_dst(Ipv4(9, 1, 1, i));
    p.key.set_tp_dst(5000);
    sw.inject(p, clock.now());
  }
  sw.handle_upcalls(clock.now());
  ASSERT_EQ(sw.datapath().flow_count(), 16u);

  // Corrupt every entry deterministically (window: all occurrences fire),
  // via the switch's own injection point so it learns repair is needed.
  // Anchor the window at the current occurrence count: earlier
  // handle_upcalls calls already consumed occurrences of this point.
  const uint64_t base = fault.occurrences(FaultPoint::kEntryCorrupt);
  fault.arm_window(FaultPoint::kEntryCorrupt, base, base + 16);
  for (int i = 0; i < 16; ++i) sw.handle_upcalls(clock.now());
  EXPECT_EQ(sw.datapath().stats().entries_corrupted, 16u);
  fault.disarm_all();

  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // pipeline unchanged: repair relies on
                                    // the forced full revalidation
  EXPECT_GT(sw.counters().reval_updated_actions, 0u);
  for (const MegaflowEntry* e : sw.datapath().dump()) {
    const XlateResult want = sw.pipeline().translate(
        e->match().key, clock.now(), /*side_effects=*/false);
    EXPECT_EQ(e->actions(), want.actions) << e->match().key.to_string();
  }
}

// --- Install-failure retry path --------------------------------------------

TEST(RetryTest, TransientFailureRetriedWithBackoffUntilInstalled) {
  FaultInjector fault(0x11);
  // Fail the first install attempt and the first retry; third attempt lands.
  fault.script(FaultPoint::kInstallTransient, {0, 1});
  SwitchConfig cfg;
  cfg.megaflows_enabled = false;
  cfg.fault = &fault;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));

  VirtualClock clock;
  sw.inject(conn_packet(1, 0), clock.now());
  sw.handle_upcalls(clock.now());  // attempt 0 fails -> retry in 10ms
  EXPECT_EQ(sw.counters().install_fails, 1u);
  EXPECT_EQ(sw.retry_queue_depth(), 1u);
  EXPECT_EQ(sw.datapath().flow_count(), 0u);

  clock.advance(5 * kMillisecond);
  sw.handle_upcalls(clock.now());  // not due yet
  EXPECT_EQ(sw.counters().upcalls_retried, 0u);

  clock.advance(10 * kMillisecond);
  sw.handle_upcalls(clock.now());  // retry 1 fails -> backoff 20ms
  EXPECT_EQ(sw.counters().upcalls_retried, 1u);
  EXPECT_EQ(sw.counters().install_fails, 2u);

  clock.advance(25 * kMillisecond);
  sw.handle_upcalls(clock.now());  // retry 2 succeeds
  EXPECT_EQ(sw.counters().upcalls_retried, 2u);
  EXPECT_EQ(sw.datapath().flow_count(), 1u);
  EXPECT_EQ(sw.counters().flow_setups, 1u);
  EXPECT_EQ(sw.counters().retry_abandoned, 0u);
  EXPECT_EQ(sw.retry_queue_depth(), 0u);
  expect_accounting_invariants(sw);
}

TEST(RetryTest, PersistentFailureIsAbandonedAfterMaxRetries) {
  FaultInjector fault(0x12);
  fault.set_probability(FaultPoint::kInstallTransient, 1.0);
  SwitchConfig cfg;
  cfg.megaflows_enabled = false;
  cfg.fault = &fault;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));

  VirtualClock clock;
  sw.inject(conn_packet(1, 0), clock.now());
  for (int i = 0; i < 8; ++i) {
    sw.handle_upcalls(clock.now());
    clock.advance(kSecond);  // far past every backoff
  }
  // 1 fresh attempt + max_install_retries retries, all failed, then gone.
  EXPECT_EQ(sw.counters().upcalls_retried,
            cfg.degradation.max_install_retries);
  EXPECT_EQ(sw.counters().install_fails,
            1 + cfg.degradation.max_install_retries);
  EXPECT_EQ(sw.counters().retry_abandoned, 1u);
  EXPECT_EQ(sw.retry_queue_depth(), 0u);
  EXPECT_EQ(sw.datapath().flow_count(), 0u);
  expect_accounting_invariants(sw);
}

TEST(RetryTest, DegradationOffLosesFailedInstallsSilently) {
  FaultInjector fault(0x13);
  fault.script(FaultPoint::kInstallTransient, {0});
  SwitchConfig cfg;
  cfg.megaflows_enabled = false;
  cfg.degradation.enabled = false;  // ablation
  cfg.fault = &fault;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));

  VirtualClock clock;
  sw.inject(conn_packet(1, 0), clock.now());
  sw.handle_upcalls(clock.now());
  EXPECT_EQ(sw.counters().install_fails, 1u);
  EXPECT_EQ(sw.retry_queue_depth(), 0u);  // no retry scheduled
  EXPECT_EQ(sw.datapath().flow_count(), 0u);
  // Only re-missing traffic re-establishes the flow.
  clock.advance(kMillisecond);
  sw.inject(conn_packet(1, 0), clock.now());
  sw.handle_upcalls(clock.now());
  EXPECT_EQ(sw.datapath().flow_count(), 1u);
}

// --- Revalidator deadline AIMD ---------------------------------------------

TEST(DegradationTest, RevalidatorStallBacksOffThenRecovers) {
  FaultInjector fault(0x21);
  fault.arm_window(FaultPoint::kRevalidatorStall, 0, 2);
  SwitchConfig cfg;
  cfg.fault = &fault;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));

  VirtualClock clock;
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // stalled
  EXPECT_EQ(sw.counters().reval_stalls, 1u);
  EXPECT_EQ(sw.counters().flow_limit_backoffs, 1u);
  EXPECT_DOUBLE_EQ(sw.flow_limit_scale(), 0.5);
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // stalled again: multiplicative
  EXPECT_DOUBLE_EQ(sw.flow_limit_scale(), 0.25);

  // Clean passes win the headroom back additively.
  for (int i = 0; i < 10 && sw.flow_limit_scale() < 1.0; ++i) {
    clock.advance(kSecond);
    sw.run_maintenance(clock.now());
  }
  EXPECT_DOUBLE_EQ(sw.flow_limit_scale(), 1.0);
  EXPECT_EQ(sw.counters().reval_stalls, 2u);
}

TEST(DegradationTest, DeadlineOverrunShrinksEffectiveFlowLimit) {
  SwitchConfig cfg;
  cfg.megaflows_enabled = false;
  cfg.max_revalidation_ns = kMillisecond;  // capacity ~333 flows at 2 GHz
  cfg.degradation.limit_floor = 64;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));

  VirtualClock clock;
  for (uint32_t i = 0; i < 400; ++i)
    sw.inject(conn_packet(1, i), clock.now());
  sw.handle_upcalls(clock.now());
  ASSERT_EQ(sw.datapath().flow_count(), 400u);

  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // 400 * 6000 cycles = 1.2ms > deadline
  EXPECT_GE(sw.counters().reval_overruns, 1u);
  EXPECT_GE(sw.counters().flow_limit_backoffs, 1u);
  const size_t base_limit = 333;  // deadline-derived capacity
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // scaled limit now in force
  EXPECT_LT(sw.effective_flow_limit(), base_limit);
  EXPECT_GE(sw.effective_flow_limit(), cfg.degradation.limit_floor);
  EXPECT_LE(sw.datapath().flow_count(), base_limit);
}

// --- EMC thrash -> probabilistic insertion ---------------------------------

TEST(DegradationTest, EmcThrashEngagesProbabilisticInsertionWithHysteresis) {
  SwitchConfig cfg;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));

  VirtualClock clock;
  // Warm the single catch-all megaflow.
  sw.inject(conn_packet(1, 0), clock.now());
  sw.handle_upcalls(clock.now());
  ASSERT_EQ(sw.datapath().flow_count(), 1u);

  // Adversarial phase: never-repeating microflows. Every packet is a
  // megaflow hit that inserts a one-shot EMC entry — pure thrash.
  for (uint32_t i = 1; i <= 2000; ++i)
    sw.inject(conn_packet(1, i), clock.now());
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_TRUE(sw.emc_degraded());
  EXPECT_EQ(sw.counters().emc_degrade_engaged, 1u);
  EXPECT_EQ(sw.datapath().config().emc_insert_inv_prob,
            cfg.degradation.emc_degraded_inv_prob);

  // While degraded, most one-shot inserts are skipped.
  const uint64_t skips0 = sw.datapath().stats().emc_insert_skips;
  for (uint32_t i = 3000; i < 4000; ++i)
    sw.inject(conn_packet(1, i), clock.now());
  EXPECT_GT(sw.datapath().stats().emc_insert_skips, skips0 + 800);

  // Calm phase: a small repeating working set. Hits dominate attempts;
  // the detector disengages and normal insertion resumes.
  for (int round = 0; round < 300; ++round)
    for (uint32_t i = 0; i < 20; ++i)
      sw.inject(conn_packet(1, i), clock.now());
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_FALSE(sw.emc_degraded());
  EXPECT_EQ(sw.datapath().config().emc_insert_inv_prob, 1u);
}

// --- Fair queue under a port storm -----------------------------------------

struct FairnessOutcome {
  uint64_t storm_handled = 0;
  uint64_t victim_handled = 0;   // summed over the three victim ports
  uint64_t victim_min = 0;       // worst-served victim port
  uint64_t victim_max = 0;       // best-served victim port
  uint64_t victim_offered = 0;
  uint64_t victim_installs = 0;
};

// Port 1 floods never-repeating connections; ports 2-4 offer a modest
// stream of fresh connections. The handler budget is far below the
// aggregate offered miss rate, so the queue is always saturated — the
// dequeue policy alone decides who gets slow-path service.
FairnessOutcome run_port_storm(bool fair) {
  SwitchConfig cfg;
  cfg.megaflows_enabled = false;
  cfg.upcall_queue.fair = fair;
  cfg.upcall_queue.per_port_quota = 256;
  cfg.upcall_queue.global_cap = 1024;
  Switch sw(cfg);
  for (uint32_t p = 1; p <= 5; ++p) sw.add_port(p);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(5));

  VirtualClock clock;
  FairnessOutcome out;
  uint32_t storm_id = 0;
  uint32_t victim_id = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 300; ++i)
      sw.inject(conn_packet(1, storm_id++), clock.now());
    for (uint32_t port = 2; port <= 4; ++port) {
      for (int i = 0; i < 20; ++i)
        sw.inject(conn_packet(port, victim_id++), clock.now());
      out.victim_offered += 20;
    }
    sw.handle_upcalls(clock.now(), /*max_upcalls=*/100);
    clock.advance(kMillisecond);
  }
  out.storm_handled = sw.port_upcall_stats(1).handled;
  out.victim_min = ~uint64_t{0};
  for (uint32_t port = 2; port <= 4; ++port) {
    const Switch::PortUpcallStats ps = sw.port_upcall_stats(port);
    out.victim_handled += ps.handled;
    out.victim_installs += ps.installs;
    out.victim_min = std::min(out.victim_min, ps.handled);
    out.victim_max = std::max(out.victim_max, ps.handled);
  }
  return out;
}

TEST(UpcallFairnessTest, FloodingPortCannotStarveOthers) {
  const FairnessOutcome fair = run_port_storm(/*fair=*/true);
  // Victims' offered load (60/round) fits comfortably inside the budget
  // (100/round); round-robin must serve nearly all of it no matter how
  // hard port 1 floods.
  EXPECT_GE(fair.victim_handled, fair.victim_offered * 9 / 10)
      << "victims offered " << fair.victim_offered;
  // Service is even across the victim ports (within 25% of each other).
  EXPECT_LE(fair.victim_max - fair.victim_min, fair.victim_max / 4);
  // Every handled victim upcall became an install (distinct connections).
  EXPECT_EQ(fair.victim_installs, fair.victim_handled);
  // The storm port still gets the leftover budget — bounded, not banned.
  EXPECT_GT(fair.storm_handled, 0u);
}

TEST(UpcallFairnessTest, FifoAblationStarvesVictimPorts) {
  const FairnessOutcome fair = run_port_storm(/*fair=*/true);
  const FairnessOutcome fifo = run_port_storm(/*fair=*/false);
  // The historical single FIFO serves ports in proportion to arrivals, so
  // the flood crowds the victims out of most of their service.
  EXPECT_LT(fifo.victim_handled, fifo.victim_offered / 2);
  EXPECT_GT(fair.victim_handled, 2 * fifo.victim_handled);
}

// --- Multi-worker datapath fault surface -----------------------------------

TEST(ShardedFaultTest, InstallAndUpcallFaultsAreCountedAndRecoverable) {
  FaultInjector fault(0x31);
  ShardedDatapathConfig cfg;
  cfg.n_workers = 2;
  ShardedDatapath dp(cfg);
  dp.set_fault_injector(&fault);

  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8);

  // First install fails (scripted table-full); second lands.
  fault.script(FaultPoint::kInstallTableFull, {0});
  EXPECT_EQ(dp.install(m, DpActions().output(2), 0), nullptr);
  EXPECT_EQ(dp.stats().install_fails, 1u);
  MtMegaflow* e = dp.install(m, DpActions().output(2), 0);
  ASSERT_NE(e, nullptr);

  // Misses: first upcall dropped, second delayed, third duplicated.
  fault.script(FaultPoint::kUpcallDrop, {0});
  fault.script(FaultPoint::kUpcallDelay, {0});       // 2nd miss: delay occ 0
  fault.script(FaultPoint::kUpcallDuplicate, {0});   // 3rd miss: dup occ 0
  std::vector<Packet> misses(3);
  for (int i = 0; i < 3; ++i) {
    misses[i].key.set_in_port(9);
    misses[i].key.set_eth_type(ethertype::kIpv4);
    misses[i].key.set_nw_src(Ipv4(10, 0, 0, static_cast<uint8_t>(i)));
  }
  Datapath::RxResult results[3];
  dp.process_batch(0, misses, 0, results);
  EXPECT_EQ(dp.stats().upcall_drops, 1u);
  EXPECT_EQ(dp.stats().upcalls_delayed, 1u);
  EXPECT_EQ(dp.stats().upcall_dup_enqueues, 1u);
  // Queue now holds the duplicated miss twice; the delayed one is parked.
  EXPECT_EQ(dp.upcall_queue_depth(), 2u);
  EXPECT_EQ(dp.delayed_upcall_count(), 1u);

  // Draining releases the parked upcall for the next round.
  EXPECT_EQ(dp.take_upcalls(16).size(), 2u);
  EXPECT_EQ(dp.delayed_upcall_count(), 0u);
  EXPECT_EQ(dp.take_upcalls(16).size(), 1u);

  // Conservation: every miss was delivered, parked, or dropped (the
  // duplicate adds one extra delivery).
  const auto s = dp.stats();
  EXPECT_EQ(s.misses + s.upcall_dup_enqueues,
            3u /*taken*/ + s.upcall_drops);
}

}  // namespace
}  // namespace ovs
