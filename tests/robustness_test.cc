// Robustness and failure-injection tests: churn fuzzing, storm handling,
// convergence under continuous change, parser fuzzing, and accounting
// invariants.
#include <gtest/gtest.h>

#include "packet/parser.h"
#include "sim/clock.h"
#include "test_util.h"
#include "vswitchd/switch.h"
#include "workload/table_gen.h"

namespace ovs {
namespace {

using testutil::RuleSet;
using testutil::TestRule;

// Interleaved insert/remove/lookup fuzz against the linear oracle, with
// wildcard soundness spot checks. This is the "updates happen constantly in
// large deployments" scenario of §2.
class ChurnFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnFuzzTest, OracleAgreementUnderChurn) {
  Rng rng(GetParam());
  RuleSet rs;  // all optimizations on
  std::vector<TestRule*> live;
  int prio = 1;
  for (int step = 0; step < 4000; ++step) {
    const double r = rng.uniform_double();
    if (r < 0.35 || live.empty()) {
      live.push_back(rs.add(testutil::random_match(rng), prio++, step));
    } else if (r < 0.55) {
      const size_t victim = rng.uniform(live.size());
      rs.remove(live[victim]);
      live.erase(live.begin() + static_cast<long>(victim));
    } else {
      const FlowKey pkt = testutil::random_packet(rng);
      FlowWildcards wc;
      const Rule* got = rs.classifier().lookup(pkt, &wc);
      const TestRule* want = rs.naive_lookup(pkt);
      if (want == nullptr) {
        ASSERT_EQ(got, nullptr) << "step " << step;
      } else {
        ASSERT_NE(got, nullptr) << "step " << step;
        ASSERT_EQ(static_cast<const TestRule*>(got)->priority(),
                  want->priority());
      }
      // Occasional soundness check.
      if (step % 7 == 0) {
        FlowKey mutant = pkt;
        for (size_t w = 0; w < kFlowWords; ++w)
          mutant.w[w] ^= rng.next() & ~wc.w[w];
        const TestRule* mw = rs.naive_lookup(mutant);
        if (want == nullptr)
          ASSERT_EQ(mw, nullptr) << "step " << step;
        else
          ASSERT_EQ(mw->priority(), want->priority()) << "step " << step;
      }
    }
  }
  // Drain: remove everything; classifier must end empty and consistent.
  for (TestRule* r : live) rs.remove(r);
  EXPECT_EQ(rs.classifier().rule_count(), 0u);
  EXPECT_EQ(rs.classifier().tuple_count(), 0u);
  EXPECT_EQ(rs.classifier().lookup(testutil::random_packet(rng)), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(StormTest, UpcallQueueOverflowRecovers) {
  // A connection storm overwhelms the bounded upcall queue; drops are
  // counted, nothing corrupts, and the system recovers once the daemon
  // catches up (§2: "port scans ... must be supported gracefully").
  SwitchConfig cfg;
  cfg.upcall_queue.per_port_quota = 128;
  cfg.upcall_queue.global_cap = 128;
  cfg.megaflows_enabled = false;  // every connection is a miss
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(2));

  // Burst 10k distinct connections with no upcall processing.
  for (uint32_t i = 0; i < 10000; ++i) {
    Packet p;
    p.key.set_in_port(1);
    p.key.set_eth_type(ethertype::kIpv4);
    p.key.set_nw_proto(ipproto::kTcp);
    p.key.set_nw_src(Ipv4(10, 0, static_cast<uint8_t>(i >> 8),
                          static_cast<uint8_t>(i)));
    p.key.set_nw_dst(Ipv4(9, 1, 1, 2));
    p.key.set_tp_src(static_cast<uint16_t>(1024 + (i % 60000)));
    p.key.set_tp_dst(80);
    sw.inject(p, 0);
  }
  EXPECT_EQ(sw.upcall_queue_depth(), 128u);
  EXPECT_EQ(sw.counters().upcalls_dropped, 10000u - 128u);
  // The datapath records the sink refusals as its own upcall drops.
  EXPECT_EQ(sw.datapath().stats().upcall_drops, 10000u - 128u);

  // Daemon catches up; the queued 128 become flows.
  EXPECT_EQ(sw.handle_upcalls(0), 128u);
  EXPECT_EQ(sw.datapath().flow_count(), 128u);
  EXPECT_EQ(sw.counters().upcalls_handled, 128u);

  // Normal service resumes.
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(10, 0, 0, 0));
  p.key.set_nw_dst(Ipv4(9, 1, 1, 2));
  p.key.set_tp_src(1024);
  p.key.set_tp_dst(80);
  EXPECT_NE(sw.inject(p, 1), Datapath::Path::kMiss);
}

TEST(ConvergenceTest, CacheConvergesAfterContinuousTableChurn) {
  // While the controller rewrites the table every "second", cached flows
  // may lag; once churn stops, a single maintenance round must converge
  // every cached flow to the pipeline's current answer.
  Switch sw;
  sw.add_port(1);
  for (uint32_t p = 2; p <= 9; ++p) sw.add_port(p);
  VirtualClock clock;
  Rng rng(88);

  std::vector<Packet> probes;
  for (uint8_t i = 0; i < 16; ++i) {
    Packet p;
    p.key.set_in_port(1);
    p.key.set_eth_type(ethertype::kIpv4);
    p.key.set_nw_proto(ipproto::kUdp);
    p.key.set_nw_dst(Ipv4(10, 0, 0, i));
    p.key.set_tp_dst(5000);
    probes.push_back(p);
  }

  for (int round = 0; round < 20; ++round) {
    // Controller rewrites the routing policy.
    for (uint8_t i = 0; i < 16; ++i) {
      sw.table(0).add_flow(
          MatchBuilder().ip().nw_dst(Ipv4(10, 0, 0, i)), 10,
          OfActions().output(2 + static_cast<uint32_t>(rng.uniform(8))));
    }
    // Traffic trickles during the churn.
    for (const Packet& p : probes) {
      sw.inject(p, clock.now());
      sw.handle_upcalls(clock.now());
    }
    clock.advance(kSecond);
    sw.run_maintenance(clock.now());
  }

  // Churn stopped. Every cached answer must equal a fresh translation.
  for (const Packet& p : probes) {
    auto want =
        sw.pipeline().translate(p.key, clock.now(), /*side_effects=*/false);
    auto rx = sw.datapath().receive(p, clock.now());
    ASSERT_NE(rx.actions, nullptr) << p.key.to_string();
    EXPECT_EQ(*rx.actions, want.actions) << p.key.to_string();
  }
}

TEST(FlowLimitTest, StormBoundedByDynamicLimit) {
  SwitchConfig cfg;
  cfg.flow_limit = 256;
  cfg.dynamic_flow_limit = false;
  Switch sw(cfg);
  sw.add_port(1);
  sw.add_port(2);
  // ct gives per-connection megaflows: the worst case for the flow table.
  sw.table(0).add_flow(MatchBuilder().ip(), 10, OfActions().ct(1, true));
  sw.table(1).add_flow(Match{}, 0, OfActions().output(2));
  VirtualClock clock;
  for (int second = 0; second < 5; ++second) {
    for (uint32_t i = 0; i < 2000; ++i) {
      Packet p;
      p.key.set_in_port(1);
      p.key.set_eth_type(ethertype::kIpv4);
      p.key.set_nw_proto(ipproto::kTcp);
      p.key.set_nw_src(Ipv4(10, 0, 0, 1));
      p.key.set_nw_dst(Ipv4(9, 1, 1, 2));
      p.key.set_tp_src(static_cast<uint16_t>(1024 + i + second * 2000));
      p.key.set_tp_dst(80);
      sw.inject(p, clock.now());
      if ((i & 63) == 0) sw.handle_upcalls(clock.now());
    }
    sw.handle_upcalls(clock.now());
    clock.advance(kSecond);
    sw.run_maintenance(clock.now());
    EXPECT_LE(sw.datapath().flow_count(), 256u) << "second " << second;
  }
  // Either path may have bounded the table: the shortened overflow idle
  // timeout ("Above the maximum size, OVS drops this idle time to force
  // the table to shrink", §6) or hard LRU eviction.
  EXPECT_GT(sw.counters().reval_deleted_idle +
                sw.counters().evicted_flow_limit,
            0u);
}

TEST(ParserFuzzTest, RandomBytesNeverMisbehave) {
  Rng rng(4096);
  for (int i = 0; i < 20000; ++i) {
    RawFrame frame(rng.uniform(80));
    for (auto& b : frame) b = static_cast<uint8_t>(rng.next());
    auto key = parse_frame(frame, 1);  // must not crash or over-read
    if (key) {
      // Any parsed key must be re-parseable consistently.
      auto again = parse_frame(frame, 1);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*key, *again);
    }
  }
}

TEST(ParserFuzzTest, MutatedValidFramesNeverMisbehave) {
  Rng rng(777);
  TcpParams tp;
  tp.ip_src = Ipv4(1, 2, 3, 4);
  tp.ip_dst = Ipv4(5, 6, 7, 8);
  tp.sport = 1234;
  tp.dport = 80;
  const RawFrame base = build_tcp_ipv4(tp);
  for (int i = 0; i < 20000; ++i) {
    RawFrame f = base;
    // Random byte mutations and truncation.
    for (int m = 0; m < 4; ++m)
      f[rng.uniform(f.size())] = static_cast<uint8_t>(rng.next());
    if (rng.chance(0.3)) f.resize(rng.uniform(f.size() + 1));
    (void)parse_frame(f, 1);
  }
}

TEST(AccountingTest, DatapathStatsConserve) {
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);
  install_paper_microbench_table(sw, 2);
  Rng rng(31);
  VirtualClock clock;
  for (int i = 0; i < 5000; ++i) {
    Packet p;
    p.key.set_in_port(1);
    p.key.set_eth_type(ethertype::kIpv4);
    p.key.set_nw_proto(rng.chance(0.8) ? ipproto::kTcp : ipproto::kUdp);
    p.key.set_nw_src(Ipv4(static_cast<uint32_t>(rng.next())));
    p.key.set_nw_dst(rng.chance(0.5) ? Ipv4(9, 1, 1, 2)
                                     : Ipv4(11, 1, 5, 5));
    p.key.set_tp_src(static_cast<uint16_t>(rng.range(1, 65535)));
    p.key.set_tp_dst(static_cast<uint16_t>(rng.range(1, 1024)));
    sw.inject(p, clock.now());
    if (rng.chance(0.2)) sw.handle_upcalls(clock.now());
    clock.advance(kMillisecond);
  }
  sw.handle_upcalls(clock.now());

  const auto& s = sw.datapath().stats();
  // Conservation: every packet took exactly one path.
  EXPECT_EQ(s.packets, s.microflow_hits + s.megaflow_hits + s.misses);
  // Every entry's packet count sums to at most the hits (entries can have
  // been evicted, so <=), and per-entry stats are internally consistent.
  uint64_t entry_pkts = 0;
  for (const MegaflowEntry* e : sw.datapath().dump()) {
    entry_pkts += e->packets();
    EXPECT_GE(e->bytes(), e->packets());  // >= 1 byte per packet
    EXPECT_GE(e->used_ns(), e->created_ns());
  }
  // Entries count cache hits plus the miss packets credited at setup.
  EXPECT_LE(entry_pkts, s.microflow_hits + s.megaflow_hits +
                            sw.counters().flow_setups +
                            sw.counters().setup_dups);
  // Misses either became handled upcalls, were dropped by the bounded
  // queue, or are still queued.
  EXPECT_EQ(s.misses, sw.counters().upcalls_handled + s.upcall_drops +
                          sw.upcall_queue_depth());
  // Every handled upcall installed a flow, raced a duplicate, or failed
  // (no faults here, so no failures).
  EXPECT_EQ(sw.counters().upcalls_handled,
            sw.counters().flow_setups + sw.counters().setup_dups);
  EXPECT_EQ(sw.counters().install_fails, 0u);
  // The fair queue's own ledger balances.
  EXPECT_EQ(sw.upcall_queue().total_enqueued(),
            sw.counters().upcalls_handled + sw.upcall_queue_depth());
}

TEST(Ipv6EndToEndTest, PipelineRoutesAndTracksPrefixes) {
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);
  sw.add_port(3);
  // An IPv6 routing table with different prefix lengths.
  sw.table(0).add_flow(
      MatchBuilder().eth_type_ipv6().ipv6_dst_prefix(
          Ipv6(0x2001'0db8'0000'0000ULL, 0), 32),
      10, OfActions().output(2));
  sw.table(0).add_flow(
      MatchBuilder().eth_type_ipv6().ipv6_dst(
          Ipv6(0x2001'0db8'0000'0000ULL, 0x1)),
      20, OfActions().output(3));

  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv6);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_ipv6_src(Ipv6(0x2001'0db8'1111'0000ULL, 5));
  p.key.set_ipv6_dst(Ipv6(0x2001'0db8'2222'0000ULL, 9));
  p.key.set_tp_dst(443);

  sw.inject(p, 0);
  sw.handle_upcalls(0);
  EXPECT_EQ(sw.port_stats(2).tx_packets, 1u);

  // Prefix tracking must keep the megaflow from matching the host /128:
  // the address diverges from the host route inside the third group.
  auto flows = sw.datapath().dump();
  ASSERT_EQ(flows.size(), 1u);
  const int plen = flows[0]->match().mask.prefix_len(FieldId::kIpv6Dst);
  ASSERT_GE(plen, 32);
  EXPECT_LE(plen, 68) << flows[0]->match().mask.to_string();

  // The host route still wins for its exact address.
  Packet host = p;
  host.key.set_ipv6_dst(Ipv6(0x2001'0db8'0000'0000ULL, 0x1));
  sw.inject(host, 0);
  sw.handle_upcalls(0);
  EXPECT_EQ(sw.port_stats(3).tx_packets, 1u);
}

TEST(RevalidatorTest, XlateErrorFlowsBecomeDrops) {
  // A controller mistake creates a resubmit loop; cached flows for it must
  // fail safe (drop) rather than loop or crash.
  Switch sw;
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(MatchBuilder().ip(), 10, OfActions().resubmit(0));
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_dst(Ipv4(1, 1, 1, 1));
  sw.inject(p, 0);
  sw.handle_upcalls(0);
  EXPECT_EQ(sw.counters().xlate_errors, 1u);
  EXPECT_EQ(sw.port_stats(2).tx_packets, 0u);
  // The installed flow is a drop; repeat traffic stays in the fast path.
  auto rx = sw.datapath().receive(p, 1);
  ASSERT_NE(rx.actions, nullptr);
  EXPECT_TRUE(rx.actions->drops());
}

}  // namespace
}  // namespace ovs
