// Tuple-space explosion defense tests (DESIGN.md §14): the per-tenant mask
// admission cap (exact-at-the-cap behavior, grandfathering on cap lowering,
// tenant isolation, rejection leaving no partial state), the tenant-
// partitioned classifier (winner equivalence against the linear oracle,
// wildcard soundness, shape introspection), and the mask-explosion detector
// (subtable-count and probe-EWMA triggers, hysteresis, recovery handoff).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "classifier/classifier.h"
#include "classifier/tenant_engine.h"
#include "sim/clock.h"
#include "test_util.h"
#include "util/rng.h"
#include "vswitchd/switch.h"
#include "workload/explosion.h"

namespace ovs {
namespace {

using testutil::RuleSet;
using testutil::TestRule;

// Installs the two-table tenant pipeline the attack rides: table 0 stamps
// metadata from the ingress port, table 1 holds per-tenant policy.
void add_tenant_pipeline(Switch& sw) {
  sw.add_port(1);
  sw.add_port(2);
  sw.table(0).add_flow(
      MatchBuilder().in_port(1), 10,
      OfActions().set_field(FieldId::kMetadata, 1).resubmit(1));
  sw.table(0).add_flow(
      MatchBuilder().in_port(2), 10,
      OfActions().set_field(FieldId::kMetadata, 2).resubmit(1));
}

Packet attack_base() {
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  return p;
}

// --- Admission control -----------------------------------------------------

TEST(TupleExplosionAdmission, CapAdmitsExactlyThenRejects) {
  SwitchConfig cfg;
  cfg.max_masks_per_tenant = 4;
  Switch sw(cfg);

  ExplosionConfig ec;
  ec.n_rules = 10;
  const ExplosionInstall ins = install_explosion_rules(sw, 1, ec);
  EXPECT_EQ(ins.installed, 4u);
  EXPECT_EQ(ins.rejected, 6u);
  EXPECT_EQ(sw.table(1).flow_count(), 4u);

  const Switch::Counters& c = sw.counters();
  EXPECT_EQ(c.flow_adds_attempted, 10u);
  EXPECT_EQ(c.flow_adds_admitted, 4u);
  EXPECT_EQ(c.rules_rejected_mask_cap, 6u);
  EXPECT_EQ(c.flow_adds_attempted,
            c.flow_adds_admitted + c.rules_rejected_mask_cap);
}

TEST(TupleExplosionAdmission, MaskReuseAdmittedAtTheCap) {
  SwitchConfig cfg;
  cfg.max_masks_per_tenant = 4;
  Switch sw(cfg);

  ExplosionConfig ec;
  ec.n_rules = 4;
  ASSERT_EQ(install_explosion_rules(sw, 1, ec).installed, 4u);

  // A new rule under an ALREADY-INSTALLED mask is not a new tuple: the cap
  // counts distinct masks, so reuse must be admitted even at the cap.
  Match reuse = make_explosion_rules(ec)[0];
  reuse.key.set(FieldId::kNwDst,
                reuse.key.get(FieldId::kNwDst) ^ 0xffff0000u);
  reuse.normalize();
  EXPECT_EQ(sw.add_flow(1, reuse, 20, OfActions::drop()), "");
  EXPECT_EQ(sw.table(1).flow_count(), 5u);

  // A fifth distinct mask is rejected.
  ExplosionConfig ec5 = ec;
  ec5.n_rules = 5;
  const Match fresh = make_explosion_rules(ec5)[4];
  EXPECT_NE(sw.add_flow(1, fresh, 20, OfActions::drop()), "");
  EXPECT_EQ(sw.table(1).flow_count(), 5u);
}

TEST(TupleExplosionAdmission, CapLoweringGrandfathersInstalledMasks) {
  SwitchConfig cfg;
  cfg.max_masks_per_tenant = 8;
  Switch sw(cfg);

  ExplosionConfig ec;
  ec.n_rules = 8;
  ASSERT_EQ(install_explosion_rules(sw, 1, ec).installed, 8u);

  // Lowering the cap below the installed mask count must not evict: the 8
  // rules stay, and rules reusing a grandfathered mask are still admitted.
  sw.set_max_masks_per_tenant(2);
  EXPECT_EQ(sw.table(1).flow_count(), 8u);

  Match reuse = make_explosion_rules(ec)[3];
  reuse.key.set(FieldId::kNwDst,
                reuse.key.get(FieldId::kNwDst) ^ 0x00ff0000u);
  reuse.normalize();
  EXPECT_EQ(sw.add_flow(1, reuse, 20, OfActions::drop()), "");
  EXPECT_EQ(sw.table(1).flow_count(), 9u);

  // Only genuinely NEW masks are held to the lowered cap.
  ExplosionConfig ec9 = ec;
  ec9.n_rules = 9;
  const Match fresh = make_explosion_rules(ec9)[8];
  EXPECT_NE(sw.add_flow(1, fresh, 20, OfActions::drop()), "");
  EXPECT_EQ(sw.table(1).flow_count(), 9u);
}

TEST(TupleExplosionAdmission, TenantAtCapDoesNotBlockOtherTenants) {
  SwitchConfig cfg;
  cfg.max_masks_per_tenant = 4;
  Switch sw(cfg);

  ExplosionConfig attacker;
  attacker.tenant = 1;
  attacker.n_rules = 8;
  const ExplosionInstall a = install_explosion_rules(sw, 1, attacker);
  EXPECT_EQ(a.installed, 4u);
  EXPECT_EQ(a.rejected, 4u);

  // The victim tenant's budget is its own.
  ExplosionConfig victim;
  victim.tenant = 2;
  victim.n_rules = 4;
  const ExplosionInstall v = install_explosion_rules(sw, 1, victim);
  EXPECT_EQ(v.installed, 4u);
  EXPECT_EQ(v.rejected, 0u);

  // Rules with no exact metadata match are shared infrastructure, outside
  // every tenant budget.
  EXPECT_EQ(sw.add_flow(1, MatchBuilder().tcp().tp_dst(80), 5,
                        OfActions().output(2)),
            "");
}

TEST(TupleExplosionAdmission, RejectionLeavesNoPartialState) {
  SwitchConfig cfg;
  cfg.max_masks_per_tenant = 2;
  Switch sw(cfg);

  ExplosionConfig ec;
  ec.n_rules = 2;
  ASSERT_EQ(install_explosion_rules(sw, 1, ec).installed, 2u);

  const size_t flows0 = sw.table(1).flow_count();
  const size_t subtables0 = sw.cls_subtables();
  const size_t dump0 = sw.dump_flows().size();

  ExplosionConfig ec5 = ec;
  ec5.n_rules = 5;
  const std::vector<Match> rules = make_explosion_rules(ec5);
  for (size_t i = 2; i < rules.size(); ++i)
    EXPECT_NE(sw.add_flow(1, rules[i], 10, OfActions::drop()), "");

  // A rejected add must not leak a partially-constructed rule into any
  // table, subtable, or dump.
  EXPECT_EQ(sw.table(1).flow_count(), flows0);
  EXPECT_EQ(sw.cls_subtables(), subtables0);
  EXPECT_EQ(sw.dump_flows().size(), dump0);
  const Switch::Counters& c = sw.counters();
  EXPECT_EQ(c.rules_rejected_mask_cap, 3u);
  EXPECT_EQ(c.flow_adds_attempted,
            c.flow_adds_admitted + c.rules_rejected_mask_cap);
}

// --- Tenant-partitioned classifier -----------------------------------------

TEST(TupleExplosionPartition, WinnersMatchLinearOracle) {
  ClassifierConfig cfg;
  cfg.tenant_partition = true;
  RuleSet rs(cfg);

  // Shared (no exact metadata) rules, plus explosion rules in two tenants.
  // Unique priorities make the oracle's answer unambiguous.
  int32_t prio = 1;
  rs.add(MatchBuilder().tcp(), prio++, 1000);
  rs.add(MatchBuilder().tcp().tp_dst(80), prio++, 1001);
  ExplosionConfig t1;
  t1.tenant = 1;
  t1.n_rules = 16;
  ExplosionConfig t2;
  t2.tenant = 2;
  t2.n_rules = 16;
  t2.seed = 43;
  std::vector<Match> rules = make_explosion_rules(t1);
  const std::vector<Match> r2 = make_explosion_rules(t2);
  rules.insert(rules.end(), r2.begin(), r2.end());
  for (size_t i = 0; i < rules.size(); ++i)
    rs.add(rules[i], prio++, static_cast<int>(i));

  Rng rng(7);
  size_t hits = 0;
  for (size_t i = 0; i < 512; ++i) {
    // Aim at a random rule, then sometimes flip the tenant so the packet
    // must fall through to shared rules only.
    const Match& target = rules[rng.uniform(rules.size())];
    Packet p = explosion_stamp(target, attack_base(), rng);
    p.key.set_metadata(rng.chance(0.25) ? 3 : target.key.get(FieldId::kMetadata));

    FlowWildcards wc;
    const Rule* got = rs.classifier().lookup(p.key, &wc);
    const TestRule* want = rs.naive_lookup(p.key);
    ASSERT_EQ(got, want) << "packet " << i;
    if (got != nullptr) ++hits;
    // §5.5 soundness: the partitioned lookup routed on the packet's
    // metadata, so the produced wildcards must pin it exactly.
    EXPECT_TRUE(wc.is_exact(FieldId::kMetadata));
  }
  // The stream must actually exercise tenant rules, not just shared ones.
  EXPECT_GT(hits, 256u);
}

TEST(TupleExplosionPartition, IntrospectionReportsPerTenantShape) {
  ClassifierConfig cfg;
  TenantPartitionEngine eng(cfg);

  std::vector<std::unique_ptr<TestRule>> owned;
  auto add = [&](const Match& m, int32_t prio) {
    owned.push_back(std::make_unique<TestRule>(m, prio));
    eng.insert(owned.back().get());
  };

  add(MatchBuilder().tcp(), 1);  // shared: one subtable
  ExplosionConfig t1;
  t1.tenant = 1;
  t1.n_rules = 3;
  for (const Match& m : make_explosion_rules(t1)) add(m, 10);
  ExplosionConfig t2;
  t2.tenant = 2;
  t2.n_rules = 2;
  for (const Match& m : make_explosion_rules(t2)) add(m, 10);

  EXPECT_EQ(eng.rule_count(), 6u);
  EXPECT_EQ(eng.tenant_count(), 2u);
  EXPECT_EQ(eng.shared_subtables(), 1u);
  EXPECT_EQ(eng.tenant_subtables(1), 3u);
  EXPECT_EQ(eng.tenant_subtables(2), 2u);
  // Maintained subtables sum across partitions; a single lookup only ever
  // probes shared + one tenant, so the probe bound is shared + worst.
  EXPECT_EQ(eng.n_subtables(), 6u);
  EXPECT_EQ(eng.max_probe_depth(), 4u);

  // Removing a tenant's last rule retires its partition entirely.
  for (auto& r : owned)
    if (r->match().mask.is_exact(FieldId::kMetadata) &&
        r->match().key.get(FieldId::kMetadata) == 2)
      eng.remove(r.get());
  EXPECT_EQ(eng.tenant_count(), 1u);
  EXPECT_EQ(eng.tenant_subtables(2), 0u);
  EXPECT_EQ(eng.n_subtables(), 4u);
}

TEST(TupleExplosionPartition, ExplosionMasksArePairwiseIncomparable) {
  const std::vector<FlowMask> masks = make_explosion_masks(64);
  ASSERT_EQ(masks.size(), 64u);
  for (size_t i = 0; i < masks.size(); ++i) {
    for (size_t j = i + 1; j < masks.size(); ++j) {
      bool i_extra = false, j_extra = false;
      for (size_t w = 0; w < kFlowWords; ++w) {
        if (masks[i].w[w] & ~masks[j].w[w]) i_extra = true;
        if (masks[j].w[w] & ~masks[i].w[w]) j_extra = true;
      }
      // Neither subsumes the other, so no TSS engine can share a subtable
      // or chain them: n subtables for n rules, the attack's whole point.
      EXPECT_TRUE(i_extra && j_extra) << i << " vs " << j;
    }
  }

  RuleSet flat;
  std::vector<Match> rules = make_explosion_rules({.n_rules = 64});
  for (size_t i = 0; i < rules.size(); ++i)
    flat.add(rules[i], 10, static_cast<int>(i));
  EXPECT_EQ(flat.classifier().n_subtables(), 64u);
}

// --- Mask-explosion detector -----------------------------------------------

TEST(TupleExplosionDetector, SubtableTriggerEngagesWithHysteresis) {
  SwitchConfig cfg;
  cfg.flow_limit = 256;
  cfg.degradation.enabled = true;
  cfg.degradation.mask_explosion_subtables = 16;
  Switch sw(cfg);
  add_tenant_pipeline(sw);

  ExplosionConfig ec;
  ec.n_rules = 24;
  install_explosion_rules(sw, 1, ec);

  // One targeted packet per rule: each megaflow inherits that rule's mask,
  // so the kernel tuple space fans out to ~n_rules masks.
  VirtualClock clock;
  Rng rng(99);
  for (const Match& r : make_explosion_rules(ec))
    sw.inject(explosion_stamp(r, attack_base(), rng), clock.now());
  sw.handle_upcalls(clock.now());
  ASSERT_GE(sw.backend().mask_count(), 16u);

  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_TRUE(sw.mask_explosion_active());
  EXPECT_EQ(sw.counters().mask_explosion_engaged, 1u);
  const uint64_t backoffs1 = sw.counters().flow_limit_backoffs;
  EXPECT_GE(backoffs1, 1u);

  // Signal persisting at engage level: the limit keeps ratcheting down but
  // the engagement is counted once.
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_TRUE(sw.mask_explosion_active());
  EXPECT_EQ(sw.counters().mask_explosion_engaged, 1u);
  EXPECT_GT(sw.counters().flow_limit_backoffs, backoffs1);

  // Attack stops; idle expiry sheds the attacker megaflows (and with them
  // the masks), and the detector must disengage once the count falls below
  // HALF the engage threshold — then additive recovery resumes.
  clock.advance(cfg.idle_timeout_ns + kSecond);
  sw.run_maintenance(clock.now());  // expires the idle flows
  ASSERT_LT(sw.backend().mask_count(), 8u);
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // policy pass sees the cooled table
  EXPECT_FALSE(sw.mask_explosion_active());
  EXPECT_EQ(sw.counters().mask_explosion_engaged, 1u);

  const double scale0 = sw.flow_limit_scale();
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_GT(sw.flow_limit_scale(), scale0);
}

TEST(TupleExplosionDetector, ProbeEwmaTriggerEngages) {
  SwitchConfig cfg;
  cfg.degradation.enabled = true;
  cfg.degradation.mask_probe_ewma_threshold = 3.0;
  cfg.datapath.microflow_enabled = false;  // every packet prices the TSS walk
  Switch sw(cfg);
  add_tenant_pipeline(sw);

  ExplosionConfig ec;
  ec.n_rules = 24;
  install_explosion_rules(sw, 1, ec);
  const std::vector<Match> rules = make_explosion_rules(ec);

  VirtualClock clock;
  Rng rng(5);
  for (int round = 0; round < 3 && !sw.mask_explosion_active(); ++round) {
    for (int sweep = 0; sweep < 3; ++sweep)
      for (const Match& r : rules)
        sw.inject(explosion_stamp(r, attack_base(), rng), clock.now());
    sw.handle_upcalls(clock.now());
    clock.advance(kSecond);
    sw.run_maintenance(clock.now());
  }
  EXPECT_TRUE(sw.mask_explosion_active());
  EXPECT_EQ(sw.counters().mask_explosion_engaged, 1u);
}

TEST(TupleExplosionDetector, DisabledKnobsChangeNothing) {
  // Default-off configuration: no cap, no partition, zero thresholds. The
  // attack installs and floods unimpeded — the pre-defense behavior.
  Switch sw;
  add_tenant_pipeline(sw);

  ExplosionConfig ec;
  ec.n_rules = 32;
  const ExplosionInstall ins = install_explosion_rules(sw, 1, ec);
  EXPECT_EQ(ins.installed, 32u);
  EXPECT_EQ(ins.rejected, 0u);

  VirtualClock clock;
  Rng rng(3);
  for (const Match& r : make_explosion_rules(ec))
    sw.inject(explosion_stamp(r, attack_base(), rng), clock.now());
  sw.handle_upcalls(clock.now());
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  EXPECT_FALSE(sw.mask_explosion_active());
  EXPECT_EQ(sw.counters().mask_explosion_engaged, 0u);
  EXPECT_EQ(sw.counters().rules_rejected_mask_cap, 0u);
}

}  // namespace
}  // namespace ovs
