// Tests for pipeline translation — the megaflow generator (§3.3, §4.2).
#include "ofproto/pipeline.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ovs {
namespace {

FlowKey tcp_key(uint32_t in_port, Ipv4 src, Ipv4 dst, uint16_t sport,
                uint16_t dport) {
  FlowKey k;
  k.set_in_port(in_port);
  k.set_eth_src(EthAddr(0, 0, 0, 0, 0, 1));
  k.set_eth_dst(EthAddr(0, 0, 0, 0, 0, 2));
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  k.set_nw_src(src);
  k.set_nw_dst(dst);
  k.set_tp_src(sport);
  k.set_tp_dst(dport);
  return k;
}

TEST(PipelineTest, SingleTableOutput) {
  Pipeline p(1);
  p.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(7));
  auto xr = p.translate(tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4),
                        0);
  EXPECT_FALSE(xr.error);
  EXPECT_EQ(xr.actions.to_string(), "output:7");
  EXPECT_EQ(xr.table_lookups, 1u);
  // Megaflow matches eth_type (consulted) and in_port (always).
  EXPECT_TRUE(xr.megaflow.mask.is_exact(FieldId::kEthType));
  EXPECT_TRUE(xr.megaflow.mask.is_exact(FieldId::kInPort));
  EXPECT_FALSE(xr.megaflow.mask.has_field(FieldId::kTpDst));
}

TEST(PipelineTest, TableMissDrops) {
  Pipeline p(1);
  auto xr = p.translate(tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4),
                        0);
  EXPECT_TRUE(xr.actions.drops());
  EXPECT_FALSE(xr.to_controller);
}

TEST(PipelineTest, TableMissToController) {
  Pipeline p(1);
  p.table(0).set_miss_behavior(FlowTable::MissBehavior::kController);
  auto xr = p.translate(tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4),
                        0);
  EXPECT_TRUE(xr.to_controller);
  EXPECT_EQ(xr.actions.list.size(), 1u);
}

TEST(PipelineTest, ResubmitSolvesCrossProduct) {
  // §3.3: one table matching field A and another matching field B instead
  // of |A| x |B| flows. Table 0 classifies by nw_src into reg0, resubmits
  // to table 1 which forwards by nw_dst.
  Pipeline p(2);
  p.table(0).add_flow(MatchBuilder().ip().nw_src(Ipv4(10, 0, 0, 1)), 5,
                      OfActions().set_reg(0, 100).resubmit(1));
  p.table(0).add_flow(MatchBuilder().ip().nw_src(Ipv4(10, 0, 0, 2)), 5,
                      OfActions().set_reg(0, 200).resubmit(1));
  p.table(1).add_flow(MatchBuilder().ip().nw_dst(Ipv4(20, 0, 0, 1)), 5,
                      OfActions().output(1));
  p.table(1).add_flow(MatchBuilder().ip().nw_dst(Ipv4(20, 0, 0, 2)), 5,
                      OfActions().output(2));

  auto xr = p.translate(
      tcp_key(9, Ipv4(10, 0, 0, 2), Ipv4(20, 0, 0, 1), 1, 2), 0);
  EXPECT_EQ(xr.actions.to_string(), "set(reg0=200),output:1");
  EXPECT_EQ(xr.table_lookups, 2u);
  // Both consulted fields end up in the megaflow.
  EXPECT_TRUE(xr.megaflow.mask.is_exact(FieldId::kNwSrc));
  EXPECT_TRUE(xr.megaflow.mask.is_exact(FieldId::kNwDst));
}

TEST(PipelineTest, RegisterMatchAfterSetDoesNotUnwildcardPacketBits) {
  // Registers (§3.3): table 1 matches reg0, which table 0 wrote. The reg0
  // match must NOT appear in the megaflow — the packet's own reg0 is zero
  // and was never consulted.
  Pipeline p(2);
  p.table(0).add_flow(MatchBuilder().ip(), 5,
                      OfActions().set_reg(0, 42).resubmit(1));
  p.table(1).add_flow(MatchBuilder().reg(0, 42), 5, OfActions().output(3));
  auto xr = p.translate(
      tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4), 0);
  EXPECT_EQ(xr.actions.to_string(), "set(reg0=42),output:3");
  EXPECT_FALSE(xr.megaflow.mask.has_field(FieldId::kReg0))
      << "rewritten register must not be unwildcarded";
}

TEST(PipelineTest, RewrittenHeaderFieldSuppressed) {
  // Table 0 rewrites the destination IP and resubmits; table 1 matches the
  // *new* destination. The megaflow must not match the packet's original
  // nw_dst bits beyond what table 0 consulted.
  Pipeline p(2);
  p.table(0).add_flow(
      MatchBuilder().ip(), 5,
      OfActions()
          .set_field(FieldId::kNwDst, Ipv4(99, 0, 0, 1).value())
          .resubmit(1));
  p.table(1).add_flow(MatchBuilder().ip().nw_dst(Ipv4(99, 0, 0, 1)), 5,
                      OfActions().output(8));
  auto xr = p.translate(
      tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4), 0);
  EXPECT_EQ(xr.actions.to_string(), "set(nw_dst=1660944385),output:8");
  EXPECT_FALSE(xr.megaflow.mask.has_field(FieldId::kNwDst));
}

TEST(PipelineTest, ResubmitDepthLimit) {
  Pipeline p(1);
  // Table 0 resubmits to itself forever.
  p.table(0).add_flow(Match{}, 1, OfActions().resubmit(0));
  auto xr = p.translate(
      tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4), 0);
  EXPECT_TRUE(xr.error);
  EXPECT_TRUE(xr.actions.drops());  // fail safe
}

TEST(PipelineTest, DropTerminatesActionList) {
  Pipeline p(1);
  OfActions acts;
  acts.list.push_back(OfDrop{});
  acts.output(5);  // unreachable
  p.table(0).add_flow(MatchBuilder().ip(), 1, acts);
  auto xr = p.translate(
      tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4), 0);
  EXPECT_TRUE(xr.actions.drops());
}

TEST(PipelineTest, TunnelAction) {
  Pipeline p(1);
  p.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().tunnel(100, 777));
  auto xr = p.translate(
      tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4), 0);
  EXPECT_EQ(xr.actions.to_string(), "tunnel(port=100,tun_id=777)");
}

TEST(PipelineTest, OutputToInPortSuppressed) {
  Pipeline p(1);
  p.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(1));
  auto xr = p.translate(
      tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4), 0);
  EXPECT_TRUE(xr.actions.drops()) << "no hairpin back out of the in_port";
}

TEST(PipelineTest, NormalLearnsAndForwards) {
  Pipeline p(1);
  p.add_port(1);
  p.add_port(2);
  p.add_port(3);
  p.table(0).add_flow(Match{}, 0, OfActions().normal());

  // Unknown destination: flood to all ports but the ingress.
  FlowKey k1 = tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4);
  k1.set_eth_src(EthAddr(0, 0, 0, 0, 0, 0xaa));
  k1.set_eth_dst(EthAddr(0, 0, 0, 0, 0, 0xbb));
  auto xr1 = p.translate(k1, 0);
  EXPECT_EQ(xr1.actions.to_string(), "output:2,output:3");
  EXPECT_EQ(p.mac_learning().size(), 1u);  // learned 0xaa @ port 1

  // Traffic back toward 0xaa: unicast to port 1.
  FlowKey k2 = tcp_key(2, Ipv4(2, 2, 2, 2), Ipv4(1, 1, 1, 1), 4, 3);
  k2.set_eth_src(EthAddr(0, 0, 0, 0, 0, 0xbb));
  k2.set_eth_dst(EthAddr(0, 0, 0, 0, 0, 0xaa));
  auto xr2 = p.translate(k2, 1);
  EXPECT_EQ(xr2.actions.to_string(), "output:1");
  // NORMAL megaflows match both MACs and in_port.
  EXPECT_TRUE(xr2.megaflow.mask.is_exact(FieldId::kEthDst));
  EXPECT_TRUE(xr2.megaflow.mask.is_exact(FieldId::kEthSrc));
  EXPECT_TRUE(xr2.megaflow.mask.is_exact(FieldId::kInPort));
  // ...but not L3/L4.
  EXPECT_FALSE(xr2.megaflow.mask.has_field(FieldId::kNwDst));
  EXPECT_FALSE(xr2.megaflow.mask.has_field(FieldId::kTpDst));
  // Tags cover both MAC bindings.
  EXPECT_NE(xr2.tags, 0u);
}

TEST(PipelineTest, NormalWithoutSideEffectsDoesNotLearn) {
  Pipeline p(1);
  p.add_port(1);
  p.add_port(2);
  p.table(0).add_flow(Match{}, 0, OfActions().normal());
  FlowKey k = tcp_key(1, Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 3, 4);
  k.set_eth_src(EthAddr(0, 0, 0, 0, 0, 0xaa));
  p.translate(k, 0, /*side_effects=*/false);
  EXPECT_EQ(p.mac_learning().size(), 0u);
}

TEST(PipelineTest, ConnTrackStatefulFirewall) {
  // Table 0: send IP through ct into table 1; table 1: allow established,
  // allow new only from port 1 (and commit), drop otherwise.
  Pipeline p(2);
  p.table(0).add_flow(MatchBuilder().ip(), 10, OfActions().ct(1));
  p.table(1).add_flow(MatchBuilder().ct_state(ct_state::kNew).in_port(1), 10,
                      OfActions().ct(1, /*commit=*/true));
  // After commit+recirculation the state reads established.
  p.table(1).add_flow(
      MatchBuilder().ct_state(ct_state::kEstablished).in_port(1), 9,
      OfActions().output(2));
  p.table(1).add_flow(
      MatchBuilder().ct_state(ct_state::kEstablished | ct_state::kReply)
          .in_port(2),
      9, OfActions().output(1));

  // Outbound SYN from the trusted side: allowed and committed.
  auto xr1 = p.translate(
      tcp_key(1, Ipv4(10, 0, 0, 1), Ipv4(20, 0, 0, 1), 1234, 80), 0);
  EXPECT_EQ(xr1.actions.to_string(), "output:2");
  EXPECT_EQ(p.conntrack().size(), 1u);

  // Reply from outside: established -> allowed.
  auto xr2 = p.translate(
      tcp_key(2, Ipv4(20, 0, 0, 1), Ipv4(10, 0, 0, 1), 80, 1234), 1);
  EXPECT_EQ(xr2.actions.to_string(), "output:1");

  // Unsolicited packet from outside: new on port 2 -> drop.
  auto xr3 = p.translate(
      tcp_key(2, Ipv4(20, 0, 0, 9), Ipv4(10, 0, 0, 1), 9999, 22), 2);
  EXPECT_TRUE(xr3.actions.drops());

  // ct megaflows are per-connection: the 5-tuple must be matched.
  EXPECT_TRUE(xr1.megaflow.mask.is_exact(FieldId::kTpSrc));
  EXPECT_TRUE(xr1.megaflow.mask.is_exact(FieldId::kNwSrc));
}

TEST(PipelineTest, GenerationTracksChanges) {
  Pipeline p(2);
  const uint64_t g0 = p.generation();
  p.table(1).add_flow(MatchBuilder().ip(), 1, OfActions().output(1));
  const uint64_t g1 = p.generation();
  EXPECT_GT(g1, g0);
  p.add_port(5);
  EXPECT_GT(p.generation(), g1);
  const uint64_t g2 = p.generation();
  p.mac_learning().learn(EthAddr(1), 0, 5, 0);
  EXPECT_GT(p.generation(), g2);
}

TEST(PipelineTest, FlowCountSumsTables) {
  Pipeline p(3);
  p.table(0).add_flow(MatchBuilder().ip(), 1, OfActions().output(1));
  p.table(2).add_flow(MatchBuilder().arp(), 1, OfActions().output(1));
  EXPECT_EQ(p.flow_count(), 2u);
}

// Pipeline-level soundness: any packet matching a generated megaflow must
// translate to the same actions. This extends the classifier property test
// across resubmits, registers, rewrites, NORMAL, and ct.
TEST(PipelineTest, MegaflowSoundnessUnderRandomPipelines) {
  Rng rng(321);
  for (int round = 0; round < 12; ++round) {
    Pipeline p(4);
    p.add_port(1);
    p.add_port(2);
    p.add_port(3);
    // Random-ish NVP-style pipeline.
    p.table(0).add_flow(MatchBuilder().in_port(1), 10,
                        OfActions().set_reg(0, 1).resubmit(1));
    p.table(0).add_flow(MatchBuilder().in_port(2), 10,
                        OfActions().set_reg(0, 2).resubmit(1));
    p.table(0).add_flow(Match{}, 1, OfActions().normal());
    p.table(1).add_flow(
        MatchBuilder().reg(0, 1).tcp().tp_dst(
            static_cast<uint16_t>(rng.range(1, 3))),
        20, OfActions::drop());
    p.table(1).add_flow(MatchBuilder().reg(0, 1).ip(), 10,
                        OfActions().resubmit(2));
    p.table(1).add_flow(MatchBuilder().reg(0, 2).ip(), 10,
                        OfActions().resubmit(2));
    p.table(2).add_flow(
        MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8), 10,
        OfActions().output(3));
    p.table(2).add_flow(Match{}, 1, OfActions().normal());

    for (int q = 0; q < 60; ++q) {
      FlowKey pkt;
      pkt.set_in_port(static_cast<uint32_t>(rng.range(1, 3)));
      pkt.set_eth_src(EthAddr(rng.range(1, 4)));
      pkt.set_eth_dst(EthAddr(rng.range(1, 4)));
      pkt.set_eth_type(ethertype::kIpv4);
      pkt.set_nw_proto(rng.chance(0.5) ? ipproto::kTcp : ipproto::kUdp);
      pkt.set_nw_src(Ipv4(10, 0, 0, static_cast<uint8_t>(rng.uniform(4))));
      pkt.set_nw_dst(rng.chance(0.5)
                         ? Ipv4(10, 0, 0, static_cast<uint8_t>(rng.uniform(4)))
                         : Ipv4(20, 0, 0, 1));
      pkt.set_tp_src(static_cast<uint16_t>(rng.range(1, 4)));
      pkt.set_tp_dst(static_cast<uint16_t>(rng.range(1, 4)));

      auto xr = p.translate(pkt, 0, /*side_effects=*/false);
      for (int trial = 0; trial < 6; ++trial) {
        FlowKey mutant = pkt;
        for (size_t w = 0; w < kFlowWords; ++w)
          if (rng.chance(0.5)) mutant.w[w] ^= rng.next() & ~xr.megaflow.mask.w[w];
        auto xr2 = p.translate(mutant, 0, /*side_effects=*/false);
        ASSERT_EQ(xr2.actions, xr.actions)
            << "pkt    " << pkt.to_string() << "\nmutant "
            << mutant.to_string() << "\nmask   "
            << xr.megaflow.mask.to_string() << "\nacts   "
            << xr.actions.to_string() << " vs " << xr2.actions.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace ovs
