// Tests for the simulation substrate: virtual clock, cost model, RNG and
// distribution helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/clock.h"
#include "sim/cost_model.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ovs {
namespace {

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0u);
  c.advance(5);
  EXPECT_EQ(c.now(), 5u);
  c.advance_to(100);
  EXPECT_EQ(c.now(), 100u);
  c.advance_to(50);  // never backwards
  EXPECT_EQ(c.now(), 100u);
  EXPECT_EQ(kSecond, 1000u * kMillisecond);
  EXPECT_EQ(kMillisecond, 1000u * kMicrosecond);
}

TEST(CostModelTest, SecondsAndPercentages) {
  CostModel m;
  m.ghz = 2.0;
  EXPECT_DOUBLE_EQ(m.seconds(2e9), 1.0);
  m.n_cores = 16;
  EXPECT_DOUBLE_EQ(m.cycles_per_second_total(), 32e9);

  CpuAccounting cpu;
  cpu.user_cycles = 1e9;    // half a core-second at 2 GHz
  cpu.kernel_cycles = 4e9;  // two core-seconds
  EXPECT_DOUBLE_EQ(cpu.user_pct(1.0, m), 50.0);
  EXPECT_DOUBLE_EQ(cpu.kernel_pct(1.0, m), 200.0);  // >100% = multithreaded
  EXPECT_DOUBLE_EQ(cpu.user_pct(2.0, m), 25.0);
  cpu.reset();
  EXPECT_DOUBLE_EQ(cpu.user_pct(1.0, m), 0.0);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const uint64_t r = rng.range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(RngTest, LognormalRoughMoments) {
  Rng rng(11);
  double sum_log = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum_log += std::log(rng.lognormal(3.0, 0.8));
  EXPECT_NEAR(sum_log / n, 3.0, 0.05);
}

TEST(ZipfTest, HeadIsHot) {
  Rng rng(5);
  ZipfSampler z(1000, 1.1);
  size_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (z.sample(rng) < 10) ++head;
  // With s=1.1 the top-1% of ranks draws a large share.
  EXPECT_GT(static_cast<double>(head) / n, 0.3);
}

TEST(DistributionTest, PercentilesAndCdf) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
  EXPECT_NEAR(d.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(d.mean(), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(d.cdf(100), 1.0);
  EXPECT_NEAR(d.cdf(50), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(d.cdf(0), 0.0);
  auto pts = d.cdf_points(5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  EXPECT_LE(pts.front().first, pts.back().first);
}

TEST(DistributionTest, InterleavedAddAndQuery) {
  Distribution d;
  d.add(10);
  EXPECT_DOUBLE_EQ(d.percentile(50), 10.0);
  d.add(20);  // must re-sort transparently
  EXPECT_DOUBLE_EQ(d.max(), 20.0);
  EXPECT_EQ(d.count(), 2u);
}

}  // namespace
}  // namespace ovs
