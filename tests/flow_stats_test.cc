// Tests for OpenFlow per-flow statistics and flow timeouts (§6): stats are
// pushed from datapath flow counters during the periodic poll, so they lag
// by up to a poll period but converge exactly.
#include <gtest/gtest.h>

#include "sim/clock.h"
#include "vswitchd/switch.h"

namespace ovs {
namespace {

Packet pkt_to(Ipv4 dst, uint16_t dport, uint32_t size = 100) {
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(1, 1, 1, 1));
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(40000);
  p.key.set_tp_dst(dport);
  p.size_bytes = size;
  return p;
}

class FlowStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sw_.add_port(1);
    sw_.add_port(2);
  }
  const OfRule* find_rule(size_t table, const Match& m, int prio) {
    return static_cast<const OfRule*>(
        sw_.table(table).classifier().find_exact(m, prio));
  }
  Switch sw_;
  VirtualClock clock_;
};

TEST_F(FlowStatsTest, StatsAttributedAfterPoll) {
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8);
  sw_.table(0).add_flow(m, 10, OfActions().output(2));
  const OfRule* rule = find_rule(0, m, 10);
  ASSERT_NE(rule, nullptr);

  for (int i = 0; i < 5; ++i) {
    sw_.inject(pkt_to(Ipv4(10, 0, 0, 1), 80, 150), clock_.now());
    sw_.handle_upcalls(clock_.now());
  }
  // Stats lag until the poll (§6: "OpenFlow statistics are themselves only
  // periodically updated").
  EXPECT_EQ(rule->packets(), 0u);
  clock_.advance(kSecond);
  sw_.run_maintenance(clock_.now());
  EXPECT_EQ(rule->packets(), 5u);
  EXPECT_EQ(rule->bytes(), 5u * 150);
}

TEST_F(FlowStatsTest, StatsAccumulateAcrossPolls) {
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8);
  sw_.table(0).add_flow(m, 10, OfActions().output(2));
  const OfRule* rule = find_rule(0, m, 10);
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      sw_.inject(pkt_to(Ipv4(10, 0, 0, 2), 80), clock_.now());
      sw_.handle_upcalls(clock_.now());
    }
    clock_.advance(kSecond);
    sw_.run_maintenance(clock_.now());
    EXPECT_EQ(rule->packets(), static_cast<uint64_t>(4 * round));
  }
}

TEST_F(FlowStatsTest, MultiTableAttribution) {
  // A packet matching rules in two tables counts against both (OpenFlow
  // semantics: each traversed flow's counters tick).
  Match m0 = MatchBuilder().ip();
  Match m1 = MatchBuilder().reg(0, 7);
  sw_.table(0).add_flow(m0, 10, OfActions().set_reg(0, 7).resubmit(1));
  sw_.table(1).add_flow(m1, 10, OfActions().output(2));
  const OfRule* r0 = find_rule(0, m0, 10);
  const OfRule* r1 = find_rule(1, m1, 10);

  for (int i = 0; i < 3; ++i) {
    sw_.inject(pkt_to(Ipv4(5, 5, 5, 5), 80), clock_.now());
    sw_.handle_upcalls(clock_.now());
  }
  clock_.advance(kSecond);
  sw_.run_maintenance(clock_.now());
  EXPECT_EQ(r0->packets(), 3u);
  EXPECT_EQ(r1->packets(), 3u);
}

TEST_F(FlowStatsTest, StatsSurviveFlowEviction) {
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8);
  sw_.table(0).add_flow(m, 10, OfActions().output(2));
  const OfRule* rule = find_rule(0, m, 10);
  sw_.inject(pkt_to(Ipv4(10, 0, 0, 3), 80), clock_.now());
  sw_.handle_upcalls(clock_.now());
  // Let the megaflow idle out: its accumulated stats must be pushed during
  // the final poll, not lost.
  clock_.advance(11 * kSecond);
  sw_.run_maintenance(clock_.now());
  EXPECT_EQ(sw_.datapath().flow_count(), 0u);
  EXPECT_EQ(rule->packets(), 1u);
}

TEST_F(FlowStatsTest, IdleTimeoutExpiresRule) {
  ASSERT_EQ(sw_.add_flow("table=0, priority=10, ip, idle_timeout=5, "
                         "actions=output:2",
                         clock_.now()),
            "");
  ASSERT_EQ(sw_.table(0).flow_count(), 1u);

  // Traffic keeps it alive.
  for (int s = 0; s < 8; ++s) {
    sw_.inject(pkt_to(Ipv4(10, 0, 0, 4), 80), clock_.now());
    sw_.handle_upcalls(clock_.now());
    clock_.advance(kSecond);
    sw_.run_maintenance(clock_.now());
    ASSERT_EQ(sw_.table(0).flow_count(), 1u) << "second " << s;
  }
  // Silence expires it (after the last attributed use).
  for (int s = 0; s < 8 && sw_.table(0).flow_count() > 0; ++s) {
    clock_.advance(kSecond);
    sw_.run_maintenance(clock_.now());
  }
  EXPECT_EQ(sw_.table(0).flow_count(), 0u);
  // And the cache converges to the table-less behaviour: drop.
  clock_.advance(kSecond);
  sw_.run_maintenance(clock_.now());
  Packet p = pkt_to(Ipv4(10, 0, 0, 4), 80);
  sw_.inject(p, clock_.now());
  sw_.handle_upcalls(clock_.now());
  const uint64_t tx_before = sw_.port_stats(2).tx_packets;
  sw_.inject(p, clock_.now());
  EXPECT_EQ(sw_.port_stats(2).tx_packets, tx_before);
}

TEST_F(FlowStatsTest, HardTimeoutExpiresRegardlessOfTraffic) {
  ASSERT_EQ(sw_.add_flow("table=0, priority=10, ip, hard_timeout=3, "
                         "actions=output:2",
                         clock_.now()),
            "");
  for (int s = 0; s < 10 && sw_.table(0).flow_count() > 0; ++s) {
    sw_.inject(pkt_to(Ipv4(10, 0, 0, 5), 80), clock_.now());
    sw_.handle_upcalls(clock_.now());
    clock_.advance(kSecond);
    sw_.run_maintenance(clock_.now());
  }
  EXPECT_EQ(sw_.table(0).flow_count(), 0u);
}

TEST_F(FlowStatsTest, RuleReplacementResetsAttribution) {
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(10, 0, 0, 0), 8);
  sw_.table(0).add_flow(m, 10, OfActions().output(2));
  sw_.inject(pkt_to(Ipv4(10, 0, 0, 6), 80), clock_.now());
  sw_.handle_upcalls(clock_.now());
  clock_.advance(kSecond);
  sw_.run_maintenance(clock_.now());

  // Replace the rule (same match+priority): new rule starts at zero and
  // future traffic counts against it, not the dead pointer.
  sw_.table(0).add_flow(m, 10, OfActions().output(2));
  const OfRule* fresh = find_rule(0, m, 10);
  EXPECT_EQ(fresh->packets(), 0u);
  clock_.advance(kSecond);
  sw_.run_maintenance(clock_.now());  // re-translates, refreshes attribution
  sw_.inject(pkt_to(Ipv4(10, 0, 0, 6), 80), clock_.now());
  sw_.handle_upcalls(clock_.now());
  clock_.advance(kSecond);
  sw_.run_maintenance(clock_.now());
  EXPECT_GE(fresh->packets(), 1u);
}

}  // namespace
}  // namespace ovs
