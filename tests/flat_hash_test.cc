// Tests for the open-addressing hash containers backing the tuples.
#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/hash.h"
#include "util/rng.h"

namespace ovs {
namespace {

TEST(HashBucketsTest, InsertFindErase) {
  HashBuckets<int> hb;
  EXPECT_TRUE(hb.empty());
  hb.insert(hash_mix64(1), 100);
  hb.insert(hash_mix64(2), 200);
  EXPECT_EQ(hb.size(), 2u);

  int* v = hb.find(hash_mix64(1), [](int x) { return x == 100; });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 100);
  EXPECT_EQ(hb.find(hash_mix64(3), [](int) { return true; }), nullptr);

  EXPECT_TRUE(hb.erase(hash_mix64(1), [](int x) { return x == 100; }));
  EXPECT_FALSE(hb.erase(hash_mix64(1), [](int x) { return x == 100; }));
  EXPECT_EQ(hb.size(), 1u);
}

TEST(HashBucketsTest, DuplicateHashesCoexist) {
  HashBuckets<int> hb;
  const uint64_t h = hash_mix64(42);
  hb.insert(h, 1);
  hb.insert(h, 2);  // same hash, different value (collision or multi-entry)
  EXPECT_NE(hb.find(h, [](int x) { return x == 1; }), nullptr);
  EXPECT_NE(hb.find(h, [](int x) { return x == 2; }), nullptr);
  EXPECT_TRUE(hb.erase(h, [](int x) { return x == 1; }));
  EXPECT_NE(hb.find(h, [](int x) { return x == 2; }), nullptr);
  EXPECT_EQ(hb.find(h, [](int x) { return x == 1; }), nullptr);
}

TEST(HashBucketsTest, ValueMutationThroughFind) {
  HashBuckets<int> hb;
  hb.insert(7, 10);
  int* v = hb.find(7, [](int) { return true; });
  ASSERT_NE(v, nullptr);
  *v = 20;
  EXPECT_NE(hb.find(7, [](int x) { return x == 20; }), nullptr);
}

TEST(HashBucketsTest, GrowthPreservesEntries) {
  HashBuckets<uint64_t> hb;
  for (uint64_t i = 0; i < 10000; ++i) hb.insert(hash_mix64(i), i);
  EXPECT_EQ(hb.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i)
    ASSERT_NE(hb.find(hash_mix64(i), [&](uint64_t v) { return v == i; }),
              nullptr)
        << i;
}

TEST(HashBucketsTest, TombstoneChurnDoesNotDegradeCorrectness) {
  // Insert/erase cycles exercise tombstone reuse and rehash-in-place.
  HashBuckets<uint64_t> hb;
  Rng rng(9);
  std::set<uint64_t> model;
  for (int round = 0; round < 20000; ++round) {
    uint64_t k = rng.uniform(500);
    const uint64_t h = hash_mix64(k);
    const bool present = model.count(k) > 0;
    ASSERT_EQ(hb.find(h, [&](uint64_t v) { return v == k; }) != nullptr,
              present)
        << "round " << round;
    if (present) {
      hb.erase(h, [&](uint64_t v) { return v == k; });
      model.erase(k);
    } else {
      hb.insert(h, k);
      model.insert(k);
    }
  }
  EXPECT_EQ(hb.size(), model.size());
}

TEST(HashBucketsTest, ForEachVisitsExactlyLiveEntries) {
  HashBuckets<int> hb;
  for (int i = 0; i < 100; ++i) hb.insert(hash_mix64(i), i);
  for (int i = 0; i < 100; i += 2)
    hb.erase(hash_mix64(i), [&](int v) { return v == i; });
  std::set<int> seen;
  hb.for_each([&](int v) { seen.insert(v); });
  EXPECT_EQ(seen.size(), 50u);
  for (int v : seen) EXPECT_EQ(v % 2, 1);
}

TEST(HashCounterTest, CountsAndMembership) {
  HashCounter hc;
  EXPECT_FALSE(hc.contains(5));
  hc.add(5);
  hc.add(5);
  hc.add(6);
  EXPECT_TRUE(hc.contains(5));
  EXPECT_TRUE(hc.contains(6));
  EXPECT_EQ(hc.distinct(), 2u);
  hc.remove(5);
  EXPECT_TRUE(hc.contains(5));  // still one reference
  hc.remove(5);
  EXPECT_FALSE(hc.contains(5));
  EXPECT_EQ(hc.distinct(), 1u);
}

TEST(HashCounterTest, RandomizedAgainstModel) {
  HashCounter hc;
  std::map<uint64_t, int> model;
  Rng rng(4242);
  for (int i = 0; i < 30000; ++i) {
    uint64_t k = rng.uniform(200);
    if (model[k] > 0 && rng.chance(0.5)) {
      hc.remove(k);
      --model[k];
    } else {
      hc.add(k);
      ++model[k];
    }
    if (i % 1000 == 0) {
      for (auto& [key, cnt] : model)
        ASSERT_EQ(hc.contains(key), cnt > 0) << key;
    }
  }
}

TEST(HashMixTest, AvalancheSanity) {
  // Flipping one input bit should flip ~half the output bits on average.
  Rng rng(1);
  double total = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    uint64_t x = rng.next();
    int bit = static_cast<int>(rng.uniform(64));
    uint64_t d = hash_mix64(x) ^ hash_mix64(x ^ (uint64_t{1} << bit));
    total += __builtin_popcountll(d);
  }
  const double avg = total / n;
  EXPECT_GT(avg, 28.0);
  EXPECT_LT(avg, 36.0);
}

}  // namespace
}  // namespace ovs
