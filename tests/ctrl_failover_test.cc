// Controller-loss semantics, end to end (DESIGN.md §12): real Switches,
// agents, controllers, gossip discovery and the lossy wire.
//
// The claims under test:
//   * initial sync — a policy pushed before agents ever connected reaches
//     every switch via resync, and converged(epoch) certifies it;
//   * fail-standalone — losing the only controller never stops the
//     datapath: installed rules keep forwarding, with zero misdelivery;
//   * barrier certification — under drops and connection resets, once the
//     fleet converges every switch holds the full policy (a barrier reply
//     is never emitted for mods that were lost);
//   * failover rollback — a master dying with an un-replicated epoch gets
//     that partial epoch rolled back by the standby's resync prune, and the
//     re-issued change converges under the new master's generation;
//   * idempotent redelivery — wire duplicates and resync replays never
//     double-install a rule;
//   * stale-master fencing — a deposed master can talk but not program;
//   * determinism — the whole scenario replays bit-identically.
#include "ctrl/control_plane.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "sim/clock.h"
#include "util/fault.h"
#include "vswitchd/switch.h"

namespace ovs {
namespace {

constexpr char kBaseSpec[] =
    "table=0, priority=10, ip, nw_dst=10.0.0.0/8, actions=output:2";
const std::vector<FlowModPayload> kBasePolicy = {
    {FlowModPayload::Op::kAdd, kBaseSpec}};
// The change moves the rule to a new priority: a partial application leaves
// a leftover the rollback resync must PRUNE (same-priority replaces would
// mask the prune path).
const std::vector<FlowModPayload> kChangePolicy = {
    {FlowModPayload::Op::kDelete, "ip, nw_dst=10.0.0.0/8"},
    {FlowModPayload::Op::kAdd,
     "table=0, priority=11, ip, nw_dst=10.0.0.0/8, actions=output:3"}};

std::vector<std::unique_ptr<Switch>> make_switches(size_t k) {
  std::vector<std::unique_ptr<Switch>> out;
  for (size_t i = 0; i < k; ++i) {
    auto sw = std::make_unique<Switch>();
    sw->add_port(1);
    sw->add_port(2);
    sw->add_port(3);
    out.push_back(std::move(sw));
  }
  return out;
}

std::vector<Switch*> raw(const std::vector<std::unique_ptr<Switch>>& v) {
  std::vector<Switch*> out;
  for (const auto& s : v) out.push_back(s.get());
  return out;
}

bool has_rule(const Switch& sw, const std::string& needle) {
  for (const std::string& line : sw.dump_flows())
    if (line.find(needle) != std::string::npos) return true;
  return false;
}

// Sends a probe through the policy rule and returns the set of ports it
// came out of (empty = dropped). Two injections so the second rides the
// installed megaflow.
std::vector<uint32_t> probe_ports(Switch& sw, VirtualClock& clk) {
  std::vector<uint32_t> ports;
  sw.set_output_handler([&](uint32_t port, const Packet&) {
    ports.push_back(port);
  });
  Packet p;
  p.key.set_in_port(1);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(1, 1, 1, 1));
  p.key.set_nw_dst(Ipv4(10, 0, 0, 5));
  p.key.set_tp_src(1234);
  p.key.set_tp_dst(80);
  p.size_bytes = 100;
  sw.inject(p, clk.now());
  clk.advance(kMillisecond);
  sw.handle_upcalls(clk.now());
  sw.inject(p, clk.now());
  clk.advance(kMillisecond);
  sw.handle_upcalls(clk.now());
  sw.set_output_handler(nullptr);
  return ports;
}

TEST(CtrlFailover, InitialSyncProgramsEverySwitch) {
  auto switches = make_switches(6);
  ControlPlaneConfig cfg;
  cfg.seed = 5;
  ControlPlane cp(raw(switches), cfg);
  cp.start(0);

  const uint64_t epoch = cp.push_policy(kBasePolicy);
  ASSERT_NE(epoch, 0u);
  ASSERT_NE(cp.run_until_converged(epoch, 60 * kSecond), UINT64_MAX);

  VirtualClock clk;
  for (auto& sw : switches) {
    EXPECT_TRUE(has_rule(*sw, "nw_dst=10.0.0.0/8"));
    const auto ports = probe_ports(*sw, clk);
    ASSERT_FALSE(ports.empty());
    for (uint32_t p : ports) EXPECT_EQ(p, 2u);  // zero misdelivery
    DpCheckReport rep = sw->self_check();
    EXPECT_EQ(rep.overlap_violations, 0u);
    EXPECT_EQ(rep.duplicate_keys, 0u);
  }
  for (size_t i = 0; i < cp.n_agents(); ++i)
    EXPECT_EQ(cp.agent(i).state(), AgentState::kConnected);
}

TEST(CtrlFailover, FailStandaloneKeepsForwarding) {
  auto switches = make_switches(4);
  ControlPlaneConfig cfg;
  cfg.seed = 6;
  cfg.n_controllers = 1;  // nobody to fail over to
  ControlPlane cp(raw(switches), cfg);
  cp.start(0);
  const uint64_t epoch = cp.push_policy(kBasePolicy);
  ASSERT_NE(cp.run_until_converged(epoch, 60 * kSecond), UINT64_MAX);

  cp.kill_active();
  cp.run_until(cp.now() + 10 * kSecond);
  ASSERT_EQ(cp.active_controller(), nullptr);

  VirtualClock clk;
  for (size_t i = 0; i < cp.n_agents(); ++i) {
    EXPECT_EQ(cp.agent(i).state(), AgentState::kStandalone);
    Switch& sw = *switches[i];
    EXPECT_EQ(sw.lifecycle(), LifecycleState::kServing);
    const auto ports = probe_ports(sw, clk);
    ASSERT_FALSE(ports.empty());  // forwarding survived controller loss
    for (uint32_t p : ports) EXPECT_EQ(p, 2u);
  }
  EXPECT_GT(cp.agent_stat_totals().standalone_entries, 0u);
}

TEST(CtrlFailover, BarrierCertifiesAppliedModsUnderFaults) {
  auto switches = make_switches(4);
  FaultInjector fault(77);
  fault.set_probability(FaultPoint::kCtrlMsgDrop, 0.10);
  fault.set_probability(FaultPoint::kCtrlConnReset, 0.02);
  ControlPlaneConfig cfg;
  cfg.seed = 7;
  cfg.fault = &fault;
  ControlPlane cp(raw(switches), cfg);
  cp.start(0);

  const uint64_t epoch = cp.push_policy(kBasePolicy);
  ASSERT_NE(cp.run_until_converged(epoch, 300 * kSecond), UINT64_MAX);

  // Faults really happened...
  EXPECT_GT(cp.net().stats().dropped, 0u);
  // ...yet convergence certifies the full program on every switch: the
  // barrier semantics ("no reply for lost mods") make this implication
  // sound even with connection resets in the mix.
  for (auto& sw : switches) {
    EXPECT_TRUE(has_rule(*sw, "nw_dst=10.0.0.0/8"));
    EXPECT_EQ(sw->pipeline().table(0).flow_count(), 1u);
  }
}

TEST(CtrlFailover, FailoverRollsBackPartialEpochThenReconverges) {
  auto switches = make_switches(6);
  ControlPlaneConfig cfg;
  cfg.seed = 8;
  cfg.n_controllers = 2;
  ControlPlane cp(raw(switches), cfg);
  cp.start(0);
  const uint64_t epoch1 = cp.push_policy(kBasePolicy);
  ASSERT_NE(cp.run_until_converged(epoch1, 60 * kSecond), UINT64_MAX);
  const Controller* old_master = cp.active_controller();

  // Push a change (standbys replicated only up to epoch1), then kill the
  // master before anyone can be sure of it: the epoch dies with it.
  const uint64_t epoch2 = cp.push_policy(kChangePolicy);
  ASSERT_GT(epoch2, epoch1);
  cp.kill_active();
  cp.run_until(cp.now() + 30 * kSecond);

  // A standby took over with a higher fencing generation...
  Controller* master = cp.active_controller();
  ASSERT_NE(master, nullptr);
  ASSERT_NE(master, old_master);
  EXPECT_EQ(master->role_generation(), 2u);
  // ...and its resync rolled the partial epoch back on every switch.
  EXPECT_GE(cp.agent_stat_totals().rules_pruned, switches.size());
  for (auto& sw : switches) {
    EXPECT_TRUE(has_rule(*sw, "output:2"));
    EXPECT_FALSE(has_rule(*sw, "output:3"));
  }

  // The management layer re-issues the change through the new master.
  const uint64_t epoch2b = cp.push_policy(kChangePolicy);
  ASSERT_NE(epoch2b, 0u);
  ASSERT_NE(cp.run_until_converged(epoch2b, 60 * kSecond), UINT64_MAX);
  VirtualClock clk;
  for (auto& sw : switches) {
    EXPECT_TRUE(has_rule(*sw, "output:3"));
    EXPECT_FALSE(has_rule(*sw, "output:2"));
    EXPECT_EQ(sw->pipeline().table(0).flow_count(), 1u);
    const auto ports = probe_ports(*sw, clk);
    ASSERT_FALSE(ports.empty());
    for (uint32_t p : ports) EXPECT_EQ(p, 3u);  // new policy, 0 misdelivered
  }
  for (size_t i = 0; i < cp.n_agents(); ++i)
    EXPECT_EQ(cp.agent(i).max_seen_generation(), 2u);
}

TEST(CtrlFailover, DuplicatesAndResyncReplaysAreIdempotent) {
  auto switches = make_switches(3);
  FaultInjector fault(91);
  fault.set_probability(FaultPoint::kCtrlMsgDuplicate, 1.0);
  fault.set_probability(FaultPoint::kCtrlConnReset, 0.05);
  ControlPlaneConfig cfg;
  cfg.seed = 9;
  cfg.fault = &fault;
  ControlPlane cp(raw(switches), cfg);
  cp.start(0);

  const uint64_t epoch = cp.push_policy(kBasePolicy);
  ASSERT_NE(cp.run_until_converged(epoch, 300 * kSecond), UINT64_MAX);
  // Every wire message was duplicated and resets forced resync replays of
  // already-applied xids — still exactly one installed copy everywhere.
  for (auto& sw : switches)
    EXPECT_EQ(sw->pipeline().table(0).flow_count(), 1u);
  EXPECT_GT(cp.agent_channel_totals().dups_discarded, 0u);
}

TEST(CtrlFailover, StaleMasterCannotProgram) {
  // Manual wiring (no discovery): one switch, two controllers, the agent's
  // leader belief driven by hand so we can point it at the new master while
  // the deposed one is still talking.
  auto sw = std::make_unique<Switch>();
  sw->add_port(1);
  sw->add_port(2);
  sw->add_port(3);
  CtrlTransport net;
  ControllerConfig ca;
  ca.id = 100;
  Controller old_master(&net, ca);
  ControllerConfig cb;
  cb.id = 101;
  Controller new_master(&net, cb);
  old_master.set_fleet({1});
  new_master.set_fleet({1});
  CtrlAgentConfig ac;
  ac.id = 1;
  CtrlAgent agent(&net, sw.get(), ac);

  uint64_t now = 0;
  auto pump = [&](uint64_t until) {
    while (now < until) {
      now += 10 * kMillisecond;
      net.deliver_until(now);
      agent.tick(now);
      old_master.tick(now);
      new_master.tick(now);
    }
  };

  old_master.attach(now);
  new_master.attach(now);
  agent.attach(now);
  old_master.activate(1, now);
  agent.set_leader_hint(100);
  const uint64_t e1 = old_master.push_policy(kBasePolicy, now);
  pump(5 * kSecond);
  ASSERT_TRUE(old_master.converged(e1));
  ASSERT_EQ(agent.max_seen_generation(), 1u);

  // Takeover with a higher generation; the agent follows its belief.
  new_master.replicate_from(old_master);
  new_master.activate(5, now);
  agent.set_leader_hint(101);
  pump(now + 5 * kSecond);
  ASSERT_EQ(agent.controller(), 101u);
  ASSERT_GE(agent.max_seen_generation(), 5u);

  // The deposed master, never told, pushes a new policy. Fenced: the rule
  // never lands.
  const uint64_t stale_before = agent.stats().stale_gen_fenced;
  old_master.push_policy(
      {{FlowModPayload::Op::kAdd,
        "table=0, priority=20, tcp, tp_dst=22, actions=drop"}},
      now);
  pump(now + 5 * kSecond);
  EXPECT_GT(agent.stats().stale_gen_fenced, stale_before);
  EXPECT_FALSE(has_rule(*sw, "tp_dst=22"));
  EXPECT_EQ(sw->pipeline().table(0).flow_count(), 1u);
}

TEST(CtrlFailover, DeterministicScenarioReplay) {
  auto episode = [] {
    auto switches = make_switches(4);
    FaultInjector fault(55);
    fault.set_probability(FaultPoint::kCtrlMsgDrop, 0.05);
    ControlPlaneConfig cfg;
    cfg.seed = 10;
    cfg.n_controllers = 2;
    cfg.fault = &fault;
    ControlPlane cp(raw(switches), cfg);
    cp.start(0);
    uint64_t epoch = cp.push_policy(kBasePolicy);
    cp.run_until_converged(epoch, 120 * kSecond);
    cp.push_policy(kChangePolicy);
    cp.kill_active();
    cp.run_until(cp.now() + 20 * kSecond);
    epoch = cp.push_policy(kChangePolicy);
    cp.run_until_converged(epoch, 120 * kSecond);
    std::vector<std::string> dump;
    for (auto& sw : switches)
      for (const std::string& l : sw->dump_flows()) dump.push_back(l);
    const CtrlAgent::Stats s = cp.agent_stat_totals();
    return std::make_tuple(dump, s.flow_mods_applied, s.rules_pruned,
                           s.syncs_completed, cp.net().stats().sent,
                           cp.discovery().round());
  };
  EXPECT_EQ(episode(), episode());
}

}  // namespace
}  // namespace ovs
