// Crash/restart lifecycle tests (DESIGN.md §9): the daemon's userspace
// state dies at crash() while the datapath keeps forwarding its cache;
// restart() rebuilds the tables from the durable snapshot, reconciles the
// surviving megaflows (adopt / repair / delete), gates on the invariant
// checker, and only then re-enables installs. The outcome is deterministic
// for a fixed seed and independent of the datapath backend and the number
// of revalidator plan threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "test_util.h"
#include "util/fault.h"
#include "vswitchd/switch.h"

namespace ovs {
namespace {

using testutil::canonical_flows;

Packet prefix_pkt(uint32_t in_port, uint8_t dst_hi, uint8_t dst_lo,
                  uint16_t sport) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(1, 2, 3, 4));
  p.key.set_nw_dst(Ipv4(10, dst_hi, dst_lo, 5));
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(443);
  return p;
}

// A switch with n /24 forwarding rules; traffic over them builds one
// megaflow per (rule, in_port) pair.
void install_prefix_rules(Switch& sw, size_t n) {
  for (uint32_t p = 1; p <= 2; ++p) sw.add_port(p);
  for (uint32_t e = 100; e < 104; ++e) sw.add_port(e);
  for (size_t i = 0; i < n; ++i)
    sw.table(0).add_flow(
        MatchBuilder().tcp().nw_dst_prefix(
            Ipv4(10, static_cast<uint8_t>(i / 200),
                 static_cast<uint8_t>(i % 200), 0),
            24),
        10, OfActions().output(100 + static_cast<uint32_t>(i % 4)));
}

void warm_flows(Switch& sw, VirtualClock& clock, size_t n) {
  for (size_t i = 0; i < n; ++i)
    sw.inject(prefix_pkt(1 + static_cast<uint32_t>(i % 2),
                         static_cast<uint8_t>(i / 200),
                         static_cast<uint8_t>(i % 200),
                         static_cast<uint16_t>(2000 + i)),
              clock.now());
  sw.handle_upcalls(clock.now());
}

TEST(RestartRecoveryTest, CrashKeepsDatapathServingButRefusesUpcalls) {
  SwitchConfig cfg;
  Switch sw(cfg);
  install_prefix_rules(sw, 8);
  VirtualClock clock;
  warm_flows(sw, clock, 8);
  ASSERT_EQ(sw.backend().flow_count(), 8u);

  sw.crash();
  EXPECT_EQ(sw.lifecycle(), LifecycleState::kCrashed);
  EXPECT_EQ(sw.counters().userspace_crashes, 1u);

  // Cached flows still forward (the kernel module outlives the daemon)...
  const uint64_t tx0 = sw.counters().tx_packets;
  sw.inject(prefix_pkt(1, 0, 0, 2000), clock.now());
  EXPECT_EQ(sw.counters().tx_packets, tx0 + 1);

  // ...but a fresh connection's miss is refused, not queued.
  const uint64_t dropped0 = sw.counters().upcalls_dropped;
  sw.inject(prefix_pkt(1, 0, 199, 9999), clock.now());
  sw.handle_upcalls(clock.now());
  EXPECT_GT(sw.counters().upcalls_dropped, dropped0);
  EXPECT_EQ(sw.backend().flow_count(), 8u);
}

TEST(RestartRecoveryTest, CrashFoldsQueuedWorkIntoLossCounters) {
  FaultInjector fault(5);
  fault.set_probability(FaultPoint::kInstallTransient, 1.0);
  SwitchConfig cfg;
  cfg.fault = &fault;
  Switch sw(cfg);
  install_prefix_rules(sw, 4);
  VirtualClock clock;

  // Every install fails, so handled upcalls pile onto the retry queue;
  // two more misses sit unhandled in the upcall queue at crash time.
  warm_flows(sw, clock, 2);
  ASSERT_GT(sw.retry_queue_depth(), 0u);
  sw.inject(prefix_pkt(1, 0, 2, 7000), clock.now());
  sw.inject(prefix_pkt(1, 0, 3, 7001), clock.now());

  const Switch::Counters& c = sw.counters();
  const uint64_t pending_retries = sw.retry_queue_depth();
  const uint64_t dropped0 = c.upcalls_dropped;
  sw.crash();
  EXPECT_EQ(sw.retry_queue_depth(), 0u);
  EXPECT_EQ(c.retry_abandoned, pending_retries);
  EXPECT_EQ(c.upcalls_dropped, dropped0 + 2);
  // The ledger still balances (see fault_injection_test invariants).
  EXPECT_EQ(c.upcalls_handled + c.upcalls_retried,
            c.flow_setups + c.setup_dups + c.install_fails);
  EXPECT_EQ(c.install_fails,
            c.upcalls_retried + sw.retry_queue_depth() + c.retry_abandoned);
}

TEST(RestartRecoveryTest, RestartAdoptsRepairsAndDeletesInOnePass) {
  SwitchConfig cfg;
  cfg.idle_timeout_ns = kSecond;  // tight so the expired entry reaps fast
  Switch sw(cfg);
  install_prefix_rules(sw, 12);
  VirtualClock clock;
  warm_flows(sw, clock, 12);
  ASSERT_EQ(sw.backend().flow_count(), 12u);

  sw.crash();
  // Kernel rot during the blackout: one corrupted entry (wrong actions,
  // repairable) and one rogue overlapping flow no healthy install path
  // would produce (stale: re-translation disagrees on match shape).
  sw.backend().corrupt_entry(0);
  clock.advance(200 * kMillisecond);
  sw.backend().install(
      MatchBuilder().tcp().nw_dst_prefix(Ipv4(10, 0, 0, 0), 16),
      DpActions().output(0xDEAD), clock.now());
  // Blackout traffic keeps the survivors warm (the datapath forwards and
  // refreshes used_ns without the daemon)...
  for (size_t i = 0; i < 12; ++i)
    sw.inject(prefix_pkt(1 + static_cast<uint32_t>(i % 2),
                         static_cast<uint8_t>(i / 200),
                         static_cast<uint8_t>(i % 200),
                         static_cast<uint16_t>(2000 + i)),
              clock.now());
  // ...except one flow forced idle: reconciliation must reap, not adopt it.
  sw.backend().expire_entry(5);

  clock.advance(900 * kMillisecond);  // idle flow at 1.1s > 1s; rest 0.9s
  ASSERT_TRUE(sw.restart(clock.now()));
  EXPECT_EQ(sw.lifecycle(), LifecycleState::kServing);

  const Switch::Counters& c = sw.counters();
  EXPECT_EQ(c.flows_repaired, 1u);
  EXPECT_GE(c.reval_deleted_stale, 1u);   // the rogue
  EXPECT_GE(c.reval_deleted_idle, 1u);    // the expired entry
  EXPECT_EQ(c.flows_adopted + c.flows_repaired + c.reval_deleted_idle +
                c.reval_deleted_stale,
            13u);  // 12 survivors + 1 rogue, partitioned exactly
  EXPECT_GT(c.reconcile_blackout_cycles, 0u);

  // Every surviving flow now answers exactly like a fresh translation.
  for (DpBackend::FlowRef f : sw.backend().dump()) {
    const XlateResult want =
        sw.pipeline().translate(sw.backend().flow_match(f).key, clock.now(),
                                /*side_effects=*/false);
    EXPECT_EQ(sw.backend().flow_actions(f), want.actions);
  }
  // And installs are enabled again.
  const uint64_t setups0 = c.flow_setups;
  sw.inject(prefix_pkt(2, 0, 199, 9999), clock.now());
  sw.handle_upcalls(clock.now());
  EXPECT_EQ(c.flow_setups, setups0 + 1);
}

TEST(RestartRecoveryTest, AdoptedFlowsDoNotRecreditPreCrashTraffic) {
  SwitchConfig cfg;
  Switch sw(cfg);
  install_prefix_rules(sw, 2);
  VirtualClock clock;
  warm_flows(sw, clock, 2);
  // Pre-crash hits accumulate datapath-side stats.
  for (int i = 0; i < 20; ++i)
    sw.inject(prefix_pkt(1, 0, 0, 2000), clock.now());

  sw.crash();
  clock.advance(kSecond);
  ASSERT_TRUE(sw.restart(clock.now()));

  // The rebuilt OpenFlow rules start from zero; pushing stats must credit
  // only post-restart traffic, not the surviving flows' lifetime totals.
  for (int i = 0; i < 3; ++i)
    sw.inject(prefix_pkt(1, 0, 0, 2000), clock.now());
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  uint64_t rule_packets = 0;
  sw.table(0).for_each([&](const OfRule* r) { rule_packets += r->packets(); });
  EXPECT_LE(rule_packets, 3u + 2u /*emc-credited boundary slack*/);
}

TEST(RestartRecoveryTest, ReconcileStallPostponesServingAndIsCounted) {
  FaultInjector fault(9);
  fault.script(FaultPoint::kReconcileStall, {0});
  SwitchConfig cfg;
  cfg.fault = &fault;
  Switch sw(cfg);
  install_prefix_rules(sw, 4);
  VirtualClock clock;
  warm_flows(sw, clock, 4);

  sw.crash();
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // restart stalls: still reconciling
  EXPECT_EQ(sw.lifecycle(), LifecycleState::kReconciling);
  EXPECT_EQ(sw.counters().reconcile_stalls, 1u);
  EXPECT_EQ(sw.counters().flows_adopted, 0u);

  clock.advance(kSecond);
  sw.run_maintenance(clock.now());  // next round completes
  EXPECT_EQ(sw.lifecycle(), LifecycleState::kServing);
  EXPECT_EQ(sw.counters().flows_adopted, 4u);
}

TEST(RestartRecoveryTest, SelfCheckQuarantinesPlantedOverlap) {
  SwitchConfig cfg;
  Switch sw(cfg);
  install_prefix_rules(sw, 6);
  VirtualClock clock;
  warm_flows(sw, clock, 6);

  // A rogue overlapping megaflow with different actions appears while the
  // daemon is serving (bit-flip, hostile peer, reconciliation bug...).
  sw.backend().install(
      MatchBuilder().tcp().nw_dst_prefix(Ipv4(10, 0, 0, 0), 16),
      DpActions().output(0xDEAD), clock.now());
  const DpCheckReport r = sw.self_check();
  EXPECT_GE(r.overlap_violations, 1u);
  EXPECT_EQ(sw.counters().flows_quarantined, r.quarantine.size());
  EXPECT_EQ(sw.backend().flow_count(), 6u);
  EXPECT_TRUE(sw.self_check().ok());
  EXPECT_EQ(sw.counters().flows_quarantined, r.quarantine.size());
}

// Same seed => identical post-reconciliation flow table and recovery
// verdicts, regardless of revalidator thread count or datapath backend.
TEST(RestartRecoveryTest, ReconciliationIsDeterministicAcrossConfigs) {
  struct Outcome {
    std::vector<std::string> flows;
    std::vector<uint64_t> verdicts;
  };
  auto run = [](size_t workers, size_t reval_threads) {
    SwitchConfig cfg;
    cfg.datapath_workers = workers;
    cfg.revalidator_threads = reval_threads;
    Switch sw(cfg);
    install_prefix_rules(sw, 60);
    VirtualClock clock;
    warm_flows(sw, clock, 60);
    sw.crash();
    for (size_t k = 0; k < 5; ++k) sw.backend().corrupt_entry(k * 11);
    sw.backend().expire_entry(7);
    clock.advance(kSecond);
    EXPECT_TRUE(sw.restart(clock.now()));
    const Switch::Counters& c = sw.counters();
    return Outcome{canonical_flows(sw),
                   {c.flows_adopted, c.flows_repaired, c.reval_deleted_idle,
                    c.reval_deleted_stale, c.flows_quarantined}};
  };
  const Outcome base = run(0, 1);
  ASSERT_FALSE(base.flows.empty());
  for (auto [workers, threads] :
       {std::pair<size_t, size_t>{0, 4}, {4, 1}, {4, 4}}) {
    const Outcome o = run(workers, threads);
    EXPECT_EQ(base.flows, o.flows)
        << "workers=" << workers << " threads=" << threads;
    EXPECT_EQ(base.verdicts, o.verdicts)
        << "workers=" << workers << " threads=" << threads;
  }
}

// Regression: a crash landing on the very maintenance round that would
// have revalidated a pending repair (the repair is "in flight") must not
// double-apply it after restart, and reconciliation must leave exactly one
// live attribution record per installed flow — no leaked records for
// entries the aborted pass had planned against. Runs across single and
// sharded backends and multi-threaded revalidator plans, which share the
// decision ladder but not the apply path.
TEST(RestartRecoveryTest, CrashWithPendingRepairNeitherLeaksNorDoubleApplies) {
  for (auto [workers, reval_threads] :
       {std::pair<size_t, size_t>{0, 1}, {0, 4}, {4, 4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers) +
                 " reval_threads=" + std::to_string(reval_threads));
    FaultInjector fault(0x51);
    SwitchConfig cfg;
    cfg.fault = &fault;
    cfg.datapath_workers = workers;
    cfg.revalidator_threads = reval_threads;
    Switch sw(cfg);
    install_prefix_rules(sw, 16);
    VirtualClock clock;
    warm_flows(sw, clock, 16);
    ASSERT_EQ(sw.backend().flow_count(), 16u);
    ASSERT_EQ(sw.attribution_count(), 16u);

    // A same-shape shadowing rule stales exactly one megaflow (same tuple,
    // higher priority, different output): the repair is now pending...
    sw.table(0).add_flow(
        MatchBuilder().tcp().nw_dst_prefix(Ipv4(10, 0, 3, 0), 24), 30,
        OfActions().output(2));
    // ...and the daemon dies on the maintenance round that would apply it.
    const uint64_t occ = fault.occurrences(FaultPoint::kUserspaceCrash);
    fault.arm_window(FaultPoint::kUserspaceCrash, occ, occ + 1);
    clock.advance(kSecond);
    sw.run_maintenance(clock.now());
    ASSERT_EQ(sw.lifecycle(), LifecycleState::kCrashed);
    EXPECT_EQ(sw.attribution_count(), 0u);  // userspace state died with it

    clock.advance(kSecond);
    sw.run_maintenance(clock.now());  // restart + reconcile
    ASSERT_EQ(sw.lifecycle(), LifecycleState::kServing);

    const Switch::Counters& c = sw.counters();
    // The pending repair was applied exactly once, and the reconciliation
    // verdicts partition the surviving cache exactly.
    EXPECT_EQ(c.flows_repaired, 1u);
    EXPECT_EQ(c.flows_adopted + c.flows_repaired + c.reval_deleted_idle +
                  c.reval_deleted_stale,
              16u);
    EXPECT_EQ(sw.attribution_count(), sw.backend().flow_count());
    EXPECT_TRUE(sw.self_check().ok());

    // A follow-up pass finds nothing left to repair: a double-apply would
    // surface here as a second wave of action updates.
    const uint64_t repaired = c.flows_repaired;
    const uint64_t updated = c.reval_updated_actions;
    clock.advance(kSecond);
    sw.run_maintenance(clock.now());
    EXPECT_EQ(c.flows_repaired, repaired);
    EXPECT_EQ(c.reval_updated_actions, updated);
    EXPECT_EQ(sw.attribution_count(), sw.backend().flow_count());

    // The slow-path ledgers balance across the whole crash/restart cycle.
    EXPECT_EQ(c.upcalls_handled + c.upcalls_retried,
              c.flow_setups + c.setup_dups + c.install_fails);
    EXPECT_EQ(c.install_fails,
              c.upcalls_retried + sw.retry_queue_depth() + c.retry_abandoned);
  }
}

// Crash-under-load via the injector: traffic keeps flowing through the
// whole crash/reconcile cycle driven only by run_maintenance, and the
// accounting invariants hold at every stage.
TEST(RestartRecoveryTest, MaintenanceDrivenRecoveryUnderLoad) {
  FaultInjector fault(0xAB);
  SwitchConfig cfg;
  cfg.fault = &fault;
  Switch sw(cfg);
  install_prefix_rules(sw, 30);
  VirtualClock clock;

  uint64_t sport = 3000;
  bool crashed_seen = false;
  for (int round = 0; round < 12; ++round) {
    if (round == 4) {
      const uint64_t occ = fault.occurrences(FaultPoint::kUserspaceCrash);
      fault.arm_window(FaultPoint::kUserspaceCrash, occ, occ + 1);
    }
    for (size_t i = 0; i < 30; ++i)
      sw.inject(prefix_pkt(1 + static_cast<uint32_t>(i % 2),
                           static_cast<uint8_t>(i / 200),
                           static_cast<uint8_t>(i % 200),
                           static_cast<uint16_t>(sport++ % 50000 + 1024)),
                clock.now());
    sw.handle_upcalls(clock.now());
    clock.advance(500 * kMillisecond);
    sw.run_maintenance(clock.now());
    crashed_seen |= sw.lifecycle() != LifecycleState::kServing;
  }
  EXPECT_TRUE(crashed_seen);
  EXPECT_EQ(sw.lifecycle(), LifecycleState::kServing);
  EXPECT_EQ(sw.counters().userspace_crashes, 1u);
  EXPECT_GT(sw.counters().flows_adopted, 0u);
  EXPECT_GT(sw.backend().flow_count(), 0u);
  const Switch::Counters& c = sw.counters();
  EXPECT_EQ(c.upcalls_handled + c.upcalls_retried,
            c.flow_setups + c.setup_dups + c.install_fails);
  EXPECT_EQ(c.install_fails,
            c.upcalls_retried + sw.retry_queue_depth() + c.retry_abandoned);
}

// Stateful pipeline across the crash/restart lifecycle (DESIGN.md §15):
// conntrack is process state — it dies with the daemon while the megaflows
// it shaped survive in the kernel cache. Reconciliation must repair those
// stale-ct_state survivors against the empty connection table, never adopt
// them.
TEST(StatefulRestartTest, CrashFlushesConntrackAndRepairsStaleCtMegaflows) {
  SwitchConfig cfg;
  Switch sw(cfg);
  for (uint32_t p = 1; p <= 3; ++p) sw.add_port(p);
  ASSERT_EQ("", sw.add_flow(
                    "priority=35, tcp, tp_dst=7070, actions=ct(table=2)", 0));
  ASSERT_EQ("", sw.add_flow(
                    "table=2, priority=30, ct_state=1, actions=output:2", 0));
  ASSERT_EQ("", sw.add_flow(
                    "table=2, priority=30, ct_state=2, actions=output:3", 0));
  VirtualClock clock;
  clock.advance(kSecond);

  FlowKey k;
  k.set_in_port(1);
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  k.set_nw_src(Ipv4(192, 168, 0, 1));
  k.set_nw_dst(Ipv4(10, 1, 1, 5));
  k.set_tp_src(1234);
  k.set_tp_dst(7070);
  sw.ct_commit(k, 0, clock.now());
  ASSERT_TRUE(sw.conntrack().lookup(k) & ct_state::kEstablished);

  std::vector<std::string> traces;
  sw.set_trace_hook([&](const Packet&, const DpActions& a,
                        Datapath::Path) { traces.push_back(a.to_string()); });

  Packet pkt;
  pkt.key = k;
  pkt.size_bytes = 64;
  sw.inject(pkt, clock.now());
  sw.handle_upcalls(clock.now());
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ("output:3", traces.back());  // established-state route cached
  ASSERT_EQ(sw.backend().flow_count(), 1u);

  sw.crash();
  // Conntrack died with the daemon: empty table, connection back to new.
  EXPECT_EQ(sw.conntrack().size(), 0u);
  EXPECT_EQ(sw.conntrack().lookup(k), ct_state::kNew);

  // Blackout: the kernel cache outlives the daemon and keeps serving the
  // (now stale) established-state route — legal until reconciliation.
  sw.inject(pkt, clock.now());
  EXPECT_EQ("output:3", traces.back());

  clock.advance(kSecond);
  ASSERT_TRUE(sw.restart(clock.now()));
  // Reconciliation re-translated against the EMPTY connection table: the
  // stale megaflow was repaired to the new-state route, not adopted.
  EXPECT_EQ(sw.counters().flows_repaired, 1u);
  EXPECT_EQ(sw.counters().flows_adopted, 0u);

  // Zero misdelivery from here on: post-restart traffic takes the
  // new-state route, and every surviving flow answers exactly like a fresh
  // translation.
  sw.inject(pkt, clock.now());
  EXPECT_EQ("output:2", traces.back());
  for (DpBackend::FlowRef f : sw.backend().dump()) {
    const XlateResult want =
        sw.pipeline().translate(sw.backend().flow_match(f).key, clock.now(),
                                /*side_effects=*/false);
    EXPECT_EQ(sw.backend().flow_actions(f), want.actions);
  }
  EXPECT_TRUE(sw.self_check().ok());

  // Re-committing after restart restores the established route end to end.
  sw.ct_commit(k, 0, clock.now());
  clock.advance(kSecond);
  sw.run_maintenance(clock.now());
  sw.inject(pkt, clock.now());
  EXPECT_EQ("output:3", traces.back());
}

// A NAT'd connection's rewrite must not survive the daemon either: after
// restart the un-committed connection forwards un-rewritten.
TEST(StatefulRestartTest, NatBindingDiesWithDaemonAndMegaflowIsRepaired) {
  SwitchConfig cfg;
  Switch sw(cfg);
  for (uint32_t p = 1; p <= 3; ++p) sw.add_port(p);
  ASSERT_EQ("", sw.add_flow(
                    "priority=35, tcp, tp_dst=6060, actions=ct(nat,table=2)",
                    0));
  ASSERT_EQ("", sw.add_flow("table=2, priority=1, actions=output:2", 0));
  VirtualClock clock;
  clock.advance(kSecond);

  FlowKey k;
  k.set_in_port(1);
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  k.set_nw_src(Ipv4(192, 168, 0, 1));
  k.set_nw_dst(Ipv4(10, 1, 1, 5));
  k.set_tp_src(1234);
  k.set_tp_dst(6060);
  CtNatSpec nat{/*src=*/true, Ipv4(192, 0, 2, 9).value(), 40001};
  sw.ct_commit_nat(k, nat, 0, clock.now());
  ASSERT_TRUE(sw.conntrack().nat_lookup(k).has_value());

  std::vector<std::string> traces;
  sw.set_trace_hook([&](const Packet&, const DpActions& a,
                        Datapath::Path) { traces.push_back(a.to_string()); });
  Packet pkt;
  pkt.key = k;
  pkt.size_bytes = 64;
  sw.inject(pkt, clock.now());
  sw.handle_upcalls(clock.now());
  ASSERT_FALSE(traces.empty());
  const std::string natted = traces.back();
  EXPECT_NE(natted.find("set("), std::string::npos) << natted;

  sw.crash();
  EXPECT_FALSE(sw.conntrack().nat_lookup(k).has_value());
  clock.advance(kSecond);
  ASSERT_TRUE(sw.restart(clock.now()));
  EXPECT_EQ(sw.counters().flows_repaired, 1u);

  sw.inject(pkt, clock.now());
  EXPECT_EQ("output:2", traces.back());  // no rewrite: binding is gone
}

}  // namespace
}  // namespace ovs
