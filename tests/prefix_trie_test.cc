// Tests for the prefix-tracking trie (paper §5.4, Figure 3).
#include "util/prefix_trie.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "packet/addr.h"
#include "util/rng.h"

namespace ovs {
namespace {

PrefixBits ip_prefix(uint8_t a, uint8_t b, uint8_t c, uint8_t d,
                     unsigned len) {
  return PrefixBits::from_u32(Ipv4(a, b, c, d).value(), len);
}
PrefixBits ip_value(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return ip_prefix(a, b, c, d, 32);
}

TEST(PrefixBitsTest, BitAccess) {
  PrefixBits p = PrefixBits::from_u32(0x80000001u, 32);
  EXPECT_EQ(p.size(), 32u);
  EXPECT_TRUE(p.bit(0));
  EXPECT_FALSE(p.bit(1));
  EXPECT_FALSE(p.bit(30));
  EXPECT_TRUE(p.bit(31));
}

TEST(PrefixBitsTest, PrefixZeroesTail) {
  PrefixBits p = PrefixBits::from_u32(0xffffffffu, 32);
  PrefixBits q = p.prefix(8);
  EXPECT_EQ(q.size(), 8u);
  // Bits beyond the length must be cleared so operator== is well-defined.
  EXPECT_EQ(q, PrefixBits::from_u32(0xff000000u, 8));
}

TEST(PrefixBitsTest, SuffixAndAppendRoundTrip) {
  PrefixBits p = PrefixBits::from_u32(0xdeadbeefu, 32);
  PrefixBits head = p.prefix(13);
  PrefixBits tail = p.suffix(13);
  head.append(tail);
  EXPECT_EQ(head, p);
}

TEST(PrefixBitsTest, CommonPrefix) {
  PrefixBits a = PrefixBits::from_u32(0xff000000u, 32);
  PrefixBits b = PrefixBits::from_u32(0xfe000000u, 32);
  EXPECT_EQ(a.common_prefix(b, 0, 32), 7u);
}

TEST(PrefixBitsTest, U128SpansWords) {
  PrefixBits p = PrefixBits::from_u128(0x1, ~uint64_t{0}, 128);
  EXPECT_TRUE(p.bit(63));
  EXPECT_FALSE(p.bit(62));
  EXPECT_TRUE(p.bit(64));
  EXPECT_TRUE(p.bit(127));
}

// The paper's example trie (§5.4): 20/8, 10.1/16, 10.2/16, 10.1.3/24,
// 10.1.4.5/32. Note the figure shows a "10" node present only for its
// children (no /8 rule on 10).
class PaperTrieTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trie_.insert(ip_prefix(20, 0, 0, 0, 8));
    trie_.insert(ip_prefix(10, 1, 0, 0, 16));
    trie_.insert(ip_prefix(10, 2, 0, 0, 16));
    trie_.insert(ip_prefix(10, 1, 3, 0, 24));
    trie_.insert(ip_prefix(10, 1, 4, 5, 32));
  }
  PrefixTrie trie_;
};

TEST_F(PaperTrieTest, ReachingLeafNeedsNoMoreBits) {
  // "10.1.3.5 would be installed as 10.1.3/24": traversal ends at the /24
  // leaf, so only 24 bits are needed and /16 + /24 lengths are viable.
  auto r = trie_.lookup(ip_value(10, 1, 3, 5));
  EXPECT_EQ(r.nbits, 24u);
  EXPECT_TRUE(r.plens.test(16));
  EXPECT_TRUE(r.plens.test(24));
  EXPECT_FALSE(r.plens.test(32));
  EXPECT_FALSE(r.plens.test(8));
}

TEST_F(PaperTrieTest, ReachingShallowLeaf) {
  // "20.0.5.1 as 20/8".
  auto r = trie_.lookup(ip_value(20, 0, 5, 1));
  EXPECT_EQ(r.nbits, 8u);
  EXPECT_TRUE(r.plens.test(8));
  EXPECT_EQ(r.plens.count(), 1u);
}

TEST_F(PaperTrieTest, MismatchNeedsBitsUpToDivergence) {
  // "10.3.5.1 must be installed as 10.3/16": the address diverges from both
  // the 10.1 and 10.2 children somewhere inside the second octet.
  auto r = trie_.lookup(ip_value(10, 3, 5, 1));
  EXPECT_LE(r.nbits, 16u);
  EXPECT_GT(r.nbits, 8u);
  EXPECT_EQ(r.plens.count(), 0u);  // no rule matches: "10" node has no rules
}

TEST_F(PaperTrieTest, CompletelyOffTrie) {
  // "30.10.5.2 as 30/8" — diverges within the first octet.
  auto r = trie_.lookup(ip_value(30, 10, 5, 2));
  EXPECT_LE(r.nbits, 8u);
  EXPECT_EQ(r.plens.count(), 0u);
}

TEST_F(PaperTrieTest, SkippableTuples) {
  // §5.4: for 10.1.6.1, no flow with an IP match longer than /16 matches, so
  // the /24 and /32 tuples can be skipped.
  auto r = trie_.lookup(ip_value(10, 1, 6, 1));
  EXPECT_TRUE(r.plens.test(16));
  EXPECT_FALSE(r.plens.test(24));
  EXPECT_FALSE(r.plens.test(32));
}

TEST(PrefixTrieTest, EmptyTrie) {
  PrefixTrie t;
  EXPECT_TRUE(t.empty());
  auto r = t.lookup(ip_value(1, 2, 3, 4));
  EXPECT_EQ(r.nbits, 0u);
  EXPECT_EQ(r.plens.count(), 0u);
}

TEST(PrefixTrieTest, SinglePrefixExactMatch) {
  PrefixTrie t;
  t.insert(ip_prefix(192, 168, 0, 0, 16));
  auto hit = t.lookup(ip_value(192, 168, 5, 5));
  EXPECT_TRUE(hit.plens.test(16));
  EXPECT_EQ(hit.nbits, 16u);
  auto miss = t.lookup(ip_value(192, 169, 5, 5));
  EXPECT_FALSE(miss.plens.test(16));
  EXPECT_EQ(miss.nbits, 16u);  // mismatch at bit 15 -> need 16 bits
}

TEST(PrefixTrieTest, DuplicateInsertIsRefcounted) {
  PrefixTrie t;
  t.insert(ip_prefix(10, 0, 0, 0, 8));
  t.insert(ip_prefix(10, 0, 0, 0, 8));
  EXPECT_EQ(t.prefix_count(), 2u);
  EXPECT_TRUE(t.remove(ip_prefix(10, 0, 0, 0, 8)));
  EXPECT_TRUE(t.lookup(ip_value(10, 1, 1, 1)).plens.test(8));
  EXPECT_TRUE(t.remove(ip_prefix(10, 0, 0, 0, 8)));
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.remove(ip_prefix(10, 0, 0, 0, 8)));
}

TEST(PrefixTrieTest, RemoveCollapsesSplitNodes) {
  PrefixTrie t;
  t.insert(ip_prefix(10, 1, 0, 0, 16));
  t.insert(ip_prefix(10, 2, 0, 0, 16));
  EXPECT_TRUE(t.remove(ip_prefix(10, 2, 0, 0, 16)));
  // After collapse the remaining prefix must still be found.
  EXPECT_TRUE(t.lookup(ip_value(10, 1, 9, 9)).plens.test(16));
  EXPECT_FALSE(t.lookup(ip_value(10, 2, 9, 9)).plens.test(16));
}

TEST(PrefixTrieTest, ZeroLengthPrefixMatchesEverything) {
  PrefixTrie t;
  t.insert(PrefixBits::from_u32(0, 0));  // a /0 "default route"
  auto r = t.lookup(ip_value(1, 2, 3, 4));
  EXPECT_TRUE(r.plens.test(0));
}

TEST(PrefixTrieTest, PortWidth16) {
  PrefixTrie t;
  t.insert(PrefixBits::from_u16(25, 16));   // SMTP ACL (§5.4)
  t.insert(PrefixBits::from_u16(80, 16));
  auto r = t.lookup(PrefixBits::from_u16(54321, 16));
  EXPECT_FALSE(r.plens.test(16));
  EXPECT_LT(r.nbits, 16u);  // high-order bits suffice to exclude both ports
}

TEST(PrefixTrieTest, Ipv6Width128) {
  PrefixTrie t;
  t.insert(PrefixBits::from_u128(0x20010db8'00000000ULL, 0, 32));
  auto hit = t.lookup(PrefixBits::from_u128(0x20010db8'deadbeefULL, 42, 128));
  EXPECT_TRUE(hit.plens.test(32));
  auto miss = t.lookup(PrefixBits::from_u128(0x20020db8'00000000ULL, 0, 128));
  EXPECT_FALSE(miss.plens.test(32));
}

// Property test: plens must exactly equal brute-force prefix containment,
// and nbits must render the result unique (flipping any bit at or beyond
// nbits cannot change plens).
class TrieRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieRandomTest, MatchesBruteForceAndNbitsIsSound) {
  Rng rng(GetParam());
  PrefixTrie trie;
  std::vector<std::pair<uint32_t, unsigned>> prefixes;
  // A clustered universe so prefixes actually overlap.
  for (int i = 0; i < 60; ++i) {
    unsigned len = static_cast<unsigned>(rng.range(1, 32));
    uint32_t v = static_cast<uint32_t>(rng.next()) &
                 (rng.chance(0.7) ? 0x0f0f0f0fu : 0xffffffffu);
    v &= ipv4_prefix_mask(len);
    prefixes.emplace_back(v, len);
    trie.insert(PrefixBits::from_u32(v, len));
  }
  for (int q = 0; q < 200; ++q) {
    uint32_t addr = static_cast<uint32_t>(rng.next()) &
                    (rng.chance(0.7) ? 0x0f0f0f0fu : 0xffffffffu);
    auto r = trie.lookup(PrefixBits::from_u32(addr, 32));
    // plens == brute force.
    for (unsigned len = 1; len <= 32; ++len) {
      bool expect = false;
      for (auto& [v, l] : prefixes)
        if (l == len && (addr & ipv4_prefix_mask(len)) == v) expect = true;
      EXPECT_EQ(r.plens.test(len), expect)
          << "addr=" << Ipv4(addr).to_string() << " len=" << len;
    }
    // nbits soundness: same leading nbits => same plens.
    ASSERT_LE(r.nbits, 32u);
    for (int trial = 0; trial < 8; ++trial) {
      uint32_t mutant = addr;
      if (r.nbits < 32) {
        const uint32_t keep = ipv4_prefix_mask(r.nbits);
        mutant = (addr & keep) |
                 (static_cast<uint32_t>(rng.next()) & ~keep);
      }
      auto r2 = trie.lookup(PrefixBits::from_u32(mutant, 32));
      EXPECT_EQ(r2.plens, r.plens)
          << "addr=" << Ipv4(addr).to_string()
          << " mutant=" << Ipv4(mutant).to_string() << " nbits=" << r.nbits;
    }
  }
  // Remove everything; the trie must end empty and consistent.
  for (auto& [v, l] : prefixes)
    EXPECT_TRUE(trie.remove(PrefixBits::from_u32(v, l)));
  EXPECT_TRUE(trie.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ovs
