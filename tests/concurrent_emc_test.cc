// Tests for the concurrent (multi-reader) microflow cache.
#include "datapath/concurrent_emc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/rng.h"

namespace ovs {
namespace {

TEST(ConcurrentEmcTest, InstallLookupInvalidate) {
  ConcurrentEmc emc(64);
  EXPECT_FALSE(emc.lookup(42).has_value());
  emc.install(42, 4200);
  ASSERT_TRUE(emc.lookup(42).has_value());
  EXPECT_EQ(*emc.lookup(42), 4200u);
  emc.invalidate(42);
  EXPECT_FALSE(emc.lookup(42).has_value());
}

TEST(ConcurrentEmcTest, BoundedByCapacity) {
  ConcurrentEmc emc(32);
  for (uint64_t h = 1; h <= 1000; ++h) emc.install(h * 2, h);
  EXPECT_LE(emc.size(), 32u);
  // The most recent installs are present (FIFO evicts oldest).
  EXPECT_TRUE(emc.lookup(2000).has_value());
  EXPECT_FALSE(emc.lookup(2).has_value());
}

TEST(ConcurrentEmcTest, ReinstallUpdatesHint) {
  ConcurrentEmc emc(32);
  emc.install(7, 1);
  emc.install(7, 2);
  EXPECT_EQ(*emc.lookup(7), 2u);
}

TEST(ConcurrentEmcTest, KeyZeroIsUsable) {
  // Flow hashes can legitimately be 0; the EMC must not lose them to the
  // cuckoo map's empty sentinel.
  ConcurrentEmc emc(16);
  emc.install(0, 99);
  ASSERT_TRUE(emc.lookup(0).has_value());
  EXPECT_EQ(*emc.lookup(0), 99u);
}

TEST(ConcurrentEmcTest, ReadersNeverSeeTornHints) {
  // Invariant: a hint for hash h is always hash_mix64(h). Readers race a
  // writer that churns past capacity (constant eviction + displacement).
  ConcurrentEmc emc(256);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> hits{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(900 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t h = rng.uniform(4096);
        if (auto v = emc.lookup(h)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          if (*v != hash_mix64(h | 1))
            violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Rng wrng(3);
  for (int i = 0; i < 300000; ++i) {
    const uint64_t h = wrng.uniform(4096);
    emc.install(h, hash_mix64(h | 1));
    if (wrng.chance(0.1)) emc.invalidate(wrng.uniform(4096));
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(hits.load(), 1000u);
  EXPECT_LE(emc.size(), 256u);
}

}  // namespace
}  // namespace ovs
