// Engine-equivalence property tests for the classifier backend seam: every
// engine (staged TSS reference, chained-tuple, bloom-gated) must produce
// identical winners under identical rule churn, generate sound wildcards,
// and return batch results byte-identical to its own scalar path. The
// scripted-operation approach builds ONE deterministic op sequence and
// applies it to one RuleSet per engine, so divergence is attributable to
// the engine and not to generator drift.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "classifier/chain_engine.h"
#include "classifier/classifier.h"
#include "classifier/cls_backend.h"
#include "test_util.h"

namespace ovs {
namespace {

using testutil::RuleSet;
using testutil::TestRule;

constexpr std::array<ClassifierEngine, 3> kEngines = {
    ClassifierEngine::kStagedTss, ClassifierEngine::kChainedTuple,
    ClassifierEngine::kBloomGated};

bool same_mask(const Match& a, const Match& b) {
  for (size_t w = 0; w < kFlowWords; ++w)
    if (a.mask.w[w] != b.mask.w[w]) return false;
  return true;
}

bool same_wc(const FlowWildcards& a, const FlowWildcards& b) {
  for (size_t w = 0; w < kFlowWords; ++w)
    if (a.w[w] != b.w[w]) return false;
  return true;
}

// One scripted mutation. kChurnMask removes every live rule sharing the
// mask of the rule at live_index — the mask-churn case that forces tuple
// (and chain level / gate) teardown, not just per-rule unlinking.
struct Op {
  enum class Kind { kAdd, kRemove, kChurnMask } kind;
  Match match;  // kAdd only
  int32_t priority = 0;
  int id = 0;
  size_t live_index = 0;  // kRemove/kChurnMask: index into the live vector
};

// Generates a deterministic op script. The shadow live list mirrors what
// each engine's RuleSet will hold at every step so removal indices resolve
// identically at apply time.
std::vector<Op> make_script(uint64_t seed, int n_adds) {
  Rng rng(seed);
  std::vector<Op> script;
  std::vector<Match> shadow;
  int32_t next_prio = 1;
  for (int i = 0; i < n_adds; ++i) {
    Op op;
    op.kind = Op::Kind::kAdd;
    op.match = testutil::random_match(rng);
    op.priority = next_prio++;
    op.id = i;
    shadow.push_back(op.match);
    script.push_back(op);
    if (!shadow.empty() && rng.chance(0.12)) {
      Op rm;
      rm.kind = Op::Kind::kRemove;
      rm.live_index = rng.uniform(shadow.size());
      shadow.erase(shadow.begin() + static_cast<long>(rm.live_index));
      script.push_back(rm);
    }
    if (!shadow.empty() && rng.chance(0.04)) {
      Op churn;
      churn.kind = Op::Kind::kChurnMask;
      churn.live_index = rng.uniform(shadow.size());
      const Match victim = shadow[churn.live_index];
      for (size_t j = shadow.size(); j-- > 0;)
        if (same_mask(shadow[j], victim))
          shadow.erase(shadow.begin() + static_cast<long>(j));
      script.push_back(churn);
    }
  }
  return script;
}

void apply_op(const Op& op, RuleSet& rs, std::vector<TestRule*>& live) {
  switch (op.kind) {
    case Op::Kind::kAdd:
      live.push_back(rs.add(op.match, op.priority, op.id));
      break;
    case Op::Kind::kRemove:
      ASSERT_LT(op.live_index, live.size());
      rs.remove(live[op.live_index]);
      live.erase(live.begin() + static_cast<long>(op.live_index));
      break;
    case Op::Kind::kChurnMask: {
      ASSERT_LT(op.live_index, live.size());
      const Match victim = live[op.live_index]->match();
      for (size_t j = live.size(); j-- > 0;)
        if (same_mask(live[j]->match(), victim)) {
          rs.remove(live[j]);
          live.erase(live.begin() + static_cast<long>(j));
        }
      break;
    }
  }
}

class ClassifierEngineEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClassifierEngineEquivalenceTest, IdenticalChurnIdenticalAnswers) {
  const uint64_t seed = GetParam();
  const std::vector<Op> script = make_script(seed, 150);

  std::vector<std::unique_ptr<RuleSet>> sets;
  std::vector<std::vector<TestRule*>> live(kEngines.size());
  for (ClassifierEngine e : kEngines) {
    ClassifierConfig cfg;
    cfg.engine = e;
    sets.push_back(std::make_unique<RuleSet>(cfg));
  }

  size_t next_check = 40;
  size_t applied = 0;
  auto checkpoint = [&](uint64_t salt) {
    // All sets hold identical rules here; sets[0] provides the oracle.
    for (size_t ei = 1; ei < sets.size(); ++ei)
      ASSERT_EQ(sets[ei]->classifier().rule_count(),
                sets[0]->classifier().rule_count());
    Rng qrng(seed * 7919 + salt);
    std::vector<FlowKey> pkts;
    for (int q = 0; q < 80; ++q) pkts.push_back(testutil::random_packet(qrng));

    for (size_t ei = 0; ei < kEngines.size(); ++ei) {
      SCOPED_TRACE(classifier_engine_name(kEngines[ei]));
      const Classifier& cls = sets[ei]->classifier();
      std::vector<const Rule*> batch(pkts.size());
      std::vector<FlowWildcards> batch_wc(pkts.size());
      cls.lookup_batch(pkts.data(), pkts.size(), batch.data(),
                       batch_wc.data());
      for (size_t q = 0; q < pkts.size(); ++q) {
        FlowWildcards wc;
        const Rule* got = cls.lookup(pkts[q], &wc);
        const TestRule* want = sets[0]->naive_lookup(pkts[q]);
        if (want == nullptr) {
          ASSERT_EQ(got, nullptr) << pkts[q].to_string();
        } else {
          ASSERT_NE(got, nullptr) << pkts[q].to_string();
          ASSERT_EQ(got->priority(), want->priority())
              << pkts[q].to_string();
        }
        // Batch must be byte-identical to this engine's scalar path.
        ASSERT_EQ(batch[q], got) << pkts[q].to_string();
        ASSERT_TRUE(same_wc(batch_wc[q], wc))
            << "batch wc diverges from scalar wc for "
            << pkts[q].to_string();
        // Wildcard soundness: flipping unconsulted bits must not change
        // the classification the naive oracle would give.
        for (int trial = 0; trial < 3; ++trial) {
          FlowKey mutant = pkts[q];
          for (size_t w = 0; w < kFlowWords; ++w) {
            const uint64_t flip = qrng.next() & ~wc.w[w];
            if (qrng.chance(0.5)) mutant.w[w] ^= flip;
          }
          const TestRule* mwant = sets[0]->naive_lookup(mutant);
          if (want == nullptr) {
            ASSERT_EQ(mwant, nullptr)
                << "unsound wildcards:\n  pkt    " << pkts[q].to_string()
                << "\n  mutant " << mutant.to_string() << "\n  wc     "
                << wc.to_string();
          } else {
            ASSERT_NE(mwant, nullptr)
                << "unsound wildcards:\n  pkt    " << pkts[q].to_string()
                << "\n  mutant " << mutant.to_string() << "\n  wc     "
                << wc.to_string();
            ASSERT_EQ(mwant->priority(), want->priority())
                << "unsound wildcards:\n  pkt    " << pkts[q].to_string()
                << "\n  mutant " << mutant.to_string() << "\n  wc     "
                << wc.to_string();
          }
        }
      }
    }
  };

  for (const Op& op : script) {
    for (size_t ei = 0; ei < sets.size(); ++ei)
      apply_op(op, *sets[ei], live[ei]);
    if (++applied >= next_check) {
      checkpoint(applied);
      next_check += 40;
    }
  }
  checkpoint(0xF1'4A);

  // Drain to empty through removals only: the teardown path must stay
  // equivalent all the way down.
  while (!live[0].empty()) {
    Op rm;
    rm.kind = Op::Kind::kRemove;
    rm.live_index = live[0].size() - 1;
    for (size_t ei = 0; ei < sets.size(); ++ei)
      apply_op(rm, *sets[ei], live[ei]);
  }
  for (size_t ei = 0; ei < sets.size(); ++ei) {
    EXPECT_EQ(sets[ei]->classifier().rule_count(), 0u);
    EXPECT_EQ(sets[ei]->classifier().tuple_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClassifierEngineEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606),
                         [](const ::testing::TestParamInfo<uint64_t>& p) {
                           std::string name = "s";
                           name += std::to_string(p.param);
                           return name;
                         });

// Nested prefixes produce masks totally ordered by subsumption: the chain
// engine must coalesce them into ONE chain and cut misses with its guide
// sets instead of probing every mask.
TEST(ClassifierEngineChainTest, NestedPrefixesFormOneChain) {
  ClassifierConfig cfg;
  cfg.engine = ClassifierEngine::kChainedTuple;
  RuleSet rs(cfg);
  // Insert in shuffled plen order so chain placement exercises insertion at
  // interior levels, not just appends.
  const std::array<unsigned, 7> plens = {20, 8, 32, 12, 28, 16, 24};
  int id = 0;
  for (unsigned plen : plens)
    for (uint8_t v = 0; v < 3; ++v)
      rs.add(MatchBuilder().ip().nw_dst_prefix(Ipv4(10, v, v, 1), plen),
             static_cast<int32_t>(plen) * 8 + v, id++);
  ASSERT_EQ(rs.classifier().tuple_count(), 7u);

  const auto& eng =
      static_cast<const ChainedTupleEngine&>(rs.classifier().backend());
  EXPECT_EQ(eng.chain_count(), 1u);
  EXPECT_EQ(eng.max_chain_length(), 7u);

  // Winners across the nesting depths match the naive oracle.
  Rng rng(7);
  rs.classifier().reset_stats();
  for (int q = 0; q < 300; ++q) {
    FlowKey pkt;
    pkt.set_eth_type(ethertype::kIpv4);
    pkt.set_nw_proto(ipproto::kTcp);
    // Half the traffic inside 10/8, half far outside (guide miss at the
    // chain's coarsest level).
    pkt.set_nw_dst(rng.chance(0.5)
                       ? Ipv4(10, static_cast<uint8_t>(rng.uniform(4)),
                              static_cast<uint8_t>(rng.uniform(4)),
                              static_cast<uint8_t>(rng.uniform(3)))
                       : Ipv4(static_cast<uint32_t>(rng.next()) | 0x20000000u));
    const Rule* got = rs.classifier().lookup(pkt);
    const TestRule* want = rs.naive_lookup(pkt);
    if (want == nullptr) {
      ASSERT_EQ(got, nullptr) << pkt.to_string();
    } else {
      ASSERT_NE(got, nullptr) << pkt.to_string();
      ASSERT_EQ(got->priority(), want->priority()) << pkt.to_string();
    }
  }
  // The guide sets did real work: off-chain traffic was cut without
  // probing all 7 masks.
  const ClassifierStats st = rs.classifier().stats();
  EXPECT_GT(st.guide_probes, 0u);
  EXPECT_GT(st.tuples_skipped, 0u);
  EXPECT_LT(st.tuples_searched, st.lookups * 7);
}

// Megaflow-cache mode (first_match_only): with disjoint rules every engine
// must return THE unique match and may stop at it.
TEST(ClassifierEngineFirstMatchTest, DisjointRulesAgreeAcrossEngines) {
  for (ClassifierEngine e : kEngines) {
    SCOPED_TRACE(classifier_engine_name(e));
    ClassifierConfig cfg;
    cfg.engine = e;
    cfg.first_match_only = true;
    RuleSet rs(cfg);
    int id = 0;
    // Two mask shapes with disjoint nw_dst value ranges so no packet can
    // match rules from both shapes.
    for (uint8_t v = 0; v < 8; ++v)
      rs.add(MatchBuilder().ip().nw_dst(Ipv4(10, 1, 0, v)), 1, id++);
    for (uint8_t v = 0; v < 8; ++v)
      rs.add(MatchBuilder()
                 .tcp()
                 .nw_dst(Ipv4(10, 2, 0, v))
                 .tp_dst(static_cast<uint16_t>(80 + v)),
             1, id++);
    Rng rng(13);
    for (int q = 0; q < 200; ++q) {
      FlowKey pkt;
      pkt.set_eth_type(ethertype::kIpv4);
      pkt.set_nw_proto(ipproto::kTcp);
      if (rng.chance(0.5)) {
        pkt.set_nw_dst(Ipv4(10, 1, 0, static_cast<uint8_t>(rng.uniform(10))));
      } else {
        pkt.set_nw_dst(Ipv4(10, 2, 0, static_cast<uint8_t>(rng.uniform(10))));
        pkt.set_tp_dst(static_cast<uint16_t>(80 + rng.uniform(10)));
      }
      const Rule* got = rs.classifier().lookup(pkt);
      const TestRule* want = rs.naive_lookup(pkt);
      if (want == nullptr) {
        ASSERT_EQ(got, nullptr) << pkt.to_string();
      } else {
        ASSERT_NE(got, nullptr) << pkt.to_string();
        ASSERT_EQ(static_cast<const TestRule*>(got)->id, want->id)
            << pkt.to_string();
      }
    }
  }
}

// The bloom-gated SoA batch path must agree with its own scalar path on
// sizes that are not multiples of the internal block, with and without
// wildcard accumulation, and the gates must actually skip work.
TEST(ClassifierEngineBatchTest, SoABatchMatchesScalarOnOddSizes) {
  ClassifierConfig cfg;
  cfg.engine = ClassifierEngine::kBloomGated;
  RuleSet rs(cfg);
  Rng rng(31337);
  int32_t prio = 1;
  for (int i = 0; i < 300; ++i)
    rs.add(testutil::random_match(rng), prio++, i);

  for (size_t n : {size_t{1}, size_t{7}, size_t{16}, size_t{33}, size_t{257}}) {
    std::vector<FlowKey> pkts;
    for (size_t q = 0; q < n; ++q)
      pkts.push_back(testutil::random_packet(rng));
    std::vector<const Rule*> batch(n), scalar(n);
    std::vector<FlowWildcards> batch_wc(n), scalar_wc(n);
    rs.classifier().lookup_batch(pkts.data(), n, batch.data(),
                                 batch_wc.data());
    for (size_t q = 0; q < n; ++q)
      scalar[q] = rs.classifier().lookup(pkts[q], &scalar_wc[q]);
    for (size_t q = 0; q < n; ++q) {
      ASSERT_EQ(batch[q], scalar[q]) << "n=" << n << " q=" << q;
      ASSERT_TRUE(same_wc(batch_wc[q], scalar_wc[q])) << "n=" << n
                                                      << " q=" << q;
    }
    // And the wcs-less entry point.
    std::vector<const Rule*> batch2(n);
    rs.classifier().lookup_batch(pkts.data(), n, batch2.data(), nullptr);
    for (size_t q = 0; q < n; ++q)
      ASSERT_EQ(batch2[q], scalar[q]) << "n=" << n << " q=" << q;
  }
  const ClassifierStats st = rs.classifier().stats();
  EXPECT_GT(st.gate_probes, 0u);
  EXPECT_GT(st.tuples_skipped, 0u);
}

}  // namespace
}  // namespace ovs
