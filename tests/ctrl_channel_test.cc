// Control-plane wire + reliable channel tests (DESIGN.md §12).
//
// The claims under test:
//   * the transport is a deterministic virtual-time wire: latency-ordered
//     delivery, detached nodes eat traffic, wire faults (drop / delay /
//     duplicate) come only from the injector;
//   * the channel is exactly-once in-order within a connection epoch under
//     arbitrary drop/duplicate faults, with a bounded in-flight window and
//     capped exponential backoff;
//   * a connection reset LOSES whatever was in flight or queued — a barrier
//     queued behind a lost flow-mod is lost with it, never delivered, so no
//     reply can certify the lost mods (the satellite semantics);
//   * stale epochs are fenced; a dead channel can be reconnected.
#include "ctrl/channel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ctrl/transport.h"
#include "sim/clock.h"
#include "util/fault.h"

namespace ovs {
namespace {

CtrlMsg data_msg(const std::string& tag) {
  CtrlMsg m;
  m.type = CtrlMsgType::kFlowMod;
  m.flow_mod.op = FlowModPayload::Op::kAdd;
  m.flow_mod.spec = tag;
  return m;
}

struct Endpoint {
  CtrlChannel ch;
  std::vector<CtrlMsg> got;
  Endpoint(CtrlTransport* net, uint32_t self, uint32_t peer,
           ChannelConfig cfg = {}, FaultInjector* f = nullptr)
      : ch(net, self, peer, cfg, f) {}
};

void attach(CtrlTransport& net, uint32_t id, Endpoint& e) {
  net.attach(id, [&e](const CtrlMsg& m, uint64_t now) {
    e.ch.on_receive(m, now, &e.got);
  });
}

void run(CtrlTransport& net, Endpoint& a, Endpoint& b, uint64_t& now,
         uint64_t until, uint64_t step = kMillisecond) {
  while (now < until) {
    now += step;
    net.deliver_until(now);
    a.ch.tick(now);
    b.ch.tick(now);
  }
}

TEST(CtrlTransport, DeliversInOrderAfterLatency) {
  CtrlTransport net;
  std::vector<std::string> got;
  net.attach(2, [&](const CtrlMsg& m, uint64_t) {
    got.push_back(m.flow_mod.spec);
  });
  for (int i = 0; i < 3; ++i) {
    CtrlMsg m = data_msg("m" + std::to_string(i));
    m.src = 1;
    m.dst = 2;
    net.send(std::move(m), 0);
  }
  EXPECT_EQ(net.deliver_until(TransportConfig{}.latency_ns - 1), 0u);
  EXPECT_EQ(net.deliver_until(TransportConfig{}.latency_ns), 3u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "m0");
  EXPECT_EQ(got[2], "m2");

  // A detached destination silently eats traffic.
  net.detach(2);
  CtrlMsg m = data_msg("dead");
  m.src = 1;
  m.dst = 2;
  net.send(std::move(m), kSecond);
  net.deliver_until(2 * kSecond);
  EXPECT_EQ(net.stats().to_dead, 1u);
  EXPECT_EQ(got.size(), 3u);
}

TEST(CtrlTransport, WireFaultsComeOnlyFromTheInjector) {
  CtrlTransport net;
  FaultInjector fault(7);
  net.set_fault(&fault);
  size_t delivered = 0;
  uint64_t last_at = 0;
  net.attach(2, [&](const CtrlMsg&, uint64_t at) {
    ++delivered;
    last_at = at;
  });
  auto send_one = [&](uint64_t now) {
    CtrlMsg m = data_msg("x");
    m.src = 1;
    m.dst = 2;
    net.send(std::move(m), now);
  };

  // Drop the first offered message only.
  fault.arm_window(FaultPoint::kCtrlMsgDrop, 0, 1);
  send_one(0);
  net.deliver_until(kSecond);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.stats().dropped, 1u);

  // Every message duplicated: one send, two arrivals.
  fault.disarm_all();
  fault.set_probability(FaultPoint::kCtrlMsgDuplicate, 1.0);
  send_one(kSecond);
  net.deliver_until(2 * kSecond);
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(net.stats().duplicated, 1u);

  // Delay pushes delivery past base latency by delay_extra_ns.
  fault.disarm_all();
  fault.set_probability(FaultPoint::kCtrlMsgDelay, 1.0);
  send_one(2 * kSecond);
  net.deliver_until(3 * kSecond);
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(last_at, 2 * kSecond + TransportConfig{}.latency_ns +
                         TransportConfig{}.delay_extra_ns);
}

TEST(CtrlChannel, ExactlyOnceInOrderUnderHeavyLoss) {
  CtrlTransport net;
  FaultInjector fault(11);
  fault.set_probability(FaultPoint::kCtrlMsgDrop, 0.3);
  net.set_fault(&fault);
  Endpoint a(&net, 1, 2), b(&net, 2, 1);
  attach(net, 1, a);
  attach(net, 2, b);

  uint64_t now = 0;
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i)
    a.ch.send(data_msg(std::to_string(i)), now);
  run(net, a, b, now, 120 * kSecond);

  ASSERT_EQ(b.got.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(b.got[static_cast<size_t>(i)].flow_mod.spec,
              std::to_string(i));
  EXPECT_GT(a.ch.stats().retransmits, 0u);
  EXPECT_EQ(a.ch.stats().resets, 0u);
}

TEST(CtrlChannel, WireDuplicatesDiscardedExactlyOnce) {
  CtrlTransport net;
  FaultInjector fault(13);
  fault.set_probability(FaultPoint::kCtrlMsgDuplicate, 1.0);
  net.set_fault(&fault);
  Endpoint a(&net, 1, 2), b(&net, 2, 1);
  attach(net, 1, a);
  attach(net, 2, b);

  uint64_t now = 0;
  for (int i = 0; i < 50; ++i)
    a.ch.send(data_msg(std::to_string(i)), now);
  run(net, a, b, now, 30 * kSecond);

  EXPECT_EQ(b.got.size(), 50u);
  EXPECT_GT(b.ch.stats().dups_discarded, 0u);
}

TEST(CtrlChannel, InFlightWindowIsBounded) {
  CtrlTransport net;
  ChannelConfig cfg;
  cfg.window = 4;
  Endpoint a(&net, 1, 2, cfg), b(&net, 2, 1, cfg);
  attach(net, 1, a);
  attach(net, 2, b);

  uint64_t now = 0;
  for (int i = 0; i < 50; ++i)
    a.ch.send(data_msg(std::to_string(i)), now);
  EXPECT_EQ(a.ch.in_flight(), 4u);
  EXPECT_EQ(a.ch.queued(), 46u);
  run(net, a, b, now, 30 * kSecond);

  ASSERT_EQ(b.got.size(), 50u);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(b.got[static_cast<size_t>(i)].flow_mod.spec,
              std::to_string(i));
  EXPECT_LE(a.ch.stats().max_in_flight, 4u);
}

// The reset-loss semantics behind the barrier satellite: flow-mods dropped
// on the wire and then orphaned by a connection reset are NEVER delivered,
// and the barrier queued behind them is lost with them — the receiver can
// never emit a reply certifying mods it did not apply.
TEST(CtrlChannel, ResetLosesInFlightIncludingBarrier) {
  CtrlTransport net;
  FaultInjector wire(17);    // per-dst wire faults (drops toward node 2)
  FaultInjector reset(19);   // sender-side connection resets
  net.set_node_fault(2, &wire);
  Endpoint a(&net, 1, 2, ChannelConfig{}, &reset);
  Endpoint b(&net, 2, 1);
  attach(net, 1, a);
  attach(net, 2, b);

  uint64_t now = 0;
  // First three transmissions toward B vanish on the wire.
  wire.arm_window(FaultPoint::kCtrlMsgDrop, 0, 3);
  a.ch.send(data_msg("fm1"), now);
  a.ch.send(data_msg("fm2"), now);
  CtrlMsg barrier;
  barrier.type = CtrlMsgType::kBarrierRequest;
  barrier.xid = 99;
  a.ch.send(std::move(barrier), now);
  net.deliver_until(now + kMillisecond);  // nothing arrives (all dropped)
  EXPECT_TRUE(b.got.empty());

  // Before any retransmission, the next send rips the connection: the two
  // flow-mods and the barrier are lost for good. (Every send consults the
  // reset point, so the three sends above consumed occurrences 0-2.)
  reset.arm_window(FaultPoint::kCtrlConnReset, 3, 4);
  a.ch.send(data_msg("fm3"), now + kMillisecond);
  EXPECT_EQ(a.ch.stats().lost_to_reset, 3u);
  EXPECT_EQ(a.ch.conn_epoch(), 2u);

  run(net, a, b, now, 10 * kSecond);
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.got[0].flow_mod.spec, "fm3");
  for (const CtrlMsg& m : b.got)
    EXPECT_NE(m.type, CtrlMsgType::kBarrierRequest);
}

TEST(CtrlChannel, RetransmitBackoffDeclaresDeadThenReconnects) {
  CtrlTransport net;
  FaultInjector wire(23);
  wire.set_probability(FaultPoint::kCtrlMsgDrop, 1.0);  // B is unreachable
  net.set_node_fault(2, &wire);
  ChannelConfig cfg;
  cfg.max_retx = 3;
  Endpoint a(&net, 1, 2, cfg), b(&net, 2, 1, cfg);
  attach(net, 1, a);
  attach(net, 2, b);

  uint64_t now = 0;
  a.ch.send(data_msg("x"), now);
  run(net, a, b, now, 30 * kSecond);
  EXPECT_TRUE(a.ch.dead());
  EXPECT_EQ(a.ch.stats().retransmits, 2u);  // attempts 2 and 3
  EXPECT_TRUE(b.got.empty());

  // Owner-driven reconnect on a healed wire: fresh epoch, delivery works.
  wire.disarm_all();
  a.ch.reconnect(now);
  EXPECT_FALSE(a.ch.dead());
  a.ch.send(data_msg("y"), now);
  run(net, a, b, now, now + 5 * kSecond);
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.got[0].flow_mod.spec, "y");
  EXPECT_EQ(b.ch.conn_epoch(), 2u);  // adopted A's post-reconnect epoch

  // A straggler stamped with the dead epoch is fenced, not delivered.
  CtrlMsg stale = data_msg("stale");
  stale.src = 1;
  stale.dst = 2;
  stale.seq = 7;
  stale.conn_epoch = 1;
  net.send(std::move(stale), now);
  net.deliver_until(now + kSecond);
  EXPECT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.ch.stats().stale_discarded, 1u);
}

TEST(CtrlChannel, DeterministicReplay) {
  auto episode = [] {
    CtrlTransport net;
    FaultInjector fault(31);
    fault.set_probability(FaultPoint::kCtrlMsgDrop, 0.25);
    fault.set_probability(FaultPoint::kCtrlMsgDuplicate, 0.1);
    net.set_fault(&fault);
    Endpoint a(&net, 1, 2), b(&net, 2, 1);
    attach(net, 1, a);
    attach(net, 2, b);
    uint64_t now = 0;
    for (int i = 0; i < 100; ++i)
      a.ch.send(data_msg(std::to_string(i)), now);
    run(net, a, b, now, 60 * kSecond);
    return std::make_tuple(b.got.size(), a.ch.stats().retransmits,
                           net.stats().dropped, net.stats().duplicated);
  };
  EXPECT_EQ(episode(), episode());
}

}  // namespace
}  // namespace ovs
