// Tests for byte-level frame building and parsing.
#include "packet/parser.h"

#include <gtest/gtest.h>

namespace ovs {
namespace {

TEST(ParserTest, TcpIpv4RoundTrip) {
  TcpParams p;
  p.eth_src = EthAddr(0, 1, 2, 3, 4, 5);
  p.eth_dst = EthAddr(10, 11, 12, 13, 14, 15);
  p.ip_src = Ipv4(192, 168, 1, 1);
  p.ip_dst = Ipv4(10, 0, 0, 99);
  p.sport = 49152;
  p.dport = 443;
  p.flags = 0x02;  // SYN
  p.ttl = 63;
  p.tos = 0x10;
  RawFrame f = build_tcp_ipv4(p);

  auto key = parse_frame(f, 7);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->in_port(), 7u);
  EXPECT_EQ(key->eth_src(), p.eth_src);
  EXPECT_EQ(key->eth_dst(), p.eth_dst);
  EXPECT_EQ(key->eth_type(), ethertype::kIpv4);
  EXPECT_EQ(key->nw_src(), p.ip_src);
  EXPECT_EQ(key->nw_dst(), p.ip_dst);
  EXPECT_EQ(key->nw_proto(), ipproto::kTcp);
  EXPECT_EQ(key->nw_ttl(), 63);
  EXPECT_EQ(key->nw_tos(), 0x10);
  EXPECT_EQ(key->tp_src(), 49152);
  EXPECT_EQ(key->tp_dst(), 443);
  EXPECT_EQ(key->tcp_flags(), 0x02);
}

TEST(ParserTest, UdpIpv4RoundTrip) {
  UdpParams p;
  p.eth_src = EthAddr(1, 1, 1, 1, 1, 1);
  p.eth_dst = EthAddr(2, 2, 2, 2, 2, 2);
  p.ip_src = Ipv4(1, 2, 3, 4);
  p.ip_dst = Ipv4(5, 6, 7, 8);
  p.sport = 5353;
  p.dport = 53;
  p.payload_len = 100;
  RawFrame f = build_udp_ipv4(p);
  auto key = parse_frame(f, 1);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->nw_proto(), ipproto::kUdp);
  EXPECT_EQ(key->tp_src(), 5353);
  EXPECT_EQ(key->tp_dst(), 53);
  EXPECT_EQ(f.size(), 14u + 20 + 8 + 100);
}

TEST(ParserTest, VlanTagged) {
  TcpParams p;
  p.eth_src = EthAddr(1, 0, 0, 0, 0, 1);
  p.eth_dst = EthAddr(1, 0, 0, 0, 0, 2);
  p.ip_src = Ipv4(1, 1, 1, 1);
  p.ip_dst = Ipv4(2, 2, 2, 2);
  p.sport = 1;
  p.dport = 2;
  p.vlan = 100;
  RawFrame f = build_tcp_ipv4(p);
  auto key = parse_frame(f, 3);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->vlan_tci(), 100);
  EXPECT_EQ(key->eth_type(), ethertype::kIpv4);  // inner type after the tag
  EXPECT_EQ(key->tp_dst(), 2);
}

TEST(ParserTest, IcmpTypeCodeLandInTpFields) {
  IcmpParams p;
  p.eth_src = EthAddr(1, 0, 0, 0, 0, 1);
  p.eth_dst = EthAddr(1, 0, 0, 0, 0, 2);
  p.ip_src = Ipv4(1, 1, 1, 1);
  p.ip_dst = Ipv4(2, 2, 2, 2);
  p.type = 3;  // destination unreachable
  p.code = 4;  // fragmentation needed
  RawFrame f = build_icmp_ipv4(p);
  auto key = parse_frame(f, 1);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->nw_proto(), ipproto::kIcmp);
  // As in OVS, ICMP type/code share the transport-port fields.
  EXPECT_EQ(key->tp_src(), 3);
  EXPECT_EQ(key->tp_dst(), 4);
}

TEST(ParserTest, ArpRoundTrip) {
  ArpParams p;
  p.eth_src = EthAddr(1, 0, 0, 0, 0, 1);
  p.op = 1;
  p.spa = Ipv4(10, 0, 0, 1);
  p.tpa = Ipv4(10, 0, 0, 2);
  RawFrame f = build_arp(p);
  auto key = parse_frame(f, 2);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->eth_type(), ethertype::kArp);
  EXPECT_EQ(key->arp_op(), 1);
  EXPECT_EQ(key->nw_src(), p.spa);
  EXPECT_EQ(key->nw_dst(), p.tpa);
  EXPECT_TRUE(key->eth_dst().is_broadcast());
}

TEST(ParserTest, TcpIpv6RoundTrip) {
  TcpV6Params p;
  p.eth_src = EthAddr(1, 0, 0, 0, 0, 1);
  p.eth_dst = EthAddr(1, 0, 0, 0, 0, 2);
  p.ip_src = Ipv6(0x20010db800000001ULL, 0x1);
  p.ip_dst = Ipv6(0x20010db800000002ULL, 0x2);
  p.sport = 1000;
  p.dport = 22;
  RawFrame f = build_tcp_ipv6(p);
  auto key = parse_frame(f, 4);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->eth_type(), ethertype::kIpv6);
  EXPECT_EQ(key->ipv6_src(), p.ip_src);
  EXPECT_EQ(key->ipv6_dst(), p.ip_dst);
  EXPECT_EQ(key->nw_proto(), ipproto::kTcp);
  EXPECT_EQ(key->tp_dst(), 22);
}

TEST(ParserTest, TruncatedFramesRejected) {
  TcpParams p;
  p.ip_src = Ipv4(1, 1, 1, 1);
  p.ip_dst = Ipv4(2, 2, 2, 2);
  RawFrame f = build_tcp_ipv4(p);
  // Every truncation point up to the TCP header must be rejected, not
  // misparsed (the L4 header is required once IPv4 advertises TCP).
  for (size_t n = 0; n < 14 + 20 + 20; ++n) {
    RawFrame cut(f.begin(), f.begin() + static_cast<long>(n));
    EXPECT_FALSE(parse_frame(cut, 1).has_value()) << "len=" << n;
  }
  EXPECT_TRUE(parse_frame(f, 1).has_value());
}

TEST(ParserTest, NonIpEthertypeYieldsL2OnlyKey) {
  RawFrame f(14, 0);
  f[12] = 0x88;
  f[13] = 0xcc;  // LLDP
  auto key = parse_frame(f, 9);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->eth_type(), 0x88cc);
  EXPECT_EQ(key->nw_proto(), 0);
}

TEST(ParserTest, FragmentHasNoL4Header) {
  TcpParams p;
  p.ip_src = Ipv4(1, 1, 1, 1);
  p.ip_dst = Ipv4(2, 2, 2, 2);
  p.sport = 1234;
  p.dport = 80;
  RawFrame f = build_tcp_ipv4(p);
  // Set a nonzero fragment offset in the IPv4 header (bytes 20-21 of frame).
  f[14 + 6] = 0x00;
  f[14 + 7] = 0x10;  // offset 16
  auto key = parse_frame(f, 1);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->get(FieldId::kNwFrag), 1u);
  EXPECT_EQ(key->tp_src(), 0);  // later fragment: ports must not be parsed
  EXPECT_EQ(key->tp_dst(), 0);
}

TEST(ParserTest, ParseToPacketRecordsWireSize) {
  UdpParams p;
  p.ip_src = Ipv4(1, 1, 1, 1);
  p.ip_dst = Ipv4(2, 2, 2, 2);
  p.payload_len = 58;
  RawFrame f = build_udp_ipv4(p);
  auto pkt = parse_to_packet(f, 5);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->size_bytes, f.size());
  EXPECT_EQ(pkt->key.in_port(), 5u);
}

}  // namespace
}  // namespace ovs
