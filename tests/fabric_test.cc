// Integration tests for the multi-hypervisor tunnel fabric.
#include "net/fabric.h"

#include <gtest/gtest.h>

#include "sim/clock.h"

namespace ovs {
namespace {

// First VM of `tenant` on hypervisor `hv`.
const Fabric::Vm* vm_on(const Fabric& fab, uint64_t tenant, size_t hv) {
  for (const Fabric::Vm& v : fab.vms())
    if (v.tenant == tenant && v.hypervisor == hv) return &v;
  return nullptr;
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fab_(Fabric::Config{}) {}
  Fabric fab_;
  VirtualClock clock_;
};

TEST_F(FabricTest, LocalDelivery) {
  const Fabric::Vm* a = vm_on(fab_, 1, 0);
  // Second VM of tenant 1 on hypervisor 0.
  const Fabric::Vm* b = nullptr;
  for (const Fabric::Vm& v : fab_.vms())
    if (v.tenant == 1 && v.hypervisor == 0 && &v != a) b = &v;
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  auto d = fab_.send(*a, *b, 40000, 443, clock_.now());
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.dst_hypervisor, 0u);
  EXPECT_EQ(d.dst_port, b->port);
  EXPECT_EQ(d.tunnel_hops, 0u);
}

TEST_F(FabricTest, CrossHypervisorDeliveryViaTunnel) {
  const Fabric::Vm* a = vm_on(fab_, 1, 0);
  const Fabric::Vm* b = vm_on(fab_, 1, 2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  auto d = fab_.send(*a, *b, 40000, 443, clock_.now());
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.dst_hypervisor, 2u);
  EXPECT_EQ(d.dst_port, b->port);
  EXPECT_EQ(d.tunnel_hops, 1u);  // exactly one tunnel crossing
}

TEST_F(FabricTest, CrossTenantTrafficIsolated) {
  const Fabric::Vm* a = vm_on(fab_, 1, 0);
  const Fabric::Vm* b = vm_on(fab_, 2, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  auto d = fab_.send(*a, *b, 40000, 443, clock_.now());
  EXPECT_FALSE(d.delivered);
}

TEST_F(FabricTest, AclEnforcedAcrossTunnels) {
  // Tenant 1 has the SMTP ACL; it must hold for remote destinations too.
  const Fabric::Vm* a = vm_on(fab_, 1, 0);
  const Fabric::Vm* b = vm_on(fab_, 1, 1);
  EXPECT_FALSE(fab_.send(*a, *b, 40000, 25, clock_.now()).delivered);
  EXPECT_TRUE(fab_.send(*a, *b, 40000, 80, clock_.now()).delivered);
  // Tenant 2 has no ACL.
  const Fabric::Vm* c = vm_on(fab_, 2, 0);
  const Fabric::Vm* e = vm_on(fab_, 2, 1);
  EXPECT_TRUE(fab_.send(*c, *e, 40000, 25, clock_.now()).delivered);
}

TEST_F(FabricTest, RepeatTrafficHitsCaches) {
  const Fabric::Vm* a = vm_on(fab_, 2, 0);
  const Fabric::Vm* b = vm_on(fab_, 2, 1);
  fab_.send(*a, *b, 40000, 443, clock_.now());
  const uint64_t setups_src =
      fab_.hypervisor(0).counters().flow_setups;
  const uint64_t setups_dst =
      fab_.hypervisor(1).counters().flow_setups;
  // More connections along the same path: megaflows already cover them
  // (tenant 2 has no L4 ACL, so ports are wildcarded).
  for (uint16_t i = 0; i < 50; ++i)
    EXPECT_TRUE(
        fab_.send(*a, *b, static_cast<uint16_t>(41000 + i),
                  static_cast<uint16_t>(1000 + i), clock_.now())
            .delivered);
  EXPECT_EQ(fab_.hypervisor(0).counters().flow_setups, setups_src);
  EXPECT_EQ(fab_.hypervisor(1).counters().flow_setups, setups_dst);
}

TEST_F(FabricTest, MigrationReroutesTraffic) {
  const Fabric::Vm* a = vm_on(fab_, 1, 0);
  const Fabric::Vm* b = vm_on(fab_, 1, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  const size_t b_id = b->id;
  EXPECT_EQ(fab_.send(*a, *b, 40000, 443, clock_.now()).dst_hypervisor, 1u);

  // b migrates to hypervisor 2; the controller reprograms the fleet and
  // revalidators fix up stale cached flows.
  clock_.advance(kSecond);
  fab_.migrate(b_id, 2, clock_.now());
  fab_.tick(clock_.now());
  const Fabric::Vm& b_new = fab_.vms()[b_id];
  EXPECT_EQ(b_new.hypervisor, 2u);

  auto d = fab_.send(*a, b_new, 40001, 443, clock_.now());
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.dst_hypervisor, 2u);
  EXPECT_EQ(d.dst_port, b_new.port);
}

TEST_F(FabricTest, TunnelMegaflowsMatchTunnelId) {
  const Fabric::Vm* a = vm_on(fab_, 1, 0);
  const Fabric::Vm* b = vm_on(fab_, 1, 1);
  fab_.send(*a, *b, 40000, 443, clock_.now());
  // The receiving hypervisor's cache must key tunneled flows by tun_id
  // (ingress classification), so tenants stay isolated in the fast path.
  bool found_tunnel_flow = false;
  for (const MegaflowEntry* e : fab_.hypervisor(1).datapath().dump()) {
    if (e->match().mask.has_field(FieldId::kTunId)) {
      found_tunnel_flow = true;
      EXPECT_TRUE(e->match().mask.is_exact(FieldId::kTunId));
    }
  }
  EXPECT_TRUE(found_tunnel_flow);
}

TEST_F(FabricTest, FabricScalesToManyHypervisors) {
  Fabric::Config cfg;
  cfg.n_hypervisors = 8;
  cfg.n_tenants = 3;
  cfg.vms_per_tenant_per_hv = 1;
  Fabric fab(cfg);
  VirtualClock clock;
  // All-pairs traffic within tenant 2.
  size_t sent = 0, delivered = 0;
  for (const Fabric::Vm& s : fab.vms()) {
    if (s.tenant != 2) continue;
    for (const Fabric::Vm& t : fab.vms()) {
      if (t.tenant != 2 || t.id == s.id) continue;
      ++sent;
      delivered += fab.send(s, t, 50000, 8080, clock.now()).delivered;
    }
  }
  EXPECT_EQ(sent, delivered);
  EXPECT_GT(fab.total_flows(), 0u);
}

}  // namespace
}  // namespace ovs
