// Edge-case tests for the bounded fair upcall queue: empty-ring drains,
// take(0) / over-draining, exact quota boundaries, and round-robin cursor
// behavior. The storm-level fairness properties live in
// fault_injection_test.cc (UpcallFairnessTest); these pin the queue's
// low-level contract, which the switch's crash path (queue drain into loss
// counters) and the batched upcall handler both rely on.
#include <gtest/gtest.h>

#include <vector>

#include "vswitchd/upcall_queue.h"

namespace ovs {
namespace {

// Minimal upcall packet: routed by in_port; tp_src tags identity so tests
// can assert which packet came back out.
Packet upcall(uint32_t in_port, uint16_t id) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_tp_src(id);
  p.size_bytes = 64;
  return p;
}

TEST(UpcallFairnessQueueTest, DrainWithPopulatedRingButEmptyQueues) {
  FairUpcallQueue q;
  // Never-enqueued queue: the round-robin ring is empty.
  EXPECT_TRUE(q.take(8).empty());
  EXPECT_EQ(q.depth(), 0u);

  // Fill and fully drain two ports: the ring still holds both ports, but
  // every per-port queue is empty — take must return nothing, not spin.
  ASSERT_TRUE(q.enqueue(upcall(1, 10)));
  ASSERT_TRUE(q.enqueue(upcall(2, 20)));
  EXPECT_EQ(q.take(8).size(), 2u);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_TRUE(q.take(8).empty());
  EXPECT_EQ(q.ports().size(), 2u);  // ports stay known for accounting

  // A port known to the ring only through rejected enqueues (global cap 0)
  // must not trip the backlog scan either.
  UpcallQueueConfig zero_cap;
  zero_cap.global_cap = 0;
  FairUpcallQueue capped(zero_cap);
  EXPECT_FALSE(capped.enqueue(upcall(7, 70)));
  EXPECT_EQ(capped.ports().size(), 1u);
  EXPECT_TRUE(capped.take(1).empty());
  EXPECT_EQ(capped.port_counters(7).dropped_cap, 1u);
}

TEST(UpcallFairnessQueueTest, TakeZeroAndOverdrainLeaveCountersCoherent) {
  FairUpcallQueue q;
  for (uint16_t i = 0; i < 5; ++i) ASSERT_TRUE(q.enqueue(upcall(3, i)));

  // take(0) is a no-op: nothing dequeued, cursor and depths untouched.
  EXPECT_TRUE(q.take(0).empty());
  EXPECT_EQ(q.depth(), 5u);
  EXPECT_EQ(q.port_counters(3).dequeued, 0u);

  // Asking for more than the backlog returns exactly the backlog, in FIFO
  // order within the port.
  const std::vector<Packet> got = q.take(100);
  ASSERT_EQ(got.size(), 5u);
  for (uint16_t i = 0; i < 5; ++i) EXPECT_EQ(got[i].key.tp_src(), i);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.port_counters(3).dequeued, 5u);
  EXPECT_EQ(q.port_counters(3).enqueued, 5u);
  EXPECT_EQ(q.total_dropped(), 0u);
}

TEST(UpcallFairnessQueueTest, QuotaBoundaryReopensAfterDequeue) {
  UpcallQueueConfig cfg;
  cfg.per_port_quota = 3;
  cfg.global_cap = 64;
  FairUpcallQueue q(cfg);
  // Exactly quota enqueues land; the quota+1-th is dropped against the port.
  for (uint16_t i = 0; i < 3; ++i) ASSERT_TRUE(q.enqueue(upcall(5, i)));
  EXPECT_FALSE(q.enqueue(upcall(5, 99)));
  EXPECT_EQ(q.port_counters(5).dropped_quota, 1u);
  EXPECT_EQ(q.port_counters(5).depth, 3u);
  // Another port is unaffected by the full neighbor.
  EXPECT_TRUE(q.enqueue(upcall(6, 60)));

  // Draining one slot reopens the quota for exactly one more enqueue.
  EXPECT_EQ(q.take(1).size(), 1u);
  EXPECT_TRUE(q.enqueue(upcall(5, 100)));
  EXPECT_FALSE(q.enqueue(upcall(5, 101)));
  EXPECT_EQ(q.port_counters(5).dropped_quota, 2u);
}

TEST(UpcallFairnessQueueTest, SinglePortCannotHoldAllSlotsUnlessFifo) {
  UpcallQueueConfig cfg;
  cfg.per_port_quota = 4;
  cfg.global_cap = 16;
  FairUpcallQueue fair(cfg);
  size_t accepted = 0;
  for (uint16_t i = 0; i < 32; ++i)
    if (fair.enqueue(upcall(1, i))) ++accepted;
  // Fair mode: the flooding port is clamped at its quota, leaving the rest
  // of the global budget for everyone else.
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(fair.port_counters(1).dropped_quota, 28u);
  for (uint16_t i = 0; i < 4; ++i)
    EXPECT_TRUE(fair.enqueue(upcall(2, i)));  // victim gets its full quota
  EXPECT_FALSE(fair.enqueue(upcall(2, 99)));  // its own quota, not the cap
  EXPECT_EQ(fair.port_counters(2).dropped_quota, 1u);

  // FIFO ablation: the same flood owns the entire global budget.
  cfg.fair = false;
  FairUpcallQueue fifo(cfg);
  accepted = 0;
  for (uint16_t i = 0; i < 32; ++i)
    if (fifo.enqueue(upcall(1, i))) ++accepted;
  EXPECT_EQ(accepted, 16u);
  EXPECT_EQ(fifo.port_counters(1).dropped_cap, 16u);
  EXPECT_FALSE(fifo.enqueue(upcall(2, 0)));  // victim finds no room at all
  EXPECT_EQ(fifo.port_counters(2).dropped_cap, 1u);
}

TEST(UpcallFairnessQueueTest, RoundRobinResumesAfterLastServedPort) {
  FairUpcallQueue q;
  // Unequal backlogs: port 1 holds 3, port 2 holds 1, port 3 holds 2.
  ASSERT_TRUE(q.enqueue(upcall(1, 10)));
  ASSERT_TRUE(q.enqueue(upcall(1, 11)));
  ASSERT_TRUE(q.enqueue(upcall(1, 12)));
  ASSERT_TRUE(q.enqueue(upcall(2, 20)));
  ASSERT_TRUE(q.enqueue(upcall(3, 30)));
  ASSERT_TRUE(q.enqueue(upcall(3, 31)));

  // Single-slot takes must rotate ports — the cursor resumes after the
  // last port served rather than restarting at the ring head, so port 1
  // cannot be systematically first.
  auto next = [&]() {
    std::vector<Packet> v = q.take(1);
    return v.empty() ? uint32_t{0} : v[0].key.in_port();
  };
  EXPECT_EQ(next(), 1u);
  EXPECT_EQ(next(), 2u);
  EXPECT_EQ(next(), 3u);
  EXPECT_EQ(next(), 1u);
  EXPECT_EQ(next(), 3u);  // port 2 drained; skipped without stalling
  EXPECT_EQ(next(), 1u);
  EXPECT_EQ(q.depth(), 0u);

  // One batched take interleaves the same way.
  ASSERT_TRUE(q.enqueue(upcall(1, 13)));
  ASSERT_TRUE(q.enqueue(upcall(1, 14)));
  ASSERT_TRUE(q.enqueue(upcall(2, 21)));
  const std::vector<Packet> batch = q.take(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_NE(batch[0].key.in_port(), batch[1].key.in_port());
}

}  // namespace
}  // namespace ovs
