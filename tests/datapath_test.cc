// Tests for the simulated kernel datapath: two-level cache + upcalls (§4).
#include "datapath/datapath.h"

#include <gtest/gtest.h>

#include "packet/match.h"
#include "sim/clock.h"

namespace ovs {
namespace {

Packet tcp_pkt(Ipv4 dst, uint16_t sport, uint16_t dport) {
  Packet p;
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(1, 1, 1, 1));
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  p.size_bytes = 100;
  return p;
}

TEST(DatapathTest, MissQueuesUpcall) {
  Datapath dp;
  auto rx = dp.receive(tcp_pkt(Ipv4(9, 9, 9, 9), 1, 2), 0);
  EXPECT_EQ(rx.path, Datapath::Path::kMiss);
  EXPECT_EQ(rx.actions, nullptr);
  EXPECT_EQ(dp.upcall_queue_depth(), 1u);
  auto up = dp.take_upcalls(10);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].key.nw_dst(), Ipv4(9, 9, 9, 9));
  EXPECT_EQ(dp.upcall_queue_depth(), 0u);
}

TEST(DatapathTest, MegaflowThenMicroflowHit) {
  Datapath dp;
  Match m = MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 0, 0, 0), 8);
  dp.install(m, DpActions().output(2), 0);

  // First packet: megaflow hit (microflow cold), installs the EMC entry.
  auto rx1 = dp.receive(tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6), 10);
  EXPECT_EQ(rx1.path, Datapath::Path::kMegaflowHit);
  ASSERT_NE(rx1.actions, nullptr);
  EXPECT_EQ(rx1.actions->to_string(), "output:2");

  // Same microflow again: EMC hit.
  auto rx2 = dp.receive(tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6), 20);
  EXPECT_EQ(rx2.path, Datapath::Path::kMicroflowHit);

  // Different connection under the same megaflow: megaflow hit first.
  auto rx3 = dp.receive(tcp_pkt(Ipv4(9, 8, 7, 6), 50, 60), 30);
  EXPECT_EQ(rx3.path, Datapath::Path::kMegaflowHit);

  EXPECT_EQ(dp.stats().microflow_hits, 1u);
  EXPECT_EQ(dp.stats().megaflow_hits, 2u);
  EXPECT_EQ(dp.stats().misses, 0u);
}

TEST(DatapathTest, EntryStatsAccumulate) {
  Datapath dp;
  MegaflowEntry* e =
      dp.install(MatchBuilder().ip(), DpActions().output(1), 0);
  dp.receive(tcp_pkt(Ipv4(1, 2, 3, 4), 1, 2), 100);
  dp.receive(tcp_pkt(Ipv4(1, 2, 3, 4), 1, 2), 200);
  EXPECT_EQ(e->packets(), 2u);
  EXPECT_EQ(e->bytes(), 200u);
  EXPECT_EQ(e->used_ns(), 200u);
  EXPECT_EQ(e->created_ns(), 0u);
}

TEST(DatapathTest, DuplicateInstallReturnsExisting) {
  Datapath dp;
  Match m = MatchBuilder().ip().nw_dst(Ipv4(1, 1, 1, 1));
  MegaflowEntry* a = dp.install(m, DpActions().output(1), 0);
  MegaflowEntry* b = dp.install(m, DpActions().output(9), 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(dp.flow_count(), 1u);
  EXPECT_EQ(a->actions().to_string(), "output:1");  // not replaced
}

TEST(DatapathTest, StaleMicroflowEntryCorrectedOnUse) {
  // §6: "a stale microflow cache entry is detected and corrected the first
  // time a packet matches it".
  Datapath dp;
  Match m = MatchBuilder().ip().nw_dst(Ipv4(9, 1, 2, 3));
  MegaflowEntry* e = dp.install(m, DpActions().output(2), 0);
  dp.receive(tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6), 0);   // megaflow hit
  dp.receive(tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6), 1);   // EMC hit
  dp.remove(e);                                     // flow deleted
  auto rx = dp.receive(tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6), 2);
  EXPECT_EQ(rx.path, Datapath::Path::kMiss);  // EMC entry detected stale
  EXPECT_EQ(dp.stats().stale_microflow_hits, 1u);
  dp.purge_dead();
  auto rx2 = dp.receive(tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6), 3);
  EXPECT_EQ(rx2.path, Datapath::Path::kMiss);
}

TEST(DatapathTest, PurgeDeadSweepsMicroflowPointers) {
  Datapath dp;
  Match m = MatchBuilder().ip().nw_dst(Ipv4(9, 1, 2, 3));
  MegaflowEntry* e = dp.install(m, DpActions().output(2), 0);
  dp.receive(tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6), 0);
  dp.remove(e);
  // Purge without the EMC slot ever being revisited: must not crash and the
  // next packet must miss cleanly (the sweep cleared the slot).
  dp.purge_dead();
  auto rx = dp.receive(tcp_pkt(Ipv4(9, 1, 2, 3), 5, 6), 1);
  EXPECT_EQ(rx.path, Datapath::Path::kMiss);
}

TEST(DatapathTest, MicroflowDisabled) {
  DatapathConfig cfg;
  cfg.microflow_enabled = false;
  Datapath dp(cfg);
  dp.install(MatchBuilder().ip(), DpActions().output(1), 0);
  dp.receive(tcp_pkt(Ipv4(1, 1, 1, 1), 1, 2), 0);
  auto rx = dp.receive(tcp_pkt(Ipv4(1, 1, 1, 1), 1, 2), 1);
  EXPECT_EQ(rx.path, Datapath::Path::kMegaflowHit);  // never EMC
  EXPECT_EQ(dp.stats().microflow_hits, 0u);
}

TEST(DatapathTest, TuplesSearchedCountsMasks) {
  DatapathConfig cfg;
  cfg.microflow_enabled = false;
  Datapath dp(cfg);
  // Three distinct masks -> up to 3 hash tables probed per packet.
  dp.install(MatchBuilder().ip().nw_dst(Ipv4(1, 1, 1, 1)), DpActions(), 0);
  dp.install(MatchBuilder().ip().nw_dst_prefix(Ipv4(2, 0, 0, 0), 8),
             DpActions().output(1), 0);
  dp.install(MatchBuilder().arp(), DpActions().output(2), 0);
  EXPECT_EQ(dp.mask_count(), 3u);
  auto rx = dp.receive(tcp_pkt(Ipv4(7, 7, 7, 7), 1, 2), 0);  // matches none
  EXPECT_EQ(rx.path, Datapath::Path::kMiss);
  EXPECT_EQ(rx.tuples_searched, 3u);
}

TEST(DatapathTest, UpcallQueueOverflowDrops) {
  DatapathConfig cfg;
  cfg.max_upcall_queue = 4;
  Datapath dp(cfg);
  for (uint16_t i = 0; i < 10; ++i)
    dp.receive(tcp_pkt(Ipv4(9, 9, 9, 9), i, 80), 0);
  EXPECT_EQ(dp.upcall_queue_depth(), 4u);
  EXPECT_EQ(dp.stats().upcall_drops, 6u);
}

TEST(DatapathTest, UpdateActionsInPlace) {
  Datapath dp;
  MegaflowEntry* e =
      dp.install(MatchBuilder().ip(), DpActions().output(1), 0);
  dp.update_actions(e, DpActions().output(5));
  auto rx = dp.receive(tcp_pkt(Ipv4(1, 1, 1, 1), 1, 2), 0);
  ASSERT_NE(rx.actions, nullptr);
  EXPECT_EQ(rx.actions->to_string(), "output:5");
}

TEST(DatapathTest, DumpReturnsLiveEntriesOnly) {
  Datapath dp;
  MegaflowEntry* a =
      dp.install(MatchBuilder().ip().nw_dst(Ipv4(1, 1, 1, 1)),
                 DpActions().output(1), 0);
  dp.install(MatchBuilder().ip().nw_dst(Ipv4(2, 2, 2, 2)),
             DpActions().output(2), 0);
  EXPECT_EQ(dp.dump().size(), 2u);
  dp.remove(a);
  EXPECT_EQ(dp.dump().size(), 1u);
  EXPECT_EQ(dp.flow_count(), 1u);
}

TEST(DatapathTest, ManyConnectionsChurnEmc) {
  // Fill the EMC well past capacity; pseudo-random replacement must keep the
  // cache functional (no crashes, hits still possible).
  DatapathConfig cfg;
  cfg.microflow_sets = 64;
  cfg.microflow_ways = 2;
  Datapath dp(cfg);
  dp.install(MatchBuilder().ip(), DpActions().output(1), 0);
  for (uint32_t i = 0; i < 10000; ++i) {
    Packet p = tcp_pkt(Ipv4(0x0a000000u + (i % 997)), (uint16_t)(i % 63001),
                       80);
    dp.receive(p, i);
  }
  // Re-inject a recent microflow: should often hit the EMC.
  dp.reset_stats();
  for (uint32_t i = 9990; i < 10000; ++i) {
    Packet p = tcp_pkt(Ipv4(0x0a000000u + (i % 997)), (uint16_t)(i % 63001),
                       80);
    dp.receive(p, 20000 + i);
  }
  EXPECT_GT(dp.stats().microflow_hits + dp.stats().megaflow_hits, 0u);
  EXPECT_EQ(dp.stats().misses, 0u);
}

}  // namespace
}  // namespace ovs
