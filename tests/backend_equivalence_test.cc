// Backend equivalence property tests: the same trace driven through a
// Switch over the single-threaded Datapath and a Switch over the sharded
// multi-worker datapath must produce the same control-plane outcome — the
// identical megaflow set (match + actions), the same flow setups, the same
// forwarding counters and port statistics. Only *where* cache hits land
// (EMC shard vs shared megaflow table) may differ between backends.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datapath/dp_check.h"
#include "sim/clock.h"
#include "test_util.h"
#include "util/rng.h"
#include "vswitchd/switch.h"

namespace ovs {
namespace {

using testutil::canonical_flows;
using testutil::tcp_pkt;

SwitchConfig make_config(size_t workers) {
  SwitchConfig cfg;
  cfg.datapath_workers = workers;
  return cfg;
}

void install_rules(Switch& sw) {
  for (uint32_t port = 1; port <= 8; ++port) sw.add_port(port);
  for (uint32_t i = 0; i < 8; ++i)
    sw.table(0).add_flow(
        MatchBuilder().ip().nw_dst_prefix(
            Ipv4(static_cast<uint8_t>(10 + i), 0, 0, 0), 8),
        10, OfActions().output(i % 8 + 1));
  // Narrower megaflows for one prefix: L4-sensitive rule.
  sw.table(0).add_flow(MatchBuilder().tcp().tp_dst(443), 20,
                       OfActions().output(7));
}

// The randomized trace: connection pool with churn, periodic upcall
// handling and maintenance, and a mid-trace flow-table change so
// revalidation has real repairs to publish on both backends.
void drive_trace(Switch& sw, uint64_t seed, size_t n_pkts, size_t rx_batch) {
  Rng rng(seed);
  struct Conn {
    Ipv4 src, dst;
    uint16_t sport, dport;
    uint32_t in_port;
  };
  std::vector<Conn> conns;
  for (size_t i = 0; i < 64; ++i) {
    conns.push_back({Ipv4(1, 1, 1, static_cast<uint8_t>(rng.uniform(250))),
                     Ipv4(static_cast<uint8_t>(10 + rng.uniform(8)),
                          static_cast<uint8_t>(rng.uniform(250)), 0, 5),
                     static_cast<uint16_t>(1024 + rng.uniform(30000)),
                     rng.chance(0.2) ? uint16_t{443}
                                     : static_cast<uint16_t>(80),
                     static_cast<uint32_t>(1 + rng.uniform(8))});
  }

  VirtualClock clock;
  std::vector<Packet> burst;
  for (size_t i = 0; i < n_pkts; ++i) {
    if (rng.chance(0.02))  // connection churn
      conns[rng.uniform(conns.size())] = {
          Ipv4(1, 1, 1, static_cast<uint8_t>(rng.uniform(250))),
          Ipv4(static_cast<uint8_t>(10 + rng.uniform(8)),
               static_cast<uint8_t>(rng.uniform(250)), 0, 5),
          static_cast<uint16_t>(1024 + rng.uniform(30000)),
          static_cast<uint16_t>(80),
          static_cast<uint32_t>(1 + rng.uniform(8))};
    const Conn& c = conns[rng.uniform(conns.size())];
    const Packet p = tcp_pkt(c.in_port, c.src, c.dst, c.sport, c.dport);
    if (rx_batch > 1) {
      burst.push_back(p);
      if (burst.size() == rx_batch) {
        sw.inject_batch(burst, clock.now());
        burst.clear();
        sw.handle_upcalls(clock.now());
      }
    } else {
      sw.inject(p, clock.now());
      if ((i & 31) == 31) sw.handle_upcalls(clock.now());
    }
    clock.advance(50'000);  // 50 us between packets
    if ((i & 511) == 511) sw.run_maintenance(clock.now());
    if (i == n_pkts / 2) {
      // Reroute one /8 mid-trace: revalidation must repair the installed
      // megaflows identically on both backends (same-shape action update).
      sw.table(0).add_flow(
          MatchBuilder().ip().nw_dst_prefix(Ipv4(12, 0, 0, 0), 8), 15,
          OfActions().output(5));
    }
  }
  if (!burst.empty()) sw.inject_batch(burst, clock.now());
  sw.handle_upcalls(clock.now());
  sw.run_maintenance(clock.now());
}

void expect_equivalent(Switch& a, Switch& b) {
  EXPECT_EQ(canonical_flows(a), canonical_flows(b));
  // Every replayed trace must also leave both caches invariant-clean
  // (pairwise-disjoint megaflows, coherent EMC, conserved stats).
  EXPECT_TRUE(run_dp_check(a.backend()).ok());
  EXPECT_TRUE(run_dp_check(b.backend()).ok());
  EXPECT_EQ(a.backend().flow_count(), b.backend().flow_count());
  EXPECT_EQ(a.counters().flow_setups, b.counters().flow_setups);
  EXPECT_EQ(a.counters().setup_dups, b.counters().setup_dups);
  EXPECT_EQ(a.counters().tx_packets, b.counters().tx_packets);
  EXPECT_EQ(a.counters().tx_bytes, b.counters().tx_bytes);
  EXPECT_EQ(a.counters().to_controller, b.counters().to_controller);
  EXPECT_EQ(a.counters().upcalls_handled, b.counters().upcalls_handled);
  EXPECT_EQ(a.counters().reval_updated_actions,
            b.counters().reval_updated_actions);
  EXPECT_EQ(a.counters().reval_deleted_stale,
            b.counters().reval_deleted_stale);
  const Datapath::Stats sa = a.backend().stats();
  const Datapath::Stats sb = b.backend().stats();
  EXPECT_EQ(sa.packets, sb.packets);
  EXPECT_EQ(sa.misses, sb.misses);
  // EMC vs megaflow hit split legitimately differs (per-worker shards),
  // but every packet that is not a miss is a hit on both backends.
  EXPECT_EQ(sa.microflow_hits + sa.megaflow_hits,
            sb.microflow_hits + sb.megaflow_hits);
  for (uint32_t port = 1; port <= 8; ++port) {
    EXPECT_EQ(a.port_stats(port).tx_packets, b.port_stats(port).tx_packets)
        << "port " << port;
    EXPECT_EQ(a.port_stats(port).tx_bytes, b.port_stats(port).tx_bytes)
        << "port " << port;
  }
}

TEST(BackendEquivalence, PerPacketTrace) {
  Switch single(make_config(0));
  Switch sharded(make_config(4));
  install_rules(single);
  install_rules(sharded);
  drive_trace(single, 0xE9, 6000, 1);
  drive_trace(sharded, 0xE9, 6000, 1);
  EXPECT_EQ(single.backend().n_workers(), 1u);
  EXPECT_EQ(sharded.backend().n_workers(), 4u);
  ASSERT_NE(single.backend().flow_count(), 0u);
  expect_equivalent(single, sharded);
}

TEST(BackendEquivalence, BatchedTrace) {
  SwitchConfig c0 = make_config(0);
  SwitchConfig c4 = make_config(4);
  c0.rx_batch = c4.rx_batch = 32;
  Switch single(c0);
  Switch sharded(c4);
  install_rules(single);
  install_rules(sharded);
  drive_trace(single, 0x5EED, 6000, 32);
  drive_trace(sharded, 0x5EED, 6000, 32);
  ASSERT_NE(single.backend().flow_count(), 0u);
  expect_equivalent(single, sharded);
}

TEST(BackendEquivalence, SeedSweep) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Switch single(make_config(0));
    Switch sharded(make_config(2));
    install_rules(single);
    install_rules(sharded);
    drive_trace(single, seed, 2000, 1);
    drive_trace(sharded, seed, 2000, 1);
    expect_equivalent(single, sharded);
  }
}

}  // namespace
}  // namespace ovs
