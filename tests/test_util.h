// Shared helpers for the test suites: an owning rule wrapper and naive
// linear reference classifier, random rule/packet generators, and the
// packet/trace builders the switch-level equivalence and recovery suites
// replay. Keep these header-only and deterministic: equivalence tests
// replay the same traces across backends and configurations, so a helper
// that drifts between suites silently weakens the comparison.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "classifier/classifier.h"
#include "packet/match.h"
#include "util/rng.h"
#include "vswitchd/switch.h"

namespace ovs::testutil {

// Switch-level TCP packet: a full 5-tuple with the ethernet source keyed by
// the ingress port (so MAC learning sees distinct hosts per port).
inline Packet tcp_pkt(uint32_t in_port, Ipv4 src, Ipv4 dst, uint16_t sport,
                      uint16_t dport) {
  Packet p;
  p.key.set_in_port(in_port);
  p.key.set_eth_src(EthAddr(0, 0, 0, 0, 0, static_cast<uint8_t>(in_port)));
  p.key.set_eth_dst(EthAddr(0, 0, 0, 0, 0, 0x99));
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(src);
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  p.size_bytes = 100;
  return p;
}

// Datapath-level TCP packet: no port/ethernet addressing — raw cache-layer
// tests key entirely off the L3/L4 fields. The size varies with sport so
// byte counters catch misattributed packets, not just miscounted ones.
inline Packet dp_tcp_pkt(Ipv4 dst, uint16_t sport, uint16_t dport) {
  Packet p;
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  p.key.set_nw_src(Ipv4(2, 2, 2, 2));
  p.key.set_nw_dst(dst);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  p.size_bytes = 60 + sport % 1400;
  return p;
}

// Canonical rendering of the installed megaflow set, sorted so two caches
// compare equal regardless of dump order (which differs across backends
// and install interleavings).
inline std::vector<std::string> canonical_flows(const Switch& sw) {
  std::vector<std::string> out;
  const DpBackend& be = sw.backend();
  for (DpBackend::FlowRef f : be.dump())
    out.push_back(be.flow_match(f).to_string() + " -> " +
                  be.flow_actions(f).to_string());
  std::sort(out.begin(), out.end());
  return out;
}

// A rule that is its own payload; `id` identifies it in test assertions.
struct TestRule : Rule {
  TestRule(Match m, int32_t priority, int id_in = 0)
      : Rule(m, priority), id(id_in) {}
  int id;
};

// Owns rules and keeps a classifier and a linear oracle in sync.
class RuleSet {
 public:
  explicit RuleSet(ClassifierConfig cfg = {}) : cls_(cfg) {}

  TestRule* add(const Match& m, int32_t priority, int id = 0) {
    auto r = std::make_unique<TestRule>(m, priority, id);
    TestRule* raw = r.get();
    cls_.insert(raw);
    rules_.push_back(std::move(r));
    return raw;
  }

  void remove(TestRule* r) {
    cls_.remove(r);
    for (auto it = rules_.begin(); it != rules_.end(); ++it) {
      if (it->get() == r) {
        rules_.erase(it);
        return;
      }
    }
  }

  // Linear scan oracle: highest priority wins; ties broken by lowest id so
  // the oracle is deterministic (tests use unique priorities when the tie
  // rule matters).
  const TestRule* naive_lookup(const FlowKey& pkt) const {
    const TestRule* best = nullptr;
    for (const auto& r : rules_) {
      if (!r->in_classifier()) continue;
      if (!r->match().matches(pkt)) continue;
      if (best == nullptr || r->priority() > best->priority() ||
          (r->priority() == best->priority() && r->id < best->id))
        best = r.get();
    }
    return best;
  }

  Classifier& classifier() { return cls_; }
  const std::vector<std::unique_ptr<TestRule>>& rules() const {
    return rules_;
  }

 private:
  Classifier cls_;
  std::vector<std::unique_ptr<TestRule>> rules_;
};

// Random match generator over a small value alphabet so that packets
// actually hit rules. Masks are drawn from a fixed set of shapes so that
// tuples are shared between rules, like real OpenFlow tables.
inline Match random_match(Rng& rng) {
  MatchBuilder b;
  switch (rng.uniform(12)) {
    case 0:
      b.eth_type_arp();
      break;
    case 1:
      b.eth_src(EthAddr(rng.range(1, 4)));
      break;
    case 2:
      b.eth_dst(EthAddr(rng.range(1, 4))).eth_type_ipv4();
      break;
    case 3:
      b.ip().nw_dst_prefix(Ipv4(static_cast<uint32_t>(rng.next())),
                           static_cast<unsigned>(rng.range(8, 32)));
      break;
    case 4:
      b.ip().nw_src_prefix(Ipv4(10, 0, static_cast<uint8_t>(rng.uniform(4)),
                                static_cast<uint8_t>(rng.uniform(4))),
                           static_cast<unsigned>(rng.range(16, 32)));
      break;
    case 5:
      b.tcp().tp_dst(static_cast<uint16_t>(rng.range(1, 5)));
      break;
    case 6:
      b.udp().tp_src(static_cast<uint16_t>(rng.range(1, 5)));
      break;
    case 7:
      b.in_port(static_cast<uint32_t>(rng.range(1, 4)));
      break;
    case 8:
      b.metadata(rng.range(1, 3)).ip();
      break;
    case 9:
      b.eth_type_ipv6().ipv6_dst_prefix(
          Ipv6(0x2001'0db8'0000'0000ULL | rng.uniform(4), rng.uniform(4)),
          static_cast<unsigned>(rng.range(16, 128)));
      break;
    case 10:
      b.eth_type_ipv6()
          .nw_proto(ipproto::kTcp)
          .tp_dst(static_cast<uint16_t>(rng.range(1, 5)));
      break;
    default:
      b.tcp()
          .nw_dst(Ipv4(10, 0, static_cast<uint8_t>(rng.uniform(4)),
                       static_cast<uint8_t>(rng.uniform(4))))
          .tp_dst(static_cast<uint16_t>(rng.range(1, 5)));
      break;
  }
  return b.build();
}

// Random packet over the same small alphabet.
inline FlowKey random_packet(Rng& rng) {
  FlowKey k;
  k.set_in_port(static_cast<uint32_t>(rng.range(1, 4)));
  k.set_metadata(rng.uniform(4));
  k.set_eth_src(EthAddr(rng.range(1, 5)));
  k.set_eth_dst(EthAddr(rng.range(1, 5)));
  switch (rng.uniform(5)) {
    case 0:
      k.set_eth_type(ethertype::kArp);
      k.set_arp_op(static_cast<uint16_t>(rng.range(1, 2)));
      break;
    case 1:
      k.set_eth_type(ethertype::kIpv4);
      k.set_nw_proto(ipproto::kTcp);
      break;
    case 2:
      k.set_eth_type(ethertype::kIpv4);
      k.set_nw_proto(ipproto::kUdp);
      break;
    case 3:
      k.set_eth_type(ethertype::kIpv6);
      k.set_nw_proto(ipproto::kTcp);
      k.set_ipv6_src(Ipv6(0x2001'0db8'0000'0000ULL | rng.uniform(4),
                          rng.uniform(4)));
      k.set_ipv6_dst(Ipv6(0x2001'0db8'0000'0000ULL | rng.uniform(4),
                          rng.uniform(4)));
      break;
    default:
      k.set_eth_type(ethertype::kIpv4);
      k.set_nw_proto(ipproto::kIcmp);
      break;
  }
  if (k.eth_type() == ethertype::kIpv6) {
    k.set_tp_src(static_cast<uint16_t>(rng.range(1, 6)));
    k.set_tp_dst(static_cast<uint16_t>(rng.range(1, 6)));
  }
  if (k.eth_type() == ethertype::kIpv4) {
    k.set_nw_src(Ipv4(10, 0, static_cast<uint8_t>(rng.uniform(4)),
                      static_cast<uint8_t>(rng.uniform(4))));
    k.set_nw_dst(rng.chance(0.5)
                     ? Ipv4(10, 0, static_cast<uint8_t>(rng.uniform(4)),
                            static_cast<uint8_t>(rng.uniform(4)))
                     : Ipv4(static_cast<uint32_t>(rng.next())));
    if (k.nw_proto() == ipproto::kTcp || k.nw_proto() == ipproto::kUdp) {
      k.set_tp_src(static_cast<uint16_t>(rng.range(1, 6)));
      k.set_tp_dst(static_cast<uint16_t>(rng.range(1, 6)));
    } else {
      k.set_tp_src(static_cast<uint16_t>(rng.uniform(4)));  // icmp type
      k.set_tp_dst(static_cast<uint16_t>(rng.uniform(2)));  // icmp code
    }
  }
  return k;
}

}  // namespace ovs::testutil
