#include "datapath/datapath.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "util/fault.h"

namespace ovs {

namespace {

ClassifierConfig kernel_classifier_config() {
  // The kernel classifier is deliberately simple (§4.2): no priorities (it
  // "can terminate as soon as it finds any match"), no staged lookup, no
  // tries, no partitions — just a list of per-mask hash tables.
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.first_match_only = true;
  return cfg;
}

}  // namespace

Datapath::Datapath(DatapathConfig cfg)
    : cfg_(cfg),
      mega_(kernel_classifier_config()),
      micro_(cfg.microflow_sets * cfg.microflow_ways),
      rng_(cfg.seed) {
  if (cfg_.use_concurrent_emc)
    cemc_ = std::make_unique<ConcurrentEmc>(cfg_.microflow_sets *
                                            cfg_.microflow_ways);
  if (cfg_.offload_slots > 0)
    off_ = std::make_unique<OffloadTable>(cfg_.offload_slots);
}

Datapath::~Datapath() = default;

MegaflowEntry* Datapath::microflow_lookup(const FlowKey& key,
                                          uint64_t hash) noexcept {
  if (cemc_ != nullptr) {
    const std::optional<uint64_t> v = cemc_->lookup(hash);
    if (!v.has_value()) return nullptr;
    auto* e = reinterpret_cast<MegaflowEntry*>(*v);
    // "A stale microflow cache entry is detected and corrected the first
    // time a packet matches it" (§6): validate against the megaflow.
    if (e->dead() || !e->match().matches(key)) {
      cemc_->invalidate(hash);
      ++stats_.stale_microflow_hits;
      return nullptr;
    }
    return e;
  }
  const size_t set = (hash >> 32) & (cfg_.microflow_sets - 1);
  for (size_t w = 0; w < cfg_.microflow_ways; ++w) {
    MicroSlot& slot = micro_[set * cfg_.microflow_ways + w];
    if (slot.entry == nullptr || slot.hash != hash) continue;
    MegaflowEntry* e = slot.entry;
    if (e->dead() || !e->match().matches(key)) {
      slot.entry = nullptr;
      ++stats_.stale_microflow_hits;
      return nullptr;
    }
    return e;
  }
  return nullptr;
}

void Datapath::microflow_insert(uint64_t hash, MegaflowEntry* entry) noexcept {
  // Probabilistic insertion (§7.3's churn mitigation, OVS
  // emc-insert-inv-prob): under microflow churn most EMC entries are used
  // exactly once, so inserting 1-in-N keeps the hot working set resident
  // instead of letting one-shot flows evict it.
  if (cfg_.emc_insert_inv_prob > 1 &&
      rng_.uniform(cfg_.emc_insert_inv_prob) != 0) {
    ++stats_.emc_insert_skips;
    return;
  }
  ++stats_.emc_inserts;
  if (cemc_ != nullptr) {
    cemc_->install(hash, reinterpret_cast<uint64_t>(entry));
    return;
  }
  const size_t set = (hash >> 32) & (cfg_.microflow_sets - 1);
  // Prefer an empty or same-hash way; otherwise pseudo-random replacement
  // ("we use a pseudo-random replacement policy, for simplicity", §6).
  for (size_t w = 0; w < cfg_.microflow_ways; ++w) {
    MicroSlot& slot = micro_[set * cfg_.microflow_ways + w];
    if (slot.entry == nullptr || slot.hash == hash) {
      slot = {hash, entry};
      return;
    }
  }
  const size_t w = rng_.uniform(cfg_.microflow_ways);
  micro_[set * cfg_.microflow_ways + w] = {hash, entry};
}

void Datapath::deliver_upcall(Packet&& pkt) {
  if (sink_) {
    if (!sink_(std::move(pkt))) ++stats_.upcall_drops;
    return;
  }
  if (upcalls_.size() >= cfg_.max_upcall_queue) {
    ++stats_.upcall_drops;
  } else {
    upcalls_.push_back(std::move(pkt));
  }
}

void Datapath::enqueue_upcall(const Packet& pkt) {
  if (fault_ != nullptr) {
    if (fault_->should_fire(FaultPoint::kUpcallDrop)) {
      ++stats_.upcall_drops;
      return;
    }
    if (fault_->should_fire(FaultPoint::kUpcallDelay)) {
      ++stats_.upcalls_delayed;
      delayed_.push_back(pkt);
      return;
    }
    if (fault_->should_fire(FaultPoint::kUpcallDuplicate)) {
      ++stats_.upcall_dup_enqueues;
      deliver_upcall(Packet(pkt));
    }
  }
  deliver_upcall(Packet(pkt));
}

size_t Datapath::flush_delayed_upcalls() {
  const size_t n = delayed_.size();
  std::vector<Packet> parked;
  parked.swap(delayed_);
  for (Packet& p : parked) deliver_upcall(std::move(p));
  return n;
}

Datapath::RxResult Datapath::receive(const Packet& pkt, uint64_t now_ns) {
  ++stats_.packets;
  RxResult res;

  // NIC offload tier, consulted before any software cache (§13). A hit
  // forwards from the slot's action *snapshot* — exactly what programmed
  // hardware would do — and still credits the owning megaflow's statistics
  // so idle expiry and the placement EWMA see the traffic.
  if (off_ != nullptr) {
    if (const OffloadTable::Entry* oe = off_->probe(pkt.key)) {
      oe->counters->hits.fetch_add(1, std::memory_order_relaxed);
      oe->counters->bytes.fetch_add(pkt.size_bytes,
                                    std::memory_order_relaxed);
      auto* e = static_cast<MegaflowEntry*>(oe->owner);
      e->packets_ += 1;
      e->bytes_ += pkt.size_bytes;
      e->used_ns_ = now_ns;
      ++stats_.offload_hits;
      return {Path::kOffloadHit, &oe->actions, 0};
    }
  }

  const uint64_t hash = pkt.key.hash();
  if (cfg_.microflow_enabled) {
    if (MegaflowEntry* e = microflow_lookup(pkt.key, hash)) {
      e->packets_ += 1;
      e->bytes_ += pkt.size_bytes;
      e->used_ns_ = now_ns;
      ++stats_.microflow_hits;
      // The hinted megaflow's hash table counts as the single table probed.
      stats_.tuples_searched += 1;
      res = {Path::kMicroflowHit, &e->actions(), 1};
      return res;
    }
  }

  uint32_t searched = 0;
  const Rule* r = mega_.lookup(pkt.key, nullptr, &searched);
  stats_.tuples_searched += searched;
  if (r != nullptr) {
    auto* e = const_cast<MegaflowEntry*>(static_cast<const MegaflowEntry*>(r));
    e->packets_ += 1;
    e->bytes_ += pkt.size_bytes;
    e->used_ns_ = now_ns;
    ++stats_.megaflow_hits;
    if (cfg_.microflow_enabled) microflow_insert(hash, e);
    res = {Path::kMegaflowHit, &e->actions(), searched};
    return res;
  }

  ++stats_.misses;
  enqueue_upcall(pkt);
  res = {Path::kMiss, nullptr, searched};
  return res;
}

// One chunk (n <= kMaxBatch) of the batched fast path. The dance, in order:
//
//   1. hash every flow key once;
//   2. group packets by microflow (same hash + same key) — only the first
//      packet of each group (the "leader") probes the caches;
//   3. leaders walk EMC -> megaflow -> miss exactly like receive();
//   4. followers inherit their leader's outcome: a hit leader makes every
//      follower a microflow hit (sequentially, the leader's EMC insert would
//      have been hit by each follower), a missing leader makes each follower
//      its own upcall (nothing was installed in between);
//   5. per-megaflow statistics are bumped once per matched entry with the
//      group's packet/byte totals.
void Datapath::process_chunk(const Packet* pkts, size_t n, uint64_t now_ns,
                             RxResult* results, BatchSummary& summary) {
  uint64_t hashes[kMaxBatch];
  uint16_t leader[kMaxBatch];         // index of the packet's group leader
  MegaflowEntry* entry[kMaxBatch];    // leader slots: matched megaflow
  const OffloadTable::Entry* offl[kMaxBatch];  // leader slots: NIC slot hit
  uint16_t leaders[kMaxBatch];        // indices of unique microflow leaders
  size_t n_leaders = 0;

  stats_.packets += n;
  summary.packets += static_cast<uint32_t>(n);

  for (size_t i = 0; i < n; ++i) hashes[i] = pkts[i].key.hash();

  // Microflow grouping. Bursts are small (<= 256) and the leader list is
  // typically much smaller, so a linear scan with a hash prefilter beats a
  // hash table here.
  for (size_t i = 0; i < n; ++i) {
    leader[i] = static_cast<uint16_t>(i);
    for (size_t l = 0; l < n_leaders; ++l) {
      const size_t j = leaders[l];
      if (hashes[j] == hashes[i] && pkts[j].key == pkts[i].key) {
        leader[i] = static_cast<uint16_t>(j);
        break;
      }
    }
    if (leader[i] == i) leaders[n_leaders++] = static_cast<uint16_t>(i);
  }

  // Leaders probe the caches; followers resolve against their leader (whose
  // index is always smaller, so a single in-order pass suffices).
  for (size_t i = 0; i < n; ++i) {
    if (leader[i] != i) {
      const RxResult& lr = results[leader[i]];
      if (lr.path == Path::kOffloadHit) {
        // Hardware would have matched this packet the same way; no software
        // cache is consulted.
        ++stats_.offload_hits;
        ++summary.offload_hits;
        results[i] = {Path::kOffloadHit, lr.actions, 0};
        continue;
      }
      if (entry[leader[i]] != nullptr) {
        if (cfg_.microflow_enabled) {
          // Sequentially this packet would have hit the EMC entry the
          // leader installed (or re-used); no table is physically probed.
          ++stats_.microflow_hits;
          results[i] = {Path::kMicroflowHit, lr.actions, 0};
        } else {
          // No EMC: sequentially this would have been its own (identical)
          // classifier search. Dedup skips the probe but keeps the class.
          ++stats_.megaflow_hits;
          results[i] = {Path::kMegaflowHit, lr.actions, 0};
        }
      } else {
        ++stats_.misses;
        ++summary.misses;
        enqueue_upcall(pkts[i]);
        results[i] = {Path::kMiss, nullptr, 0};
      }
      continue;
    }

    entry[i] = nullptr;
    offl[i] = nullptr;
    if (off_ != nullptr) {
      ++summary.offload_probes;
      if (const OffloadTable::Entry* oe = off_->probe(pkts[i].key)) {
        ++stats_.offload_hits;
        ++summary.offload_hits;
        // The owning megaflow's stats are bumped in the group pass below,
        // via entry[]; the slot's own counters are credited there too.
        offl[i] = oe;
        entry[i] = static_cast<MegaflowEntry*>(oe->owner);
        results[i] = {Path::kOffloadHit, &oe->actions, 0};
        continue;
      }
    }
    if (cfg_.microflow_enabled) {
      ++summary.emc_probes;
      if (MegaflowEntry* e = microflow_lookup(pkts[i].key, hashes[i])) {
        ++stats_.microflow_hits;
        stats_.tuples_searched += 1;
        summary.tuples_searched += 1;
        entry[i] = e;
        results[i] = {Path::kMicroflowHit, &e->actions(), 1};
        continue;
      }
    }

    uint32_t searched = 0;
    const Rule* r = mega_.lookup(pkts[i].key, nullptr, &searched);
    ++summary.megaflow_lookups;
    stats_.tuples_searched += searched;
    summary.tuples_searched += searched;
    if (r != nullptr) {
      auto* e =
          const_cast<MegaflowEntry*>(static_cast<const MegaflowEntry*>(r));
      ++stats_.megaflow_hits;
      if (cfg_.microflow_enabled) microflow_insert(hashes[i], e);
      entry[i] = e;
      results[i] = {Path::kMegaflowHit, &e->actions(), searched};
    } else {
      ++stats_.misses;
      ++summary.misses;
      enqueue_upcall(pkts[i]);
      results[i] = {Path::kMiss, nullptr, searched};
    }
  }

  // Group statistics: one packets/bytes/used update per matched megaflow.
  // Distinct microflows may share a megaflow, so accumulate over leaders
  // first (the leader list is small; quadratic dedup over it is cheap).
  for (size_t l = 0; l < n_leaders; ++l) {
    MegaflowEntry* e = entry[leaders[l]];
    if (e == nullptr) continue;
    bool first = true;
    for (size_t m = 0; m < l; ++m) {
      if (entry[leaders[m]] == e) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    ++summary.groups;
    uint64_t pkt_count = 0, byte_count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (entry[leader[i]] == e) {
        ++pkt_count;
        byte_count += pkts[i].size_bytes;
      }
    }
    e->packets_ += pkt_count;
    e->bytes_ += byte_count;
    e->used_ns_ = now_ns;  // matches receive(): last write wins
    // An offload-absorbed group also credits its NIC slot's counters (one
    // slot per megaflow, so the group's first leader identifies it).
    if (const OffloadTable::Entry* oe = offl[leaders[l]]) {
      oe->counters->hits.fetch_add(pkt_count, std::memory_order_relaxed);
      oe->counters->bytes.fetch_add(byte_count, std::memory_order_relaxed);
    }
  }
}

void Datapath::process_batch(std::span<const Packet> pkts, uint64_t now_ns,
                             RxResult* results, BatchSummary* summary) {
  BatchSummary local;
  for (size_t off = 0; off < pkts.size(); off += kMaxBatch) {
    const size_t n = std::min(kMaxBatch, pkts.size() - off);
    process_chunk(pkts.data() + off, n, now_ns, results + off, local);
  }
  if (summary != nullptr) *summary += local;
}

MegaflowEntry* Datapath::install(const Match& match, DpActions actions,
                                 uint64_t now_ns, const FlowKey* full_key) {
  if (Rule* existing = mega_.find_exact(match, 0))
    return static_cast<MegaflowEntry*>(existing);
  if (fault_ != nullptr) {
    if (fault_->should_fire(FaultPoint::kInstallTableFull)) {
      ++stats_.install_fail_full;
      return nullptr;
    }
    if (fault_->should_fire(FaultPoint::kInstallTransient)) {
      ++stats_.install_fail_transient;
      return nullptr;
    }
  }
  if (cfg_.max_flows != 0 && flow_count() >= cfg_.max_flows) {
    ++stats_.install_fail_full;
    return nullptr;
  }
  auto owned = std::make_unique<MegaflowEntry>(match, std::move(actions));
  MegaflowEntry* e = owned.get();
  e->full_key_ = full_key != nullptr ? *full_key : match.key;
  e->created_ns_ = now_ns;
  e->used_ns_ = now_ns;
  e->index_ = entries_.size();
  mega_.insert(e);
  entries_.push_back(std::move(owned));
  return e;
}

void Datapath::remove(MegaflowEntry* entry) {
  assert(!entry->dead());
  // Shadow coherence (§13): a megaflow may not die while its NIC copy keeps
  // forwarding. Evicting here covers every deletion path — revalidator
  // idle/stale deletes, hard eviction, quarantine — in the same step.
  if (off_ != nullptr) off_->evict(entry);
  mega_.remove(entry);
  entry->dead_ = true;
  const size_t i = entry->index_;
  assert(i < entries_.size() && entries_[i].get() == entry);
  graveyard_.push_back(std::move(entries_[i]));
  if (i + 1 != entries_.size()) {
    entries_[i] = std::move(entries_.back());
    entries_[i]->index_ = i;
  }
  entries_.pop_back();
}

void Datapath::update_actions(MegaflowEntry* entry, DpActions actions) {
  entry->set_actions(std::move(actions));
  // Reprogram the NIC copy in the same step (revalidator repair, §13).
  if (off_ != nullptr) off_->sync_actions(entry, entry->actions());
}

bool Datapath::offload_install(MegaflowEntry* e, uint64_t now_ns) {
  return off_ != nullptr &&
         off_->install(e->match(), e->actions(), e, now_ns);
}

bool Datapath::offload_evict(MegaflowEntry* e) {
  return off_ != nullptr && off_->evict(e);
}

void Datapath::purge_dead() {
  if (graveyard_.empty()) return;
  // Grace period: clear any microflow slots that still point at dead
  // entries, then free them.
  if (cemc_ != nullptr) {
    cemc_->erase_if([](uint64_t v) {
      return reinterpret_cast<const MegaflowEntry*>(v)->dead();
    });
  }
  for (MicroSlot& slot : micro_)
    if (slot.entry != nullptr && slot.entry->dead()) slot.entry = nullptr;
  graveyard_.clear();
}

size_t Datapath::emc_dangling_hints() const {
  std::unordered_set<const MegaflowEntry*> known;
  known.reserve(entries_.size() + graveyard_.size());
  for (const auto& e : entries_) known.insert(e.get());
  for (const auto& e : graveyard_) known.insert(e.get());
  size_t dangling = 0;
  if (cemc_ != nullptr) {
    cemc_->for_each_hint([&](uint64_t, uint64_t v) {
      if (known.count(reinterpret_cast<const MegaflowEntry*>(v)) == 0)
        ++dangling;
    });
  } else {
    for (const MicroSlot& slot : micro_)
      if (slot.entry != nullptr && known.count(slot.entry) == 0) ++dangling;
  }
  return dangling;
}

std::vector<MegaflowEntry*> Datapath::dump() const {
  std::vector<MegaflowEntry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.get());
  return out;
}

std::vector<Packet> Datapath::take_upcalls(size_t max_batch) {
  std::vector<Packet> out;
  const size_t n = std::min(max_batch, upcalls_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(upcalls_.front());
    upcalls_.pop_front();
  }
  // Delay-faulted upcalls arrive one handler round late: they become
  // visible after the round that drained the queue.
  if (!delayed_.empty()) flush_delayed_upcalls();
  return out;
}

void Datapath::corrupt_entry(size_t idx) {
  if (entries_.empty()) return;
  MegaflowEntry* e = entries_[idx % entries_.size()].get();
  // A recognizably bogus action list: forward to a port that exists
  // nowhere. The flow misbehaves until a revalidator pass re-translates it.
  DpActions bogus;
  bogus.output(0xDEAD);
  e->set_actions(std::move(bogus));
  ++stats_.entries_corrupted;
}

void Datapath::expire_entry(size_t idx) {
  if (entries_.empty()) return;
  MegaflowEntry* e = entries_[idx % entries_.size()].get();
  e->used_ns_ = 0;
  ++stats_.entries_expired;
}

}  // namespace ovs
