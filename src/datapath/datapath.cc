#include "datapath/datapath.h"

#include <algorithm>
#include <cassert>

namespace ovs {

namespace {

ClassifierConfig kernel_classifier_config() {
  // The kernel classifier is deliberately simple (§4.2): no priorities (it
  // "can terminate as soon as it finds any match"), no staged lookup, no
  // tries, no partitions — just a list of per-mask hash tables.
  ClassifierConfig cfg = ClassifierConfig::all_disabled();
  cfg.first_match_only = true;
  return cfg;
}

}  // namespace

Datapath::Datapath(DatapathConfig cfg)
    : cfg_(cfg),
      mega_(kernel_classifier_config()),
      micro_(cfg.microflow_sets * cfg.microflow_ways),
      rng_(cfg.seed) {}

Datapath::~Datapath() = default;

MegaflowEntry* Datapath::microflow_lookup(const FlowKey& key,
                                          uint64_t hash) noexcept {
  const size_t set = (hash >> 32) & (cfg_.microflow_sets - 1);
  for (size_t w = 0; w < cfg_.microflow_ways; ++w) {
    MicroSlot& slot = micro_[set * cfg_.microflow_ways + w];
    if (slot.entry == nullptr || slot.hash != hash) continue;
    MegaflowEntry* e = slot.entry;
    // "A stale microflow cache entry is detected and corrected the first
    // time a packet matches it" (§6): validate against the megaflow.
    if (e->dead() || !e->match().matches(key)) {
      slot.entry = nullptr;
      ++stats_.stale_microflow_hits;
      return nullptr;
    }
    return e;
  }
  return nullptr;
}

void Datapath::microflow_insert(uint64_t hash, MegaflowEntry* entry) noexcept {
  const size_t set = (hash >> 32) & (cfg_.microflow_sets - 1);
  // Prefer an empty or same-hash way; otherwise pseudo-random replacement
  // ("we use a pseudo-random replacement policy, for simplicity", §6).
  for (size_t w = 0; w < cfg_.microflow_ways; ++w) {
    MicroSlot& slot = micro_[set * cfg_.microflow_ways + w];
    if (slot.entry == nullptr || slot.hash == hash) {
      slot = {hash, entry};
      return;
    }
  }
  const size_t w = rng_.uniform(cfg_.microflow_ways);
  micro_[set * cfg_.microflow_ways + w] = {hash, entry};
}

Datapath::RxResult Datapath::receive(const Packet& pkt, uint64_t now_ns) {
  ++stats_.packets;
  RxResult res;

  const uint64_t hash = pkt.key.hash();
  if (cfg_.microflow_enabled) {
    if (MegaflowEntry* e = microflow_lookup(pkt.key, hash)) {
      e->packets_ += 1;
      e->bytes_ += pkt.size_bytes;
      e->used_ns_ = now_ns;
      ++stats_.microflow_hits;
      // The hinted megaflow's hash table counts as the single table probed.
      stats_.tuples_searched += 1;
      res = {Path::kMicroflowHit, &e->actions(), 1};
      return res;
    }
  }

  const auto before = mega_.stats().tuples_searched;
  const Rule* r = mega_.lookup(pkt.key);
  const auto searched =
      static_cast<uint32_t>(mega_.stats().tuples_searched - before);
  stats_.tuples_searched += searched;
  if (r != nullptr) {
    auto* e = const_cast<MegaflowEntry*>(static_cast<const MegaflowEntry*>(r));
    e->packets_ += 1;
    e->bytes_ += pkt.size_bytes;
    e->used_ns_ = now_ns;
    ++stats_.megaflow_hits;
    if (cfg_.microflow_enabled) microflow_insert(hash, e);
    res = {Path::kMegaflowHit, &e->actions(), searched};
    return res;
  }

  ++stats_.misses;
  if (upcalls_.size() >= cfg_.max_upcall_queue) {
    ++stats_.upcall_drops;
  } else {
    upcalls_.push_back(pkt);
  }
  res = {Path::kMiss, nullptr, searched};
  return res;
}

MegaflowEntry* Datapath::install(const Match& match, DpActions actions,
                                 uint64_t now_ns) {
  if (Rule* existing = mega_.find_exact(match, 0))
    return static_cast<MegaflowEntry*>(existing);
  auto owned = std::make_unique<MegaflowEntry>(match, std::move(actions));
  MegaflowEntry* e = owned.get();
  e->created_ns_ = now_ns;
  e->used_ns_ = now_ns;
  e->index_ = entries_.size();
  mega_.insert(e);
  entries_.push_back(std::move(owned));
  return e;
}

void Datapath::remove(MegaflowEntry* entry) {
  assert(!entry->dead());
  mega_.remove(entry);
  entry->dead_ = true;
  const size_t i = entry->index_;
  assert(i < entries_.size() && entries_[i].get() == entry);
  graveyard_.push_back(std::move(entries_[i]));
  if (i + 1 != entries_.size()) {
    entries_[i] = std::move(entries_.back());
    entries_[i]->index_ = i;
  }
  entries_.pop_back();
}

void Datapath::update_actions(MegaflowEntry* entry, DpActions actions) {
  entry->set_actions(std::move(actions));
}

void Datapath::purge_dead() {
  if (graveyard_.empty()) return;
  // Grace period: clear any microflow slots that still point at dead
  // entries, then free them.
  for (MicroSlot& slot : micro_)
    if (slot.entry != nullptr && slot.entry->dead()) slot.entry = nullptr;
  graveyard_.clear();
}

std::vector<MegaflowEntry*> Datapath::dump() const {
  std::vector<MegaflowEntry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.get());
  return out;
}

std::vector<Packet> Datapath::take_upcalls(size_t max_batch) {
  std::vector<Packet> out;
  const size_t n = std::min(max_batch, upcalls_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(upcalls_.front());
    upcalls_.pop_front();
  }
  return out;
}

}  // namespace ovs
