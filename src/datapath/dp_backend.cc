#include "datapath/dp_backend.h"

namespace ovs {

namespace {

std::vector<DpBackend::OffloadSlot> dump_offload(const OffloadTable* t) {
  std::vector<DpBackend::OffloadSlot> out;
  if (t == nullptr) return out;
  out.reserve(t->size());
  t->for_each([&](const OffloadTable::Entry& e) {
    out.push_back({e.owner, &e.mask, &e.key, &e.actions,
                   e.counters->hits.load(std::memory_order_relaxed),
                   e.counters->bytes.load(std::memory_order_relaxed)});
  });
  return out;
}

}  // namespace

std::vector<DpBackend::OffloadSlot> SingleDpBackend::offload_dump() const {
  return dump_offload(dp_.offload());
}

std::vector<DpBackend::OffloadSlot> MtDpBackend::offload_dump() const {
  return dump_offload(dp_.offload());
}

std::vector<DpBackend::FlowRef> SingleDpBackend::dump() const {
  std::vector<FlowRef> out;
  std::vector<MegaflowEntry*> flows = dp_.dump();
  out.reserve(flows.size());
  for (MegaflowEntry* e : flows) out.push_back(e);
  return out;
}

std::vector<DpBackend::FlowRef> MtDpBackend::dump() const {
  std::vector<FlowRef> out;
  std::vector<MtMegaflow*> flows = dp_.dump();
  out.reserve(flows.size());
  for (MtMegaflow* e : flows) out.push_back(e);
  return out;
}

Datapath::RxResult MtDpBackend::receive(const Packet& pkt, uint64_t now_ns) {
  Datapath::RxResult res;
  const size_t worker = rr_;
  rr_ = (rr_ + 1) % dp_.config().n_workers;
  dp_.process_batch(worker, std::span<const Packet>(&pkt, 1), now_ns, &res,
                    nullptr);
  return res;
}

void MtDpBackend::process_batch(std::span<const Packet> pkts, uint64_t now_ns,
                                Datapath::RxResult* results,
                                Datapath::BatchSummary* summary) {
  // One burst = one rx-queue poll: the whole burst goes to one worker slot
  // and successive bursts rotate, so the per-worker EMC shards see the same
  // intra-burst dedup a real PMD would.
  const size_t worker = rr_;
  rr_ = (rr_ + 1) % dp_.config().n_workers;
  dp_.process_batch(worker, pkts, now_ns, results, summary);
}

Datapath::Stats MtDpBackend::stats() const {
  const ShardedDatapath::Stats s = dp_.stats();
  Datapath::Stats out;
  out.packets = s.packets;
  out.offload_hits = s.offload_hits;
  out.microflow_hits = s.microflow_hits;
  out.megaflow_hits = s.megaflow_hits;
  out.misses = s.misses;
  out.upcall_drops = s.upcall_drops;
  out.stale_microflow_hits = s.stale_hints;
  out.tuples_searched = s.tuples_searched;
  out.emc_inserts = s.emc_inserts;
  out.emc_insert_skips = s.emc_insert_skips;
  out.install_fail_full = s.install_fail_full;
  out.install_fail_transient = s.install_fail_transient;
  out.upcall_dup_enqueues = s.upcall_dup_enqueues;
  out.upcalls_delayed = s.upcalls_delayed;
  out.entries_corrupted = s.entries_corrupted;
  out.entries_expired = s.entries_expired;
  return out;
}

std::unique_ptr<DpBackend> make_dp_backend(const DatapathConfig& cfg,
                                           size_t workers) {
  if (workers <= 1) return std::make_unique<SingleDpBackend>(cfg);
  ShardedDatapathConfig mt;
  mt.n_workers = workers;
  mt.emc_enabled = cfg.microflow_enabled;
  mt.emc_capacity_per_shard = cfg.microflow_ways * cfg.microflow_sets;
  mt.max_upcall_queue = cfg.max_upcall_queue;
  mt.max_flows = cfg.max_flows;
  mt.emc_insert_inv_prob = cfg.emc_insert_inv_prob;
  mt.offload_slots = cfg.offload_slots;
  mt.seed = cfg.seed;
  return std::make_unique<MtDpBackend>(mt);
}

}  // namespace ovs
