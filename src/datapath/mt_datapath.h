// Multi-worker (PMD-style) datapath: N forwarding workers over one shared
// megaflow table (paper §4.1: "nonblocking multiple-reader, single-writer
// flow tables" + RCU).
//
// Threading model, mirroring OVS userspace/DPDK forwarding:
//
//   * N *workers* call process_batch() concurrently, each passing its own
//     worker id. A worker owns one ConcurrentEmc shard (its microflow
//     cache), so EMC installs stay single-writer per shard.
//   * One *control* thread (the upcall handler / revalidator) calls
//     install / remove / update_actions / purge_dead / dump. Publication is
//     RCU-style: entries become visible with a single release-ordered hash
//     table insert; removal marks the entry dead, unlinks it, and parks it
//     in a graveyard until synchronize() observes every worker outside its
//     read-side critical section (QSBR via per-worker epoch counters that
//     are odd while a batch is in flight).
//
// The shared megaflow table is a priority-less tuple space (§4.2): a fixed
// directory of per-mask tuples, each an optimistic-concurrent cuckoo map
// from masked-key hash to a chain of entries. The EMC hint is the *index of
// the tuple to search first* ("a hint to the first hash table to search",
// §6) — never a pointer, so a stale hint can misdirect but never dangle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "datapath/concurrent_emc.h"
#include "datapath/datapath.h"
#include "datapath/dp_shared.h"
#include "datapath/offload_table.h"
#include "packet/match.h"
#include "packet/packet.h"
#include "util/cuckoo.h"
#include "util/miniflow.h"
#include "util/rng.h"

namespace ovs {

class FaultInjector;
class ShardedDatapath;

// A megaflow entry in the concurrent table. Match is immutable after
// construction; actions are swapped atomically (RCU: the old list is
// retired, not freed); statistics are relaxed atomics bumped by workers.
class MtMegaflow {
 public:
  const Match& match() const noexcept { return match_; }
  // Full-fidelity key of the packet that created this flow (the udpif key
  // in real OVS); written before publication, immutable afterwards.
  // match().key is pre-masked and lossy to re-translate.
  const FlowKey& full_key() const noexcept { return full_key_; }
  const DpActions* actions() const noexcept {
    return actions_.load(std::memory_order_acquire);
  }
  bool dead() const noexcept { return dead_.load(std::memory_order_acquire); }

  uint64_t packets() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }
  uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t used_ns() const noexcept {
    return used_ns_.load(std::memory_order_relaxed);
  }
  uint64_t created_ns() const noexcept { return created_ns_; }

  // Control-thread annotation (tag-based invalidation ablation, §6).
  uint64_t tags = 0;

  ~MtMegaflow() { delete actions_.load(std::memory_order_relaxed); }

 private:
  friend class ShardedDatapath;

  explicit MtMegaflow(Match m) : match_(std::move(m)) {}

  void bump(uint64_t pkts, uint64_t byts, uint64_t now_ns) noexcept {
    packets_.fetch_add(pkts, std::memory_order_relaxed);
    bytes_.fetch_add(byts, std::memory_order_relaxed);
    // Monotone max: concurrent workers may carry different virtual clocks.
    uint64_t cur = used_ns_.load(std::memory_order_relaxed);
    while (cur < now_ns && !used_ns_.compare_exchange_weak(
                               cur, now_ns, std::memory_order_relaxed)) {
    }
  }

  const Match match_;
  FlowKey full_key_;  // set by the writer before the publication point
  std::atomic<const DpActions*> actions_{nullptr};
  std::atomic<MtMegaflow*> hash_next_{nullptr};  // same-tuple hash collision
  std::atomic<uint64_t> packets_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> used_ns_{0};
  std::atomic<bool> dead_{false};
  uint64_t created_ns_ = 0;
  uint64_t hash_ = 0;       // full masked-key hash (writer bookkeeping)
  uint32_t tuple_idx_ = 0;  // directory slot of the owning tuple
  size_t index_ = 0;        // position in entries_ (swap-remove)
};

struct ShardedDatapathConfig {
  size_t n_workers = 4;
  bool emc_enabled = true;           // per-worker microflow shards (§4.2)
  size_t emc_capacity_per_shard = dpdefault::kEmcCapacity;
  size_t max_tuples = 1024;          // tuple directory capacity (masks)
  size_t tuple_capacity = 4096;      // initial cuckoo size per tuple
  size_t max_upcall_queue = dpdefault::kMaxUpcallQueue;
  // Flow-table hard cap, like DatapathConfig::max_flows. 0 = unbounded.
  size_t max_flows = 0;
  // Probabilistic EMC insertion (§7.3, OVS emc-insert-inv-prob): each shard
  // inserts a missed microflow with probability 1/N. 1 = always insert.
  uint32_t emc_insert_inv_prob = dpdefault::kEmcInsertInvProb;
  // Simulated NIC offload table capacity (DESIGN.md §13). 0 disables the
  // tier entirely: no table is allocated and workers never probe.
  size_t offload_slots = 0;
  uint64_t seed = dpdefault::kDpSeed;  // per-shard insertion RNG seeds
};

class ShardedDatapath {
 public:
  using Path = Datapath::Path;
  using RxResult = Datapath::RxResult;
  using BatchSummary = Datapath::BatchSummary;

  static constexpr size_t kMaxBatch = Datapath::kMaxBatch;

  explicit ShardedDatapath(ShardedDatapathConfig cfg = {});
  ~ShardedDatapath();

  ShardedDatapath(const ShardedDatapath&) = delete;
  ShardedDatapath& operator=(const ShardedDatapath&) = delete;

  // --- Worker fast path (thread `worker`, lock-free except upcall append) --
  //
  // Same burst semantics as Datapath::process_batch: one hash per key,
  // one EMC probe per unique microflow, one classifier search per unique
  // microflow that missed the EMC, one statistics bump per matched megaflow.
  // The whole call is one read-side critical section; RxResult::actions
  // pointers stay valid until the control thread's next purge_dead().
  void process_batch(size_t worker, std::span<const Packet> pkts,
                     uint64_t now_ns, RxResult* results,
                     BatchSummary* summary = nullptr);

  // --- Control path (one thread) -------------------------------------------

  // Installs a flow; returns the existing entry on a duplicate masked key
  // (userspace keeps megaflows disjoint, §4.2) and nullptr if the tuple
  // directory is full.
  // full_key, when given, is the unmasked key of the packet that triggered
  // the install (stored for full-fidelity revalidation); defaults to the
  // already-masked match.key for direct/synthetic installs.
  MtMegaflow* install(const Match& match, DpActions actions, uint64_t now_ns,
                      const FlowKey* full_key = nullptr);

  // Marks dead, unlinks, and parks the entry; freed by purge_dead().
  void remove(MtMegaflow* entry);

  // RCU actions swap: readers mid-batch keep executing the old list, which
  // is retired until the next grace period.
  void update_actions(MtMegaflow* entry, DpActions actions);

  // Credits a packet that userspace forwarded on the flow's behalf (the
  // miss packet executed during flow setup) to the entry's statistics.
  void credit_packet(MtMegaflow* entry, const Packet& pkt,
                     uint64_t now_ns) noexcept {
    entry->bump(1, pkt.size_bytes, now_ns);
  }

  // QSBR grace period: returns once every worker observed outside a batch
  // (epoch even or advanced past the snapshot).
  void synchronize();

  // synchronize(), then free dead entries, retired action lists, and
  // retired cuckoo slot arrays.
  void purge_dead();

  std::vector<MtMegaflow*> dump() const;  // control thread only

  size_t flow_count() const noexcept {
    return n_flows_.load(std::memory_order_relaxed);
  }
  size_t mask_count() const noexcept;  // tuples with live rules

  std::vector<Packet> take_upcalls(size_t max_batch);
  size_t upcall_queue_depth() const;

  // Miss-path sink: when set, upcalls are handed to the sink instead of the
  // internal queue (the vswitchd bounded fair-queue path). A sink returning
  // false refuses the upcall; the refusal is counted as a drop here. The
  // sink is invoked under the upcall lock — concurrent worker flushes are
  // serialized through it, so the sink itself need not be thread-safe, but
  // it must not call back into this datapath's upcall API. Set it before
  // workers start streaming.
  void set_upcall_sink(Datapath::UpcallSink sink) {
    std::lock_guard<std::mutex> lk(upcall_mu_);
    sink_ = std::move(sink);
  }

  // Non-owning; nullptr disables injection. Consulted at upcall flush
  // (drop / delay / duplicate) and at install (table-full / transient).
  // FaultInjector is internally synchronized, so worker flushes may consult
  // it concurrently.
  void set_fault_injector(FaultInjector* f) noexcept { fault_ = f; }

  // Scrambles the idx-th live entry's actions (modulo flow_count) via the
  // RCU swap, so readers mid-batch stay safe. The revalidator repairs it on
  // its next full pass.
  void corrupt_entry(size_t idx);
  // Zeroes the idx-th live entry's last-used time so idle expiry reaps it.
  void expire_entry(size_t idx);

  // Runtime policy knob (graceful degradation under EMC thrash). Workers
  // pick the new probability up on their next insertion attempt.
  void set_emc_insert_inv_prob(uint32_t inv) noexcept {
    emc_insert_inv_prob_.store(inv == 0 ? 1 : inv, std::memory_order_relaxed);
  }

  // --- Simulated NIC offload tier (control thread; DESIGN.md §13) ----------
  //
  // The control thread owns a *master* OffloadTable and publishes immutable
  // clones to workers through an atomic pointer (the same RCU discipline as
  // actions): remove()/update_actions() repair the master in the same call
  // that touches the megaflow, then the next purge_dead() — or an explicit
  // offload_commit() — republishes. Workers mid-batch may briefly forward
  // from a retired view; the view is only freed after a grace period, and
  // per-slot counters are shared across clones so no hit is lost.

  // Authoritative (master) table, or nullptr when the tier is off. The view
  // workers currently probe may lag it by one commit.
  const OffloadTable* offload() const noexcept { return off_.get(); }
  bool offload_install(MtMegaflow* e, uint64_t now_ns);
  bool offload_evict(MtMegaflow* e);
  // Publishes the master to workers if it changed since the last publish.
  void offload_commit();
  bool offload_corrupt(size_t idx, OffloadTable::Corruption kind);

  // Releases upcalls parked by the delay fault into the shared queue
  // (where the global cap may still drop them). Returns the count released.
  size_t flush_delayed_upcalls();
  size_t delayed_upcall_count() const;

  struct Stats {
    uint64_t packets = 0;
    uint64_t offload_hits = 0;     // NIC offload slot resolved the packet
    uint64_t microflow_hits = 0;   // EMC-hinted tuple resolved the packet
    uint64_t megaflow_hits = 0;    // full tuple-space search resolved it
    uint64_t misses = 0;
    uint64_t stale_hints = 0;      // hint probed, flow not there (§6)
    uint64_t tuples_searched = 0;
    uint64_t upcall_drops = 0;
    uint64_t install_fails = 0;         // full + transient (sum of the two)
    uint64_t install_fail_full = 0;     // table full (cap or injected)
    uint64_t install_fail_transient = 0;  // injected transient fault
    uint64_t upcalls_delayed = 0;       // parked by the delay fault
    uint64_t upcall_dup_enqueues = 0;   // extra deliveries (duplicate fault)
    uint64_t emc_inserts = 0;           // microflow shard entries installed
    uint64_t emc_insert_skips = 0;      // skipped by probabilistic insertion
    uint64_t entries_corrupted = 0;
    uint64_t entries_expired = 0;
  };
  Stats stats() const;  // aggregated over workers; any thread

  // Invariant-checker hook (datapath/dp_check.h): EMC hints whose tuple
  // index falls outside the directory. The directory is append-only, so by
  // construction this is always zero — the checker enforces exactly that
  // construction. Call with workers quiescent (shards are single-writer).
  size_t emc_dangling_hints() const;

  const ShardedDatapathConfig& config() const noexcept { return cfg_; }

  // --- Optional built-in worker pool (for benches and stress tests) --------
  //
  // start() spawns cfg.n_workers threads; submit() hands worker `w` a burst;
  // drain() blocks until every queued burst has been processed. Results are
  // delivered to the callback (from the worker thread, inside its read-side
  // critical section) or dropped if none is set.
  using BatchCallback =
      std::function<void(size_t worker, std::span<const RxResult>)>;
  void set_batch_callback(BatchCallback cb) { callback_ = std::move(cb); }
  void start();
  void stop();
  void submit(size_t worker, std::vector<Packet> burst, uint64_t now_ns);
  void drain();

 private:
  // One hash table per mask. The directory only ever appends (empty tuples
  // are reused for a matching new mask, never deleted), so a tuple index is
  // forever safe to dereference — the property the EMC hint relies on.
  struct MtTuple {
    explicit MtTuple(const FlowMask& mask, size_t capacity);

    uint64_t hash_key(const FlowWords& key) const noexcept {
      return schema_.full_hash(key);
    }
    bool masked_equal(const FlowKey& pkt, const FlowKey& stored)
        const noexcept {
      return schema_.masked_equal(pkt, stored);
    }

    // Reader-side search of this tuple's hash table.
    const MtMegaflow* find(const FlowKey& pkt) const noexcept;

    FlowMask mask;
    MiniflowSchema schema_;
    CuckooMap64 table;                  // masked hash -> MtMegaflow chain
    std::atomic<size_t> n_rules{0};
    uint32_t dir_idx = 0;               // this tuple's directory slot
  };

  struct alignas(64) WorkerSlot {
    // Odd while the worker is inside process_batch (its read-side critical
    // section); even when quiescent.
    std::atomic<uint64_t> epoch{0};
    std::unique_ptr<ConcurrentEmc> emc;
    Rng rng{0};  // probabilistic EMC insertion; owner worker only
    // Owner-written relaxed counters, aggregated by stats().
    std::atomic<uint64_t> packets{0};
    std::atomic<uint64_t> offload_hits{0};
    std::atomic<uint64_t> microflow_hits{0};
    std::atomic<uint64_t> megaflow_hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> stale_hints{0};
    std::atomic<uint64_t> tuples_searched{0};
    std::atomic<uint64_t> emc_inserts{0};
    std::atomic<uint64_t> emc_insert_skips{0};
  };

  struct WorkerThread {
    std::thread th;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<std::vector<Packet>, uint64_t>> q;
    bool stopping = false;
  };

  // Full tuple-space search (first match wins; §4.2). `skip` is a tuple
  // already probed via the EMC hint. Counts probed tuples into *searched.
  const MtMegaflow* classify(const FlowKey& key, uint32_t skip,
                             uint32_t* searched) const noexcept;

  // Body of process_batch, for callers that already hold the epoch open
  // (worker_loop keeps it open across the batch callback too).
  void process_batch_in_epoch(WorkerSlot& slot, std::span<const Packet> pkts,
                              uint64_t now_ns, RxResult* results,
                              BatchSummary* summary);
  void process_chunk(WorkerSlot& slot, const Packet* pkts, size_t n,
                     uint64_t now_ns, RxResult* results, BatchSummary& sum,
                     std::vector<Packet>& missed);
  void flush_upcalls(std::vector<Packet>& missed);
  // Hands one upcall to the sink or the bounded queue. Requires upcall_mu_.
  void deliver_locked(Packet&& pkt, uint64_t* drops);

  MtTuple* writer_find_tuple(const FlowMask& mask, bool create);
  void worker_loop(size_t w);
  // Clones the master, swings off_view_, retires the old clone (freed by
  // purge_dead after the next grace period). Control thread only.
  void publish_offload();

  ShardedDatapathConfig cfg_;

  // Tuple directory: append-only array of atomic pointers + atomic count.
  std::vector<std::atomic<MtTuple*>> dir_;
  std::atomic<uint32_t> n_tuples_{0};
  std::vector<std::unique_ptr<MtTuple>> tuples_;  // ownership (control)

  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  // Control-side bookkeeping.
  std::vector<std::unique_ptr<MtMegaflow>> entries_;
  std::vector<std::unique_ptr<MtMegaflow>> graveyard_;
  std::vector<std::unique_ptr<const DpActions>> retired_actions_;
  std::atomic<size_t> n_flows_{0};

  // Offload tier: master (control thread), the published clone workers
  // probe, and clones retired but not yet past a grace period.
  std::unique_ptr<OffloadTable> off_;               // master
  std::unique_ptr<const OffloadTable> off_current_; // published clone
  std::atomic<const OffloadTable*> off_view_{nullptr};
  std::vector<std::unique_ptr<const OffloadTable>> retired_off_;
  bool off_dirty_ = false;

  // Shared upcall queue (one lock per burst flush). The optional sink is
  // invoked under the same lock, serializing concurrent worker flushes.
  mutable std::mutex upcall_mu_;
  std::deque<Packet> upcalls_;
  std::deque<Packet> delayed_;  // delay-fault parking lot (under upcall_mu_)
  Datapath::UpcallSink sink_;   // under upcall_mu_
  std::atomic<uint64_t> upcall_drops_{0};
  std::atomic<uint64_t> install_fail_full_{0};
  std::atomic<uint64_t> install_fail_transient_{0};
  std::atomic<uint64_t> upcalls_delayed_{0};
  std::atomic<uint64_t> upcall_dup_enqueues_{0};
  std::atomic<uint64_t> entries_corrupted_{0};
  std::atomic<uint64_t> entries_expired_{0};
  std::atomic<uint32_t> emc_insert_inv_prob_{1};
  FaultInjector* fault_ = nullptr;

  // Worker pool.
  std::vector<std::unique_ptr<WorkerThread>> threads_;
  std::atomic<size_t> in_flight_{0};
  bool started_ = false;
  BatchCallback callback_;
};

}  // namespace ovs
