// Datapath actions: the flattened instruction list a cache entry carries.
//
// When userspace translates a packet through the OpenFlow pipeline it
// collapses the whole pipeline's behaviour into this simple list (§4.2); the
// datapath executes it blindly. Equality is meaningful: the revalidators
// compare installed actions against freshly translated ones (§6).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "packet/flow_key.h"

namespace ovs {

struct OutputAction {
  uint32_t port = 0;
  bool operator==(const OutputAction&) const = default;
};

// Rewrite a (single-word) header field before subsequent outputs.
struct SetFieldAction {
  FieldId field = FieldId::kEthSrc;
  uint64_t value = 0;
  bool operator==(const SetFieldAction&) const = default;
};

// Encapsulate in a tunnel to a remote hypervisor (sets tun_id and emits on
// the tunnel port).
struct TunnelAction {
  uint32_t port = 0;
  uint64_t tun_id = 0;
  bool operator==(const TunnelAction&) const = default;
};

// Punt a copy to userspace (used by "controller" flows and sFlow-style
// sampling).
struct UserspaceAction {
  uint32_t reason = 0;
  bool operator==(const UserspaceAction&) const = default;
};

using DpAction =
    std::variant<OutputAction, SetFieldAction, TunnelAction, UserspaceAction>;

// An empty action list means drop.
struct DpActions {
  std::vector<DpAction> list;

  // True if the packet is forwarded nowhere (no output/tunnel/userspace).
  bool drops() const noexcept {
    for (const DpAction& a : list)
      if (!std::holds_alternative<SetFieldAction>(a)) return false;
    return true;
  }

  // Removes trailing set-field actions that no forwarding action observes
  // (the flattened list often ends with rewrites from a table whose final
  // lookup missed). Keeps revalidation's action comparison canonical.
  void normalize() {
    while (!list.empty() &&
           std::holds_alternative<SetFieldAction>(list.back()))
      list.pop_back();
  }

  bool operator==(const DpActions&) const = default;

  DpActions& output(uint32_t port) {
    list.push_back(OutputAction{port});
    return *this;
  }
  DpActions& set_field(FieldId f, uint64_t v) {
    list.push_back(SetFieldAction{f, v});
    return *this;
  }
  DpActions& tunnel(uint32_t port, uint64_t tun_id) {
    list.push_back(TunnelAction{port, tun_id});
    return *this;
  }
  DpActions& userspace(uint32_t reason = 0) {
    list.push_back(UserspaceAction{reason});
    return *this;
  }

  std::string to_string() const {
    if (list.empty()) return "drop";
    std::string s;
    for (const DpAction& a : list) {
      if (!s.empty()) s += ",";
      if (const auto* o = std::get_if<OutputAction>(&a))
        s += "output:" + std::to_string(o->port);
      else if (const auto* sf = std::get_if<SetFieldAction>(&a))
        s += std::string("set(") + field_info(sf->field).name + "=" +
             std::to_string(sf->value) + ")";
      else if (const auto* t = std::get_if<TunnelAction>(&a))
        s += "tunnel(port=" + std::to_string(t->port) +
             ",tun_id=" + std::to_string(t->tun_id) + ")";
      else
        s += "userspace";
    }
    return s;
  }
};

}  // namespace ovs
