// Simulated NIC hardware-offload flow table (DESIGN.md §13): a small,
// fixed-capacity exact/TCAM-like match table consulted before the EMC.
//
// Each slot holds a *copy* of a megaflow — mask, pre-masked key, and an
// actions snapshot — the way a real NIC holds a programmed rule: the
// hardware forwards from its own copy, so a policy change leaves the slot
// stale until the control plane reprograms or invalidates it. Keeping the
// copy explicit (rather than a bit on the megaflow) is what lets the
// dp_check shadow-coherence invariant, the revalidator repair path, and the
// restart adopt-or-flush sweep all have something real to verify.
//
// The table itself is a passive single-threaded structure; placement policy
// (which megaflows earn a slot) lives in vswitchd (Switch::revalidate), and
// the sharded datapath publishes immutable clones RCU-style (the MT sharing
// choice, DESIGN.md §13). Lookup cost is modeled as one flat
// CostModel::offload_probe regardless of the mask-group walk below — the
// walk simulates a TCAM's parallel match, it does not price it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "datapath/dp_actions.h"
#include "packet/match.h"
#include "util/miniflow.h"

namespace ovs {

// Per-slot hit counters, shared (via shared_ptr) across RCU clones of the
// table so forwarding credited against an old published view is never lost
// when the control thread republishes.
struct OffloadCounters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> bytes{0};
};

class OffloadTable {
 public:
  struct Entry {
    FlowMask mask;
    FlowKey key;        // pre-masked, like Match::key
    DpActions actions;  // snapshot of the owner's actions at install/sync
    void* owner = nullptr;  // the owning megaflow (DpBackend::FlowRef)
    std::shared_ptr<OffloadCounters> counters;
    uint64_t installed_ns = 0;
  };

  explicit OffloadTable(size_t capacity) : capacity_(capacity) {}

  // Deep-copies the slots but shares the per-slot counters: the RCU
  // republication path on the sharded backend.
  std::unique_ptr<OffloadTable> clone() const;

  // First (and, megaflows being disjoint, only) matching slot; nullptr on
  // miss. Does not touch counters — the caller credits the hit so clones
  // stay usable through a const pointer.
  const Entry* probe(const FlowKey& pkt) const noexcept;

  // Programs a slot. Fails (returns false) when the table is full or the
  // owner already holds a slot.
  bool install(const Match& match, const DpActions& actions, void* owner,
               uint64_t now_ns);
  // Invalidates the owner's slot; false when it holds none.
  bool evict(const void* owner);
  // Rewrites the owner's action snapshot in place (revalidator repair).
  bool sync_actions(const void* owner, const DpActions& actions);

  bool contains(const void* owner) const {
    return by_owner_.count(owner) != 0;
  }
  const Entry* find(const void* owner) const {
    auto it = by_owner_.find(owner);
    return it == by_owner_.end() ? nullptr : it->second;
  }

  void clear();
  size_t size() const noexcept { return n_entries_; }
  size_t capacity() const noexcept { return capacity_; }

  void for_each(const std::function<void(const Entry&)>& f) const;

  // Test-only corruption, mirroring Datapath::corrupt_entry: desynchronizes
  // the idx-th slot (modulo size) so the invariant checker has something to
  // catch. kStaleActions scrambles the action snapshot, kOrphanSlot points
  // the owner at a nonexistent flow, kInflateHits makes the slot claim more
  // traffic than its owner ever saw.
  enum class Corruption : uint8_t { kStaleActions, kOrphanSlot, kInflateHits };
  bool corrupt(size_t idx, Corruption kind);

 private:
  // One group per distinct mask, the kernel-TSS idiom: hash the packet's
  // mask-active words, then confirm with a masked compare.
  struct MaskGroup {
    FlowMask mask;
    MiniflowSchema schema;
    std::unordered_multimap<uint64_t, std::unique_ptr<Entry>> slots;
  };

  size_t capacity_;
  size_t n_entries_ = 0;
  std::vector<MaskGroup> groups_;
  std::unordered_map<const void*, Entry*> by_owner_;
};

}  // namespace ovs
