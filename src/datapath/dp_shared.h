// Defaults shared by both datapath backends (the single-threaded `Datapath`
// and the multi-worker `ShardedDatapath`). Before this header each backend
// carried its own copy of these constants; keeping one definition means the
// two backends stay configured identically by default — which the
// backend-equivalence property tests rely on — and a tuning change cannot
// silently apply to one backend only.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ovs::dpdefault {

// Miss queue to userspace (upcalls beyond this are dropped, ENOBUFS-style).
inline constexpr size_t kMaxUpcallQueue = 4096;

// Exact-match (microflow) cache capacity. The single-threaded datapath
// arranges this as ways * sets; the sharded datapath gives each worker a
// ConcurrentEmc shard of the same total size.
inline constexpr size_t kEmcWays = 2;
inline constexpr size_t kEmcSets = 4096;
inline constexpr size_t kEmcCapacity = kEmcWays * kEmcSets;

// Probabilistic EMC insertion (§7.3, OVS emc-insert-inv-prob): insert a
// missed microflow with probability 1/N. 1 = always insert; the EMC-thrash
// degradation policy raises it at runtime on both backends.
inline constexpr uint32_t kEmcInsertInvProb = 1;

// Seed for pseudo-random EMC replacement / probabilistic insertion (§6).
inline constexpr uint64_t kDpSeed = 0xDA7A;

}  // namespace ovs::dpdefault
