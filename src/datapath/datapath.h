// The simulated kernel datapath (paper §3.1, §4).
//
// Packet path:
//   1. microflow cache — exact-match table mapping the packet's full-key
//      hash to its megaflow entry ("a hint to the first hash table to
//      search"); pseudo-random replacement; stale entries are "detected and
//      corrected the first time a packet matches" (§6);
//   2. megaflow cache — a single priority-less tuple-space classifier that
//      terminates on the first match (§4.2); entries are installed by
//      userspace and are disjoint;
//   3. miss — the packet is queued as an *upcall* to userspace (§3.1).
//
// Entry deletion is deferred RCU-style: removed entries park in a graveyard
// until purge_dead() (the simulated grace period) sweeps microflow slots and
// frees them, mirroring OVS's use of RCU for nonblocking readers (§4.1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "classifier/classifier.h"
#include "datapath/concurrent_emc.h"
#include "datapath/dp_actions.h"
#include "datapath/dp_shared.h"
#include "datapath/offload_table.h"
#include "packet/packet.h"
#include "util/rng.h"

namespace ovs {

class FaultInjector;

// An installed datapath flow: a priority-less classifier rule carrying
// actions and statistics.
class MegaflowEntry : public Rule {
 public:
  MegaflowEntry(Match match, DpActions actions)
      : Rule(match, /*priority=*/0), actions_(std::move(actions)) {}

  const DpActions& actions() const noexcept { return actions_; }
  void set_actions(DpActions a) noexcept { actions_ = std::move(a); }

  // Full-fidelity key of the packet that created this flow (the udpif key in
  // real OVS). match().key is pre-masked, so re-translating it is lossy:
  // fields the stale mask wildcards read as zero and the classifier can
  // reproduce the stale mask from its own artifact. Revalidation and restart
  // reconciliation must translate this key instead.
  const FlowKey& full_key() const noexcept { return full_key_; }

  uint64_t packets() const noexcept { return packets_; }
  uint64_t bytes() const noexcept { return bytes_; }
  uint64_t used_ns() const noexcept { return used_ns_; }
  uint64_t created_ns() const noexcept { return created_ns_; }
  bool dead() const noexcept { return dead_; }

  // Userspace annotation: Bloom tags of the soft state this flow's actions
  // depend on (the historical tag-based invalidation scheme of §6, kept as
  // an ablation). The datapath itself never reads this.
  uint64_t tags = 0;

 private:
  friend class Datapath;

  DpActions actions_;
  FlowKey full_key_;  // set at install; immutable afterwards
  size_t index_ = 0;  // position in Datapath::entries_ (swap-remove)
  uint64_t packets_ = 0;
  uint64_t bytes_ = 0;
  uint64_t used_ns_ = 0;     // last hit time
  uint64_t created_ns_ = 0;
  bool dead_ = false;
};

struct DatapathConfig {
  bool microflow_enabled = true;      // first-level exact-match cache (§4.2)
  // Use the lock-free ConcurrentEmc (cuckoo-backed, FIFO eviction) as the
  // microflow cache instead of the inline set-associative table. Same
  // single-threaded semantics, different replacement policy; this is the
  // cache the multi-worker datapath shards per thread (§4.1).
  bool use_concurrent_emc = false;
  size_t microflow_ways = dpdefault::kEmcWays;  // associativity
  size_t microflow_sets = dpdefault::kEmcSets;  // slots = ways * sets
  size_t max_upcall_queue = dpdefault::kMaxUpcallQueue;  // miss queue
  // Kernel flow-table hard cap: install() fails (returns nullptr) at this
  // many live flows. 0 = unbounded; the dynamic flow limit (§6) is enforced
  // by userspace eviction, this models the kernel's own ENOSPC.
  size_t max_flows = 0;
  // Probabilistic EMC insertion (the §7.3-style mitigation for microflow
  // churn, OVS's emc-insert-inv-prob): insert a missed microflow into the
  // EMC with probability 1/N. 1 = always insert.
  uint32_t emc_insert_inv_prob = dpdefault::kEmcInsertInvProb;
  // Simulated NIC offload table capacity (DESIGN.md §13). 0 disables the
  // tier entirely: no table is allocated and the packet path is bit-for-bit
  // the two-level EMC -> megaflow hierarchy.
  size_t offload_slots = 0;
  uint64_t seed = dpdefault::kDpSeed;  // pseudo-random replacement (§6)
};

class Datapath {
 public:
  explicit Datapath(DatapathConfig cfg = {});
  ~Datapath();

  Datapath(const Datapath&) = delete;
  Datapath& operator=(const Datapath&) = delete;

  enum class Path : uint8_t {
    kOffloadHit,  // NIC offload slot (DESIGN.md §13); never reaches the CPU
    kMicroflowHit,
    kMegaflowHit,
    kMiss,
  };

  struct RxResult {
    Path path = Path::kMiss;
    const DpActions* actions = nullptr;  // null on miss
    uint32_t tuples_searched = 0;        // megaflow hash tables probed
  };

  // Processes one received packet at (virtual) time now_ns. On a miss the
  // packet is queued for userspace (or dropped if the queue is full).
  RxResult receive(const Packet& pkt, uint64_t now_ns);

  // --- Batched fast path (PMD-style, §4.1) --------------------------------

  static constexpr size_t kDefaultBatch = 32;
  static constexpr size_t kMaxBatch = 256;  // internal chunking granularity

  // Aggregate description of what one burst actually cost, for callers that
  // model CPU cycles (sim/cost_model.h): probes are counted after
  // deduplication, so emc_probes <= packets and megaflow_lookups counts
  // only the burst's unique microflows that missed the EMC.
  struct BatchSummary {
    uint32_t packets = 0;
    uint32_t offload_probes = 0;    // NIC table probes after dedup
    uint32_t offload_hits = 0;      // packets absorbed by the NIC tier
    uint32_t emc_probes = 0;        // EMC probes after intra-burst dedup
    uint32_t megaflow_lookups = 0;  // classifier searches (dedup leaders)
    uint32_t tuples_searched = 0;   // megaflow hash tables probed
    uint32_t groups = 0;            // distinct megaflows matched
    uint32_t misses = 0;            // packets upcalled (or dropped)

    void operator+=(const BatchSummary& o) noexcept {
      packets += o.packets;
      offload_probes += o.offload_probes;
      offload_hits += o.offload_hits;
      emc_probes += o.emc_probes;
      megaflow_lookups += o.megaflow_lookups;
      tuples_searched += o.tuples_searched;
      groups += o.groups;
      misses += o.misses;
    }
  };

  // Processes a burst of packets sharing one (virtual) timestamp. Per-packet
  // outcomes land in results[0..pkts.size()). Compared to calling receive()
  // per packet this computes each flow-key hash once, probes the EMC once
  // per unique microflow in the burst, searches the megaflow classifier
  // once per unique microflow that missed the EMC, bumps megaflow statistics
  // once per matched megaflow, and appends all misses to the upcall queue in
  // arrival order. Per-packet actions, upcalls, and flow statistics are
  // identical to the sequential path (asserted by batch_equivalence_test);
  // only the cumulative tuples_searched counter differs because deduplicated
  // packets never physically probe a table.
  void process_batch(std::span<const Packet> pkts, uint64_t now_ns,
                     RxResult* results, BatchSummary* summary = nullptr);

  // --- Userspace-facing flow table API (the netlink equivalent) -----------

  // Installs a flow. Duplicate masked keys are rejected (returns the
  // existing entry and does not install) because userspace keeps megaflows
  // disjoint (§4.2). Returns nullptr when the install *fails*: the table is
  // at cfg.max_flows, or an injected table-full/transient fault fired —
  // callers must treat the miss as unresolved (retry or drop).
  // full_key, when given, is the unmasked key of the packet that triggered
  // the install; it is stored on the entry for full-fidelity revalidation.
  // Defaults to match.key (already masked) for callers that install
  // synthetic flows directly.
  MegaflowEntry* install(const Match& match, DpActions actions,
                         uint64_t now_ns,
                         const FlowKey* full_key = nullptr);

  // Removes a flow; the entry stays valid until purge_dead().
  void remove(MegaflowEntry* entry);

  // Updates an entry's actions in place (revalidation, §6).
  void update_actions(MegaflowEntry* entry, DpActions actions);

  // Credits a packet that userspace forwarded on the flow's behalf (the
  // miss packet executed during flow setup) to the entry's statistics.
  void credit_packet(MegaflowEntry* entry, const Packet& pkt,
                     uint64_t now_ns) noexcept {
    entry->packets_ += 1;
    entry->bytes_ += pkt.size_bytes;
    if (now_ns > entry->used_ns_) entry->used_ns_ = now_ns;
  }

  // Frees removed entries after sweeping stale microflow pointers. Call at
  // batch boundaries (the simulated RCU grace period).
  void purge_dead();

  // Snapshot of all live entries, for revalidation and stats polling.
  std::vector<MegaflowEntry*> dump() const;

  size_t flow_count() const noexcept { return mega_.rule_count(); }
  size_t mask_count() const noexcept { return mega_.tuple_count(); }

  // Drains up to max_batch queued upcalls, then releases any fault-delayed
  // upcalls into the queue (they arrive one round late).
  std::vector<Packet> take_upcalls(size_t max_batch);
  size_t upcall_queue_depth() const noexcept { return upcalls_.size(); }

  // Miss-path sink: when set, upcalls are handed to the sink instead of the
  // internal queue (the vswitchd bounded fair-queue path). A sink returning
  // false refuses the upcall; the refusal is counted as a drop here.
  using UpcallSink = std::function<bool(Packet&&)>;
  void set_upcall_sink(UpcallSink sink) { sink_ = std::move(sink); }

  // --- Fault-injection surface ---------------------------------------------

  // Non-owning; nullptr disables injection. Consulted at upcall enqueue
  // (drop / delay / duplicate) and at install (table-full / transient).
  void set_fault_injector(FaultInjector* f) noexcept { fault_ = f; }

  // Releases upcalls parked by the delay fault (to the sink/queue, where
  // they may still be refused). Returns the number released.
  size_t flush_delayed_upcalls();
  size_t delayed_upcall_count() const noexcept { return delayed_.size(); }

  // Scrambles the idx-th live entry's actions (modulo flow_count). The
  // revalidator repairs it on its next full pass — the convergence property
  // the fault-injection tests assert.
  void corrupt_entry(size_t idx);
  // Zeroes the idx-th live entry's last-used time so idle expiry reaps it.
  void expire_entry(size_t idx);

  // Runtime policy knob (graceful degradation under EMC thrash).
  void set_emc_insert_inv_prob(uint32_t inv) noexcept {
    cfg_.emc_insert_inv_prob = inv == 0 ? 1 : inv;
  }

  // --- Simulated NIC offload tier (DESIGN.md §13) --------------------------
  //
  // Null when cfg.offload_slots == 0. Placement policy (which megaflows earn
  // a slot) lives in vswitchd; the datapath's own responsibility is shadow
  // coherence: remove() evicts the owner's slot and update_actions()
  // rewrites its action snapshot, so any revalidation/reconciliation pass
  // that touches a megaflow repairs its offloaded copy in the same step.
  const OffloadTable* offload() const noexcept { return off_.get(); }
  // Programs a slot with a copy of e's match and actions. False when the
  // tier is off, the table is full, or e already holds a slot.
  bool offload_install(MegaflowEntry* e, uint64_t now_ns);
  bool offload_evict(MegaflowEntry* e);
  bool offload_corrupt(size_t idx, OffloadTable::Corruption kind) {
    return off_ != nullptr && off_->corrupt(idx, kind);
  }

  struct Stats {
    uint64_t packets = 0;
    uint64_t offload_hits = 0;      // absorbed by the NIC tier (§13)
    uint64_t microflow_hits = 0;
    uint64_t megaflow_hits = 0;
    uint64_t misses = 0;
    uint64_t upcall_drops = 0;          // queue overflow, sink refusal, fault
    uint64_t stale_microflow_hits = 0;  // corrected on first use (§6)
    uint64_t tuples_searched = 0;       // total megaflow tables probed
    uint64_t emc_inserts = 0;           // microflow entries installed
    uint64_t emc_insert_skips = 0;      // skipped by probabilistic insertion
    uint64_t install_fail_full = 0;     // install rejected: table full
    uint64_t install_fail_transient = 0;  // install rejected: transient fault
    uint64_t upcall_dup_enqueues = 0;   // extra deliveries (duplicate fault)
    uint64_t upcalls_delayed = 0;       // parked by the delay fault
    uint64_t entries_corrupted = 0;
    uint64_t entries_expired = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

  // Invariant-checker hook (datapath/dp_check.h): EMC hints that no longer
  // resolve to a live or parked (graveyard) megaflow. Hints to dead entries
  // awaiting purge are legal — §6 corrects them on first use — but a pointer
  // outside entries_ + graveyard_ would be dereferenced blind on the fast
  // path, so any such hint is a coherence violation.
  size_t emc_dangling_hints() const;

  const DatapathConfig& config() const noexcept { return cfg_; }
  void set_microflow_enabled(bool on) noexcept {
    cfg_.microflow_enabled = on;
  }

 private:
  struct MicroSlot {
    uint64_t hash = 0;
    MegaflowEntry* entry = nullptr;
  };

  MegaflowEntry* microflow_lookup(const FlowKey& key, uint64_t hash) noexcept;
  void microflow_insert(uint64_t hash, MegaflowEntry* entry) noexcept;
  void process_chunk(const Packet* pkts, size_t n, uint64_t now_ns,
                     RxResult* results, BatchSummary& summary);
  void enqueue_upcall(const Packet& pkt);
  void deliver_upcall(Packet&& pkt);

  DatapathConfig cfg_;
  Classifier mega_;  // first_match_only, no priorities — the kernel TSS
  std::vector<std::unique_ptr<MegaflowEntry>> entries_;
  std::vector<std::unique_ptr<MegaflowEntry>> graveyard_;
  std::vector<MicroSlot> micro_;                // inline EMC
  std::unique_ptr<ConcurrentEmc> cemc_;         // cfg.use_concurrent_emc
  std::unique_ptr<OffloadTable> off_;           // cfg.offload_slots > 0
  std::deque<Packet> upcalls_;
  std::vector<Packet> delayed_;                 // delay-fault parking lot
  UpcallSink sink_;
  FaultInjector* fault_ = nullptr;
  Rng rng_;
  Stats stats_;
};

}  // namespace ovs
