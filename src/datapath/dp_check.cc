#include "datapath/dp_check.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "packet/flow_key.h"

namespace ovs {

namespace {

using Words = std::array<uint64_t, kFlowWords>;

struct WordsHash {
  size_t operator()(const Words& w) const noexcept {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t v : w) {
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

Words key_words(const FlowWords& k) {
  Words out;
  for (size_t i = 0; i < kFlowWords; ++i) out[i] = k.w[i];
  return out;
}

Words masked_words(const FlowWords& k, const Words& mask) {
  Words out;
  for (size_t i = 0; i < kFlowWords; ++i) out[i] = k.w[i] & mask[i];
  return out;
}

Words common_mask(const Words& a, const Words& b) {
  Words out;
  for (size_t i = 0; i < kFlowWords; ++i) out[i] = a[i] & b[i];
  return out;
}

void note(DpCheckReport& r, const DpCheckConfig& cfg, std::string detail) {
  if (r.details.size() < cfg.max_details) r.details.push_back(std::move(detail));
}

}  // namespace

DpCheckReport run_dp_check(const DpBackend& be, const DpCheckConfig& cfg) {
  DpCheckReport report;
  const std::vector<DpBackend::FlowRef> flows = be.dump();
  report.flows_checked = flows.size();

  std::vector<size_t> doomed;  // dump indices to quarantine

  if (cfg.check_disjointness && flows.size() > 1) {
    // Group entries by mask. Within one mask, pre-masked keys either collide
    // exactly (a duplicate the install path should have rejected) or differ
    // in a masked word and are disjoint — so same-mask needs only a key
    // map, and true region intersection can only happen across masks.
    struct Group {
      Words mask;
      std::vector<size_t> idx;  // dump indices, ascending
    };
    std::unordered_map<Words, size_t, WordsHash> group_of;
    std::vector<Group> groups;
    for (size_t i = 0; i < flows.size(); ++i) {
      const Match& m = be.flow_match(flows[i]);
      const Words mw = key_words(m.mask);
      auto [it, fresh] = group_of.try_emplace(mw, groups.size());
      if (fresh) groups.push_back({mw, {}});
      groups[it->second].idx.push_back(i);
    }

    for (const Group& g : groups) {
      if (g.idx.size() < 2) continue;
      std::unordered_map<Words, size_t, WordsHash> seen;
      for (size_t i : g.idx) {
        const Words kw = key_words(be.flow_match(flows[i]).key);
        auto [it, fresh] = seen.try_emplace(kw, i);
        if (!fresh) {
          ++report.duplicate_keys;
          doomed.push_back(i);
          note(report, cfg,
               "duplicate masked key: " + be.flow_match(flows[i]).to_string());
        }
      }
    }

    // Cross-mask: for each mask pair, project group A's keys onto the
    // common mask and probe group B through the same projection. A hit is
    // a packet region both entries claim.
    for (size_t a = 0; a < groups.size(); ++a) {
      for (size_t b = a + 1; b < groups.size(); ++b) {
        ++report.mask_pairs_checked;
        const Words inter = common_mask(groups[a].mask, groups[b].mask);
        std::unordered_map<Words, size_t, WordsHash> proj;
        proj.reserve(groups[a].idx.size());
        for (size_t i : groups[a].idx)
          proj.emplace(masked_words(be.flow_match(flows[i]).key, inter), i);
        for (size_t j : groups[b].idx) {
          const auto it =
              proj.find(masked_words(be.flow_match(flows[j]).key, inter));
          if (it == proj.end()) continue;
          const size_t i = it->second;
          const bool same_actions =
              be.flow_actions(flows[i]) == be.flow_actions(flows[j]);
          if (same_actions) {
            ++report.benign_overlaps;
            if (!cfg.quarantine_benign_overlaps) continue;
          } else {
            ++report.overlap_violations;
            note(report, cfg,
                 "overlap: " + be.flow_match(flows[i]).to_string() + " vs " +
                     be.flow_match(flows[j]).to_string());
          }
          doomed.push_back(std::max(i, j));
        }
      }
    }
  }

  if (cfg.check_emc) {
    report.emc_dangling_hints = be.emc_dangling_hints();
    if (report.emc_dangling_hints > 0)
      note(report, cfg,
           "emc: " + std::to_string(report.emc_dangling_hints) +
               " dangling hint(s)");
  }

  if (cfg.check_offload && be.offload_enabled()) {
    // Shadow coherence (DESIGN.md §13): the offload table holds COPIES, so
    // each slot is checked against its owner — live owner, identical action
    // snapshot, and hits <= owner packets (every slot hit also bumps the
    // owner, so a slot claiming more traffic than its owner ever saw has a
    // corrupted counter). Repair is always the same: flush the slot.
    std::unordered_map<const void*, size_t> live;
    live.reserve(flows.size());
    for (size_t i = 0; i < flows.size(); ++i) live.emplace(flows[i], i);
    for (const DpBackend::OffloadSlot& s : be.offload_dump()) {
      ++report.offload_checked;
      const auto it = live.find(s.owner);
      if (it == live.end()) {
        ++report.offload_dangling;
        report.offload_flush.push_back(s.owner);
        note(report, cfg, "offload: slot owner not among live flows");
        continue;
      }
      if (!(*s.actions == be.flow_actions(flows[it->second]))) {
        ++report.offload_stale_actions;
        report.offload_flush.push_back(s.owner);
        note(report, cfg,
             "offload: stale action snapshot for " +
                 be.flow_match(flows[it->second]).to_string());
        continue;
      }
      if (s.hits > be.flow_packets(flows[it->second])) {
        ++report.offload_stat_violations;
        report.offload_flush.push_back(s.owner);
        note(report, cfg,
             "offload: slot hits=" + std::to_string(s.hits) +
                 " > owner packets=" +
                 std::to_string(be.flow_packets(flows[it->second])));
      }
    }
  }

  if (cfg.check_stats) {
    const Datapath::Stats s = be.stats();
    if (s.packets !=
        s.offload_hits + s.microflow_hits + s.megaflow_hits + s.misses) {
      ++report.stats_violations;
      note(report, cfg,
           "stats: packets=" + std::to_string(s.packets) +
               " != offload=" + std::to_string(s.offload_hits) +
               " + emc=" + std::to_string(s.microflow_hits) +
               " + mega=" + std::to_string(s.megaflow_hits) +
               " + miss=" + std::to_string(s.misses));
    }
  }

  // Dedup (an entry can offend against several peers) and keep dump order,
  // so quarantine application is deterministic.
  std::sort(doomed.begin(), doomed.end());
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
  report.quarantine.reserve(doomed.size());
  for (size_t i : doomed) report.quarantine.push_back(flows[i]);
  return report;
}

size_t quarantine_flows(DpBackend& be, const DpCheckReport& report) {
  for (DpBackend::FlowRef o : report.offload_flush) be.offload_evict(o);
  if (!report.offload_flush.empty()) be.offload_commit();
  for (DpBackend::FlowRef f : report.quarantine) be.remove(f);
  if (!report.quarantine.empty()) be.purge_dead();
  return report.quarantine.size();
}

}  // namespace ovs
