// The microflow (exact-match) cache as OVS actually runs it concurrently
// (§4.1): many forwarding threads probe the cache lock-free while a single
// maintenance/install path updates it — "nonblocking multiple-reader,
// single-writer flow tables" built on optimistic concurrent cuckoo hashing.
//
// The single-threaded Datapath uses its own inline EMC for determinism;
// this component is the threaded counterpart, stress-tested in
// tests/concurrent_emc_test.cc and benchmarked in bench_raw_lookup.
//
// Capacity is bounded: "the microflow cache has a fixed maximum size, with
// new microflows replacing old ones" (§6). Eviction is FIFO over the
// install ring — a fair stand-in for the paper's pseudo-random replacement
// that keeps the writer O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/cuckoo.h"

namespace ovs {

class ConcurrentEmc {
 public:
  explicit ConcurrentEmc(size_t capacity = 8192)
      : capacity_(capacity), map_(capacity), ring_(capacity * 2, 0) {}

  // --- Readers (any thread, lock-free) -------------------------------------

  // Returns the hinted megaflow id for this microflow hash, if cached.
  std::optional<uint64_t> lookup(uint64_t flow_hash) const noexcept {
    uint64_t v = 0;
    if (map_.find(nonzero(flow_hash), &v)) return v;
    return std::nullopt;
  }

  // --- Writer (one thread) ---------------------------------------------------

  void install(uint64_t flow_hash, uint64_t megaflow_id) {
    const uint64_t key = nonzero(flow_hash);
    // Bounded size (§6): evict oldest installs until there is room. Stale
    // ring entries (invalidated or re-installed keys) pop as no-ops; the
    // loop terminates because every live key has a ring entry.
    while (map_.size() >= capacity_ && count_ > 0) pop_evict();
    if (count_ == ring_.size()) pop_evict();  // ring itself full
    map_.insert(key, megaflow_id);
    ring_[(head_ + count_) % ring_.size()] = key;
    ++count_;
  }

  // Drops one hint (e.g. its megaflow died); stale hints are otherwise
  // corrected by the full lookup path on first use (§6).
  void invalidate(uint64_t flow_hash) noexcept {
    map_.erase(nonzero(flow_hash));
  }

  // Drops every hint whose value satisfies pred (writer thread only). The
  // grace-period sweep: before a retired megaflow is freed, all hints that
  // still point at it must go, mirroring Datapath::purge_dead()'s sweep of
  // the inline EMC slots.
  template <typename Pred>
  void erase_if(Pred&& pred) {
    // Collect first: erase mutates the table for_each walks.
    std::vector<uint64_t> doomed;
    map_.for_each([&](uint64_t k, uint64_t v) {
      if (pred(v)) doomed.push_back(k);
    });
    for (uint64_t k : doomed) map_.erase(k);
    // Their ring slots become stale dups, which pop_evict treats as no-ops.
  }

  // Read-only visit of every (microflow hash, hint) pair. Writer-side only
  // (same contract as erase_if); the invariant checker uses it to verify
  // EMC -> megaflow coherence without reaching into the cuckoo table.
  template <typename Fn>
  void for_each_hint(Fn&& fn) const {
    map_.for_each([&](uint64_t k, uint64_t v) { fn(k, v); });
  }

  size_t size() const noexcept { return map_.size(); }
  size_t capacity() const noexcept { return capacity_; }

 private:
  // CuckooMap64 reserves key 0.
  static uint64_t nonzero(uint64_t h) noexcept { return h | 1; }

  void pop_evict() noexcept {
    if (count_ == 0) return;
    map_.erase(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
  }

  size_t capacity_;
  CuckooMap64 map_;
  std::vector<uint64_t> ring_;  // FIFO of installed keys (may hold dups)
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace ovs
