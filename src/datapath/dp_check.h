// Megaflow invariant self-check (paper §4.2, §6).
//
// The kernel classifier is priority-less and terminates on the first match,
// which is only correct because "userspace installs disjoint megaflows": no
// packet may match two installed entries with different actions. Nothing in
// the datapath enforces that at runtime — a buggy translation, a corrupted
// entry, or a reconciliation mistake would silently misdeliver on whichever
// tuple happens to be probed first. This pass makes the invariant checkable:
//
//   * pairwise disjointness — no two live entries' match regions intersect.
//     Two pre-masked entries (k1,m1), (k2,m2) overlap iff
//     ((k1 ^ k2) & (m1 & m2)) == 0 across all key words (a packet equal to
//     k1|k2 outside the common mask matches both). Overlaps with identical
//     action lists cannot misdeliver and are tallied separately as benign;
//   * EMC -> megaflow coherence — every microflow hint must still resolve
//     safely (a dead-but-unpurged target is legal, §6 corrects it on first
//     use; a dangling one is not), via DpBackend::emc_dangling_hints();
//   * stats conservation — packets == microflow_hits + megaflow_hits +
//     misses; a broken ledger means a path was double- or un-counted.
//
// Runnable from tests, as a periodic background self-check in the fleet sim,
// and as the post-reconciliation gate in Switch::restart(). Offending
// entries are listed for quarantine (delete + count) rather than left to
// misdeliver; quarantine_flows() applies the list for raw-backend callers,
// Switch::self_check() applies it with attribution cleanup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datapath/dp_backend.h"

namespace ovs {

struct DpCheckConfig {
  bool check_disjointness = true;
  bool check_emc = true;
  bool check_stats = true;
  // Offload shadow coherence (DESIGN.md §13): every offload slot's owner
  // must be a live dumped flow, the slot's action snapshot must equal the
  // owner's current actions, and the slot cannot claim more hits than its
  // owner has packets (every offload hit also bumps the owner). No-op when
  // the tier is disabled.
  bool check_offload = true;
  // Benign overlaps (identical actions) forward correctly either way; only
  // quarantine them when a caller wants the strict invariant restored.
  bool quarantine_benign_overlaps = false;
  size_t max_details = 8;  // human-readable violation descriptions kept
};

struct DpCheckReport {
  uint64_t flows_checked = 0;
  uint64_t mask_pairs_checked = 0;

  uint64_t overlap_violations = 0;  // intersecting entries, different actions
  uint64_t benign_overlaps = 0;     // intersecting entries, same actions
  uint64_t duplicate_keys = 0;      // same mask, same masked key
  uint64_t emc_dangling_hints = 0;
  uint64_t stats_violations = 0;

  // Offload shadow coherence (slots examined and the three violation
  // classes, mirroring OffloadTable::Corruption).
  uint64_t offload_checked = 0;
  uint64_t offload_stale_actions = 0;  // snapshot != owner's actions
  uint64_t offload_dangling = 0;       // owner not among live flows
  uint64_t offload_stat_violations = 0;  // slot hits > owner packets

  // Entries to delete, in dump order: the later entry of each offending
  // pair (the earlier one is what first-match semantics already serve) and
  // every duplicate beyond the first.
  std::vector<DpBackend::FlowRef> quarantine;
  // Offload slots to invalidate (listed by owner ref — possibly dangling,
  // compared by address only): the repair for every offload violation is
  // evicting the slot, letting traffic fall back to the megaflow path.
  std::vector<DpBackend::FlowRef> offload_flush;
  std::vector<std::string> details;  // capped at cfg.max_details

  uint64_t violations() const noexcept {
    return overlap_violations + duplicate_keys + emc_dangling_hints +
           stats_violations + offload_stale_actions + offload_dangling +
           offload_stat_violations;
  }
  bool ok() const noexcept { return violations() == 0; }
};

// Control-plane pass over a quiescent backend (same threading contract as
// dump/revalidation: no concurrent mutation, workers outside batches).
DpCheckReport run_dp_check(const DpBackend& be, const DpCheckConfig& cfg = {});

// Deletes every entry in report.quarantine. Returns the number removed.
// Callers that keep per-flow state keyed on FlowRef (vswitchd attribution)
// must drop it themselves; see Switch::self_check().
size_t quarantine_flows(DpBackend& be, const DpCheckReport& report);

}  // namespace ovs
