// The datapath seam: one interface over the single-threaded `Datapath` and
// the multi-worker `ShardedDatapath`, so `vswitchd::Switch` (install paths,
// upcall sink, fault injection, degradation knobs, revalidation, counters)
// is written once and runs against either backend.
//
// Flows are referred to by an opaque `FlowRef` (the backend's entry pointer
// type-erased), with accessor methods instead of a common entry base class —
// the two entry types have deliberately different memory layouts (plain
// fields vs. worker-shared atomics) and the control plane only ever reads a
// handful of fields per flow.
//
// Threading contract, inherited from the backends: every method here is
// control-plane (one thread at a time) EXCEPT the fast path
// (receive / process_batch), which on the sharded backend may also be driven
// concurrently by its worker pool around the seam. The per-flow read
// accessors (flow_actions / flow_packets / ... / flow_tags) are additionally
// safe to call from revalidator plan threads while workers stream, because
// on the sharded backend they read RCU-published pointers and atomics; the
// single backend simply must not be planned against concurrently with
// mutation, which the serial control thread guarantees by construction.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "datapath/datapath.h"
#include "datapath/mt_datapath.h"

namespace ovs {

class DpBackend {
 public:
  // Opaque flow handle: MegaflowEntry* or MtMegaflow* underneath.
  using FlowRef = void*;

  virtual ~DpBackend() = default;

  // --- Fast path -----------------------------------------------------------

  virtual Datapath::RxResult receive(const Packet& pkt, uint64_t now_ns) = 0;
  virtual void process_batch(std::span<const Packet> pkts, uint64_t now_ns,
                             Datapath::RxResult* results,
                             Datapath::BatchSummary* summary) = 0;

  // --- Control path --------------------------------------------------------

  // nullptr on failure (table full / transient fault); an existing entry on
  // a duplicate masked key. Callers distinguish a fresh install from a dup
  // by watching flow_count().
  // full_key, when given, is the unmasked key of the packet that triggered
  // the install; defaults to match.key (masked) for synthetic installs.
  virtual FlowRef install(const Match& match, DpActions actions,
                          uint64_t now_ns,
                          const FlowKey* full_key = nullptr) = 0;
  virtual void remove(FlowRef flow) = 0;
  virtual void update_actions(FlowRef flow, DpActions actions) = 0;
  virtual void credit_packet(FlowRef flow, const Packet& pkt,
                             uint64_t now_ns) = 0;
  virtual void purge_dead() = 0;
  virtual std::vector<FlowRef> dump() const = 0;
  virtual size_t flow_count() const = 0;
  virtual size_t mask_count() const = 0;

  // --- Per-flow accessors --------------------------------------------------

  virtual const Match& flow_match(FlowRef flow) const = 0;
  // Full-fidelity install-time key (the udpif key): what revalidation and
  // restart reconciliation must re-translate. flow_match(f).key is
  // pre-masked, and translating a masked key can reproduce the entry's own
  // stale mask, keeping over-broad flows alive forever.
  virtual const FlowKey& flow_full_key(FlowRef flow) const = 0;
  // The returned reference is valid until the flow's next update_actions /
  // purge_dead (sharded: RCU — also safe against concurrent swaps, readers
  // keep the list they loaded until the next grace period).
  virtual const DpActions& flow_actions(FlowRef flow) const = 0;
  virtual uint64_t flow_packets(FlowRef flow) const = 0;
  virtual uint64_t flow_bytes(FlowRef flow) const = 0;
  virtual uint64_t flow_used_ns(FlowRef flow) const = 0;
  virtual uint64_t flow_tags(FlowRef flow) const = 0;
  virtual void set_flow_tags(FlowRef flow, uint64_t tags) = 0;

  // --- Simulated NIC offload tier (DESIGN.md §13) --------------------------
  //
  // The control plane earns/revokes slots here; the backend keeps the slot
  // coherent with its owner on remove()/update_actions() automatically.
  // offload_commit() makes pending control-plane slot changes visible to the
  // fast path (a republish on the sharded backend; a no-op on the single
  // one, whose fast path reads the master directly). purge_dead() commits
  // too, so the revalidator's end-of-pass purge doubles as the publish.

  // One dumped slot. Pointers reach into the backend's master table and stay
  // valid until the next offload mutation (control thread only).
  struct OffloadSlot {
    FlowRef owner;
    const FlowMask* mask;
    const FlowKey* key;
    const DpActions* actions;  // the slot's snapshot, not the owner's
    uint64_t hits;
    uint64_t bytes;
  };

  virtual bool offload_enabled() const = 0;
  virtual size_t offload_size() const = 0;
  virtual size_t offload_capacity() const = 0;
  virtual bool offload_contains(FlowRef flow) const = 0;
  virtual bool offload_install(FlowRef flow, uint64_t now_ns) = 0;
  virtual bool offload_evict(FlowRef flow) = 0;
  virtual void offload_commit() = 0;
  virtual std::vector<OffloadSlot> offload_dump() const = 0;
  // Test-only slot desynchronization for the invariant checker.
  virtual bool offload_corrupt(size_t idx, OffloadTable::Corruption kind) = 0;

  // --- Upcalls -------------------------------------------------------------

  virtual std::vector<Packet> take_upcalls(size_t max_batch) = 0;
  virtual size_t upcall_queue_depth() const = 0;
  virtual void set_upcall_sink(Datapath::UpcallSink sink) = 0;
  virtual size_t flush_delayed_upcalls() = 0;
  virtual size_t delayed_upcall_count() const = 0;

  // --- Faults and policy knobs --------------------------------------------

  virtual void set_fault_injector(FaultInjector* f) = 0;
  virtual void corrupt_entry(size_t idx) = 0;
  virtual void expire_entry(size_t idx) = 0;
  virtual void set_emc_insert_inv_prob(uint32_t inv) = 0;
  virtual bool microflow_enabled() const = 0;

  // Uniform statistics shape (the sharded backend maps its per-worker
  // tallies into the same struct; stale_hints land in stale_microflow_hits).
  virtual Datapath::Stats stats() const = 0;

  // EMC -> megaflow coherence probe for the invariant checker
  // (datapath/dp_check.h): hints that cannot safely resolve — a pointer
  // outside the live + graveyard entry sets (single) or a tuple index
  // outside the directory (sharded). Control thread, workers quiescent.
  virtual size_t emc_dangling_hints() const = 0;

  virtual size_t n_workers() const = 0;

  // Downcasts for backend-specific drivers (benches, stress tests, legacy
  // Switch::datapath()). nullptr when this is the other backend.
  virtual Datapath* single() noexcept { return nullptr; }
  virtual ShardedDatapath* sharded() noexcept { return nullptr; }
};

// `Datapath` behind the seam.
class SingleDpBackend final : public DpBackend {
 public:
  explicit SingleDpBackend(const DatapathConfig& cfg) : dp_(cfg) {}

  Datapath::RxResult receive(const Packet& pkt, uint64_t now_ns) override {
    return dp_.receive(pkt, now_ns);
  }
  void process_batch(std::span<const Packet> pkts, uint64_t now_ns,
                     Datapath::RxResult* results,
                     Datapath::BatchSummary* summary) override {
    dp_.process_batch(pkts, now_ns, results, summary);
  }

  FlowRef install(const Match& match, DpActions actions, uint64_t now_ns,
                  const FlowKey* full_key = nullptr) override {
    return dp_.install(match, std::move(actions), now_ns, full_key);
  }
  void remove(FlowRef flow) override { dp_.remove(as(flow)); }
  void update_actions(FlowRef flow, DpActions actions) override {
    dp_.update_actions(as(flow), std::move(actions));
  }
  void credit_packet(FlowRef flow, const Packet& pkt,
                     uint64_t now_ns) override {
    dp_.credit_packet(as(flow), pkt, now_ns);
  }
  void purge_dead() override { dp_.purge_dead(); }
  std::vector<FlowRef> dump() const override;
  size_t flow_count() const override { return dp_.flow_count(); }
  size_t mask_count() const override { return dp_.mask_count(); }

  bool offload_enabled() const override { return dp_.offload() != nullptr; }
  size_t offload_size() const override {
    return dp_.offload() != nullptr ? dp_.offload()->size() : 0;
  }
  size_t offload_capacity() const override {
    return dp_.offload() != nullptr ? dp_.offload()->capacity() : 0;
  }
  bool offload_contains(FlowRef flow) const override {
    return dp_.offload() != nullptr && dp_.offload()->contains(flow);
  }
  bool offload_install(FlowRef flow, uint64_t now_ns) override {
    return dp_.offload_install(as(flow), now_ns);
  }
  bool offload_evict(FlowRef flow) override {
    return dp_.offload_evict(as(flow));
  }
  void offload_commit() override {}  // fast path reads the master directly
  std::vector<OffloadSlot> offload_dump() const override;
  bool offload_corrupt(size_t idx, OffloadTable::Corruption kind) override {
    return dp_.offload_corrupt(idx, kind);
  }

  const Match& flow_match(FlowRef flow) const override {
    return as(flow)->match();
  }
  const FlowKey& flow_full_key(FlowRef flow) const override {
    return as(flow)->full_key();
  }
  const DpActions& flow_actions(FlowRef flow) const override {
    return as(flow)->actions();
  }
  uint64_t flow_packets(FlowRef flow) const override {
    return as(flow)->packets();
  }
  uint64_t flow_bytes(FlowRef flow) const override {
    return as(flow)->bytes();
  }
  uint64_t flow_used_ns(FlowRef flow) const override {
    return as(flow)->used_ns();
  }
  uint64_t flow_tags(FlowRef flow) const override { return as(flow)->tags; }
  void set_flow_tags(FlowRef flow, uint64_t tags) override {
    as(flow)->tags = tags;
  }

  std::vector<Packet> take_upcalls(size_t max_batch) override {
    return dp_.take_upcalls(max_batch);
  }
  size_t upcall_queue_depth() const override {
    return dp_.upcall_queue_depth();
  }
  void set_upcall_sink(Datapath::UpcallSink sink) override {
    dp_.set_upcall_sink(std::move(sink));
  }
  size_t flush_delayed_upcalls() override {
    return dp_.flush_delayed_upcalls();
  }
  size_t delayed_upcall_count() const override {
    return dp_.delayed_upcall_count();
  }

  void set_fault_injector(FaultInjector* f) override {
    dp_.set_fault_injector(f);
  }
  void corrupt_entry(size_t idx) override { dp_.corrupt_entry(idx); }
  void expire_entry(size_t idx) override { dp_.expire_entry(idx); }
  void set_emc_insert_inv_prob(uint32_t inv) override {
    dp_.set_emc_insert_inv_prob(inv);
  }
  bool microflow_enabled() const override {
    return dp_.config().microflow_enabled;
  }

  Datapath::Stats stats() const override { return dp_.stats(); }
  size_t emc_dangling_hints() const override {
    return dp_.emc_dangling_hints();
  }
  size_t n_workers() const override { return 1; }
  Datapath* single() noexcept override { return &dp_; }

 private:
  static MegaflowEntry* as(FlowRef f) noexcept {
    return static_cast<MegaflowEntry*>(f);
  }
  Datapath dp_;
};

// `ShardedDatapath` behind the seam. The seam itself stays single-threaded
// (it is driven by the control thread); bursts are spread round-robin across
// the worker slots so every per-worker EMC shard participates, modeling N rx
// queues polled by N PMDs. The built-in worker pool can additionally stream
// around the seam (benches, stress tests) via sharded().
class MtDpBackend final : public DpBackend {
 public:
  explicit MtDpBackend(const ShardedDatapathConfig& cfg) : dp_(cfg) {}

  Datapath::RxResult receive(const Packet& pkt, uint64_t now_ns) override;
  void process_batch(std::span<const Packet> pkts, uint64_t now_ns,
                     Datapath::RxResult* results,
                     Datapath::BatchSummary* summary) override;

  FlowRef install(const Match& match, DpActions actions, uint64_t now_ns,
                  const FlowKey* full_key = nullptr) override {
    return dp_.install(match, std::move(actions), now_ns, full_key);
  }
  void remove(FlowRef flow) override { dp_.remove(as(flow)); }
  void update_actions(FlowRef flow, DpActions actions) override {
    dp_.update_actions(as(flow), std::move(actions));
  }
  void credit_packet(FlowRef flow, const Packet& pkt,
                     uint64_t now_ns) override {
    dp_.credit_packet(as(flow), pkt, now_ns);
  }
  void purge_dead() override { dp_.purge_dead(); }
  std::vector<FlowRef> dump() const override;
  size_t flow_count() const override { return dp_.flow_count(); }
  size_t mask_count() const override { return dp_.mask_count(); }

  bool offload_enabled() const override { return dp_.offload() != nullptr; }
  size_t offload_size() const override {
    return dp_.offload() != nullptr ? dp_.offload()->size() : 0;
  }
  size_t offload_capacity() const override {
    return dp_.offload() != nullptr ? dp_.offload()->capacity() : 0;
  }
  bool offload_contains(FlowRef flow) const override {
    return dp_.offload() != nullptr && dp_.offload()->contains(flow);
  }
  bool offload_install(FlowRef flow, uint64_t now_ns) override {
    return dp_.offload_install(as(flow), now_ns);
  }
  bool offload_evict(FlowRef flow) override {
    return dp_.offload_evict(as(flow));
  }
  void offload_commit() override { dp_.offload_commit(); }
  std::vector<OffloadSlot> offload_dump() const override;
  bool offload_corrupt(size_t idx, OffloadTable::Corruption kind) override {
    return dp_.offload_corrupt(idx, kind);
  }

  const Match& flow_match(FlowRef flow) const override {
    return as(flow)->match();
  }
  const FlowKey& flow_full_key(FlowRef flow) const override {
    return as(flow)->full_key();
  }
  const DpActions& flow_actions(FlowRef flow) const override {
    return *as(flow)->actions();
  }
  uint64_t flow_packets(FlowRef flow) const override {
    return as(flow)->packets();
  }
  uint64_t flow_bytes(FlowRef flow) const override {
    return as(flow)->bytes();
  }
  uint64_t flow_used_ns(FlowRef flow) const override {
    return as(flow)->used_ns();
  }
  uint64_t flow_tags(FlowRef flow) const override { return as(flow)->tags; }
  void set_flow_tags(FlowRef flow, uint64_t tags) override {
    as(flow)->tags = tags;
  }

  std::vector<Packet> take_upcalls(size_t max_batch) override {
    return dp_.take_upcalls(max_batch);
  }
  size_t upcall_queue_depth() const override {
    return dp_.upcall_queue_depth();
  }
  void set_upcall_sink(Datapath::UpcallSink sink) override {
    dp_.set_upcall_sink(std::move(sink));
  }
  size_t flush_delayed_upcalls() override {
    return dp_.flush_delayed_upcalls();
  }
  size_t delayed_upcall_count() const override {
    return dp_.delayed_upcall_count();
  }

  void set_fault_injector(FaultInjector* f) override {
    dp_.set_fault_injector(f);
  }
  void corrupt_entry(size_t idx) override { dp_.corrupt_entry(idx); }
  void expire_entry(size_t idx) override { dp_.expire_entry(idx); }
  void set_emc_insert_inv_prob(uint32_t inv) override {
    dp_.set_emc_insert_inv_prob(inv);
  }
  bool microflow_enabled() const override { return dp_.config().emc_enabled; }

  Datapath::Stats stats() const override;
  size_t emc_dangling_hints() const override {
    return dp_.emc_dangling_hints();
  }
  size_t n_workers() const override { return dp_.config().n_workers; }
  ShardedDatapath* sharded() noexcept override { return &dp_; }

 private:
  static MtMegaflow* as(FlowRef f) noexcept {
    return static_cast<MtMegaflow*>(f);
  }
  ShardedDatapath dp_;
  size_t rr_ = 0;  // next worker slot for seam-driven bursts
};

// Backend factory: workers <= 1 keeps the single-threaded kernel datapath;
// workers >= 2 builds a sharded one configured to match `cfg` (same EMC
// capacity per shard, upcall bound, insertion probability, cap, and seed).
std::unique_ptr<DpBackend> make_dp_backend(const DatapathConfig& cfg,
                                           size_t workers);

}  // namespace ovs
