#include "datapath/mt_datapath.h"

#include <algorithm>
#include <cassert>

#include "util/fault.h"

namespace ovs {

namespace {

// CuckooMap64 reserves key 0 as the empty marker.
uint64_t table_key(uint64_t hash) noexcept { return hash | 1; }

}  // namespace

// --- MtTuple -----------------------------------------------------------------

ShardedDatapath::MtTuple::MtTuple(const FlowMask& m, size_t capacity)
    : mask(m), schema_(m), table(capacity) {}

const MtMegaflow* ShardedDatapath::MtTuple::find(
    const FlowKey& pkt) const noexcept {
  uint64_t v = 0;
  if (!table.find(table_key(hash_key(pkt)), &v)) return nullptr;
  // Walk the (short) same-hash chain; entries are skipped once dead so a
  // reader never resolves to a flow the control thread already removed.
  for (auto* e = reinterpret_cast<const MtMegaflow*>(v); e != nullptr;
       e = e->hash_next_.load(std::memory_order_acquire)) {
    if (!e->dead() && masked_equal(pkt, e->match().key)) return e;
  }
  return nullptr;
}

// --- Construction ------------------------------------------------------------

ShardedDatapath::ShardedDatapath(ShardedDatapathConfig cfg)
    : cfg_(cfg), dir_(cfg.max_tuples) {
  assert(cfg_.n_workers >= 1);
  emc_insert_inv_prob_.store(
      cfg_.emc_insert_inv_prob == 0 ? 1 : cfg_.emc_insert_inv_prob,
      std::memory_order_relaxed);
  slots_.reserve(cfg_.n_workers);
  for (size_t i = 0; i < cfg_.n_workers; ++i) {
    auto s = std::make_unique<WorkerSlot>();
    if (cfg_.emc_enabled)
      s->emc = std::make_unique<ConcurrentEmc>(cfg_.emc_capacity_per_shard);
    // Sub-seed per shard so worker streams stay independent.
    s->rng = Rng(cfg_.seed + 0x9E3779B97F4A7C15ULL * (i + 1));
    slots_.push_back(std::move(s));
  }
  if (cfg_.offload_slots > 0) {
    off_ = std::make_unique<OffloadTable>(cfg_.offload_slots);
    // Publish an (empty) view right away: a non-null view is what tells
    // workers the tier exists, so probe accounting matches the
    // single-threaded backend even before the first slot is earned.
    off_current_ = off_->clone();
    off_view_.store(off_current_.get(), std::memory_order_release);
  }
}

ShardedDatapath::~ShardedDatapath() { stop(); }

// --- Worker fast path --------------------------------------------------------

const MtMegaflow* ShardedDatapath::classify(const FlowKey& key, uint32_t skip,
                                            uint32_t* searched) const noexcept {
  const uint32_t n = n_tuples_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    if (i == skip) continue;
    const MtTuple* t = dir_[i].load(std::memory_order_acquire);
    if (t == nullptr || t->n_rules.load(std::memory_order_acquire) == 0)
      continue;
    ++*searched;
    if (const MtMegaflow* e = t->find(key)) return e;
  }
  return nullptr;
}

void ShardedDatapath::process_chunk(WorkerSlot& slot, const Packet* pkts,
                                    size_t n, uint64_t now_ns,
                                    RxResult* results, BatchSummary& sum,
                                    std::vector<Packet>& missed) {
  uint64_t hashes[kMaxBatch];
  uint16_t leader[kMaxBatch];
  const MtMegaflow* entry[kMaxBatch];  // leader slots: matched megaflow
  const OffloadTable::Entry* offl[kMaxBatch];  // leader slots: offload slot
  uint16_t leaders[kMaxBatch];
  size_t n_leaders = 0;

  // Local tallies, flushed to the shared atomics once per chunk.
  uint64_t off_hits = 0;
  uint64_t micro_hits = 0, mega_hits = 0, misses = 0, stale = 0, searched = 0;
  uint64_t emc_ins = 0, emc_skips = 0;

  // One acquire load per chunk: the whole chunk probes a single consistent
  // published view (clones retired by the control thread outlive the epoch).
  const OffloadTable* off = off_view_.load(std::memory_order_acquire);

  sum.packets += static_cast<uint32_t>(n);

  for (size_t i = 0; i < n; ++i) hashes[i] = pkts[i].key.hash();

  // Intra-burst microflow dedup (same scheme as Datapath::process_chunk).
  for (size_t i = 0; i < n; ++i) {
    leader[i] = static_cast<uint16_t>(i);
    for (size_t l = 0; l < n_leaders; ++l) {
      const size_t j = leaders[l];
      if (hashes[j] == hashes[i] && pkts[j].key == pkts[i].key) {
        leader[i] = static_cast<uint16_t>(j);
        break;
      }
    }
    if (leader[i] == i) leaders[n_leaders++] = static_cast<uint16_t>(i);
  }

  const uint32_t n_tuples = n_tuples_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (leader[i] != i) {
      const RxResult& lr = results[leader[i]];
      if (lr.path == Path::kOffloadHit) {
        // Same microflow as an offloaded leader: the NIC forwards it too.
        ++off_hits;
        ++sum.offload_hits;
        results[i] = {Path::kOffloadHit, lr.actions, 0};
        continue;
      }
      if (entry[leader[i]] != nullptr) {
        if (slot.emc != nullptr) {
          ++micro_hits;
          results[i] = {Path::kMicroflowHit, lr.actions, 0};
        } else {
          ++mega_hits;
          results[i] = {Path::kMegaflowHit, lr.actions, 0};
        }
      } else {
        ++misses;
        ++sum.misses;
        missed.push_back(pkts[i]);
        results[i] = {Path::kMiss, nullptr, 0};
      }
      continue;
    }

    entry[i] = nullptr;
    offl[i] = nullptr;
    // NIC offload tier: probed before the EMC, the way hardware sees the
    // packet before the CPU does. A hit forwards from the slot's own action
    // snapshot; the owning megaflow is still credited (entry[i]) so idle
    // expiry and the revalidator's hit-rate EWMA see offloaded traffic.
    if (off != nullptr) {
      ++sum.offload_probes;
      if (const OffloadTable::Entry* oe = off->probe(pkts[i].key)) {
        ++off_hits;
        ++sum.offload_hits;
        offl[i] = oe;
        entry[i] = static_cast<const MtMegaflow*>(oe->owner);
        results[i] = {Path::kOffloadHit, &oe->actions, 0};
        continue;
      }
    }
    uint32_t skip = UINT32_MAX;  // tuple already probed via the EMC hint
    uint32_t probed = 0;
    if (slot.emc != nullptr) {
      ++sum.emc_probes;
      if (const std::optional<uint64_t> hint = slot.emc->lookup(hashes[i]);
          hint.has_value() && *hint < n_tuples) {
        const uint32_t idx = static_cast<uint32_t>(*hint);
        const MtTuple* t = dir_[idx].load(std::memory_order_acquire);
        ++probed;
        if (const MtMegaflow* e = (t != nullptr) ? t->find(pkts[i].key)
                                                 : nullptr) {
          ++micro_hits;
          searched += probed;
          sum.tuples_searched += probed;
          entry[i] = e;
          results[i] = {Path::kMicroflowHit, e->actions(), probed};
          continue;
        }
        // The hinted table no longer holds this microflow's megaflow:
        // "a stale microflow cache entry is detected and corrected the
        // first time a packet matches it" (§6).
        ++stale;
        slot.emc->invalidate(hashes[i]);
        skip = idx;
      }
    }

    const MtMegaflow* e = classify(pkts[i].key, skip, &probed);
    ++sum.megaflow_lookups;
    searched += probed;
    sum.tuples_searched += probed;
    if (e != nullptr) {
      ++mega_hits;
      if (slot.emc != nullptr) {
        // Probabilistic insertion (§7.3's churn mitigation): under microflow
        // churn most shard entries are used exactly once, so inserting
        // 1-in-N keeps the hot working set resident.
        const uint32_t inv =
            emc_insert_inv_prob_.load(std::memory_order_relaxed);
        if (inv > 1 && slot.rng.uniform(inv) != 0) {
          ++emc_skips;
        } else {
          ++emc_ins;
          slot.emc->install(hashes[i], e->tuple_idx_);
        }
      }
      entry[i] = e;
      results[i] = {Path::kMegaflowHit, e->actions(), probed};
    } else {
      ++misses;
      ++sum.misses;
      missed.push_back(pkts[i]);
      results[i] = {Path::kMiss, nullptr, probed};
    }
  }

  // One statistics bump per matched megaflow.
  for (size_t l = 0; l < n_leaders; ++l) {
    const MtMegaflow* e = entry[leaders[l]];
    if (e == nullptr) continue;
    bool first = true;
    for (size_t m = 0; m < l; ++m) {
      if (entry[leaders[m]] == e) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    ++sum.groups;
    uint64_t pkt_count = 0, byte_count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (entry[leader[i]] == e) {
        ++pkt_count;
        byte_count += pkts[i].size_bytes;
      }
    }
    const_cast<MtMegaflow*>(e)->bump(pkt_count, byte_count, now_ns);
    if (const OffloadTable::Entry* oe = offl[leaders[l]]) {
      oe->counters->hits.fetch_add(pkt_count, std::memory_order_relaxed);
      oe->counters->bytes.fetch_add(byte_count, std::memory_order_relaxed);
    }
  }

  slot.packets.fetch_add(n, std::memory_order_relaxed);
  slot.offload_hits.fetch_add(off_hits, std::memory_order_relaxed);
  slot.microflow_hits.fetch_add(micro_hits, std::memory_order_relaxed);
  slot.megaflow_hits.fetch_add(mega_hits, std::memory_order_relaxed);
  slot.misses.fetch_add(misses, std::memory_order_relaxed);
  slot.stale_hints.fetch_add(stale, std::memory_order_relaxed);
  slot.tuples_searched.fetch_add(searched, std::memory_order_relaxed);
  slot.emc_inserts.fetch_add(emc_ins, std::memory_order_relaxed);
  slot.emc_insert_skips.fetch_add(emc_skips, std::memory_order_relaxed);
}

void ShardedDatapath::deliver_locked(Packet&& pkt, uint64_t* drops) {
  if (sink_) {
    if (!sink_(std::move(pkt))) ++*drops;
    return;
  }
  if (upcalls_.size() >= cfg_.max_upcall_queue) {
    ++*drops;
  } else {
    upcalls_.push_back(std::move(pkt));
  }
}

void ShardedDatapath::flush_upcalls(std::vector<Packet>& missed) {
  uint64_t drops = 0, delayed = 0, dups = 0;
  FaultInjector* fault = fault_;
  {
    std::lock_guard<std::mutex> lk(upcall_mu_);
    for (Packet& p : missed) {
      if (fault != nullptr) {
        if (fault->should_fire(FaultPoint::kUpcallDrop)) {
          ++drops;
          continue;
        }
        if (fault->should_fire(FaultPoint::kUpcallDelay)) {
          delayed_.push_back(std::move(p));
          ++delayed;
          continue;
        }
        if (fault->should_fire(FaultPoint::kUpcallDuplicate)) {
          deliver_locked(Packet(p), &drops);  // copy: original follows
          ++dups;
        }
      }
      deliver_locked(std::move(p), &drops);
    }
  }
  if (drops != 0) upcall_drops_.fetch_add(drops, std::memory_order_relaxed);
  if (delayed != 0)
    upcalls_delayed_.fetch_add(delayed, std::memory_order_relaxed);
  if (dups != 0)
    upcall_dup_enqueues_.fetch_add(dups, std::memory_order_relaxed);
  missed.clear();
}

size_t ShardedDatapath::flush_delayed_upcalls() {
  uint64_t drops = 0;
  size_t released = 0;
  {
    std::lock_guard<std::mutex> lk(upcall_mu_);
    while (!delayed_.empty()) {
      const uint64_t before = drops;
      deliver_locked(std::move(delayed_.front()), &drops);
      if (drops == before) ++released;
      delayed_.pop_front();
    }
  }
  if (drops != 0) upcall_drops_.fetch_add(drops, std::memory_order_relaxed);
  return released;
}

size_t ShardedDatapath::delayed_upcall_count() const {
  std::lock_guard<std::mutex> lk(upcall_mu_);
  return delayed_.size();
}

void ShardedDatapath::process_batch(size_t worker, std::span<const Packet> pkts,
                                    uint64_t now_ns, RxResult* results,
                                    BatchSummary* summary) {
  assert(worker < slots_.size());
  WorkerSlot& slot = *slots_[worker];

  // Enter the read-side critical section: epoch odd. The RMW orders every
  // subsequent table load after the flip, so the control thread can free
  // nothing this batch can still see once it observes us quiescent.
  slot.epoch.fetch_add(1, std::memory_order_acq_rel);
  process_batch_in_epoch(slot, pkts, now_ns, results, summary);
  // Leave: epoch even again (release: all our reads happen-before the
  // control thread seeing us quiescent).
  slot.epoch.fetch_add(1, std::memory_order_release);
}

void ShardedDatapath::process_batch_in_epoch(WorkerSlot& slot,
                                             std::span<const Packet> pkts,
                                             uint64_t now_ns,
                                             RxResult* results,
                                             BatchSummary* summary) {
  BatchSummary local;
  std::vector<Packet> missed;
  for (size_t off = 0; off < pkts.size(); off += kMaxBatch) {
    const size_t n = std::min(kMaxBatch, pkts.size() - off);
    process_chunk(slot, pkts.data() + off, n, now_ns, results + off, local,
                  missed);
  }
  if (!missed.empty()) flush_upcalls(missed);
  if (summary != nullptr) *summary += local;
}

// --- Control path ------------------------------------------------------------

ShardedDatapath::MtTuple* ShardedDatapath::writer_find_tuple(
    const FlowMask& mask, bool create) {
  const uint32_t n = n_tuples_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < n; ++i) {
    MtTuple* t = dir_[i].load(std::memory_order_relaxed);
    if (t->mask == mask) return t;
  }
  if (!create || n >= cfg_.max_tuples) return nullptr;
  auto owned = std::make_unique<MtTuple>(mask, cfg_.tuple_capacity);
  owned->dir_idx = n;
  MtTuple* t = owned.get();
  tuples_.push_back(std::move(owned));
  // Publish the tuple, then the count (release pairs with readers' acquire
  // of n_tuples_: a visible index always dereferences to a built tuple).
  dir_[n].store(t, std::memory_order_release);
  n_tuples_.store(n + 1, std::memory_order_release);
  return t;
}

MtMegaflow* ShardedDatapath::install(const Match& match, DpActions actions,
                                     uint64_t now_ns,
                                     const FlowKey* full_key) {
  Match m = match;
  m.normalize();
  if (fault_ != nullptr) {
    if (fault_->should_fire(FaultPoint::kInstallTableFull)) {
      install_fail_full_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    if (fault_->should_fire(FaultPoint::kInstallTransient)) {
      install_fail_transient_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
  MtTuple* t = writer_find_tuple(m.mask, /*create=*/true);
  if (t == nullptr) return nullptr;  // tuple directory full

  const uint64_t key = table_key(t->hash_key(m.key));
  MtMegaflow* head = nullptr;
  uint64_t v = 0;
  if (t->table.find(key, &v)) head = reinterpret_cast<MtMegaflow*>(v);
  for (MtMegaflow* e = head; e != nullptr;
       e = e->hash_next_.load(std::memory_order_relaxed)) {
    if (!e->dead() && t->masked_equal(m.key, e->match().key)) return e;
  }

  // After the duplicate check, like Datapath: a re-install of an existing
  // flow at the cap returns the existing entry rather than failing.
  if (cfg_.max_flows != 0 && flow_count() >= cfg_.max_flows) {
    install_fail_full_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  auto owned = std::unique_ptr<MtMegaflow>(new MtMegaflow(m));
  MtMegaflow* e = owned.get();
  e->full_key_ = full_key != nullptr ? *full_key : m.key;
  e->actions_.store(new DpActions(std::move(actions)),
                    std::memory_order_relaxed);
  e->created_ns_ = now_ns;
  e->used_ns_.store(now_ns, std::memory_order_relaxed);
  e->hash_ = key;
  e->tuple_idx_ = t->dir_idx;
  e->hash_next_.store(head, std::memory_order_relaxed);
  e->index_ = entries_.size();
  entries_.push_back(std::move(owned));

  // Single release-ordered publication point: the cuckoo insert. A reader
  // that sees the new head sees a fully built entry (seqlock release/acquire
  // pairing inside CuckooMap64).
  t->table.insert(key, reinterpret_cast<uint64_t>(e));
  t->n_rules.fetch_add(1, std::memory_order_release);
  n_flows_.fetch_add(1, std::memory_order_relaxed);
  return e;
}

void ShardedDatapath::remove(MtMegaflow* entry) {
  assert(!entry->dead());
  // The megaflow's offload slot dies with it — same pass, master first;
  // workers keep forwarding from the old view until the republish that
  // purge_dead() performs before it frees this entry.
  if (off_ != nullptr && off_->evict(entry)) off_dirty_ = true;
  // Dead first: readers that still reach the entry (via a chain they are
  // mid-walk on, or a retired cuckoo snapshot) skip it from here on.
  entry->dead_.store(true, std::memory_order_release);

  MtTuple* t = dir_[entry->tuple_idx_].load(std::memory_order_relaxed);
  uint64_t v = 0;
  if (t->table.find(entry->hash_, &v)) {
    auto* head = reinterpret_cast<MtMegaflow*>(v);
    MtMegaflow* next = entry->hash_next_.load(std::memory_order_relaxed);
    if (head == entry) {
      if (next != nullptr) {
        t->table.insert(entry->hash_, reinterpret_cast<uint64_t>(next));
      } else {
        t->table.erase(entry->hash_);
      }
    } else {
      for (MtMegaflow* p = head; p != nullptr;
           p = p->hash_next_.load(std::memory_order_relaxed)) {
        if (p->hash_next_.load(std::memory_order_relaxed) == entry) {
          // entry->hash_next_ is never cleared, so a reader paused on the
          // unlinked entry still walks out to the chain's live tail.
          p->hash_next_.store(next, std::memory_order_release);
          break;
        }
      }
    }
  }
  t->n_rules.fetch_sub(1, std::memory_order_release);
  n_flows_.fetch_sub(1, std::memory_order_relaxed);

  const size_t i = entry->index_;
  assert(i < entries_.size() && entries_[i].get() == entry);
  graveyard_.push_back(std::move(entries_[i]));
  if (i + 1 != entries_.size()) {
    entries_[i] = std::move(entries_.back());
    entries_[i]->index_ = i;
  }
  entries_.pop_back();
}

void ShardedDatapath::update_actions(MtMegaflow* entry, DpActions actions) {
  const auto* fresh = new DpActions(std::move(actions));
  const DpActions* old =
      entry->actions_.exchange(fresh, std::memory_order_acq_rel);
  // A worker mid-batch may still be executing `old`; retire it until the
  // next grace period.
  retired_actions_.emplace_back(old);
  // Reprogram the slot's snapshot (revalidator repair reaches hardware in
  // the same pass it reaches the megaflow).
  if (off_ != nullptr && off_->sync_actions(entry, *entry->actions()))
    off_dirty_ = true;
}

void ShardedDatapath::corrupt_entry(size_t idx) {
  if (entries_.empty()) return;
  MtMegaflow* e = entries_[idx % entries_.size()].get();
  // A recognizably bogus action list: forward to a port that exists
  // nowhere. Published via the RCU swap, so mid-batch readers stay safe;
  // the flow misbehaves until a revalidator pass re-translates it.
  DpActions bogus;
  bogus.output(0xDEAD);
  update_actions(e, std::move(bogus));
  entries_corrupted_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedDatapath::expire_entry(size_t idx) {
  if (entries_.empty()) return;
  MtMegaflow* e = entries_[idx % entries_.size()].get();
  e->used_ns_.store(0, std::memory_order_relaxed);
  entries_expired_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedDatapath::synchronize() {
  for (const auto& sp : slots_) {
    const uint64_t e0 = sp->epoch.load(std::memory_order_acquire);
    if ((e0 & 1) == 0) continue;  // quiescent right now
    while (sp->epoch.load(std::memory_order_acquire) == e0)
      std::this_thread::yield();
  }
}

void ShardedDatapath::purge_dead() {
  // Republish the offload view BEFORE waiting out the grace period: once
  // synchronize() returns, no worker can still probe a view that names an
  // entry this call is about to free.
  if (off_dirty_) publish_offload();
  if (graveyard_.empty() && retired_actions_.empty() &&
      retired_off_.empty()) {
    // Still reclaim cuckoo arrays retired by growth.
    bool any = false;
    for (const auto& t : tuples_)
      if (t->table.retired_tables() != 0) any = true;
    if (!any) return;
  }
  synchronize();
  graveyard_.clear();
  retired_actions_.clear();
  retired_off_.clear();
  for (const auto& t : tuples_) t->table.free_retired();
}

void ShardedDatapath::publish_offload() {
  retired_off_.push_back(std::move(off_current_));
  off_current_ = off_->clone();
  off_view_.store(off_current_.get(), std::memory_order_release);
  off_dirty_ = false;
}

bool ShardedDatapath::offload_install(MtMegaflow* e, uint64_t now_ns) {
  if (off_ == nullptr ||
      !off_->install(e->match(), *e->actions(), e, now_ns))
    return false;
  off_dirty_ = true;
  return true;
}

bool ShardedDatapath::offload_evict(MtMegaflow* e) {
  if (off_ == nullptr || !off_->evict(e)) return false;
  off_dirty_ = true;
  return true;
}

void ShardedDatapath::offload_commit() {
  if (off_ != nullptr && off_dirty_) publish_offload();
}

bool ShardedDatapath::offload_corrupt(size_t idx,
                                      OffloadTable::Corruption kind) {
  if (off_ == nullptr || !off_->corrupt(idx, kind)) return false;
  off_dirty_ = true;
  return true;
}

std::vector<MtMegaflow*> ShardedDatapath::dump() const {
  std::vector<MtMegaflow*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.get());
  return out;
}

size_t ShardedDatapath::mask_count() const noexcept {
  const uint32_t n = n_tuples_.load(std::memory_order_acquire);
  size_t live = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const MtTuple* t = dir_[i].load(std::memory_order_acquire);
    if (t != nullptr && t->n_rules.load(std::memory_order_relaxed) != 0)
      ++live;
  }
  return live;
}

std::vector<Packet> ShardedDatapath::take_upcalls(size_t max_batch) {
  std::vector<Packet> out;
  uint64_t drops = 0;
  {
    std::lock_guard<std::mutex> lk(upcall_mu_);
    const size_t n = std::min(max_batch, upcalls_.size());
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(upcalls_.front()));
      upcalls_.pop_front();
    }
    // Delay-faulted upcalls become visible one handler round late.
    while (!delayed_.empty()) {
      deliver_locked(std::move(delayed_.front()), &drops);
      delayed_.pop_front();
    }
  }
  if (drops != 0) upcall_drops_.fetch_add(drops, std::memory_order_relaxed);
  return out;
}

size_t ShardedDatapath::upcall_queue_depth() const {
  std::lock_guard<std::mutex> lk(upcall_mu_);
  return upcalls_.size();
}

ShardedDatapath::Stats ShardedDatapath::stats() const {
  Stats s;
  for (const auto& sp : slots_) {
    s.packets += sp->packets.load(std::memory_order_relaxed);
    s.offload_hits += sp->offload_hits.load(std::memory_order_relaxed);
    s.microflow_hits += sp->microflow_hits.load(std::memory_order_relaxed);
    s.megaflow_hits += sp->megaflow_hits.load(std::memory_order_relaxed);
    s.misses += sp->misses.load(std::memory_order_relaxed);
    s.stale_hints += sp->stale_hints.load(std::memory_order_relaxed);
    s.tuples_searched += sp->tuples_searched.load(std::memory_order_relaxed);
    s.emc_inserts += sp->emc_inserts.load(std::memory_order_relaxed);
    s.emc_insert_skips +=
        sp->emc_insert_skips.load(std::memory_order_relaxed);
  }
  s.upcall_drops = upcall_drops_.load(std::memory_order_relaxed);
  s.install_fail_full = install_fail_full_.load(std::memory_order_relaxed);
  s.install_fail_transient =
      install_fail_transient_.load(std::memory_order_relaxed);
  s.install_fails = s.install_fail_full + s.install_fail_transient;
  s.upcalls_delayed = upcalls_delayed_.load(std::memory_order_relaxed);
  s.upcall_dup_enqueues =
      upcall_dup_enqueues_.load(std::memory_order_relaxed);
  s.entries_corrupted = entries_corrupted_.load(std::memory_order_relaxed);
  s.entries_expired = entries_expired_.load(std::memory_order_relaxed);
  return s;
}

size_t ShardedDatapath::emc_dangling_hints() const {
  const uint32_t n = n_tuples_.load(std::memory_order_acquire);
  size_t dangling = 0;
  for (const auto& sp : slots_) {
    if (sp->emc == nullptr) continue;
    sp->emc->for_each_hint([&](uint64_t, uint64_t v) {
      if (v >= n) ++dangling;
    });
  }
  return dangling;
}

// --- Worker pool -------------------------------------------------------------

void ShardedDatapath::start() {
  if (started_) return;
  threads_.clear();
  for (size_t w = 0; w < cfg_.n_workers; ++w)
    threads_.push_back(std::make_unique<WorkerThread>());
  started_ = true;
  for (size_t w = 0; w < cfg_.n_workers; ++w)
    threads_[w]->th = std::thread([this, w] { worker_loop(w); });
}

void ShardedDatapath::stop() {
  if (!started_) return;
  for (const auto& t : threads_) {
    {
      std::lock_guard<std::mutex> lk(t->mu);
      t->stopping = true;
    }
    t->cv.notify_all();
  }
  for (const auto& t : threads_)
    if (t->th.joinable()) t->th.join();
  threads_.clear();
  started_ = false;
}

void ShardedDatapath::submit(size_t worker, std::vector<Packet> burst,
                             uint64_t now_ns) {
  assert(started_ && worker < threads_.size());
  WorkerThread& t = *threads_[worker];
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(t.mu);
    t.q.emplace_back(std::move(burst), now_ns);
  }
  t.cv.notify_one();
}

void ShardedDatapath::drain() {
  while (in_flight_.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
}

void ShardedDatapath::worker_loop(size_t w) {
  WorkerThread& t = *threads_[w];
  std::vector<RxResult> results;
  for (;;) {
    std::pair<std::vector<Packet>, uint64_t> job;
    {
      std::unique_lock<std::mutex> lk(t.mu);
      t.cv.wait(lk, [&] { return t.stopping || !t.q.empty(); });
      if (t.q.empty()) return;  // stopping, queue drained
      job = std::move(t.q.front());
      t.q.pop_front();
    }
    results.resize(job.first.size());
    // The callback runs INSIDE the worker's epoch: it reads the RxResult
    // actions pointers, which purge_dead() on the control thread may free
    // as soon as it observes this worker quiescent.
    WorkerSlot& slot = *slots_[w];
    slot.epoch.fetch_add(1, std::memory_order_acq_rel);
    process_batch_in_epoch(slot, job.first, job.second, results.data(),
                           nullptr);
    if (callback_)
      callback_(w, std::span<const RxResult>(results.data(), results.size()));
    slot.epoch.fetch_add(1, std::memory_order_release);
    in_flight_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace ovs
