#include "datapath/offload_table.h"

namespace ovs {

std::unique_ptr<OffloadTable> OffloadTable::clone() const {
  auto out = std::make_unique<OffloadTable>(capacity_);
  out->groups_.reserve(groups_.size());
  for (const MaskGroup& g : groups_) {
    MaskGroup ng;
    ng.mask = g.mask;
    ng.schema = g.schema;
    for (const auto& [h, e] : g.slots) {
      auto ne = std::make_unique<Entry>(*e);  // shares e->counters
      out->by_owner_.emplace(ne->owner, ne.get());
      ng.slots.emplace(h, std::move(ne));
    }
    out->groups_.push_back(std::move(ng));
  }
  out->n_entries_ = n_entries_;
  return out;
}

const OffloadTable::Entry* OffloadTable::probe(
    const FlowKey& pkt) const noexcept {
  for (const MaskGroup& g : groups_) {
    const uint64_t h = g.schema.full_hash(pkt);
    auto [it, end] = g.slots.equal_range(h);
    for (; it != end; ++it)
      if (g.schema.masked_equal(pkt, it->second->key)) return it->second.get();
  }
  return nullptr;
}

bool OffloadTable::install(const Match& match, const DpActions& actions,
                           void* owner, uint64_t now_ns) {
  if (n_entries_ >= capacity_ || by_owner_.count(owner) != 0) return false;
  MaskGroup* group = nullptr;
  for (MaskGroup& g : groups_)
    if (g.mask == match.mask) {
      group = &g;
      break;
    }
  if (group == nullptr) {
    groups_.push_back({match.mask, MiniflowSchema(match.mask), {}});
    group = &groups_.back();
  }
  auto e = std::make_unique<Entry>();
  e->mask = match.mask;
  e->key = match.key;
  e->actions = actions;
  e->owner = owner;
  e->counters = std::make_shared<OffloadCounters>();
  e->installed_ns = now_ns;
  by_owner_.emplace(owner, e.get());
  group->slots.emplace(group->schema.full_hash(match.key), std::move(e));
  ++n_entries_;
  return true;
}

bool OffloadTable::evict(const void* owner) {
  auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) return false;
  const Entry* target = it->second;
  by_owner_.erase(it);
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    MaskGroup& g = groups_[gi];
    if (!(g.mask == target->mask)) continue;
    const uint64_t h = g.schema.full_hash(target->key);
    auto [sit, send] = g.slots.equal_range(h);
    for (; sit != send; ++sit) {
      if (sit->second.get() != target) continue;
      g.slots.erase(sit);
      --n_entries_;
      if (g.slots.empty()) groups_.erase(groups_.begin() + gi);
      return true;
    }
  }
  return false;  // unreachable while by_owner_ stays coherent
}

bool OffloadTable::sync_actions(const void* owner, const DpActions& actions) {
  auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) return false;
  it->second->actions = actions;
  return true;
}

void OffloadTable::clear() {
  groups_.clear();
  by_owner_.clear();
  n_entries_ = 0;
}

void OffloadTable::for_each(
    const std::function<void(const Entry&)>& f) const {
  for (const MaskGroup& g : groups_)
    for (const auto& [h, e] : g.slots) f(*e);
}

bool OffloadTable::corrupt(size_t idx, Corruption kind) {
  if (n_entries_ == 0) return false;
  idx %= n_entries_;
  Entry* victim = nullptr;
  size_t i = 0;
  for (MaskGroup& g : groups_) {
    for (auto& [h, e] : g.slots) {
      if (i++ == idx) {
        victim = e.get();
        break;
      }
    }
    if (victim != nullptr) break;
  }
  switch (kind) {
    case Corruption::kStaleActions:
      victim->actions = DpActions{}.output(0xDEAD);
      break;
    case Corruption::kOrphanSlot:
      by_owner_.erase(victim->owner);
      victim->owner = this;  // points at no megaflow, live or parked
      by_owner_.emplace(victim->owner, victim);
      break;
    case Corruption::kInflateHits:
      victim->counters->hits.fetch_add(uint64_t{1} << 40,
                                       std::memory_order_relaxed);
      break;
  }
  return true;
}

}  // namespace ovs
