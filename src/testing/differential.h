// Differential runner: replay a Scenario against the real Switch under a
// given configuration and diff its observable behaviour against the
// OracleSwitch model, plus a delta-debugging shrinker that minimizes a
// diverging scenario to a near-minimal reproducer.
//
// What is checked, per replay:
//
//   1. Per-packet action traces (Switch trace hook). Every packet injected
//      while no fault window or crash is in effect must produce EXACTLY ONE
//      trace whose action list matches some oracle epoch alive when the
//      packet entered (stale-but-not-yet-revalidated megaflows are legal,
//      so the acceptable answer is a set, not a point — see
//      oracle_switch.h). Packets in the shadow of a fault window or crash
//      are intentionally unchecked: drops, duplicates, and late
//      redeliveries are all legal there, and the converged end state below
//      is what must still be right.
//   2. Convergence. After the scenario the runner ticks maintenance until
//      the switch is serving, revalidation passes clean, and all queues
//      drain; failure to converge within a bounded number of ticks is
//      itself a divergence.
//   3. End-of-run probes. Every distinct flow key the scenario injected is
//      probed once more against the fully converged switch and must match
//      the oracle's current tables — exactly-once when the scenario armed
//      no fault windows, every-trace-matches otherwise.
//   4. Ledger invariants (the Switch::Counters upcall/install equalities)
//      and the megaflow invariant checker (Switch::self_check).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "testing/oracle_switch.h"
#include "testing/scenario.h"
#include "vswitchd/switch.h"

namespace ovs::fuzz {

// One point in the configuration lattice the harness sweeps: every replay
// semantics the switch supports must agree with the one oracle.
struct DiffConfig {
  std::string name;
  size_t datapath_workers = 0;  // 0 = single-threaded Datapath, >=2 sharded
  size_t rx_batch = 1;          // 1 = per-packet inject, >1 = inject_batch
  RevalidationMode reval_mode = RevalidationMode::kTwoTier;
  size_t revalidator_threads = 1;
  // Classifier lookup engine the switch under test runs. The oracle is
  // always pinned to the reference kStagedTss engine, so sweeping this
  // field checks the alternative engines against the reference through
  // full end-to-end replays, not just classifier-level unit diffs.
  ClassifierEngine engine = ClassifierEngine::kStagedTss;
  // NIC offload tier capacity (DESIGN.md §13); 0 = off. The oracle is
  // cache-free, so offload-on replays check that slot placement, eviction,
  // and crash/restart reconciliation never change which actions a packet
  // receives — only which tier served them.
  size_t offload_slots = 0;
  // Per-tenant classifier partitioning (DESIGN.md §14). The oracle never
  // partitions, so partition-on replays check that segregating exact-
  // metadata rules is semantics-preserving end to end (it must be: a rule
  // exact on metadata != the packet's can never match).
  bool tenant_partition = false;
  // Conntrack-generation revalidation dirtiness (DESIGN.md §15). true for
  // every sound config; false is the deliberately-unsound ablation where
  // megaflows stamped with stale ct_state survive revalidation forever.
  bool ct_reval_dirty = true;

  SwitchConfig to_switch_config() const;
};

// The 10 sound configurations: {single, sharded} x {per-packet, batched}
// x {kFull, kTwoTier}, plus one offload-on point per backend.
std::vector<DiffConfig> standard_configs();

// Non-reference classifier engines (chained-tuple, bloom-gated) crossed
// with the datapath/batching variants that exercise their distinct lookup
// paths: batched rx drives lookup_batch through translate_batch, per-pkt
// drives the scalar path.
std::vector<DiffConfig> engine_configs();

// The deliberately unsound configuration: historical kTags revalidation,
// whose Bloom tags track only MAC learning and therefore skip repairing
// flows invalidated by table changes. The harness must detect this.
DiffConfig tags_ablation_config();

// The second unsound ablation (DESIGN.md §15): conntrack generation ignored
// as a revalidation dirtiness source, so megaflows stamped with a stale
// ct_state keep forwarding with it after the connection table changed
// underneath them. The harness must detect this one too.
DiffConfig ct_ablation_config();

struct Divergence {
  std::string config;  // DiffConfig::name
  std::string kind;    // "trace" | "probe" | "orphan" | "converge" |
                       // "ledger" | "self_check" | "mutation"
  std::string detail;  // human-readable description
  size_t event_index = 0;  // scenario event it anchors to (0 if global)

  std::string to_string() const;
};

struct RunnerOptions {
  ReplayClock::Quanta quanta;
  size_t max_converge_ticks = 32;
  size_t drain_rounds = 2;  // handle_upcalls calls per drain (2nd serves
                            // fault-delayed upcalls)
};

class DifferentialRunner {
 public:
  explicit DifferentialRunner(RunnerOptions opts = {}) : opts_(opts) {}

  // Replays `sc` against a Switch built from `cfg`; returns the first
  // divergence, or nullopt when the replay matches the oracle.
  std::optional<Divergence> run(const Scenario& sc, const DiffConfig& cfg);

  // Replays against every config; returns all divergences found.
  std::vector<Divergence> run_all(const Scenario& sc,
                                  const std::vector<DiffConfig>& cfgs);

  // Delta-debugging (ddmin-style) minimization: repeatedly removes event
  // chunks while the scenario still diverges under `cfg`. Every FuzzEvent
  // is a total operation (any subsequence is a valid scenario), so plain
  // chunk removal is sound. Returns the minimized scenario.
  Scenario shrink(const Scenario& sc, const DiffConfig& cfg);

 private:
  RunnerOptions opts_;
};

// Reproducer corpus I/O: serialized Scenario plus '#'-comment header lines
// describing the divergence. Returns false on I/O or parse failure.
bool save_scenario(const std::string& path, const Scenario& sc,
                   const std::string& header_comment);
bool load_scenario(const std::string& path, Scenario* out);

}  // namespace ovs::fuzz
