#include "testing/oracle_switch.h"

#include <algorithm>

#include "ofproto/flow_parser.h"

namespace ovs::fuzz {

OracleSwitch::OracleSwitch(size_t n_tables, ClassifierConfig cls_cfg,
                           ConnTrackerConfig ct_cfg)
    : n_tables_(n_tables), cls_cfg_(cls_cfg), ct_cfg_(ct_cfg) {
  epochs_.push_back({0, build_epoch(0)});
}

std::unique_ptr<Pipeline> OracleSwitch::build_epoch(
    size_t n_mutations) const {
  auto pipe = std::make_unique<Pipeline>(n_tables_, cls_cfg_, ct_cfg_);
  for (uint32_t p : ports_) pipe->add_port(p);
  for (size_t i = 0; i < n_mutations; ++i) {
    const Mutation& m = log_[i];
    switch (m.kind) {
      case Mutation::Kind::kAddFlow: {
        // Logged mutations parsed successfully once; replay cannot fail.
        FlowParseResult res = parse_flow(m.text);
        pipe->table(res.flow.table)
            .add_flow(res.flow.match, res.flow.priority, res.flow.actions,
                      res.flow.cookie, res.flow.timeouts, /*now_ns=*/0);
        break;
      }
      case Mutation::Kind::kDelFlows: {
        const std::string spec =
            m.text.empty() ? "actions=drop" : m.text + ", actions=drop";
        FlowParseResult res = parse_flow(spec);
        if (res.flow.has_table) {
          pipe->table(res.flow.table).delete_where(res.flow.match);
        } else {
          for (size_t t = 0; t < n_tables_; ++t)
            pipe->table(t).delete_where(res.flow.match);
        }
        break;
      }
      // Replaying the ct mutations with their ORIGINAL timestamps through
      // the same ConnTracker implementation reproduces LRU order, eviction
      // and expiry bit-for-bit — the contract that keeps every epoch's
      // connection table identical to what the switch held at that point.
      case Mutation::Kind::kCtCommit:
        if (m.has_nat)
          pipe->conntrack().commit_nat(m.key, m.nat, m.zone, m.t);
        else
          pipe->conntrack().commit(m.key, m.zone, m.t);
        break;
      case Mutation::Kind::kCtRemove:
        pipe->conntrack().remove(m.key, m.zone);
        break;
      case Mutation::Kind::kCtTick:
        pipe->conntrack().expire_idle(m.t);
        break;
      case Mutation::Kind::kCtFlush:
        pipe->conntrack().flush();
        break;
    }
  }
  return pipe;
}

std::string OracleSwitch::add_flow(const std::string& text) {
  FlowParseResult res = parse_flow(text);
  if (!res.ok) return res.error;
  if (res.flow.table >= n_tables_)
    return "table " + std::to_string(res.flow.table) + " out of range";
  log_.push_back({Mutation::Kind::kAddFlow, text});
  epochs_.push_back({log_.size(), build_epoch(log_.size())});
  return "";
}

std::string OracleSwitch::del_flows(const std::string& text) {
  const std::string spec =
      text.empty() ? "actions=drop" : text + ", actions=drop";
  FlowParseResult res = parse_flow(spec);
  if (!res.ok) return res.error;
  if (res.flow.has_table && res.flow.table >= n_tables_)
    return "table " + std::to_string(res.flow.table) + " out of range";
  log_.push_back({Mutation::Kind::kDelFlows, text});
  epochs_.push_back({log_.size(), build_epoch(log_.size())});
  return "";
}

void OracleSwitch::push_ct_mutation(Mutation m) {
  log_.push_back(std::move(m));
  epochs_.push_back({log_.size(), build_epoch(log_.size())});
}

void OracleSwitch::ct_commit(const FlowKey& key, uint16_t zone,
                             uint64_t now_ns) {
  Mutation m;
  m.kind = Mutation::Kind::kCtCommit;
  m.key = key;
  m.zone = zone;
  m.t = now_ns;
  push_ct_mutation(std::move(m));
}

void OracleSwitch::ct_commit_nat(const FlowKey& key, const CtNatSpec& nat,
                                 uint16_t zone, uint64_t now_ns) {
  Mutation m;
  m.kind = Mutation::Kind::kCtCommit;
  m.key = key;
  m.zone = zone;
  m.t = now_ns;
  m.has_nat = true;
  m.nat = nat;
  push_ct_mutation(std::move(m));
}

void OracleSwitch::ct_remove(const FlowKey& key, uint16_t zone) {
  // Removing a connection the newest table does not hold is a no-op on the
  // switch too — skip the epoch.
  if (epochs_.back().pipe->conntrack().lookup(key, zone) == ct_state::kNew)
    return;
  Mutation m;
  m.kind = Mutation::Kind::kCtRemove;
  m.key = key;
  m.zone = zone;
  push_ct_mutation(std::move(m));
}

void OracleSwitch::ct_tick(uint64_t now_ns) {
  // Only a tick that actually expires something changes any pipeline;
  // logging the rest would mint an epoch per maintenance round.
  if (!epochs_.back().pipe->conntrack().has_expirable(now_ns)) return;
  Mutation m;
  m.kind = Mutation::Kind::kCtTick;
  m.t = now_ns;
  push_ct_mutation(std::move(m));
}

void OracleSwitch::ct_flush() {
  if (epochs_.back().pipe->conntrack().size() == 0) return;
  Mutation m;
  m.kind = Mutation::Kind::kCtFlush;
  push_ct_mutation(std::move(m));
}

void OracleSwitch::add_port(uint32_t port) {
  if (std::find(ports_.begin(), ports_.end(), port) == ports_.end())
    ports_.push_back(port);
  for (Epoch& e : epochs_) e.pipe->add_port(port);
}

void OracleSwitch::remove_port(uint32_t port) {
  ports_.erase(std::remove(ports_.begin(), ports_.end(), port),
               ports_.end());
  for (Epoch& e : epochs_) e.pipe->remove_port(port);
}

void OracleSwitch::collapse() {
  if (epochs_.size() <= 1) return;
  epochs_.erase(epochs_.begin(), epochs_.end() - 1);
}

DpActions OracleSwitch::current(const FlowKey& pkt, uint64_t now_ns) const {
  return epochs_.back().pipe->evaluate(pkt, now_ns).actions;
}

std::vector<DpActions> OracleSwitch::acceptable(const FlowKey& pkt,
                                                uint64_t now_ns) const {
  std::vector<DpActions> out;
  for (const Epoch& e : epochs_) {
    DpActions a = e.pipe->evaluate(pkt, now_ns).actions;
    bool dup = false;
    for (const DpActions& seen : out)
      if (seen.to_string() == a.to_string()) {
        dup = true;
        break;
      }
    if (!dup) out.push_back(std::move(a));
  }
  return out;
}

}  // namespace ovs::fuzz
