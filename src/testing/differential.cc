#include "testing/differential.h"

#include <algorithm>
#include <fstream>
#include <span>
#include <sstream>
#include <unordered_map>

#include "util/fault.h"

namespace ovs::fuzz {

SwitchConfig DiffConfig::to_switch_config() const {
  SwitchConfig c;
  c.datapath_workers = datapath_workers;
  c.rx_batch = rx_batch;
  c.reval_mode = reval_mode;
  c.revalidator_threads = revalidator_threads;
  c.classifier.engine = engine;
  c.classifier.tenant_partition = tenant_partition;
  c.offload_slots = offload_slots;
  // Bounded conntrack, tiny on purpose: the generated pool holds 24
  // connections against 16 global / 12 per-zone slots and an 8s idle
  // timeout, so every replay exercises LRU eviction, zone caps and expiry —
  // the state transitions the oracle must mirror exactly.
  c.ct_max_entries = 16;
  c.ct_max_per_zone = 12;
  c.ct_idle_timeout_ns = 8 * kSecond;
  c.ct_reval_dirty = ct_reval_dirty;
  return c;
}

std::vector<DiffConfig> standard_configs() {
  std::vector<DiffConfig> out;
  for (size_t workers : {size_t{0}, size_t{4}}) {
    for (size_t rx : {size_t{1}, size_t{8}}) {
      for (RevalidationMode m :
           {RevalidationMode::kFull, RevalidationMode::kTwoTier}) {
        DiffConfig c;
        c.name = std::string(workers == 0 ? "single" : "sharded") +
                 (rx == 1 ? "/per-pkt" : "/batched") +
                 (m == RevalidationMode::kFull ? "/full" : "/two-tier");
        c.datapath_workers = workers;
        c.rx_batch = rx;
        c.reval_mode = m;
        out.push_back(std::move(c));
      }
    }
  }
  // Offload-on points, one per backend: a small table (16 slots) keeps
  // placement churning (install/evict/challenge) even in short scenarios,
  // which is where a stale or dangling slot would show up as a trace or
  // probe divergence against the cache-free oracle.
  for (size_t workers : {size_t{0}, size_t{4}}) {
    DiffConfig c;
    c.name = std::string(workers == 0 ? "single" : "sharded") +
             "/batched/two-tier/offload";
    c.datapath_workers = workers;
    c.rx_batch = 8;
    c.offload_slots = 16;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<DiffConfig> engine_configs() {
  std::vector<DiffConfig> out;
  for (ClassifierEngine e :
       {ClassifierEngine::kChainedTuple, ClassifierEngine::kBloomGated}) {
    for (size_t rx : {size_t{1}, size_t{8}}) {
      DiffConfig c;
      c.name = std::string("engine-") + classifier_engine_name(e) +
               (rx == 1 ? "/per-pkt" : "/batched");
      c.rx_batch = rx;
      c.engine = e;
      out.push_back(std::move(c));
    }
    // One sharded point per engine: the engines' lookups must stay sound
    // under the multi-worker datapath's upcall interleavings too.
    DiffConfig c;
    c.name = std::string("engine-") + classifier_engine_name(e) +
             "/sharded/batched";
    c.datapath_workers = 4;
    c.rx_batch = 8;
    c.engine = e;
    out.push_back(std::move(c));
  }
  // Tenant-partitioned points (DESIGN.md §14), one per engine including the
  // reference: partitioning must be semantics-preserving against the flat
  // oracle no matter which engine runs inside the partitions.
  for (ClassifierEngine e :
       {ClassifierEngine::kStagedTss, ClassifierEngine::kChainedTuple,
        ClassifierEngine::kBloomGated}) {
    DiffConfig c;
    c.name = std::string("engine-") + classifier_engine_name(e) +
             "/partitioned";
    c.engine = e;
    c.tenant_partition = true;
    out.push_back(std::move(c));
  }
  return out;
}

DiffConfig tags_ablation_config() {
  DiffConfig c;
  c.name = "single/per-pkt/TAGS-ABLATION";
  c.reval_mode = RevalidationMode::kTags;
  return c;
}

DiffConfig ct_ablation_config() {
  DiffConfig c;
  c.name = "single/per-pkt/CT-ABLATION";
  c.ct_reval_dirty = false;
  return c;
}

std::string Divergence::to_string() const {
  return "[" + config + "] " + kind + " @event " +
         std::to_string(event_index) + ": " + detail;
}

namespace {

// Packet <-> trace correlation ids ride in Packet::size_bytes (the only
// per-packet field the action path carries through unchanged). Scenario
// packets use kEventIdBase + event_index; end-of-run probes use
// kProbeIdBase + probe_index. The bases keep both ranges disjoint and
// recognizable.
constexpr uint32_t kEventIdBase = 64;
constexpr uint32_t kProbeIdBase = 1u << 20;

std::string join(const std::vector<std::string>& v) {
  std::string s;
  for (const std::string& x : v) {
    if (!s.empty()) s += " | ";
    s += x;
  }
  return s.empty() ? "<none>" : s;
}

}  // namespace

std::optional<Divergence> DifferentialRunner::run(const Scenario& sc,
                                                  const DiffConfig& cfg) {
  FaultInjector fi(sc.seed ^ 0xD1FF);
  SwitchConfig swc = cfg.to_switch_config();
  swc.fault = &fi;
  Switch sw(swc);
  // The oracle always runs the reference engine: when cfg selects an
  // alternative engine the replay becomes an end-to-end differential test
  // of that engine against the staged-TSS baseline.
  ClassifierConfig oracle_cls = swc.classifier;
  oracle_cls.engine = ClassifierEngine::kStagedTss;
  // The oracle runs the identical bounded ConnTracker configuration, so
  // replaying the ct mutation log reproduces eviction and expiry exactly.
  ConnTrackerConfig oracle_ct;
  oracle_ct.max_entries = swc.ct_max_entries;
  oracle_ct.max_per_zone = swc.ct_max_per_zone;
  oracle_ct.idle_timeout_ns = swc.ct_idle_timeout_ns;
  oracle_ct.fair_eviction = swc.ct_fair_eviction;
  OracleSwitch oracle(swc.n_tables, oracle_cls, oracle_ct);
  ReplayClock clock(opts_.quanta);

  // id -> every action trace the switch emitted for that packet.
  std::unordered_map<uint32_t, std::vector<std::string>> traces;
  sw.set_trace_hook(
      [&traces](const Packet& p, const DpActions& a, Datapath::Path) {
        traces[p.size_bytes].push_back(a.to_string());
      });

  struct Pending {
    uint32_t id;
    size_t event_index;
    bool lossy;  // in the shadow of a fault window or crash: unchecked
    std::vector<std::string> acceptable;  // oracle epochs at inject time
  };
  std::vector<Pending> pending;
  std::vector<Packet> burst;
  std::vector<size_t> burst_events;
  std::vector<FuzzEvent> deferred;  // mutations arriving while not serving
  bool lossy_now = false;
  std::optional<Divergence> div;

  const size_t burst_max = std::max<size_t>(1, swc.rx_batch);
  auto serving = [&] { return sw.lifecycle() == LifecycleState::kServing; };
  auto fail = [&](std::string kind, std::string detail, size_t idx) {
    if (!div)
      div = Divergence{cfg.name, std::move(kind), std::move(detail), idx};
  };

  auto drain = [&] {
    if (!serving()) return;
    for (size_t i = 0; i < opts_.drain_rounds; ++i)
      sw.handle_upcalls(clock.now());
  };

  auto flush = [&] {
    if (burst.empty()) return;
    const uint64_t now = clock.step_event();
    for (size_t i = 0; i < burst.size(); ++i) {
      Pending p;
      p.id = burst[i].size_bytes;
      p.event_index = burst_events[i];
      p.lossy = lossy_now || !serving();
      for (DpActions& a : oracle.acceptable(burst[i].key, now))
        p.acceptable.push_back(a.to_string());
      pending.push_back(std::move(p));
    }
    if (swc.rx_batch > 1) {
      sw.inject_batch(std::span<const Packet>(burst.data(), burst.size()),
                      now);
    } else {
      for (const Packet& pk : burst) sw.inject(pk, now);
    }
    drain();
    burst.clear();
    burst_events.clear();
  };

  // Mutations apply to switch and oracle in lockstep; parse outcomes must
  // agree (same parser underneath, so a mismatch is a harness bug worth
  // flagging loudly rather than ignoring).
  auto apply_mutation = [&](const FuzzEvent& ev, size_t idx) {
    std::string se, oe;
    switch (ev.kind) {
      case FuzzEvent::Kind::kAddFlow:
        se = sw.add_flow(ev.text, clock.now());
        oe = oracle.add_flow(ev.text);
        break;
      case FuzzEvent::Kind::kDelFlows:
        se = sw.del_flows(ev.text);
        oe = oracle.del_flows(ev.text);
        break;
      case FuzzEvent::Kind::kAddPort:
        sw.add_port(ev.port);
        oracle.add_port(ev.port);
        break;
      case FuzzEvent::Kind::kRemovePort:
        sw.remove_port(ev.port);
        oracle.remove_port(ev.port);
        break;
      case FuzzEvent::Kind::kCtCommit: {
        // Same wall-clock timestamp on both sides: the oracle replays it
        // into every epoch, so LRU/expiry order matches the switch's.
        const uint64_t now = clock.now();
        if (ev.ct_nat) {
          CtNatSpec nat;
          nat.src = ev.ct_nat_src;
          nat.addr = ev.ct_nat_addr;
          nat.port = ev.ct_nat_port;
          sw.ct_commit_nat(ev.pkt.key, nat, ev.ct_zone, now);
          oracle.ct_commit_nat(ev.pkt.key, nat, ev.ct_zone, now);
        } else {
          sw.ct_commit(ev.pkt.key, ev.ct_zone, now);
          oracle.ct_commit(ev.pkt.key, ev.ct_zone, now);
        }
        break;
      }
      case FuzzEvent::Kind::kCtRemove:
        sw.ct_remove(ev.pkt.key, ev.ct_zone);
        oracle.ct_remove(ev.pkt.key, ev.ct_zone);
        break;
      default:
        break;
    }
    if (se != oe)
      fail("mutation",
           "switch='" + se + "' oracle='" + oe + "' for: " + ev.text, idx);
  };

  // One maintenance tick. Collapses the oracle's epoch set when the switch
  // proves no stale cache entry can survive: a completed restart (forced
  // full reconcile) or a revalidation pass that ran without an injected
  // stall. Returns true for the latter kind of clean pass.
  auto tick = [&](size_t idx) {
    const uint64_t now = clock.step_tick();
    const bool was_serving = serving();
    const Switch::Counters before = sw.counters();
    sw.run_maintenance(now);
    const Switch::Counters& after = sw.counters();
    // Mirror the switch's conntrack maintenance exactly: idle expiry runs
    // only on a round that entered AND left serving (a fault-injected
    // kUserspaceCrash returns before expire_idle); a round that crashed the
    // daemon takes the connection table with it.
    if (was_serving && serving())
      oracle.ct_tick(now);
    else if (was_serving)
      oracle.ct_flush();
    bool clean = false;
    if (serving()) {
      if (!was_serving) {
        oracle.collapse();
        for (const FuzzEvent& ev : deferred) apply_mutation(ev, idx);
        deferred.clear();
      } else if (after.reval_runs > before.reval_runs &&
                 after.reval_stalls == before.reval_stalls) {
        oracle.collapse();
        clean = true;
      }
    }
    drain();
    return clean;
  };

  // --- Replay --------------------------------------------------------------
  for (size_t i = 0; i < sc.events.size() && !div; ++i) {
    const FuzzEvent& ev = sc.events[i];
    switch (ev.kind) {
      case FuzzEvent::Kind::kPacket: {
        Packet p = ev.pkt;
        p.size_bytes = kEventIdBase + static_cast<uint32_t>(i);
        burst.push_back(p);
        burst_events.push_back(i);
        if (burst.size() >= burst_max) flush();
        break;
      }
      case FuzzEvent::Kind::kAddFlow:
      case FuzzEvent::Kind::kDelFlows:
      case FuzzEvent::Kind::kAddPort:
      case FuzzEvent::Kind::kRemovePort:
      case FuzzEvent::Kind::kCtCommit:
      case FuzzEvent::Kind::kCtRemove:
        flush();
        // While crashed/reconciling the daemon's tables are about to be
        // rebuilt from the crash-time snapshot; mutations land once it is
        // serving again (the controller retries against a dead daemon).
        if (serving())
          apply_mutation(ev, i);
        else
          deferred.push_back(ev);
        break;
      case FuzzEvent::Kind::kRevalTick:
        flush();
        tick(i);
        break;
      case FuzzEvent::Kind::kAdvanceTime:
        flush();
        clock.advance(ev.dt_ns);
        break;
      case FuzzEvent::Kind::kFaultWindow: {
        flush();
        lossy_now = true;
        const uint64_t occ = fi.occurrences(ev.fault);
        fi.arm_window(ev.fault, occ, occ + ev.fault_count);
        break;
      }
      case FuzzEvent::Kind::kCrash:
        flush();
        lossy_now = true;
        sw.crash();
        // Conntrack is process state: it dies with the daemon, unlike the
        // durable port/rule snapshot the restart replays.
        oracle.ct_flush();
        break;
    }
  }
  flush();

  // --- Convergence ---------------------------------------------------------
  // Tick maintenance until the switch is serving with a clean revalidation
  // pass, all deferred mutations landed, the oracle is down to one epoch,
  // and every slow-path queue is empty.
  bool converged = false;
  for (size_t t = 0; t < opts_.max_converge_ticks && !div; ++t) {
    const bool clean = tick(sc.events.size());
    if (clean && deferred.empty() && oracle.epoch_count() == 1 &&
        sw.retry_queue_depth() == 0 && sw.upcall_queue_depth() == 0) {
      converged = true;
      break;
    }
  }
  if (!div && !converged)
    fail("converge",
         "not converged after " + std::to_string(opts_.max_converge_ticks) +
             " ticks: lifecycle=" +
             std::to_string(static_cast<int>(sw.lifecycle())) +
             " epochs=" + std::to_string(oracle.epoch_count()) +
             " retry_q=" + std::to_string(sw.retry_queue_depth()) +
             " upcall_q=" + std::to_string(sw.upcall_queue_depth()),
         sc.events.size());

  // --- End-of-run probes ---------------------------------------------------
  // Every distinct flow key the scenario carried, against the converged
  // switch: this is where lazily-surviving stale cache entries (the kTags
  // ablation's failure mode) have nowhere left to hide.
  if (!div) {
    std::vector<FlowKey> keys;
    for (const FuzzEvent& ev : sc.events) {
      if (ev.kind != FuzzEvent::Kind::kPacket) continue;
      bool dup = false;
      for (const FlowKey& k : keys)
        if (static_cast<const FlowWords&>(k) ==
            static_cast<const FlowWords&>(ev.pkt.key)) {
          dup = true;
          break;
        }
      if (!dup) keys.push_back(ev.pkt.key);
    }
    // Fault windows can outlive the scenario (an armed occurrence range not
    // yet consumed), so probes are exactly-once only without them; crashes
    // fully converge and stay strict.
    const bool strict = !sc.has_fault_windows();
    for (size_t i = 0; i < keys.size() && !div; ++i) {
      Packet probe;
      probe.key = keys[i];
      probe.size_bytes = kProbeIdBase + static_cast<uint32_t>(i);
      const uint64_t now = clock.step_event();
      const std::string expect = oracle.current(probe.key, now).to_string();
      sw.inject(probe, now);
      drain();
      const std::vector<std::string>& recs = traces[probe.size_bytes];
      if (strict && recs.size() != 1) {
        fail("probe",
             "probe " + std::to_string(i) + " produced " +
                 std::to_string(recs.size()) + " traces (want 1), expect=" +
                 expect,
             sc.events.size());
      } else {
        for (const std::string& got : recs)
          if (got != expect) {
            fail("probe",
                 "probe " + std::to_string(i) + " got '" + got +
                     "' expected '" + expect + "'",
                 sc.events.size());
            break;
          }
      }
    }
  }

  // --- Per-packet trace audit ----------------------------------------------
  if (!div) {
    for (const Pending& p : pending) {
      auto it = traces.find(p.id);
      const size_t n = it == traces.end() ? 0 : it->second.size();
      if (p.lossy) continue;  // drops/dups/redelivery all legal here
      if (n != 1) {
        fail("trace",
             "packet produced " + std::to_string(n) +
                 " traces (want exactly 1); acceptable: " +
                 join(p.acceptable),
             p.event_index);
        break;
      }
      const std::string& got = it->second[0];
      if (std::find(p.acceptable.begin(), p.acceptable.end(), got) ==
          p.acceptable.end()) {
        fail("trace",
             "got '" + got + "', acceptable: " + join(p.acceptable),
             p.event_index);
        break;
      }
    }
  }

  // Orphan traces: ids we never issued. Cannot happen unless the id plumb
  // itself breaks — checked so a harness bug fails loudly.
  if (!div) {
    for (const auto& [id, recs] : traces) {
      const bool known =
          (id >= kProbeIdBase) ||
          (id >= kEventIdBase && id < kEventIdBase + sc.events.size());
      if (!known) {
        fail("orphan",
             "trace for unknown id " + std::to_string(id) + ": " +
                 join(recs),
             0);
        break;
      }
    }
  }

  // --- Ledgers + megaflow invariants ---------------------------------------
  if (!div) {
    const Switch::Counters& c = sw.counters();
    if (c.upcalls_handled + c.upcalls_retried !=
        c.flow_setups + c.setup_dups + c.install_fails)
      fail("ledger",
           "handled+retried != setups+dups+fails: " +
               std::to_string(c.upcalls_handled) + "+" +
               std::to_string(c.upcalls_retried) + " vs " +
               std::to_string(c.flow_setups) + "+" +
               std::to_string(c.setup_dups) + "+" +
               std::to_string(c.install_fails),
           sc.events.size());
    else if (c.install_fails != c.upcalls_retried + sw.retry_queue_depth() +
                                    c.retry_abandoned)
      fail("ledger",
           "fails != retried+pending+abandoned: " +
               std::to_string(c.install_fails) + " vs " +
               std::to_string(c.upcalls_retried) + "+" +
               std::to_string(sw.retry_queue_depth()) + "+" +
               std::to_string(c.retry_abandoned),
           sc.events.size());
  }
  if (!div) {
    DpCheckReport rep = sw.self_check();
    if (!rep.ok())
      fail("self_check",
           "megaflow invariant violations: " +
               std::to_string(rep.violations()) +
               (rep.details.empty() ? std::string()
                                    : " (" + rep.details.front() + ")"),
           sc.events.size());
  }
  return div;
}

std::vector<Divergence> DifferentialRunner::run_all(
    const Scenario& sc, const std::vector<DiffConfig>& cfgs) {
  std::vector<Divergence> out;
  for (const DiffConfig& cfg : cfgs)
    if (std::optional<Divergence> d = run(sc, cfg)) out.push_back(*d);
  return out;
}

Scenario DifferentialRunner::shrink(const Scenario& sc,
                                    const DiffConfig& cfg) {
  if (!run(sc, cfg)) return sc;  // nothing to minimize
  std::vector<FuzzEvent> events = sc.events;
  size_t chunk = std::max<size_t>(1, events.size() / 2);
  // ddmin by chunk removal: every FuzzEvent is a total operation, so any
  // subsequence is a valid scenario and plain removal is sound.
  while (true) {
    bool removed = false;
    size_t start = 0;
    while (start < events.size()) {
      const size_t len = std::min(chunk, events.size() - start);
      std::vector<FuzzEvent> cand;
      cand.reserve(events.size() - len);
      cand.insert(cand.end(), events.begin(),
                  events.begin() + static_cast<ptrdiff_t>(start));
      cand.insert(cand.end(),
                  events.begin() + static_cast<ptrdiff_t>(start + len),
                  events.end());
      Scenario trial{sc.seed, cand};
      if (run(trial, cfg)) {
        events = std::move(cand);  // still diverges: keep the cut,
        removed = true;            // retry the same position
      } else {
        start += len;
      }
    }
    if (chunk == 1) {
      if (!removed) break;  // a full single-event pass removed nothing
    } else {
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }
  return Scenario{sc.seed, std::move(events)};
}

bool save_scenario(const std::string& path, const Scenario& sc,
                   const std::string& header_comment) {
  std::ofstream out(path);
  if (!out) return false;
  std::istringstream hdr(header_comment);
  std::string line;
  while (std::getline(hdr, line)) out << "# " << line << "\n";
  out << sc.serialize();
  return static_cast<bool>(out);
}

bool load_scenario(const std::string& path, Scenario* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  return Scenario::deserialize(ss.str(), out);
}

}  // namespace ovs::fuzz
