#include "testing/scenario.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <sstream>

#include "ofproto/conntrack.h"
#include "sim/clock.h"
#include "util/rng.h"

namespace ovs::fuzz {

namespace {

bool parse_fault_point(const std::string& name, FaultPoint* out) {
  for (size_t i = 0; i < kNumFaultPoints; ++i) {
    const auto p = static_cast<FaultPoint>(i);
    if (name == fault_point_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string FuzzEvent::to_line() const {
  char buf[64];
  switch (kind) {
    case Kind::kPacket: {
      std::string s = "packet ";
      std::snprintf(buf, sizeof(buf), "%" PRIu32, pkt.size_bytes);
      s += buf;
      for (uint64_t w : pkt.key.w) {
        std::snprintf(buf, sizeof(buf), " %" PRIx64, w);
        s += buf;
      }
      return s;
    }
    case Kind::kAddFlow:
      return "add_flow " + text;
    case Kind::kDelFlows:
      return "del_flows " + text;
    case Kind::kAddPort:
      std::snprintf(buf, sizeof(buf), "add_port %" PRIu32, port);
      return buf;
    case Kind::kRemovePort:
      std::snprintf(buf, sizeof(buf), "remove_port %" PRIu32, port);
      return buf;
    case Kind::kRevalTick:
      return "reval_tick";
    case Kind::kAdvanceTime:
      std::snprintf(buf, sizeof(buf), "advance %" PRIu64, dt_ns);
      return buf;
    case Kind::kFaultWindow: {
      std::string s = "fault ";
      s += fault_point_name(fault);
      std::snprintf(buf, sizeof(buf), " %" PRIu32, fault_count);
      s += buf;
      return s;
    }
    case Kind::kCrash:
      return "crash";
    case Kind::kCtCommit:
    case Kind::kCtRemove: {
      std::string s =
          kind == Kind::kCtCommit ? "ct_commit " : "ct_remove ";
      std::snprintf(buf, sizeof(buf), "%" PRIu16, ct_zone);
      s += buf;
      for (uint64_t w : pkt.key.w) {
        std::snprintf(buf, sizeof(buf), " %" PRIx64, w);
        s += buf;
      }
      if (kind == Kind::kCtCommit && ct_nat) {
        std::snprintf(buf, sizeof(buf), " nat %s %" PRIu32 " %" PRIu16,
                      ct_nat_src ? "src" : "dst", ct_nat_addr, ct_nat_port);
        s += buf;
      }
      return s;
    }
  }
  return "";
}

bool FuzzEvent::from_line(const std::string& line, FuzzEvent* out) {
  std::istringstream in(line);
  std::string word;
  if (!(in >> word)) return false;
  FuzzEvent ev;
  if (word == "packet") {
    ev.kind = Kind::kPacket;
    if (!(in >> ev.pkt.size_bytes)) return false;
    for (size_t i = 0; i < kFlowWords; ++i)
      if (!(in >> std::hex >> ev.pkt.key.w[i])) return false;
  } else if (word == "add_flow" || word == "del_flows") {
    ev.kind = word == "add_flow" ? Kind::kAddFlow : Kind::kDelFlows;
    std::getline(in, ev.text);
    // Trim the single separating space; a del_flows spec may be empty
    // ("delete everything").
    if (!ev.text.empty() && ev.text.front() == ' ') ev.text.erase(0, 1);
    if (ev.kind == Kind::kAddFlow && ev.text.empty()) return false;
  } else if (word == "add_port" || word == "remove_port") {
    ev.kind = word == "add_port" ? Kind::kAddPort : Kind::kRemovePort;
    if (!(in >> ev.port)) return false;
  } else if (word == "reval_tick") {
    ev.kind = Kind::kRevalTick;
  } else if (word == "advance") {
    ev.kind = Kind::kAdvanceTime;
    if (!(in >> ev.dt_ns)) return false;
  } else if (word == "fault") {
    ev.kind = Kind::kFaultWindow;
    std::string name;
    if (!(in >> name >> ev.fault_count)) return false;
    if (!parse_fault_point(name, &ev.fault)) return false;
  } else if (word == "crash") {
    ev.kind = Kind::kCrash;
  } else if (word == "ct_commit" || word == "ct_remove") {
    ev.kind = word == "ct_commit" ? Kind::kCtCommit : Kind::kCtRemove;
    if (!(in >> ev.ct_zone)) return false;
    for (size_t i = 0; i < kFlowWords; ++i)
      if (!(in >> std::hex >> ev.pkt.key.w[i])) return false;
    in >> std::dec;
    std::string tail;
    if (in >> tail) {
      if (ev.kind != Kind::kCtCommit || tail != "nat") return false;
      std::string dir;
      uint32_t port;
      if (!(in >> dir >> ev.ct_nat_addr >> port)) return false;
      if (dir != "src" && dir != "dst") return false;
      if (port > 65535) return false;
      ev.ct_nat = true;
      ev.ct_nat_src = dir == "src";
      ev.ct_nat_port = static_cast<uint16_t>(port);
    }
  } else {
    return false;
  }
  *out = std::move(ev);
  return true;
}

bool Scenario::has_faults() const {
  for (const FuzzEvent& ev : events)
    if (ev.kind == FuzzEvent::Kind::kFaultWindow ||
        ev.kind == FuzzEvent::Kind::kCrash)
      return true;
  return false;
}

bool Scenario::has_fault_windows() const {
  for (const FuzzEvent& ev : events)
    if (ev.kind == FuzzEvent::Kind::kFaultWindow) return true;
  return false;
}

bool Scenario::has_crashes() const {
  for (const FuzzEvent& ev : events)
    if (ev.kind == FuzzEvent::Kind::kCrash) return true;
  return false;
}

size_t Scenario::packet_count() const {
  size_t n = 0;
  for (const FuzzEvent& ev : events)
    if (ev.kind == FuzzEvent::Kind::kPacket) ++n;
  return n;
}

std::string Scenario::serialize() const {
  std::string out = "seed " + std::to_string(seed) + "\n";
  for (const FuzzEvent& ev : events) {
    out += ev.to_line();
    out += '\n';
  }
  return out;
}

bool Scenario::deserialize(const std::string& text, Scenario* out) {
  Scenario sc;
  std::istringstream in(text);
  std::string line;
  bool saw_seed = false;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    if (!saw_seed && line.rfind("seed ", 0) == 0) {
      sc.seed = std::strtoull(line.c_str() + 5, nullptr, 10);
      saw_seed = true;
      continue;
    }
    FuzzEvent ev;
    if (!FuzzEvent::from_line(line, &ev)) return false;
    sc.events.push_back(std::move(ev));
  }
  *out = std::move(sc);
  return true;
}

namespace {

// The rule-template family. All templates avoid NORMAL and ct(commit) so
// the packet fate is a pure function of the flow tables plus the
// explicitly-mutated connection table (see header comment), yet together
// they exercise priorities, CIDR prefixes (megaflow widening), resubmit,
// set-field, tunnels, controller sends, and drops. Lookup-only ct rules are
// part of the fixed prologue (below), not this random family.
std::string make_rule(Rng& rng, uint32_t n_ports, int* reroute_priority) {
  char buf[160];
  const auto port = [&] { return 1 + rng.uniform(n_ports); };
  switch (rng.uniform(8)) {
    case 0:  // /16 prefix route
      std::snprintf(buf, sizeof(buf),
                    "priority=10, ip, nw_dst=10.%" PRIu64
                    ".0.0/16, actions=output:%" PRIu64,
                    rng.uniform(8), port());
      return buf;
    case 1:  // exact-service route
      std::snprintf(buf, sizeof(buf),
                    "priority=20, tcp, tp_dst=443, actions=output:%" PRIu64,
                    port());
      return buf;
    case 2:  // DNS to a tunnel
      return "priority=24, udp, tp_dst=53, actions=tunnel(9,77)";
    case 3:  // SSH to the controller
      return "priority=28, tcp, tp_dst=22, actions=controller";
    case 4: {  // /24 override that resubmits into table 1
      const uint64_t a = rng.uniform(8), b = rng.uniform(4);
      std::snprintf(buf, sizeof(buf),
                    "priority=14, ip, nw_dst=10.%" PRIu64 ".%" PRIu64
                    ".0/24, actions=resubmit(,1)",
                    a, b);
      return buf;
    }
    case 5:  // table-1 default the resubmits land on
      std::snprintf(buf, sizeof(buf),
                    "table=1, priority=5, ip, actions=output:%" PRIu64,
                    port());
      return buf;
    case 6:  // blocklisted source range
      return "priority=8, ip, nw_src=11.0.0.0/8, actions=drop";
    default: {  // reroute: shadow earlier service routes at higher priority,
                // optionally remarking TOS on the way out
      const int prio = (*reroute_priority)++;
      if (rng.chance(0.5)) {
        std::snprintf(buf, sizeof(buf),
                      "priority=%d, tcp, tp_dst=8080, "
                      "actions=set_field:7->nw_tos, output:%" PRIu64,
                      prio, port());
      } else {
        std::snprintf(buf, sizeof(buf),
                      "priority=%d, tcp, tp_dst=443, actions=output:%" PRIu64,
                      prio, port());
      }
      return buf;
    }
  }
}

// Loose-match delete specs; never table-wide so scenarios keep forwarding.
std::string make_delete(Rng& rng) {
  char buf[96];
  switch (rng.uniform(3)) {
    case 0:
      std::snprintf(buf, sizeof(buf), "ip, nw_dst=10.%" PRIu64 ".0.0/16",
                    rng.uniform(8));
      return buf;
    case 1:
      return "tcp, tp_dst=443";
    default:
      return "udp, tp_dst=53";
  }
}

// Stateful service ports: 7070/9090 run through lookup-only ct, 6060
// through lookup-only ct with NAT application, 9090 in its own zone.
constexpr uint16_t kCtPort = 7070;
constexpr uint16_t kCtZonePort = 9090;
constexpr uint16_t kCtNatPort = 6060;

uint16_t zone_for(uint16_t dport) { return dport == kCtZonePort ? 1 : 0; }

// The NAT binding a ct_commit event requests for pool connection `conn`:
// unique per connection so post-NAT tuples never collide.
CtNatSpec nat_for(uint64_t conn) {
  CtNatSpec nat;
  nat.src = true;
  nat.addr = (192u << 24) | (0u << 16) | (2u << 8) |
             static_cast<uint32_t>(conn & 0xff);
  nat.port = static_cast<uint16_t>(40000 + conn);
  return nat;
}

// The forward-direction 5-tuple of pool connection `conn`: a pure function
// of the connection id, so packet events and ct events rebuild the exact
// same tuple independently.
FlowKey conn_tuple(uint64_t conn, const GeneratorConfig& cfg) {
  Rng crng(0xC0FFEE ^ (conn * 0x9E3779B97F4A7C15ULL));
  FlowKey k;
  const uint32_t in_port =
      1 + static_cast<uint32_t>(crng.uniform(cfg.n_ports));
  k.set_in_port(in_port);
  k.set_eth_src(EthAddr(in_port));
  k.set_eth_dst(EthAddr(0x99));
  k.set_eth_type(ethertype::kIpv4);
  // ~1/8 of connections come from the blocklisted 11/8 range.
  if (crng.chance(0.125)) {
    k.set_nw_src(Ipv4((11u << 24) |
                      static_cast<uint32_t>(crng.uniform(1u << 16))));
  } else {
    k.set_nw_src(Ipv4((192u << 24) | (168u << 16) |
                      static_cast<uint32_t>(crng.uniform(1u << 16))));
  }
  k.set_nw_dst(Ipv4((10u << 24) |
                    (static_cast<uint32_t>(crng.uniform(8)) << 16) |
                    (static_cast<uint32_t>(crng.uniform(4)) << 8) | 5));
  static constexpr uint16_t kDports[] = {80,   443,  53,        22,
                                         8080, kCtPort, kCtZonePort,
                                         kCtNatPort};
  k.set_tp_dst(kDports[crng.uniform(std::size(kDports))]);
  const bool udp = k.tp_dst() == 53;
  k.set_nw_proto(udp ? ipproto::kUdp : ipproto::kTcp);
  k.set_tp_src(static_cast<uint16_t>(1024 + crng.uniform(64)));
  k.set_nw_ttl(64);
  return k;
}

Packet make_packet(Rng& rng, const GeneratorConfig& cfg) {
  // Draw from a bounded connection pool so scenarios revisit flows (cache
  // hits) instead of being all-miss traffic.
  const uint64_t conn = rng.uniform(cfg.n_conns);
  Packet p;
  p.key = conn_tuple(conn, cfg);
  // Direction mix: mostly forward, some replies (which flip the ct_state
  // the stateful tables see), and for NAT connections some replies sent to
  // the NAT address (exercising the reverse entry's un-NAT rewrite).
  const double dir = rng.uniform_double();
  if (dir >= 0.70) {
    const FlowKey fwd = p.key;
    if (dir >= 0.90 && fwd.tp_dst() == kCtNatPort) {
      const CtNatSpec nat = nat_for(conn);
      p.key.set_nw_src(fwd.nw_dst());
      p.key.set_tp_src(fwd.tp_dst());
      p.key.set_nw_dst(Ipv4(nat.addr));
      p.key.set_tp_dst(nat.port);
    } else {
      p.key.set_nw_src(fwd.nw_dst());
      p.key.set_nw_dst(fwd.nw_src());
      p.key.set_tp_src(fwd.tp_dst());
      p.key.set_tp_dst(fwd.tp_src());
    }
    // A reply enters on a different port than the forward path (still
    // within the base range so it stays valid under port churn).
    p.key.set_in_port(1 + static_cast<uint32_t>((conn + 1) % cfg.n_ports));
    p.key.set_eth_src(EthAddr(p.key.in_port()));
  }
  // size_bytes is the runner's packet<->trace correlation id; the caller
  // overwrites it per event.
  p.size_bytes = 64;
  return p;
}

}  // namespace

Scenario generate_scenario(uint64_t seed, const GeneratorConfig& cfg) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x5EED);
  Scenario sc;
  sc.seed = seed;

  // Prologue: ports and a base rule set, as replayable events so the
  // shrinker can drop unused ones.
  for (uint32_t p = 1; p <= cfg.n_ports; ++p) {
    FuzzEvent ev;
    ev.kind = FuzzEvent::Kind::kAddPort;
    ev.port = p;
    sc.events.push_back(std::move(ev));
  }
  int reroute_priority = 40;
  const size_t n_base_rules = 5 + rng.uniform(3);
  for (size_t i = 0; i < n_base_rules; ++i) {
    FuzzEvent ev;
    ev.kind = FuzzEvent::Kind::kAddFlow;
    ev.text = make_rule(rng, static_cast<uint32_t>(cfg.n_ports),
                        &reroute_priority);
    sc.events.push_back(std::move(ev));
  }
  // Stateful prologue: lookup-only ct entry rules for both directions of
  // the ct service ports, and a table-2 ct_state dispatch. Output ports are
  // seeded per scenario; the rules themselves are fixed so every scenario
  // exercises the conntrack seam (the shrinker drops whichever the
  // reproducer doesn't need).
  {
    char buf[128];
    std::vector<std::string> ct_rules;
    const auto out_port = [&] { return 1 + rng.uniform(cfg.n_ports); };
    std::snprintf(buf, sizeof(buf),
                  "priority=35, tcp, tp_dst=%u, actions=ct(table=2)", kCtPort);
    ct_rules.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "priority=35, tcp, tp_src=%u, actions=ct(table=2)", kCtPort);
    ct_rules.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "priority=35, tcp, tp_dst=%u, actions=ct(nat,table=2)",
                  kCtNatPort);
    ct_rules.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "priority=35, tcp, tp_src=%u, actions=ct(nat,table=2)",
                  kCtNatPort);
    ct_rules.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "priority=35, tcp, tp_dst=%u, actions=ct(zone=1,table=2)",
                  kCtZonePort);
    ct_rules.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "priority=35, tcp, tp_src=%u, actions=ct(zone=1,table=2)",
                  kCtZonePort);
    ct_rules.push_back(buf);
    // ct_state dispatch: new / established-forward / established-reply
    // routes plus a default (symmetric never occurs in pool traffic).
    for (unsigned st : {1u, 2u, 6u}) {
      std::snprintf(buf, sizeof(buf),
                    "table=2, priority=30, ct_state=%u, actions=output:%" PRIu64,
                    st, out_port());
      ct_rules.push_back(buf);
    }
    std::snprintf(buf, sizeof(buf),
                  "table=2, priority=1, actions=output:%" PRIu64, out_port());
    ct_rules.push_back(buf);
    for (std::string& r : ct_rules) {
      FuzzEvent ev;
      ev.kind = FuzzEvent::Kind::kAddFlow;
      ev.text = std::move(r);
      sc.events.push_back(std::move(ev));
    }
  }

  const GeneratorWeights& w = cfg.weights;
  const double total = w.packet + w.add_flow + w.del_flows + w.port_churn +
                       w.reval_tick + w.advance + w.fault + w.crash +
                       w.ct_commit + w.ct_remove;
  bool crashed_once = false;
  for (size_t i = 0; i < cfg.n_events; ++i) {
    double r = rng.uniform_double() * total;
    FuzzEvent ev;
    if ((r -= w.packet) < 0) {
      ev.kind = FuzzEvent::Kind::kPacket;
      ev.pkt = make_packet(rng, cfg);
    } else if ((r -= w.add_flow) < 0) {
      ev.kind = FuzzEvent::Kind::kAddFlow;
      ev.text = make_rule(rng, static_cast<uint32_t>(cfg.n_ports),
                          &reroute_priority);
    } else if ((r -= w.del_flows) < 0) {
      ev.kind = FuzzEvent::Kind::kDelFlows;
      ev.text = make_delete(rng);
    } else if ((r -= w.port_churn) < 0) {
      // Churn only ports above the base range so pool traffic keeps valid
      // ingress ports.
      ev.kind = rng.chance(0.5) ? FuzzEvent::Kind::kAddPort
                                : FuzzEvent::Kind::kRemovePort;
      ev.port = static_cast<uint32_t>(cfg.n_ports) + 1 +
                static_cast<uint32_t>(rng.uniform(3));
    } else if ((r -= w.reval_tick) < 0) {
      ev.kind = FuzzEvent::Kind::kRevalTick;
    } else if ((r -= w.advance) < 0) {
      ev.kind = FuzzEvent::Kind::kAdvanceTime;
      ev.dt_ns = kMillisecond + rng.uniform(500) * kMillisecond;
    } else if ((r -= w.fault) < 0) {
      ev.kind = FuzzEvent::Kind::kFaultWindow;
      // Only slow-path faults whose effects the oracle's acceptable-set
      // semantics cover; kEntryCorrupt/kEntryExpire mutate installed state
      // in ways no per-config oracle can predict and are left to the
      // dedicated fault-injection tests.
      static constexpr FaultPoint kArmable[] = {
          FaultPoint::kUpcallDrop,        FaultPoint::kUpcallDelay,
          FaultPoint::kUpcallDuplicate,   FaultPoint::kInstallTableFull,
          FaultPoint::kInstallTransient,  FaultPoint::kRevalidatorStall,
          FaultPoint::kReconcileStall,
      };
      ev.fault = kArmable[rng.uniform(std::size(kArmable))];
      ev.fault_count = 1 + static_cast<uint32_t>(rng.uniform(4));
    } else if ((r -= w.crash) < 0) {
      // At most one crash per scenario keeps replays fast (each crash costs
      // a full restart/reconcile round) without losing coverage.
      if (crashed_once) {
        ev.kind = FuzzEvent::Kind::kRevalTick;
      } else {
        ev.kind = FuzzEvent::Kind::kCrash;
        crashed_once = true;
      }
    } else if ((r -= w.ct_commit) < 0) {
      // Connection churn: commit a pool connection (with its NAT binding on
      // the NAT service port). Committing already-committed connections is
      // the refresh path; with the harness's small ct caps the churn drives
      // LRU eviction on both sides.
      const uint64_t conn = rng.uniform(cfg.n_conns);
      ev.kind = FuzzEvent::Kind::kCtCommit;
      ev.pkt.key = conn_tuple(conn, cfg);
      ev.ct_zone = zone_for(ev.pkt.key.tp_dst());
      if (ev.pkt.key.tp_dst() == kCtNatPort) {
        const CtNatSpec nat = nat_for(conn);
        ev.ct_nat = true;
        ev.ct_nat_src = nat.src;
        ev.ct_nat_addr = nat.addr;
        ev.ct_nat_port = nat.port;
      }
    } else {
      const uint64_t conn = rng.uniform(cfg.n_conns);
      ev.kind = FuzzEvent::Kind::kCtRemove;
      ev.pkt.key = conn_tuple(conn, cfg);
      ev.ct_zone = zone_for(ev.pkt.key.tp_dst());
    }
    sc.events.push_back(std::move(ev));
  }
  // Always end with a tick so in-flight upcalls get a serving window.
  FuzzEvent final_tick;
  final_tick.kind = FuzzEvent::Kind::kRevalTick;
  sc.events.push_back(std::move(final_tick));
  return sc;
}

}  // namespace ovs::fuzz
