// Seeded scenario generation for the differential fuzz harness.
//
// A Scenario is a deterministic interleaving of every seam the switch
// composes: packets, flow-table mutations, port churn, fault-injector
// window arms, userspace crashes, and revalidation ticks. The generator is
// a pure function of (seed, config) — the same seed always yields the same
// event list — and every scenario round-trips through a line-oriented text
// format so minimized reproducers can live in tests/corpus/ and replay as
// ordinary ctest cases.
//
// Generated rules deliberately avoid NORMAL and ct() actions: with only
// explicit output / set_field / tunnel / controller / drop / resubmit
// actions, translation is a pure function of the flow tables, which is what
// lets the OracleSwitch predict every packet's fate from the mutation log
// alone (see oracle_switch.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "packet/packet.h"
#include "util/fault.h"

namespace ovs::fuzz {

struct FuzzEvent {
  enum class Kind : uint8_t {
    kPacket,       // inject one packet (pkt)
    kAddFlow,      // ovs-ofctl add-flow text (text)
    kDelFlows,     // loose-match delete spec (text; may be empty)
    kAddPort,      // (port)
    kRemovePort,   // (port)
    kRevalTick,    // advance one tick and run maintenance
    kAdvanceTime,  // advance the replay clock by dt_ns
    kFaultWindow,  // arm `fault` for the next `fault_count` occurrences
    kCrash,        // kill the userspace daemon (datapath survives)
  };

  Kind kind = Kind::kPacket;
  Packet pkt;             // kPacket
  std::string text;       // kAddFlow / kDelFlows
  uint32_t port = 0;      // kAddPort / kRemovePort
  uint64_t dt_ns = 0;     // kAdvanceTime
  FaultPoint fault = FaultPoint::kUpcallDrop;  // kFaultWindow
  uint32_t fault_count = 0;                    // kFaultWindow

  std::string to_line() const;
  // Parses one serialized line; returns false (and leaves *out untouched)
  // on malformed input.
  static bool from_line(const std::string& line, FuzzEvent* out);
};

struct Scenario {
  uint64_t seed = 0;
  std::vector<FuzzEvent> events;

  // True when any event can make packet outcomes config-dependent (fault
  // windows, crashes): the runner then accepts dropped/duplicated traces.
  bool has_faults() const;
  // Fault windows only; crashes fully converge by restart + reconcile, so a
  // crash-only scenario still gets strict end-of-run probe checking.
  bool has_fault_windows() const;
  bool has_crashes() const;
  size_t packet_count() const;

  // One event per line, '#' comments, leading "seed N". deserialize() is
  // the exact inverse of serialize() and also accepts hand-edited files.
  std::string serialize() const;
  static bool deserialize(const std::string& text, Scenario* out);
};

// Event-mix weights (normalized internally; relative magnitudes matter).
struct GeneratorWeights {
  double packet = 0.70;
  double add_flow = 0.06;     // includes reroutes shadowing earlier rules
  double del_flows = 0.02;
  double port_churn = 0.03;
  double reval_tick = 0.09;
  double advance = 0.05;
  double fault = 0.04;
  double crash = 0.01;
};

struct GeneratorConfig {
  size_t n_events = 120;  // after the fixed port/rule prologue
  size_t n_ports = 6;
  size_t n_conns = 24;    // connection pool the packet events draw from
  GeneratorWeights weights;
};

// Deterministic: generate_scenario(s, c) is a pure function of (s, c).
Scenario generate_scenario(uint64_t seed, const GeneratorConfig& cfg = {});

}  // namespace ovs::fuzz
