// Seeded scenario generation for the differential fuzz harness.
//
// A Scenario is a deterministic interleaving of every seam the switch
// composes: packets, flow-table mutations, port churn, fault-injector
// window arms, userspace crashes, and revalidation ticks. The generator is
// a pure function of (seed, config) — the same seed always yields the same
// event list — and every scenario round-trips through a line-oriented text
// format so minimized reproducers can live in tests/corpus/ and replay as
// ordinary ctest cases.
//
// Generated rules deliberately avoid NORMAL and ct(commit): with explicit
// output / set_field / tunnel / controller / drop / resubmit actions plus
// LOOKUP-ONLY ct (ct(table=N), ct(table=N,nat)), translation is a pure
// function of the flow tables and the connection table, both of which the
// OracleSwitch rebuilds from the mutation log alone (see oracle_switch.h).
// Connection state changes are explicit events (ct_commit / ct_remove),
// applied to the switch and the oracle in lockstep — translate-time
// ct(commit) timing would depend on which packets hit caches, which no
// per-config oracle can predict.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "packet/packet.h"
#include "util/fault.h"

namespace ovs::fuzz {

struct FuzzEvent {
  enum class Kind : uint8_t {
    kPacket,       // inject one packet (pkt)
    kAddFlow,      // ovs-ofctl add-flow text (text)
    kDelFlows,     // loose-match delete spec (text; may be empty)
    kAddPort,      // (port)
    kRemovePort,   // (port)
    kRevalTick,    // advance one tick and run maintenance
    kAdvanceTime,  // advance the replay clock by dt_ns
    kFaultWindow,  // arm `fault` for the next `fault_count` occurrences
    kCrash,        // kill the userspace daemon (datapath survives)
    kCtCommit,     // commit pkt.key's connection (optionally with NAT)
    kCtRemove,     // tear pkt.key's connection down
  };

  Kind kind = Kind::kPacket;
  Packet pkt;             // kPacket; kCtCommit/kCtRemove carry the 5-tuple
                          // in pkt.key (size_bytes unused)
  std::string text;       // kAddFlow / kDelFlows
  uint32_t port = 0;      // kAddPort / kRemovePort
  uint64_t dt_ns = 0;     // kAdvanceTime
  FaultPoint fault = FaultPoint::kUpcallDrop;  // kFaultWindow
  uint32_t fault_count = 0;                    // kFaultWindow
  uint16_t ct_zone = 0;       // kCtCommit / kCtRemove
  bool ct_nat = false;        // kCtCommit: carries a NAT binding
  bool ct_nat_src = true;     // SNAT (else DNAT)
  uint32_t ct_nat_addr = 0;
  uint16_t ct_nat_port = 0;

  std::string to_line() const;
  // Parses one serialized line; returns false (and leaves *out untouched)
  // on malformed input.
  static bool from_line(const std::string& line, FuzzEvent* out);
};

struct Scenario {
  uint64_t seed = 0;
  std::vector<FuzzEvent> events;

  // True when any event can make packet outcomes config-dependent (fault
  // windows, crashes): the runner then accepts dropped/duplicated traces.
  bool has_faults() const;
  // Fault windows only; crashes fully converge by restart + reconcile, so a
  // crash-only scenario still gets strict end-of-run probe checking.
  bool has_fault_windows() const;
  bool has_crashes() const;
  size_t packet_count() const;

  // One event per line, '#' comments, leading "seed N". deserialize() is
  // the exact inverse of serialize() and also accepts hand-edited files.
  std::string serialize() const;
  static bool deserialize(const std::string& text, Scenario* out);
};

// Event-mix weights (normalized internally; relative magnitudes matter).
struct GeneratorWeights {
  double packet = 0.65;
  double add_flow = 0.06;     // includes reroutes shadowing earlier rules
  double del_flows = 0.02;
  double port_churn = 0.03;
  double reval_tick = 0.09;
  double advance = 0.05;
  double fault = 0.04;
  double crash = 0.01;
  double ct_commit = 0.05;    // connection churn: commits (NAT on the
                              // NAT-designated service port)
  double ct_remove = 0.02;    // explicit teardowns
};

struct GeneratorConfig {
  size_t n_events = 120;  // after the fixed port/rule prologue
  size_t n_ports = 6;
  size_t n_conns = 24;    // connection pool the packet events draw from
  GeneratorWeights weights;
};

// Deterministic: generate_scenario(s, c) is a pure function of (s, c).
Scenario generate_scenario(uint64_t seed, const GeneratorConfig& cfg = {});

}  // namespace ovs::fuzz
