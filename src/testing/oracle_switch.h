// The model: a naive reference switch for differential testing.
//
// The real Switch is a tower of caches — EMC, megaflow cache, batching,
// upcall queues, revalidation, crash/restart reconciliation — all of which
// exist so the common case never runs the full pipeline. The OracleSwitch
// is the semantics those caches must preserve: it evaluates EVERY packet
// through a full ofproto::Pipeline translation (Pipeline::evaluate, the
// side-effect-free entry point), with no caches, no batching, and no
// revalidator, so its answer is by construction the ground truth.
//
// Epochs. Cached forwarding is not instant-update: after a flow-table
// mutation, installed megaflows legitimately keep forwarding with the old
// actions until a revalidation pass repairs them (§6 — invalidation is
// lazy, batched). So at any moment a packet's correct fate is not one
// action list but a SET: the result under any table state still "live" in
// some cache entry. The oracle models this by keeping one Pipeline per
// live epoch — a new epoch per mutation batch — and collapses to the
// newest epoch when the runner observes a clean revalidation pass (which
// proves no stale entry survives). Divergence means: the real switch
// produced a trace matching NO live epoch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datapath/dp_actions.h"
#include "ofproto/pipeline.h"
#include "packet/packet.h"

namespace ovs::fuzz {

class OracleSwitch {
 public:
  explicit OracleSwitch(size_t n_tables = 8,
                        ClassifierConfig cls_cfg = {});

  // Durable-config mutations, mirroring Switch::add_port / remove_port /
  // add_flow / del_flows semantics exactly (same parser, same loose-match
  // delete expansion). Flow mutations open a new epoch; port mutations
  // apply to every live epoch (megaflow actions cache output ports, so a
  // stale entry can still forward to a removed port — the packet fate set
  // under the OLD tables does not change when ports churn, because
  // translation consults the port list only for NORMAL floods, which
  // generated scenarios never use). Returns "" or a parse error.
  std::string add_flow(const std::string& text);
  std::string del_flows(const std::string& text);
  void add_port(uint32_t port);
  void remove_port(uint32_t port);

  // Drops every epoch but the newest. Call when the real switch completes
  // a clean revalidation pass or a restart reconciliation: both prove all
  // cached entries agree with the current tables.
  void collapse();

  size_t epoch_count() const noexcept { return epochs_.size(); }

  // Ground-truth action list under the NEWEST tables.
  DpActions current(const FlowKey& pkt, uint64_t now_ns) const;

  // The acceptable set: the packet's normalized action list under every
  // live epoch, deduplicated (oldest epoch first).
  std::vector<DpActions> acceptable(const FlowKey& pkt,
                                    uint64_t now_ns) const;

 private:
  struct Mutation {
    enum class Kind : uint8_t { kAddFlow, kDelFlows } kind;
    std::string text;
  };

  // Builds a fresh Pipeline by replaying mutations [0, n) of the log.
  std::unique_ptr<Pipeline> build_epoch(size_t n_mutations) const;

  size_t n_tables_;
  ClassifierConfig cls_cfg_;
  std::vector<uint32_t> ports_;
  std::vector<Mutation> log_;
  struct Epoch {
    size_t log_len;  // mutations applied to this epoch's pipeline
    std::unique_ptr<Pipeline> pipe;
  };
  std::vector<Epoch> epochs_;  // oldest first; back() is current
};

}  // namespace ovs::fuzz
