// The model: a naive reference switch for differential testing.
//
// The real Switch is a tower of caches — EMC, megaflow cache, batching,
// upcall queues, revalidation, crash/restart reconciliation — all of which
// exist so the common case never runs the full pipeline. The OracleSwitch
// is the semantics those caches must preserve: it evaluates EVERY packet
// through a full ofproto::Pipeline translation (Pipeline::evaluate, the
// side-effect-free entry point), with no caches, no batching, and no
// revalidator, so its answer is by construction the ground truth.
//
// Epochs. Cached forwarding is not instant-update: after a flow-table
// mutation, installed megaflows legitimately keep forwarding with the old
// actions until a revalidation pass repairs them (§6 — invalidation is
// lazy, batched). So at any moment a packet's correct fate is not one
// action list but a SET: the result under any table state still "live" in
// some cache entry. The oracle models this by keeping one Pipeline per
// live epoch — a new epoch per mutation batch — and collapses to the
// newest epoch when the runner observes a clean revalidation pass (which
// proves no stale entry survives). Divergence means: the real switch
// produced a trace matching NO live epoch.
//
// Conntrack (DESIGN.md §15). ct_state is stamped into the flow key before
// classification, so megaflows depend on connection-table state exactly as
// they depend on the flow tables — and conntrack mutations (commit, remove,
// idle expiry, crash-flush) are epoch events like flow mods: a megaflow
// stamped with the pre-mutation ct_state legitimately serves until the next
// revalidation pass. Each epoch's pipeline replays the ct mutation log
// through the same ConnTracker implementation the switch runs (same caps,
// same LRU, same timestamps), so eviction/expiry order is bit-identical on
// both sides.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datapath/dp_actions.h"
#include "ofproto/pipeline.h"
#include "packet/packet.h"

namespace ovs::fuzz {

class OracleSwitch {
 public:
  explicit OracleSwitch(size_t n_tables = 8, ClassifierConfig cls_cfg = {},
                        ConnTrackerConfig ct_cfg = {});

  // Durable-config mutations, mirroring Switch::add_port / remove_port /
  // add_flow / del_flows semantics exactly (same parser, same loose-match
  // delete expansion). Flow mutations open a new epoch; port mutations
  // apply to every live epoch (megaflow actions cache output ports, so a
  // stale entry can still forward to a removed port — the packet fate set
  // under the OLD tables does not change when ports churn, because
  // translation consults the port list only for NORMAL floods, which
  // generated scenarios never use). Returns "" or a parse error.
  std::string add_flow(const std::string& text);
  std::string del_flows(const std::string& text);
  void add_port(uint32_t port);
  void remove_port(uint32_t port);

  // Conntrack mutations, applied in lockstep with the same call on the real
  // switch (Switch::ct_commit / ct_commit_nat / ct_remove). Each opens a
  // new epoch, like a flow mod. No-op writes (removing an unknown
  // connection, ticking past nothing expirable) are skipped entirely so the
  // epoch set does not grow on non-events.
  void ct_commit(const FlowKey& key, uint16_t zone, uint64_t now_ns);
  void ct_commit_nat(const FlowKey& key, const CtNatSpec& nat, uint16_t zone,
                     uint64_t now_ns);
  void ct_remove(const FlowKey& key, uint16_t zone);
  // Mirrors the switch's run_maintenance-time ConnTracker::expire_idle: call
  // with every maintenance timestamp BEFORE the switch's pass, so the
  // post-expiry table is a live epoch when the pass's clean revalidation
  // collapses to it.
  void ct_tick(uint64_t now_ns);
  // Mirrors crash(): conntrack is userspace state and dies with the daemon.
  void ct_flush();

  // Newest epoch's connection table (test introspection).
  const ConnTracker& conntrack() const noexcept {
    return epochs_.back().pipe->conntrack();
  }

  // Drops every epoch but the newest. Call when the real switch completes
  // a clean revalidation pass or a restart reconciliation: both prove all
  // cached entries agree with the current tables.
  void collapse();

  size_t epoch_count() const noexcept { return epochs_.size(); }

  // Ground-truth action list under the NEWEST tables.
  DpActions current(const FlowKey& pkt, uint64_t now_ns) const;

  // The acceptable set: the packet's normalized action list under every
  // live epoch, deduplicated (oldest epoch first).
  std::vector<DpActions> acceptable(const FlowKey& pkt,
                                    uint64_t now_ns) const;

 private:
  struct Mutation {
    enum class Kind : uint8_t {
      kAddFlow,
      kDelFlows,
      kCtCommit,
      kCtRemove,
      kCtTick,
      kCtFlush,
    } kind;
    std::string text;       // kAddFlow / kDelFlows
    FlowKey key;            // kCtCommit / kCtRemove
    uint16_t zone = 0;      // kCtCommit / kCtRemove
    uint64_t t = 0;         // kCtCommit (commit time) / kCtTick (expiry time)
    bool has_nat = false;   // kCtCommit
    CtNatSpec nat;          // kCtCommit, when has_nat
  };

  void push_ct_mutation(Mutation m);

  // Builds a fresh Pipeline by replaying mutations [0, n) of the log.
  std::unique_ptr<Pipeline> build_epoch(size_t n_mutations) const;

  size_t n_tables_;
  ClassifierConfig cls_cfg_;
  ConnTrackerConfig ct_cfg_;
  std::vector<uint32_t> ports_;
  std::vector<Mutation> log_;
  struct Epoch {
    size_t log_len;  // mutations applied to this epoch's pipeline
    std::unique_ptr<Pipeline> pipe;
  };
  std::vector<Epoch> epochs_;  // oldest first; back() is current
};

}  // namespace ovs::fuzz
