// Bounded connection tracker (paper §8.1: "an ongoing effort to provide a
// new OpenFlow action that invokes a kernel module that provides ...
// connection state (new, established, related)").
//
// Connections are keyed by the bidirectional 5-tuple plus a zone; the CT
// action stamps ct_state into the flow key so subsequent tables can match on
// it, exactly like the OVS `ct` action feeding `ct_state` matches. Beyond
// the minimal lookup/commit tracker this adds the production-shaped pieces
// (DESIGN.md §15):
//
//   * bounded capacity with per-zone limits and LRU eviction — a stateful
//     table is a resource-exhaustion surface exactly like the megaflow mask
//     list (§14), so it gets the same bounded-memory treatment;
//   * idle expiry driven by virtual time, with the determinism contract
//     that lookups NEVER refresh last-seen — only commits do — so the
//     table's contents are a pure function of the commit/remove/expire
//     event sequence (what lets the differential oracle mirror it);
//   * SNAT/DNAT bindings: a committed NAT connection stores the forward
//     rewrite and stamps a reverse-direction entry keyed on the post-NAT
//     tuple carrying the inverse rewrite, so replies un-NAT statelessly.
//
// Self-connections (src==dst addr AND port): the two directions of such a
// tuple are literally the same packet, so "reply" is undecidable from the
// wire. They are marked kSymmetric instead of ever setting kReply — the
// deterministic resolution of the old canonical-order ambiguity.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>

#include "packet/flow_key.h"
#include "util/hash.h"

namespace ovs {

namespace ct_state {
inline constexpr uint8_t kNew = 0x01;
inline constexpr uint8_t kEstablished = 0x02;
inline constexpr uint8_t kReply = 0x04;
// Fully symmetric 5-tuple (self-connection): direction undecidable, so the
// reply bit is never set and this bit is stamped instead.
inline constexpr uint8_t kSymmetric = 0x08;
}  // namespace ct_state

namespace tcpflags {
inline constexpr uint16_t kFin = 0x01;
inline constexpr uint16_t kRst = 0x04;
}  // namespace tcpflags

// NAT binding requested at commit time: rewrite the source (SNAT) or the
// destination (DNAT) of forward-direction packets to (addr, port).
struct CtNatSpec {
  bool src = true;  // true = SNAT, false = DNAT
  uint32_t addr = 0;
  uint16_t port = 0;
  bool operator==(const CtNatSpec&) const noexcept = default;
};

struct ConnTrackerConfig {
  size_t max_entries = 0;        // 0 = unbounded
  size_t max_per_zone = 0;       // 0 = no per-zone cap
  uint64_t idle_timeout_ns = 0;  // 0 = entries never idle out
  // Global-cap eviction policy: true evicts the LRU entry of the LARGEST
  // zone (an attacker zone churning connections cannot displace a quiet
  // victim zone's state); false evicts the globally least-recent entry
  // (the bench ablation showing why fairness matters).
  bool fair_eviction = true;
};

class ConnTracker {
 public:
  ConnTracker() = default;
  explicit ConnTracker(const ConnTrackerConfig& cfg) : cfg_(cfg) {}

  // Connection state of the packet's 5-tuple (direction-normalized). Const
  // and time-free by design: state transitions happen only via commit /
  // remove / expire_idle, so two trackers fed the same mutation sequence
  // answer identically regardless of when lookups happened in between.
  uint8_t lookup(const FlowKey& key, uint16_t zone = 0) const noexcept;

  // The NAT rewrite this packet should receive, if its connection carries a
  // binding applying in the packet's direction: forward packets get the
  // committed rewrite, replies (via the reverse entry) the inverse.
  struct NatRewrite {
    bool to_src = false;  // rewrite source (else destination)
    uint32_t addr = 0;
    uint16_t port = 0;
  };
  std::optional<NatRewrite> nat_lookup(const FlowKey& key,
                                       uint16_t zone = 0) const noexcept;

  // Commits the connection (the `ct(commit)` action or an explicit
  // controller write). Inserting a NEW connection bumps generation() and
  // may evict (zone cap first, then global cap); re-committing an existing
  // one only refreshes last-seen — idempotent, generation unchanged.
  // Returns true when a new entry was created.
  bool commit(const FlowKey& key, uint16_t zone = 0, uint64_t now_ns = 0);

  // Commit with a NAT binding: stores the forward rewrite on the primary
  // entry and stamps a reverse-direction entry keyed on the post-NAT tuple
  // with the inverse rewrite. If the post-NAT tuple collides with an
  // existing distinct connection the reverse entry is skipped (first wins,
  // deterministically). Re-commits refresh timestamps but never replace an
  // existing binding.
  bool commit_nat(const FlowKey& key, const CtNatSpec& nat,
                  uint16_t zone = 0, uint64_t now_ns = 0);

  // Tears down the connection (FIN/RST or controller delete), including its
  // paired NAT reverse entry.
  bool remove(const FlowKey& key, uint16_t zone = 0);

  // Removes every entry idle past the timeout as of now_ns; returns the
  // number removed. No-op (0) when idle_timeout_ns is 0.
  size_t expire_idle(uint64_t now_ns);
  // Would expire_idle(now_ns) remove anything?
  bool has_expirable(uint64_t now_ns) const noexcept;

  // Drops everything (userspace restart: conntrack is process state).
  void flush();

  size_t size() const noexcept { return table_.size(); }
  size_t zone_size(uint16_t zone) const noexcept;
  uint64_t generation() const noexcept { return generation_; }
  const ConnTrackerConfig& config() const noexcept { return cfg_; }

  struct Stats {
    uint64_t committed = 0;          // new entries created
    uint64_t refreshed = 0;          // idempotent re-commits
    uint64_t removed = 0;            // explicit teardowns
    uint64_t expired_idle = 0;       // idle-timeout expirations
    uint64_t evicted_zone_cap = 0;   // LRU evictions at the per-zone cap
    uint64_t evicted_global_cap = 0; // LRU evictions at the global cap
    uint64_t nat_bindings = 0;       // NAT bindings created
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct ConnKey {
    uint64_t lo_addr = 0, hi_addr = 0;  // normalized endpoint order
    uint32_t lo_port = 0, hi_port = 0;
    uint8_t proto = 0;
    uint16_t zone = 0;

    bool operator==(const ConnKey&) const noexcept = default;
    uint64_t hash() const noexcept {
      uint64_t h = hash_mix64(lo_addr);
      h = hash_add64(h, hi_addr);
      h = hash_add64(h, (uint64_t{lo_port} << 32) | hi_port);
      return hash_add64(h, (uint64_t{zone} << 8) | proto);
    }
  };
  struct ConnKeyHash {
    size_t operator()(const ConnKey& k) const noexcept {
      return static_cast<size_t>(k.hash());
    }
  };

  struct Entry {
    bool orig_is_lo = true;   // direction the committing packet traveled
    bool symmetric = false;   // self-connection: direction undecidable
    uint64_t last_seen_ns = 0;
    bool has_nat = false;
    bool nat_on_reply = false;  // rewrite applies to reply-direction packets
    NatRewrite nat;
    bool has_pair = false;      // NAT primary <-> reverse entry linkage
    ConnKey pair;
    std::list<ConnKey>::iterator lru;  // position in the zone's LRU list
  };

  // Endpoint (addr, port) pairs sorted so both directions map to one key.
  static ConnKey conn_key(const FlowKey& k, uint16_t zone) noexcept;
  // True when (src, sport) is the canonically-low endpoint.
  static bool is_lo_direction(const FlowKey& k) noexcept;

  const Entry* find(const FlowKey& key, uint16_t zone) const noexcept;
  // Inserts a fresh entry after making room; returns it (never fails).
  Entry& insert(const ConnKey& ck, uint64_t now_ns);
  // Removes the connection under ck plus its NAT pair; returns entries
  // removed (0, 1 or 2).
  size_t remove_conn(const ConnKey& ck);
  void make_room(uint16_t zone);
  void evict_lru_of_zone(uint16_t zone, bool zone_cap);

  ConnTrackerConfig cfg_;
  std::unordered_map<ConnKey, Entry, ConnKeyHash> table_;
  // Per-zone LRU order (front = least recently committed). std::map keyed
  // by zone id keeps the largest-zone scan deterministic.
  std::map<uint16_t, std::list<ConnKey>> zones_;
  uint64_t generation_ = 0;
  Stats stats_;
};

}  // namespace ovs
