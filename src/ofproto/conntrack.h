// Minimal connection tracker (paper §8.1: "an ongoing effort to provide a
// new OpenFlow action that invokes a kernel module that provides ...
// connection state (new, established, related)").
//
// Connections are keyed by the bidirectional 5-tuple; the CT action stamps
// ct_state into the flow key so subsequent tables can match on it, exactly
// like the OVS `ct` action feeding `ct_state` matches.
#pragma once

#include <cstdint>

#include "packet/flow_key.h"
#include "util/flat_hash.h"

namespace ovs {

namespace ct_state {
inline constexpr uint8_t kNew = 0x01;
inline constexpr uint8_t kEstablished = 0x02;
inline constexpr uint8_t kReply = 0x04;
}  // namespace ct_state

class ConnTracker {
 public:
  // Connection state of the packet's 5-tuple (direction-normalized).
  uint8_t lookup(const FlowKey& key) const noexcept {
    const ConnKey ck = conn_key(key);
    const ConnKey* e = table_.find(ck.hash(), [&](const ConnKey& x) {
      return x == ck;
    });
    if (e == nullptr) return ct_state::kNew;
    uint8_t s = ct_state::kEstablished;
    if (!forward_direction(key)) s |= ct_state::kReply;
    return s;
  }

  // Commits the connection (the `ct(commit)` action).
  void commit(const FlowKey& key) {
    const ConnKey ck = conn_key(key);
    if (table_.find(ck.hash(), [&](const ConnKey& x) { return x == ck; }))
      return;
    table_.insert(ck.hash(), ck);
    ++generation_;
  }

  // Tears down the connection (simulating FIN/RST or timeout).
  bool remove(const FlowKey& key) noexcept {
    const ConnKey ck = conn_key(key);
    if (!table_.erase(ck.hash(), [&](const ConnKey& x) { return x == ck; }))
      return false;
    ++generation_;
    return true;
  }

  size_t size() const noexcept { return table_.size(); }
  uint64_t generation() const noexcept { return generation_; }

 private:
  struct ConnKey {
    uint64_t lo_addr = 0, hi_addr = 0;  // normalized endpoint order
    uint32_t lo_port = 0, hi_port = 0;
    uint8_t proto = 0;

    bool operator==(const ConnKey&) const noexcept = default;
    uint64_t hash() const noexcept {
      uint64_t h = hash_mix64(lo_addr);
      h = hash_add64(h, hi_addr);
      h = hash_add64(h, (uint64_t{lo_port} << 32) | hi_port);
      return hash_add64(h, proto);
    }
  };

  // Endpoint (addr, port) pairs sorted so both directions map to one key.
  static ConnKey conn_key(const FlowKey& k) noexcept {
    const uint64_t a_addr = k.nw_src().value(), b_addr = k.nw_dst().value();
    const uint32_t a_port = k.tp_src(), b_port = k.tp_dst();
    ConnKey ck;
    ck.proto = k.nw_proto();
    if (a_addr < b_addr || (a_addr == b_addr && a_port <= b_port)) {
      ck.lo_addr = a_addr;
      ck.hi_addr = b_addr;
      ck.lo_port = a_port;
      ck.hi_port = b_port;
    } else {
      ck.lo_addr = b_addr;
      ck.hi_addr = a_addr;
      ck.lo_port = b_port;
      ck.hi_port = a_port;
    }
    return ck;
  }

  static bool forward_direction(const FlowKey& k) noexcept {
    const uint64_t a = k.nw_src().value(), b = k.nw_dst().value();
    return a < b || (a == b && k.tp_src() <= k.tp_dst());
  }

  HashBuckets<ConnKey> table_;
  uint64_t generation_ = 0;
};

}  // namespace ovs
