#include "ofproto/flow_table.h"

#include <algorithm>

#include "ofproto/actions.h"

namespace ovs {

const OfRule* FlowTable::add_flow(const Match& match, int32_t priority,
                                  OfActions actions, uint64_t cookie,
                                  FlowTimeouts timeouts, uint64_t now_ns) {
  if (Rule* existing = cls_.find_exact(match, priority))
    remove_rule(static_cast<OfRule*>(existing));
  auto owned = std::make_unique<OfRule>(match, priority, std::move(actions),
                                        cookie, timeouts, now_ns);
  OfRule* r = owned.get();
  cls_.insert(r);
  rules_.push_back(std::move(owned));
  ++generation_;
  return r;
}

bool FlowTable::delete_flow(const Match& match, int32_t priority) {
  Rule* r = cls_.find_exact(match, priority);
  if (r == nullptr) return false;
  remove_rule(static_cast<OfRule*>(r));
  ++generation_;
  return true;
}

size_t FlowTable::delete_by_cookie(uint64_t cookie) {
  std::vector<OfRule*> victims;
  cls_.for_each_rule([&](Rule* r) {
    auto* of = static_cast<OfRule*>(r);
    if (of->cookie() == cookie) victims.push_back(of);
  });
  for (OfRule* r : victims) remove_rule(r);
  if (!victims.empty()) ++generation_;
  return victims.size();
}

size_t FlowTable::delete_where(const Match& filter) {
  std::vector<OfRule*> victims;
  cls_.for_each_rule([&](Rule* r) {
    auto* of = static_cast<OfRule*>(r);
    // Loose match: the rule's mask must cover the filter's mask, and the
    // rule's (pre-masked) key must agree on the filter's bits.
    for (size_t i = 0; i < kFlowWords; ++i) {
      if ((of->match().mask.w[i] & filter.mask.w[i]) != filter.mask.w[i])
        return;
      if ((of->match().key.w[i] & filter.mask.w[i]) != filter.key.w[i])
        return;
    }
    victims.push_back(of);
  });
  for (OfRule* r : victims) remove_rule(r);
  if (!victims.empty()) ++generation_;
  return victims.size();
}

size_t FlowTable::expire_flows(uint64_t now_ns) {
  std::vector<OfRule*> victims;
  cls_.for_each_rule([&](Rule* r) {
    auto* of = static_cast<OfRule*>(r);
    const FlowTimeouts& t = of->timeouts();
    const bool idle_out =
        t.idle_ns != 0 && now_ns - of->used_ns() > t.idle_ns;
    const bool hard_out =
        t.hard_ns != 0 && now_ns - of->created_ns() > t.hard_ns;
    if (idle_out || hard_out) victims.push_back(of);
  });
  for (OfRule* r : victims) remove_rule(r);
  if (!victims.empty()) ++generation_;
  return victims.size();
}

void FlowTable::clear() {
  std::vector<OfRule*> victims;
  cls_.for_each_rule(
      [&](Rule* r) { victims.push_back(static_cast<OfRule*>(r)); });
  for (OfRule* r : victims) remove_rule(r);
  if (!victims.empty()) ++generation_;
}

void FlowTable::remove_rule(OfRule* r) {
  cls_.remove(r);
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [&](const auto& up) { return up.get() == r; });
  rules_.erase(it);
}

std::string OfActions::to_string() const {
  if (list.empty()) return "drop";
  std::string s;
  for (const OfAction& a : list) {
    if (!s.empty()) s += ",";
    if (const auto* o = std::get_if<OfOutput>(&a))
      s += "output:" + std::to_string(o->port);
    else if (std::get_if<OfDrop>(&a))
      s += "drop";
    else if (const auto* rs = std::get_if<OfResubmit>(&a))
      s += "resubmit:" + std::to_string(rs->table);
    else if (const auto* sf = std::get_if<OfSetField>(&a))
      s += std::string("set_field(") + field_info(sf->field).name + "=" +
           std::to_string(sf->value) + ")";
    else if (const auto* t = std::get_if<OfTunnel>(&a))
      s += "tunnel(port=" + std::to_string(t->port) +
           ",tun_id=" + std::to_string(t->tun_id) + ")";
    else if (std::get_if<OfController>(&a))
      s += "controller";
    else if (std::get_if<OfNormal>(&a))
      s += "normal";
    else if (const auto* ct = std::get_if<OfCt>(&a))
      s += std::string("ct(") + (ct->commit ? "commit," : "") + "table=" +
           std::to_string(ct->next_table) + ")";
  }
  return s;
}

}  // namespace ovs
