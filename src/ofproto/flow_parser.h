// Text interface for flow programming, an ovs-ofctl-compatible subset:
//
//   table=0, priority=100, tcp, nw_dst=9.1.1.0/24, tp_dst=80,
//       actions=set_field:5->reg0, resubmit(,1), output:2
//
// Match tokens: bare protocol keywords (ip, ipv6, tcp, udp, icmp, arp) and
// key=value pairs — in_port, metadata, tun_id, reg0..reg3, ct_state,
// dl_src, dl_dst, dl_type, vlan_tci, nw_src/nw_dst (with /len), nw_proto,
// nw_ttl, nw_tos, arp_op, ipv6_src/ipv6_dst (with /len), tp_src/tp_dst
// (with /len), tcp_flags, icmp_type, icmp_code.
//
// Actions: output:N, drop, normal, controller, resubmit(,T) or resubmit:T,
// set_field:V->FIELD (V = integer, a.b.c.d, or aa:bb:cc:dd:ee:ff),
// load:V->FIELD (alias), tunnel(PORT,ID), ct(table=T[,commit]).
//
// format_flow() emits the same syntax; parse(format(f)) round-trips.
#pragma once

#include <string>

#include "ofproto/flow_table.h"

namespace ovs {

struct ParsedFlow {
  size_t table = 0;
  bool has_table = false;  // whether table= appeared (for loose deletes)
  int32_t priority = 0;
  uint64_t cookie = 0;
  FlowTimeouts timeouts;  // idle_timeout= / hard_timeout= (seconds)
  Match match;
  OfActions actions;
};

// Result of a parse: either a flow or a human-readable error.
struct FlowParseResult {
  bool ok = false;
  ParsedFlow flow;
  std::string error;
};

FlowParseResult parse_flow(const std::string& text);

// Formats a flow in the syntax parse_flow accepts.
std::string format_flow(size_t table, int32_t priority, const Match& match,
                        const OfActions& actions);

// Formats just the match portion ("tcp, nw_dst=9.1.1.0/24, tp_dst=80").
std::string format_match(const Match& match);

// Formats just the actions ("output:2, resubmit(,1)").
std::string format_actions(const OfActions& actions);

}  // namespace ovs
