#include "ofproto/flow_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <optional>
#include <sstream>
#include <vector>

#include "ofproto/pipeline.h"

namespace ovs {

namespace {

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Splits on commas that are not inside parentheses.
std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

std::optional<uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  try {
    size_t pos = 0;
    const uint64_t v = std::stoull(s, &pos, 0);  // accepts 0x.. too
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<Ipv4> parse_ipv4(const std::string& s) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4)
    return std::nullopt;
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return Ipv4(static_cast<uint8_t>(a), static_cast<uint8_t>(b),
              static_cast<uint8_t>(c), static_cast<uint8_t>(d));
}

std::optional<EthAddr> parse_mac(const std::string& s) {
  unsigned b[6];
  char tail;
  if (std::sscanf(s.c_str(), "%x:%x:%x:%x:%x:%x%c", &b[0], &b[1], &b[2],
                  &b[3], &b[4], &b[5], &tail) != 6)
    return std::nullopt;
  for (unsigned v : b)
    if (v > 255) return std::nullopt;
  return EthAddr(static_cast<uint8_t>(b[0]), static_cast<uint8_t>(b[1]),
                 static_cast<uint8_t>(b[2]), static_cast<uint8_t>(b[3]),
                 static_cast<uint8_t>(b[4]), static_cast<uint8_t>(b[5]));
}

// Parses an IPv6 address restricted to the full 8-group form or "::".
std::optional<Ipv6> parse_ipv6(const std::string& s) {
  if (s == "::") return Ipv6(0, 0);
  unsigned g[8];
  char tail;
  if (std::sscanf(s.c_str(), "%x:%x:%x:%x:%x:%x:%x:%x%c", &g[0], &g[1],
                  &g[2], &g[3], &g[4], &g[5], &g[6], &g[7], &tail) != 8)
    return std::nullopt;
  uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | (g[i] & 0xffff);
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | (g[i] & 0xffff);
  return Ipv6(hi, lo);
}

// value[/len] for prefix-capable fields.
bool split_prefix(const std::string& s, std::string* value, unsigned* len,
                  unsigned max_len) {
  const size_t slash = s.find('/');
  if (slash == std::string::npos) {
    *value = s;
    *len = max_len;
    return true;
  }
  *value = s.substr(0, slash);
  auto l = parse_u64(s.substr(slash + 1));
  if (!l || *l > max_len) return false;
  *len = static_cast<unsigned>(*l);
  return true;
}

std::optional<FieldId> field_by_name(const std::string& name) {
  for (size_t i = 0; i < kNumFields; ++i)
    if (name == kFieldTable[i].name) return static_cast<FieldId>(i);
  // ovs-ofctl aliases.
  if (name == "dl_src") return FieldId::kEthSrc;
  if (name == "dl_dst") return FieldId::kEthDst;
  if (name == "dl_type") return FieldId::kEthType;
  return std::nullopt;
}

// Parses one match token into the builder. Returns an error or "".
std::string apply_match_token(MatchBuilder& b, const std::string& token) {
  // Bare protocol keywords.
  if (token == "ip") {
    b.ip();
    return "";
  }
  if (token == "ipv6") {
    b.eth_type_ipv6();
    return "";
  }
  if (token == "tcp") {
    b.tcp();
    return "";
  }
  if (token == "udp") {
    b.udp();
    return "";
  }
  if (token == "icmp") {
    b.icmp();
    return "";
  }
  if (token == "arp") {
    b.arp();
    return "";
  }

  const size_t eq = token.find('=');
  if (eq == std::string::npos) return "unknown match token '" + token + "'";
  const std::string key = trim(token.substr(0, eq));
  const std::string val = trim(token.substr(eq + 1));

  auto num = [&](uint64_t max) -> std::optional<uint64_t> {
    auto v = parse_u64(val);
    if (!v || *v > max) return std::nullopt;
    return v;
  };

  if (key == "in_port") {
    auto v = num(~uint32_t{0});
    if (!v) return "bad in_port '" + val + "'";
    b.in_port(static_cast<uint32_t>(*v));
  } else if (key == "metadata") {
    auto v = parse_u64(val);
    if (!v) return "bad metadata '" + val + "'";
    b.metadata(*v);
  } else if (key == "tun_id") {
    auto v = parse_u64(val);
    if (!v) return "bad tun_id '" + val + "'";
    b.tun_id(*v);
  } else if (key.rfind("reg", 0) == 0 && key.size() == 4 &&
             key[3] >= '0' && key[3] <= '3') {
    auto v = num(~uint32_t{0});
    if (!v) return "bad " + key + " '" + val + "'";
    b.reg(static_cast<unsigned>(key[3] - '0'), static_cast<uint32_t>(*v));
  } else if (key == "ct_state") {
    auto v = num(255);
    if (!v) return "bad ct_state '" + val + "'";
    b.ct_state(static_cast<uint8_t>(*v));
  } else if (key == "dl_src" || key == "eth_src") {
    auto m = parse_mac(val);
    if (!m) return "bad mac '" + val + "'";
    b.eth_src(*m);
  } else if (key == "dl_dst" || key == "eth_dst") {
    auto m = parse_mac(val);
    if (!m) return "bad mac '" + val + "'";
    b.eth_dst(*m);
  } else if (key == "dl_type" || key == "eth_type") {
    auto v = num(0xffff);
    if (!v) return "bad dl_type '" + val + "'";
    b.eth_type(static_cast<uint16_t>(*v));
  } else if (key == "vlan_tci" || key == "vlan") {
    auto v = num(0xffff);
    if (!v) return "bad vlan '" + val + "'";
    b.vlan_tci(static_cast<uint16_t>(*v));
  } else if (key == "nw_src" || key == "nw_dst") {
    std::string addr_s;
    unsigned len = 32;
    if (!split_prefix(val, &addr_s, &len, 32))
      return "bad prefix '" + val + "'";
    auto a = parse_ipv4(addr_s);
    if (!a) return "bad ip '" + addr_s + "'";
    if (key == "nw_src")
      b.nw_src_prefix(*a, len);
    else
      b.nw_dst_prefix(*a, len);
  } else if (key == "ipv6_src" || key == "ipv6_dst") {
    std::string addr_s;
    unsigned len = 128;
    if (!split_prefix(val, &addr_s, &len, 128))
      return "bad prefix '" + val + "'";
    auto a = parse_ipv6(addr_s);
    if (!a) return "bad ipv6 '" + addr_s + "'";
    if (key == "ipv6_src")
      b.ipv6_src_prefix(*a, len);
    else
      b.ipv6_dst_prefix(*a, len);
  } else if (key == "nw_proto") {
    auto v = num(255);
    if (!v) return "bad nw_proto '" + val + "'";
    b.nw_proto(static_cast<uint8_t>(*v));
  } else if (key == "nw_ttl") {
    auto v = num(255);
    if (!v) return "bad nw_ttl '" + val + "'";
    b.nw_ttl(static_cast<uint8_t>(*v));
  } else if (key == "nw_tos") {
    auto v = num(255);
    if (!v) return "bad nw_tos '" + val + "'";
    b.nw_tos(static_cast<uint8_t>(*v));
  } else if (key == "arp_op") {
    auto v = num(0xffff);
    if (!v) return "bad arp_op '" + val + "'";
    b.arp_op(static_cast<uint16_t>(*v));
  } else if (key == "tp_src" || key == "tp_dst") {
    std::string port_s;
    unsigned len = 16;
    if (!split_prefix(val, &port_s, &len, 16))
      return "bad prefix '" + val + "'";
    auto v = parse_u64(port_s);
    if (!v || *v > 0xffff) return "bad port '" + port_s + "'";
    if (key == "tp_src")
      b.tp_src_prefix(static_cast<uint16_t>(*v), len);
    else
      b.tp_dst_prefix(static_cast<uint16_t>(*v), len);
  } else if (key == "tcp_flags") {
    auto v = num(0xffff);
    if (!v) return "bad tcp_flags '" + val + "'";
    b.tcp_flags(static_cast<uint16_t>(*v));
  } else if (key == "icmp_type") {
    auto v = num(255);
    if (!v) return "bad icmp_type '" + val + "'";
    b.icmp_type(static_cast<uint8_t>(*v));
  } else if (key == "icmp_code") {
    auto v = num(255);
    if (!v) return "bad icmp_code '" + val + "'";
    b.icmp_code(static_cast<uint8_t>(*v));
  } else {
    return "unknown match key '" + key + "'";
  }
  return "";
}

// Parses a set_field / load value by field type.
std::optional<uint64_t> parse_field_value(FieldId f, const std::string& s) {
  if (f == FieldId::kEthSrc || f == FieldId::kEthDst) {
    if (auto m = parse_mac(s)) return m->bits();
  }
  if (f == FieldId::kNwSrc || f == FieldId::kNwDst) {
    if (auto a = parse_ipv4(s)) return a->value();
  }
  return parse_u64(s);
}

std::string apply_action(OfActions& actions, const std::string& token) {
  if (token == "drop") {
    actions.list.push_back(OfDrop{});
    return "";
  }
  if (token == "normal" || token == "NORMAL") {
    actions.normal();
    return "";
  }
  if (token == "controller" || token.rfind("controller:", 0) == 0) {
    uint32_t reason = 0;
    if (token.size() > 11) {
      auto v = parse_u64(token.substr(11));
      if (!v) return "bad controller reason";
      reason = static_cast<uint32_t>(*v);
    }
    actions.controller(reason);
    return "";
  }
  if (token.rfind("output:", 0) == 0) {
    auto v = parse_u64(token.substr(7));
    if (!v) return "bad output port '" + token + "'";
    actions.output(static_cast<uint32_t>(*v));
    return "";
  }
  if (token.rfind("resubmit", 0) == 0) {
    // resubmit:T or resubmit(,T)
    std::string arg;
    if (token.rfind("resubmit:", 0) == 0) {
      arg = token.substr(9);
    } else if (token.rfind("resubmit(,", 0) == 0 && token.back() == ')') {
      arg = token.substr(10, token.size() - 11);
    } else {
      return "bad resubmit '" + token + "'";
    }
    auto v = parse_u64(arg);
    if (!v || *v >= Pipeline::kMaxTables)
      return "bad resubmit table '" + arg + "'";
    actions.resubmit(static_cast<uint8_t>(*v));
    return "";
  }
  if (token.rfind("set_field:", 0) == 0 || token.rfind("load:", 0) == 0) {
    const size_t colon = token.find(':');
    const std::string rest = token.substr(colon + 1);
    const size_t arrow = rest.find("->");
    if (arrow == std::string::npos)
      return "set_field needs 'value->field': '" + token + "'";
    const std::string val_s = trim(rest.substr(0, arrow));
    const std::string field_s = trim(rest.substr(arrow + 2));
    auto field = field_by_name(field_s);
    if (!field) return "unknown field '" + field_s + "'";
    if (*field == FieldId::kIpv6Src || *field == FieldId::kIpv6Dst)
      return "set_field on ipv6 addresses is not supported";
    auto value = parse_field_value(*field, val_s);
    if (!value) return "bad value '" + val_s + "'";
    actions.set_field(*field, *value);
    return "";
  }
  if (token.rfind("mod_vlan_vid:", 0) == 0) {
    auto v = parse_u64(token.substr(13));
    if (!v || *v > 0x0fff) return "bad vlan vid '" + token + "'";
    actions.push_vlan(static_cast<uint16_t>(*v));
    return "";
  }
  if (token == "strip_vlan") {
    actions.pop_vlan();
    return "";
  }
  if (token.rfind("tunnel(", 0) == 0 && token.back() == ')') {
    const std::string args = token.substr(7, token.size() - 8);
    const size_t comma = args.find(',');
    if (comma == std::string::npos) return "tunnel needs (port,id)";
    auto port = parse_u64(trim(args.substr(0, comma)));
    auto id = parse_u64(trim(args.substr(comma + 1)));
    if (!port || !id) return "bad tunnel args '" + args + "'";
    actions.tunnel(static_cast<uint32_t>(*port), *id);
    return "";
  }
  if (token.rfind("ct(", 0) == 0 && token.back() == ')') {
    const std::string args = token.substr(3, token.size() - 4);
    OfCt ct;
    bool have_table = false;
    for (const std::string& part : split_commas(args)) {
      if (part == "commit") {
        ct.commit = true;
      } else if (part.rfind("table=", 0) == 0) {
        auto v = parse_u64(part.substr(6));
        if (!v || *v >= Pipeline::kMaxTables)
          return "bad ct table '" + part + "'";
        ct.next_table = static_cast<uint8_t>(*v);
        have_table = true;
      } else if (part.rfind("zone=", 0) == 0) {
        auto v = parse_u64(part.substr(5));
        if (!v || *v > 65535) return "bad ct zone '" + part + "'";
        ct.zone = static_cast<uint16_t>(*v);
      } else if (part == "nat") {
        ct.nat = OfCt::Nat::kApply;
      } else if (part.rfind("nat(", 0) == 0 && part.back() == ')') {
        // nat(src=A.B.C.D:PORT) or nat(dst=A.B.C.D:PORT)
        const std::string spec = part.substr(4, part.size() - 5);
        if (spec.rfind("src=", 0) == 0)
          ct.nat = OfCt::Nat::kSrc;
        else if (spec.rfind("dst=", 0) == 0)
          ct.nat = OfCt::Nat::kDst;
        else
          return "bad ct nat spec '" + part + "'";
        const std::string ap = spec.substr(4);
        const size_t colon = ap.rfind(':');
        if (colon == std::string::npos)
          return "ct nat needs addr:port '" + part + "'";
        auto addr = parse_ipv4(ap.substr(0, colon));
        auto port = parse_u64(ap.substr(colon + 1));
        if (!addr || !port || *port > 65535)
          return "bad ct nat addr:port '" + part + "'";
        ct.nat_addr = addr->value();
        ct.nat_port = static_cast<uint16_t>(*port);
      } else {
        return "unknown ct arg '" + part + "'";
      }
    }
    if (!have_table) return "ct needs table=N";
    actions.list.push_back(ct);
    return "";
  }
  return "unknown action '" + token + "'";
}

}  // namespace

FlowParseResult parse_flow(const std::string& text) {
  FlowParseResult res;

  const size_t actions_pos = text.find("actions=");
  if (actions_pos == std::string::npos) {
    res.error = "missing actions=";
    return res;
  }
  std::string match_part = text.substr(0, actions_pos);
  // Strip a trailing comma separating the match from actions.
  const size_t last_comma = match_part.find_last_of(',');
  if (last_comma != std::string::npos &&
      trim(match_part.substr(last_comma + 1)).empty())
    match_part = match_part.substr(0, last_comma);
  const std::string actions_part = text.substr(actions_pos + 8);

  MatchBuilder builder;
  for (const std::string& token : split_commas(match_part)) {
    if (token.empty()) continue;
    if (token.rfind("table=", 0) == 0) {
      auto v = parse_u64(token.substr(6));
      if (!v || *v >= Pipeline::kMaxTables) {
        res.error = "bad table '" + token + "'";
        return res;
      }
      res.flow.table = static_cast<size_t>(*v);
      res.flow.has_table = true;
      continue;
    }
    if (token.rfind("priority=", 0) == 0) {
      auto v = parse_u64(token.substr(9));
      if (!v || *v > 65535) {
        res.error = "bad priority '" + token + "'";
        return res;
      }
      res.flow.priority = static_cast<int32_t>(*v);
      continue;
    }
    if (token.rfind("cookie=", 0) == 0) {
      auto v = parse_u64(token.substr(7));
      if (!v) {
        res.error = "bad cookie '" + token + "'";
        return res;
      }
      res.flow.cookie = *v;
      continue;
    }
    if (token.rfind("idle_timeout=", 0) == 0 ||
        token.rfind("hard_timeout=", 0) == 0) {
      const bool idle = token[0] == 'i';
      auto v = parse_u64(token.substr(13));
      if (!v || *v > 1000000) {
        res.error = "bad timeout '" + token + "'";
        return res;
      }
      (idle ? res.flow.timeouts.idle_ns : res.flow.timeouts.hard_ns) =
          *v * 1000000000ULL;
      continue;
    }
    const std::string err = apply_match_token(builder, token);
    if (!err.empty()) {
      res.error = err;
      return res;
    }
  }
  res.flow.match = builder.build();

  for (const std::string& token : split_commas(actions_part)) {
    const std::string err = apply_action(res.flow.actions, token);
    if (!err.empty()) {
      res.error = err;
      return res;
    }
  }
  res.ok = true;
  return res;
}

std::string format_match(const Match& match) {
  std::ostringstream os;
  bool first = true;
  auto emit = [&](const std::string& s) {
    if (!first) os << ", ";
    first = false;
    os << s;
  };

  const FlowMask& m = match.mask;
  const FlowKey& k = match.key;

  // Protocol keywords when the corresponding fields are exact.
  bool et_done = false, proto_done = false;
  if (m.is_exact(FieldId::kEthType)) {
    if (k.eth_type() == ethertype::kArp) {
      emit("arp");
      et_done = true;
    } else if (k.eth_type() == ethertype::kIpv4 &&
               m.is_exact(FieldId::kNwProto)) {
      if (k.nw_proto() == ipproto::kTcp) {
        emit("tcp");
        et_done = proto_done = true;
      } else if (k.nw_proto() == ipproto::kUdp) {
        emit("udp");
        et_done = proto_done = true;
      } else if (k.nw_proto() == ipproto::kIcmp) {
        emit("icmp");
        et_done = proto_done = true;
      }
    }
    if (!et_done && k.eth_type() == ethertype::kIpv4) {
      emit("ip");
      et_done = true;
    } else if (!et_done && k.eth_type() == ethertype::kIpv6) {
      emit("ipv6");
      et_done = true;
    }
  }

  const bool is_icmp = m.is_exact(FieldId::kNwProto) &&
                       (k.nw_proto() == ipproto::kIcmp ||
                        k.nw_proto() == ipproto::kIcmpv6);

  for (size_t i = 0; i < kNumFields; ++i) {
    const auto f = static_cast<FieldId>(i);
    if (!m.has_field(f)) continue;
    if (f == FieldId::kEthType && et_done) continue;
    if (f == FieldId::kNwProto && proto_done) continue;
    const FieldInfo& fi = field_info(f);
    const int plen = m.prefix_len(f);
    std::ostringstream v;
    switch (f) {
      case FieldId::kEthSrc:
        v << "dl_src=" << k.eth_src().to_string();
        break;
      case FieldId::kEthDst:
        v << "dl_dst=" << k.eth_dst().to_string();
        break;
      case FieldId::kNwSrc:
      case FieldId::kNwDst:
        v << fi.name << "="
          << Ipv4(static_cast<uint32_t>(k.get(f))).to_string();
        if (plen >= 0 && plen < 32) v << "/" << plen;
        break;
      case FieldId::kIpv6Src:
        v << "ipv6_src=" << k.ipv6_src().to_string();
        if (plen >= 0 && plen < 128) v << "/" << plen;
        break;
      case FieldId::kIpv6Dst:
        v << "ipv6_dst=" << k.ipv6_dst().to_string();
        if (plen >= 0 && plen < 128) v << "/" << plen;
        break;
      case FieldId::kTpSrc:
        v << (is_icmp ? "icmp_type" : "tp_src") << "=" << k.get(f);
        if (!is_icmp && plen >= 0 && plen < 16) v << "/" << plen;
        break;
      case FieldId::kTpDst:
        v << (is_icmp ? "icmp_code" : "tp_dst") << "=" << k.get(f);
        if (!is_icmp && plen >= 0 && plen < 16) v << "/" << plen;
        break;
      case FieldId::kEthType: {
        char buf[10];
        std::snprintf(buf, sizeof buf, "0x%04x",
                      static_cast<unsigned>(k.eth_type()));
        v << "dl_type=" << buf;
        break;
      }
      default:
        v << fi.name << "=" << k.get(f);
        break;
    }
    emit(v.str());
  }
  if (first) return "(any)";
  return os.str();
}

std::string format_actions(const OfActions& actions) {
  if (actions.list.empty()) return "drop";
  std::ostringstream os;
  bool first = true;
  auto emit = [&](const std::string& s) {
    if (!first) os << ", ";
    first = false;
    os << s;
  };
  for (const OfAction& a : actions.list) {
    if (const auto* o = std::get_if<OfOutput>(&a))
      emit("output:" + std::to_string(o->port));
    else if (std::get_if<OfDrop>(&a))
      emit("drop");
    else if (const auto* r = std::get_if<OfResubmit>(&a))
      emit("resubmit(," + std::to_string(r->table) + ")");
    else if (const auto* sf = std::get_if<OfSetField>(&a)) {
      std::string v;
      if (sf->field == FieldId::kEthSrc || sf->field == FieldId::kEthDst)
        v = EthAddr(sf->value).to_string();
      else if (sf->field == FieldId::kNwSrc || sf->field == FieldId::kNwDst)
        v = Ipv4(static_cast<uint32_t>(sf->value)).to_string();
      else
        v = std::to_string(sf->value);
      emit("set_field:" + v + "->" + field_info(sf->field).name);
    } else if (const auto* t = std::get_if<OfTunnel>(&a)) {
      emit("tunnel(" + std::to_string(t->port) + "," +
           std::to_string(t->tun_id) + ")");
    } else if (std::get_if<OfController>(&a)) {
      emit("controller");
    } else if (std::get_if<OfNormal>(&a)) {
      emit("normal");
    } else if (const auto* ct = std::get_if<OfCt>(&a)) {
      std::string s = "ct(";
      if (ct->commit) s += "commit,";
      if (ct->zone != 0) s += "zone=" + std::to_string(ct->zone) + ",";
      if (ct->nat == OfCt::Nat::kApply) {
        s += "nat,";
      } else if (ct->nat != OfCt::Nat::kNone) {
        s += std::string("nat(") +
             (ct->nat == OfCt::Nat::kSrc ? "src=" : "dst=") +
             Ipv4(ct->nat_addr).to_string() + ":" +
             std::to_string(ct->nat_port) + "),";
      }
      emit(s + "table=" + std::to_string(ct->next_table) + ")");
    }
  }
  return os.str();
}

std::string format_flow(size_t table, int32_t priority, const Match& match,
                        const OfActions& actions) {
  std::string s = "table=" + std::to_string(table) +
                  ", priority=" + std::to_string(priority);
  if (!match.mask.is_zero()) s += ", " + format_match(match);
  return s + ", actions=" + format_actions(actions);
}

}  // namespace ovs
