// One OpenFlow flow table: a classifier of OfRule entries with OpenFlow
// add/modify/delete semantics (§3.3).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "classifier/classifier.h"
#include "ofproto/actions.h"

namespace ovs {

// OpenFlow-style flow expiry configuration (0 = no timeout).
struct FlowTimeouts {
  uint64_t idle_ns = 0;
  uint64_t hard_ns = 0;
};

class OfRule : public Rule {
 public:
  OfRule(Match match, int32_t priority, OfActions actions, uint64_t cookie,
         FlowTimeouts timeouts = {}, uint64_t created_ns = 0)
      : Rule(match, priority),
        actions_(std::move(actions)),
        cookie_(cookie),
        timeouts_(timeouts),
        created_ns_(created_ns),
        used_ns_(created_ns) {}

  const OfActions& actions() const noexcept { return actions_; }
  uint64_t cookie() const noexcept { return cookie_; }
  const FlowTimeouts& timeouts() const noexcept { return timeouts_; }
  uint64_t created_ns() const noexcept { return created_ns_; }

  // Per-flow statistics (§6): updated periodically by the daemon from
  // datapath flow stats, so they lag real traffic by up to a poll period
  // ("OpenFlow statistics are themselves only periodically updated").
  uint64_t packets() const noexcept { return packets_; }
  uint64_t bytes() const noexcept { return bytes_; }
  uint64_t used_ns() const noexcept { return used_ns_; }

  void add_stats(uint64_t packets, uint64_t bytes,
                 uint64_t now_ns) const noexcept {
    packets_ += packets;
    bytes_ += bytes;
    if (packets > 0 && now_ns > used_ns_) used_ns_ = now_ns;
  }

 private:
  friend class FlowTable;
  OfActions actions_;
  uint64_t cookie_;
  FlowTimeouts timeouts_;
  uint64_t created_ns_ = 0;
  mutable uint64_t packets_ = 0;
  mutable uint64_t bytes_ = 0;
  mutable uint64_t used_ns_ = 0;
};

class FlowTable {
 public:
  enum class MissBehavior : uint8_t { kDrop, kController };

  explicit FlowTable(ClassifierConfig cfg = {}) : cls_(cfg) {}

  // Adds a flow; an existing flow with the same match and priority is
  // replaced (OpenFlow semantics). Returns the rule.
  const OfRule* add_flow(const Match& match, int32_t priority,
                         OfActions actions, uint64_t cookie = 0,
                         FlowTimeouts timeouts = {}, uint64_t now_ns = 0);

  // Removes flows past their idle/hard timeouts. Returns how many expired.
  size_t expire_flows(uint64_t now_ns);

  // Deletes the flow exactly matching (match, priority). Returns success.
  bool delete_flow(const Match& match, int32_t priority);

  // Deletes all flows with the given cookie; returns how many.
  size_t delete_by_cookie(uint64_t cookie);

  // Loose-match deletion (ovs-ofctl del-flows semantics): removes every
  // flow whose match includes all of the filter's criteria with the same
  // values. An empty filter deletes everything.
  size_t delete_where(const Match& filter);

  void clear();

  const OfRule* lookup(const FlowKey& pkt,
                       FlowWildcards* wc = nullptr) const noexcept {
    return static_cast<const OfRule*>(cls_.lookup(pkt, wc));
  }

  // Batched lookup: out[i] (and wcs[i], if given) receive exactly what
  // lookup(keys[i], &wcs[i]) would produce, through the classifier engine's
  // batch path. The temporary Rule* array exists because casting an
  // OfRule** to Rule** would be UB; the per-element downcast is free.
  void lookup_batch(const FlowKey* keys, size_t n, const OfRule** out,
                    FlowWildcards* wcs = nullptr) const {
    std::vector<const Rule*> tmp(n);
    cls_.lookup_batch(keys, n, tmp.data(), wcs);
    for (size_t i = 0; i < n; ++i)
      out[i] = static_cast<const OfRule*>(tmp[i]);
  }

  size_t flow_count() const noexcept { return cls_.rule_count(); }
  size_t tuple_count() const noexcept { return cls_.tuple_count(); }

  // Bumped on every modification; revalidators use it to detect staleness.
  uint64_t generation() const noexcept { return generation_; }

  MissBehavior miss_behavior() const noexcept { return miss_; }
  void set_miss_behavior(MissBehavior m) noexcept { miss_ = m; }

  const Classifier& classifier() const noexcept { return cls_; }

  template <typename F>
  void for_each(F&& f) const {
    cls_.for_each_rule(
        [&](const Rule* r) { f(static_cast<const OfRule*>(r)); });
  }

 private:
  void remove_rule(OfRule* r);

  Classifier cls_;
  std::vector<std::unique_ptr<OfRule>> rules_;
  uint64_t generation_ = 0;
  MissBehavior miss_ = MissBehavior::kDrop;
};

}  // namespace ovs
