#include "ofproto/pipeline.h"

#include <algorithm>
#include <cassert>

namespace ovs {

Pipeline::Pipeline(size_t n_tables, ClassifierConfig cls_cfg,
                   ConnTrackerConfig ct_cfg)
    : ct_(ct_cfg) {
  assert(n_tables >= 1 && n_tables <= kMaxTables);
  tables_.reserve(n_tables);
  for (size_t i = 0; i < n_tables; ++i)
    tables_.push_back(std::make_unique<FlowTable>(cls_cfg));
}

void Pipeline::add_port(uint32_t port) {
  if (std::find(ports_.begin(), ports_.end(), port) != ports_.end()) return;
  ports_.push_back(port);
  ++port_generation_;
}

void Pipeline::remove_port(uint32_t port) {
  auto it = std::find(ports_.begin(), ports_.end(), port);
  if (it == ports_.end()) return;
  ports_.erase(it);
  ++port_generation_;
}

size_t Pipeline::flow_count() const noexcept {
  size_t n = 0;
  for (const auto& t : tables_) n += t->flow_count();
  return n;
}

size_t Pipeline::expire_flows(uint64_t now_ns) {
  size_t n = 0;
  for (const auto& t : tables_) n += t->expire_flows(now_ns);
  return n;
}

uint64_t Pipeline::generation() const noexcept {
  return port_generation_ + mac_.generation() + tables_generation();
}

uint64_t Pipeline::tables_generation() const noexcept {
  uint64_t g = 0;
  for (const auto& t : tables_) g += t->generation();
  return g;
}

struct Pipeline::XlateCtx {
  FlowKey key;              // current (possibly rewritten) headers
  const FlowKey* original;  // the packet as received
  FlowWildcards wc;         // consulted ORIGINAL packet bits
  FlowMask modified;        // bits overwritten by set-field actions
  DpActions out;
  uint64_t now_ns = 0;
  bool side_effects = true;
  bool to_controller = false;
  bool error = false;
  uint32_t table_lookups = 0;
  uint64_t tags = 0;
  std::vector<const OfRule*> matched_rules;

  // Merge a lookup's consulted bits, suppressing rewritten ones: reads of a
  // rewritten field observed the written value, not packet bits.
  void absorb(const FlowWildcards& consulted) noexcept {
    for (size_t i = 0; i < kFlowWords; ++i)
      wc.w[i] |= consulted.w[i] & ~modified.w[i];
  }

  void consult_field(FieldId f) noexcept {
    FlowWildcards tmp;
    tmp.set_exact(f);
    absorb(tmp);
  }

  void set_field(FieldId f, uint64_t v) noexcept {
    key.set(f, v);
    modified.set_exact(f);
  }
};

void Pipeline::do_normal(XlateCtx& ctx) {
  // Traditional L2 learning switch (§3.3's hard-coded pipelines; our NORMAL
  // action). Consults in_port, vlan and both MACs.
  ctx.consult_field(FieldId::kInPort);
  ctx.consult_field(FieldId::kVlanTci);
  ctx.consult_field(FieldId::kEthSrc);
  ctx.consult_field(FieldId::kEthDst);

  const uint16_t vlan = ctx.key.vlan_tci();
  if (ctx.side_effects)
    mac_.learn(ctx.key.eth_src(), vlan, ctx.key.in_port(), ctx.now_ns);
  ctx.tags |= MacLearning::tag(ctx.key.eth_src(), vlan);
  ctx.tags |= MacLearning::tag(ctx.key.eth_dst(), vlan);

  if (!ctx.key.eth_dst().is_multicast()) {
    if (auto port = mac_.lookup(ctx.key.eth_dst(), vlan, ctx.now_ns)) {
      if (*port != ctx.key.in_port()) ctx.out.output(*port);
      return;
    }
  }
  // Unknown or multicast destination: flood.
  for (uint32_t p : ports_)
    if (p != ctx.key.in_port()) ctx.out.output(p);
}

void Pipeline::do_ct(XlateCtx& ctx, const OfCt& ct, int depth) {
  // Connection lookup consults the 5-tuple.
  ctx.consult_field(FieldId::kNwSrc);
  ctx.consult_field(FieldId::kNwDst);
  ctx.consult_field(FieldId::kNwProto);
  ctx.consult_field(FieldId::kTpSrc);
  ctx.consult_field(FieldId::kTpDst);
  const bool is_tcp = ctx.key.nw_proto() == ipproto::kTcp;
  // Only commit-capable TCP ct reads the flags word (FIN/RST teardown), so
  // lookup-only ct rules keep megaflows flag-wildcarded.
  if (ct.commit && is_tcp) ctx.consult_field(FieldId::kTcpFlags);

  const uint8_t state = ct_.lookup(ctx.key, ct.zone);
  const bool teardown =
      ct.commit && is_tcp &&
      (ctx.key.tcp_flags() & (tcpflags::kFin | tcpflags::kRst)) != 0 &&
      (state & ct_state::kEstablished) != 0;

  if (ct.commit && ctx.side_effects) {
    if (teardown) {
      ct_.remove(ctx.key, ct.zone);
    } else if (ct.nat == OfCt::Nat::kSrc || ct.nat == OfCt::Nat::kDst) {
      CtNatSpec spec;
      spec.src = ct.nat == OfCt::Nat::kSrc;
      spec.addr = ct.nat_addr;
      spec.port = ct.nat_port;
      ct_.commit_nat(ctx.key, spec, ct.zone, ctx.now_ns);
    } else {
      ct_.commit(ctx.key, ct.zone, ctx.now_ns);
    }
  }

  // NAT: apply the connection's binding (if any) in this packet's direction.
  // Pure lookup — bindings only change via commits above or explicit
  // controller writes — and the rewrite is a set-field like any other, so
  // rewritten bits stop contributing to the megaflow mask.
  if (ct.nat != OfCt::Nat::kNone && !teardown) {
    if (auto rw = ct_.nat_lookup(ctx.key, ct.zone)) {
      const FieldId addr_f = rw->to_src ? FieldId::kNwSrc : FieldId::kNwDst;
      const FieldId port_f = rw->to_src ? FieldId::kTpSrc : FieldId::kTpDst;
      ctx.set_field(addr_f, rw->addr);
      ctx.out.set_field(addr_f, rw->addr);
      ctx.set_field(port_f, rw->port);
      ctx.out.set_field(port_f, rw->port);
    }
  }

  // ct_state is derived state, not packet bits: mark it rewritten so later
  // ct_state matches don't unwildcard anything. A FIN/RST packet still sees
  // the pre-teardown state (it belongs to the connection it closes).
  ctx.set_field(FieldId::kCtState, state);
  xlate_table(ctx, ct.next_table, depth + 1);
}

void Pipeline::xlate_table(XlateCtx& ctx, size_t table_id, int depth,
                           const Prefetched* pre) {
  if (depth > kMaxResubmitDepth || table_id >= tables_.size()) {
    ctx.error = true;
    return;
  }
  FlowTable& table = *tables_[table_id];
  FlowWildcards consulted;
  const OfRule* rule;
  if (pre != nullptr) {
    // translate_batch already classified this packet against table 0; the
    // key cannot have been rewritten before the first lookup, so the
    // precomputed result is exactly what lookup() would return here.
    rule = pre->rule;
    consulted = *pre->consulted;
  } else {
    rule = table.lookup(ctx.key, &consulted);
  }
  ctx.absorb(consulted);
  ++ctx.table_lookups;

  if (rule == nullptr) {
    if (table.miss_behavior() == FlowTable::MissBehavior::kController) {
      ctx.out.userspace(/*reason=*/table_id);
      ctx.to_controller = true;
    }
    return;  // table miss: drop (default)
  }
  ctx.matched_rules.push_back(rule);

  for (const OfAction& act : rule->actions().list) {
    if (ctx.error) return;
    if (const auto* o = std::get_if<OfOutput>(&act)) {
      if (o->port != ctx.original->in_port()) ctx.out.output(o->port);
    } else if (std::get_if<OfDrop>(&act)) {
      return;  // terminate this action list
    } else if (const auto* rs = std::get_if<OfResubmit>(&act)) {
      xlate_table(ctx, rs->table, depth + 1);
    } else if (const auto* sf = std::get_if<OfSetField>(&act)) {
      ctx.set_field(sf->field, sf->value);
      ctx.out.set_field(sf->field, sf->value);
    } else if (const auto* t = std::get_if<OfTunnel>(&act)) {
      ctx.out.tunnel(t->port, t->tun_id);
    } else if (const auto* c = std::get_if<OfController>(&act)) {
      ctx.out.userspace(c->reason);
      ctx.to_controller = true;
    } else if (std::get_if<OfNormal>(&act)) {
      do_normal(ctx);
    } else if (const auto* ct = std::get_if<OfCt>(&act)) {
      do_ct(ctx, *ct, depth);
      return;  // ct recirculates; remaining actions are not executed
    }
  }
}

namespace {

// Trims wildcards to the fields that exist for this packet type, as OVS
// does: once the megaflow pins eth_type (and nw_proto), header fields that
// cannot occur in such packets are dropped from the mask. This is what
// keeps the datapath's mask population small — an ARP megaflow need not
// (and must not, for hit-rate) match TCP ports. Sound because the retained
// exact eth_type/nw_proto matches imply which fields exist.
void trim_wildcards_to_packet(const FlowKey& pkt, FlowWildcards& wc) {
  if (!wc.is_exact(FieldId::kEthType)) return;
  const uint16_t et = pkt.eth_type();
  const bool is_v4 = et == ethertype::kIpv4;
  const bool is_v6 = et == ethertype::kIpv6;
  const bool is_arp = et == ethertype::kArp;
  if (!is_v4) {
    wc.clear_field(FieldId::kNwSrc);
    wc.clear_field(FieldId::kNwDst);
  }
  if (!is_v6) {
    wc.clear_field(FieldId::kIpv6Src);
    wc.clear_field(FieldId::kIpv6Dst);
  }
  if (!is_arp) {
    wc.clear_field(FieldId::kArpOp);
  } else {
    // ARP reuses nw_src/nw_dst for SPA/TPA; everything else is absent.
    wc.clear_field(FieldId::kNwProto);
    wc.clear_field(FieldId::kNwTtl);
    wc.clear_field(FieldId::kNwTos);
    wc.clear_field(FieldId::kNwFrag);
  }
  if (!is_v4 && !is_v6) {
    wc.clear_field(FieldId::kNwProto);
    wc.clear_field(FieldId::kNwTtl);
    wc.clear_field(FieldId::kNwTos);
    wc.clear_field(FieldId::kNwFrag);
    wc.clear_field(FieldId::kTpSrc);
    wc.clear_field(FieldId::kTpDst);
    wc.clear_field(FieldId::kTcpFlags);
    return;
  }
  if (!wc.is_exact(FieldId::kNwProto)) return;
  const uint8_t proto = pkt.nw_proto();
  const bool has_ports = proto == ipproto::kTcp || proto == ipproto::kUdp ||
                         proto == ipproto::kSctp ||
                         proto == ipproto::kIcmp ||
                         proto == ipproto::kIcmpv6;
  if (!has_ports) {
    wc.clear_field(FieldId::kTpSrc);
    wc.clear_field(FieldId::kTpDst);
  }
  if (proto != ipproto::kTcp) wc.clear_field(FieldId::kTcpFlags);
}

}  // namespace

XlateResult Pipeline::translate(const FlowKey& pkt, uint64_t now_ns,
                                bool side_effects) {
  return translate_one(pkt, now_ns, side_effects, nullptr);
}

std::vector<XlateResult> Pipeline::translate_batch(std::span<const Packet> pkts,
                                                   uint64_t now_ns,
                                                   bool side_effects) {
  std::vector<XlateResult> out;
  out.reserve(pkts.size());
  if (pkts.empty()) return out;

  std::vector<FlowKey> keys;
  keys.reserve(pkts.size());
  for (const Packet& p : pkts) keys.push_back(p.key);
  std::vector<const OfRule*> rules(pkts.size());
  std::vector<FlowWildcards> wcs(pkts.size());
  tables_[0]->lookup_batch(keys.data(), keys.size(), rules.data(), wcs.data());

  for (size_t i = 0; i < pkts.size(); ++i) {
    const Prefetched pre{rules[i], &wcs[i]};
    out.push_back(translate_one(keys[i], now_ns, side_effects, &pre));
  }
  return out;
}

XlateResult Pipeline::translate_one(const FlowKey& pkt, uint64_t now_ns,
                                    bool side_effects, const Prefetched* pre) {
  XlateCtx ctx;
  ctx.key = pkt;
  ctx.original = &pkt;
  ctx.now_ns = now_ns;
  ctx.side_effects = side_effects;
  // Datapath flows always match on the ingress port (as in OVS): output
  // actions suppress hairpinning back out of in_port, so the forwarding
  // decision inherently depends on it.
  ctx.consult_field(FieldId::kInPort);
  xlate_table(ctx, /*table_id=*/0, /*depth=*/0, pre);

  XlateResult res;
  trim_wildcards_to_packet(pkt, ctx.wc);
  res.megaflow.mask = ctx.wc;
  res.megaflow.key = pkt;
  res.megaflow.normalize();
  if (ctx.error) {
    // Depth exceeded: fail safe with a drop flow (the consulted bits fully
    // determine that the loop occurs, so the megaflow is still sound).
    res.error = true;
    res.actions = DpActions{};
  } else {
    res.actions = std::move(ctx.out);
    res.actions.normalize();
  }
  res.to_controller = ctx.to_controller;
  res.table_lookups = ctx.table_lookups;
  res.tags = ctx.tags;
  res.matched_rules = std::move(ctx.matched_rules);
  return res;
}

XlateResult Pipeline::evaluate(const FlowKey& pkt, uint64_t now_ns) const {
  // With side_effects=false translation is read-only (the revalidator's
  // parallel plan phase depends on exactly this), so the cast never lets a
  // mutation through.
  return const_cast<Pipeline*>(this)->translate(pkt, now_ns,
                                                /*side_effects=*/false);
}

}  // namespace ovs
