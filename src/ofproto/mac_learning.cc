#include "ofproto/mac_learning.h"

#include <vector>

namespace ovs {

bool MacLearning::learn(EthAddr mac, uint16_t vlan, uint32_t port,
                        uint64_t now_ns) {
  if (mac.is_multicast()) return false;  // never learn multicast sources
  const uint64_t h = key_hash(mac.bits(), vlan);
  Entry* e = table_.find(h, [&](const Entry& x) {
    return x.mac_bits == mac.bits() && x.vlan == vlan;
  });
  if (e != nullptr) {
    e->used_ns = now_ns;
    if (e->port == port) return false;
    e->port = port;  // MAC move
    ++generation_;
    changed_tags_ |= tag(mac, vlan);
    return true;
  }
  if (table_.size() >= cfg_.max_entries) return false;  // table full
  table_.insert(h, Entry{mac.bits(), vlan, port, now_ns});
  ++generation_;
  changed_tags_ |= tag(mac, vlan);
  return true;
}

std::optional<uint32_t> MacLearning::lookup(EthAddr mac, uint16_t vlan,
                                            uint64_t now_ns) const {
  const uint64_t h = key_hash(mac.bits(), vlan);
  const Entry* e = table_.find(h, [&](const Entry& x) {
    return x.mac_bits == mac.bits() && x.vlan == vlan;
  });
  if (e == nullptr) return std::nullopt;
  if (now_ns - e->used_ns > cfg_.idle_ns) return std::nullopt;  // expired
  return e->port;
}

size_t MacLearning::expire(uint64_t now_ns) {
  std::vector<Entry> stale;
  table_.for_each([&](const Entry& e) {
    if (now_ns - e.used_ns > cfg_.idle_ns) stale.push_back(e);
  });
  for (const Entry& e : stale) {
    table_.erase(key_hash(e.mac_bits, e.vlan), [&](const Entry& x) {
      return x.mac_bits == e.mac_bits && x.vlan == e.vlan;
    });
    ++generation_;
    changed_tags_ |= tag(EthAddr(e.mac_bits), e.vlan);
  }
  return stale.size();
}

}  // namespace ovs
