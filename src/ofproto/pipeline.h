// The userspace OpenFlow pipeline and its translation ("xlate") step.
//
// Translation is the megaflow generator (§4.2): it runs a packet through the
// flow tables (following resubmits, register writes, NORMAL processing,
// connection tracking), collects the flattened datapath actions, and tracks
// every key bit the decision consulted. The resulting (mask, masked key,
// actions) triple is exactly what userspace installs into the datapath.
//
// Field rewrites are handled the way OVS does: once an action sets a field,
// later reads of that field observe the written value and therefore must
// NOT unwildcard the original packet bits — the translation suppresses
// wildcard contributions on rewritten bits.
//
// Simplifications vs. real OVS (documented substitutions):
//   * `ct` recirculation is folded into translation: the connection state is
//     stamped during xlate and the consulted 5-tuple becomes part of the
//     megaflow, so ct-using pipelines produce per-connection megaflows.
//     Because ct_state feeds classification, megaflows DEPEND on conntrack
//     state: the Switch layer tracks ConnTracker::generation() as a
//     revalidation dirtiness source (ct_reval_dirty) so commits, teardowns
//     and idle expiry repair stale ct_state megaflows on the next pass.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "datapath/dp_actions.h"
#include "ofproto/conntrack.h"
#include "ofproto/flow_table.h"
#include "ofproto/mac_learning.h"
#include "packet/packet.h"

namespace ovs {

struct XlateResult {
  Match megaflow;          // generated cache entry match
  DpActions actions;       // flattened datapath actions
  bool to_controller = false;
  bool error = false;      // resubmit depth exceeded
  uint32_t table_lookups = 0;  // classifier lookups performed (§3.2: ~15
                               // for network-virtualization pipelines)
  uint64_t tags = 0;       // Bloom tags of consulted soft state (§6 ablation)
  // Every OpenFlow rule the packet matched, in order: the attribution list
  // for per-flow statistics (§6). Pointers are valid until the next flow
  // table modification (which bumps Pipeline::generation()).
  std::vector<const OfRule*> matched_rules;
};

class Pipeline {
 public:
  static constexpr size_t kMaxTables = 16;
  static constexpr int kMaxResubmitDepth = 64;

  explicit Pipeline(size_t n_tables = 8, ClassifierConfig cls_cfg = {},
                    ConnTrackerConfig ct_cfg = {});

  FlowTable& table(size_t i) { return *tables_[i]; }
  const FlowTable& table(size_t i) const { return *tables_[i]; }
  size_t n_tables() const noexcept { return tables_.size(); }

  MacLearning& mac_learning() noexcept { return mac_; }
  const MacLearning& mac_learning() const noexcept { return mac_; }
  ConnTracker& conntrack() noexcept { return ct_; }
  const ConnTracker& conntrack() const noexcept { return ct_; }

  void add_port(uint32_t port);
  void remove_port(uint32_t port);
  const std::vector<uint32_t>& ports() const noexcept { return ports_; }

  // Translates a packet through the pipeline starting at table 0.
  // Non-const: NORMAL learns MACs; ct(commit) commits connections. Pass
  // side_effects=false for revalidation re-translations, which must observe
  // but not mutate soft state (§6).
  XlateResult translate(const FlowKey& pkt, uint64_t now_ns,
                        bool side_effects = true);

  // Translates a miss burst as a batch: the table-0 classification for all
  // packets runs through the classifier engine's lookup_batch (one
  // structure-of-arrays probe sweep with prefetching under kBloomGated)
  // before the per-packet action walks run sequentially. Results are
  // element-for-element identical to calling translate() in order: the
  // batched stage only precomputes the first lookup each translation would
  // perform anyway (table-0 state cannot change mid-batch, and rewrites
  // that would change the lookup key only happen after that first lookup),
  // while MAC learning and conntrack side effects stay in packet order.
  std::vector<XlateResult> translate_batch(std::span<const Packet> pkts,
                                           uint64_t now_ns,
                                           bool side_effects = true);

  // Side-effect-free single-packet evaluation: what would this pipeline do
  // with `pkt` right now? Exactly translate(pkt, now_ns, side_effects=false)
  // — classifier, MAC and conntrack lookups only, no learning and no
  // commits — packaged as a const entry point so model-based oracles (the
  // differential fuzz harness's OracleSwitch, src/testing/) can evaluate
  // against a pipeline they hold by const reference.
  XlateResult evaluate(const FlowKey& pkt, uint64_t now_ns) const;

  // Total flows across all tables.
  size_t flow_count() const noexcept;

  // Expires OpenFlow rules past their idle/hard timeouts in every table.
  size_t expire_flows(uint64_t now_ns);

  // Changes whenever translation results may change: flow table mods, MAC
  // learning changes, port changes. Conntrack mutations are deliberately
  // excluded here and tracked via conntrack().generation() instead — the
  // Switch layer combines the two, which is what lets the differential
  // harness ablate ct-driven revalidation independently (ct_reval_dirty).
  uint64_t generation() const noexcept;

  // Changes only on flow-table modifications — the events that can delete
  // OfRule objects. XlateResult::matched_rules pointers are exactly as
  // durable as this counter: attribution held across MAC moves stays valid,
  // which is what lets the two-tier revalidator keep pushing statistics for
  // flows its tag fast path never re-translates.
  uint64_t tables_generation() const noexcept;

  // Changes on add_port / remove_port only.
  uint64_t ports_generation() const noexcept { return port_generation_; }

 private:
  struct XlateCtx;
  // A table-0 classification already performed by translate_batch; consumed
  // by the first xlate_table call of the matching translation.
  struct Prefetched {
    const OfRule* rule;
    const FlowWildcards* consulted;
  };
  XlateResult translate_one(const FlowKey& pkt, uint64_t now_ns,
                            bool side_effects, const Prefetched* pre);
  void xlate_table(XlateCtx& ctx, size_t table_id, int depth,
                   const Prefetched* pre = nullptr);
  void do_normal(XlateCtx& ctx);
  void do_ct(XlateCtx& ctx, const OfCt& ct, int depth);

  std::vector<std::unique_ptr<FlowTable>> tables_;
  MacLearning mac_;
  ConnTracker ct_;
  std::vector<uint32_t> ports_;
  uint64_t port_generation_ = 0;
};

}  // namespace ovs
