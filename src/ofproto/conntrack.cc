#include "ofproto/conntrack.h"

namespace ovs {

ConnTracker::ConnKey ConnTracker::conn_key(const FlowKey& k,
                                           uint16_t zone) noexcept {
  const uint64_t a_addr = k.nw_src().value(), b_addr = k.nw_dst().value();
  const uint32_t a_port = k.tp_src(), b_port = k.tp_dst();
  ConnKey ck;
  ck.proto = k.nw_proto();
  ck.zone = zone;
  if (a_addr < b_addr || (a_addr == b_addr && a_port <= b_port)) {
    ck.lo_addr = a_addr;
    ck.hi_addr = b_addr;
    ck.lo_port = a_port;
    ck.hi_port = b_port;
  } else {
    ck.lo_addr = b_addr;
    ck.hi_addr = a_addr;
    ck.lo_port = b_port;
    ck.hi_port = a_port;
  }
  return ck;
}

bool ConnTracker::is_lo_direction(const FlowKey& k) noexcept {
  const uint64_t a = k.nw_src().value(), b = k.nw_dst().value();
  return a < b || (a == b && k.tp_src() <= k.tp_dst());
}

const ConnTracker::Entry* ConnTracker::find(const FlowKey& key,
                                            uint16_t zone) const noexcept {
  auto it = table_.find(conn_key(key, zone));
  return it == table_.end() ? nullptr : &it->second;
}

uint8_t ConnTracker::lookup(const FlowKey& key,
                            uint16_t zone) const noexcept {
  const Entry* e = find(key, zone);
  if (e == nullptr) return ct_state::kNew;
  uint8_t s = ct_state::kEstablished;
  if (e->symmetric)
    s |= ct_state::kSymmetric;
  else if (is_lo_direction(key) != e->orig_is_lo)
    s |= ct_state::kReply;
  return s;
}

std::optional<ConnTracker::NatRewrite> ConnTracker::nat_lookup(
    const FlowKey& key, uint16_t zone) const noexcept {
  const Entry* e = find(key, zone);
  if (e == nullptr || !e->has_nat) return std::nullopt;
  // Symmetric connections have no reply direction; their binding applies as
  // if every packet were forward.
  const bool fwd = e->symmetric || is_lo_direction(key) == e->orig_is_lo;
  if (e->nat_on_reply ? fwd : !fwd) return std::nullopt;
  return e->nat;
}

ConnTracker::Entry& ConnTracker::insert(const ConnKey& ck, uint64_t now_ns) {
  make_room(ck.zone);
  std::list<ConnKey>& lru = zones_[ck.zone];
  lru.push_back(ck);
  Entry& e = table_[ck];
  e.last_seen_ns = now_ns;
  e.lru = std::prev(lru.end());
  return e;
}

void ConnTracker::make_room(uint16_t zone) {
  if (cfg_.max_per_zone > 0) {
    auto zit = zones_.find(zone);
    while (zit != zones_.end() && zit->second.size() >= cfg_.max_per_zone)
      evict_lru_of_zone(zone, /*zone_cap=*/true);
  }
  while (cfg_.max_entries > 0 && table_.size() >= cfg_.max_entries) {
    uint16_t victim_zone = zone;
    if (cfg_.fair_eviction) {
      // Evict from the largest zone: a churning attacker zone pays for its
      // own churn instead of flushing quiet zones' state.
      size_t largest = 0;
      for (const auto& [z, lru] : zones_) {
        if (lru.size() > largest) {
          largest = lru.size();
          victim_zone = z;
        }
      }
    } else {
      // Globally least-recent entry across all zone fronts (the unfair
      // policy the bench ablates).
      uint64_t oldest = UINT64_MAX;
      for (const auto& [z, lru] : zones_) {
        if (lru.empty()) continue;
        const uint64_t t = table_.at(lru.front()).last_seen_ns;
        if (t < oldest) {
          oldest = t;
          victim_zone = z;
        }
      }
    }
    evict_lru_of_zone(victim_zone, /*zone_cap=*/false);
  }
}

void ConnTracker::evict_lru_of_zone(uint16_t zone, bool zone_cap) {
  auto zit = zones_.find(zone);
  if (zit == zones_.end() || zit->second.empty()) return;
  const size_t n = remove_conn(zit->second.front());
  if (zone_cap)
    stats_.evicted_zone_cap += n;
  else
    stats_.evicted_global_cap += n;
}

size_t ConnTracker::remove_conn(const ConnKey& ck) {
  auto it = table_.find(ck);
  if (it == table_.end()) return 0;
  const bool has_pair = it->second.has_pair;
  const ConnKey pair = it->second.pair;
  zones_[ck.zone].erase(it->second.lru);
  table_.erase(it);
  size_t n = 1;
  if (has_pair) {
    auto pit = table_.find(pair);
    if (pit != table_.end()) {
      zones_[pair.zone].erase(pit->second.lru);
      table_.erase(pit);
      ++n;
    }
  }
  return n;
}

bool ConnTracker::commit(const FlowKey& key, uint16_t zone,
                         uint64_t now_ns) {
  const ConnKey ck = conn_key(key, zone);
  auto it = table_.find(ck);
  if (it != table_.end()) {
    // Idempotent refresh: timestamp and LRU position only; the table's
    // answer to every lookup is unchanged, so generation stays put.
    Entry& e = it->second;
    e.last_seen_ns = now_ns;
    std::list<ConnKey>& lru = zones_[ck.zone];
    lru.splice(lru.end(), lru, e.lru);
    if (e.has_pair) {
      auto pit = table_.find(e.pair);
      if (pit != table_.end()) {
        pit->second.last_seen_ns = now_ns;
        std::list<ConnKey>& plru = zones_[e.pair.zone];
        plru.splice(plru.end(), plru, pit->second.lru);
      }
    }
    ++stats_.refreshed;
    return false;
  }
  Entry& e = insert(ck, now_ns);
  e.orig_is_lo = is_lo_direction(key);
  e.symmetric = ck.lo_addr == ck.hi_addr && ck.lo_port == ck.hi_port;
  ++stats_.committed;
  ++generation_;
  return true;
}

bool ConnTracker::commit_nat(const FlowKey& key, const CtNatSpec& nat,
                             uint16_t zone, uint64_t now_ns) {
  const ConnKey ck = conn_key(key, zone);
  if (table_.find(ck) != table_.end()) {
    // Existing connection: refresh only. Bindings are immutable once
    // committed (rebinding mid-connection would break replies in flight).
    return commit(key, zone, now_ns);
  }
  // The post-NAT tuple, as the rewritten forward packet would carry it.
  FlowKey rewritten = key;
  if (nat.src) {
    rewritten.set_nw_src(Ipv4(nat.addr));
    rewritten.set_tp_src(nat.port);
  } else {
    rewritten.set_nw_dst(Ipv4(nat.addr));
    rewritten.set_tp_dst(nat.port);
  }
  const ConnKey rk = conn_key(rewritten, zone);
  if (rk == ck) {
    // No-op rewrite: a plain commit tracks it fine.
    return commit(key, zone, now_ns);
  }

  const bool fresh = commit(key, zone, now_ns);
  if (!fresh) return false;
  Entry& prim = table_.at(ck);
  prim.has_nat = true;
  prim.nat_on_reply = false;
  prim.nat = NatRewrite{nat.src, nat.addr, nat.port};
  ++stats_.nat_bindings;

  if (table_.find(rk) != table_.end()) {
    // Post-NAT tuple collides with an existing connection: first one wins;
    // the forward rewrite stands but replies will not un-NAT. Deterministic
    // on both the switch and the oracle, which is what the harness needs.
    return true;
  }
  // Reverse entry: keyed on the post-NAT tuple, carrying the inverse
  // rewrite for reply-direction packets.
  Entry& rev = insert(rk, now_ns);
  rev.orig_is_lo = is_lo_direction(rewritten);
  rev.symmetric = rk.lo_addr == rk.hi_addr && rk.lo_port == rk.hi_port;
  rev.has_nat = true;
  rev.nat_on_reply = true;
  rev.nat = nat.src
                ? NatRewrite{/*to_src=*/false, key.nw_src().value(),
                             key.tp_src()}
                : NatRewrite{/*to_src=*/true, key.nw_dst().value(),
                             key.tp_dst()};
  rev.has_pair = true;
  rev.pair = ck;
  // insert() may have evicted the primary to make room (tiny caps); only
  // link the pair when it survived.
  auto pit = table_.find(ck);
  if (pit != table_.end()) {
    pit->second.has_pair = true;
    pit->second.pair = rk;
  }
  return true;
}

bool ConnTracker::remove(const FlowKey& key, uint16_t zone) {
  const size_t n = remove_conn(conn_key(key, zone));
  if (n == 0) return false;
  stats_.removed += n;
  ++generation_;
  return true;
}

size_t ConnTracker::expire_idle(uint64_t now_ns) {
  if (cfg_.idle_timeout_ns == 0) return 0;
  size_t n = 0;
  for (auto& [zone, lru] : zones_) {
    while (!lru.empty()) {
      const Entry& e = table_.at(lru.front());
      if (e.last_seen_ns + cfg_.idle_timeout_ns > now_ns) break;
      n += remove_conn(lru.front());
    }
  }
  if (n > 0) {
    stats_.expired_idle += n;
    ++generation_;
  }
  return n;
}

bool ConnTracker::has_expirable(uint64_t now_ns) const noexcept {
  if (cfg_.idle_timeout_ns == 0) return false;
  for (const auto& [zone, lru] : zones_) {
    if (lru.empty()) continue;
    const Entry& e = table_.at(lru.front());
    if (e.last_seen_ns + cfg_.idle_timeout_ns <= now_ns) return true;
  }
  return false;
}

void ConnTracker::flush() {
  if (table_.empty()) return;
  table_.clear();
  zones_.clear();
  ++generation_;
}

size_t ConnTracker::zone_size(uint16_t zone) const noexcept {
  auto it = zones_.find(zone);
  return it == zones_.end() ? 0 : it->second.size();
}

}  // namespace ovs
