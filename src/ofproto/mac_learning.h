// MAC learning table with aging, driving the NORMAL (learning switch)
// action and the precise-invalidation path of §6 ("when the Open vSwitch
// implementation of MAC learning detects that a MAC address has moved from
// one port to another, the datapath flows that used that MAC are the ones
// that need an update").
#pragma once

#include <cstdint>
#include <optional>

#include "packet/addr.h"
#include "util/flat_hash.h"
#include "util/hash.h"

namespace ovs {

class MacLearning {
 public:
  struct Config {
    uint64_t idle_ns = 300ull * 1000 * 1000 * 1000;  // 300 s, the OVS default
    size_t max_entries = 8192;
  };

  MacLearning() = default;
  explicit MacLearning(Config cfg) : cfg_(cfg) {}

  // Learns (mac, vlan) -> port. Returns true if this created a new binding
  // or *moved* an existing one — the events that invalidate datapath flows.
  bool learn(EthAddr mac, uint16_t vlan, uint32_t port, uint64_t now_ns);

  // Port the MAC was last seen on, or nullopt (unknown / expired -> flood).
  std::optional<uint32_t> lookup(EthAddr mac, uint16_t vlan,
                                 uint64_t now_ns) const;

  // Removes entries idle longer than the configured timeout. Returns the
  // number removed (each removal is also a generation bump).
  size_t expire(uint64_t now_ns);

  // Bumped on every new binding, move, or expiry; revalidators compare this
  // to decide whether flows may be stale.
  uint64_t generation() const noexcept { return generation_; }

  size_t size() const noexcept { return table_.size(); }

  // A per-binding tag for the Bloom-filter invalidation ablation (§6):
  // flows record the tags of the bindings they depended on.
  static uint64_t tag(EthAddr mac, uint16_t vlan) noexcept {
    const uint64_t h = hash_add64(hash_mix64(mac.bits()), vlan);
    return uint64_t{1} << (h & 63);
  }

  // Tags invalidated since the last call (for tag-based revalidation).
  uint64_t take_changed_tags() noexcept {
    const uint64_t t = changed_tags_;
    changed_tags_ = 0;
    return t;
  }

 private:
  struct Entry {
    uint64_t mac_bits = 0;
    uint16_t vlan = 0;
    uint32_t port = 0;
    uint64_t used_ns = 0;
  };
  static uint64_t key_hash(uint64_t mac_bits, uint16_t vlan) noexcept {
    return hash_add64(hash_mix64(mac_bits), vlan);
  }

  Config cfg_;
  HashBuckets<Entry> table_;
  uint64_t generation_ = 0;
  uint64_t changed_tags_ = 0;
};

}  // namespace ovs
