// OpenFlow-level actions (paper §3.3). These are what controllers program;
// translation (pipeline.h) flattens them into datapath actions (§4.2).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "packet/flow_key.h"

namespace ovs {

struct OfOutput {
  uint32_t port = 0;
  bool operator==(const OfOutput&) const = default;
};

// Stop processing; forward nowhere.
struct OfDrop {
  bool operator==(const OfDrop&) const = default;
};

// Consult another table (or the same one), then continue with the remaining
// actions — the Open vSwitch resubmit extension that solved the
// cross-product problem (§3.3).
struct OfResubmit {
  uint8_t table = 0;
  bool operator==(const OfResubmit&) const = default;
};

// Write a field (including the reg0..reg3 scratch "registers" of §3.3).
struct OfSetField {
  FieldId field = FieldId::kReg0;
  uint64_t value = 0;
  bool operator==(const OfSetField&) const = default;
};

// Encapsulate toward a remote hypervisor over a tunnel port.
struct OfTunnel {
  uint32_t port = 0;
  uint64_t tun_id = 0;
  bool operator==(const OfTunnel&) const = default;
};

// Send to the (local or remote) controller (§8.1).
struct OfController {
  uint32_t reason = 0;
  bool operator==(const OfController&) const = default;
};

// Traditional L2 learning-switch processing: learn the source MAC, forward
// to the learned destination port or flood.
struct OfNormal {
  bool operator==(const OfNormal&) const = default;
};

// Connection tracking (§8.1): stamps ct_state into the key and resubmits to
// `next_table`; with commit=true the connection is committed first. `zone`
// selects an independent connection table. NAT: kApply only applies an
// existing binding to the packet (lookup-pure — safe for generated fuzz
// rules); kSrc/kDst additionally request a SNAT/DNAT binding at commit time.
struct OfCt {
  enum class Nat : uint8_t { kNone, kApply, kSrc, kDst };

  uint8_t next_table = 0;
  bool commit = false;
  uint16_t zone = 0;
  Nat nat = Nat::kNone;
  uint32_t nat_addr = 0;
  uint16_t nat_port = 0;
  bool operator==(const OfCt&) const = default;
};

using OfAction = std::variant<OfOutput, OfDrop, OfResubmit, OfSetField,
                              OfTunnel, OfController, OfNormal, OfCt>;

struct OfActions {
  std::vector<OfAction> list;

  OfActions() = default;

  static OfActions drop() {
    OfActions a;
    a.list.push_back(OfDrop{});
    return a;
  }

  OfActions& output(uint32_t port) {
    list.push_back(OfOutput{port});
    return *this;
  }
  OfActions& resubmit(uint8_t table) {
    list.push_back(OfResubmit{table});
    return *this;
  }
  OfActions& set_field(FieldId f, uint64_t v) {
    list.push_back(OfSetField{f, v});
    return *this;
  }
  OfActions& set_reg(unsigned i, uint32_t v) {
    return set_field(
        static_cast<FieldId>(static_cast<unsigned>(FieldId::kReg0) + i), v);
  }
  // 802.1Q tagging sugar (bit 12 = tag-present, as in the OVS TCI encoding).
  OfActions& push_vlan(uint16_t vid) {
    return set_field(FieldId::kVlanTci, 0x1000u | (vid & 0x0fff));
  }
  OfActions& pop_vlan() { return set_field(FieldId::kVlanTci, 0); }
  OfActions& tunnel(uint32_t port, uint64_t tun_id) {
    list.push_back(OfTunnel{port, tun_id});
    return *this;
  }
  OfActions& controller(uint32_t reason = 0) {
    list.push_back(OfController{reason});
    return *this;
  }
  OfActions& normal() {
    list.push_back(OfNormal{});
    return *this;
  }
  OfActions& ct(uint8_t next_table, bool commit = false, uint16_t zone = 0) {
    OfCt c;
    c.next_table = next_table;
    c.commit = commit;
    c.zone = zone;
    list.push_back(c);
    return *this;
  }
  // ct with NAT: kApply to rewrite per existing bindings, kSrc/kDst (with
  // commit) to create a binding toward (addr, port).
  OfActions& ct_nat(uint8_t next_table, bool commit, OfCt::Nat nat,
                    uint32_t addr = 0, uint16_t port = 0, uint16_t zone = 0) {
    OfCt c;
    c.next_table = next_table;
    c.commit = commit;
    c.zone = zone;
    c.nat = nat;
    c.nat_addr = addr;
    c.nat_port = port;
    list.push_back(c);
    return *this;
  }

  bool operator==(const OfActions&) const = default;

  std::string to_string() const;
};

}  // namespace ovs
