#include "workload/workloads.h"

namespace ovs {

namespace {
constexpr uint16_t kSyn = 0x002;
constexpr uint16_t kAck = 0x010;
constexpr uint16_t kPshAck = 0x018;
constexpr uint16_t kFinAck = 0x011;
}  // namespace

TcpCrrWorkload::TcpCrrWorkload(const Config& cfg)
    : cfg_(cfg), rng_(cfg.seed), session_next_port_(cfg.sessions) {
  // Give each session its own ephemeral port range start so sessions do not
  // collide (ports wrap within the dynamic range).
  for (size_t i = 0; i < cfg_.sessions; ++i)
    session_next_port_[i] =
        static_cast<uint16_t>(32768 + (i * 101) % 28000);
}

Packet TcpCrrWorkload::base_packet(bool client_to_server, uint16_t eph_port,
                                   uint16_t flags, uint32_t payload) const {
  Packet p;
  FlowKey& k = p.key;
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  k.set_tcp_flags(flags);
  if (client_to_server) {
    k.set_in_port(cfg_.client_port);
    k.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, 1));
    k.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 2));
    k.set_nw_src(cfg_.client_ip);
    k.set_nw_dst(cfg_.server_ip);
    k.set_tp_src(eph_port);
    k.set_tp_dst(cfg_.server_tcp_port);
  } else {
    k.set_in_port(cfg_.server_port);
    k.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, 2));
    k.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 1));
    k.set_nw_src(cfg_.server_ip);
    k.set_nw_dst(cfg_.client_ip);
    k.set_tp_src(cfg_.server_tcp_port);
    k.set_tp_dst(eph_port);
  }
  p.size_bytes = 66 + payload;
  return p;
}

std::vector<Packet> TcpCrrWorkload::next_transaction() {
  const size_t session = next_session_;
  next_session_ = (next_session_ + 1) % cfg_.sessions;
  uint16_t& port = session_next_port_[session];
  port = static_cast<uint16_t>(port + 1);
  if (port < 32768) port = 32768;
  ++transactions_;

  // connect / 1-byte request / 1-byte response / disconnect.
  return {
      base_packet(true, port, kSyn, 0),      // SYN
      base_packet(false, port, kSyn | kAck, 0),
      base_packet(true, port, kAck, 0),
      base_packet(true, port, kPshAck, 1),   // request
      base_packet(false, port, kPshAck, 1),  // response
      base_packet(true, port, kFinAck, 0),
      base_packet(false, port, kFinAck, 0),
      base_packet(true, port, kAck, 0),
  };
}

Packet PortScanWorkload::next() {
  Packet p;
  FlowKey& k = p.key;
  k.set_in_port(cfg_.in_port);
  k.set_eth_src(EthAddr(0x02, 0, 0, 0, 0, 0x66));
  k.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 2));
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(ipproto::kTcp);
  k.set_nw_src(cfg_.src_ip);
  k.set_nw_dst(cfg_.dst_ip);
  k.set_tp_src(44444);
  k.set_tp_dst(next_port_++);
  k.set_tcp_flags(0x002);
  p.size_bytes = 66;
  return p;
}

LongLivedFlowsWorkload::LongLivedFlowsWorkload(const Config& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      skew_(cfg.n_flows, cfg.zipf_s),
      flows_(cfg.n_flows) {
  for (size_t i = 0; i < cfg_.n_flows; ++i) {
    Packet& p = flows_[i];
    FlowKey& k = p.key;
    k.set_in_port(cfg_.in_port);
    k.set_eth_src(EthAddr(0x02, 0, 0, 1, 0, static_cast<uint8_t>(i)));
    k.set_eth_dst(EthAddr(0x02, 0, 0, 0, 0, 2));
    k.set_eth_type(ethertype::kIpv4);
    k.set_nw_proto(ipproto::kUdp);
    k.set_nw_src(Ipv4(static_cast<uint32_t>(0x0a010000 + i)));
    k.set_nw_dst(Ipv4(9, 1, 1, 2));
    k.set_tp_src(static_cast<uint16_t>(20000 + (i % 40000)));
    k.set_tp_dst(5001);
    p.size_bytes = 1500;
  }
}

Packet LongLivedFlowsWorkload::next() { return flows_[skew_.sample(rng_)]; }

}  // namespace ovs
