#include "workload/explosion.h"

#include <cassert>

#include "ofproto/actions.h"
#include "vswitchd/switch.h"

namespace ovs {

std::vector<FlowMask> make_explosion_masks(size_t n, size_t prefix_sum) {
  std::vector<FlowMask> out;
  out.reserve(n);
  // Deterministic enumeration of quadruples (a, b, c, d) with a + b + c +
  // d == prefix_sum. Any two distinct quadruples of equal sum differ with
  // one component larger and another smaller — neither mask subsumes the
  // other, so each gets its own subtable and chains stay at length 1.
  for (unsigned a = 0; a <= 32 && out.size() < n; ++a) {
    for (unsigned b = 0; b <= 32 && out.size() < n; ++b) {
      for (unsigned c = 0; c <= 16 && out.size() < n; ++c) {
        if (a + b + c > prefix_sum) break;
        const size_t d = prefix_sum - a - b - c;
        if (d > 16) continue;
        FlowMask m;
        m.set_exact(FieldId::kMetadata);
        m.set_exact(FieldId::kEthType);
        m.set_exact(FieldId::kNwProto);
        m.set_prefix(FieldId::kNwSrc, a);
        m.set_prefix(FieldId::kNwDst, b);
        m.set_prefix(FieldId::kTpSrc, c);
        m.set_prefix(FieldId::kTpDst, static_cast<unsigned>(d));
        out.push_back(m);
        if (out.size() == n) return out;
      }
    }
  }
  assert(out.size() == n && "prefix_sum admits fewer quadruples than n");
  return out;
}

std::vector<Match> make_explosion_rules(const ExplosionConfig& cfg) {
  const std::vector<FlowMask> masks =
      make_explosion_masks(cfg.n_rules, cfg.prefix_sum);
  Rng rng(cfg.seed);
  std::vector<Match> out;
  out.reserve(masks.size());
  for (const FlowMask& mask : masks) {
    Match m;
    m.mask = mask;
    m.key.set_metadata(cfg.tenant);
    m.key.set_eth_type(ethertype::kIpv4);
    m.key.set_nw_proto(ipproto::kTcp);
    m.key.set(FieldId::kNwSrc, rng.next() & 0xffffffffu);
    m.key.set(FieldId::kNwDst, rng.next() & 0xffffffffu);
    m.key.set(FieldId::kTpSrc, rng.next() & 0xffffu);
    m.key.set(FieldId::kTpDst, rng.next() & 0xffffu);
    m.normalize();
    out.push_back(m);
  }
  return out;
}

ExplosionInstall install_explosion_rules(Switch& sw, size_t table,
                                         const ExplosionConfig& cfg) {
  ExplosionInstall r;
  for (const Match& m : make_explosion_rules(cfg)) {
    const std::string err =
        sw.add_flow(table, m, cfg.priority, OfActions::drop());
    if (err.empty())
      ++r.installed;
    else
      ++r.rejected;
  }
  return r;
}

Packet explosion_stamp(const Match& rule, Packet base, Rng& rng) {
  // The rule's masked bits aim the packet at it; every unmasked bit of the
  // four attack fields is noise, so consecutive packets share neither a
  // microflow nor (megaflows inheriting the fine mask) a megaflow.
  const struct {
    FieldId f;
    uint64_t width_mask;
  } kAttackFields[] = {{FieldId::kNwSrc, 0xffffffffu},
                       {FieldId::kNwDst, 0xffffffffu},
                       {FieldId::kTpSrc, 0xffffu},
                       {FieldId::kTpDst, 0xffffu}};
  for (const auto& af : kAttackFields) {
    const uint64_t mb = rule.mask.get(af.f);
    const uint64_t v =
        (rule.key.get(af.f) & mb) | (rng.next() & af.width_mask & ~mb);
    base.key.set(af.f, v);
  }
  return base;
}

ExplosionWorkload::ExplosionWorkload(const ExplosionConfig& cfg)
    : cfg_(cfg), rules_(make_explosion_rules(cfg)), rng_(cfg.seed ^ 0xa77ac) {}

Packet ExplosionWorkload::next() {
  Packet p;
  p.key.set_in_port(cfg_.in_port);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(ipproto::kTcp);
  ++packets_;
  return explosion_stamp(rules_[rng_.uniform(rules_.size())], p, rng_);
}

}  // namespace ovs
