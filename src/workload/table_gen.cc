#include "workload/table_gen.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace ovs {

void install_paper_microbench_table(Switch& sw, uint32_t out_port) {
  FlowTable& t = sw.table(0);
  t.add_flow(MatchBuilder().arp(), 40, OfActions().output(out_port));
  t.add_flow(MatchBuilder().ip().nw_dst_prefix(Ipv4(11, 1, 1, 1), 16), 30,
             OfActions().output(out_port));
  t.add_flow(
      MatchBuilder().tcp().nw_dst(Ipv4(9, 1, 1, 1)).tp_src(10).tp_dst(10), 20,
      OfActions().output(out_port));
  t.add_flow(MatchBuilder().ip().nw_dst_prefix(Ipv4(9, 1, 1, 1), 24), 10,
             OfActions().output(out_port));
}

NvpTopology install_nvp_pipeline(Switch& sw, const NvpConfig& cfg) {
  assert(sw.pipeline().n_tables() >= 4);
  NvpTopology topo;
  Rng rng(cfg.seed);
  topo.n_acl_tenants =
      static_cast<size_t>(static_cast<double>(cfg.n_tenants) *
                          cfg.acl_tenant_fraction);

  sw.add_port(cfg.tunnel_port);

  uint32_t next_port = cfg.first_vm_port;
  for (uint64_t tenant = 1; tenant <= cfg.n_tenants; ++tenant) {
    for (size_t v = 0; v < cfg.vms_per_tenant; ++v) {
      NvpVm vm;
      vm.port = next_port++;
      vm.tenant = tenant;
      vm.mac = EthAddr(0x02, 0, 0, static_cast<uint8_t>(tenant),
                       static_cast<uint8_t>(v >> 8),
                       static_cast<uint8_t>(v & 0xff));
      vm.ip = Ipv4(10, static_cast<uint8_t>(tenant),
                   static_cast<uint8_t>(v >> 8),
                   static_cast<uint8_t>(v & 0xff));
      topo.vms.push_back(vm);
      sw.add_port(vm.port);
    }
  }

  FlowTable& ingress = sw.table(0);
  FlowTable& l2 = sw.table(1);
  FlowTable& acl = sw.table(2);
  FlowTable& egress = sw.table(3);

  // Table 0: ingress classification. Local VM ports and tunnel traffic are
  // mapped onto the logical datapath id, stored in the metadata field so
  // classifier partitioning (§5.5) can prune later tables.
  for (const NvpVm& vm : topo.vms) {
    ingress.add_flow(
        MatchBuilder().in_port(vm.port), 10,
        OfActions().set_field(FieldId::kMetadata, vm.tenant).resubmit(1));
  }
  for (uint64_t tenant = 1; tenant <= cfg.n_tenants; ++tenant) {
    ingress.add_flow(
        MatchBuilder().in_port(cfg.tunnel_port).tun_id(tenant), 10,
        OfActions().set_field(FieldId::kMetadata, tenant).resubmit(1));
  }

  // Table 1: per-tenant L2 forwarding. The destination "logical port" is
  // written into reg1 (a §3.3 register) and resolved in the egress table.
  for (const NvpVm& vm : topo.vms) {
    l2.add_flow(MatchBuilder().metadata(vm.tenant).eth_dst(vm.mac), 10,
                OfActions().set_reg(1, vm.port).resubmit(2));
  }

  // Table 2: ACL stage. ACL tenants drop a few TCP destination ports; all
  // other traffic proceeds. Non-ACL tenants skip straight through — their
  // megaflows must not match on L4 (the §5.3 staged-lookup win).
  for (uint64_t tenant = 1; tenant <= cfg.n_tenants; ++tenant) {
    const bool has_acl = (tenant - 1) < topo.n_acl_tenants;
    if (has_acl) {
      for (size_t a = 0; a < cfg.acls_per_tenant; ++a) {
        const uint16_t blocked =
            static_cast<uint16_t>(rng.range(1, 1023));
        topo.blocked_ports.push_back(blocked);
        acl.add_flow(
            MatchBuilder().metadata(tenant).tcp().tp_dst(blocked), 20,
            OfActions::drop());
      }
    }
    if (has_acl && cfg.stateful_acl_tenants) {
      // Stateful tenants: traffic passes through conntrack (commit) before
      // egress, yielding per-connection megaflows.
      acl.add_flow(MatchBuilder().metadata(tenant).ip(), 1,
                   OfActions().ct(3, /*commit=*/true));
      acl.add_flow(MatchBuilder().metadata(tenant), 0,
                   OfActions().resubmit(3));
    } else {
      acl.add_flow(MatchBuilder().metadata(tenant), 1,
                   OfActions().resubmit(3));
    }
  }

  // Table 3: egress. reg1 identifies the destination port.
  for (const NvpVm& vm : topo.vms) {
    egress.add_flow(MatchBuilder().reg(1, vm.port), 10,
                    OfActions().output(vm.port));
  }

  return topo;
}

Packet nvp_packet(const NvpVm& src, const NvpVm& dst, uint16_t sport,
                  uint16_t dport, uint8_t proto) {
  Packet p;
  FlowKey& k = p.key;
  k.set_in_port(src.port);
  k.set_eth_src(src.mac);
  k.set_eth_dst(dst.mac);
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(proto);
  k.set_nw_src(src.ip);
  k.set_nw_dst(dst.ip);
  k.set_tp_src(sport);
  k.set_tp_dst(dport);
  p.size_bytes = 500;
  return p;
}

namespace {

// Mask shapes seen in real OpenFlow tables. Every shape includes at least
// one high-entropy field so large rule counts fit without key collisions.
FlowMask random_mask(Rng& rng) {
  FlowMask m;
  m.set_exact(FieldId::kEthType);
  if (rng.chance(0.5)) m.set_exact(FieldId::kNwProto);
  if (rng.chance(0.6))
    m.set_prefix(FieldId::kNwDst, static_cast<unsigned>(rng.range(8, 32)));
  if (rng.chance(0.4))
    m.set_prefix(FieldId::kNwSrc, static_cast<unsigned>(rng.range(8, 32)));
  if (rng.chance(0.3)) m.set_exact(FieldId::kTpDst);
  if (rng.chance(0.2)) m.set_exact(FieldId::kTpSrc);
  if (rng.chance(0.2)) m.set_exact(FieldId::kEthDst);
  if (rng.chance(0.15)) m.set_exact(FieldId::kInPort);
  if (!m.has_field(FieldId::kNwDst) && !m.has_field(FieldId::kNwSrc) &&
      !m.has_field(FieldId::kEthDst))
    m.set_exact(FieldId::kNwSrc);
  return m;
}

}  // namespace

std::vector<std::unique_ptr<OwnedRule>> build_random_classifier(
    Classifier& cls, size_t n_flows, size_t n_tuples, Rng& rng) {
  // Draw distinct mask shapes first.
  std::vector<FlowMask> masks;
  while (masks.size() < n_tuples) {
    FlowMask m = random_mask(rng);
    bool dup = false;
    for (const FlowMask& e : masks) dup = dup || e == m;
    if (!dup) masks.push_back(m);
  }

  std::vector<std::unique_ptr<OwnedRule>> rules;
  rules.reserve(n_flows);
  size_t attempts = 0;
  while (rules.size() < n_flows && attempts < n_flows * 4) {
    ++attempts;
    Match match;
    match.mask = masks[attempts % masks.size()];
    FlowKey key = random_classifier_packet(rng);
    match.key = key;
    match.normalize();
    const int prio = static_cast<int>(rng.range(1, 64));
    if (cls.find_exact(match, prio) != nullptr) continue;  // duplicate
    auto r = std::make_unique<OwnedRule>(match, prio);
    cls.insert(r.get());
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<FlowMask> make_scale_masks(size_t n_masks, Rng& rng) {
  const std::array<FieldId, 6> optional_exact = {
      FieldId::kNwProto, FieldId::kTpDst,   FieldId::kTpSrc,
      FieldId::kEthDst,  FieldId::kInPort,  FieldId::kMetadata};
  std::vector<FlowMask> masks;
  while (masks.size() < n_masks) {
    // One nested-prefix family: a base combination of exact fields plus an
    // ascending run of prefix lengths on a single address field.
    FlowMask base;
    base.set_exact(FieldId::kEthType);
    for (FieldId f : optional_exact)
      if (rng.chance(0.35)) base.set_exact(f);
    const FieldId pf =
        rng.chance(0.5) ? FieldId::kNwDst : FieldId::kNwSrc;

    std::array<unsigned, 29> plens;  // 4..32
    for (size_t i = 0; i < plens.size(); ++i)
      plens[i] = static_cast<unsigned>(4 + i);
    for (size_t i = plens.size(); i > 1; --i)
      std::swap(plens[i - 1], plens[rng.uniform(i)]);
    const size_t fam_len = static_cast<size_t>(rng.range(8, 16));
    std::sort(plens.begin(), plens.begin() + static_cast<long>(fam_len));

    for (size_t i = 0; i < fam_len && masks.size() < n_masks; ++i) {
      FlowMask m = base;
      m.set_prefix(pf, plens[i]);
      bool dup = false;
      for (const FlowMask& e : masks) dup = dup || e == m;
      if (!dup) masks.push_back(m);
    }
  }
  return masks;
}

std::vector<std::unique_ptr<OwnedRule>> build_scale_classifier(
    Classifier& cls, size_t n_rules, size_t n_masks, Rng& rng) {
  const std::vector<FlowMask> masks = make_scale_masks(n_masks, rng);

  // Unique priorities in shuffled order: winner identity is unambiguous, so
  // two engines over the same table must agree exactly, not just modulo
  // tie-breaks.
  std::vector<int32_t> prios(n_rules);
  for (size_t i = 0; i < n_rules; ++i) prios[i] = static_cast<int32_t>(i + 1);
  for (size_t i = n_rules; i > 1; --i)
    std::swap(prios[i - 1], prios[rng.uniform(i)]);

  std::vector<std::unique_ptr<OwnedRule>> rules;
  rules.reserve(n_rules);
  size_t attempts = 0;
  while (rules.size() < n_rules && attempts < n_rules * 4) {
    Match match;
    match.mask = masks[attempts % masks.size()];
    match.key = random_classifier_packet(rng);
    match.normalize();
    ++attempts;
    const int32_t prio = prios[rules.size()];
    if (cls.find_exact(match, prio) != nullptr) continue;  // duplicate
    auto r = std::make_unique<OwnedRule>(match, prio);
    cls.insert(r.get());
    rules.push_back(std::move(r));
  }
  return rules;
}

FlowKey zipf_scale_packet(const std::vector<std::unique_ptr<OwnedRule>>& rules,
                          Rng& rng, double miss_fraction) {
  if (rules.empty() || rng.chance(miss_fraction))
    return random_classifier_packet(rng);
  // Log-uniform rank selection approximates a Zipf popularity curve: the
  // rule at index 0 dominates, the tail is long.
  const double u =
      static_cast<double>(rng.next() >> 11) * 0x1.0p-53;  // [0, 1)
  size_t idx = static_cast<size_t>(
      std::pow(static_cast<double>(rules.size()), u)) - 1;
  if (idx >= rules.size()) idx = rules.size() - 1;
  const Match& m = rules[idx]->match();
  FlowKey k = m.key;
  for (size_t w = 0; w < kFlowWords; ++w)
    k.w[w] |= rng.next() & ~m.mask.w[w];
  return k;
}

FlowKey random_classifier_packet(Rng& rng) {
  FlowKey k;
  k.set_in_port(static_cast<uint32_t>(rng.range(1, 16)));
  k.set_eth_src(EthAddr(0x0200000000ULL | rng.uniform(1 << 16)));
  k.set_eth_dst(EthAddr(0x0200000000ULL | rng.uniform(1 << 16)));
  k.set_eth_type(ethertype::kIpv4);
  k.set_nw_proto(rng.chance(0.7) ? ipproto::kTcp : ipproto::kUdp);
  k.set_nw_src(Ipv4(static_cast<uint32_t>(rng.next())));
  k.set_nw_dst(Ipv4(static_cast<uint32_t>(rng.next())));
  k.set_tp_src(static_cast<uint16_t>(rng.range(1024, 65535)));
  k.set_tp_dst(static_cast<uint16_t>(rng.range(1, 1024)));
  return k;
}

}  // namespace ovs
