// Tuple-space explosion attack generator (DESIGN.md §14).
//
// The Csikor et al. attack against tuple-space-search classifiers: a tenant
// with ordinary rule-install rights mints rules whose masks are pairwise
// incomparable, so every rule forces its own subtable and no mask-ordering
// defense (subsumption chains, tries) can merge them. The construction here
// uses prefix-length quadruples (nw_src/a, nw_dst/b, tp_src/c, tp_dst/d)
// with a CONSTANT SUM a+b+c+d: two distinct quadruples of equal sum must
// have one component larger and another smaller, hence neither mask
// subsumes the other. With a ≤ 32, b ≤ 32, c ≤ 16, d ≤ 16 a single sum
// value yields thousands of masks — enough to saturate any realistic rule
// budget with chains of length 1.
//
// The paired packet stream aims traffic at the attacker's own rules with
// noise in every unmasked bit: each packet is a fresh megaflow miss whose
// installed megaflow INHERITS the fine attacker mask, so the kernel
// datapath's mask list — probed linearly per packet — explodes alongside
// the userspace table. Victim traffic then pays the probe bill
// (bench_tuple_explosion measures the curve; the admission cap,
// tenant partitioning, and the mask-explosion detector are the defenses).
#pragma once

#include <cstdint>
#include <vector>

#include "packet/match.h"
#include "packet/packet.h"
#include "util/rng.h"

namespace ovs {

class Switch;

struct ExplosionConfig {
  uint64_t tenant = 1;      // metadata value the attacker's rules carry
  size_t n_rules = 1024;    // attacker rule budget
  // Constant prefix-length sum of the quadruples. 48 sits mid-range of the
  // feasible [0, 96] so the sum admits the most quadruples.
  size_t prefix_sum = 48;
  uint32_t in_port = 1;     // ingress port of the attacker's packets
  int32_t priority = 10;
  uint64_t seed = 42;
};

// `n` pairwise-incomparable masks: exact metadata/eth_type/nw_proto plus a
// constant-sum prefix quadruple. Deterministic enumeration; asserts n is
// feasible for the sum (ExplosionConfig's default admits > 10k).
std::vector<FlowMask> make_explosion_masks(size_t n, size_t prefix_sum = 48);

// The attacker's rule set: one Match per explosion mask, keys drawn from
// the seeded rng (masked bits populated, the rest zero). All rules carry
// exact metadata = tenant, so they are tenant-attributed for admission
// control and land in the tenant's engine under partitioning.
std::vector<Match> make_explosion_rules(const ExplosionConfig& cfg);

// Installs make_explosion_rules into `table` via Switch::add_flow — i.e.
// THROUGH admission control, which is the point: the count actually
// installed is the attack surface the defenses left standing. Actions are
// drop (an attacker needs no forwarding). Returns {installed, rejected}.
struct ExplosionInstall {
  size_t installed = 0;
  size_t rejected = 0;
};
ExplosionInstall install_explosion_rules(Switch& sw, size_t table,
                                         const ExplosionConfig& cfg);

// Applies `rule`'s targeting to `base`: the masked bits of the four attack
// fields (nw_src/nw_dst/tp_src/tp_dst) are copied from the rule's key, the
// unmasked bits randomized from `rng`. The fleet sim stamps NVP-addressed
// packets so the attack traffic traverses the logical pipeline to the
// table holding the attacker's rules.
Packet explosion_stamp(const Match& rule, Packet base, Rng& rng);

// The attacker's packet stream: each packet targets a (seeded-)random rule
// of the set, with every bit outside that rule's mask randomized. Every
// packet is thus a distinct microflow AND (megaflows inheriting the fine
// mask) typically a distinct megaflow — maximal cache churn per pps.
class ExplosionWorkload {
 public:
  explicit ExplosionWorkload(const ExplosionConfig& cfg);

  Packet next();

  uint64_t packets() const noexcept { return packets_; }

 private:
  ExplosionConfig cfg_;
  std::vector<Match> rules_;
  Rng rng_;
  uint64_t packets_ = 0;
};

}  // namespace ovs
