// OpenFlow table generators: the §7.2 microbenchmark table, an NVP-style
// network-virtualization pipeline (§3.2: "flow tables installed by the
// VMware network virtualization controller use a minimum of about 15 table
// lookups per packet"), and random classifier tables for raw lookup
// benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "classifier/classifier.h"
#include "util/rng.h"
#include "vswitchd/switch.h"

namespace ovs {

// Installs the 4-flow table of §7.2 into table 0:
//   arp | ip dst 11.1/16 | tcp dst 9.1.1.1 ports 10,10 | ip dst 9.1.1/24
// Actions forward toward `out_port`.
void install_paper_microbench_table(Switch& sw, uint32_t out_port = 2);

// --- NVP-style logical-datapath pipeline ------------------------------------

struct NvpConfig {
  size_t n_tenants = 4;
  size_t vms_per_tenant = 4;
  // Fraction of tenants whose logical datapath carries L4 ACLs (§5.3's
  // staged-lookup scenario: megaflows for other tenants must not match L4).
  double acl_tenant_fraction = 0.5;
  size_t acls_per_tenant = 4;
  // If set, ACL tenants additionally run their IP traffic through
  // connection tracking (§8.1 stateful firewalling). This gives those
  // logical datapaths per-connection megaflows, which is what drives flow
  // counts and flow-setup rates on real NVP hypervisors.
  bool stateful_acl_tenants = false;
  uint32_t first_vm_port = 1;
  uint32_t tunnel_port = 1000;
  uint64_t seed = 17;
};

struct NvpVm {
  uint32_t port = 0;       // switch port
  uint64_t tenant = 0;     // logical datapath id (metadata value)
  EthAddr mac;
  Ipv4 ip;
};

struct NvpTopology {
  std::vector<NvpVm> vms;
  std::vector<uint16_t> blocked_ports;  // per-ACL blocked TCP dst ports
  size_t n_acl_tenants = 0;

  const NvpVm* vm_by_port(uint32_t port) const {
    for (const NvpVm& v : vms)
      if (v.port == port) return &v;
    return nullptr;
  }
  std::vector<const NvpVm*> tenant_vms(uint64_t tenant) const {
    std::vector<const NvpVm*> out;
    for (const NvpVm& v : vms)
      if (v.tenant == tenant) out.push_back(&v);
    return out;
  }
};

// Builds a 4-stage pipeline:
//   table 0: ingress classification (in_port / tun_id -> metadata), resubmit
//   table 1: per-tenant L2 lookup (metadata + eth_dst -> reg1 = dest), resubmit
//   table 2: per-tenant ACLs (L4 port drops for ACL tenants), resubmit
//   table 3: egress (reg1 -> output or tunnel)
// Requires sw to have >= 4 tables. Adds the VM ports and the tunnel port.
NvpTopology install_nvp_pipeline(Switch& sw, const NvpConfig& cfg);

// A packet between two VMs of the same tenant.
Packet nvp_packet(const NvpVm& src, const NvpVm& dst, uint16_t sport,
                  uint16_t dport, uint8_t proto = ipproto::kTcp);

// --- Random classifier tables ------------------------------------------------

// A self-owned rule for benchmark tables.
struct OwnedRule : Rule {
  using Rule::Rule;
};

// Generates `n_flows` random rules spread over `n_tuples` random mask shapes
// and inserts them into `cls`. Returned vector owns the rules (keep it alive
// as long as the classifier).
std::vector<std::unique_ptr<OwnedRule>> build_random_classifier(
    Classifier& cls, size_t n_flows, size_t n_tuples, Rng& rng);

// A random packet that hits the random classifier's value universe.
FlowKey random_classifier_packet(Rng& rng);

// --- Scale tables (bench_classifier_scale) ----------------------------------
//
// Mask sets at the hundreds-to-thousands scale, structured the way large
// production tables are: FAMILIES of masks sharing a base set of exact
// fields and differing only in the prefix length of one address field.
// Masks within a family are totally ordered by subsumption, which is
// exactly the structure the chained-tuple engine exploits (and what longest
// -prefix-match rule compilers emit); across families masks stay unrelated.

// Exactly `n_masks` distinct masks grouped into nested-prefix families.
std::vector<FlowMask> make_scale_masks(size_t n_masks, Rng& rng);

// Spreads `n_rules` rules round-robin over make_scale_masks(n_masks) with
// unique shuffled priorities and inserts them into `cls`. Deterministic for
// a given rng seed: two classifiers built with equal-seeded rngs hold
// identical rule sets (engine-equivalence benches rely on this).
std::vector<std::unique_ptr<OwnedRule>> build_scale_classifier(
    Classifier& cls, size_t n_rules, size_t n_masks, Rng& rng);

// A Zipf-skewed lookup key over the built table: ranks the rules by index
// with a log-uniform approximation (heavily favoring low indices), takes
// the chosen rule's masked key and fills the bits OUTSIDE its mask with
// noise, so the packet provably matches that rule (and possibly
// higher-priority ones). With probability `miss_fraction` returns a fully
// random packet instead (miss traffic).
FlowKey zipf_scale_packet(const std::vector<std::unique_ptr<OwnedRule>>& rules,
                          Rng& rng, double miss_fraction = 0.1);

}  // namespace ovs
