// Parameterized per-flow popularity skew, shared by every traffic source
// that needs it (LongLivedFlowsWorkload, the fleet simulator's tenant
// connection picker, bench_offload).
//
// Flow popularity in real networks is famously Zipfian (paper §8.4 cites
// Sarrar et al.): a handful of elephant flows carry most packets while a
// long tail of mice each carry a few. The skew exponent `s` controls how
// top-heavy the distribution is; `s == 0` degrades to uniform (every flow
// equally likely), which doubles as the "no skew" ablation in benchmarks.
//
// Determinism contract: given the same (n, s) and the same Rng stream, the
// draw sequence is identical across runs and across call sites — one Rng
// draw per sample() in both the Zipf and the uniform arm, so swapping `s`
// perturbs values but never the draw count. Fleet fingerprints and bench
// baselines rely on this.
#pragma once

#include <cstddef>

#include "util/rng.h"

namespace ovs {

class SkewSampler {
 public:
  // Zipf(s) over {0, ..., n-1}; s <= 0 selects uniform (the Zipf CDF is
  // still built so construction cost does not depend on the branch taken).
  SkewSampler(size_t n, double s) : zipf_(n, s), s_(s), n_(n) {}

  size_t sample(Rng& rng) const noexcept {
    return s_ > 0 ? zipf_.sample(rng) : static_cast<size_t>(rng.uniform(n_));
  }

  size_t size() const noexcept { return n_; }
  double skew() const noexcept { return s_; }

 private:
  ZipfSampler zipf_;
  double s_;
  size_t n_;
};

}  // namespace ovs
