// Synthetic traffic generators reproducing the paper's workloads (§7).
//
// TcpCrrWorkload emulates Netperf's TCP_CRR test: each transaction
// establishes a TCP connection from a fresh ephemeral port, exchanges one
// byte each way, and tears the connection down — the worst case for flow
// caches because every transaction is a new microflow in both directions.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.h"
#include "util/rng.h"
#include "workload/skew.h"

namespace ovs {

// One Netperf TCP_CRR "session" (the paper ran 400 in parallel).
class TcpCrrWorkload {
 public:
  struct Config {
    uint32_t client_port = 1;   // switch port of the client side
    uint32_t server_port = 2;   // switch port of the server side
    Ipv4 client_ip{10, 1, 0, 1};
    Ipv4 server_ip{9, 1, 1, 2};
    uint16_t server_tcp_port = 9000;
    size_t sessions = 400;      // parallel Netperf sessions
    uint64_t seed = 1;
  };

  explicit TcpCrrWorkload(const Config& cfg);

  // Packets of the next transaction, in order (SYN, SYN-ACK, ACK, request,
  // response, FIN, FIN-ACK, ACK) across both directions. Each call uses a
  // fresh ephemeral source port on a round-robin session.
  std::vector<Packet> next_transaction();

  // Number of packets per transaction (constant).
  static constexpr size_t kPacketsPerTransaction = 8;

  uint64_t transactions() const noexcept { return transactions_; }

 private:
  Packet base_packet(bool client_to_server, uint16_t eph_port,
                     uint16_t flags, uint32_t payload) const;

  Config cfg_;
  Rng rng_;
  std::vector<uint16_t> session_next_port_;
  size_t next_session_ = 0;
  uint64_t transactions_ = 0;
};

// A port scan: one source sweeping destination ports (§5.1's pathological
// case for L4-matching megaflows).
class PortScanWorkload {
 public:
  struct Config {
    uint32_t in_port = 1;
    Ipv4 src_ip{10, 1, 0, 66};
    Ipv4 dst_ip{9, 1, 1, 2};
    uint16_t first_port = 1;
  };

  explicit PortScanWorkload(const Config& cfg)
      : cfg_(cfg), next_port_(cfg.first_port) {}

  Packet next();

 private:
  Config cfg_;
  uint16_t next_port_;
};

// N long-lived connections with Zipf-popularity packet arrivals (Figure 8's
// steady-state forwarding workload).
class LongLivedFlowsWorkload {
 public:
  struct Config {
    size_t n_flows = 1000;
    uint32_t in_port = 1;
    double zipf_s = 1.0;  // 0 = uniform
    uint64_t seed = 7;
  };

  explicit LongLivedFlowsWorkload(const Config& cfg);

  Packet next();
  const std::vector<Packet>& flows() const noexcept { return flows_; }

 private:
  Config cfg_;
  Rng rng_;
  SkewSampler skew_;
  std::vector<Packet> flows_;
};

}  // namespace ovs
