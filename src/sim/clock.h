// Virtual time. All timestamps in the library are nanoseconds of virtual
// time so tests and benchmarks are deterministic and independent of host
// speed.
#pragma once

#include <cstdint>

namespace ovs {

inline constexpr uint64_t kMicrosecond = 1000;
inline constexpr uint64_t kMillisecond = 1000 * kMicrosecond;
inline constexpr uint64_t kSecond = 1000 * kMillisecond;

class VirtualClock {
 public:
  uint64_t now() const noexcept { return now_ns_; }
  void advance(uint64_t ns) noexcept { now_ns_ += ns; }
  void advance_to(uint64_t ns) noexcept {
    if (ns > now_ns_) now_ns_ = ns;
  }

 private:
  uint64_t now_ns_ = 0;
};

// Stepping policy for deterministic replay harnesses: a VirtualClock plus
// the fixed quanta a replay advances by. Injected into the differential
// fuzz runner (src/testing/differential.h) so tests control the time
// structure of a replay — how far apart packets land, and how long a
// revalidation tick is — instead of the runner hard-coding timing.
class ReplayClock {
 public:
  struct Quanta {
    uint64_t per_event_ns = 50 * kMicrosecond;  // between replayed events
    uint64_t per_tick_ns = kSecond;             // a maintenance/reval tick
  };

  ReplayClock() noexcept = default;
  explicit ReplayClock(Quanta q) noexcept : q_(q) {}

  uint64_t now() const noexcept { return clock_.now(); }
  uint64_t step_event() noexcept {
    clock_.advance(q_.per_event_ns);
    return clock_.now();
  }
  uint64_t step_tick() noexcept {
    clock_.advance(q_.per_tick_ns);
    return clock_.now();
  }
  void advance(uint64_t ns) noexcept { clock_.advance(ns); }
  const Quanta& quanta() const noexcept { return q_; }

 private:
  Quanta q_;
  VirtualClock clock_;
};

}  // namespace ovs
