// Virtual time. All timestamps in the library are nanoseconds of virtual
// time so tests and benchmarks are deterministic and independent of host
// speed.
#pragma once

#include <cstdint>

namespace ovs {

inline constexpr uint64_t kMicrosecond = 1000;
inline constexpr uint64_t kMillisecond = 1000 * kMicrosecond;
inline constexpr uint64_t kSecond = 1000 * kMillisecond;

class VirtualClock {
 public:
  uint64_t now() const noexcept { return now_ns_; }
  void advance(uint64_t ns) noexcept { now_ns_ += ns; }
  void advance_to(uint64_t ns) noexcept {
    if (ns > now_ns_) now_ns_ = ns;
  }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace ovs
