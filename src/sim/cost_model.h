// CPU cost model for the simulated switch.
//
// The paper's testbed was a 16-core 2.0 GHz Xeon server; we cannot reproduce
// its absolute packet rates on arbitrary hardware, so throughput-and-CPU%
// experiments (Tables 1-2, Figures 7-8) charge *virtual cycles* per
// operation instead. Calibration anchors, from the paper itself:
//
//   * §7.2: the userspace tuple-space classifier does ~6.8 M hash lookups/s
//     on one core -> ~294 cycles per tuple search at 2 GHz.
//   * Figure 8: ~10.6 Mpps with the microflow cache on -> ~190 cycles/packet
//     per core-pair-equivalent fast path; we charge 80 cycles for the EMC
//     probe plus fixed per-packet receive/execute overhead.
//   * Table 1: ~37 ktps TCP_CRR with every microflow missing -> tens of
//     microseconds per flow setup (upcall + 15-table translation + install).
//
// Cycles are split into kernel (datapath) and user (upcall/translate/
// revalidate) pools so CPU% columns can be reported like the paper's
// `user/kernel` pairs.
#pragma once

#include <cstdint>

namespace ovs {

struct CostModel {
  double ghz = 2.0;           // virtual core frequency
  double n_cores = 16;        // the paper's two 8-core Xeons

  // Kernel-side (datapath) costs, in cycles. The kernel's per-tuple search
  // is far cheaper than the userspace classifier's (no staging, no
  // priorities, no wildcard tracking): Figure 8's ~2 Mpps floor at 30+
  // masks on the paper's testbed implies roughly 65 cycles per mask probed.
  double per_packet = 250;       // rx, parse, action execution
  double microflow_probe = 80;   // exact-match cache probe
  double per_tuple = 65;         // one megaflow hash-table search
  double emc_insert = 300;       // EMC slot write + eviction bookkeeping
  double miss_kernel = 1200;     // enqueue upcall, context mgmt

  // Simulated NIC hardware-offload tier (DESIGN.md §13). A probe models the
  // on-NIC TCAM/exact-match lookup the host CPU never sees: the only
  // software cost is reading the match result out of the descriptor, an
  // order of magnitude under the EMC's hash-probe-and-compare. Install and
  // evict are slow-path control operations (descriptor write + doorbell over
  // PCIe), charged to the control thread at placement time, not per packet.
  double offload_probe = 15;     // descriptor match-result read
  double offload_install = 500;  // slot program: PCIe write + doorbell
  double offload_evict = 300;    // slot invalidate + counter readback

  // Batched (PMD-style) receive path. A burst pays one fixed cost plus a
  // reduced per-packet cost (amortized rx/prefetch/icache, as in OVS-DPDK);
  // cache probes are then charged per *deduplicated* probe from the
  // Datapath::BatchSummary, which is where batching actually wins.
  double batch_fixed = 300;          // per-burst poll/dispatch overhead
  double per_packet_batched = 150;   // rx+execute amortized within a burst

  // Userspace costs, in cycles.
  double upcall_fixed = 9000;      // per-miss handling + flow install
  double upcall_syscall = 4000;    // kernel/user crossing; *batching* (§4.1)
                                   // amortizes this over the whole batch
  double per_table_lookup = 800;   // one OpenFlow table classification
  double reval_per_flow = 6000;    // dump + re-translate + compare (§6)
  double reval_thread_sync = 15000;  // per revalidator thread per pass:
                                     // fan-out, join, cache handoff (§4.3);
                                     // charged only when threads > 1
  double install_fail = 600;       // failed netlink install (error return)
  double upcall_requeue = 400;     // park a miss on the retry queue

  // Userspace classifier engine micro-costs (bench_classifier_scale's model
  // mode). These price one classifier lookup from its own stats delta:
  //
  //   cycles = cls_lookup_fixed
  //          + (tuples_searched - stage_terminations) * cls_tuple_probe
  //          + stage_terminations * cls_stage_term
  //          + tuples_skipped * cls_tuple_skip
  //          + gate_probes * cls_gate_probe
  //          + guide_probes * cls_guide_probe
  //
  // Anchors: §7.2's ~294 cycles/tuple search covers the full staged walk of
  // a matching tuple (cls_tuple_probe, slightly under since the fixed term
  // is split out); a staged early miss touches 1-2 stage sets only; a
  // trie/partition skip still loads the subtable descriptor and its
  // trie-plen/partition metadata — with hundreds of subtables that is a
  // likely cache miss per skip, so it prices like an L2/L3 hit rather than
  // register arithmetic (exactly the per-subtable tax the chained engine
  // amortizes into one guide probe per chain); a gate test is one hash +
  // one uint16 load (cheaper than any hash-table walk); a chain guide
  // probe is one full-mask hash + counting-set probe, cheaper than a
  // rule-table search because it never walks a bucket chain.
  double cls_lookup_fixed = 80;   // per-lookup setup/teardown
  double cls_tuple_probe = 260;   // full staged walk + rule-table search
  double cls_stage_term = 90;     // staged lookup cut short at a stage set
  double cls_tuple_skip = 30;     // trie/partition/priority skip
  double cls_gate_probe = 14;     // bloom-gate hash + counter test
  double cls_guide_probe = 70;    // chain guide full-mask hash + set probe

  // Crash/restart recovery (DESIGN.md §9). A daemon restart pays a fixed
  // re-exec cost (config re-read, socket setup) before the reconciliation
  // pass, whose per-flow work reuses reval_per_flow/per_table_lookup; the
  // invariant self-check is a hash-and-compare sweep per live flow.
  double restart_fixed = 2e6;      // daemon re-exec + durable config load
  double dp_check_per_flow = 120;  // invariant checker per-flow sweep cost

  double cycles_per_second_total() const noexcept {
    return ghz * 1e9 * n_cores;
  }
  double seconds(double cycles) const noexcept {
    return cycles / (ghz * 1e9);
  }
};

// Cycle accumulator, split like the paper's CPU% columns.
struct CpuAccounting {
  double kernel_cycles = 0;
  double user_cycles = 0;

  // CPU load as a percentage of ONE core over a (virtual) duration, the
  // paper's convention (values can exceed 100% via multithreading).
  double user_pct(double seconds, const CostModel& m) const noexcept {
    return 100.0 * m.seconds(user_cycles) / seconds;
  }
  double kernel_pct(double seconds, const CostModel& m) const noexcept {
    return 100.0 * m.seconds(kernel_cycles) / seconds;
  }

  void reset() noexcept { kernel_cycles = user_cycles = 0; }
};

}  // namespace ovs
