// Fleet simulator: reproduces the production study of §7.1 (24 hours of
// statistics from >1,000 hypervisors in a multi-tenant data center).
//
// Substitution (see DESIGN.md): we cannot observe Rackspace's fleet, so each
// simulated hypervisor runs the real Switch with an NVP-style pipeline and a
// tenant workload whose load parameters are drawn from heavy-tailed
// (log-normal) distributions. Each 10-minute measurement interval is
// compressed to a short contiguous window of representative traffic; rates
// are reported per second of simulated traffic, so the figures' axes mean
// the same thing as the paper's.
//
// A small fraction of hypervisors are "outliers": their classifier carries
// the ICMP/port-trie bug of §7.1 and their tenants all have L4 + ICMP ACLs,
// reproducing the upper-right corner of Figure 7.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ovs {

struct FleetConfig {
  size_t n_hypervisors = 200;
  size_t n_intervals = 12;            // measurement intervals per hypervisor
  double sim_seconds_per_interval = 1.0;
  uint64_t seed = 42;

  // Heavy-tailed per-hypervisor load (log-normal parameters).
  // Receive burst size per hypervisor switch. 1 = per-packet injection;
  // >1 gathers traffic into bursts and drives Switch::inject_batch (the
  // PMD-style fast path with the amortized cost model).
  size_t rx_batch = 1;

  double pps_log_mean = 7.6;      // exp(7.6) ~ 2000 pps median
  double pps_log_sigma = 1.6;     // 99th pct ~ 80 kpps (Figure 6)
  double conns_log_mean = 4.8;    // exp(4.8) ~ 120 active connections
  double conns_log_sigma = 1.3;   // 99th pct of max flows ~ few thousand
  double interval_sigma = 0.5;    // per-interval load wobble
  double churn_per_second = 0.35; // fraction of connections replaced / s
  // Per-tenant connection popularity skew (SkewSampler exponent; 0 =
  // uniform). The historical fleet default is a mild Zipf.
  double zipf_s = 1.02;

  // Outliers (§7.1: six hypervisors with the prefix-tracking ICMP bug).
  double outlier_fraction = 0.008;
  double outlier_pps_factor = 10.0;
  double outlier_conns_factor = 30.0;
  double outlier_churn = 0.8;

  // Connection-churn storms: a fraction of hypervisors host a tenant that
  // goes adversarial for a window of intervals (a port scan / SYN flood —
  // every packet a fresh connection, no reuse). Exercises the bounded
  // upcall queue and the degradation policies under fleet-realistic load;
  // `degradation` toggles those policies for ablation.
  double storm_fraction = 0.0;       // hypervisors stormed (0 = off)
  size_t storm_first_interval = 0;   // storm window [first, last], inclusive
  size_t storm_last_interval = 0;
  double storm_pps_factor = 8.0;     // offered-load multiplier while stormed
  double storm_churn = 3.0;          // connection replacement rate while stormed
  bool degradation = true;           // Switch degradation policies on/off

  // Tuple-space explosion attacks (DESIGN.md §14, workload/explosion.h): a
  // fraction of hypervisors host a tenant that installs a budget of
  // pairwise-incomparable-mask rules at the window start (through admission
  // control) and aims high-entropy traffic at them, exploding the kernel
  // mask list that every other tenant's packets must probe. Attacked
  // hypervisors are drawn immediately below the storm band, keeping all
  // five populations (outliers, storms, explosions, faults, crashes)
  // disjoint. The defense knobs below apply fleet-wide; all zero/false
  // keeps every hypervisor bit-for-bit the pre-explosion switch.
  double explosion_fraction = 0.0;      // hypervisors attacked (0 = off)
  size_t explosion_first_interval = 0;  // attack window [first, last]
  size_t explosion_last_interval = 0;
  size_t explosion_rules = 512;         // attacker rule budget
  double explosion_pps_fraction = 0.5;  // attacker share of offered pps
  size_t explosion_mask_cap = 0;        // SwitchConfig::max_masks_per_tenant
  bool explosion_partition = false;     // ClassifierConfig::tenant_partition
  size_t explosion_detect_subtables = 0;  // detector mask-count trigger
  double explosion_detect_probe_ewma = 0.0;  // detector probe-EWMA trigger

  // True multi-worker hypervisors: each Switch runs the sharded datapath
  // with this many kernel-side workers (0/1 = the classic single-threaded
  // backend) and this many revalidator plan threads (§4.3).
  size_t datapath_workers = 0;
  size_t revalidator_threads = 1;

  // Simulated NIC offload tier (DESIGN.md §13): per-hypervisor offload
  // table capacity; 0 leaves the tier off (bit-for-bit legacy behavior).
  size_t offload_slots = 0;

  // Bounded conntrack (DESIGN.md §15), applied fleet-wide like the other
  // defenses: connection-table caps, idle expiry, and the ct-pressure
  // degradation trigger. The NVP pipeline's stateful ACL tenants exercise
  // the table on every hypervisor. All-zero defaults reproduce the
  // unbounded no-expiry tracker bit-for-bit.
  size_t ct_max_entries = 0;
  size_t ct_max_per_zone = 0;
  uint64_t ct_idle_timeout_ns = 0;
  bool ct_fair_eviction = true;
  double ct_pressure_ratio = 0.0;

  // Per-hypervisor fault schedules, correlated at rack granularity: every
  // hypervisor in a faulted rack sees the same install-failure / upcall-drop
  // window (a ToR reboot or kernel regression rolling through one rack).
  // Faulted racks are drawn from the middle of the rack range so they stay
  // disjoint from outliers (bottom of the id range) and storms (top).
  size_t rack_size = 16;             // hypervisors per rack (id / rack_size)
  double fault_rack_fraction = 0.0;  // fraction of racks faulted (0 = off)
  size_t fault_first_interval = 0;   // fault window [first, last], inclusive
  size_t fault_last_interval = 0;
  double fault_install_fail_prob = 0.0;  // transient install failure prob
  double fault_upcall_drop_prob = 0.0;   // lost-upcall prob while faulted
  uint64_t fault_seed = 7;

  // Crash schedules (DESIGN.md §9), also rack-correlated: every hypervisor
  // in a crashed rack loses its vswitchd at `crash_interval` (a bad daemon
  // rollout hitting one rack at a time) and reconciles on the next
  // maintenance tick while the datapath keeps serving its cache. Crashed
  // racks sit immediately left of the faulted band so all four populations
  // (outliers, storms, faults, crashes) stay disjoint.
  double crash_rack_fraction = 0.0;  // fraction of racks crashed (0 = off)
  size_t crash_interval = 0;         // interval whose maintenance tick crashes
  double crash_stall_prob = 0.0;     // kReconcileStall prob during recovery
  // Run the megaflow invariant self-check at every interval boundary and
  // quarantine violators (periodic background self-check; the
  // post-reconciliation gate inside Switch::restart() runs regardless).
  bool self_check = false;

  // Distributed control plane (DESIGN.md §12). When enabled the fleet runs
  // interval-lockstep: every hypervisor's switch gets a control-plane agent
  // connected over the lossy in-memory wire to one active controller plus
  // standbys, with gossip discovery driving failover. A baseline policy is
  // fanned out (and certified by barriers) before interval 0; optional
  // events below exercise convergence under rack-correlated wire faults and
  // a controller crash. The legacy per-hypervisor mode is bit-for-bit
  // unchanged when this is off. Control-plane virtual time is its own
  // clock, decoupled from the per-hypervisor traffic clocks (documented
  // substitution: we interleave per interval, not per packet).
  bool control_plane = false;
  size_t standby_controllers = 1;
  uint64_t ctrl_seed = 99;
  // Wire fault probabilities armed on faulted racks' links during the fault
  // window [fault_first_interval, fault_last_interval] (rack-correlated,
  // like the install/upcall faults above).
  double ctrl_msg_drop_prob = 0.0;
  double ctrl_msg_delay_prob = 0.0;
  double ctrl_msg_dup_prob = 0.0;
  double ctrl_conn_reset_prob = 0.0;
  // Interval at whose start the active controller fans out a fleet-wide
  // policy change (SIZE_MAX = never).
  size_t policy_change_interval = SIZE_MAX;
  // Interval at whose start the active controller is killed (SIZE_MAX =
  // never). If it dies holding an un-replicated policy epoch, the
  // management layer re-issues the change through the standby that takes
  // over, and agents roll back the partial epoch during resync.
  size_t controller_crash_interval = SIZE_MAX;

  // Userspace housekeeping charged per simulated second (stats polling once
  // per second, §6, plus fixed daemon overhead).
  double daemon_fixed_cycles_per_sec = 2.5e7;
  double stats_poll_cycles_per_flow = 1500;
  // End-to-end userspace CPU per flow setup (handler wakeup, batching
  // inefficiency at low rates, revalidator churn). Calibrated to Figure 7's
  // observed slope (~5% of a core at ~100 misses/s, >100% near 10k).
  double flow_setup_user_cycles = 4e5;
};

struct FleetInterval {
  size_t hypervisor = 0;
  size_t interval = 0;
  bool outlier = false;
  bool stormy = false;       // adversarial churn active this interval
  bool exploded = false;     // tuple-explosion attack active this interval
  bool faulted = false;      // rack fault schedule active this interval
  bool crashed = false;      // userspace crash/reconcile touched this interval
  double offered_pps = 0;
  double hit_rate = 0;       // (offload + EMC + megaflow hits) / packets
  double hit_pps = 0;
  double miss_pps = 0;       // flow setups entering userspace per second
  double drop_pps = 0;       // upcalls refused by the bounded queue / s
  double user_cpu_pct = 0;   // ovs-vswitchd equivalent, % of one core
  double kernel_cpu_pct = 0;
  uint64_t flows = 0;        // datapath flow count at interval end
  uint64_t dp_masks = 0;     // kernel mask-list length at interval end
  uint64_t rules_rejected = 0;       // cumulative mask-cap rejections
  uint64_t flow_limit_backoffs = 0;  // cumulative AIMD reductions
  uint64_t install_fails = 0;        // failed cache installs this interval
  uint64_t quarantined = 0;          // flows removed by self-check (cumulative)
};

struct FleetHypervisor {
  bool outlier = false;
  double flows_min = 0;
  double flows_mean = 0;
  double flows_max = 0;
};

// Control-plane outcome of a fleet run (all zero when control_plane=false).
struct FleetControlStats {
  uint64_t policy_pushes = 0;
  uint64_t policy_repushes = 0;  // re-issued after dying with a master
  bool final_converged = false;  // last pushed epoch certified fleet-wide
  uint64_t convergence_ns = 0;   // virtual ns from last (re)push to converged
  uint64_t controller_crashes = 0;
  uint64_t takeovers = 0;        // final master's fencing generation - 1
  uint64_t flow_mods_applied = 0;
  uint64_t dups_ignored = 0;     // idempotent redeliveries fenced by xid
  uint64_t stale_gen_fenced = 0;
  uint64_t rules_pruned = 0;     // partial-epoch rollbacks at sync barriers
  uint64_t syncs_completed = 0;
  uint64_t standalone_entries = 0;
  uint64_t retransmits = 0;      // both directions, all channels
  uint64_t conn_resets = 0;
  uint64_t wire_dropped = 0;
  uint64_t wire_delayed = 0;
  uint64_t wire_duplicated = 0;
  uint64_t gossip_rounds = 0;
  uint64_t gossip_messages = 0;
};

struct FleetResults {
  std::vector<FleetInterval> intervals;
  std::vector<FleetHypervisor> hypervisors;
  FleetControlStats control;
};

FleetResults run_fleet(const FleetConfig& cfg);

}  // namespace ovs
