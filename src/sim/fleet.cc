#include "sim/fleet.h"

#include <algorithm>
#include <cmath>

#include "ctrl/control_plane.h"
#include "sim/clock.h"
#include "util/fault.h"
#include "util/stats.h"
#include "vswitchd/switch.h"
#include "workload/explosion.h"
#include "workload/skew.h"
#include "workload/table_gen.h"

namespace ovs {

namespace {

struct Connection {
  size_t src_vm = 0;
  size_t dst_vm = 0;
  uint16_t sport = 0;
  uint16_t dport = 0;
  uint8_t proto = ipproto::kTcp;
};

class HypervisorSim {
 public:
  HypervisorSim(const FleetConfig& fleet, Rng& master, bool outlier,
                bool stormy, bool exploded, bool faulted, bool crashed)
      : fleet_(fleet), rng_(master.next()), outlier_(outlier),
        stormy_(stormy), exploded_(exploded), faulted_(faulted),
        crashed_(crashed) {
    SwitchConfig cfg;
    cfg.classifier.icmp_port_trie_bug = outlier;
    cfg.rx_batch = fleet.rx_batch;
    cfg.degradation.enabled = fleet.degradation;
    cfg.datapath_workers = fleet.datapath_workers;
    cfg.revalidator_threads = fleet.revalidator_threads;
    cfg.offload_slots = fleet.offload_slots;
    cfg.ct_max_entries = fleet.ct_max_entries;
    cfg.ct_max_per_zone = fleet.ct_max_per_zone;
    cfg.ct_idle_timeout_ns = fleet.ct_idle_timeout_ns;
    cfg.ct_fair_eviction = fleet.ct_fair_eviction;
    cfg.degradation.ct_pressure_ratio = fleet.ct_pressure_ratio;
    // Tuple-explosion defenses (DESIGN.md §14) apply fleet-wide — a defense
    // an operator deploys everywhere, not just where the attack lands. The
    // zero/false defaults leave the config untouched.
    cfg.classifier.tenant_partition = fleet.explosion_partition;
    cfg.max_masks_per_tenant = fleet.explosion_mask_cap;
    cfg.degradation.mask_explosion_subtables = fleet.explosion_detect_subtables;
    cfg.degradation.mask_probe_ewma_threshold =
        fleet.explosion_detect_probe_ewma;
    if (faulted_ || crashed_) {
      // The injector starts disarmed; run_interval arms it only inside the
      // rack's fault window. Seeded per hypervisor so fault *timing* varies
      // within the rack while the schedule itself is rack-correlated.
      fault_ = std::make_unique<FaultInjector>(fleet.fault_seed ^
                                               rng_.next());
      cfg.fault = fault_.get();
    }
    sw_ = std::make_unique<Switch>(cfg);

    NvpConfig nvp;
    nvp.n_tenants = 4;
    nvp.vms_per_tenant = 4;
    nvp.acl_tenant_fraction = outlier ? 1.0 : 0.5;
    nvp.stateful_acl_tenants = true;
    nvp.seed = rng_.next();
    topo_ = install_nvp_pipeline(*sw_, nvp);
    if (outlier_) {
      // The §7.1 outlier recipe: ICMP-matching ACL flows that poison the
      // port tries when the bug is present.
      for (uint64_t t = 1; t <= nvp.n_tenants; ++t)
        sw_->table(2).add_flow(
            MatchBuilder().metadata(t).icmp().icmp_type(3).icmp_code(4), 30,
            OfActions::drop());
    }

    double pps = rng_.lognormal(fleet.pps_log_mean, fleet.pps_log_sigma);
    double conns =
        rng_.lognormal(fleet.conns_log_mean, fleet.conns_log_sigma);
    if (outlier_) {
      pps *= fleet.outlier_pps_factor;
      conns *= fleet.outlier_conns_factor;
    }
    base_pps_ = std::clamp(pps, 50.0, 120000.0);
    n_conns_ = static_cast<size_t>(std::clamp(conns, 4.0, 40000.0));
    churn_ = outlier_ ? fleet.outlier_churn : fleet.churn_per_second;

    conns_.reserve(n_conns_);
    for (size_t i = 0; i < n_conns_; ++i) conns_.push_back(new_connection());
    skew_ = std::make_unique<SkewSampler>(n_conns_, fleet.zipf_s);
  }

  FleetInterval run_interval(size_t hv, size_t idx) {
    const bool storm_on = stormy_ && idx >= fleet_.storm_first_interval &&
                          idx <= fleet_.storm_last_interval;
    const bool explosion_on = exploded_ &&
                              idx >= fleet_.explosion_first_interval &&
                              idx <= fleet_.explosion_last_interval;
    if (explosion_on && attack_rules_.empty()) {
      // Window start: the attacker tenant submits its whole rule budget
      // through the admission-controlled path; whatever the cap rejects
      // never exists. Rules land in the per-tenant ACL stage (table 2).
      arng_ = Rng(rng_.next());
      ExplosionConfig ec;
      ec.tenant = 1;
      ec.n_rules = fleet_.explosion_rules;
      ec.seed = arng_.next();
      attack_rules_ = make_explosion_rules(ec);
      for (const Match& m : attack_rules_)
        (void)sw_->add_flow(/*table=*/2, m, ec.priority, OfActions::drop());
      attack_vms_ = topo_.tenant_vms(1);
    }
    const bool fault_on = faulted_ && idx >= fleet_.fault_first_interval &&
                          idx <= fleet_.fault_last_interval;
    if (fault_ != nullptr) {
      fault_->disarm_all();  // re-arm below from this interval's schedules
      if (fault_on) {
        fault_->set_probability(FaultPoint::kInstallTransient,
                                fleet_.fault_install_fail_prob);
        fault_->set_probability(FaultPoint::kUpcallDrop,
                                fleet_.fault_upcall_drop_prob);
      }
      if (crashed_ && idx == fleet_.crash_interval) {
        // One crash exactly: window anchored at the occurrence count this
        // interval starts with, so the first maintenance tick takes it and
        // later ticks (and later intervals) see a spent window.
        const uint64_t occ = fault_->occurrences(FaultPoint::kUserspaceCrash);
        fault_->arm_window(FaultPoint::kUserspaceCrash, occ, occ + 1);
      }
      if (crashed_ && idx >= fleet_.crash_interval)
        fault_->set_probability(FaultPoint::kReconcileStall,
                                fleet_.crash_stall_prob);
    }
    const double mult = rng_.lognormal(0, fleet_.interval_sigma);
    double pps = std::clamp(base_pps_ * mult, 20.0, 150000.0);
    if (storm_on) pps = std::min(pps * fleet_.storm_pps_factor, 150000.0);
    const double seconds = fleet_.sim_seconds_per_interval;
    const double churn_rate = storm_on ? fleet_.storm_churn : churn_;

    const auto dp0 = sw_->backend().stats();
    const uint64_t crashes0 = sw_->counters().userspace_crashes;
    const uint64_t blackout0 = sw_->counters().reconcile_blackout_cycles;
    const uint64_t dropped0 = sw_->counters().upcalls_dropped;
    const uint64_t fails0 = sw_->counters().install_fails;
    const double user0 = sw_->cpu().user_cycles;
    const double kern0 = sw_->cpu().kernel_cycles;

    auto next_packet = [&]() {
      return explosion_on && rng_.chance(fleet_.explosion_pps_fraction)
                 ? attack_packet()
                 : pick_packet();
    };
    const auto whole_seconds = static_cast<size_t>(std::ceil(seconds));
    for (size_t s = 0; s < whole_seconds; ++s) {
      const double frac =
          std::min(1.0, seconds - static_cast<double>(s));
      churn_connections(frac * churn_rate);
      const auto npkts = static_cast<size_t>(pps * frac);
      const uint64_t step_ns = static_cast<uint64_t>(
          1e9 * frac / std::max<size_t>(npkts, 1));
      if (fleet_.rx_batch > 1) {
        // PMD-style: gather traffic into bursts and run the batched fast
        // path; upcalls are handled at burst boundaries.
        std::vector<Packet> burst;
        burst.reserve(fleet_.rx_batch);
        for (size_t i = 0; i < npkts; ++i) {
          burst.push_back(next_packet());
          clock_.advance(step_ns);
          if (burst.size() == fleet_.rx_batch) {
            sw_->inject_batch(burst, clock_.now());
            burst.clear();
            sw_->handle_upcalls(clock_.now());
          }
        }
        if (!burst.empty()) sw_->inject_batch(burst, clock_.now());
      } else {
        for (size_t i = 0; i < npkts; ++i) {
          sw_->inject(next_packet(), clock_.now());
          clock_.advance(step_ns);
          if ((i & 63) == 63) sw_->handle_upcalls(clock_.now());
        }
      }
      sw_->handle_upcalls(clock_.now());
      sw_->run_maintenance(clock_.now());
      // Housekeeping: stats polling over the flow table + daemon overhead.
      sw_->cpu().user_cycles +=
          frac * (fleet_.daemon_fixed_cycles_per_sec +
                  fleet_.stats_poll_cycles_per_flow *
                      static_cast<double>(sw_->backend().flow_count()));
      flow_samples_.add(static_cast<double>(sw_->backend().flow_count()));
    }

    // Periodic background invariant self-check (DESIGN.md §9): sweep the
    // datapath at the interval boundary and quarantine any violators.
    if (fleet_.self_check) sw_->self_check();

    const auto dp1 = sw_->backend().stats();
    // Charge the end-to-end userspace cost of the interval's flow setups
    // (see FleetConfig::flow_setup_user_cycles) before reading CPU deltas.
    sw_->cpu().user_cycles += fleet_.flow_setup_user_cycles *
                              static_cast<double>(dp1.misses - dp0.misses);
    const uint64_t pkts = dp1.packets - dp0.packets;
    const uint64_t hits = (dp1.offload_hits - dp0.offload_hits) +
                          (dp1.microflow_hits - dp0.microflow_hits) +
                          (dp1.megaflow_hits - dp0.megaflow_hits);
    const uint64_t misses = dp1.misses - dp0.misses;

    FleetInterval out;
    out.hypervisor = hv;
    out.interval = idx;
    out.outlier = outlier_;
    out.stormy = storm_on;
    out.exploded = explosion_on;
    out.faulted = fault_on;
    // An interval is "crashed" if the daemon died in it, reconciliation
    // charged blackout in it, or it ends still not serving.
    out.crashed = sw_->counters().userspace_crashes != crashes0 ||
                  sw_->counters().reconcile_blackout_cycles != blackout0 ||
                  sw_->lifecycle() != LifecycleState::kServing;
    out.quarantined = sw_->counters().flows_quarantined;
    out.offered_pps = pps;
    out.install_fails = sw_->counters().install_fails - fails0;
    out.drop_pps =
        static_cast<double>(sw_->counters().upcalls_dropped - dropped0) /
        seconds;
    out.flow_limit_backoffs = sw_->counters().flow_limit_backoffs;
    out.hit_rate = pkts == 0 ? 1.0
                             : static_cast<double>(hits) /
                                   static_cast<double>(pkts);
    out.hit_pps = static_cast<double>(hits) / seconds;
    out.miss_pps = static_cast<double>(misses) / seconds;
    const CostModel& m = sw_->config().cost;
    out.user_cpu_pct =
        100.0 * m.seconds(sw_->cpu().user_cycles - user0) / seconds;
    out.kernel_cpu_pct =
        100.0 * m.seconds(sw_->cpu().kernel_cycles - kern0) / seconds;
    out.flows = sw_->backend().flow_count();
    out.dp_masks = sw_->backend().mask_count();
    out.rules_rejected = sw_->counters().rules_rejected_mask_cap;
    return out;
  }

  Switch& sw() { return *sw_; }

  FleetHypervisor summary() const {
    FleetHypervisor h;
    h.outlier = outlier_;
    h.flows_min = flow_samples_.min();
    h.flows_mean = flow_samples_.mean();
    h.flows_max = flow_samples_.max();
    return h;
  }

 private:
  Connection new_connection() {
    Connection c;
    c.src_vm = rng_.uniform(topo_.vms.size());
    // Destination within the same tenant.
    const uint64_t tenant = topo_.vms[c.src_vm].tenant;
    for (int tries = 0; tries < 16; ++tries) {
      c.dst_vm = rng_.uniform(topo_.vms.size());
      if (c.dst_vm != c.src_vm && topo_.vms[c.dst_vm].tenant == tenant)
        break;
    }
    if (topo_.vms[c.dst_vm].tenant != tenant || c.dst_vm == c.src_vm)
      c.dst_vm = c.src_vm;  // degenerate but harmless
    c.sport = static_cast<uint16_t>(rng_.range(32768, 60999));
    static constexpr uint16_t kServices[] = {80, 443, 22, 3306, 8080, 53};
    c.dport = kServices[rng_.uniform(6)];
    c.proto = rng_.chance(0.96) ? ipproto::kTcp : ipproto::kUdp;
    return c;
  }

  // `rate` is the fraction of the connection table replaced (may exceed 1
  // during a storm: every connection replaced more than once).
  void churn_connections(double rate) {
    const auto n = static_cast<size_t>(
        rate * static_cast<double>(conns_.size()));
    for (size_t i = 0; i < n; ++i)
      conns_[rng_.uniform(conns_.size())] = new_connection();
  }

  // One attacker packet: legitimately NVP-addressed within tenant 1 (so the
  // logical pipeline carries it to the ACL stage holding the attack rules),
  // then stamped with a random attack rule's targeting — fresh megaflow
  // with the rule's fine mask on nearly every packet.
  Packet attack_packet() {
    const NvpVm& a = *attack_vms_[arng_.uniform(attack_vms_.size())];
    const NvpVm& b = *attack_vms_[arng_.uniform(attack_vms_.size())];
    Packet p = nvp_packet(a, b, 0, 0);
    return explosion_stamp(attack_rules_[arng_.uniform(attack_rules_.size())],
                           p, arng_);
  }

  Packet pick_packet() {
    const Connection& c = conns_[skew_->sample(rng_)];
    const NvpVm& a = topo_.vms[c.src_vm];
    const NvpVm& b = topo_.vms[c.dst_vm];
    const bool fwd = rng_.chance(0.55);
    Packet p = fwd ? nvp_packet(a, b, c.sport, c.dport, c.proto)
                   : nvp_packet(b, a, c.dport, c.sport, c.proto);
    return p;
  }

  const FleetConfig& fleet_;
  Rng rng_;
  bool outlier_;
  bool stormy_ = false;
  bool exploded_ = false;  // hosts the attacking tenant
  bool faulted_ = false;
  bool crashed_ = false;  // on this hypervisor's rack crash schedule
  std::unique_ptr<FaultInjector> fault_;  // created only for faulted racks
  std::unique_ptr<Switch> sw_;
  NvpTopology topo_;
  std::unique_ptr<SkewSampler> skew_;
  std::vector<Connection> conns_;
  size_t n_conns_ = 0;
  double base_pps_ = 0;
  double churn_ = 0;
  VirtualClock clock_;
  Distribution flow_samples_;
  // Tuple-explosion attack state, populated at the window start.
  std::vector<Match> attack_rules_;
  std::vector<const NvpVm*> attack_vms_;
  Rng arng_{0};
};

}  // namespace

FleetResults run_fleet(const FleetConfig& cfg) {
  FleetResults results;
  Rng master(cfg.seed);
  // Deterministic outlier count (at least one when the fraction is
  // non-zero), so the Figure 7 upper-right corner is always populated.
  const size_t n_outliers =
      cfg.outlier_fraction <= 0
          ? 0
          : std::max<size_t>(
                1, static_cast<size_t>(cfg.outlier_fraction *
                                       static_cast<double>(
                                           cfg.n_hypervisors)));
  const size_t n_stormy =
      cfg.storm_fraction <= 0
          ? 0
          : std::max<size_t>(
                1, static_cast<size_t>(cfg.storm_fraction *
                                       static_cast<double>(
                                           cfg.n_hypervisors)));
  // Exploded hypervisors sit immediately below the storm band (disjoint
  // from storms at the very top and outliers at the very bottom).
  const size_t n_exploded =
      cfg.explosion_fraction <= 0
          ? 0
          : std::max<size_t>(
                1, static_cast<size_t>(cfg.explosion_fraction *
                                       static_cast<double>(
                                           cfg.n_hypervisors)));
  // Faulted racks come from the middle of the rack range, keeping them
  // disjoint from outliers (bottom of the id range) and storms (top).
  const size_t rack_size = std::max<size_t>(1, cfg.rack_size);
  const size_t n_racks = (cfg.n_hypervisors + rack_size - 1) / rack_size;
  const size_t n_fault_racks =
      cfg.fault_rack_fraction <= 0
          ? 0
          : std::max<size_t>(
                1, static_cast<size_t>(cfg.fault_rack_fraction *
                                       static_cast<double>(n_racks)));
  const size_t first_fault_rack = (n_racks - std::min(n_fault_racks,
                                                      n_racks)) / 2;
  // Crashed racks sit immediately left of the faulted band (disjoint from
  // it, and from outliers/storms at the id-range extremes in any fleet
  // large enough to hold all four populations).
  const size_t n_crash_racks =
      cfg.crash_rack_fraction <= 0
          ? 0
          : std::max<size_t>(
                1, static_cast<size_t>(cfg.crash_rack_fraction *
                                       static_cast<double>(n_racks)));
  const size_t first_crash_rack =
      first_fault_rack >= n_crash_racks ? first_fault_rack - n_crash_racks
                                        : 0;
  std::vector<bool> hv_faulted(cfg.n_hypervisors, false);

  if (!cfg.control_plane) {
    for (size_t hv = 0; hv < cfg.n_hypervisors; ++hv) {
      const bool outlier = hv < n_outliers;
      // Stormed hypervisors are drawn from the top of the id range so the
      // outlier and storm populations stay disjoint in small fleets.
      const bool stormy = hv >= cfg.n_hypervisors - n_stormy;
      const bool exploded = !stormy &&
                            hv >= cfg.n_hypervisors - n_stormy - n_exploded;
      const size_t rack = hv / rack_size;
      const bool faulted = rack >= first_fault_rack &&
                           rack < first_fault_rack + n_fault_racks;
      const bool crashed = rack >= first_crash_rack &&
                           rack < first_crash_rack + n_crash_racks;
      HypervisorSim sim(cfg, master, outlier, stormy, exploded, faulted,
                        crashed);
      for (size_t i = 0; i < cfg.n_intervals; ++i)
        results.intervals.push_back(sim.run_interval(hv, i));
      results.hypervisors.push_back(sim.summary());
    }
    return results;
  }

  // Control-plane mode (DESIGN.md §12): all hypervisors live at once and
  // the intervals run in lockstep, interleaved with the control plane's own
  // virtual time. Sims are constructed in the same order as the legacy loop
  // so every per-hypervisor Rng seed (drawn from `master`) is identical.
  std::vector<std::unique_ptr<HypervisorSim>> sims;
  sims.reserve(cfg.n_hypervisors);
  for (size_t hv = 0; hv < cfg.n_hypervisors; ++hv) {
    const bool outlier = hv < n_outliers;
    const bool stormy = hv >= cfg.n_hypervisors - n_stormy;
    const bool exploded = !stormy &&
                          hv >= cfg.n_hypervisors - n_stormy - n_exploded;
    const size_t rack = hv / rack_size;
    const bool faulted = rack >= first_fault_rack &&
                         rack < first_fault_rack + n_fault_racks;
    const bool crashed = rack >= first_crash_rack &&
                         rack < first_crash_rack + n_crash_racks;
    hv_faulted[hv] = faulted;
    sims.push_back(std::make_unique<HypervisorSim>(
        cfg, master, outlier, stormy, exploded, faulted, crashed));
  }

  std::vector<Switch*> switches;
  switches.reserve(sims.size());
  for (auto& s : sims) switches.push_back(&s->sw());

  // Rack-correlated wire injectors: one per faulted hypervisor, armed only
  // inside the fault window below. Each doubles as the agent's conn-reset
  // stream and the transport's per-link stream.
  std::vector<std::unique_ptr<FaultInjector>> wire_faults(cfg.n_hypervisors);
  ControlPlaneConfig cpc;
  cpc.seed = cfg.ctrl_seed;
  cpc.n_controllers = 1 + cfg.standby_controllers;
  cpc.agent_faults.assign(cfg.n_hypervisors, nullptr);
  for (size_t hv = 0; hv < cfg.n_hypervisors; ++hv) {
    if (!hv_faulted[hv]) continue;
    wire_faults[hv] =
        std::make_unique<FaultInjector>(cfg.fault_seed * 0x51ED + hv);
    wire_faults[hv]->disarm_all();
    cpc.agent_faults[hv] = wire_faults[hv].get();
  }

  ControlPlane cp(switches, cpc);
  cp.start(0);

  FleetControlStats& cs = results.control;

  // Baseline policy: a fleet-wide ACL rule (a port the tenant workload
  // never uses, so forwarding outcomes are identical to legacy mode), so
  // hellos, resyncs and prunes all have real content from interval 0.
  const std::vector<FlowModPayload> baseline = {
      {FlowModPayload::Op::kAdd,
       "table=2, priority=6, tcp, tp_dst=4444, actions=drop"}};
  const std::vector<FlowModPayload> change = {
      {FlowModPayload::Op::kDelete, "table=2, tcp, tp_dst=4444"},
      {FlowModPayload::Op::kAdd,
       "table=2, priority=6, tcp, tp_dst=4445, actions=drop"}};

  uint64_t epoch = cp.push_policy(baseline);
  ++cs.policy_pushes;
  uint64_t push_time = cp.now();
  (void)cp.run_until_converged(epoch, cp.now() + 30 * kSecond);

  std::vector<FlowModPayload> pending = baseline;
  const auto interval_ns = static_cast<uint64_t>(
      cfg.sim_seconds_per_interval * static_cast<double>(kSecond));

  results.intervals.resize(cfg.n_hypervisors * cfg.n_intervals);
  for (size_t i = 0; i < cfg.n_intervals; ++i) {
    const bool fault_on = i >= cfg.fault_first_interval &&
                          i <= cfg.fault_last_interval;
    for (size_t hv = 0; hv < cfg.n_hypervisors; ++hv) {
      if (wire_faults[hv] == nullptr) continue;
      wire_faults[hv]->disarm_all();
      if (!fault_on) continue;
      wire_faults[hv]->set_probability(FaultPoint::kCtrlMsgDrop,
                                       cfg.ctrl_msg_drop_prob);
      wire_faults[hv]->set_probability(FaultPoint::kCtrlMsgDelay,
                                       cfg.ctrl_msg_delay_prob);
      wire_faults[hv]->set_probability(FaultPoint::kCtrlMsgDuplicate,
                                       cfg.ctrl_msg_dup_prob);
      wire_faults[hv]->set_probability(FaultPoint::kCtrlConnReset,
                                       cfg.ctrl_conn_reset_prob);
    }
    if (i == cfg.policy_change_interval) {
      const uint64_t e = cp.push_policy(change);
      if (e != 0) {
        epoch = e;
        pending = change;
        push_time = cp.now();
        ++cs.policy_pushes;
      }
    }
    // Kill AFTER a same-interval push: the juicy case is a master dying
    // mid-fan-out, holding an epoch it never replicated.
    if (i == cfg.controller_crash_interval) {
      cp.kill_active();
      ++cs.controller_crashes;
    }
    cp.run_until(cp.now() + interval_ns);
    for (size_t hv = 0; hv < cfg.n_hypervisors; ++hv)
      results.intervals[hv * cfg.n_intervals + i] =
          sims[hv]->run_interval(hv, i);
  }

  // Drain: let failover finish, then re-issue the change if it died with
  // the old master (the management layer retries intent until certified).
  cp.run_until(cp.now() + 2 * kSecond);
  Controller* act = cp.active_controller();
  if (act != nullptr && act->policy_epoch() < epoch) {
    epoch = cp.push_policy(pending);
    push_time = cp.now();
    ++cs.policy_repushes;
  }
  const uint64_t done = cp.run_until_converged(epoch, cp.now() + 30 * kSecond);
  cs.final_converged = done != UINT64_MAX;
  if (cs.final_converged && done > push_time)
    cs.convergence_ns = done - push_time;

  for (size_t hv = 0; hv < cfg.n_hypervisors; ++hv)
    results.hypervisors.push_back(sims[hv]->summary());

  const CtrlAgent::Stats as = cp.agent_stat_totals();
  cs.flow_mods_applied = as.flow_mods_applied;
  cs.dups_ignored = as.dups_ignored;
  cs.stale_gen_fenced = as.stale_gen_fenced;
  cs.rules_pruned = as.rules_pruned;
  cs.syncs_completed = as.syncs_completed;
  cs.standalone_entries = as.standalone_entries;
  CtrlChannel::Stats ch = cp.agent_channel_totals();
  for (size_t j = 0; j < cp.n_controllers(); ++j) {
    const CtrlChannel::Stats cc = cp.controller(j).channel_totals();
    ch.retransmits += cc.retransmits;
    ch.resets += cc.resets;
  }
  cs.retransmits = ch.retransmits;
  cs.conn_resets = ch.resets + ch.peer_resets;
  cs.wire_dropped = cp.net().stats().dropped;
  cs.wire_delayed = cp.net().stats().delayed;
  cs.wire_duplicated = cp.net().stats().duplicated;
  cs.gossip_rounds = cp.discovery().round();
  cs.gossip_messages = cp.discovery().gossip_sent();
  act = cp.active_controller();
  if (act != nullptr && act->role_generation() > 0)
    cs.takeovers = act->role_generation() - 1;
  return results;
}

}  // namespace ovs
