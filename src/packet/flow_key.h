// The flow key: every packet header field the classifier can match.
//
// Layout. All fields live in a fixed array of 64-bit words grouped into the
// four lookup *stages* of paper §5.3, "in decreasing order of traffic
// granularity": metadata, L2, L3, L4. Staged lookup hashes word ranges
// incrementally, so the grouping below is the load-bearing part of the
// design:
//
//   stage 0, metadata  w0  tun_id
//                      w1  metadata (logical-pipeline register, §5.5)
//                      w2  in_port | reg0
//                      w3  reg1 | reg2
//                      w4  reg3 | ct_state
//   stage 1, L2        w5  eth_dst
//                      w6  eth_src
//                      w7  eth_type | vlan_tci
//   stage 2, L3        w8  nw_src | nw_dst
//                      w9  nw_proto | nw_ttl | nw_tos | nw_frag | arp_op
//                      w10-w11  ipv6_src
//                      w12-w13  ipv6_dst
//   stage 3, L4        w14 tp_src | tp_dst | tcp_flags
//
// A FlowMask uses the identical layout; bit i of mask word w means "bit i of
// key word w must match". Masks are fully bitwise (CIDR prefixes on
// addresses and ports, arbitrary bits elsewhere), as in OVS.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "packet/addr.h"
#include "util/hash.h"

namespace ovs {

// Lookup stages (paper §5.3). Each stage's fields are a superset of the
// previous stage's when hashing: stage k hashes words [0, kStageEnd[k]).
enum class Stage : uint8_t { kMetadata = 0, kL2 = 1, kL3 = 2, kL4 = 3 };
inline constexpr size_t kNumStages = 4;

inline constexpr size_t kFlowWords = 15;
// Word index one past the end of each stage.
inline constexpr std::array<size_t, kNumStages> kStageEnd = {5, 8, 14, 15};

constexpr Stage stage_of_word(size_t word) noexcept {
  if (word < kStageEnd[0]) return Stage::kMetadata;
  if (word < kStageEnd[1]) return Stage::kL2;
  if (word < kStageEnd[2]) return Stage::kL3;
  return Stage::kL4;
}

// Every matchable field. kFieldTable (below) maps these to word/shift/width.
enum class FieldId : uint8_t {
  kTunId,
  kMetadata,
  kInPort,
  kReg0,
  kReg1,
  kReg2,
  kReg3,
  kCtState,
  kEthDst,
  kEthSrc,
  kEthType,
  kVlanTci,
  kNwSrc,
  kNwDst,
  kNwProto,
  kNwTtl,
  kNwTos,
  kNwFrag,
  kArpOp,
  kIpv6Src,  // spans 2 words
  kIpv6Dst,  // spans 2 words
  kTpSrc,
  kTpDst,
  kTcpFlags,
};
inline constexpr size_t kNumFields = 24;

struct FieldInfo {
  const char* name;
  uint8_t word;    // first word index
  uint8_t shift;   // bit offset of LSB within word (single-word fields)
  uint8_t width;   // width in bits (128 for ipv6, spanning 2 words)
};

inline constexpr std::array<FieldInfo, kNumFields> kFieldTable = {{
    {"tun_id", 0, 0, 64},    {"metadata", 1, 0, 64}, {"in_port", 2, 32, 32},
    {"reg0", 2, 0, 32},      {"reg1", 3, 32, 32},    {"reg2", 3, 0, 32},
    {"reg3", 4, 32, 32},     {"ct_state", 4, 24, 8}, {"eth_dst", 5, 0, 48},
    {"eth_src", 6, 0, 48},   {"eth_type", 7, 48, 16},{"vlan_tci", 7, 32, 16},
    {"nw_src", 8, 32, 32},   {"nw_dst", 8, 0, 32},   {"nw_proto", 9, 56, 8},
    {"nw_ttl", 9, 48, 8},    {"nw_tos", 9, 40, 8},   {"nw_frag", 9, 32, 8},
    {"arp_op", 9, 16, 16},   {"ipv6_src", 10, 0, 128},
    {"ipv6_dst", 12, 0, 128},{"tp_src", 14, 48, 16}, {"tp_dst", 14, 32, 16},
    {"tcp_flags", 14, 16, 16},
}};

constexpr const FieldInfo& field_info(FieldId f) noexcept {
  return kFieldTable[static_cast<size_t>(f)];
}

// Generic word-array container shared by FlowKey and FlowMask.
struct FlowWords {
  std::array<uint64_t, kFlowWords> w{};

  constexpr bool operator==(const FlowWords&) const noexcept = default;

  // Generic single-word field access (not for ipv6; see typed accessors).
  constexpr uint64_t get(FieldId f) const noexcept {
    const FieldInfo& fi = field_info(f);
    if (fi.width == 64) return w[fi.word];
    const uint64_t mask = (uint64_t{1} << fi.width) - 1;
    return (w[fi.word] >> fi.shift) & mask;
  }
  constexpr void set(FieldId f, uint64_t v) noexcept {
    const FieldInfo& fi = field_info(f);
    if (fi.width == 64) {
      w[fi.word] = v;
      return;
    }
    const uint64_t mask = (uint64_t{1} << fi.width) - 1;
    w[fi.word] = (w[fi.word] & ~(mask << fi.shift)) | ((v & mask) << fi.shift);
  }

  constexpr bool is_zero() const noexcept {
    for (uint64_t x : w)
      if (x != 0) return false;
    return true;
  }
};

// A concrete packet header tuple.
struct FlowKey : FlowWords {
  // Typed accessors keep call sites readable; they all compile down to
  // shifts and masks on the word array.
  constexpr uint64_t tun_id() const noexcept { return get(FieldId::kTunId); }
  constexpr void set_tun_id(uint64_t v) noexcept { set(FieldId::kTunId, v); }
  constexpr uint64_t metadata() const noexcept { return get(FieldId::kMetadata); }
  constexpr void set_metadata(uint64_t v) noexcept { set(FieldId::kMetadata, v); }
  constexpr uint32_t in_port() const noexcept {
    return static_cast<uint32_t>(get(FieldId::kInPort));
  }
  constexpr void set_in_port(uint32_t v) noexcept { set(FieldId::kInPort, v); }
  constexpr uint32_t reg(unsigned i) const noexcept {
    return static_cast<uint32_t>(
        get(static_cast<FieldId>(static_cast<unsigned>(FieldId::kReg0) + i)));
  }
  constexpr void set_reg(unsigned i, uint32_t v) noexcept {
    set(static_cast<FieldId>(static_cast<unsigned>(FieldId::kReg0) + i), v);
  }
  constexpr uint8_t ct_state() const noexcept {
    return static_cast<uint8_t>(get(FieldId::kCtState));
  }
  constexpr void set_ct_state(uint8_t v) noexcept { set(FieldId::kCtState, v); }

  constexpr EthAddr eth_dst() const noexcept {
    return EthAddr(get(FieldId::kEthDst));
  }
  constexpr void set_eth_dst(EthAddr a) noexcept {
    set(FieldId::kEthDst, a.bits());
  }
  constexpr EthAddr eth_src() const noexcept {
    return EthAddr(get(FieldId::kEthSrc));
  }
  constexpr void set_eth_src(EthAddr a) noexcept {
    set(FieldId::kEthSrc, a.bits());
  }
  constexpr uint16_t eth_type() const noexcept {
    return static_cast<uint16_t>(get(FieldId::kEthType));
  }
  constexpr void set_eth_type(uint16_t v) noexcept { set(FieldId::kEthType, v); }
  constexpr uint16_t vlan_tci() const noexcept {
    return static_cast<uint16_t>(get(FieldId::kVlanTci));
  }
  constexpr void set_vlan_tci(uint16_t v) noexcept { set(FieldId::kVlanTci, v); }

  constexpr Ipv4 nw_src() const noexcept {
    return Ipv4(static_cast<uint32_t>(get(FieldId::kNwSrc)));
  }
  constexpr void set_nw_src(Ipv4 a) noexcept { set(FieldId::kNwSrc, a.value()); }
  constexpr Ipv4 nw_dst() const noexcept {
    return Ipv4(static_cast<uint32_t>(get(FieldId::kNwDst)));
  }
  constexpr void set_nw_dst(Ipv4 a) noexcept { set(FieldId::kNwDst, a.value()); }
  constexpr uint8_t nw_proto() const noexcept {
    return static_cast<uint8_t>(get(FieldId::kNwProto));
  }
  constexpr void set_nw_proto(uint8_t v) noexcept { set(FieldId::kNwProto, v); }
  constexpr uint8_t nw_ttl() const noexcept {
    return static_cast<uint8_t>(get(FieldId::kNwTtl));
  }
  constexpr void set_nw_ttl(uint8_t v) noexcept { set(FieldId::kNwTtl, v); }
  constexpr uint8_t nw_tos() const noexcept {
    return static_cast<uint8_t>(get(FieldId::kNwTos));
  }
  constexpr void set_nw_tos(uint8_t v) noexcept { set(FieldId::kNwTos, v); }
  constexpr uint16_t arp_op() const noexcept {
    return static_cast<uint16_t>(get(FieldId::kArpOp));
  }
  constexpr void set_arp_op(uint16_t v) noexcept { set(FieldId::kArpOp, v); }

  constexpr Ipv6 ipv6_src() const noexcept { return Ipv6(w[10], w[11]); }
  constexpr void set_ipv6_src(Ipv6 a) noexcept {
    w[10] = a.hi();
    w[11] = a.lo();
  }
  constexpr Ipv6 ipv6_dst() const noexcept { return Ipv6(w[12], w[13]); }
  constexpr void set_ipv6_dst(Ipv6 a) noexcept {
    w[12] = a.hi();
    w[13] = a.lo();
  }

  constexpr uint16_t tp_src() const noexcept {
    return static_cast<uint16_t>(get(FieldId::kTpSrc));
  }
  constexpr void set_tp_src(uint16_t v) noexcept { set(FieldId::kTpSrc, v); }
  constexpr uint16_t tp_dst() const noexcept {
    return static_cast<uint16_t>(get(FieldId::kTpDst));
  }
  constexpr void set_tp_dst(uint16_t v) noexcept { set(FieldId::kTpDst, v); }
  constexpr uint16_t tcp_flags() const noexcept {
    return static_cast<uint16_t>(get(FieldId::kTcpFlags));
  }
  constexpr void set_tcp_flags(uint16_t v) noexcept {
    set(FieldId::kTcpFlags, v);
  }

  // Full-key hash (used by the microflow cache).
  uint64_t hash(uint64_t basis = 0) const noexcept {
    return hash_words(w.data(), kFlowWords, basis);
  }

  std::string to_string() const;
};

// Which bits of a FlowKey must match. Also used as the "consulted bits"
// accumulator during megaflow generation (FlowWildcards below).
struct FlowMask : FlowWords {
  // Marks a whole field as exact-match.
  constexpr void set_exact(FieldId f) noexcept {
    const FieldInfo& fi = field_info(f);
    if (fi.width == 128) {
      w[fi.word] = ~uint64_t{0};
      w[fi.word + 1] = ~uint64_t{0};
      return;
    }
    if (fi.width == 64) {
      w[fi.word] = ~uint64_t{0};
      return;
    }
    const uint64_t mask = (uint64_t{1} << fi.width) - 1;
    w[fi.word] |= mask << fi.shift;
  }

  // Marks the leading `len` bits of a field as matched (CIDR-style). Works
  // for any field; most useful for nw_src/nw_dst/ipv6_*/tp_*.
  constexpr void set_prefix(FieldId f, unsigned len) noexcept {
    const FieldInfo& fi = field_info(f);
    if (fi.width == 128) {
      if (len >= 64) {
        w[fi.word] = ~uint64_t{0};
        const unsigned rest = len - 64;
        if (rest > 0)
          w[fi.word + 1] |= ~uint64_t{0} << (64 - rest);
      } else if (len > 0) {
        w[fi.word] |= ~uint64_t{0} << (64 - len);
      }
      return;
    }
    if (len == 0) return;
    const uint64_t field_bits =
        len >= fi.width ? ((fi.width == 64) ? ~uint64_t{0}
                                            : ((uint64_t{1} << fi.width) - 1))
                        : (((uint64_t{1} << len) - 1) << (fi.width - len));
    w[fi.word] |= field_bits << fi.shift;
  }

  // Restricts a field's mask to at most its leading `len` bits; used by
  // prefix tracking to widen megaflows (paper §5.4).
  constexpr void clamp_prefix(FieldId f, unsigned len) noexcept {
    const FieldInfo& fi = field_info(f);
    FlowMask keep;
    keep.set_prefix(f, len);
    if (fi.width == 128) {
      w[fi.word] &= keep.w[fi.word];
      w[fi.word + 1] &= keep.w[fi.word + 1];
      return;
    }
    const uint64_t field_mask =
        (fi.width == 64 ? ~uint64_t{0} : ((uint64_t{1} << fi.width) - 1))
        << fi.shift;
    w[fi.word] = (w[fi.word] & ~field_mask) |
                 (w[fi.word] & keep.w[fi.word] & field_mask);
  }

  // Prefix length of a field's mask, or -1 if the mask is not a prefix.
  int prefix_len(FieldId f) const noexcept;

  // True if the field is matched at all (any bit set).
  constexpr bool has_field(FieldId f) const noexcept {
    const FieldInfo& fi = field_info(f);
    if (fi.width == 128)
      return w[fi.word] != 0 || w[fi.word + 1] != 0;
    const uint64_t mask =
        (fi.width == 64 ? ~uint64_t{0} : ((uint64_t{1} << fi.width) - 1))
        << fi.shift;
    return (w[fi.word] & mask) != 0;
  }

  // True if the field is matched exactly (all bits set).
  constexpr bool is_exact(FieldId f) const noexcept {
    const FieldInfo& fi = field_info(f);
    if (fi.width == 128)
      return w[fi.word] == ~uint64_t{0} && w[fi.word + 1] == ~uint64_t{0};
    const uint64_t mask =
        (fi.width == 64 ? ~uint64_t{0} : ((uint64_t{1} << fi.width) - 1))
        << fi.shift;
    return (w[fi.word] & mask) == mask;
  }

  constexpr void unite(const FlowMask& o) noexcept {
    for (size_t i = 0; i < kFlowWords; ++i) w[i] |= o.w[i];
  }

  // Removes all of a field's bits from the mask.
  constexpr void clear_field(FieldId f) noexcept {
    FlowMask m;
    m.set_exact(f);
    for (size_t i = 0; i < kFlowWords; ++i) w[i] &= ~m.w[i];
  }

  // Last stage that has any mask bit, as [0, kNumStages). A fully empty mask
  // reports stage 0 (a catch-all tuple still occupies one hash table).
  constexpr size_t last_stage() const noexcept {
    for (size_t s = kNumStages; s-- > 1;) {
      for (size_t i = kStageEnd[s - 1]; i < kStageEnd[s]; ++i)
        if (w[i] != 0) return s;
    }
    return 0;
  }

  std::string to_string() const;
};

// --- Masked operations (the heart of tuple space search) -------------------

// True iff `pkt` masked by `mask` equals `value` (which must be pre-masked).
inline bool masked_equal(const FlowKey& pkt, const FlowWords& value,
                         const FlowMask& mask) noexcept {
  uint64_t diff = 0;
  for (size_t i = 0; i < kFlowWords; ++i)
    diff |= (pkt.w[i] & mask.w[i]) ^ value.w[i];
  return diff == 0;
}

// Hash of `pkt & mask` over words [from, to). Incremental: pass the result
// of hashing [0, from) as `basis` to extend (staged lookup, §5.3).
inline uint64_t hash_masked_range(const FlowKey& pkt, const FlowMask& mask,
                                  size_t from, size_t to,
                                  uint64_t basis) noexcept {
  uint64_t h = basis;
  for (size_t i = from; i < to; ++i) h = hash_add64(h, pkt.w[i] & mask.w[i]);
  return h;
}

// Applies a mask to a key in place (used to canonicalize rule keys).
inline void apply_mask(FlowKey& key, const FlowMask& mask) noexcept {
  for (size_t i = 0; i < kFlowWords; ++i) key.w[i] &= mask.w[i];
}

// During translation, tracks which key bits were consulted; becomes the
// generated megaflow's mask (paper §4.2).
using FlowWildcards = FlowMask;

}  // namespace ovs
