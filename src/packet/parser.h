// Byte-level frame parsing and construction.
//
// A real datapath extracts the flow key from raw frames; we implement the
// same extraction (Ethernet, 802.1Q, ARP, IPv4 with options, IPv6, TCP, UDP,
// ICMP, ICMPv6) so that the flow-key model is grounded in actual packet
// formats, and provide frame builders for tests and examples.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "packet/packet.h"

namespace ovs {

using RawFrame = std::vector<uint8_t>;

// Parses a frame into a flow key. Returns std::nullopt for frames too short
// to contain the headers they advertise. `in_port` is recorded as metadata.
std::optional<FlowKey> parse_frame(std::span<const uint8_t> frame,
                                   uint32_t in_port);

// Convenience: parse into a Packet (key + wire size).
std::optional<Packet> parse_to_packet(std::span<const uint8_t> frame,
                                      uint32_t in_port);

// --- Frame builders ---------------------------------------------------------

struct TcpParams {
  EthAddr eth_src, eth_dst;
  Ipv4 ip_src, ip_dst;
  uint16_t sport = 0, dport = 0;
  uint16_t flags = 0x10;  // ACK
  uint8_t ttl = 64;
  uint8_t tos = 0;
  uint16_t payload_len = 0;
  std::optional<uint16_t> vlan;  // 802.1Q VID if tagged
};

RawFrame build_tcp_ipv4(const TcpParams& p);

struct UdpParams {
  EthAddr eth_src, eth_dst;
  Ipv4 ip_src, ip_dst;
  uint16_t sport = 0, dport = 0;
  uint8_t ttl = 64;
  uint16_t payload_len = 0;
  std::optional<uint16_t> vlan;
};

RawFrame build_udp_ipv4(const UdpParams& p);

struct IcmpParams {
  EthAddr eth_src, eth_dst;
  Ipv4 ip_src, ip_dst;
  uint8_t type = 8, code = 0;  // echo request
  uint8_t ttl = 64;
};

RawFrame build_icmp_ipv4(const IcmpParams& p);

struct ArpParams {
  EthAddr eth_src, eth_dst = kEthBroadcast;
  uint16_t op = 1;  // request
  Ipv4 spa, tpa;
};

RawFrame build_arp(const ArpParams& p);

struct TcpV6Params {
  EthAddr eth_src, eth_dst;
  Ipv6 ip_src, ip_dst;
  uint16_t sport = 0, dport = 0;
  uint16_t flags = 0x10;
  uint8_t hlim = 64;
};

RawFrame build_tcp_ipv6(const TcpV6Params& p);

}  // namespace ovs
