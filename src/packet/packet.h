// A packet as seen by the datapath: the parsed flow key plus wire size.
//
// Workload generators construct these directly; the byte-level parser
// (parser.h) produces them from raw frames, which is what a real datapath
// would do on receive.
#pragma once

#include <cstdint>

#include "packet/flow_key.h"

namespace ovs {

struct Packet {
  FlowKey key;
  uint32_t size_bytes = 64;  // wire length including Ethernet header
};

}  // namespace ovs
