// Address value types: Ethernet MAC, IPv4, IPv6.
//
// These are plain value types (C.10: prefer concrete types) with parsing and
// formatting helpers used by examples, tests, and the flow formatter.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>

namespace ovs {

// 48-bit Ethernet address stored in the low 48 bits of a uint64_t.
class EthAddr {
 public:
  constexpr EthAddr() noexcept = default;
  constexpr explicit EthAddr(uint64_t bits) noexcept
      : bits_(bits & 0xffffffffffffULL) {}
  constexpr EthAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d, uint8_t e,
                    uint8_t f) noexcept
      : bits_((uint64_t{a} << 40) | (uint64_t{b} << 32) | (uint64_t{c} << 24) |
              (uint64_t{d} << 16) | (uint64_t{e} << 8) | uint64_t{f}) {}

  constexpr uint64_t bits() const noexcept { return bits_; }
  constexpr bool is_broadcast() const noexcept {
    return bits_ == 0xffffffffffffULL;
  }
  constexpr bool is_multicast() const noexcept {
    return (bits_ & (1ULL << 40)) != 0;
  }

  std::string to_string() const {
    char buf[18];
    std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                  unsigned(bits_ >> 40) & 0xff, unsigned(bits_ >> 32) & 0xff,
                  unsigned(bits_ >> 24) & 0xff, unsigned(bits_ >> 16) & 0xff,
                  unsigned(bits_ >> 8) & 0xff, unsigned(bits_) & 0xff);
    return buf;
  }

  constexpr bool operator==(const EthAddr&) const noexcept = default;

 private:
  uint64_t bits_ = 0;
};

inline constexpr EthAddr kEthBroadcast{0xffffffffffffULL};

// IPv4 address in host byte order.
class Ipv4 {
 public:
  constexpr Ipv4() noexcept = default;
  constexpr explicit Ipv4(uint32_t v) noexcept : v_(v) {}
  constexpr Ipv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) noexcept
      : v_((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
           uint32_t{d}) {}

  constexpr uint32_t value() const noexcept { return v_; }

  std::string to_string() const {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (v_ >> 24) & 0xff,
                  (v_ >> 16) & 0xff, (v_ >> 8) & 0xff, v_ & 0xff);
    return buf;
  }

  constexpr bool operator==(const Ipv4&) const noexcept = default;

 private:
  uint32_t v_ = 0;
};

// /len CIDR mask over a 32-bit value.
constexpr uint32_t ipv4_prefix_mask(unsigned len) noexcept {
  return len == 0 ? 0u : ~uint32_t{0} << (32 - len);
}

// IPv6 address as two host-order 64-bit halves (hi = first 8 bytes).
class Ipv6 {
 public:
  constexpr Ipv6() noexcept = default;
  constexpr Ipv6(uint64_t hi, uint64_t lo) noexcept : hi_(hi), lo_(lo) {}

  constexpr uint64_t hi() const noexcept { return hi_; }
  constexpr uint64_t lo() const noexcept { return lo_; }

  std::string to_string() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llx:%llx:%llx:%llx:%llx:%llx:%llx:%llx",
                  (unsigned long long)(hi_ >> 48) & 0xffff,
                  (unsigned long long)(hi_ >> 32) & 0xffff,
                  (unsigned long long)(hi_ >> 16) & 0xffff,
                  (unsigned long long)hi_ & 0xffff,
                  (unsigned long long)(lo_ >> 48) & 0xffff,
                  (unsigned long long)(lo_ >> 32) & 0xffff,
                  (unsigned long long)(lo_ >> 16) & 0xffff,
                  (unsigned long long)lo_ & 0xffff);
    return buf;
  }

  constexpr bool operator==(const Ipv6&) const noexcept = default;

 private:
  uint64_t hi_ = 0;
  uint64_t lo_ = 0;
};

// Ethertypes and IP protocol numbers used across the library.
namespace ethertype {
inline constexpr uint16_t kIpv4 = 0x0800;
inline constexpr uint16_t kArp = 0x0806;
inline constexpr uint16_t kVlan = 0x8100;
inline constexpr uint16_t kIpv6 = 0x86dd;
}  // namespace ethertype

namespace ipproto {
inline constexpr uint8_t kIcmp = 1;
inline constexpr uint8_t kTcp = 6;
inline constexpr uint8_t kUdp = 17;
inline constexpr uint8_t kIcmpv6 = 58;
inline constexpr uint8_t kSctp = 132;
}  // namespace ipproto

}  // namespace ovs
