#include "packet/flow_key.h"

#include <bit>
#include <sstream>

namespace ovs {

int FlowMask::prefix_len(FieldId f) const noexcept {
  const FieldInfo& fi = field_info(f);
  if (fi.width == 128) {
    const uint64_t hi = w[fi.word];
    const uint64_t lo = w[fi.word + 1];
    // Must be 1-bits followed by 0-bits across the 128-bit value.
    if (hi == ~uint64_t{0}) {
      const int lz = lo == 0 ? 64 : std::countl_zero(~lo);
      const uint64_t expect =
          lz == 0 ? 0 : (lz == 64 ? ~uint64_t{0} : ~uint64_t{0} << (64 - lz));
      return lo == expect ? 64 + lz : -1;
    }
    if (lo != 0) return -1;
    const int ones = std::countl_one(hi);
    const uint64_t expect =
        ones == 0 ? 0
                  : (ones == 64 ? ~uint64_t{0} : ~uint64_t{0} << (64 - ones));
    return hi == expect ? ones : -1;
  }
  const uint64_t field =
      (fi.width == 64) ? w[fi.word]
                       : ((w[fi.word] >> fi.shift) &
                          ((uint64_t{1} << fi.width) - 1));
  // Count leading ones within the field width.
  unsigned ones = 0;
  while (ones < fi.width && ((field >> (fi.width - 1 - ones)) & 1) != 0)
    ++ones;
  // The remainder must be zero for a prefix.
  const uint64_t tail_mask =
      ones >= fi.width ? 0 : ((uint64_t{1} << (fi.width - ones)) - 1);
  return (field & tail_mask) == 0 ? static_cast<int>(ones) : -1;
}

namespace {

void append_field(std::ostringstream& os, bool& first, const char* name,
                  const std::string& value) {
  if (!first) os << ",";
  first = false;
  os << name << "=" << value;
}

}  // namespace

std::string FlowKey::to_string() const {
  std::ostringstream os;
  bool first = true;
  if (in_port() != 0) append_field(os, first, "in_port",
                                   std::to_string(in_port()));
  if (tun_id() != 0) append_field(os, first, "tun_id",
                                  std::to_string(tun_id()));
  if (metadata() != 0)
    append_field(os, first, "metadata", std::to_string(metadata()));
  for (unsigned i = 0; i < 4; ++i)
    if (reg(i) != 0)
      append_field(os, first, ("reg" + std::to_string(i)).c_str(),
                   std::to_string(reg(i)));
  append_field(os, first, "dl_src", eth_src().to_string());
  append_field(os, first, "dl_dst", eth_dst().to_string());
  char et[8];
  std::snprintf(et, sizeof et, "0x%04x", eth_type());
  append_field(os, first, "dl_type", et);
  if (eth_type() == ethertype::kIpv4) {
    append_field(os, first, "nw_src", nw_src().to_string());
    append_field(os, first, "nw_dst", nw_dst().to_string());
    append_field(os, first, "nw_proto", std::to_string(nw_proto()));
  } else if (eth_type() == ethertype::kIpv6) {
    append_field(os, first, "ipv6_src", ipv6_src().to_string());
    append_field(os, first, "ipv6_dst", ipv6_dst().to_string());
    append_field(os, first, "nw_proto", std::to_string(nw_proto()));
  } else if (eth_type() == ethertype::kArp) {
    append_field(os, first, "arp_op", std::to_string(arp_op()));
  }
  if (nw_proto() == ipproto::kTcp || nw_proto() == ipproto::kUdp ||
      nw_proto() == ipproto::kSctp) {
    append_field(os, first, "tp_src", std::to_string(tp_src()));
    append_field(os, first, "tp_dst", std::to_string(tp_dst()));
  } else if (nw_proto() == ipproto::kIcmp) {
    append_field(os, first, "icmp_type", std::to_string(tp_src()));
    append_field(os, first, "icmp_code", std::to_string(tp_dst()));
  }
  return os.str();
}

std::string FlowMask::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (size_t i = 0; i < kNumFields; ++i) {
    const auto f = static_cast<FieldId>(i);
    if (!has_field(f)) continue;
    const int plen = prefix_len(f);
    std::string v;
    if (is_exact(f)) {
      v = "exact";
    } else if (plen >= 0) {
      v = "/" + std::to_string(plen);
    } else {
      v = "partial";
    }
    append_field(os, first, field_info(f).name, v);
  }
  if (first) os << "(empty)";
  return os.str();
}

}  // namespace ovs
