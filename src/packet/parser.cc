#include "packet/parser.h"

#include <cstring>

namespace ovs {

namespace {

// Big-endian readers/writers.
uint16_t rd16(const uint8_t* p) noexcept {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}
uint32_t rd32(const uint8_t* p) noexcept {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}
uint64_t rd48(const uint8_t* p) noexcept {
  return (uint64_t{rd16(p)} << 32) | rd32(p + 2);
}
uint64_t rd64(const uint8_t* p) noexcept {
  return (uint64_t{rd32(p)} << 32) | rd32(p + 4);
}

void wr16(RawFrame& f, uint16_t v) {
  f.push_back(static_cast<uint8_t>(v >> 8));
  f.push_back(static_cast<uint8_t>(v));
}
void wr32(RawFrame& f, uint32_t v) {
  wr16(f, static_cast<uint16_t>(v >> 16));
  wr16(f, static_cast<uint16_t>(v));
}
void wr48(RawFrame& f, uint64_t v) {
  wr16(f, static_cast<uint16_t>(v >> 32));
  wr32(f, static_cast<uint32_t>(v));
}
void wr64(RawFrame& f, uint64_t v) {
  wr32(f, static_cast<uint32_t>(v >> 32));
  wr32(f, static_cast<uint32_t>(v));
}

void write_eth(RawFrame& f, EthAddr dst, EthAddr src,
               std::optional<uint16_t> vlan, uint16_t type) {
  wr48(f, dst.bits());
  wr48(f, src.bits());
  if (vlan) {
    wr16(f, ethertype::kVlan);
    wr16(f, *vlan & 0x0fff);
  }
  wr16(f, type);
}

void write_ipv4(RawFrame& f, Ipv4 src, Ipv4 dst, uint8_t proto, uint8_t ttl,
                uint8_t tos, uint16_t l4_len) {
  f.push_back(0x45);  // version 4, IHL 5
  f.push_back(tos);
  wr16(f, static_cast<uint16_t>(20 + l4_len));
  wr16(f, 0);       // id
  wr16(f, 0x4000);  // DF, no fragment
  f.push_back(ttl);
  f.push_back(proto);
  wr16(f, 0);  // checksum (unverified by the simulated datapath)
  wr32(f, src.value());
  wr32(f, dst.value());
}

}  // namespace

std::optional<FlowKey> parse_frame(std::span<const uint8_t> frame,
                                   uint32_t in_port) {
  FlowKey key;
  key.set_in_port(in_port);
  const uint8_t* p = frame.data();
  size_t n = frame.size();
  if (n < 14) return std::nullopt;

  key.set_eth_dst(EthAddr(rd48(p)));
  key.set_eth_src(EthAddr(rd48(p + 6)));
  uint16_t type = rd16(p + 12);
  p += 14;
  n -= 14;

  if (type == ethertype::kVlan) {
    if (n < 4) return std::nullopt;
    key.set_vlan_tci(rd16(p));
    type = rd16(p + 2);
    p += 4;
    n -= 4;
  }
  key.set_eth_type(type);

  if (type == ethertype::kArp) {
    if (n < 28) return std::nullopt;
    key.set_arp_op(rd16(p + 6));
    key.set_nw_src(Ipv4(rd32(p + 14)));  // sender protocol address
    key.set_nw_dst(Ipv4(rd32(p + 24)));  // target protocol address
    return key;
  }

  uint8_t proto = 0;
  if (type == ethertype::kIpv4) {
    if (n < 20) return std::nullopt;
    const unsigned ihl = (p[0] & 0x0f) * 4u;
    if (ihl < 20 || n < ihl) return std::nullopt;
    key.set_nw_tos(p[1]);
    const uint16_t frag = rd16(p + 6);
    if ((frag & 0x3fff) != 0) key.set(FieldId::kNwFrag, 1);
    key.set_nw_ttl(p[8]);
    proto = p[9];
    key.set_nw_proto(proto);
    key.set_nw_src(Ipv4(rd32(p + 12)));
    key.set_nw_dst(Ipv4(rd32(p + 16)));
    p += ihl;
    n -= ihl;
    // A non-first fragment has no L4 header.
    if ((frag & 0x1fff) != 0) return key;
  } else if (type == ethertype::kIpv6) {
    if (n < 40) return std::nullopt;
    key.set_nw_tos(static_cast<uint8_t>(((p[0] & 0x0f) << 4) | (p[1] >> 4)));
    proto = p[6];
    key.set_nw_proto(proto);
    key.set_nw_ttl(p[7]);
    key.set_ipv6_src(Ipv6(rd64(p + 8), rd64(p + 16)));
    key.set_ipv6_dst(Ipv6(rd64(p + 24), rd64(p + 32)));
    p += 40;
    n -= 40;
  } else {
    return key;  // non-IP: L2-only key
  }

  switch (proto) {
    case ipproto::kTcp:
      if (n < 20) return std::nullopt;
      key.set_tp_src(rd16(p));
      key.set_tp_dst(rd16(p + 2));
      key.set_tcp_flags(static_cast<uint16_t>(rd16(p + 12) & 0x0fff));
      break;
    case ipproto::kUdp:
      if (n < 8) return std::nullopt;
      key.set_tp_src(rd16(p));
      key.set_tp_dst(rd16(p + 2));
      break;
    case ipproto::kIcmp:
    case ipproto::kIcmpv6:
      if (n < 4) return std::nullopt;
      key.set_tp_src(p[0]);  // type
      key.set_tp_dst(p[1]);  // code
      break;
    default:
      break;
  }
  return key;
}

std::optional<Packet> parse_to_packet(std::span<const uint8_t> frame,
                                      uint32_t in_port) {
  auto key = parse_frame(frame, in_port);
  if (!key) return std::nullopt;
  Packet pkt;
  pkt.key = *key;
  pkt.size_bytes = static_cast<uint32_t>(frame.size());
  return pkt;
}

RawFrame build_tcp_ipv4(const TcpParams& p) {
  RawFrame f;
  write_eth(f, p.eth_dst, p.eth_src, p.vlan, ethertype::kIpv4);
  write_ipv4(f, p.ip_src, p.ip_dst, ipproto::kTcp, p.ttl, p.tos,
             static_cast<uint16_t>(20 + p.payload_len));
  wr16(f, p.sport);
  wr16(f, p.dport);
  wr32(f, 1);  // seq
  wr32(f, 1);  // ack
  wr16(f, static_cast<uint16_t>(0x5000 | (p.flags & 0x0fff)));
  wr16(f, 65535);  // window
  wr16(f, 0);      // checksum
  wr16(f, 0);      // urgent
  f.insert(f.end(), p.payload_len, 0xab);
  return f;
}

RawFrame build_udp_ipv4(const UdpParams& p) {
  RawFrame f;
  write_eth(f, p.eth_dst, p.eth_src, p.vlan, ethertype::kIpv4);
  write_ipv4(f, p.ip_src, p.ip_dst, ipproto::kUdp, p.ttl, 0,
             static_cast<uint16_t>(8 + p.payload_len));
  wr16(f, p.sport);
  wr16(f, p.dport);
  wr16(f, static_cast<uint16_t>(8 + p.payload_len));
  wr16(f, 0);  // checksum
  f.insert(f.end(), p.payload_len, 0xcd);
  return f;
}

RawFrame build_icmp_ipv4(const IcmpParams& p) {
  RawFrame f;
  write_eth(f, p.eth_dst, p.eth_src, std::nullopt, ethertype::kIpv4);
  write_ipv4(f, p.ip_src, p.ip_dst, ipproto::kIcmp, p.ttl, 0, 8);
  f.push_back(p.type);
  f.push_back(p.code);
  wr16(f, 0);  // checksum
  wr32(f, 0);  // rest of header
  return f;
}

RawFrame build_arp(const ArpParams& p) {
  RawFrame f;
  write_eth(f, p.eth_dst, p.eth_src, std::nullopt, ethertype::kArp);
  wr16(f, 1);  // htype ethernet
  wr16(f, ethertype::kIpv4);
  f.push_back(6);  // hlen
  f.push_back(4);  // plen
  wr16(f, p.op);
  wr48(f, p.eth_src.bits());
  wr32(f, p.spa.value());
  wr48(f, p.op == 2 ? p.eth_dst.bits() : 0);
  wr32(f, p.tpa.value());
  return f;
}

RawFrame build_tcp_ipv6(const TcpV6Params& p) {
  RawFrame f;
  write_eth(f, p.eth_dst, p.eth_src, std::nullopt, ethertype::kIpv6);
  wr32(f, 0x60000000);  // version 6, tc 0, flow label 0
  wr16(f, 20);          // payload length (TCP header)
  f.push_back(ipproto::kTcp);
  f.push_back(p.hlim);
  wr64(f, p.ip_src.hi());
  wr64(f, p.ip_src.lo());
  wr64(f, p.ip_dst.hi());
  wr64(f, p.ip_dst.lo());
  wr16(f, p.sport);
  wr16(f, p.dport);
  wr32(f, 1);
  wr32(f, 1);
  wr16(f, static_cast<uint16_t>(0x5000 | (p.flags & 0x0fff)));
  wr16(f, 65535);
  wr16(f, 0);
  wr16(f, 0);
  return f;
}

}  // namespace ovs
