// Match = (pre-masked key, mask): what a classifier rule matches on, and a
// fluent builder so rule tables in tests/examples read like ovs-ofctl syntax.
#pragma once

#include <string>

#include "packet/flow_key.h"

namespace ovs {

struct Match {
  FlowKey key;    // always pre-masked (normalize() enforces it)
  FlowMask mask;

  bool matches(const FlowKey& pkt) const noexcept {
    return masked_equal(pkt, key, mask);
  }

  void normalize() noexcept { apply_mask(key, mask); }

  bool operator==(const Match&) const noexcept = default;

  std::string to_string() const {
    return "match{" + mask.to_string() + " : " + key.to_string() + "}";
  }
};

// Fluent builder. Example:
//   Match m = MatchBuilder().eth_type_ipv4().nw_dst_prefix({9,1,1,1}, 24);
class MatchBuilder {
 public:
  MatchBuilder() = default;

  MatchBuilder& in_port(uint32_t p) { return exact(FieldId::kInPort, p); }
  MatchBuilder& tun_id(uint64_t v) { return exact(FieldId::kTunId, v); }
  MatchBuilder& metadata(uint64_t v) { return exact(FieldId::kMetadata, v); }
  MatchBuilder& reg(unsigned i, uint32_t v) {
    return exact(
        static_cast<FieldId>(static_cast<unsigned>(FieldId::kReg0) + i), v);
  }
  MatchBuilder& ct_state(uint8_t v) { return exact(FieldId::kCtState, v); }

  MatchBuilder& eth_src(EthAddr a) { return exact(FieldId::kEthSrc, a.bits()); }
  MatchBuilder& eth_dst(EthAddr a) { return exact(FieldId::kEthDst, a.bits()); }
  MatchBuilder& eth_type(uint16_t t) { return exact(FieldId::kEthType, t); }
  MatchBuilder& eth_type_ipv4() { return eth_type(ethertype::kIpv4); }
  MatchBuilder& eth_type_ipv6() { return eth_type(ethertype::kIpv6); }
  MatchBuilder& eth_type_arp() { return eth_type(ethertype::kArp); }
  MatchBuilder& vlan_tci(uint16_t v) { return exact(FieldId::kVlanTci, v); }

  MatchBuilder& nw_src(Ipv4 a) { return exact(FieldId::kNwSrc, a.value()); }
  MatchBuilder& nw_dst(Ipv4 a) { return exact(FieldId::kNwDst, a.value()); }
  MatchBuilder& nw_src_prefix(Ipv4 a, unsigned len) {
    return prefix(FieldId::kNwSrc, a.value(), len);
  }
  MatchBuilder& nw_dst_prefix(Ipv4 a, unsigned len) {
    return prefix(FieldId::kNwDst, a.value(), len);
  }
  MatchBuilder& nw_proto(uint8_t p) { return exact(FieldId::kNwProto, p); }
  MatchBuilder& nw_ttl(uint8_t v) { return exact(FieldId::kNwTtl, v); }
  MatchBuilder& nw_tos(uint8_t v) { return exact(FieldId::kNwTos, v); }
  MatchBuilder& arp_op(uint16_t v) { return exact(FieldId::kArpOp, v); }

  MatchBuilder& ipv6_src(Ipv6 a) {
    m_.key.set_ipv6_src(a);
    m_.mask.set_exact(FieldId::kIpv6Src);
    return *this;
  }
  MatchBuilder& ipv6_dst(Ipv6 a) {
    m_.key.set_ipv6_dst(a);
    m_.mask.set_exact(FieldId::kIpv6Dst);
    return *this;
  }
  MatchBuilder& ipv6_dst_prefix(Ipv6 a, unsigned len) {
    m_.key.set_ipv6_dst(a);
    m_.mask.set_prefix(FieldId::kIpv6Dst, len);
    return *this;
  }
  MatchBuilder& ipv6_src_prefix(Ipv6 a, unsigned len) {
    m_.key.set_ipv6_src(a);
    m_.mask.set_prefix(FieldId::kIpv6Src, len);
    return *this;
  }

  MatchBuilder& tp_src(uint16_t p) { return exact(FieldId::kTpSrc, p); }
  MatchBuilder& tp_dst(uint16_t p) { return exact(FieldId::kTpDst, p); }
  MatchBuilder& tp_src_prefix(uint16_t p, unsigned len) {
    return prefix(FieldId::kTpSrc, p, len);
  }
  MatchBuilder& tp_dst_prefix(uint16_t p, unsigned len) {
    return prefix(FieldId::kTpDst, p, len);
  }
  MatchBuilder& tcp_flags(uint16_t f) { return exact(FieldId::kTcpFlags, f); }
  MatchBuilder& icmp_type(uint8_t t) { return exact(FieldId::kTpSrc, t); }
  MatchBuilder& icmp_code(uint8_t c) { return exact(FieldId::kTpDst, c); }

  // Common shorthands matching ovs-ofctl keywords.
  MatchBuilder& tcp() { return eth_type_ipv4().nw_proto(ipproto::kTcp); }
  MatchBuilder& udp() { return eth_type_ipv4().nw_proto(ipproto::kUdp); }
  MatchBuilder& icmp() { return eth_type_ipv4().nw_proto(ipproto::kIcmp); }
  MatchBuilder& arp() { return eth_type_arp(); }
  MatchBuilder& ip() { return eth_type_ipv4(); }

  Match build() const {
    Match m = m_;
    m.normalize();
    return m;
  }
  operator Match() const { return build(); }  // NOLINT(google-explicit-*)

 private:
  MatchBuilder& exact(FieldId f, uint64_t v) {
    m_.key.set(f, v);
    m_.mask.set_exact(f);
    return *this;
  }
  MatchBuilder& prefix(FieldId f, uint64_t v, unsigned len) {
    m_.key.set(f, v);
    m_.mask.set_prefix(f, len);
    return *this;
  }

  Match m_;
};

}  // namespace ovs
