#include "net/fabric.h"

#include <cassert>

namespace ovs {

Fabric::Fabric(const Config& cfg) : cfg_(cfg) {
  switches_.reserve(cfg.n_hypervisors);
  next_port_.assign(cfg.n_hypervisors, 1);
  for (size_t h = 0; h < cfg.n_hypervisors; ++h) {
    auto sw = std::make_unique<Switch>(cfg.switch_config);
    // Tunnel ports toward every peer.
    for (size_t peer = 0; peer < cfg.n_hypervisors; ++peer)
      if (peer != h) sw->add_port(tunnel_port(peer));
    // Output relay: tunnel transmissions are queued for peer delivery.
    const size_t hv = h;
    sw->set_output_handler([this, hv](uint32_t port, const Packet& pkt) {
      if (hv == active_hv_) pending_.push_back({hv, port, pkt});
    });
    switches_.push_back(std::move(sw));
  }

  // Place VMs round-robin across hypervisors.
  size_t vm_id = 0;
  for (uint64_t tenant = 1; tenant <= cfg.n_tenants; ++tenant) {
    for (size_t h = 0; h < cfg.n_hypervisors; ++h) {
      for (size_t v = 0; v < cfg.vms_per_tenant_per_hv; ++v) {
        Vm vm;
        vm.id = vm_id++;
        vm.hypervisor = h;
        vm.port = next_free_port(h);
        vm.tenant = tenant;
        vm.mac = EthAddr(0x02, 0x10, static_cast<uint8_t>(tenant),
                         static_cast<uint8_t>(h), static_cast<uint8_t>(v),
                         0x01);
        vm.ip = Ipv4(10, static_cast<uint8_t>(tenant),
                     static_cast<uint8_t>(h), static_cast<uint8_t>(v + 1));
        switches_[h]->add_port(vm.port);
        vms_.push_back(vm);
      }
    }
  }

  // Static pipeline parts: ingress classification, ACLs, and the L2/egress
  // tables which program_l2() (re)builds from VM locations.
  for (size_t h = 0; h < cfg.n_hypervisors; ++h) {
    Switch& sw = *switches_[h];
    FlowTable& ingress = sw.table(0);
    for (const Vm& vm : vms_)
      if (vm.hypervisor == h)
        ingress.add_flow(
            MatchBuilder().in_port(vm.port), 10,
            OfActions().set_field(FieldId::kMetadata, vm.tenant).resubmit(1));
    for (size_t peer = 0; peer < cfg.n_hypervisors; ++peer) {
      if (peer == h) continue;
      for (uint64_t tenant = 1; tenant <= cfg.n_tenants; ++tenant)
        ingress.add_flow(
            MatchBuilder().in_port(tunnel_port(peer)).tun_id(tenant), 10,
            OfActions().set_field(FieldId::kMetadata, tenant).resubmit(1));
    }
    FlowTable& acl = sw.table(2);
    for (uint64_t tenant = 1; tenant <= cfg.n_tenants; ++tenant) {
      if (tenant - 1 < cfg.acl_tenants)
        acl.add_flow(MatchBuilder().metadata(tenant).tcp().tp_dst(25), 20,
                     OfActions::drop());
      acl.add_flow(MatchBuilder().metadata(tenant), 1,
                   OfActions().resubmit(3));
    }
  }
  program_l2(0);
}

uint32_t Fabric::next_free_port(size_t hypervisor) {
  return next_port_[hypervisor]++;
}

void Fabric::program_l2(uint64_t now_ns) {
  (void)now_ns;
  for (size_t h = 0; h < switches_.size(); ++h) {
    Switch& sw = *switches_[h];
    FlowTable& l2 = sw.table(1);
    FlowTable& egress = sw.table(3);
    l2.clear();
    egress.clear();
    for (const Vm& vm : vms_) {
      // L2: destination MAC -> logical port: local VM port, or the tunnel
      // port toward the VM's hypervisor.
      const uint32_t logical_port =
          vm.hypervisor == h ? vm.port : tunnel_port(vm.hypervisor);
      l2.add_flow(MatchBuilder().metadata(vm.tenant).eth_dst(vm.mac), 10,
                  OfActions().set_reg(1, logical_port).resubmit(2));
      // Egress.
      if (vm.hypervisor == h) {
        egress.add_flow(MatchBuilder().reg(1, vm.port), 10,
                        OfActions().output(vm.port));
      } else {
        egress.add_flow(
            MatchBuilder().reg(1, tunnel_port(vm.hypervisor))
                .metadata(vm.tenant),
            10,
            OfActions().tunnel(tunnel_port(vm.hypervisor), vm.tenant));
      }
    }
  }
}

Fabric::Delivery Fabric::send(const Vm& src, const Vm& dst, uint16_t sport,
                              uint16_t dport, uint64_t now_ns,
                              uint8_t proto) {
  Packet p;
  p.key.set_in_port(src.port);
  p.key.set_eth_src(src.mac);
  p.key.set_eth_dst(dst.mac);
  p.key.set_eth_type(ethertype::kIpv4);
  p.key.set_nw_proto(proto);
  p.key.set_nw_src(src.ip);
  p.key.set_nw_dst(dst.ip);
  p.key.set_tp_src(sport);
  p.key.set_tp_dst(dport);
  p.size_bytes = 500;

  Delivery d;
  pending_.clear();
  active_hv_ = src.hypervisor;
  switches_[src.hypervisor]->inject(p, now_ns);
  switches_[src.hypervisor]->handle_upcalls(now_ns);

  // Relay tunnel transmissions between hypervisors; VM-port transmissions
  // are deliveries.
  for (size_t hops = 0; hops < 8; ++hops) {
    std::vector<PendingTx> batch;
    batch.swap(pending_);
    if (batch.empty()) break;
    for (PendingTx& tx : batch) {
      if (tx.port < 1000) {
        d.delivered = true;
        d.dst_hypervisor = tx.hypervisor;
        d.dst_port = tx.port;
        continue;
      }
      // A tunnel transmission: deliver to the peer. The receiver sees the
      // frame on ITS tunnel port facing the sender, with tun_id intact.
      const size_t peer = tx.port - 1000;
      assert(peer < switches_.size());
      Packet relay = tx.pkt;
      relay.key.set_in_port(tunnel_port(tx.hypervisor));
      ++d.tunnel_hops;
      active_hv_ = peer;
      switches_[peer]->inject(relay, now_ns);
      switches_[peer]->handle_upcalls(now_ns);
    }
  }
  return d;
}

void Fabric::migrate(size_t vm_id, size_t new_hypervisor, uint64_t now_ns) {
  assert(vm_id < vms_.size() && new_hypervisor < switches_.size());
  Vm& vm = vms_[vm_id];
  if (vm.hypervisor == new_hypervisor) return;
  // Detach from the old hypervisor.
  switches_[vm.hypervisor]->table(0).delete_flow(
      MatchBuilder().in_port(vm.port), 10);
  switches_[vm.hypervisor]->remove_port(vm.port);
  // Attach to the new one.
  vm.hypervisor = new_hypervisor;
  vm.port = next_free_port(new_hypervisor);
  switches_[new_hypervisor]->add_port(vm.port);
  switches_[new_hypervisor]->table(0).add_flow(
      MatchBuilder().in_port(vm.port), 10,
      OfActions().set_field(FieldId::kMetadata, vm.tenant).resubmit(1));
  // Controller reprograms the fleet's L2/egress tables.
  program_l2(now_ns);
}

void Fabric::tick(uint64_t now_ns) {
  for (auto& sw : switches_) sw->run_maintenance(now_ns);
}

size_t Fabric::total_flows() const {
  size_t n = 0;
  for (const auto& sw : switches_)
    n += const_cast<Switch&>(*sw).datapath().flow_count();
  return n;
}

}  // namespace ovs
