// A fabric of hypervisor switches joined by a tunnel mesh (§1-§2: network
// virtualization "leav[es] physical datacenter networks with transportation
// of IP tunneled packets between hypervisors"; "a single virtual switch
// [may] have thousands of virtual switches as its peers in a mesh of
// point-to-point IP tunnels").
//
// Each hypervisor runs a real Switch with an NVP-style 4-table pipeline:
//
//   table 0  ingress classification: VM port or (tunnel port, tun_id) ->
//            logical datapath id in metadata
//   table 1  per-tenant global L2: eth_dst -> reg1 = local port or the
//            tunnel port toward the VM's hypervisor
//   table 2  per-tenant ACLs
//   table 3  egress: reg1 -> output (local) or tunnel(port, tenant)
//
// Fabric::send() injects a packet at the source VM's hypervisor and relays
// tunnel outputs to the peer switches until delivery, so cross-hypervisor
// behaviour (including megaflow generation for tunneled traffic) is
// exercised end to end. migrate() relocates a VM and reprograms the fleet,
// the control-plane event whose cache-invalidation story §6 tells.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "vswitchd/switch.h"

namespace ovs {

class Fabric {
 public:
  struct Config {
    size_t n_hypervisors = 3;
    size_t n_tenants = 2;
    size_t vms_per_tenant_per_hv = 2;
    // Tenants with index < acl_tenants get an L4 ACL (drop tcp dst 25).
    size_t acl_tenants = 1;
    SwitchConfig switch_config;
  };

  struct Vm {
    size_t id = 0;
    size_t hypervisor = 0;
    uint32_t port = 0;  // port on its hypervisor's switch
    uint64_t tenant = 0;
    EthAddr mac;
    Ipv4 ip;
  };

  explicit Fabric(const Config& cfg);

  const std::vector<Vm>& vms() const noexcept { return vms_; }
  Switch& hypervisor(size_t i) { return *switches_[i]; }
  size_t n_hypervisors() const noexcept { return switches_.size(); }

  // Tunnel port on hypervisor `local` facing hypervisor `peer`.
  static uint32_t tunnel_port(size_t peer) {
    return 1000 + static_cast<uint32_t>(peer);
  }

  struct Delivery {
    bool delivered = false;
    size_t dst_hypervisor = 0;
    uint32_t dst_port = 0;
    size_t tunnel_hops = 0;
  };

  // Sends one TCP packet from src to dst (returns where it landed).
  Delivery send(const Vm& src, const Vm& dst, uint16_t sport, uint16_t dport,
                uint64_t now_ns, uint8_t proto = ipproto::kTcp);

  // Moves a VM to another hypervisor and reprograms every switch's L2
  // table, as the central controller would (§2: "virtual switches receive
  // forwarding state updates as VMs boot, migrate, and shut down").
  void migrate(size_t vm_id, size_t new_hypervisor, uint64_t now_ns);

  // Runs maintenance (revalidators etc.) on every hypervisor.
  void tick(uint64_t now_ns);

  // Total datapath flows across the fabric.
  size_t total_flows() const;

 private:
  void program_l2(uint64_t now_ns);
  uint32_t next_free_port(size_t hypervisor);

  Config cfg_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<Vm> vms_;
  std::vector<uint32_t> next_port_;  // per hypervisor

  // Relay state for the current send().
  struct PendingTx {
    size_t hypervisor;
    uint32_t port;
    Packet pkt;
  };
  std::vector<PendingTx> pending_;
  size_t active_hv_ = 0;
};

}  // namespace ovs
