// Switch-side control-plane agent (DESIGN.md §12).
//
// One CtrlAgent connects one vswitchd::Switch to whichever controller the
// discovery layer currently believes in. The agent owns the switch's half of
// the reliable channel and implements the failure semantics the tests pin
// down:
//
//   * fail-standalone — the agent's connection state NEVER gates the
//     datapath: on controller loss (echo misses or a dead channel) the agent
//     goes kStandalone and the switch keeps forwarding from its installed
//     tables and megaflow cache, exactly like OVS's fail-mode=standalone.
//     Reconnection is driven purely by discovery's leader belief.
//
//   * idempotent flow-mods — every applied flow-mod xid is remembered;
//     redelivered mods (wire duplicates, or a resync replaying history after
//     a reconnect) are applied at most once. During a resync the dedup is
//     bypassed — replayed adds/deletes are re-applied verbatim (both are
//     idempotent at the flow-table level), because a rule the agent once
//     added may since have been deleted by an unreplicated mod and must come
//     back.
//
//   * resync + prune — a sync_begin starts recording the replayed program;
//     the closing barrier diffs the switch's installed rules against what
//     the replay produces and deletes the extras (rules a dead master
//     pushed beyond what it replicated to the standby), then forces a full
//     revalidation pass so the datapath's megaflow cache is re-derived from
//     the reconciled tables before the barrier is acked.
//
//   * stale-master fencing — hello/flow-mod/barrier below the highest
//     role_generation ever seen are dropped, so a deposed-but-alive master
//     cannot program the switch.
//
// Barrier replies are sent only after every earlier mod on the channel has
// been applied (channel ordering + the handler being synchronous makes this
// structural) — and after the prune/revalidation when the barrier closes a
// resync.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "ctrl/channel.h"
#include "ctrl/ctrl_msg.h"
#include "ctrl/discovery.h"
#include "ctrl/transport.h"

namespace ovs {

class Switch;

struct CtrlAgentConfig {
  uint32_t id = 0;
  ChannelConfig channel;
  FaultInjector* fault = nullptr;          // kCtrlConnReset on our sends
  uint64_t echo_interval_ns = 50 * kMillisecond;
  size_t echo_miss_limit = 4;              // unanswered echoes -> standalone
};

enum class AgentState : uint8_t { kStandalone, kConnecting, kConnected };

inline const char* agent_state_name(AgentState s) noexcept {
  switch (s) {
    case AgentState::kStandalone: return "standalone";
    case AgentState::kConnecting: return "connecting";
    case AgentState::kConnected: return "connected";
  }
  return "?";
}

class CtrlAgent {
 public:
  CtrlAgent(CtrlTransport* net, Switch* sw, CtrlAgentConfig cfg);

  // Wires the transport handler for our node id (gossip is routed to the
  // discovery service when one is set) and hooks the switch's controller
  // action to emit packet-ins.
  void attach(uint64_t now_ns);
  void set_discovery(DiscoveryService* d) { disco_ = d; }
  // Manual leader belief for unit tests without a discovery service.
  void set_leader_hint(uint32_t id) { leader_hint_ = id; }

  // Timer pump: follow the discovery leader, pace echoes, declare the
  // controller dead after echo_miss_limit unanswered probes, retransmit.
  void tick(uint64_t now_ns);

  // Wire-in for non-gossip messages addressed to us (attach() installs a
  // handler that calls this; exposed for direct-drive tests).
  void on_message(const CtrlMsg& m, uint64_t now_ns);

  AgentState state() const { return state_; }
  uint32_t controller() const { return controller_; }
  uint64_t max_seen_generation() const { return max_seen_gen_; }
  bool sync_active() const { return sync_active_; }
  const CtrlChannel& channel() const { return channel_; }

  struct Stats {
    uint64_t flow_mods_applied = 0;
    uint64_t mod_errors = 0;         // parse/apply failures (bad specs)
    uint64_t dups_ignored = 0;       // xid already applied (redelivery)
    uint64_t stale_gen_fenced = 0;   // old-master messages rejected
    uint64_t foreign_dropped = 0;    // from a node we have no session with
    uint64_t barriers_replied = 0;
    uint64_t syncs_completed = 0;
    uint64_t rules_pruned = 0;       // stale rules removed at sync barriers
    uint64_t echo_misses = 0;
    uint64_t standalone_entries = 0;
    uint64_t connects = 0;           // hellos sent
    uint64_t packet_ins_sent = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void connect(uint32_t leader, uint64_t now_ns);
  void enter_standalone(uint64_t now_ns);
  void handle_app(const CtrlMsg& m, uint64_t now_ns);
  void apply_mod(const FlowModPayload& mod, uint64_t now_ns);
  void finish_sync(uint64_t now_ns);

  CtrlTransport* net_;
  Switch* sw_;
  CtrlAgentConfig cfg_;
  DiscoveryService* disco_ = nullptr;
  uint32_t leader_hint_ = 0;

  AgentState state_ = AgentState::kStandalone;
  uint32_t controller_ = 0;  // current peer, 0 when standalone
  CtrlChannel channel_;
  uint64_t max_seen_gen_ = 0;
  uint64_t next_xid_ = 1;
  uint64_t last_now_ns_ = 0;

  // Echo keepalive state.
  uint64_t next_echo_ns_ = 0;
  size_t outstanding_echoes_ = 0;

  // Idempotence + resync state.
  std::unordered_set<uint64_t> applied_xids_;
  bool sync_active_ = false;
  std::vector<FlowModPayload> sync_ops_;

  Stats stats_;
};

}  // namespace ovs
