#include "vswitchd/ctrl_agent.h"

#include <algorithm>
#include <set>

#include "ofproto/flow_parser.h"
#include "ofproto/pipeline.h"
#include "vswitchd/switch.h"

namespace ovs {

CtrlAgent::CtrlAgent(CtrlTransport* net, Switch* sw, CtrlAgentConfig cfg)
    : net_(net),
      sw_(sw),
      cfg_(cfg),
      channel_(net, cfg.id, /*peer=*/0, cfg.channel, cfg.fault) {}

void CtrlAgent::attach(uint64_t now_ns) {
  last_now_ns_ = now_ns;
  net_->attach(cfg_.id, [this](const CtrlMsg& m, uint64_t now) {
    if (m.type == CtrlMsgType::kGossip) {
      if (disco_ != nullptr) disco_->on_gossip(cfg_.id, m, now);
      return;
    }
    on_message(m, now);
  });
  sw_->set_controller_hook([this](const Packet& pkt) {
    (void)pkt;
    if (state_ != AgentState::kConnected) return;
    CtrlMsg p;
    p.type = CtrlMsgType::kPacketIn;
    p.xid = next_xid_++;
    ++stats_.packet_ins_sent;
    // Datagram: packet-ins are best-effort under pressure, like the real
    // controller queue.
    channel_.send_datagram(std::move(p), last_now_ns_);
  });
}

void CtrlAgent::connect(uint32_t leader, uint64_t now_ns) {
  controller_ = leader;
  channel_.set_peer(leader);
  channel_.reconnect(now_ns);
  outstanding_echoes_ = 0;
  next_echo_ns_ = now_ns + cfg_.echo_interval_ns;
  state_ = AgentState::kConnecting;
  ++stats_.connects;
  CtrlMsg h;
  h.type = CtrlMsgType::kHello;
  h.xid = next_xid_++;
  channel_.send(std::move(h), now_ns);
}

void CtrlAgent::enter_standalone(uint64_t now_ns) {
  // Fail-standalone: drop the session state, nothing else. The switch's
  // tables and megaflow cache are untouched — forwarding continues.
  state_ = AgentState::kStandalone;
  controller_ = 0;
  sync_active_ = false;
  sync_ops_.clear();
  outstanding_echoes_ = 0;
  ++stats_.standalone_entries;
  (void)now_ns;
}

void CtrlAgent::tick(uint64_t now_ns) {
  last_now_ns_ = now_ns;
  const uint32_t leader =
      disco_ != nullptr ? disco_->leader_of(cfg_.id) : leader_hint_;

  if (state_ == AgentState::kStandalone) {
    if (leader != 0) connect(leader, now_ns);
    return;
  }

  if (channel_.dead()) {
    enter_standalone(now_ns);
    return;
  }
  // Discovery moved the leadership (heartbeats aged out, or a
  // higher-priority standby took over): follow it.
  if (leader != 0 && leader != controller_) {
    connect(leader, now_ns);
    return;
  }

  if (state_ == AgentState::kConnected && now_ns >= next_echo_ns_) {
    if (outstanding_echoes_ >= cfg_.echo_miss_limit) {
      stats_.echo_misses += outstanding_echoes_;
      enter_standalone(now_ns);
      return;
    }
    CtrlMsg e;
    e.type = CtrlMsgType::kEchoRequest;
    e.xid = next_xid_++;
    ++outstanding_echoes_;
    channel_.send_datagram(std::move(e), now_ns);
    next_echo_ns_ = now_ns + cfg_.echo_interval_ns;
  }

  channel_.tick(now_ns);
}

void CtrlAgent::on_message(const CtrlMsg& m, uint64_t now_ns) {
  last_now_ns_ = now_ns;
  if (state_ == AgentState::kStandalone || m.src != controller_) {
    // Not our controller. A deposed master retransmitting into the void is
    // the common case; fence by generation so the distinction is visible.
    if (m.role_generation != 0 && m.role_generation < max_seen_gen_)
      ++stats_.stale_gen_fenced;
    else
      ++stats_.foreign_dropped;
    return;
  }
  std::vector<CtrlMsg> out;
  channel_.on_receive(m, now_ns, &out);
  for (const CtrlMsg& app : out) handle_app(app, now_ns);
}

void CtrlAgent::handle_app(const CtrlMsg& m, uint64_t now_ns) {
  switch (m.type) {
    case CtrlMsgType::kHello:
    case CtrlMsgType::kFlowMod:
    case CtrlMsgType::kBarrierRequest:
      // Stale-master fencing: never honor programming below the highest
      // generation we have seen.
      if (m.role_generation < max_seen_gen_) {
        ++stats_.stale_gen_fenced;
        return;
      }
      max_seen_gen_ = m.role_generation;
      break;
    default:
      break;
  }

  switch (m.type) {
    case CtrlMsgType::kHello:
      state_ = AgentState::kConnected;
      break;
    case CtrlMsgType::kEchoReply:
      outstanding_echoes_ = 0;
      break;
    case CtrlMsgType::kFlowMod:
      if (m.flow_mod.op == FlowModPayload::Op::kSyncBegin) {
        sync_active_ = true;
        sync_ops_.clear();
        break;
      }
      if (sync_active_) {
        // Resync replay: apply verbatim (adds replace, deletes of absent
        // rules are no-ops) and record for the prune diff. Dedup must not
        // skip here — a rule applied long ago may have been deleted since.
        apply_mod(m.flow_mod, now_ns);
        applied_xids_.insert(m.xid);
        sync_ops_.push_back(m.flow_mod);
      } else if (!applied_xids_.insert(m.xid).second) {
        ++stats_.dups_ignored;
      } else {
        apply_mod(m.flow_mod, now_ns);
      }
      break;
    case CtrlMsgType::kBarrierRequest: {
      if (sync_active_) finish_sync(now_ns);
      CtrlMsg r;
      r.type = CtrlMsgType::kBarrierReply;
      r.xid = m.xid;
      r.policy_epoch = m.policy_epoch;
      ++stats_.barriers_replied;
      channel_.send(std::move(r), now_ns);
      break;
    }
    case CtrlMsgType::kRoleReply:
      break;
    default:
      break;
  }
}

void CtrlAgent::apply_mod(const FlowModPayload& mod, uint64_t now_ns) {
  std::string err;
  if (mod.op == FlowModPayload::Op::kAdd) {
    err = sw_->add_flow(mod.spec, now_ns);
  } else {
    err = sw_->del_flows(mod.spec, nullptr);
  }
  if (err.empty())
    ++stats_.flow_mods_applied;
  else
    ++stats_.mod_errors;
}

void CtrlAgent::finish_sync(uint64_t now_ns) {
  // Replay the sync stream into a scratch pipeline to compute the desired
  // program, mirroring Switch::add_flow / del_flows semantics exactly.
  Pipeline scratch(sw_->config().n_tables, sw_->config().classifier);
  for (const FlowModPayload& mod : sync_ops_) {
    if (mod.op == FlowModPayload::Op::kAdd) {
      FlowParseResult res = parse_flow(mod.spec);
      if (!res.ok || res.flow.table >= scratch.n_tables()) continue;
      scratch.table(res.flow.table)
          .add_flow(res.flow.match, res.flow.priority, res.flow.actions,
                    res.flow.cookie, res.flow.timeouts, now_ns);
    } else {
      const std::string spec = mod.spec.empty()
                                   ? "actions=drop"
                                   : mod.spec + ", actions=drop";
      FlowParseResult res = parse_flow(spec);
      if (!res.ok) continue;
      if (res.flow.has_table) {
        if (res.flow.table < scratch.n_tables())
          scratch.table(res.flow.table).delete_where(res.flow.match);
      } else {
        for (size_t t = 0; t < scratch.n_tables(); ++t)
          scratch.table(t).delete_where(res.flow.match);
      }
    }
  }
  std::set<std::string> desired;
  for (size_t t = 0; t < scratch.n_tables(); ++t)
    scratch.table(t).for_each([&](const OfRule* r) {
      desired.insert(format_flow(t, r->priority(), r->match(), r->actions()));
    });

  // Prune: installed rules the replayed program does not produce are
  // leftovers from a partial epoch the dead master never replicated (or
  // from mods lost with the old connection). Exact-delete each one.
  for (const std::string& line : sw_->dump_flows()) {
    if (desired.count(line) != 0) continue;
    FlowParseResult res = parse_flow(line);
    if (!res.ok) continue;
    if (sw_->pipeline().table(res.flow.table)
            .delete_flow(res.flow.match, res.flow.priority))
      ++stats_.rules_pruned;
  }

  // Tables changed behind the datapath's back; re-derive every cached
  // megaflow before certifying the sync with the barrier reply.
  sw_->force_full_revalidation();
  sync_active_ = false;
  sync_ops_.clear();
  ++stats_.syncs_completed;
}

}  // namespace ovs
