// Durable switch configuration: save/restore of ports and OpenFlow tables
// as text. The paper's OVSDB (§3.3: "the configuration database contains
// more durable state") is substituted by this minimal line format:
//
//   # comments and blank lines ignored
//   port 1
//   port 2
//   flow table=0, priority=10, tcp, actions=output:2
//
// Flows use the ofproto/flow_parser.h syntax, so a saved configuration is
// also human-editable.
#pragma once

#include <string>

#include "vswitchd/switch.h"

namespace ovs {

// Serializes the switch's ports and flows.
std::string save_switch_config(const Switch& sw);

// Applies a saved configuration to a (typically fresh) switch. Returns ""
// on success, or "line N: <error>" for the first bad line.
std::string load_switch_config(Switch& sw, const std::string& text,
                               uint64_t now_ns = 0);

}  // namespace ovs
