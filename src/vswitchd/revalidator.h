// Multi-threaded revalidation (§4.3, §6): "dividing flows among revalidator
// threads" keeps a full pass over the datapath flow table under its ~1 s
// deadline as the table grows.
//
// The pass is split into a *parallel plan* phase and a *serial apply* phase:
//
//   * plan — the dumped flow list is partitioned contiguously across N
//     threads; each thread re-translates its flows with side_effects=false
//     (translation is read-only against the pipeline: classifier lookups,
//     MAC lookups, conntrack lookups) and records a per-flow verdict plus
//     the captured XlateResult. A two-tier fast path consults the pipeline
//     generation counters and the per-flow Bloom tags first, skipping the
//     full re-translation for flows whose inputs cannot have changed.
//   * apply — the control thread walks the verdicts in dump order and
//     performs every mutation: batched deletes, RCU action swaps
//     (update_actions), attribution refresh, statistics pushes. Keeping all
//     writes on one thread preserves the backends' single-writer contract
//     and makes the pass outcome independent of the thread count.
//
// Cycle accounting separates *work* (total_cycles, summed over partitions —
// what the CPU pools are charged) from *latency* (makespan_cycles, the max
// over partitions — what the §6 deadline is compared against).
#pragma once

#include <cstdint>
#include <vector>

#include "datapath/dp_backend.h"
#include "ofproto/pipeline.h"

namespace ovs {

// One flow's planned outcome, indexed like the dumped flow list.
struct RevalDecision {
  enum class Kind : uint8_t {
    kDeleteIdle,     // past the idle timeout: evict
    kSkipClean,      // nothing in the pipeline changed since the last pass
    kSkipTags,       // tag fast path: this flow's inputs did not change
    kKeepFresh,      // re-translated; actions unchanged (xr captured)
    kUpdateActions,  // re-translated; same shape, new actions (xr captured)
    kDeleteStale,    // re-translated; megaflow shape changed: evict
  };
  Kind kind = Kind::kSkipClean;
  XlateResult xr;  // valid for kKeepFresh / kUpdateActions only
};

struct RevalPassStats {
  uint64_t examined = 0;
  uint64_t retranslated = 0;     // flows that paid a full re-translation
  uint64_t skipped_by_tags = 0;  // flows the tag fast path short-circuited
  double total_cycles = 0;       // CPU work, summed over partitions
  double makespan_cycles = 0;    // modeled pass latency: max over partitions
  size_t threads_used = 1;
};

class Revalidator {
 public:
  struct Config {
    size_t n_threads = 1;
    uint64_t idle_ns = 0;
    // Pipeline generation moved since the last pass (or a full pass was
    // forced): flows may be stale. When false every live flow is kSkipClean.
    bool maybe_stale = true;
    // Tier-1 fast path: consult per-flow Bloom tags against changed_tags
    // before paying for a re-translation.
    bool use_tags = false;
    uint64_t changed_tags = 0;
    // Cost model (sim/cost_model.h): cycles per examined flow and per
    // classifier lookup during re-translation.
    double reval_per_flow = 0;
    double per_table_lookup = 0;
  };

  // Plans one pass over `flows` (a backend dump). Thread-safe against
  // concurrent fast-path traffic on the sharded backend; the caller must
  // not mutate the backend or the pipeline until plan() returns. Decisions
  // land at the flow's dump index, so the serial apply is deterministic
  // regardless of n_threads.
  static RevalPassStats plan(DpBackend& be, Pipeline& pl,
                             const std::vector<DpBackend::FlowRef>& flows,
                             uint64_t now_ns, const Config& cfg,
                             std::vector<RevalDecision>* decisions);
};

}  // namespace ovs
