#include "vswitchd/config.h"

#include <algorithm>
#include <sstream>

namespace ovs {

std::string save_switch_config(const Switch& sw) {
  std::ostringstream os;
  os << "# vswitch configuration\n";
  // Const access to ports via the pipeline.
  std::vector<uint32_t> ports =
      const_cast<Switch&>(sw).pipeline().ports();
  std::sort(ports.begin(), ports.end());
  for (uint32_t p : ports) os << "port " << p << "\n";
  for (const std::string& f : sw.dump_flows()) os << "flow " << f << "\n";
  return os.str();
}

std::string load_switch_config(Switch& sw, const std::string& text,
                               uint64_t now_ns) {
  std::istringstream is(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Trim leading whitespace.
    const size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    line = line.substr(b);
    if (line.empty() || line[0] == '#') continue;

    const auto err = [&](const std::string& msg) {
      return "line " + std::to_string(lineno) + ": " + msg;
    };
    if (line.rfind("port ", 0) == 0) {
      try {
        sw.add_port(static_cast<uint32_t>(std::stoul(line.substr(5))));
      } catch (...) {
        return err("bad port '" + line + "'");
      }
    } else if (line.rfind("flow ", 0) == 0) {
      const std::string e = sw.add_flow(line.substr(5), now_ns);
      if (!e.empty()) return err(e);
    } else {
      return err("unknown directive '" + line + "'");
    }
  }
  return "";
}

}  // namespace ovs
