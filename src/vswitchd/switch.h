// The top-level switch: the public API a downstream user programs against.
//
// A Switch owns a userspace pipeline (OpenFlow tables, MAC learning,
// conntrack), a simulated kernel datapath (megaflow + microflow caches), and
// the daemon machinery connecting them:
//
//   * upcall handling — datapath misses are translated through the pipeline
//     and the resulting megaflow is installed (§3.1, §4.2);
//   * revalidation — installed flows are periodically dumped, re-translated
//     and compared; idle flows are evicted; the flow limit is enforced and
//     dynamically adjusted so revalidation stays under a deadline (§6);
//   * CPU accounting — every operation charges virtual cycles split into
//     kernel/user pools (see sim/cost_model.h).
//
// Typical driving loop (see examples/quickstart.cc):
//
//   Switch sw(cfg);
//   sw.add_port(1); sw.add_port(2);
//   sw.table(0).add_flow(MatchBuilder().in_port(1), 10,
//                        OfActions().output(2));
//   sw.inject(pkt, clock.now());
//   sw.handle_upcalls(clock.now());
//   ... every second: sw.run_maintenance(clock.now());
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "datapath/datapath.h"
#include "ofproto/pipeline.h"
#include "sim/clock.h"
#include "sim/cost_model.h"

namespace ovs {

enum class RevalidationMode : uint8_t {
  kFull,  // re-examine every datapath flow (OVS >= 2.0, §6)
  kTags,  // Bloom-filter tags: only flows whose tags changed (historical)
};

struct SwitchConfig {
  size_t n_tables = 8;
  ClassifierConfig classifier;  // userspace tables (Table 1 toggles these)
  DatapathConfig datapath;

  // false reproduces Table 1's "megaflows disabled" row: userspace installs
  // exact-match (microflow) entries only.
  bool megaflows_enabled = true;

  // Upcall batching (§4.1: "batching flow setups ... improved flow setup
  // performance about 24%"). When false every upcall pays its own
  // kernel/user crossing.
  bool batching = true;
  size_t upcall_batch = 64;

  // Receive-side burst size (PMD-style batching). 1 = per-packet receive
  // (the historical path); >1 makes the fleet/experiment drivers gather
  // packets into bursts of this size and charge the batched cost model.
  size_t rx_batch = 1;

  // Cache invalidation parameters (§6).
  size_t flow_limit = 200000;
  bool dynamic_flow_limit = true;     // keep revalidation under the deadline
  uint64_t idle_timeout_ns = 10 * kSecond;
  uint64_t overflow_idle_timeout_ns = 100 * kMillisecond;
  uint64_t max_revalidation_ns = 1 * kSecond;
  RevalidationMode reval_mode = RevalidationMode::kFull;

  CostModel cost;
};

class Switch {
 public:
  explicit Switch(SwitchConfig cfg = {});

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  // --- Configuration surface ---------------------------------------------

  void add_port(uint32_t port);
  void remove_port(uint32_t port);

  Pipeline& pipeline() noexcept { return pipeline_; }
  FlowTable& table(size_t i) { return pipeline_.table(i); }
  Datapath& datapath() noexcept { return dp_; }
  const SwitchConfig& config() const noexcept { return cfg_; }

  // ovs-ofctl-style text interface (see ofproto/flow_parser.h). Returns an
  // empty string on success, otherwise the parse error.
  std::string add_flow(const std::string& text, uint64_t now_ns = 0);
  // Loose-match deletion ("tcp, nw_dst=9.1.1.0/24"; empty = everything;
  // include table=N to restrict). On success returns "" and stores the
  // number deleted in *n_deleted if non-null.
  std::string del_flows(const std::string& text = "",
                        size_t* n_deleted = nullptr);
  // All flows across all tables in add_flow syntax, sorted.
  std::vector<std::string> dump_flows() const;

  // Invoked for every packet transmitted on a port.
  using OutputFn = std::function<void(uint32_t port, const Packet&)>;
  void set_output_handler(OutputFn fn) { output_ = std::move(fn); }

  // --- Packet path ---------------------------------------------------------

  // Processes one received packet. Cache hits execute immediately; misses
  // queue an upcall (drive with handle_upcalls).
  Datapath::Path inject(const Packet& pkt, uint64_t now_ns);

  // Processes a burst sharing one timestamp through the batched datapath
  // fast path: one flow-key hash per packet, deduplicated cache probes,
  // grouped action execution, and the amortized burst cost model
  // (cost.batch_fixed + per_packet_batched instead of per_packet). Returns
  // the number of packets that missed (queued as upcalls).
  size_t inject_batch(std::span<const Packet> pkts, uint64_t now_ns);

  // Processes queued upcalls: translate, install, forward. Returns the
  // number handled.
  size_t handle_upcalls(uint64_t now_ns);

  // Periodic maintenance: revalidation, idle eviction, flow-limit
  // enforcement, MAC aging. Call roughly once per second of virtual time.
  void run_maintenance(uint64_t now_ns);

  // --- Introspection -------------------------------------------------------

  struct Counters {
    uint64_t flow_setups = 0;       // megaflows installed
    uint64_t setup_dups = 0;        // upcall raced an already-installed flow
    uint64_t to_controller = 0;
    uint64_t xlate_errors = 0;
    uint64_t reval_runs = 0;
    uint64_t reval_flows_examined = 0;
    uint64_t reval_deleted_idle = 0;
    uint64_t reval_deleted_stale = 0;
    uint64_t reval_updated_actions = 0;
    uint64_t reval_skipped_by_tags = 0;
    uint64_t evicted_flow_limit = 0;
    uint64_t tx_packets = 0;
    uint64_t tx_bytes = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

  struct PortStats {
    uint64_t tx_packets = 0;
    uint64_t tx_bytes = 0;
  };
  PortStats port_stats(uint32_t port) const {
    auto it = port_stats_.find(port);
    return it == port_stats_.end() ? PortStats{} : it->second;
  }

  CpuAccounting& cpu() noexcept { return cpu_; }
  const CpuAccounting& cpu() const noexcept { return cpu_; }

  // Current (possibly dynamically reduced) datapath flow limit.
  size_t effective_flow_limit() const noexcept { return effective_limit_; }

 private:
  void execute_actions(const DpActions& actions, const Packet& pkt);
  void execute_actions_batch(std::span<const Packet> pkts,
                             const Datapath::RxResult* rx);
  void install_from_xlate(const XlateResult& xr, const Packet& pkt,
                          uint64_t now_ns);
  void revalidate(uint64_t now_ns);

  // Per-megaflow attribution for OpenFlow flow statistics (§6): which
  // rules this cache entry's traffic counts against, and how much has
  // already been pushed to them. Refreshed whenever the entry is
  // (re-)translated; entries removed when the flow dies.
  struct Attribution {
    std::vector<const OfRule*> rules;
    uint64_t pushed_packets = 0;
    uint64_t pushed_bytes = 0;
    // Pipeline generation when `rules` was captured; the pointers are only
    // dereferenced while the generation is unchanged (no rule can have
    // been deleted without bumping it).
    uint64_t captured_gen = 0;
  };
  void push_flow_stats(MegaflowEntry* e, uint64_t now_ns);

  SwitchConfig cfg_;
  Pipeline pipeline_;
  Datapath dp_;
  std::unordered_map<const MegaflowEntry*, Attribution> attribution_;
  OutputFn output_;
  Counters counters_;
  std::unordered_map<uint32_t, PortStats> port_stats_;
  CpuAccounting cpu_;
  std::vector<Datapath::RxResult> results_;  // inject_batch scratch
  size_t effective_limit_;
  uint64_t pipeline_gen_at_last_reval_ = 0;
};

}  // namespace ovs
