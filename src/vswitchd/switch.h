// The top-level switch: the public API a downstream user programs against.
//
// A Switch owns a userspace pipeline (OpenFlow tables, MAC learning,
// conntrack), a simulated kernel datapath (megaflow + microflow caches), and
// the daemon machinery connecting them:
//
//   * upcall handling — datapath misses are translated through the pipeline
//     and the resulting megaflow is installed (§3.1, §4.2);
//   * revalidation — installed flows are periodically dumped, re-translated
//     and compared; idle flows are evicted; the flow limit is enforced and
//     dynamically adjusted so revalidation stays under a deadline (§6);
//   * CPU accounting — every operation charges virtual cycles split into
//     kernel/user pools (see sim/cost_model.h).
//
// Typical driving loop (see examples/quickstart.cc):
//
//   Switch sw(cfg);
//   sw.add_port(1); sw.add_port(2);
//   sw.table(0).add_flow(MatchBuilder().in_port(1), 10,
//                        OfActions().output(2));
//   sw.inject(pkt, clock.now());
//   sw.handle_upcalls(clock.now());
//   ... every second: sw.run_maintenance(clock.now());
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datapath/dp_backend.h"
#include "datapath/dp_check.h"
#include "ofproto/pipeline.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "vswitchd/revalidator.h"
#include "vswitchd/upcall_queue.h"

namespace ovs {

enum class RevalidationMode : uint8_t {
  kFull,     // re-examine every datapath flow (OVS >= 2.0, §6)
  kTags,     // Bloom-filter tags: only flows whose tags changed (historical;
             // skipped flows get no statistics push)
  kTwoTier,  // §4.3: tag/generation fast path decides per flow whether the
             // full re-translation is needed; skipped flows still push
             // statistics (attribution survives MAC-only changes)
};

// Crash/restart lifecycle (DESIGN.md §9). The kernel datapath — the backend
// — survives a userspace crash and keeps forwarding its cached megaflows;
// the daemon's own state (tables, queues, attribution, degradation) dies.
//
//   kServing ──crash()──▶ kCrashed ──restart()──▶ kReconciling ──▶ kServing
//
// While not serving, the upcall sink refuses misses (the netlink socket has
// no listener; counted as drops) and maintenance rounds drive restart()
// instead of revalidation. Flow installation re-enables only after the
// reconciliation pass and the post-reconciliation invariant gate complete.
enum class LifecycleState : uint8_t { kServing, kCrashed, kReconciling };

// Graceful-degradation policies: how the slow path sheds load instead of
// collapsing when it is pushed past its envelope (§6, §7.3). Three
// independent pressure valves:
//
//   * revalidator deadline overruns -> multiplicative backoff of the dynamic
//     flow limit (limit_backoff per overrun), additive recovery
//     (limit_recovery per clean pass) — AIMD on cache size, so a switch
//     that cannot revalidate its table in time carries a smaller table
//     rather than an ever-staler one;
//   * sustained EMC thrash (insert attempts far outrunning microflow hits,
//     the tuple-churn signature) -> probabilistic EMC insertion
//     (emc-insert-inv-prob, the §7.3-style mitigation), restored with
//     hysteresis once the churn subsides;
//   * flow-install failures (kernel ENOSPC / transient) -> bounded retry
//     with exponential backoff instead of silently losing the setup.
struct DegradationConfig {
  bool enabled = true;

  // Dynamic-flow-limit AIMD (multiplier applied to the §6 deadline-derived
  // limit; never drops the limit below limit_floor flows).
  double limit_backoff = 0.5;    // scale *= this per deadline overrun
  double limit_recovery = 0.1;   // scale += this per on-time pass (cap 1.0)
  size_t limit_floor = 512;

  // EMC thrash detection, evaluated once per maintenance interval.
  double emc_thrash_ratio = 4.0;   // engage: inserts > ratio * hits
  uint64_t emc_min_inserts = 512;  // minimum signal before judging
  uint32_t emc_degraded_inv_prob = 32;  // insert prob 1/N while degraded

  // Install-failure retry.
  size_t max_install_retries = 3;
  uint64_t retry_backoff_ns = 10 * kMillisecond;  // doubles per attempt
  size_t max_retry_queue = 1024;

  // Tuple-space explosion detection (DESIGN.md §14), evaluated once per
  // maintenance interval. Two triggers, each 0 = off (the default keeps the
  // pre-detector switch bit-for-bit):
  //   * the kernel datapath's megaflow mask count crossing
  //     mask_explosion_subtables — the direct signature of an attacker
  //     minting pairwise-incomparable masks;
  //   * an EWMA of megaflow tables probed per packet crossing
  //     mask_probe_ewma_threshold — the cost signature, which also fires
  //     when masks stay under the count trigger but lookups degrade.
  // Engaging bumps counters().mask_explosion_engaged and applies one
  // multiplicative flow-limit backoff per interval the signal persists
  // (shedding cached flows sheds their masks); additive recovery is
  // suppressed while engaged. Disengage at half the thresholds, the same
  // hysteresis shape as the EMC thrash detector.
  size_t mask_explosion_subtables = 0;
  double mask_probe_ewma_threshold = 0.0;
  double mask_probe_ewma_alpha = 0.3;  // EWMA smoothing per interval

  // Conntrack pressure (DESIGN.md §15), evaluated once per maintenance
  // interval. 0 = off (default; keeps the pre-conntrack switch bit-for-bit).
  // Engages when conntrack occupancy reaches ct_pressure_ratio of
  // ct_max_entries: one multiplicative flow-limit backoff per interval the
  // pressure persists (per-connection megaflows are what a churning
  // stateful table mints, so shedding cached flows sheds the product of the
  // churn), additive recovery suppressed while engaged. Disengages below
  // half the ratio — the same hysteresis shape as the mask-explosion
  // detector. Meaningless without a ct_max_entries cap.
  double ct_pressure_ratio = 0.0;
};

class FaultInjector;

struct SwitchConfig {
  size_t n_tables = 8;
  ClassifierConfig classifier;  // userspace tables (Table 1 toggles these)
  DatapathConfig datapath;

  // Datapath backend selection: 0 or 1 keeps the single-threaded
  // `Datapath`; >= 2 runs a `ShardedDatapath` with this many forwarding
  // worker slots (per-worker EMC shards over one RCU megaflow table, §4.1),
  // configured from `datapath` via make_dp_backend().
  size_t datapath_workers = 0;

  // Revalidator plan-phase threads (§4.3: "dividing flows among revalidator
  // threads"). 1 = the historical serial pass; the apply phase is always
  // serial on the control thread.
  size_t revalidator_threads = 1;

  // Simulated NIC hardware-offload tier (DESIGN.md §13). offload_slots > 0
  // enables a fixed-capacity offload table probed before the EMC; megaflows
  // *earn* slots by measured hit rate: the revalidator keeps a per-flow EWMA
  // of packets seen per dump interval and programs the top flows, with
  // hysteresis so a challenger only displaces the coldest incumbent when
  // clearly hotter. 0 disables the tier (bit-for-bit the pre-offload
  // switch). Mirrored into datapath.offload_slots at construction.
  size_t offload_slots = 0;
  // EWMA smoothing for per-dump packet deltas (1.0 = last interval only).
  double offload_ewma_alpha = 0.5;
  // A challenger must beat the coldest offloaded flow's EWMA by this factor
  // to take its slot (churn hysteresis; 1.0 = plain rank order).
  double offload_challenge_factor = 2.0;
  // Flows below this EWMA never earn a slot, and offloaded flows that decay
  // below it are evicted even when no challenger wants the slot.
  double offload_min_ewma = 1.0;

  // false reproduces Table 1's "megaflows disabled" row: userspace installs
  // exact-match (microflow) entries only.
  bool megaflows_enabled = true;

  // Upcall batching (§4.1: "batching flow setups ... improved flow setup
  // performance about 24%"). When false every upcall pays its own
  // kernel/user crossing.
  bool batching = true;
  size_t upcall_batch = 64;

  // Receive-side burst size (PMD-style batching). 1 = per-packet receive
  // (the historical path); >1 makes the fleet/experiment drivers gather
  // packets into bursts of this size and charge the batched cost model.
  size_t rx_batch = 1;

  // Rule-admission mask cap (DESIGN.md §14): tenant-attributed rules (match
  // exact on metadata, the logical-pipeline tenant tag) may hold at most
  // this many distinct masks per tenant. An add that would mint a new mask
  // past the cap is rejected before any rule state is constructed
  // (counters().rules_rejected_mask_cap); adds reusing an already-installed
  // mask are always admitted, so lowering the cap at runtime grandfathers
  // existing rules instead of evicting them. Rules without an exact
  // metadata match are uncapped. 0 disables admission control.
  size_t max_masks_per_tenant = 0;

  // Bounded conntrack (DESIGN.md §15). All default-off: 0 caps/timeouts
  // reproduce the unbounded no-expiry tracker bit-for-bit.
  size_t ct_max_entries = 0;
  size_t ct_max_per_zone = 0;
  uint64_t ct_idle_timeout_ns = 0;
  bool ct_fair_eviction = true;
  // ct_state feeds classification, so megaflows depend on conntrack state;
  // this makes ConnTracker::generation() a revalidation dirtiness source
  // (and suspends the kTwoTier tag fast path while it moves — tags track
  // MAC learning only). false is DELIBERATELY UNSOUND: stale ct_state
  // megaflows survive revalidation. It exists as the differential fuzzer's
  // ablation gate, same pattern as the kTags reval mode.
  bool ct_reval_dirty = true;

  // Cache invalidation parameters (§6).
  size_t flow_limit = 200000;
  bool dynamic_flow_limit = true;     // keep revalidation under the deadline
  uint64_t idle_timeout_ns = 10 * kSecond;
  uint64_t overflow_idle_timeout_ns = 100 * kMillisecond;
  uint64_t max_revalidation_ns = 1 * kSecond;
  // kTwoTier by default: bench_tag_alias measured a 0 false-skip rate
  // (< 1e-4 gate) under large-L2 MAC churn — the tag fast path is
  // conservative, so skips are always sound; aliasing only costs extra
  // re-translations (§6, EXPERIMENTS.md).
  RevalidationMode reval_mode = RevalidationMode::kTwoTier;

  // Bounded per-port fair upcall queueing (vswitchd/upcall_queue.h) and
  // overload-degradation policies.
  UpcallQueueConfig upcall_queue;
  DegradationConfig degradation;

  // Non-owning; when set, faults are injected at the switch's upcall,
  // install, entry, and revalidator decision points (util/fault.h).
  FaultInjector* fault = nullptr;

  CostModel cost;
};

class Switch {
 public:
  explicit Switch(SwitchConfig cfg = {});

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  // --- Configuration surface ---------------------------------------------

  void add_port(uint32_t port);
  void remove_port(uint32_t port);

  Pipeline& pipeline() noexcept { return pipeline_; }
  FlowTable& table(size_t i) { return pipeline_.table(i); }
  // Revalidator plan-thread count is safe to change between maintenance
  // passes (benches sweep it on one Switch instead of rebuilding state).
  void set_revalidator_threads(size_t n) noexcept {
    cfg_.revalidator_threads = n;
  }
  // The admission cap is safe to change at runtime: already-installed rules
  // are grandfathered (never evicted); only new mask creation is re-judged
  // against the new cap.
  void set_max_masks_per_tenant(size_t n) noexcept {
    cfg_.max_masks_per_tenant = n;
  }
  // Next revalidation re-translates every flow, tags notwithstanding (the
  // ovs-appctl "revalidator purge" analogue; also set by entry-fault
  // injection, whose corruption bypasses the generation counters).
  void force_full_revalidation() noexcept { reval_force_full_ = true; }
  // The datapath seam: valid for either backend. Use this for stats /
  // flow_count / upcall introspection.
  DpBackend& backend() noexcept { return *be_; }
  const DpBackend& backend() const noexcept { return *be_; }
  // Legacy accessor for the single-threaded backend (datapath_workers <= 1);
  // asserts when the switch runs sharded. Prefer backend().
  Datapath& datapath() noexcept {
    Datapath* dp = be_->single();
    assert(dp != nullptr && "datapath(): switch is running sharded; use backend()");
    return *dp;
  }
  const SwitchConfig& config() const noexcept { return cfg_; }

  // ovs-ofctl-style text interface (see ofproto/flow_parser.h). Returns an
  // empty string on success, otherwise the parse error.
  std::string add_flow(const std::string& text, uint64_t now_ns = 0);
  // Programmatic add used by benches and the fleet sim; runs the same
  // admission control as the text interface (direct table(i).add_flow calls
  // bypass it, like a management plane writing OVSDB behind the daemon).
  std::string add_flow(size_t table, const Match& match, int32_t priority,
                       OfActions actions, uint64_t now_ns = 0);
  // Loose-match deletion ("tcp, nw_dst=9.1.1.0/24"; empty = everything;
  // include table=N to restrict). On success returns "" and stores the
  // number deleted in *n_deleted if non-null.
  std::string del_flows(const std::string& text = "",
                        size_t* n_deleted = nullptr);
  // All flows across all tables in add_flow syntax, sorted.
  std::vector<std::string> dump_flows() const;

  // Controller-driven conntrack writes (DESIGN.md §15): the ovs-ctl
  // "ct-commit"/"ct-delete" analogues, and what the differential harness
  // drives in lockstep on the switch and its oracle (translate-time
  // ct(commit) timing is cache-state-dependent, so fuzz scenarios mutate
  // the connection table explicitly). ct-generation movement makes the next
  // revalidation repair any megaflow stamped with the old ct_state.
  bool ct_commit(const FlowKey& key, uint16_t zone, uint64_t now_ns) {
    return pipeline_.conntrack().commit(key, zone, now_ns);
  }
  bool ct_commit_nat(const FlowKey& key, const CtNatSpec& nat, uint16_t zone,
                     uint64_t now_ns) {
    return pipeline_.conntrack().commit_nat(key, nat, zone, now_ns);
  }
  bool ct_remove(const FlowKey& key, uint16_t zone) {
    return pipeline_.conntrack().remove(key, zone);
  }
  const ConnTracker& conntrack() const noexcept {
    return pipeline_.conntrack();
  }

  // Invoked for every packet transmitted on a port.
  using OutputFn = std::function<void(uint32_t port, const Packet&)>;
  void set_output_handler(OutputFn fn) { output_ = std::move(fn); }

  // Invoked for every packet the pipeline sends to the controller (the
  // `controller` action): the control-plane agent (vswitchd/ctrl_agent.h)
  // turns these into packet-in messages. Fires in addition to the
  // to_controller counter, on both the scalar and batched action paths.
  using ControllerFn = std::function<void(const Packet&)>;
  void set_controller_hook(ControllerFn fn) {
    controller_hook_ = std::move(fn);
  }

  // Deterministic trace hook: fires exactly once per packet at the moment
  // its forwarding fate is decided — on a cache hit with the cached entry's
  // actions, or when its upcall is handled with the freshly translated
  // actions (path == kMiss). Refused upcalls (queue full, daemon down) and
  // fault-dropped upcalls produce no trace. The differential fuzz harness
  // (src/testing/) diffs these per-packet traces against its oracle.
  using TraceFn = std::function<void(const Packet&, const DpActions&,
                                     Datapath::Path)>;
  void set_trace_hook(TraceFn fn) { trace_ = std::move(fn); }

  // --- Packet path ---------------------------------------------------------

  // Processes one received packet. Cache hits execute immediately; misses
  // queue an upcall (drive with handle_upcalls).
  Datapath::Path inject(const Packet& pkt, uint64_t now_ns);

  // Processes a burst sharing one timestamp through the batched datapath
  // fast path: one flow-key hash per packet, deduplicated cache probes,
  // grouped action execution, and the amortized burst cost model
  // (cost.batch_fixed + per_packet_batched instead of per_packet). Returns
  // the number of packets that missed (queued as upcalls).
  size_t inject_batch(std::span<const Packet> pkts, uint64_t now_ns);

  // Processes queued upcalls: retries due failed installs, then drains up
  // to max_upcalls misses from the fair queue (translate, install,
  // forward), then releases fault-delayed upcalls for the next round.
  // Returns the number of fresh upcalls handled (retries not included).
  // max_upcalls models the handler's per-invocation service budget — under
  // overload the queue backlogs and the fair dequeue decides who is served.
  size_t handle_upcalls(uint64_t now_ns, size_t max_upcalls = SIZE_MAX);

  // Periodic maintenance: revalidation, idle eviction, flow-limit
  // enforcement, MAC aging. Call roughly once per second of virtual time.
  // While crashed/reconciling this drives restart() instead; a
  // kUserspaceCrash fault consulted here can kill the daemon mid-run.
  void run_maintenance(uint64_t now_ns);

  // --- Crash / restart lifecycle (DESIGN.md §9) ---------------------------

  // Simulated daemon death. Snapshots the durable config (ports + OpenFlow
  // rules — the OVSDB role, §3.3), counts queued upcalls as dropped and
  // pending retries as abandoned so the slow-path ledgers stay balanced,
  // and discards all other userspace state. The datapath backend is
  // untouched: it keeps forwarding from its surviving megaflow cache.
  // No-op unless currently serving.
  void crash();

  // Daemon restart: rebuilds the pipeline from the crash-time snapshot,
  // then reconciles the surviving datapath cache — dump, re-translate every
  // flow against the rebuilt tables (forced-full Revalidator pass), adopt
  // still-valid entries, repair or delete stale ones in dump order — and
  // finally runs the invariant gate (self_check) before re-enabling
  // installs. Returns true once serving; false when an injected
  // kReconcileStall postponed completion (call again next round).
  bool restart(uint64_t now_ns);

  LifecycleState lifecycle() const noexcept { return state_; }

  // Megaflow invariant checker (datapath/dp_check.h) with quarantine:
  // violating entries are deleted, their attribution dropped, and
  // counters().flows_quarantined bumped. Runs from tests, from the fleet
  // sim's periodic background self-check, and as the post-reconciliation
  // gate inside restart().
  DpCheckReport self_check();

  // --- Introspection -------------------------------------------------------

  struct Counters {
    uint64_t flow_setups = 0;       // megaflows installed
    uint64_t setup_dups = 0;        // upcall raced an already-installed flow
    uint64_t to_controller = 0;
    uint64_t xlate_errors = 0;
    uint64_t reval_runs = 0;
    uint64_t reval_flows_examined = 0;
    uint64_t reval_deleted_idle = 0;
    uint64_t reval_deleted_stale = 0;
    uint64_t reval_updated_actions = 0;
    uint64_t reval_skipped_by_tags = 0;
    uint64_t evicted_flow_limit = 0;
    // NIC offload tier (DESIGN.md §13): slots programmed / invalidated by
    // the placement policy (backend-internal evictions on megaflow removal
    // are not counted here), plus restart-reconciliation verdicts.
    uint64_t offload_installs = 0;
    uint64_t offload_evicts = 0;
    uint64_t offload_adopted = 0;   // restart: slot kept (owner survived)
    uint64_t offload_flushed = 0;   // restart: slot invalidated
    uint64_t tx_packets = 0;
    uint64_t tx_bytes = 0;
    // Overload / robustness accounting. Invariant (degradation on):
    //   upcalls_handled + upcalls_retried ==
    //       flow_setups + setup_dups + install_fails
    // (every processed attempt installs, hits a dup, or fails), and
    //   install_fails == upcalls_retried + retry_queue_depth()
    //                    + retry_abandoned
    // (every failure is either retried, still pending, or given up).
    uint64_t upcalls_handled = 0;   // fresh misses processed (not retries)
    uint64_t upcalls_dropped = 0;   // refused by the bounded fair queue
    uint64_t upcalls_retried = 0;   // retry attempts executed
    uint64_t retry_abandoned = 0;   // gave up: max attempts or queue full
    uint64_t install_fails = 0;     // dp install() returned failure
    uint64_t flow_limit_backoffs = 0;  // multiplicative limit reductions
    uint64_t reval_overruns = 0;    // pass blew max_revalidation_ns
    uint64_t reval_stalls = 0;      // injected stall skipped a pass
    uint64_t emc_degrade_engaged = 0;  // thrash detector activations
    // Tuple-space explosion defenses (DESIGN.md §14). Admission ledger:
    //   flow_adds_attempted == flow_adds_admitted + rules_rejected_mask_cap
    // (every parsed, in-range add is either admitted or rejected by the
    // mask cap; rejection happens before the rule is constructed, so a
    // rejected add leaves flow_count/tuple_count untouched).
    uint64_t flow_adds_attempted = 0;
    uint64_t flow_adds_admitted = 0;
    uint64_t rules_rejected_mask_cap = 0;
    uint64_t mask_explosion_engaged = 0;  // detector activations
    // Stateful pipeline (DESIGN.md §15).
    uint64_t ct_expired_idle = 0;      // conntrack idle-timeout expirations
    uint64_t ct_pressure_engaged = 0;  // ct pressure detector activations
    // Crash/restart lifecycle (DESIGN.md §9). Reconciliation verdicts:
    // adopted + repaired + reval_deleted_{idle,stale} deltas partition the
    // dump; quarantined counts post-check deletions. The upcall/install
    // equalities above additionally hold ACROSS a crash because crash()
    // folds its losses into upcalls_dropped / retry_abandoned.
    uint64_t userspace_crashes = 0;   // crash() transitions taken
    uint64_t flows_adopted = 0;       // reconcile: still-valid, kept as-is
    uint64_t flows_repaired = 0;      // reconcile: actions updated in place
    uint64_t flows_quarantined = 0;   // invariant checker deletions
    uint64_t reconcile_stalls = 0;    // injected kReconcileStall rounds
    uint64_t reconcile_blackout_cycles = 0;  // user cycles crash -> serving
  };
  const Counters& counters() const noexcept { return counters_; }

  struct PortStats {
    uint64_t tx_packets = 0;
    uint64_t tx_bytes = 0;
  };
  PortStats port_stats(uint32_t port) const {
    auto it = port_stats_.find(port);
    return it == port_stats_.end() ? PortStats{} : it->second;
  }

  CpuAccounting& cpu() noexcept { return cpu_; }
  const CpuAccounting& cpu() const noexcept { return cpu_; }

  // Plan-phase statistics of the most recent revalidation pass (examined /
  // re-translated / tag-skipped counts, modeled work and makespan cycles).
  const RevalPassStats& last_reval_pass() const noexcept {
    return last_pass_;
  }

  // Current (possibly dynamically reduced) datapath flow limit.
  size_t effective_flow_limit() const noexcept { return effective_limit_; }
  // AIMD multiplier on the dynamic flow limit (1.0 = no backoff active).
  double flow_limit_scale() const noexcept { return limit_scale_; }
  // True while the EMC thrash detector holds probabilistic insertion on.
  bool emc_degraded() const noexcept { return emc_degraded_; }
  // True while the tuple-explosion detector holds the AIMD backoff engaged
  // (recovery suspended; one backoff per interval the signal persists).
  bool mask_explosion_active() const noexcept { return mask_explosion_; }
  // True while the conntrack pressure detector holds the backoff engaged.
  bool ct_pressure_active() const noexcept { return ct_pressure_; }
  // Userspace classifier shape (DESIGN.md §14): subtables maintained summed
  // across tables, and the per-lookup probe bound of the worst table.
  size_t cls_subtables() const noexcept;
  size_t cls_max_probe_depth() const noexcept;

  size_t upcall_queue_depth() const noexcept { return queue_.depth(); }
  size_t retry_queue_depth() const noexcept { return retry_q_.size(); }
  // Live per-megaflow attribution records; every entry must reference an
  // installed flow (leak oracle for crash/reval interleavings).
  size_t attribution_count() const noexcept { return attribution_.size(); }
  const FairUpcallQueue& upcall_queue() const noexcept { return queue_; }

  // Slow-path service received per ingress port (the fairness metric).
  struct PortUpcallStats {
    uint64_t handled = 0;   // upcalls processed from this port
    uint64_t installs = 0;  // flow setups credited to this port
  };
  PortUpcallStats port_upcall_stats(uint32_t port) const {
    auto it = port_upcall_stats_.find(port);
    return it == port_upcall_stats_.end() ? PortUpcallStats{} : it->second;
  }

 private:
  enum class InstallResult : uint8_t { kInstalled, kDup, kFailed };

  void execute_actions(const DpActions& actions, const Packet& pkt);
  void execute_actions_batch(std::span<const Packet> pkts,
                             const Datapath::RxResult* rx);
  InstallResult install_from_xlate(const XlateResult& xr, const Packet& pkt,
                                   uint64_t now_ns);
  void schedule_retry(const Packet& pkt, uint64_t now_ns, uint32_t attempts);
  size_t process_retries(uint64_t now_ns);
  void maybe_inject_entry_faults();
  void apply_limit_backoff();
  void update_emc_policy();
  // Admission control (DESIGN.md §14): charges the add to the ledger and
  // answers whether it may proceed; refresh rebuilds the per-tenant mask
  // fingerprints when a table mutation invalidated them.
  bool admit_flow(const Match& match);
  void refresh_tenant_masks();
  // Tuple-explosion detector, evaluated per maintenance interval.
  void update_cls_policy();
  // Conntrack pressure detector (DESIGN.md §15), same cadence.
  void update_ct_policy();
  void revalidate(uint64_t now_ns);
  // Offload placement (DESIGN.md §13): folds this dump interval's per-flow
  // packet deltas into the EWMAs, then programs/evicts slots. Runs inside
  // revalidate() after the apply phase and inside restart() reconciliation.
  void offload_placement(const std::vector<DpBackend::FlowRef>& flows,
                         uint64_t now_ns);
  // Restart reconciliation for the offload table: slots whose owner
  // survived the ladder are adopted (their hit totals seed the EWMA so hot
  // hardware flows keep their slots); the rest are flushed.
  void offload_reconcile();

  // Per-megaflow attribution for OpenFlow flow statistics (§6): which
  // rules this cache entry's traffic counts against, and how much has
  // already been pushed to them. Refreshed whenever the entry is
  // (re-)translated; entries removed when the flow dies.
  struct Attribution {
    std::vector<const OfRule*> rules;
    uint64_t pushed_packets = 0;
    uint64_t pushed_bytes = 0;
    // Pipeline *tables* generation when `rules` was captured; the pointers
    // are only dereferenced while it is unchanged (OfRule objects can only
    // be deleted by a table modification, which bumps it — MAC moves and
    // port changes leave the pointers intact).
    uint64_t captured_gen = 0;
  };
  void push_flow_stats(DpBackend::FlowRef f, uint64_t now_ns);
  void refresh_attribution(DpBackend::FlowRef f, XlateResult&& xr);
  // Reconciliation variant: seeds the pushed counters at the flow's current
  // datapath totals, so traffic forwarded before/through the blackout is
  // not re-credited to the rebuilt OpenFlow rules (their stats restart
  // from zero; only post-adoption deltas flow).
  void adopt_attribution(DpBackend::FlowRef f, XlateResult&& xr);

  struct RetryEntry {
    Packet pkt;
    uint64_t not_before = 0;  // earliest retry time (exponential backoff)
    uint32_t attempts = 0;    // retry attempts already executed
  };

  SwitchConfig cfg_;
  Pipeline pipeline_;
  std::unique_ptr<DpBackend> be_;
  std::unordered_map<DpBackend::FlowRef, Attribution> attribution_;
  OutputFn output_;
  ControllerFn controller_hook_;
  TraceFn trace_;
  Counters counters_;
  std::unordered_map<uint32_t, PortStats> port_stats_;
  CpuAccounting cpu_;
  std::vector<Datapath::RxResult> results_;  // inject_batch scratch
  std::vector<RevalDecision> decisions_;     // revalidation plan scratch
  RevalPassStats last_pass_;
  size_t effective_limit_;
  uint64_t pipeline_gen_at_last_reval_ = 0;
  // Per-source generations at the last pass: the kTwoTier tag fast path is
  // only sound for MAC-driven staleness (tags track nothing else), so it
  // engages only while the tables and ports generations are unchanged.
  uint64_t tables_gen_at_last_reval_ = 0;
  uint64_t ports_gen_at_last_reval_ = 0;
  // Conntrack generation at the last pass: a separate dirtiness source so
  // the ct_reval_dirty ablation can ignore it without touching the rest.
  uint64_t ct_gen_at_last_reval_ = 0;

  // Crash/restart lifecycle (DESIGN.md §9).
  LifecycleState state_ = LifecycleState::kServing;
  std::vector<uint32_t> saved_ports_;      // durable config snapshot
  std::vector<std::string> saved_flows_;   // (taken at crash time)

  FairUpcallQueue queue_;
  std::deque<RetryEntry> retry_q_;
  std::unordered_map<uint32_t, PortUpcallStats> port_upcall_stats_;
  FaultInjector* fault_ = nullptr;  // == cfg_.fault
  double limit_scale_ = 1.0;        // AIMD multiplier on the flow limit
  // Entry faults bypass the pipeline generation, so the next revalidation
  // must re-translate everything to repair them.
  bool reval_force_full_ = false;
  bool emc_degraded_ = false;
  uint64_t emc_attempts_seen_ = 0;  // insert attempts at last policy check
  uint64_t emc_hits_seen_ = 0;      // microflow hits at last policy check

  // Conntrack pressure detector state (DESIGN.md §15).
  bool ct_pressure_ = false;

  // Tuple-explosion detector state (DESIGN.md §14).
  bool mask_explosion_ = false;
  double probe_ewma_ = 0.0;         // smoothed megaflow probes per packet
  uint64_t dp_tuples_seen_ = 0;     // tuples_searched at last policy check
  uint64_t dp_packets_seen_ = 0;    // packets at last policy check
  // Per-tenant distinct-mask fingerprints backing the admission cap,
  // rebuilt lazily whenever the tables generation moved (deletes and
  // expiry free cap; the rebuild costs one table scan per mutation burst).
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> tenant_masks_;
  uint64_t tenant_masks_gen_ = 0;
  bool tenant_masks_valid_ = false;

  // Offload placement state (userspace — dies with the daemon on crash()).
  // One record per live megaflow once the flow has been seen by a dump;
  // erased when the flow is removed.
  struct OffloadState {
    double ewma = 0.0;          // smoothed packets per dump interval
    uint64_t last_packets = 0;  // flow_packets() at the previous dump
    bool offloaded = false;     // mirror of backend offload_contains()
  };
  std::unordered_map<DpBackend::FlowRef, OffloadState> offload_state_;
};

}  // namespace ovs
