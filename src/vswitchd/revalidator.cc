#include "vswitchd/revalidator.h"

#include <algorithm>
#include <thread>

namespace ovs {

namespace {

struct PartStats {
  uint64_t examined = 0;
  uint64_t retranslated = 0;
  uint64_t skipped_by_tags = 0;
  double cycles = 0;
};

// One partition of the plan phase. Read-only against the backend and the
// pipeline (translate with side_effects=false), so partitions are
// embarrassingly parallel; each writes decisions only at its own indices.
PartStats plan_range(DpBackend& be, Pipeline& pl,
                     const std::vector<DpBackend::FlowRef>& flows, size_t lo,
                     size_t hi, uint64_t now_ns,
                     const Revalidator::Config& cfg,
                     std::vector<RevalDecision>& decisions) {
  PartStats ps;
  for (size_t i = lo; i < hi; ++i) {
    DpBackend::FlowRef f = flows[i];
    RevalDecision& d = decisions[i];
    ++ps.examined;
    ps.cycles += cfg.reval_per_flow;
    if (now_ns - be.flow_used_ns(f) > cfg.idle_ns) {
      d.kind = RevalDecision::Kind::kDeleteIdle;
      continue;
    }
    if (!cfg.maybe_stale) {
      d.kind = RevalDecision::Kind::kSkipClean;
      continue;
    }
    if (cfg.use_tags && (be.flow_tags(f) & cfg.changed_tags) == 0) {
      // Tier 1 (§4.3): untouched tags mean this flow's translation inputs
      // cannot have changed — modulo Bloom false positives, which only cost
      // an unnecessary re-translation, never a missed repair.
      d.kind = RevalDecision::Kind::kSkipTags;
      ++ps.skipped_by_tags;
      continue;
    }
    // Tier 2: full re-translation through the current tables. Translate
    // the full-fidelity install-time key, not flow_match(f).key: the
    // latter is pre-masked, and a masked key can re-derive the entry's own
    // stale mask (fields the mask wildcards read as zero, steering the
    // classifier's prefix cuts the same wrong way), turning a stale
    // over-broad flow into a kKeepFresh fixed point that overlaps fresher
    // disjoint entries.
    XlateResult xr =
        pl.translate(be.flow_full_key(f), now_ns, /*side_effects=*/false);
    ps.cycles += cfg.per_table_lookup * xr.table_lookups;
    ++ps.retranslated;
    // The installed mask must match every field the fresh translation
    // consulted; an entry broader than that (extra wildcards, in OVS
    // terms) swallows packets the current tables would treat differently
    // — even when the actions for this witness key still agree. E.g. a
    // drop megaflow installed against an empty table matches everything
    // on its port; once a rule exists, re-translating its witness packet
    // still yields drop, but the fresh mask now pins the fields that
    // prove the miss.
    const FlowMask& inst_mask = be.flow_match(f).mask;
    bool covers = true;
    for (size_t w = 0; w < kFlowWords; ++w) {
      if ((xr.megaflow.mask.w[w] & ~inst_mask.w[w]) != 0) {
        covers = false;
        break;
      }
    }
    if (covers && xr.actions == be.flow_actions(f)) {
      d.kind = RevalDecision::Kind::kKeepFresh;
      d.xr = std::move(xr);
    } else if (xr.megaflow.mask == inst_mask) {
      d.kind = RevalDecision::Kind::kUpdateActions;
      d.xr = std::move(xr);
    } else {
      d.kind = RevalDecision::Kind::kDeleteStale;
    }
  }
  return ps;
}

}  // namespace

RevalPassStats Revalidator::plan(DpBackend& be, Pipeline& pl,
                                 const std::vector<DpBackend::FlowRef>& flows,
                                 uint64_t now_ns, const Config& cfg,
                                 std::vector<RevalDecision>* decisions) {
  decisions->assign(flows.size(), RevalDecision{});

  const size_t want = std::max<size_t>(1, cfg.n_threads);
  // Spawning a thread for a handful of flows costs more than it saves.
  const size_t n_threads =
      flows.empty() ? 1 : std::min(want, (flows.size() + 63) / 64);

  std::vector<PartStats> parts(n_threads);
  if (n_threads == 1) {
    parts[0] = plan_range(be, pl, flows, 0, flows.size(), now_ns, cfg,
                          *decisions);
  } else {
    const size_t chunk = (flows.size() + n_threads - 1) / n_threads;
    std::vector<std::thread> pool;
    pool.reserve(n_threads - 1);
    for (size_t t = 1; t < n_threads; ++t) {
      const size_t lo = std::min(flows.size(), t * chunk);
      const size_t hi = std::min(flows.size(), lo + chunk);
      if (lo == hi) continue;
      pool.emplace_back([&, t, lo, hi] {
        parts[t] =
            plan_range(be, pl, flows, lo, hi, now_ns, cfg, *decisions);
      });
    }
    parts[0] = plan_range(be, pl, flows, 0, std::min(flows.size(), chunk),
                          now_ns, cfg, *decisions);
    for (std::thread& th : pool) th.join();
  }

  RevalPassStats out;
  out.threads_used = n_threads;
  for (const PartStats& ps : parts) {
    out.examined += ps.examined;
    out.retranslated += ps.retranslated;
    out.skipped_by_tags += ps.skipped_by_tags;
    out.total_cycles += ps.cycles;
    out.makespan_cycles = std::max(out.makespan_cycles, ps.cycles);
  }
  return out;
}

}  // namespace ovs
