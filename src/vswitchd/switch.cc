#include "vswitchd/switch.h"

#include <algorithm>

#include "ofproto/flow_parser.h"

namespace ovs {

Switch::Switch(SwitchConfig cfg)
    : cfg_(cfg),
      pipeline_(cfg.n_tables, cfg.classifier),
      dp_(cfg.datapath),
      effective_limit_(cfg.flow_limit) {}

void Switch::add_port(uint32_t port) { pipeline_.add_port(port); }
void Switch::remove_port(uint32_t port) { pipeline_.remove_port(port); }

std::string Switch::add_flow(const std::string& text, uint64_t now_ns) {
  FlowParseResult res = parse_flow(text);
  if (!res.ok) return res.error;
  if (res.flow.table >= pipeline_.n_tables())
    return "table " + std::to_string(res.flow.table) + " out of range";
  pipeline_.table(res.flow.table)
      .add_flow(res.flow.match, res.flow.priority, res.flow.actions,
                res.flow.cookie, res.flow.timeouts, now_ns);
  return "";
}

std::string Switch::del_flows(const std::string& text, size_t* n_deleted) {
  const std::string spec =
      text.empty() ? "actions=drop" : text + ", actions=drop";
  FlowParseResult res = parse_flow(spec);
  if (!res.ok) return res.error;
  size_t n = 0;
  if (res.flow.has_table) {
    if (res.flow.table >= pipeline_.n_tables())
      return "table " + std::to_string(res.flow.table) + " out of range";
    n = pipeline_.table(res.flow.table).delete_where(res.flow.match);
  } else {
    for (size_t t = 0; t < pipeline_.n_tables(); ++t)
      n += pipeline_.table(t).delete_where(res.flow.match);
  }
  if (n_deleted != nullptr) *n_deleted = n;
  return "";
}

std::vector<std::string> Switch::dump_flows() const {
  std::vector<std::string> out;
  for (size_t t = 0; t < pipeline_.n_tables(); ++t) {
    pipeline_.table(t).for_each([&](const OfRule* r) {
      out.push_back(
          format_flow(t, r->priority(), r->match(), r->actions()));
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Switch::execute_actions(const DpActions& actions, const Packet& pkt) {
  Packet out = pkt;
  for (const DpAction& a : actions.list) {
    if (const auto* o = std::get_if<OutputAction>(&a)) {
      ++counters_.tx_packets;
      counters_.tx_bytes += out.size_bytes;
      PortStats& ps = port_stats_[o->port];
      ++ps.tx_packets;
      ps.tx_bytes += out.size_bytes;
      if (output_) output_(o->port, out);
    } else if (const auto* sf = std::get_if<SetFieldAction>(&a)) {
      out.key.set(sf->field, sf->value);
    } else if (const auto* t = std::get_if<TunnelAction>(&a)) {
      out.key.set_tun_id(t->tun_id);
      ++counters_.tx_packets;
      counters_.tx_bytes += out.size_bytes;
      PortStats& ps = port_stats_[t->port];
      ++ps.tx_packets;
      ps.tx_bytes += out.size_bytes;
      if (output_) output_(t->port, out);
    } else if (std::get_if<UserspaceAction>(&a)) {
      ++counters_.to_controller;
    }
  }
}

// Grouped execution for a burst: packets sharing an action list (i.e. a
// megaflow) bump the tx counters once per group; the per-packet work that
// remains is the output callback and any header-rewriting action list,
// which must see each packet individually.
void Switch::execute_actions_batch(std::span<const Packet> pkts,
                                   const Datapath::RxResult* rx) {
  auto rewrites = [](const DpActions& a) {
    for (const DpAction& act : a.list)
      if (!std::holds_alternative<OutputAction>(act) &&
          !std::holds_alternative<UserspaceAction>(act))
        return true;
    return false;
  };

  struct Group {
    const DpActions* actions;
    uint64_t pkts;
    uint64_t bytes;
  };
  // Bursts match a handful of megaflows; linear scan beats a hash map.
  std::vector<Group> groups;
  groups.reserve(8);

  for (size_t i = 0; i < pkts.size(); ++i) {
    const DpActions* a = rx[i].actions;
    if (a == nullptr) continue;
    if (rewrites(*a)) {
      // Set-field/tunnel lists mutate a per-packet copy; no grouping.
      execute_actions(*a, pkts[i]);
      continue;
    }
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.actions == a) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back({a, 0, 0});
      g = &groups.back();
    }
    ++g->pkts;
    g->bytes += pkts[i].size_bytes;
    if (output_) {
      for (const DpAction& act : a->list)
        if (const auto* o = std::get_if<OutputAction>(&act))
          output_(o->port, pkts[i]);
    }
  }

  for (const Group& g : groups) {
    for (const DpAction& act : g.actions->list) {
      if (const auto* o = std::get_if<OutputAction>(&act)) {
        counters_.tx_packets += g.pkts;
        counters_.tx_bytes += g.bytes;
        PortStats& ps = port_stats_[o->port];
        ps.tx_packets += g.pkts;
        ps.tx_bytes += g.bytes;
      } else if (std::get_if<UserspaceAction>(&act)) {
        counters_.to_controller += g.pkts;
      }
    }
  }
}

size_t Switch::inject_batch(std::span<const Packet> pkts, uint64_t now_ns) {
  if (pkts.empty()) return 0;
  results_.resize(pkts.size());
  Datapath::BatchSummary sum;
  dp_.process_batch(pkts, now_ns, results_.data(), &sum);

  // Burst cost model: fixed dispatch overhead plus a reduced per-packet
  // cost; cache work is charged per *deduplicated* probe, which is where
  // batching actually saves kernel cycles.
  const CostModel& m = cfg_.cost;
  cpu_.kernel_cycles += m.batch_fixed +
                        m.per_packet_batched * sum.packets +
                        m.microflow_probe * sum.emc_probes +
                        m.per_tuple * sum.tuples_searched +
                        m.miss_kernel * sum.misses;

  execute_actions_batch(pkts, results_.data());
  return sum.misses;
}

Datapath::Path Switch::inject(const Packet& pkt, uint64_t now_ns) {
  const Datapath::RxResult rx = dp_.receive(pkt, now_ns);

  // Kernel-side cycle accounting.
  const CostModel& m = cfg_.cost;
  double cycles = m.per_packet;
  if (dp_.config().microflow_enabled) cycles += m.microflow_probe;
  switch (rx.path) {
    case Datapath::Path::kMicroflowHit:
      break;
    case Datapath::Path::kMegaflowHit:
      cycles += m.per_tuple * rx.tuples_searched;
      break;
    case Datapath::Path::kMiss:
      cycles += m.per_tuple * rx.tuples_searched + m.miss_kernel;
      break;
  }
  cpu_.kernel_cycles += cycles;

  if (rx.actions != nullptr) execute_actions(*rx.actions, pkt);
  return rx.path;
}

void Switch::install_from_xlate(const XlateResult& xr, const Packet& pkt,
                                uint64_t now_ns) {
  Match match;
  if (cfg_.megaflows_enabled) {
    match = xr.megaflow;
  } else {
    // "Megaflows disabled" mode (§7.2, Table 1): cache exact-match
    // microflow entries, one per transport connection.
    for (size_t i = 0; i < kFlowWords; ++i) match.mask.w[i] = ~uint64_t{0};
    match.key = pkt.key;
  }
  const size_t before = dp_.flow_count();
  MegaflowEntry* e = dp_.install(match, xr.actions, now_ns);
  e->tags = xr.tags;
  if (dp_.flow_count() > before) {
    ++counters_.flow_setups;
    Attribution& at = attribution_[e];
    at.rules = xr.matched_rules;
    at.captured_gen = pipeline_.generation();
  } else {
    ++counters_.setup_dups;
  }
  // The miss packet is forwarded by userspace on the flow's behalf; it
  // counts toward the flow's statistics like any other packet.
  dp_.credit_packet(e, pkt, now_ns);
}

size_t Switch::handle_upcalls(uint64_t now_ns) {
  const CostModel& m = cfg_.cost;
  size_t handled = 0;
  for (;;) {
    const size_t batch_size = cfg_.batching ? cfg_.upcall_batch : 1;
    std::vector<Packet> batch = dp_.take_upcalls(batch_size);
    if (batch.empty()) break;
    // One kernel/user crossing per batch; batching amortizes it (§4.1).
    cpu_.user_cycles += m.upcall_syscall;
    for (const Packet& pkt : batch) {
      XlateResult xr = pipeline_.translate(pkt.key, now_ns);
      cpu_.user_cycles +=
          m.upcall_fixed + m.per_table_lookup * xr.table_lookups;
      if (xr.error) ++counters_.xlate_errors;
      install_from_xlate(xr, pkt, now_ns);
      // The queued packet itself is now forwarded.
      execute_actions(xr.actions, pkt);
      ++handled;
    }
  }
  return handled;
}

void Switch::revalidate(uint64_t now_ns) {
  const CostModel& m = cfg_.cost;
  ++counters_.reval_runs;

  // Dynamic flow limit (§6): "the actual maximum is dynamically adjusted to
  // ensure that total revalidation time stays under 1 second".
  if (cfg_.dynamic_flow_limit) {
    const double reval_capacity =
        (static_cast<double>(cfg_.max_revalidation_ns) / 1e9) *
        (m.ghz * 1e9) / m.reval_per_flow;
    effective_limit_ = std::min(cfg_.flow_limit,
                                static_cast<size_t>(reval_capacity));
  } else {
    effective_limit_ = cfg_.flow_limit;
  }

  const bool over_limit = dp_.flow_count() > effective_limit_;
  // Above the maximum size, drop the idle time to force the table to
  // shrink (§6).
  const uint64_t idle_ns =
      over_limit ? cfg_.overflow_idle_timeout_ns : cfg_.idle_timeout_ns;

  const uint64_t gen = pipeline_.generation();
  const bool maybe_stale = gen != pipeline_gen_at_last_reval_;
  const uint64_t changed_tags = pipeline_.mac_learning().take_changed_tags();

  std::vector<MegaflowEntry*> flows = dp_.dump();
  for (MegaflowEntry* e : flows) {
    ++counters_.reval_flows_examined;
    cpu_.user_cycles += m.reval_per_flow;
    if (now_ns - e->used_ns() > idle_ns) {
      push_flow_stats(e, now_ns);  // final stats (validated internally)
      attribution_.erase(e);
      dp_.remove(e);
      ++counters_.reval_deleted_idle;
      continue;
    }
    if (!maybe_stale) {
      push_flow_stats(e, now_ns);
      continue;
    }
    if (cfg_.reval_mode == RevalidationMode::kTags &&
        (e->tags & changed_tags) == 0) {
      // Tag-based invalidation (historical, §6): untouched tags mean the
      // flow cannot have changed — modulo Bloom-filter false negatives
      // being impossible and false positives being extra work only.
      // (No stats push: the attribution pointers were not revalidated.)
      ++counters_.reval_skipped_by_tags;
      continue;
    }
    // Re-translate the flow's key through the current tables and compare.
    XlateResult xr =
        pipeline_.translate(e->match().key, now_ns, /*side_effects=*/false);
    cpu_.user_cycles += m.per_table_lookup * xr.table_lookups;
    if (xr.actions == e->actions()) {
      // Refresh the attribution (rule pointers may have been replaced) and
      // push pending stats against the CURRENT rules.
      Attribution& at = attribution_[e];
      at.rules = std::move(xr.matched_rules);
      at.captured_gen = pipeline_.generation();
      push_flow_stats(e, now_ns);
      continue;
    }
    if (xr.megaflow.mask == e->match().mask) {
      dp_.update_actions(e, xr.actions);
      Attribution& at = attribution_[e];
      at.rules = std::move(xr.matched_rules);
      at.captured_gen = pipeline_.generation();
      push_flow_stats(e, now_ns);
      ++counters_.reval_updated_actions;
    } else {
      attribution_.erase(e);
      dp_.remove(e);  // shape changed: let traffic re-establish it
      ++counters_.reval_deleted_stale;
    }
  }
  pipeline_gen_at_last_reval_ = gen;

  // Hard eviction if still above the limit: oldest-used first, like
  // userspace "must be able to delete flows ... as quickly as it can
  // install new flows" (§6).
  if (dp_.flow_count() > effective_limit_) {
    std::vector<MegaflowEntry*> live = dp_.dump();
    std::sort(live.begin(), live.end(),
              [](const MegaflowEntry* a, const MegaflowEntry* b) {
                return a->used_ns() < b->used_ns();
              });
    size_t excess = dp_.flow_count() - effective_limit_;
    for (size_t i = 0; i < excess; ++i) {
      attribution_.erase(live[i]);
      dp_.remove(live[i]);
      ++counters_.evicted_flow_limit;
    }
  }

  dp_.purge_dead();  // grace period
}

void Switch::push_flow_stats(MegaflowEntry* e, uint64_t now_ns) {
  auto it = attribution_.find(e);
  if (it == attribution_.end()) return;
  Attribution& at = it->second;
  // Rule pointers are only safe while no flow-table change happened since
  // capture (any change bumps the pipeline generation).
  if (at.captured_gen != pipeline_.generation()) return;
  const uint64_t dp_pkts = e->packets();
  const uint64_t dp_bytes = e->bytes();
  if (dp_pkts == at.pushed_packets) return;
  const uint64_t dpkts = dp_pkts - at.pushed_packets;
  const uint64_t dbytes = dp_bytes - at.pushed_bytes;
  for (const OfRule* r : at.rules) r->add_stats(dpkts, dbytes, now_ns);
  at.pushed_packets = dp_pkts;
  at.pushed_bytes = dp_bytes;
}

void Switch::run_maintenance(uint64_t now_ns) {
  pipeline_.mac_learning().expire(now_ns);
  revalidate(now_ns);
  // OpenFlow idle/hard flow expiry uses the statistics refreshed above
  // (§6); expirations bump the pipeline generation, so the next
  // revalidation round converges the cache.
  pipeline_.expire_flows(now_ns);
}

}  // namespace ovs
