#include "vswitchd/switch.h"

#include <algorithm>
#include <unordered_set>

#include "ofproto/flow_parser.h"
#include "util/fault.h"
#include "util/hash.h"

namespace ovs {

namespace {

// The switch-level offload knob and the datapath-level one are kept equal:
// setting either enables the tier, and config() tells one story.
SwitchConfig merge_offload(SwitchConfig cfg) {
  if (cfg.offload_slots > 0)
    cfg.datapath.offload_slots = cfg.offload_slots;
  else
    cfg.offload_slots = cfg.datapath.offload_slots;
  return cfg;
}

ConnTrackerConfig ct_config(const SwitchConfig& cfg) {
  ConnTrackerConfig c;
  c.max_entries = cfg.ct_max_entries;
  c.max_per_zone = cfg.ct_max_per_zone;
  c.idle_timeout_ns = cfg.ct_idle_timeout_ns;
  c.fair_eviction = cfg.ct_fair_eviction;
  return c;
}

}  // namespace

Switch::Switch(SwitchConfig cfg)
    : cfg_(merge_offload(std::move(cfg))),
      pipeline_(cfg_.n_tables, cfg_.classifier, ct_config(cfg_)),
      be_(make_dp_backend(cfg_.datapath, cfg_.datapath_workers)),
      effective_limit_(cfg_.flow_limit),
      queue_(cfg_.upcall_queue),
      fault_(cfg_.fault) {
  // Misses land in the bounded per-port fair queue at enqueue time; a
  // refusal here is counted by the datapath as an upcall drop (preserving
  // its misses == delivered + dropped conservation) and by the switch as
  // an upcalls_dropped (the queue's per-port counters say why). On the
  // sharded backend the sink runs under its upcall lock, so concurrent
  // worker flushes are serialized before touching the queue.
  be_->set_upcall_sink([this](Packet&& pkt) {
    // A crashed/reconciling daemon has no upcall listener: the kernel keeps
    // forwarding cached flows, but misses are refused until serving resumes
    // (the blackout a restart causes for NEW flows, DESIGN.md §9).
    if (state_ != LifecycleState::kServing) {
      ++counters_.upcalls_dropped;
      return false;
    }
    if (queue_.enqueue(std::move(pkt))) return true;
    ++counters_.upcalls_dropped;
    return false;
  });
  be_->set_fault_injector(fault_);
}

void Switch::add_port(uint32_t port) { pipeline_.add_port(port); }
void Switch::remove_port(uint32_t port) { pipeline_.remove_port(port); }

std::string Switch::add_flow(const std::string& text, uint64_t now_ns) {
  FlowParseResult res = parse_flow(text);
  if (!res.ok) return res.error;
  if (res.flow.table >= pipeline_.n_tables())
    return "table " + std::to_string(res.flow.table) + " out of range";
  if (!admit_flow(res.flow.match))
    return "rejected: per-tenant mask cap reached";
  pipeline_.table(res.flow.table)
      .add_flow(res.flow.match, res.flow.priority, res.flow.actions,
                res.flow.cookie, res.flow.timeouts, now_ns);
  // The add we just admitted is the only mutation since the fingerprint
  // check, and admit_flow already recorded any new mask, so the cache stays
  // valid at the new generation.
  if (tenant_masks_valid_) tenant_masks_gen_ = pipeline_.tables_generation();
  return "";
}

std::string Switch::add_flow(size_t table, const Match& match,
                             int32_t priority, OfActions actions,
                             uint64_t now_ns) {
  if (table >= pipeline_.n_tables())
    return "table " + std::to_string(table) + " out of range";
  if (!admit_flow(match)) return "rejected: per-tenant mask cap reached";
  pipeline_.table(table).add_flow(match, priority, std::move(actions),
                                  /*cookie=*/0, /*timeouts=*/{}, now_ns);
  if (tenant_masks_valid_) tenant_masks_gen_ = pipeline_.tables_generation();
  return "";
}

void Switch::refresh_tenant_masks() {
  const uint64_t gen = pipeline_.tables_generation();
  if (tenant_masks_valid_ && gen == tenant_masks_gen_) return;
  tenant_masks_.clear();
  for (size_t t = 0; t < pipeline_.n_tables(); ++t) {
    pipeline_.table(t).for_each([this](const OfRule* r) {
      const Match& m = r->match();
      if (!m.mask.is_exact(FieldId::kMetadata)) return;
      tenant_masks_[m.key.get(FieldId::kMetadata)].insert(
          hash_words(m.mask.w.data(), kFlowWords));
    });
  }
  tenant_masks_gen_ = gen;
  tenant_masks_valid_ = true;
}

bool Switch::admit_flow(const Match& match) {
  ++counters_.flow_adds_attempted;
  // Only tenant-attributed rules (exact metadata match) are capped: the cap
  // defends tenants from each other, and rules without a tenant tag are the
  // operator's own (install_nvp_pipeline's ingress stage, say).
  if (cfg_.max_masks_per_tenant == 0 ||
      !match.mask.is_exact(FieldId::kMetadata)) {
    ++counters_.flow_adds_admitted;
    return true;
  }
  refresh_tenant_masks();
  const uint64_t tenant = match.key.get(FieldId::kMetadata);
  const uint64_t fp = hash_words(match.mask.w.data(), kFlowWords);
  auto& masks = tenant_masks_[tenant];
  // Reusing an installed mask is always admitted — that is what makes a
  // runtime cap reduction grandfather existing rules instead of wedging
  // every subsequent add from that tenant.
  if (masks.find(fp) == masks.end() &&
      masks.size() >= cfg_.max_masks_per_tenant) {
    ++counters_.rules_rejected_mask_cap;
    return false;
  }
  masks.insert(fp);
  ++counters_.flow_adds_admitted;
  return true;
}

std::string Switch::del_flows(const std::string& text, size_t* n_deleted) {
  const std::string spec =
      text.empty() ? "actions=drop" : text + ", actions=drop";
  FlowParseResult res = parse_flow(spec);
  if (!res.ok) return res.error;
  size_t n = 0;
  if (res.flow.has_table) {
    if (res.flow.table >= pipeline_.n_tables())
      return "table " + std::to_string(res.flow.table) + " out of range";
    n = pipeline_.table(res.flow.table).delete_where(res.flow.match);
  } else {
    for (size_t t = 0; t < pipeline_.n_tables(); ++t)
      n += pipeline_.table(t).delete_where(res.flow.match);
  }
  if (n_deleted != nullptr) *n_deleted = n;
  return "";
}

std::vector<std::string> Switch::dump_flows() const {
  std::vector<std::string> out;
  for (size_t t = 0; t < pipeline_.n_tables(); ++t) {
    pipeline_.table(t).for_each([&](const OfRule* r) {
      out.push_back(
          format_flow(t, r->priority(), r->match(), r->actions()));
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Switch::execute_actions(const DpActions& actions, const Packet& pkt) {
  Packet out = pkt;
  for (const DpAction& a : actions.list) {
    if (const auto* o = std::get_if<OutputAction>(&a)) {
      ++counters_.tx_packets;
      counters_.tx_bytes += out.size_bytes;
      PortStats& ps = port_stats_[o->port];
      ++ps.tx_packets;
      ps.tx_bytes += out.size_bytes;
      if (output_) output_(o->port, out);
    } else if (const auto* sf = std::get_if<SetFieldAction>(&a)) {
      out.key.set(sf->field, sf->value);
    } else if (const auto* t = std::get_if<TunnelAction>(&a)) {
      out.key.set_tun_id(t->tun_id);
      ++counters_.tx_packets;
      counters_.tx_bytes += out.size_bytes;
      PortStats& ps = port_stats_[t->port];
      ++ps.tx_packets;
      ps.tx_bytes += out.size_bytes;
      if (output_) output_(t->port, out);
    } else if (std::get_if<UserspaceAction>(&a)) {
      ++counters_.to_controller;
      if (controller_hook_) controller_hook_(out);
    }
  }
}

// Grouped execution for a burst: packets sharing an action list (i.e. a
// megaflow) bump the tx counters once per group; the per-packet work that
// remains is the output callback and any header-rewriting action list,
// which must see each packet individually.
void Switch::execute_actions_batch(std::span<const Packet> pkts,
                                   const Datapath::RxResult* rx) {
  auto rewrites = [](const DpActions& a) {
    for (const DpAction& act : a.list)
      if (!std::holds_alternative<OutputAction>(act) &&
          !std::holds_alternative<UserspaceAction>(act))
        return true;
    return false;
  };

  struct Group {
    const DpActions* actions;
    uint64_t pkts;
    uint64_t bytes;
  };
  // Bursts match a handful of megaflows; linear scan beats a hash map.
  std::vector<Group> groups;
  groups.reserve(8);

  for (size_t i = 0; i < pkts.size(); ++i) {
    const DpActions* a = rx[i].actions;
    if (a == nullptr) continue;
    if (rewrites(*a)) {
      // Set-field/tunnel lists mutate a per-packet copy; no grouping.
      execute_actions(*a, pkts[i]);
      continue;
    }
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.actions == a) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back({a, 0, 0});
      g = &groups.back();
    }
    ++g->pkts;
    g->bytes += pkts[i].size_bytes;
    if (output_) {
      for (const DpAction& act : a->list)
        if (const auto* o = std::get_if<OutputAction>(&act))
          output_(o->port, pkts[i]);
    }
    if (controller_hook_) {
      for (const DpAction& act : a->list)
        if (std::holds_alternative<UserspaceAction>(act))
          controller_hook_(pkts[i]);
    }
  }

  for (const Group& g : groups) {
    for (const DpAction& act : g.actions->list) {
      if (const auto* o = std::get_if<OutputAction>(&act)) {
        counters_.tx_packets += g.pkts;
        counters_.tx_bytes += g.bytes;
        PortStats& ps = port_stats_[o->port];
        ps.tx_packets += g.pkts;
        ps.tx_bytes += g.bytes;
      } else if (std::get_if<UserspaceAction>(&act)) {
        counters_.to_controller += g.pkts;
      }
    }
  }
}

size_t Switch::inject_batch(std::span<const Packet> pkts, uint64_t now_ns) {
  if (pkts.empty()) return 0;
  results_.resize(pkts.size());
  Datapath::BatchSummary sum;
  be_->process_batch(pkts, now_ns, results_.data(), &sum);

  // Burst cost model: fixed dispatch overhead plus a reduced per-packet
  // cost; cache work is charged per *deduplicated* probe, which is where
  // batching actually saves kernel cycles.
  const CostModel& m = cfg_.cost;
  cpu_.kernel_cycles += m.batch_fixed +
                        m.per_packet_batched * sum.packets +
                        m.offload_probe * sum.offload_probes +
                        m.microflow_probe * sum.emc_probes +
                        m.per_tuple * sum.tuples_searched +
                        m.miss_kernel * sum.misses;

  if (trace_) {
    for (size_t i = 0; i < pkts.size(); ++i)
      if (results_[i].actions != nullptr)
        trace_(pkts[i], *results_[i].actions, results_[i].path);
  }
  execute_actions_batch(pkts, results_.data());
  return sum.misses;
}

Datapath::Path Switch::inject(const Packet& pkt, uint64_t now_ns) {
  const Datapath::RxResult rx = be_->receive(pkt, now_ns);

  // Kernel-side cycle accounting. An offload hit never reaches the CPU
  // cache hierarchy: it pays the per-packet descriptor cost and the slot
  // probe, nothing else. The CPU paths additionally pay the (cheap) slot
  // probe whenever the tier is enabled — the NIC looked and missed.
  const CostModel& m = cfg_.cost;
  double cycles = m.per_packet;
  if (be_->offload_enabled()) cycles += m.offload_probe;
  switch (rx.path) {
    case Datapath::Path::kOffloadHit:
      break;
    case Datapath::Path::kMicroflowHit:
      if (be_->microflow_enabled()) cycles += m.microflow_probe;
      break;
    case Datapath::Path::kMegaflowHit:
      if (be_->microflow_enabled()) cycles += m.microflow_probe;
      cycles += m.per_tuple * rx.tuples_searched;
      break;
    case Datapath::Path::kMiss:
      if (be_->microflow_enabled()) cycles += m.microflow_probe;
      cycles += m.per_tuple * rx.tuples_searched + m.miss_kernel;
      break;
  }
  cpu_.kernel_cycles += cycles;

  if (rx.actions != nullptr) {
    if (trace_) trace_(pkt, *rx.actions, rx.path);
    execute_actions(*rx.actions, pkt);
  }
  return rx.path;
}

Switch::InstallResult Switch::install_from_xlate(const XlateResult& xr,
                                                 const Packet& pkt,
                                                 uint64_t now_ns) {
  Match match;
  if (cfg_.megaflows_enabled) {
    match = xr.megaflow;
  } else {
    // "Megaflows disabled" mode (§7.2, Table 1): cache exact-match
    // microflow entries, one per transport connection.
    for (size_t i = 0; i < kFlowWords; ++i) match.mask.w[i] = ~uint64_t{0};
    match.key = pkt.key;
  }
  const size_t before = be_->flow_count();
  DpBackend::FlowRef e = be_->install(match, xr.actions, now_ns, &pkt.key);
  if (e == nullptr) {
    // Kernel refused the flow (table full, transient fault). The miss
    // packet was still forwarded by userspace; only the cache entry is
    // missing, so subsequent packets keep upcalling until a retry lands.
    ++counters_.install_fails;
    cpu_.user_cycles += cfg_.cost.install_fail;
    return InstallResult::kFailed;
  }
  be_->set_flow_tags(e, xr.tags);
  InstallResult res;
  if (be_->flow_count() > before) {
    ++counters_.flow_setups;
    Attribution& at = attribution_[e];
    at.rules = xr.matched_rules;
    at.captured_gen = pipeline_.tables_generation();
    res = InstallResult::kInstalled;
  } else {
    ++counters_.setup_dups;
    res = InstallResult::kDup;
  }
  // The miss packet is forwarded by userspace on the flow's behalf; it
  // counts toward the flow's statistics like any other packet.
  be_->credit_packet(e, pkt, now_ns);
  return res;
}

void Switch::schedule_retry(const Packet& pkt, uint64_t now_ns,
                            uint32_t attempts) {
  const DegradationConfig& d = cfg_.degradation;
  if (!d.enabled) return;  // ablation: a failed install is simply lost
  if (attempts >= d.max_install_retries ||
      retry_q_.size() >= d.max_retry_queue) {
    ++counters_.retry_abandoned;
    return;
  }
  retry_q_.push_back(
      {pkt, now_ns + (d.retry_backoff_ns << attempts), attempts});
}

size_t Switch::process_retries(uint64_t now_ns) {
  if (retry_q_.empty()) return 0;
  const CostModel& m = cfg_.cost;
  size_t executed = 0;
  std::deque<RetryEntry> pending;
  while (!retry_q_.empty()) {
    RetryEntry r = std::move(retry_q_.front());
    retry_q_.pop_front();
    if (r.not_before > now_ns) {
      pending.push_back(std::move(r));
      continue;
    }
    ++counters_.upcalls_retried;
    ++executed;
    // side_effects=false: MAC learning etc. already ran when the upcall
    // was first handled; this pass only re-attempts the cache install.
    XlateResult xr =
        pipeline_.translate(r.pkt.key, now_ns, /*side_effects=*/false);
    cpu_.user_cycles +=
        m.upcall_requeue + m.per_table_lookup * xr.table_lookups;
    const InstallResult res = install_from_xlate(xr, r.pkt, now_ns);
    if (res == InstallResult::kInstalled) {
      ++port_upcall_stats_[r.pkt.key.in_port()].installs;
    } else if (res == InstallResult::kFailed) {
      schedule_retry(r.pkt, now_ns, r.attempts + 1);
    }
  }
  retry_q_ = std::move(pending);
  return executed;
}

void Switch::maybe_inject_entry_faults() {
  if (fault_ == nullptr) return;
  if (fault_->should_fire(FaultPoint::kEntryCorrupt) &&
      be_->flow_count() > 0) {
    be_->corrupt_entry(fault_->pick(be_->flow_count()));
    // Corruption bypasses the pipeline generation: force the next
    // revalidation to re-translate everything so it repairs the entry.
    reval_force_full_ = true;
  }
  if (fault_->should_fire(FaultPoint::kEntryExpire) &&
      be_->flow_count() > 0) {
    be_->expire_entry(fault_->pick(be_->flow_count()));
  }
}

size_t Switch::handle_upcalls(uint64_t now_ns, size_t max_upcalls) {
  // A dead daemon handles nothing; whatever the kernel tried to deliver
  // since the crash was already refused at the sink.
  if (state_ != LifecycleState::kServing) return 0;
  const CostModel& m = cfg_.cost;
  process_retries(now_ns);
  size_t handled = 0;
  while (handled < max_upcalls) {
    const size_t batch_size = std::min(
        cfg_.batching ? cfg_.upcall_batch : size_t{1}, max_upcalls - handled);
    std::vector<Packet> batch = queue_.take(batch_size);
    if (batch.empty()) break;
    // One kernel/user crossing per batch; batching amortizes it (§4.1).
    cpu_.user_cycles += m.upcall_syscall;
    // The whole miss burst classifies against table 0 in one batched sweep
    // (classifier lookup_batch); per-packet action translation, install,
    // and side effects then run in arrival order as before.
    std::vector<XlateResult> xrs = pipeline_.translate_batch(
        std::span<const Packet>(batch.data(), batch.size()), now_ns);
    for (size_t bi = 0; bi < batch.size(); ++bi) {
      const Packet& pkt = batch[bi];
      XlateResult& xr = xrs[bi];
      cpu_.user_cycles +=
          m.upcall_fixed + m.per_table_lookup * xr.table_lookups;
      if (xr.error) ++counters_.xlate_errors;
      const InstallResult res = install_from_xlate(xr, pkt, now_ns);
      PortUpcallStats& ps = port_upcall_stats_[pkt.key.in_port()];
      ++ps.handled;
      if (res == InstallResult::kInstalled) ++ps.installs;
      if (res == InstallResult::kFailed) schedule_retry(pkt, now_ns, 0);
      // The queued packet itself is now forwarded.
      if (trace_) trace_(pkt, xr.actions, Datapath::Path::kMiss);
      execute_actions(xr.actions, pkt);
      ++handled;
      ++counters_.upcalls_handled;
    }
  }
  maybe_inject_entry_faults();
  // Delay-faulted upcalls surface into the fair queue now; they are
  // serviced on the next invocation (observably one round late).
  be_->flush_delayed_upcalls();
  return handled;
}

void Switch::apply_limit_backoff() {
  limit_scale_ = std::max(limit_scale_ * cfg_.degradation.limit_backoff,
                          1.0 / 65536.0);
  ++counters_.flow_limit_backoffs;
}

void Switch::revalidate(uint64_t now_ns) {
  const CostModel& m = cfg_.cost;

  if (fault_ != nullptr &&
      fault_->should_fire(FaultPoint::kRevalidatorStall)) {
    // The pass blocks past its deadline without examining anything: charge
    // the wasted wall time and let the AIMD limit see a synthetic overrun
    // (a stalled revalidator must not be rewarded with a bigger table).
    cpu_.user_cycles +=
        2.0 * (static_cast<double>(cfg_.max_revalidation_ns) / 1e9) *
        (m.ghz * 1e9);
    ++counters_.reval_stalls;
    if (cfg_.degradation.enabled) apply_limit_backoff();
    return;
  }

  ++counters_.reval_runs;
  const size_t n_threads = std::max<size_t>(1, cfg_.revalidator_threads);

  // Dynamic flow limit (§6): "the actual maximum is dynamically adjusted to
  // ensure that total revalidation time stays under 1 second". N plan
  // threads cover N times the flows within the same deadline (§4.3). The
  // AIMD scale (degradation policy) shrinks it further after overruns.
  if (cfg_.dynamic_flow_limit) {
    const double reval_capacity =
        (static_cast<double>(cfg_.max_revalidation_ns) / 1e9) *
        (m.ghz * 1e9) / m.reval_per_flow *
        static_cast<double>(n_threads);
    effective_limit_ = std::min(cfg_.flow_limit,
                                static_cast<size_t>(reval_capacity));
  } else {
    effective_limit_ = cfg_.flow_limit;
  }
  if (cfg_.degradation.enabled && limit_scale_ < 1.0) {
    // Scale down, but never below limit_floor (or below the unscaled limit
    // itself when that is already under the floor).
    const size_t floor =
        std::min(effective_limit_, cfg_.degradation.limit_floor);
    effective_limit_ = std::max(
        floor, static_cast<size_t>(static_cast<double>(effective_limit_) *
                                   limit_scale_));
  }

  const bool over_limit = be_->flow_count() > effective_limit_;
  // Above the maximum size, drop the idle time to force the table to
  // shrink (§6).
  const uint64_t idle_ns =
      over_limit ? cfg_.overflow_idle_timeout_ns : cfg_.idle_timeout_ns;

  const uint64_t gen = pipeline_.generation();
  const uint64_t tables_gen = pipeline_.tables_generation();
  const uint64_t ports_gen = pipeline_.ports_generation();
  // ct_state feeds classification, so conntrack mutations are a dirtiness
  // source of their own. Gated by ct_reval_dirty: the ablation the
  // differential fuzzer must catch serves stale ct_state megaflows here.
  const uint64_t ct_gen = pipeline_.conntrack().generation();
  const bool ct_dirty =
      cfg_.ct_reval_dirty && ct_gen != ct_gen_at_last_reval_;
  const bool maybe_stale =
      gen != pipeline_gen_at_last_reval_ || ct_dirty || reval_force_full_;
  const uint64_t changed_tags = pipeline_.mac_learning().take_changed_tags();

  // Plan phase: partition the dump across revalidator threads; each
  // re-translates read-only (side_effects=false) and records a verdict.
  Revalidator::Config rc;
  rc.n_threads = n_threads;
  rc.idle_ns = idle_ns;
  rc.maybe_stale = maybe_stale;
  // kTags (historical): tags gate re-translation even when a full pass was
  // forced — its documented weakness. kTwoTier drops the fast path when a
  // full pass is forced (entry corruption bypasses the generation
  // counters), so faulted entries are always repaired; and because tags
  // track only MAC bindings, it also drops it whenever the tables or ports
  // generation moved — a rule or port change can invalidate flows whose
  // tags never change, so only MAC-driven staleness may take the tier-1
  // skip (the soundness condition behind making kTwoTier the default).
  // Conntrack staleness likewise never shows up in tags, so ct-generation
  // movement drops the fast path for the pass.
  rc.use_tags =
      cfg_.reval_mode == RevalidationMode::kTags ||
      (cfg_.reval_mode == RevalidationMode::kTwoTier && !reval_force_full_ &&
       tables_gen == tables_gen_at_last_reval_ &&
       ports_gen == ports_gen_at_last_reval_ && !ct_dirty);
  rc.changed_tags = changed_tags;
  rc.reval_per_flow = m.reval_per_flow;
  rc.per_table_lookup = m.per_table_lookup;

  std::vector<DpBackend::FlowRef> flows = be_->dump();
  last_pass_ = Revalidator::plan(*be_, pipeline_, flows, now_ns, rc,
                                 &decisions_);
  counters_.reval_flows_examined += last_pass_.examined;
  counters_.reval_skipped_by_tags += last_pass_.skipped_by_tags;

  // Work vs latency: every partition's cycles are CPU work; the deadline
  // below compares against the modeled pass latency (slowest partition
  // plus per-thread fan-out/join overhead, charged only when threads > 1).
  const double sync_cycles =
      last_pass_.threads_used > 1
          ? m.reval_thread_sync * static_cast<double>(last_pass_.threads_used)
          : 0.0;
  cpu_.user_cycles += last_pass_.total_cycles + sync_cycles;

  // Apply phase (serial, dump order): all mutations happen here, on the
  // control thread, so the outcome is independent of the thread count.
  for (size_t i = 0; i < flows.size(); ++i) {
    DpBackend::FlowRef f = flows[i];
    RevalDecision& d = decisions_[i];
    switch (d.kind) {
      case RevalDecision::Kind::kDeleteIdle:
        push_flow_stats(f, now_ns);  // final stats (validated internally)
        attribution_.erase(f);
        be_->remove(f);
        ++counters_.reval_deleted_idle;
        break;
      case RevalDecision::Kind::kSkipClean:
        push_flow_stats(f, now_ns);
        break;
      case RevalDecision::Kind::kSkipTags:
        // kTags (historical, §6): no stats push — the attribution pointers
        // were not revalidated and the full generation has moved. kTwoTier:
        // attribution is keyed on the tables generation, which a MAC-only
        // change leaves alone, so skipped flows still feed statistics.
        if (cfg_.reval_mode == RevalidationMode::kTwoTier)
          push_flow_stats(f, now_ns);
        break;
      case RevalDecision::Kind::kKeepFresh:
        // Refresh the attribution (rule pointers may have been replaced)
        // and push pending stats against the CURRENT rules.
        be_->set_flow_tags(f, d.xr.tags);
        refresh_attribution(f, std::move(d.xr));
        push_flow_stats(f, now_ns);
        break;
      case RevalDecision::Kind::kUpdateActions: {
        DpActions fresh = d.xr.actions;
        be_->update_actions(f, std::move(fresh));  // RCU swap on sharded
        be_->set_flow_tags(f, d.xr.tags);
        refresh_attribution(f, std::move(d.xr));
        push_flow_stats(f, now_ns);
        ++counters_.reval_updated_actions;
        break;
      }
      case RevalDecision::Kind::kDeleteStale:
        attribution_.erase(f);
        be_->remove(f);  // shape changed: let traffic re-establish it
        ++counters_.reval_deleted_stale;
        break;
    }
  }
  pipeline_gen_at_last_reval_ = gen;
  tables_gen_at_last_reval_ = tables_gen;
  ports_gen_at_last_reval_ = ports_gen;
  ct_gen_at_last_reval_ = ct_gen;
  reval_force_full_ = false;

  // Hard eviction if still above the limit: oldest-used first, like
  // userspace "must be able to delete flows ... as quickly as it can
  // install new flows" (§6).
  if (be_->flow_count() > effective_limit_) {
    std::vector<DpBackend::FlowRef> live = be_->dump();
    std::sort(live.begin(), live.end(),
              [this](DpBackend::FlowRef a, DpBackend::FlowRef b) {
                return be_->flow_used_ns(a) < be_->flow_used_ns(b);
              });
    size_t excess = be_->flow_count() - effective_limit_;
    for (size_t i = 0; i < excess; ++i) {
      attribution_.erase(live[i]);
      be_->remove(live[i]);
      ++counters_.evicted_flow_limit;
    }
  }

  // Offload placement rides the same dump cadence as revalidation: the
  // EWMAs fold in this interval's measured per-flow traffic, then slots are
  // earned/revoked. Runs on the post-eviction survivor set, and before
  // purge_dead() so the sharded backend's republish makes the slot changes
  // visible in the same pass.
  if (be_->offload_enabled()) offload_placement(be_->dump(), now_ns);

  be_->purge_dead();  // grace period (also publishes offload changes)

  // Deadline check: AIMD the flow limit. A pass that blew the deadline
  // halves the table it will tolerate next time; a clean pass wins a
  // fraction of the headroom back (§6's "dynamically adjusted", made
  // explicit as multiplicative-decrease / additive-increase). The latency
  // compared is the plan makespan plus thread sync — with one thread this
  // equals the seed's serial user-cycle delta exactly.
  if (cfg_.degradation.enabled) {
    const double pass_ns =
        m.seconds(last_pass_.makespan_cycles + sync_cycles) * 1e9;
    if (pass_ns > static_cast<double>(cfg_.max_revalidation_ns)) {
      ++counters_.reval_overruns;
      apply_limit_backoff();
    } else if (!mask_explosion_ && !ct_pressure_) {
      // Additive recovery pauses while the tuple-explosion or conntrack
      // pressure detector is engaged: a clean pass under attack only means
      // the shrunken table fits the deadline, not that growing it back is
      // safe.
      limit_scale_ =
          std::min(1.0, limit_scale_ + cfg_.degradation.limit_recovery);
    }
  }
}

void Switch::offload_placement(const std::vector<DpBackend::FlowRef>& flows,
                               uint64_t now_ns) {
  if (!be_->offload_enabled()) return;
  const CostModel& m = cfg_.cost;
  const double alpha = cfg_.offload_ewma_alpha;

  // Fold this dump interval's per-flow packet deltas into the EWMAs. A
  // flow first seen this pass scores its lifetime count (it has exactly one
  // interval of history). The delta guard covers FlowRef address reuse: a
  // recycled pointer inheriting a stale record must not wrap.
  for (DpBackend::FlowRef f : flows) {
    const uint64_t pkts = be_->flow_packets(f);
    auto [it, fresh] = offload_state_.try_emplace(f);
    OffloadState& st = it->second;
    const uint64_t delta =
        fresh || pkts < st.last_packets ? pkts : pkts - st.last_packets;
    st.ewma = fresh ? static_cast<double>(delta)
                    : alpha * static_cast<double>(delta) +
                          (1.0 - alpha) * st.ewma;
    st.last_packets = pkts;
    st.offloaded = be_->offload_contains(f);
  }
  // Drop records for flows that died since the last pass (idle/stale
  // deletion, limit eviction, quarantine); the backend already invalidated
  // their slots when it removed them.
  {
    std::unordered_set<DpBackend::FlowRef> live(flows.begin(), flows.end());
    for (auto it = offload_state_.begin(); it != offload_state_.end();) {
      if (live.count(it->first) == 0)
        it = offload_state_.erase(it);
      else
        ++it;
    }
  }

  struct Ranked {
    DpBackend::FlowRef f;
    double ewma;
  };
  std::vector<Ranked> incumbents, challengers;

  // Rank by walking the dump (deterministic order), not the pointer-keyed
  // state map: with EWMA ties — common in a long Zipf tail — the map's
  // iteration order would leak heap-address noise into which flows win
  // slots, and identical runs would place differently.
  //
  // Decayed-cold incumbents lose their slot even with no challenger: a slot
  // earning fewer than offload_min_ewma packets per interval is dead NIC
  // capacity.
  for (DpBackend::FlowRef f : flows) {
    OffloadState& st = offload_state_[f];
    if (st.offloaded && st.ewma < cfg_.offload_min_ewma) {
      if (be_->offload_evict(f)) {
        st.offloaded = false;
        ++counters_.offload_evicts;
        cpu_.user_cycles += m.offload_evict;
      }
    }
  }
  for (DpBackend::FlowRef f : flows) {
    const OffloadState& st = offload_state_[f];
    if (st.offloaded)
      incumbents.push_back({f, st.ewma});
    else if (st.ewma >= cfg_.offload_min_ewma)
      challengers.push_back({f, st.ewma});
  }
  std::stable_sort(
      challengers.begin(), challengers.end(),
      [](const Ranked& a, const Ranked& b) { return a.ewma > b.ewma; });

  // Free slots go to the hottest challengers outright.
  size_t ci = 0;
  while (ci < challengers.size() &&
         be_->offload_size() < be_->offload_capacity()) {
    if (be_->offload_install(challengers[ci].f, now_ns)) {
      offload_state_[challengers[ci].f].offloaded = true;
      ++counters_.offload_installs;
      cpu_.user_cycles += m.offload_install;
    }
    ++ci;
  }
  if (ci >= challengers.size()) return;

  // Hysteresis (churn damping): a remaining challenger takes the coldest
  // incumbent's slot only when clearly hotter — beating its EWMA by
  // offload_challenge_factor — so two flows trading rank near the boundary
  // do not thrash install/evict every pass.
  std::stable_sort(
      incumbents.begin(), incumbents.end(),
      [](const Ranked& a, const Ranked& b) { return a.ewma < b.ewma; });
  size_t ii = 0;
  while (ci < challengers.size() && ii < incumbents.size()) {
    if (challengers[ci].ewma <=
        incumbents[ii].ewma * cfg_.offload_challenge_factor)
      break;  // sorted: no later pair can succeed either
    if (be_->offload_evict(incumbents[ii].f)) {
      offload_state_[incumbents[ii].f].offloaded = false;
      ++counters_.offload_evicts;
      cpu_.user_cycles += m.offload_evict;
    }
    if (be_->offload_install(challengers[ci].f, now_ns)) {
      offload_state_[challengers[ci].f].offloaded = true;
      ++counters_.offload_installs;
      cpu_.user_cycles += m.offload_install;
    }
    ++ci;
    ++ii;
  }
}

void Switch::offload_reconcile() {
  if (!be_->offload_enabled()) return;
  const CostModel& m = cfg_.cost;
  // Adopt-or-flush (DESIGN.md §13): the restarted daemon walks the NIC
  // state it did not program. A slot is adopted when its owner survived the
  // reconciliation ladder AND its snapshot matches the owner's (repaired)
  // actions — which the backend's coherence hooks guarantee for every
  // surviving owner, so a flush here means the coherence machinery failed
  // or the hardware state was tampered with. Adopted slots seed the
  // placement EWMA with their lifetime hit counts, so hot hardware flows
  // are not displaced by the first post-restart pass.
  std::unordered_set<DpBackend::FlowRef> live;
  for (DpBackend::FlowRef f : be_->dump()) live.insert(f);
  for (const DpBackend::OffloadSlot& s : be_->offload_dump()) {
    const bool coherent = live.count(s.owner) != 0 &&
                          *s.actions == be_->flow_actions(s.owner);
    if (coherent) {
      OffloadState& st = offload_state_[s.owner];
      st.offloaded = true;
      st.last_packets = be_->flow_packets(s.owner);
      st.ewma = std::max(st.ewma, static_cast<double>(s.hits));
      ++counters_.offload_adopted;
    } else {
      be_->offload_evict(s.owner);
      cpu_.user_cycles += m.offload_evict;
      ++counters_.offload_flushed;
    }
  }
  be_->offload_commit();
}

void Switch::update_emc_policy() {
  const DegradationConfig& d = cfg_.degradation;
  if (!d.enabled) return;
  const Datapath::Stats s = be_->stats();
  const uint64_t attempts_now = s.emc_inserts + s.emc_insert_skips;
  const uint64_t attempts = attempts_now - emc_attempts_seen_;
  const uint64_t hits = s.microflow_hits - emc_hits_seen_;
  emc_attempts_seen_ = attempts_now;
  emc_hits_seen_ = s.microflow_hits;
  // Thrash signature (§7.3): the EMC is being rewritten far faster than it
  // is producing hits — every insert evicts something still useful (or
  // never useful, under a never-repeating adversary). Ratio with +1 so a
  // zero-hit interval is well-defined. Engaging needs emc_min_inserts of
  // signal; disengaging happens at half the engage threshold regardless of
  // volume (hysteresis: churn subsiding, not churn pausing, re-enables
  // normal insertion — and a quiet interval counts as subsided).
  const double ratio =
      static_cast<double>(attempts) / static_cast<double>(hits + 1);
  if (!emc_degraded_) {
    if (attempts >= d.emc_min_inserts && ratio > d.emc_thrash_ratio) {
      be_->set_emc_insert_inv_prob(d.emc_degraded_inv_prob);
      emc_degraded_ = true;
      ++counters_.emc_degrade_engaged;
    }
  } else if (ratio < d.emc_thrash_ratio / 2) {
    be_->set_emc_insert_inv_prob(cfg_.datapath.emc_insert_inv_prob);
    emc_degraded_ = false;
  }
}

void Switch::update_cls_policy() {
  const DegradationConfig& d = cfg_.degradation;
  if (!d.enabled) return;
  if (d.mask_explosion_subtables == 0 && d.mask_probe_ewma_threshold <= 0.0)
    return;
  // Per-packet probe cost over the interval, smoothed. The kernel datapath
  // is where attacker-minted masks accumulate (megaflows inherit them), so
  // its counters are the detector's input — the userspace classifier shape
  // is visible via cls_subtables() but is bounded by admission/partitioning
  // upstream.
  const Datapath::Stats s = be_->stats();
  const uint64_t dpkts = s.packets - dp_packets_seen_;
  const uint64_t dtuples = s.tuples_searched - dp_tuples_seen_;
  dp_packets_seen_ = s.packets;
  dp_tuples_seen_ = s.tuples_searched;
  if (dpkts > 0) {
    const double probe =
        static_cast<double>(dtuples) / static_cast<double>(dpkts);
    probe_ewma_ = d.mask_probe_ewma_alpha * probe +
                  (1.0 - d.mask_probe_ewma_alpha) * probe_ewma_;
  }
  const size_t masks = be_->mask_count();
  const bool count_hot = d.mask_explosion_subtables > 0 &&
                         masks >= d.mask_explosion_subtables;
  const bool probe_hot = d.mask_probe_ewma_threshold > 0.0 &&
                         probe_ewma_ > d.mask_probe_ewma_threshold;
  const bool count_cool = d.mask_explosion_subtables == 0 ||
                          masks < d.mask_explosion_subtables / 2;
  const bool probe_cool = d.mask_probe_ewma_threshold <= 0.0 ||
                          probe_ewma_ < d.mask_probe_ewma_threshold / 2;
  if (!mask_explosion_) {
    if (count_hot || probe_hot) {
      mask_explosion_ = true;
      ++counters_.mask_explosion_engaged;
      apply_limit_backoff();
    }
  } else if (count_cool && probe_cool) {
    // Hysteresis: both signals must fall to half their engage thresholds —
    // the attack subsiding, not one quiet interval — before recovery
    // resumes (revalidate()'s additive increase takes over from here).
    mask_explosion_ = false;
  } else if (count_hot || probe_hot) {
    // Signal persisting at engage level: keep ratcheting the table down
    // until eviction sheds enough attacker masks to cool the probes.
    apply_limit_backoff();
  }
}

void Switch::update_ct_policy() {
  const DegradationConfig& d = cfg_.degradation;
  if (!d.enabled || d.ct_pressure_ratio <= 0.0 || cfg_.ct_max_entries == 0)
    return;
  const double occupancy =
      static_cast<double>(pipeline_.conntrack().size()) /
      static_cast<double>(cfg_.ct_max_entries);
  const bool hot = occupancy >= d.ct_pressure_ratio;
  const bool cool = occupancy < d.ct_pressure_ratio / 2;
  if (!ct_pressure_) {
    if (hot) {
      ct_pressure_ = true;
      ++counters_.ct_pressure_engaged;
      apply_limit_backoff();
    }
  } else if (cool) {
    // Hysteresis: occupancy must fall to half the engage ratio — the churn
    // subsiding, not one eviction — before additive recovery resumes.
    ct_pressure_ = false;
  } else if (hot) {
    // Pressure persisting at engage level: keep ratcheting the megaflow
    // table down (per-connection megaflows are the product of ct churn).
    apply_limit_backoff();
  }
}

size_t Switch::cls_subtables() const noexcept {
  size_t n = 0;
  for (size_t t = 0; t < pipeline_.n_tables(); ++t)
    n += pipeline_.table(t).classifier().n_subtables();
  return n;
}

size_t Switch::cls_max_probe_depth() const noexcept {
  size_t n = 0;
  for (size_t t = 0; t < pipeline_.n_tables(); ++t)
    n = std::max(n, pipeline_.table(t).classifier().max_probe_depth());
  return n;
}

void Switch::refresh_attribution(DpBackend::FlowRef f, XlateResult&& xr) {
  Attribution& at = attribution_[f];
  at.rules = std::move(xr.matched_rules);
  at.captured_gen = pipeline_.tables_generation();
}

void Switch::adopt_attribution(DpBackend::FlowRef f, XlateResult&& xr) {
  Attribution& at = attribution_[f];
  at.rules = std::move(xr.matched_rules);
  at.captured_gen = pipeline_.tables_generation();
  // The rebuilt rules' statistics start from zero; pre-adoption traffic
  // belongs to the previous daemon incarnation and must not be replayed.
  at.pushed_packets = be_->flow_packets(f);
  at.pushed_bytes = be_->flow_bytes(f);
}

void Switch::crash() {
  if (state_ != LifecycleState::kServing) return;
  // Durable config snapshot (the OVSDB role, §3.3): ports and OpenFlow
  // rules survive the daemon. Everything else is process state.
  saved_flows_ = dump_flows();
  saved_ports_ = pipeline_.ports();
  // Fold in-flight slow-path work into the loss counters so the
  // upcall/install ledgers still balance across the crash: queued upcalls
  // were never handled (they are drops), pending retries are abandoned.
  counters_.retry_abandoned += retry_q_.size();
  retry_q_.clear();
  while (true) {
    const std::vector<Packet> lost = queue_.take(256);
    if (lost.empty()) break;
    counters_.upcalls_dropped += lost.size();
  }
  // Tear down userspace: fresh pipeline (tables rebuilt from config on
  // restart), no attribution, degradation detectors back to defaults. The
  // EMC insertion knob is kernel state the dead daemon had set — a restart
  // restores the configured policy, like a fresh daemon would. Conntrack
  // lives in the pipeline and dies with it (userspace state, unlike the
  // real kernel module): established connections re-enter as kNew after
  // restart, and reconciliation repairs megaflows stamped with the stale
  // ct_state.
  pipeline_ = Pipeline(cfg_.n_tables, cfg_.classifier, ct_config(cfg_));
  attribution_.clear();
  // Placement memory is process state; the offload table itself is NIC
  // state and survives, still forwarding, until restart() adopts or
  // flushes it.
  offload_state_.clear();
  limit_scale_ = 1.0;
  effective_limit_ = cfg_.flow_limit;
  emc_degraded_ = false;
  be_->set_emc_insert_inv_prob(cfg_.datapath.emc_insert_inv_prob);
  const Datapath::Stats s = be_->stats();
  emc_attempts_seen_ = s.emc_inserts + s.emc_insert_skips;
  emc_hits_seen_ = s.microflow_hits;
  mask_explosion_ = false;
  probe_ewma_ = 0.0;
  dp_tuples_seen_ = s.tuples_searched;
  dp_packets_seen_ = s.packets;
  ct_pressure_ = false;
  tenant_masks_.clear();
  tenant_masks_valid_ = false;
  tenant_masks_gen_ = 0;
  reval_force_full_ = false;
  pipeline_gen_at_last_reval_ = 0;
  tables_gen_at_last_reval_ = 0;
  ports_gen_at_last_reval_ = 0;
  ct_gen_at_last_reval_ = 0;
  last_pass_ = RevalPassStats{};
  ++counters_.userspace_crashes;
  state_ = LifecycleState::kCrashed;
}

bool Switch::restart(uint64_t now_ns) {
  if (state_ == LifecycleState::kServing) return true;
  const CostModel& m = cfg_.cost;
  double blackout_cycles = 0;

  if (state_ == LifecycleState::kCrashed) {
    // Daemon re-exec: OpenFlow state rebuilt from the durable snapshot.
    blackout_cycles += m.restart_fixed;
    for (uint32_t p : saved_ports_) pipeline_.add_port(p);
    for (const std::string& f : saved_flows_) add_flow(f, now_ns);
    state_ = LifecycleState::kReconciling;
  }

  if (fault_ != nullptr && fault_->should_fire(FaultPoint::kReconcileStall)) {
    // Reconciliation blocked for a round (datapath dump timed out, say):
    // the blackout extends, the surviving cache keeps forwarding, and the
    // next maintenance round tries again.
    cpu_.user_cycles +=
        2.0 * (static_cast<double>(cfg_.max_revalidation_ns) / 1e9) *
        (m.ghz * 1e9);
    counters_.reconcile_blackout_cycles += static_cast<uint64_t>(
        2.0 * (static_cast<double>(cfg_.max_revalidation_ns) / 1e9) *
        (m.ghz * 1e9));
    ++counters_.reconcile_stalls;
    return false;
  }

  // Reconciliation pass (§9): forced-full plan over the surviving cache —
  // the crash-time tags died with the daemon, so every flow re-translates
  // against the rebuilt tables. Plan parallelizes across revalidator
  // threads; the apply below is serial in dump order, which is what makes
  // the outcome independent of the thread count and the backend.
  force_full_revalidation();
  Revalidator::Config rc;
  rc.n_threads = std::max<size_t>(1, cfg_.revalidator_threads);
  rc.idle_ns = cfg_.idle_timeout_ns;
  rc.maybe_stale = true;
  rc.use_tags = false;
  rc.changed_tags = 0;
  rc.reval_per_flow = m.reval_per_flow;
  rc.per_table_lookup = m.per_table_lookup;

  const std::vector<DpBackend::FlowRef> flows = be_->dump();
  last_pass_ = Revalidator::plan(*be_, pipeline_, flows, now_ns, rc,
                                 &decisions_);
  counters_.reval_flows_examined += last_pass_.examined;
  const double sync_cycles =
      last_pass_.threads_used > 1
          ? m.reval_thread_sync * static_cast<double>(last_pass_.threads_used)
          : 0.0;
  blackout_cycles += last_pass_.total_cycles + sync_cycles;

  for (size_t i = 0; i < flows.size(); ++i) {
    DpBackend::FlowRef f = flows[i];
    RevalDecision& d = decisions_[i];
    switch (d.kind) {
      case RevalDecision::Kind::kDeleteIdle:
        // Sat idle through the blackout; no attribution exists yet.
        be_->remove(f);
        ++counters_.reval_deleted_idle;
        break;
      case RevalDecision::Kind::kSkipClean:
      case RevalDecision::Kind::kSkipTags:
        break;  // unreachable: maybe_stale && !use_tags
      case RevalDecision::Kind::kKeepFresh:
        be_->set_flow_tags(f, d.xr.tags);
        adopt_attribution(f, std::move(d.xr));
        ++counters_.flows_adopted;
        break;
      case RevalDecision::Kind::kUpdateActions: {
        DpActions fresh = d.xr.actions;
        be_->update_actions(f, std::move(fresh));
        be_->set_flow_tags(f, d.xr.tags);
        adopt_attribution(f, std::move(d.xr));
        ++counters_.flows_repaired;
        break;
      }
      case RevalDecision::Kind::kDeleteStale:
        be_->remove(f);
        ++counters_.reval_deleted_stale;
        break;
    }
  }
  be_->purge_dead();

  // Adopt-or-flush the surviving offload table through the same ladder
  // (DESIGN.md §13) before the invariant gate judges it.
  offload_reconcile();

  // Post-reconciliation gate: only a cache that passes the megaflow
  // invariants may serve installs again; anything still violating after
  // the full re-translation is quarantined rather than left to misdeliver.
  // (self_check charges its own cpu cycles; fold them into the blackout
  // tally without charging twice.)
  const DpCheckReport gate = self_check();
  counters_.reconcile_blackout_cycles += static_cast<uint64_t>(
      m.dp_check_per_flow * static_cast<double>(gate.flows_checked));

  pipeline_gen_at_last_reval_ = pipeline_.generation();
  tables_gen_at_last_reval_ = pipeline_.tables_generation();
  ports_gen_at_last_reval_ = pipeline_.ports_generation();
  ct_gen_at_last_reval_ = pipeline_.conntrack().generation();
  reval_force_full_ = false;
  cpu_.user_cycles += blackout_cycles;
  counters_.reconcile_blackout_cycles +=
      static_cast<uint64_t>(blackout_cycles);
  state_ = LifecycleState::kServing;
  return true;
}

DpCheckReport Switch::self_check() {
  DpCheckReport rep = run_dp_check(*be_);
  cpu_.user_cycles +=
      cfg_.cost.dp_check_per_flow * static_cast<double>(rep.flows_checked);
  // Incoherent offload slots are flushed (the megaflow path serves the
  // traffic correctly); quarantined flows below drop their slots through
  // the backend's remove() hook.
  for (DpBackend::FlowRef o : rep.offload_flush) {
    if (be_->offload_evict(o)) {
      ++counters_.offload_evicts;
      cpu_.user_cycles += cfg_.cost.offload_evict;
    }
  }
  if (!rep.offload_flush.empty()) be_->offload_commit();
  for (DpBackend::FlowRef f : rep.quarantine) {
    attribution_.erase(f);
    be_->remove(f);
    ++counters_.flows_quarantined;
  }
  if (!rep.quarantine.empty()) be_->purge_dead();
  return rep;
}

void Switch::push_flow_stats(DpBackend::FlowRef f, uint64_t now_ns) {
  auto it = attribution_.find(f);
  if (it == attribution_.end()) return;
  Attribution& at = it->second;
  // Rule pointers are only safe while no flow-table change happened since
  // capture. Keying on the TABLES generation (not the full pipeline
  // generation) lets MAC-learning churn — which cannot invalidate OfRule
  // pointers — leave statistics flowing; this is what makes the kTwoTier
  // skip path able to push stats for flows it never re-translated.
  if (at.captured_gen != pipeline_.tables_generation()) return;
  const uint64_t dp_pkts = be_->flow_packets(f);
  const uint64_t dp_bytes = be_->flow_bytes(f);
  if (dp_pkts == at.pushed_packets) return;
  const uint64_t dpkts = dp_pkts - at.pushed_packets;
  const uint64_t dbytes = dp_bytes - at.pushed_bytes;
  for (const OfRule* r : at.rules) r->add_stats(dpkts, dbytes, now_ns);
  at.pushed_packets = dp_pkts;
  at.pushed_bytes = dp_bytes;
}

void Switch::run_maintenance(uint64_t now_ns) {
  // A downed daemon's only maintenance is coming back up; the blackout for
  // new flows lasts until a restart round completes (an injected
  // kReconcileStall can stretch it across several).
  if (state_ != LifecycleState::kServing) {
    restart(now_ns);
    return;
  }
  // The daemon can die between any two maintenance rounds; the datapath
  // keeps forwarding from its surviving cache until restart() reconciles.
  if (fault_ != nullptr && fault_->should_fire(FaultPoint::kUserspaceCrash)) {
    crash();
    return;
  }
  pipeline_.mac_learning().expire(now_ns);
  // Conntrack idle expiry before revalidation: expiring entries bumps the
  // ct generation, so megaflows stamped with the dead connections' ct_state
  // are repaired in the same pass instead of serving stale state for a
  // round (DESIGN.md §15).
  counters_.ct_expired_idle += pipeline_.conntrack().expire_idle(now_ns);
  update_emc_policy();
  update_cls_policy();
  update_ct_policy();
  revalidate(now_ns);
  // OpenFlow idle/hard flow expiry uses the statistics refreshed above
  // (§6); expirations bump the pipeline generation, so the next
  // revalidation round converges the cache.
  pipeline_.expire_flows(now_ns);
}

}  // namespace ovs
