#include "vswitchd/upcall_queue.h"

namespace ovs {

FairUpcallQueue::PortState& FairUpcallQueue::state_for(uint32_t port) {
  auto it = per_port_.find(port);
  if (it == per_port_.end()) {
    it = per_port_.emplace(port, PortState{}).first;
    rr_order_.push_back(port);
  }
  return it->second;
}

bool FairUpcallQueue::enqueue(Packet&& pkt) {
  const uint32_t port = pkt.key.in_port();
  PortState& ps = state_for(port);
  if (cfg_.fair && ps.c.depth >= cfg_.per_port_quota) {
    ++ps.c.dropped_quota;
    ++dropped_;
    return false;
  }
  if (total_ >= cfg_.global_cap) {
    ++ps.c.dropped_cap;
    ++dropped_;
    return false;
  }
  if (cfg_.fair)
    ps.q.push_back(std::move(pkt));
  else
    fifo_.push_back(std::move(pkt));
  ++ps.c.enqueued;
  ++ps.c.depth;
  ++total_;
  ++enqueued_;
  return true;
}

std::vector<Packet> FairUpcallQueue::take(size_t max) {
  std::vector<Packet> out;
  if (max == 0 || total_ == 0) return out;
  out.reserve(std::min(max, total_));
  if (!cfg_.fair) {
    while (out.size() < max && !fifo_.empty()) {
      Packet pkt = std::move(fifo_.front());
      fifo_.pop_front();
      PortState& ps = state_for(pkt.key.in_port());
      ++ps.c.dequeued;
      --ps.c.depth;
      --total_;
      out.push_back(std::move(pkt));
    }
    return out;
  }
  while (out.size() < max && total_ > 0) {
    // total_ > 0 guarantees some port is backlogged, so this scan finds one
    // within a full cycle of rr_order_.
    PortState* ps = nullptr;
    do {
      ps = &per_port_[rr_order_[rr_cursor_]];
      rr_cursor_ = (rr_cursor_ + 1) % rr_order_.size();
    } while (ps->q.empty());
    out.push_back(std::move(ps->q.front()));
    ps->q.pop_front();
    ++ps->c.dequeued;
    --ps->c.depth;
    --total_;
  }
  return out;
}

FairUpcallQueue::PortCounters FairUpcallQueue::port_counters(
    uint32_t port) const {
  auto it = per_port_.find(port);
  return it == per_port_.end() ? PortCounters{} : it->second.c;
}

}  // namespace ovs
