// Bounded per-port upcall queues with fair round-robin dequeue.
//
// The datapath's miss queue used to be one global FIFO: a single hostile
// port generating a connection storm (or a tuple-space-explosion adversary)
// could fill it end to end, starving every other port of flow setups — the
// cascade §6's flow limits exist to prevent. This queue gives each ingress
// port its own bounded backlog (per-port quota) under a global cap, and
// dequeues round-robin across ports, so a port's slow-path service share is
// bounded below regardless of any other port's offered load.
//
// `fair = false` collapses the structure to the historical single FIFO
// (global cap only, arrival order) — the ablation the storm bench compares
// against. Per-port accounting is kept in both modes.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "packet/packet.h"

namespace ovs {

struct UpcallQueueConfig {
  bool fair = true;           // false: one global FIFO (pre-hardening shape)
  size_t per_port_quota = 512;  // max queued upcalls per ingress port
  size_t global_cap = 4096;     // max queued upcalls across all ports
};

class FairUpcallQueue {
 public:
  explicit FairUpcallQueue(UpcallQueueConfig cfg = {}) : cfg_(cfg) {}

  // Queues one miss upcall (keyed by the packet's in_port). Returns false —
  // and counts the drop against the port — when the port's quota or the
  // global cap is exhausted.
  bool enqueue(Packet&& pkt);

  // Dequeues up to `max` upcalls. Fair mode: one packet per backlogged port
  // per round-robin pass, resuming after the last port served so no port is
  // systematically first. FIFO mode: arrival order.
  std::vector<Packet> take(size_t max);

  size_t depth() const noexcept { return total_; }

  struct PortCounters {
    uint64_t enqueued = 0;
    uint64_t dequeued = 0;
    uint64_t dropped_quota = 0;  // port backlog at per_port_quota
    uint64_t dropped_cap = 0;    // queue at global_cap
    size_t depth = 0;
  };
  PortCounters port_counters(uint32_t port) const;
  std::vector<uint32_t> ports() const { return rr_order_; }

  uint64_t total_dropped() const noexcept { return dropped_; }
  uint64_t total_enqueued() const noexcept { return enqueued_; }
  const UpcallQueueConfig& config() const noexcept { return cfg_; }

 private:
  struct PortState {
    std::deque<Packet> q;  // unused in FIFO mode (fifo_ holds the packets)
    PortCounters c;
  };

  PortState& state_for(uint32_t port);

  UpcallQueueConfig cfg_;
  std::unordered_map<uint32_t, PortState> per_port_;
  std::vector<uint32_t> rr_order_;  // ports in first-seen order
  size_t rr_cursor_ = 0;
  std::deque<Packet> fifo_;  // FIFO-mode storage
  size_t total_ = 0;
  uint64_t enqueued_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace ovs
