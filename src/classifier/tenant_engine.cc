#include "classifier/tenant_engine.h"

#include <algorithm>
#include <cassert>

namespace ovs {

namespace {

bool is_tenant_rule(const Match& match) noexcept {
  return match.mask.is_exact(FieldId::kMetadata);
}

uint64_t tenant_of(const Match& match) noexcept {
  return match.key.get(FieldId::kMetadata);
}

}  // namespace

TenantPartitionEngine::TenantPartitionEngine(const ClassifierConfig& cfg)
    : inner_cfg_(cfg) {
  inner_cfg_.tenant_partition = false;
  shared_ = make_classifier_backend(inner_cfg_);
}

TenantPartitionEngine::~TenantPartitionEngine() = default;

const ClassifierBackend* TenantPartitionEngine::route(
    const Match& match) const noexcept {
  if (!is_tenant_rule(match)) return shared_.get();
  auto it = tenants_.find(tenant_of(match));
  return it == tenants_.end() ? nullptr : it->second.get();
}

ClassifierBackend* TenantPartitionEngine::route(const Match& match) noexcept {
  return const_cast<ClassifierBackend*>(
      static_cast<const TenantPartitionEngine*>(this)->route(match));
}

void TenantPartitionEngine::insert(Rule* rule) {
  if (!is_tenant_rule(rule->match())) {
    shared_->insert(rule);
    return;
  }
  auto& slot = tenants_[tenant_of(rule->match())];
  if (!slot) slot = make_classifier_backend(inner_cfg_);
  slot->insert(rule);
}

void TenantPartitionEngine::remove(Rule* rule) noexcept {
  if (!is_tenant_rule(rule->match())) {
    shared_->remove(rule);
    return;
  }
  auto it = tenants_.find(tenant_of(rule->match()));
  assert(it != tenants_.end());
  it->second->remove(rule);
  // Drop emptied tenant engines so n_subtables()/max_probe_depth() track the
  // live partition shape, mirroring subtable destruction in the flat engines.
  if (it->second->rule_count() == 0) tenants_.erase(it);
}

Rule* TenantPartitionEngine::find_exact(const Match& match,
                                        int32_t priority) const noexcept {
  const ClassifierBackend* be = route(match);
  return be == nullptr ? nullptr : be->find_exact(match, priority);
}

const Rule* TenantPartitionEngine::lookup(const FlowKey& pkt,
                                          FlowWildcards* wc,
                                          uint32_t* n_searched) const noexcept {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  // The partition routing consults the packet's full metadata word, so the
  // megaflow must pin it (§5.5 soundness argument).
  if (wc != nullptr) wc->set_exact(FieldId::kMetadata);

  uint32_t searched = 0;
  uint32_t probe = 0;
  const Rule* best = shared_->lookup(pkt, wc, &probe);
  searched += probe;
  if (best == nullptr || !inner_cfg_.first_match_only) {
    auto it = tenants_.find(pkt.get(FieldId::kMetadata));
    if (it != tenants_.end()) {
      probe = 0;
      const Rule* r = it->second->lookup(pkt, wc, &probe);
      searched += probe;
      if (r != nullptr && (best == nullptr || r->priority() > best->priority()))
        best = r;
    }
  }
  if (n_searched != nullptr) *n_searched = searched;
  return best;
}

size_t TenantPartitionEngine::rule_count() const noexcept {
  size_t n = shared_->rule_count();
  for (const auto& [id, be] : tenants_) n += be->rule_count();
  return n;
}

size_t TenantPartitionEngine::mask_count() const noexcept {
  size_t n = shared_->mask_count();
  for (const auto& [id, be] : tenants_) n += be->mask_count();
  return n;
}

size_t TenantPartitionEngine::n_subtables() const noexcept {
  size_t n = shared_->n_subtables();
  for (const auto& [id, be] : tenants_) n += be->n_subtables();
  return n;
}

size_t TenantPartitionEngine::max_probe_depth() const noexcept {
  size_t worst_tenant = 0;
  for (const auto& [id, be] : tenants_)
    worst_tenant = std::max(worst_tenant, be->max_probe_depth());
  return shared_->max_probe_depth() + worst_tenant;
}

size_t TenantPartitionEngine::tenant_subtables(uint64_t tenant) const noexcept {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->n_subtables();
}

ClassifierStats TenantPartitionEngine::stats() const noexcept {
  ClassifierStats sum;
  auto add = [&sum](const ClassifierStats& s) {
    sum.tuples_searched += s.tuples_searched;
    sum.tuples_skipped += s.tuples_skipped;
    sum.stage_terminations += s.stage_terminations;
    sum.gate_probes += s.gate_probes;
    sum.guide_probes += s.guide_probes;
  };
  add(shared_->stats());
  for (const auto& [id, be] : tenants_) add(be->stats());
  // The two-engine probe would double-count lookups; report whole lookups.
  sum.lookups = lookups_.load(std::memory_order_relaxed);
  return sum;
}

void TenantPartitionEngine::reset_stats() const noexcept {
  shared_->reset_stats();
  for (const auto& [id, be] : tenants_) be->reset_stats();
  lookups_.store(0, std::memory_order_relaxed);
}

void TenantPartitionEngine::for_each_rule(
    const std::function<void(Rule*)>& f) const {
  shared_->for_each_rule(f);
  for (const auto& [id, be] : tenants_) be->for_each_rule(f);
}

}  // namespace ovs
