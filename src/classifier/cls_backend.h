// Lookup-engine seam behind classifier::Classifier, mirroring the datapath
// backend seam (datapath/dp_backend.h): the facade owns one backend chosen
// by ClassifierConfig::engine, call sites never branch on the engine, and
// every engine answers the same caching-aware contract (megaflow wildcard
// accumulation included) so the differential fuzzer and the equivalence
// property tests can diff them rule-for-rule.
//
// Rules stay engine-opaque the same way dp_backend's FlowRef does: the
// engine stamps Rule's intrusive `sub_` pointer (via RuleLinks) with its own
// subtable structure and must be the one to clear it on remove.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "classifier/classifier.h"
#include "packet/flow_key.h"
#include "packet/match.h"

namespace ovs {

class ClassifierBackend {
 public:
  virtual ~ClassifierBackend() = default;

  ClassifierBackend(const ClassifierBackend&) = delete;
  ClassifierBackend& operator=(const ClassifierBackend&) = delete;

  virtual void insert(Rule* rule) = 0;
  virtual void remove(Rule* rule) noexcept = 0;
  virtual Rule* find_exact(const Match& match,
                           int32_t priority) const noexcept = 0;
  virtual const Rule* lookup(const FlowKey& pkt, FlowWildcards* wc,
                             uint32_t* n_searched) const noexcept = 0;

  // Batched classification. The default is the scalar loop — results and
  // per-key wildcards must be identical to n scalar lookups regardless of
  // how an engine overrides this.
  virtual void lookup_batch(const FlowKey* keys, size_t n, const Rule** out,
                            FlowWildcards* wcs) const noexcept;

  virtual size_t rule_count() const noexcept = 0;
  virtual size_t mask_count() const noexcept = 0;

  // Shape introspection for the mask-explosion detector (DESIGN.md §14) and
  // the scale benchmark. n_subtables() is the number of per-mask hash
  // tables the engine maintains (== mask_count() for flat engines; the
  // tenant-partition wrapper sums across its inner engines).
  // max_probe_depth() is a structural upper bound on the subtables a single
  // lookup may probe: the whole table for plain TSS, one guide probe per
  // chain plus the deepest chain for the chained engine, and
  // shared + worst-tenant for the partitioned wrapper.
  virtual size_t n_subtables() const noexcept { return mask_count(); }
  virtual size_t max_probe_depth() const noexcept { return mask_count(); }

  virtual ClassifierStats stats() const noexcept = 0;
  virtual void reset_stats() const noexcept = 0;

  virtual void for_each_rule(const std::function<void(Rule*)>& f) const = 0;

 protected:
  ClassifierBackend() = default;
};

std::unique_ptr<ClassifierBackend> make_classifier_backend(
    const ClassifierConfig& cfg);

}  // namespace ovs
