#include "classifier/chain_engine.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>

#include "classifier/rule_links.h"
#include "util/miniflow.h"

namespace ovs {

struct ChainedTupleEngine::Sub {
  explicit Sub(const FlowMask& m) : mask(m), schema(m) {}

  FlowMask mask;
  MiniflowSchema schema;

  // Final table: masked key hash -> chain of rules (descending priority).
  HashBuckets<Rule*> rules;
  size_t n_rules = 0;
  std::map<int32_t, uint32_t> prio_counts;
  int32_t pri_max = 0;

  // Guide set: this level's mask-hash of every rule at this level or deeper
  // in the owning chain.
  HashCounter guide;
  int32_t suffix_pri_max = 0;  // max priority at this level or deeper

  Chain* chain = nullptr;
  size_t level = 0;  // index within chain->levels
};

struct ChainedTupleEngine::Chain {
  std::vector<Sub*> levels;  // coarsest mask first (ascending subsumption)

  int32_t pri_max() const noexcept {
    return levels.empty() ? 0 : levels.front()->suffix_pri_max;
  }
};

ChainedTupleEngine::ChainedTupleEngine(const ClassifierConfig& cfg)
    : cfg_(cfg) {}

ChainedTupleEngine::~ChainedTupleEngine() = default;

ChainedTupleEngine::Sub* ChainedTupleEngine::find_sub(
    const FlowMask& mask) const noexcept {
  Sub* const* s = by_mask_.find(flow_mask_hash(mask), [&](const Sub* sp) {
    return sp->mask == mask;
  });
  return s != nullptr ? *s : nullptr;
}

ChainedTupleEngine::Sub* ChainedTupleEngine::get_sub(const FlowMask& mask) {
  if (Sub* s = find_sub(mask)) return s;
  auto owned = std::make_unique<Sub>(mask);
  Sub* s = owned.get();
  subs_.push_back(std::move(owned));
  by_mask_.insert(flow_mask_hash(mask), s);

  // Greedy first-fit chain placement: the new mask joins the first chain it
  // is comparable with at every level; the insert position keeps the chain
  // sorted coarsest-first. Masks are distinct, so subset means proper
  // subset and the order is strict.
  Chain* home = nullptr;
  size_t pos = 0;
  for (const auto& cp : chains_) {
    Chain* c = cp.get();
    bool ok = true;
    size_t p = c->levels.size();
    for (size_t i = 0; i < c->levels.size(); ++i) {
      const FlowMask& lm = c->levels[i]->mask;
      if (flow_mask_subset(lm, mask)) continue;  // level coarser: go deeper
      if (flow_mask_subset(mask, lm)) {
        // New mask is coarser than this and (transitively) every deeper
        // level: insert here.
        p = i;
        break;
      }
      ok = false;
      break;
    }
    if (ok) {
      home = c;
      pos = p;
      break;
    }
  }
  if (home == nullptr) {
    chains_.push_back(std::make_unique<Chain>());
    home = chains_.back().get();
    sorted_.push_back(home);
    pos = 0;
  }
  home->levels.insert(home->levels.begin() + static_cast<long>(pos), s);
  s->chain = home;
  for (size_t i = 0; i < home->levels.size(); ++i) home->levels[i]->level = i;

  // Seed the new level's guide with every rule already deeper in the chain.
  for (size_t i = pos + 1; i < home->levels.size(); ++i) {
    home->levels[i]->rules.for_each([&](Rule* head) {
      for (Rule* r = head; r != nullptr; r = RuleLinks::next(*r))
        s->guide.add(s->schema.full_hash(r->match().key));
    });
  }
  sort_dirty_ = true;
  return s;
}

void ChainedTupleEngine::drop_sub(Sub* s) noexcept {
  Chain* c = s->chain;
  c->levels.erase(c->levels.begin() + static_cast<long>(s->level));
  for (size_t i = 0; i < c->levels.size(); ++i) c->levels[i]->level = i;
  by_mask_.erase(flow_mask_hash(s->mask),
                 [&](const Sub* sp) { return sp == s; });
  if (c->levels.empty()) {
    sorted_.erase(std::find(sorted_.begin(), sorted_.end(), c));
    auto cit = std::find_if(chains_.begin(), chains_.end(),
                            [&](const auto& up) { return up.get() == c; });
    chains_.erase(cit);
  } else {
    refresh_chain(c);
  }
  auto sit = std::find_if(subs_.begin(), subs_.end(),
                          [&](const auto& up) { return up.get() == s; });
  subs_.erase(sit);
  sort_dirty_ = true;
}

void ChainedTupleEngine::refresh_chain(Chain* c) noexcept {
  const int32_t old = c->pri_max();
  int32_t run = 0;
  for (auto it = c->levels.rbegin(); it != c->levels.rend(); ++it) {
    run = std::max(run, (*it)->pri_max);
    (*it)->suffix_pri_max = run;
  }
  if (c->pri_max() != old) sort_dirty_ = true;
}

void ChainedTupleEngine::sort_chains_if_dirty() noexcept {
  if (!sort_dirty_) return;
  std::stable_sort(sorted_.begin(), sorted_.end(),
                   [](const Chain* a, const Chain* b) {
                     return a->pri_max() > b->pri_max();
                   });
  sort_dirty_ = false;
}

void ChainedTupleEngine::insert(Rule* rule) {
  Sub* s = get_sub(rule->match().mask);
  RuleLinks::key_hash(*rule) = s->schema.full_hash(rule->match().key);
  RuleLinks::chain_insert(s->rules, rule);
  RuleLinks::sub(*rule) = s;
  ++s->n_rules;
  ++n_rules_;
  ++s->prio_counts[rule->priority()];
  s->pri_max = s->prio_counts.rbegin()->first;

  // The rule's hash joins the guide of its own level and every coarser one.
  Chain* c = s->chain;
  for (size_t i = 0; i <= s->level; ++i) {
    Sub* g = c->levels[i];
    g->guide.add(g->schema.full_hash(rule->match().key));
  }
  refresh_chain(c);
  sort_chains_if_dirty();
}

void ChainedTupleEngine::remove(Rule* rule) noexcept {
  Sub* s = static_cast<Sub*>(RuleLinks::sub(*rule));
  Chain* c = s->chain;
  for (size_t i = 0; i <= s->level; ++i) {
    Sub* g = c->levels[i];
    g->guide.remove(g->schema.full_hash(rule->match().key));
  }
  RuleLinks::chain_remove(s->rules, rule);
  RuleLinks::sub(*rule) = nullptr;
  --s->n_rules;
  --n_rules_;
  auto it = s->prio_counts.find(rule->priority());
  if (--it->second == 0) s->prio_counts.erase(it);
  s->pri_max = s->prio_counts.empty() ? 0 : s->prio_counts.rbegin()->first;

  if (s->n_rules == 0) {
    drop_sub(s);
  } else {
    refresh_chain(c);
  }
  sort_chains_if_dirty();
}

Rule* ChainedTupleEngine::find_exact(const Match& match,
                                     int32_t priority) const noexcept {
  Match m = match;
  m.normalize();
  Sub* s = find_sub(m.mask);
  if (s == nullptr) return nullptr;
  const uint64_t h = s->schema.full_hash(m.key);
  Rule* const* head =
      s->rules.find(h, [&](Rule* r) { return r->match().key == m.key; });
  if (head == nullptr) return nullptr;
  for (Rule* r = *head; r != nullptr; r = RuleLinks::next(*r))
    if (r->priority() == priority) return r;
  return nullptr;
}

const Rule* ChainedTupleEngine::lookup(const FlowKey& pkt, FlowWildcards* wc,
                                       uint32_t* n_searched) const noexcept {
  uint32_t searched = 0, skipped = 0, guide_probes = 0;
  const Rule* best = nullptr;
  for (const Chain* c : sorted_) {
    if (best != nullptr && cfg_.priority_sorting &&
        best->priority() >= c->pri_max())
      break;
    for (const Sub* s : c->levels) {
      // Within a chain the suffix priority bound tightens level by level.
      if (best != nullptr && cfg_.priority_sorting &&
          best->priority() >= s->suffix_pri_max)
        break;
      const uint64_t h = s->schema.full_hash(pkt);
      ++guide_probes;
      if (wc != nullptr) wc->unite(s->mask);
      if (!s->guide.contains(h)) {
        // No rule at this level or deeper agrees with the packet on this
        // level's mask bits: cut the whole chain suffix. The decision
        // consulted exactly this level's mask (united above).
        ++skipped;
        break;
      }
      ++searched;
      Rule* const* head = s->rules.find(h, [&](Rule* r) {
        return s->schema.masked_equal(pkt, r->match().key);
      });
      if (head != nullptr &&
          (best == nullptr || (*head)->priority() > best->priority())) {
        best = *head;
        if (cfg_.first_match_only) goto out;
      }
    }
  }
out:
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  if (searched != 0)
    stats_.tuples_searched.fetch_add(searched, std::memory_order_relaxed);
  if (skipped != 0)
    stats_.tuples_skipped.fetch_add(skipped, std::memory_order_relaxed);
  if (guide_probes != 0)
    stats_.guide_probes.fetch_add(guide_probes, std::memory_order_relaxed);
  if (n_searched != nullptr) *n_searched = searched;
  return best;
}

void ChainedTupleEngine::lookup_batch(const FlowKey* keys, size_t n,
                                      const Rule** out,
                                      FlowWildcards* wcs) const noexcept {
  for (size_t base = 0; base < n; base += kBatchBlock) {
    const size_t m = std::min(kBatchBlock, n - base);
    batch_block(keys + base, m, out + base,
                wcs != nullptr ? wcs + base : nullptr);
  }
}

// Structure-of-arrays batch classification over one block of keys. Chains
// are walked in the same priority order as the scalar lookup, but each
// level processes the whole block per probe round: level hashes are built
// word-at-a-time (mask word outer, keys inner), then the guide slots for
// every surviving key are prefetched before any membership test, then the
// rule-table slots likewise before any final probe — so the n independent
// cache misses of a round overlap instead of serializing. Every per-key
// decision (priority suffix cut, guide cut, wildcard accumulation,
// first-match exit) replicates the scalar lookup exactly, so out[i]/wcs[i]
// are byte-identical to n scalar calls.
void ChainedTupleEngine::batch_block(const FlowKey* keys, size_t m,
                                     const Rule** out,
                                     FlowWildcards* wcs) const noexcept {
  uint32_t searched = 0, skipped = 0, guide_probes = 0;
  std::array<const Rule*, kBatchBlock> best{};
  std::array<bool, kBatchBlock> done{};
  std::array<uint8_t, kBatchBlock> live;
  std::array<uint64_t, kBatchBlock> gh;
  size_t n_done = 0;

  for (const Chain* c : sorted_) {
    if (n_done == m) break;
    // Keys still walking this chain. The scalar chain-level cut
    // (best->priority() >= c->pri_max()) is identical to the level-0
    // suffix cut because pri_max() IS the front level's suffix_pri_max,
    // so the per-level round below subsumes it.
    size_t n_live = 0;
    for (size_t i = 0; i < m; ++i)
      if (!done[i]) live[n_live++] = static_cast<uint8_t>(i);

    for (const Sub* s : c->levels) {
      if (n_live == 0) break;
      const MiniflowSchema& sch = s->schema;

      // Round 0: per-key priority cut against this level's suffix bound —
      // a cut key leaves the chain but stays eligible for later chains.
      size_t keep = 0;
      for (size_t j = 0; j < n_live; ++j) {
        const size_t i = live[j];
        if (best[i] != nullptr && cfg_.priority_sorting &&
            best[i]->priority() >= s->suffix_pri_max)
          continue;
        live[keep++] = static_cast<uint8_t>(i);
      }
      n_live = keep;
      if (n_live == 0) break;

      // Round 1: SoA level hashes (full_hash, word loop outermost), then
      // guide prefetch + membership for the block. The wildcard union and
      // the guide-probe tally happen for every probed key, hit or miss,
      // exactly as in the scalar walk.
      for (size_t j = 0; j < n_live; ++j) gh[j] = 0;
      for (size_t wi = 0; wi < sch.n_words(); ++wi) {
        const size_t w = sch.word(wi);
        const uint64_t mw = sch.mask_word(wi);
        for (size_t j = 0; j < n_live; ++j)
          gh[j] = hash_add64(gh[j], keys[live[j]].w[w] & mw);
      }
      for (size_t j = 0; j < n_live; ++j) s->guide.prefetch(gh[j]);
      keep = 0;
      for (size_t j = 0; j < n_live; ++j) {
        const size_t i = live[j];
        ++guide_probes;
        if (wcs != nullptr) wcs[i].unite(s->mask);
        if (!s->guide.contains(gh[j])) {
          ++skipped;  // chain suffix cut for this key
          continue;
        }
        live[keep] = static_cast<uint8_t>(i);
        gh[keep] = gh[j];
        ++keep;
      }
      n_live = keep;
      if (n_live == 0) break;

      // Round 2: rule-table probes, prefetched for the whole block.
      for (size_t j = 0; j < n_live; ++j) s->rules.prefetch(gh[j]);
      keep = 0;
      for (size_t j = 0; j < n_live; ++j) {
        const size_t i = live[j];
        ++searched;
        Rule* const* head = s->rules.find(gh[j], [&](Rule* r) {
          return sch.masked_equal(keys[i], r->match().key);
        });
        if (head != nullptr &&
            (best[i] == nullptr ||
             (*head)->priority() > best[i]->priority())) {
          best[i] = *head;
          if (cfg_.first_match_only) {
            done[i] = true;
            ++n_done;
            continue;  // out of this chain AND every later one
          }
        }
        live[keep] = static_cast<uint8_t>(i);
        gh[keep] = gh[j];
        ++keep;
      }
      n_live = keep;
    }
  }

  for (size_t i = 0; i < m; ++i) out[i] = best[i];

  stats_.lookups.fetch_add(m, std::memory_order_relaxed);
  if (searched != 0)
    stats_.tuples_searched.fetch_add(searched, std::memory_order_relaxed);
  if (skipped != 0)
    stats_.tuples_skipped.fetch_add(skipped, std::memory_order_relaxed);
  if (guide_probes != 0)
    stats_.guide_probes.fetch_add(guide_probes, std::memory_order_relaxed);
}

ClassifierStats ChainedTupleEngine::stats() const noexcept {
  ClassifierStats s;
  s.lookups = stats_.lookups.load(std::memory_order_relaxed);
  s.tuples_searched = stats_.tuples_searched.load(std::memory_order_relaxed);
  s.tuples_skipped = stats_.tuples_skipped.load(std::memory_order_relaxed);
  s.guide_probes = stats_.guide_probes.load(std::memory_order_relaxed);
  return s;
}

void ChainedTupleEngine::reset_stats() const noexcept {
  stats_.lookups.store(0, std::memory_order_relaxed);
  stats_.tuples_searched.store(0, std::memory_order_relaxed);
  stats_.tuples_skipped.store(0, std::memory_order_relaxed);
  stats_.guide_probes.store(0, std::memory_order_relaxed);
}

void ChainedTupleEngine::for_each_rule(
    const std::function<void(Rule*)>& f) const {
  for (const auto& s : subs_)
    s->rules.for_each([&](Rule* head) {
      for (Rule* r = head; r != nullptr; r = RuleLinks::next(*r)) f(r);
    });
}

size_t ChainedTupleEngine::max_chain_length() const noexcept {
  size_t best = 0;
  for (const auto& c : chains_) best = std::max(best, c->levels.size());
  return best;
}

}  // namespace ovs
