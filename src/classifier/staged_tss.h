// Staged tuple-space-search engine — the paper's classifier (§5), hosting
// two ClassifierConfig::engine values:
//
//   * kStagedTss  (gated = false): the reference algorithm, verbatim.
//   * kBloomGated (gated = true): every subtable additionally carries a
//     small counting filter ("gate") indexed by a single hash over the
//     subtable's first non-empty stage. A lookup probes the gate before
//     walking the stages; a gate miss proves no rule in the subtable can
//     match the packet's gate-stage bits, so the subtable is skipped after
//     one array load. Soundness mirrors a stage-0 miss: the skip consulted
//     exactly the gate stage's masked words, which is what gets united into
//     the megaflow wildcards. The gate hash doubles as the staged walk's
//     running hash, so a gate pass costs nothing extra.
//
// The gated engine also overrides lookup_batch with a structure-of-arrays
// probe pipeline: for each subtable, hashes for all in-flight keys are
// computed word-by-word (mask word outer, keys inner — a SIMD-friendly
// loop with no ISA intrinsics), then the next round's hash-table slots are
// prefetched for the whole batch before any is probed, overlapping the
// dependent-load latency that dominates scalar TSS.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "classifier/cls_backend.h"
#include "classifier/rule_links.h"
#include "packet/flow_key.h"
#include "util/flat_hash.h"
#include "util/miniflow.h"
#include "util/prefix_trie.h"

namespace ovs {

// One hash table per unique mask ("subtable").
class Tuple {
 public:
  explicit Tuple(const FlowMask& mask, bool gated);

  const FlowMask& mask() const noexcept { return mask_; }
  const MiniflowSchema& schema() const noexcept { return schema_; }
  int32_t pri_max() const noexcept { return pri_max_; }
  size_t size() const noexcept { return n_rules_; }
  bool empty() const noexcept { return n_rules_ == 0; }

  // Prefix length of each trie field in this mask; -1 if non-prefix, 0 if
  // the field is not matched.
  int trie_plen(size_t trie_idx) const noexcept { return trie_plen_[trie_idx]; }

  // Number of stages this tuple uses (1 + index of last non-empty stage).
  size_t n_stages() const noexcept { return n_stages_; }

 private:
  friend class StagedTssEngine;

  void insert(Rule* rule);
  void remove(Rule* rule) noexcept;

  uint64_t hash_stage(const FlowWords& src, size_t stage,
                      uint64_t basis) const noexcept {
    return schema_.hash_stage(src, stage, basis);
  }
  uint64_t full_hash(const FlowWords& src) const noexcept {
    return schema_.full_hash(src);
  }

  // Staged lookup. On return *stage_searched is the index of the last stage
  // consulted (== n_stages_-1 when the final rule table was probed).
  const Rule* lookup(const FlowKey& pkt, bool staged,
                     size_t* stage_searched) const noexcept {
    return lookup_from(pkt, staged, stage_searched, 0,
                       schema_.hash_stage(pkt, 0, 0));
  }

  // Resumes a staged walk at stage `s` with `h` = the chained hash of
  // stages [0, s] (stage-set checks for stages < s already passed, or were
  // vacuous because those stages are empty). The gated path enters here at
  // the gate stage, reusing the gate hash.
  const Rule* lookup_from(const FlowKey& pkt, bool staged,
                          size_t* stage_searched, size_t s,
                          uint64_t h) const noexcept;

  // Metadata partition support.
  bool partitions_metadata() const noexcept { return partitions_metadata_; }
  bool partition_contains(uint64_t metadata) const noexcept {
    return metadata_values_.contains(hash_mix64(metadata));
  }

  // Counting-filter gate (kBloomGated only). The gate hash is the staged
  // hash through the first non-empty stage, so it is a prefix of the full
  // staged hash chain.
  size_t gate_stage() const noexcept { return gate_stage_; }
  uint64_t gate_hash(const FlowWords& src) const noexcept {
    return schema_.hash_stage(src, gate_stage_, 0);
  }
  bool gate_contains(uint64_t gh) const noexcept {
    return gate_[gh & gate_mask_] != 0;
  }
  void gate_prefetch(uint64_t gh) const noexcept {
    __builtin_prefetch(&gate_[gh & gate_mask_]);
  }
  void gate_add(uint64_t gh) noexcept;
  void gate_remove(uint64_t gh) noexcept;
  void maybe_grow_gate();

  void recompute_pri_max() noexcept;

  FlowMask mask_;
  MiniflowSchema schema_;
  size_t n_stages_ = 1;
  bool partitions_metadata_ = false;

  // Final table: masked key hash -> chain of rules (descending priority).
  HashBuckets<Rule*> rules_;
  size_t n_rules_ = 0;

  // Intermediate stage membership sets (stages [0, n_stages_-1)).
  std::array<HashCounter, kNumStages - 1> stage_sets_;

  // Metadata values present among rules (only if partitions_metadata_).
  HashCounter metadata_values_;

  // Rule count per priority, for pri_max maintenance.
  std::map<int32_t, uint32_t> prio_counts_;
  int32_t pri_max_ = 0;

  std::array<int, kNumTrieFields> trie_plen_{};

  // kBloomGated: power-of-two counting filter over gate hashes. Counters
  // saturate at 0xffff and then stick (a stale sticky counter can only cause
  // a false positive, i.e. a wasted probe — never a wrong skip).
  bool gated_ = false;
  size_t gate_stage_ = 0;
  std::vector<uint16_t> gate_;
  uint64_t gate_mask_ = 0;
};

class StagedTssEngine final : public ClassifierBackend {
 public:
  StagedTssEngine(const ClassifierConfig& cfg, bool gated);
  ~StagedTssEngine() override;

  void insert(Rule* rule) override;
  void remove(Rule* rule) noexcept override;
  Rule* find_exact(const Match& match, int32_t priority) const noexcept
      override;
  const Rule* lookup(const FlowKey& pkt, FlowWildcards* wc,
                     uint32_t* n_searched) const noexcept override;
  void lookup_batch(const FlowKey* keys, size_t n, const Rule** out,
                    FlowWildcards* wcs) const noexcept override;

  size_t rule_count() const noexcept override { return n_rules_; }
  size_t mask_count() const noexcept override { return tuples_.size(); }

  ClassifierStats stats() const noexcept override;
  void reset_stats() const noexcept override;

  void for_each_rule(const std::function<void(Rule*)>& f) const override;

 private:
  struct TrieCtx;  // per-lookup lazily computed trie results

  static constexpr size_t kBatchBlock = 16;

  Tuple* find_tuple(const FlowMask& mask) const noexcept;
  Tuple* get_tuple(const FlowMask& mask);

  // Trie bookkeeping on rule insert/remove.
  void trie_update(const Rule& rule, bool add);

  // Returns true if `tuple` can be skipped for `pkt` per the tries; updates
  // wildcards with the prefix bits that justified the skip.
  bool check_tries(const Tuple& tuple, const FlowKey& pkt, TrieCtx& ctx,
                   FlowWildcards* wc) const noexcept;

  // Re-sorts `sorted_` by pri_max. Called from the mutators (insert/remove)
  // so that lookup never writes anything but its atomic counters.
  void sort_tuples_if_dirty() noexcept;

  // One <= kBatchBlock slice of the SoA batch pipeline (gated engine).
  void batch_block(const FlowKey* keys, size_t m, const Rule** out,
                   FlowWildcards* wcs) const noexcept;

  struct AtomicStats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> tuples_searched{0};
    std::atomic<uint64_t> tuples_skipped{0};
    std::atomic<uint64_t> stage_terminations{0};
    std::atomic<uint64_t> gate_probes{0};
  };

  ClassifierConfig cfg_;
  bool gated_ = false;
  std::vector<std::unique_ptr<Tuple>> tuples_;       // owned
  std::vector<Tuple*> sorted_;                       // by pri_max desc
  bool sort_dirty_ = false;
  HashBuckets<Tuple*> tuples_by_mask_;
  size_t n_rules_ = 0;

  std::array<PrefixTrie, kNumTrieFields> tries_;
  std::array<size_t, kNumTrieFields> trie_icmp_rules_{};  // bug-mode poison

  mutable AtomicStats stats_;
};

}  // namespace ovs
