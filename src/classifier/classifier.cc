#include "classifier/classifier.h"

#include <cassert>

#include "classifier/cls_backend.h"

namespace ovs {

const char* classifier_engine_name(ClassifierEngine engine) noexcept {
  switch (engine) {
    case ClassifierEngine::kStagedTss:
      return "staged";
    case ClassifierEngine::kChainedTuple:
      return "chained";
    case ClassifierEngine::kBloomGated:
      return "bloom";
  }
  return "unknown";
}

Classifier::Classifier(ClassifierConfig cfg)
    : cfg_(cfg), backend_(make_classifier_backend(cfg)) {}

Classifier::~Classifier() = default;

void Classifier::insert(Rule* rule) {
  assert(!rule->in_classifier());
  assert(find_exact(rule->match(), rule->priority()) == nullptr);
  backend_->insert(rule);
}

void Classifier::remove(Rule* rule) noexcept {
  assert(rule->in_classifier());
  backend_->remove(rule);
}

Rule* Classifier::find_exact(const Match& match,
                             int32_t priority) const noexcept {
  return backend_->find_exact(match, priority);
}

const Rule* Classifier::lookup(const FlowKey& pkt, FlowWildcards* wc,
                               uint32_t* n_searched) const noexcept {
  return backend_->lookup(pkt, wc, n_searched);
}

void Classifier::lookup_batch(const FlowKey* keys, size_t n, const Rule** out,
                              FlowWildcards* wcs) const noexcept {
  backend_->lookup_batch(keys, n, out, wcs);
}

size_t Classifier::rule_count() const noexcept {
  return backend_->rule_count();
}

size_t Classifier::tuple_count() const noexcept {
  return backend_->mask_count();
}

size_t Classifier::n_subtables() const noexcept {
  return backend_->n_subtables();
}

size_t Classifier::max_probe_depth() const noexcept {
  return backend_->max_probe_depth();
}

Classifier::Stats Classifier::stats() const noexcept {
  return backend_->stats();
}

void Classifier::reset_stats() const noexcept { backend_->reset_stats(); }

void Classifier::for_each_rule(const std::function<void(Rule*)>& f) const {
  backend_->for_each_rule(f);
}

}  // namespace ovs
