#include "classifier/classifier.h"

#include <algorithm>
#include <cassert>

namespace ovs {

namespace {

bool is_port_trie_field(FieldId f) noexcept {
  return f == FieldId::kTpSrc || f == FieldId::kTpDst;
}

PrefixBits trie_value(const FlowKey& pkt, FieldId f) noexcept {
  switch (f) {
    case FieldId::kNwSrc:
    case FieldId::kNwDst:
      return PrefixBits::from_u32(static_cast<uint32_t>(pkt.get(f)));
    case FieldId::kIpv6Src:
      return PrefixBits::from_u128(pkt.w[10], pkt.w[11]);
    case FieldId::kIpv6Dst:
      return PrefixBits::from_u128(pkt.w[12], pkt.w[13]);
    case FieldId::kTpSrc:
    case FieldId::kTpDst:
      return PrefixBits::from_u16(static_cast<uint16_t>(pkt.get(f)));
    default:
      return {};
  }
}

PrefixBits trie_prefix(const Rule& rule, FieldId f, unsigned len) noexcept {
  switch (f) {
    case FieldId::kNwSrc:
    case FieldId::kNwDst:
      return PrefixBits::from_u32(
          static_cast<uint32_t>(rule.match().key.get(f)), len);
    case FieldId::kIpv6Src:
      return PrefixBits::from_u128(rule.match().key.w[10],
                                   rule.match().key.w[11], len);
    case FieldId::kIpv6Dst:
      return PrefixBits::from_u128(rule.match().key.w[12],
                                   rule.match().key.w[13], len);
    case FieldId::kTpSrc:
    case FieldId::kTpDst:
      return PrefixBits::from_u16(
          static_cast<uint16_t>(rule.match().key.get(f)), len);
    default:
      return {};
  }
}

uint64_t mask_hash(const FlowMask& mask) noexcept {
  return hash_words(mask.w.data(), kFlowWords);
}

// Is this rule an ICMP rule matching the shared tp_src/tp_dst fields? Such
// rules triggered the production bug of §7.1 (see ClassifierConfig).
bool is_icmp_port_rule(const Rule& rule) noexcept {
  return rule.match().mask.is_exact(FieldId::kNwProto) &&
         (rule.match().key.nw_proto() == ipproto::kIcmp ||
          rule.match().key.nw_proto() == ipproto::kIcmpv6);
}

}  // namespace

// --- Tuple ------------------------------------------------------------------

Tuple::Tuple(const FlowMask& mask) : mask_(mask) {
  n_stages_ = mask.last_stage() + 1;
  partitions_metadata_ = mask.is_exact(FieldId::kMetadata);
  for (size_t i = 0; i < kNumTrieFields; ++i)
    trie_plen_[i] = mask.prefix_len(kTrieFields[i]);
  for (size_t w = 0; w < kFlowWords; ++w)
    if (mask.w[w] != 0)
      active_words_[static_cast<size_t>(stage_of_word(w))].push_back(
          static_cast<uint8_t>(w));
}

void Tuple::insert(Rule* rule) {
  assert(rule->match().mask == mask_);
  rule->key_hash_ = full_hash(rule->match().key);

  // Intermediate stage sets.
  uint64_t h = 0;
  for (size_t s = 0; s + 1 < n_stages_; ++s) {
    h = hash_stage(rule->match().key, s, h);
    stage_sets_[s].add(h);
  }

  if (partitions_metadata_)
    metadata_values_.add(hash_mix64(rule->match().key.metadata()));

  // Chain rules with identical masked keys in descending priority order.
  Rule** head = rules_.find(rule->key_hash_, [&](Rule* r) {
    return r->match().key == rule->match().key;
  });
  if (head == nullptr) {
    rules_.insert(rule->key_hash_, rule);
  } else if (rule->priority() > (*head)->priority()) {
    rule->next_same_key_ = *head;
    *head = rule;
  } else {
    Rule* prev = *head;
    while (prev->next_same_key_ != nullptr &&
           prev->next_same_key_->priority() >= rule->priority())
      prev = prev->next_same_key_;
    rule->next_same_key_ = prev->next_same_key_;
    prev->next_same_key_ = rule;
  }

  ++n_rules_;
  ++prio_counts_[rule->priority()];
  recompute_pri_max();
  rule->tuple_ = this;
}

void Tuple::remove(Rule* rule) noexcept {
  assert(rule->tuple_ == this);
  Rule** head = rules_.find(rule->key_hash_, [&](Rule* r) {
    return r->match().key == rule->match().key;
  });
  assert(head != nullptr);
  if (*head == rule) {
    if (rule->next_same_key_ != nullptr) {
      *head = rule->next_same_key_;
    } else {
      rules_.erase(rule->key_hash_, [&](Rule* r) { return r == rule; });
    }
  } else {
    Rule* prev = *head;
    while (prev->next_same_key_ != rule) {
      prev = prev->next_same_key_;
      assert(prev != nullptr);
    }
    prev->next_same_key_ = rule->next_same_key_;
  }
  rule->next_same_key_ = nullptr;
  rule->tuple_ = nullptr;

  uint64_t h = 0;
  for (size_t s = 0; s + 1 < n_stages_; ++s) {
    h = hash_stage(rule->match().key, s, h);
    stage_sets_[s].remove(h);
  }
  if (partitions_metadata_)
    metadata_values_.remove(hash_mix64(rule->match().key.metadata()));

  --n_rules_;
  auto it = prio_counts_.find(rule->priority());
  if (--it->second == 0) prio_counts_.erase(it);
  recompute_pri_max();
}

void Tuple::recompute_pri_max() noexcept {
  pri_max_ = prio_counts_.empty() ? 0 : prio_counts_.rbegin()->first;
}

const Rule* Tuple::lookup(const FlowKey& pkt, bool staged,
                          size_t* stage_searched) const noexcept {
  uint64_t h = 0;
  if (staged && n_stages_ > 1) {
    size_t s = 0;
    for (; s + 1 < n_stages_; ++s) {
      h = hash_stage(pkt, s, h);
      if (!stage_sets_[s].contains(h)) {
        *stage_searched = s;
        return nullptr;
      }
    }
    for (; s < kNumStages; ++s) h = hash_stage(pkt, s, h);
  } else {
    h = full_hash(pkt);
  }
  *stage_searched = n_stages_ - 1;
  Rule* const* head = rules_.find(
      h, [&](Rule* r) { return masked_equal(pkt, r->match().key, mask_); });
  return head != nullptr ? *head : nullptr;
}

// --- Classifier -------------------------------------------------------------

struct Classifier::TrieCtx {
  std::array<bool, kNumTrieFields> computed{};
  std::array<PrefixTrie::LookupResult, kNumTrieFields> res;
};

Classifier::Classifier(ClassifierConfig cfg) : cfg_(cfg) {}

Classifier::~Classifier() = default;

Tuple* Classifier::find_tuple(const FlowMask& mask) const noexcept {
  Tuple* const* t =
      tuples_by_mask_.find(mask_hash(mask), [&](const Tuple* tp) {
        return tp->mask() == mask;
      });
  return t != nullptr ? *t : nullptr;
}

Tuple* Classifier::get_tuple(const FlowMask& mask) {
  if (Tuple* t = find_tuple(mask)) return t;
  auto owned = std::make_unique<Tuple>(mask);
  Tuple* t = owned.get();
  tuples_.push_back(std::move(owned));
  sorted_.push_back(t);
  tuples_by_mask_.insert(mask_hash(mask), t);
  sort_dirty_ = true;
  return t;
}

void Classifier::sort_tuples_if_dirty() noexcept {
  if (!sort_dirty_) return;
  std::stable_sort(sorted_.begin(), sorted_.end(),
                   [](const Tuple* a, const Tuple* b) {
                     return a->pri_max() > b->pri_max();
                   });
  sort_dirty_ = false;
}

void Classifier::trie_update(const Rule& rule, bool add) {
  for (size_t i = 0; i < kNumTrieFields; ++i) {
    const int plen = rule.match().mask.prefix_len(kTrieFields[i]);
    if (plen <= 0) continue;
    const PrefixBits p =
        trie_prefix(rule, kTrieFields[i], static_cast<unsigned>(plen));
    if (add) {
      tries_[i].insert(p);
      if (is_port_trie_field(kTrieFields[i]) && is_icmp_port_rule(rule))
        ++trie_icmp_rules_[i];
    } else {
      tries_[i].remove(p);
      if (is_port_trie_field(kTrieFields[i]) && is_icmp_port_rule(rule))
        --trie_icmp_rules_[i];
    }
  }
}

void Classifier::insert(Rule* rule) {
  assert(!rule->in_classifier());
  assert(find_exact(rule->match(), rule->priority()) == nullptr);
  Tuple* t = get_tuple(rule->match().mask);
  const int32_t old_pri_max = t->pri_max();
  t->insert(rule);
  if (t->pri_max() != old_pri_max || t->size() == 1) sort_dirty_ = true;
  trie_update(*rule, /*add=*/true);
  ++n_rules_;
  sort_tuples_if_dirty();
}

void Classifier::remove(Rule* rule) noexcept {
  assert(rule->in_classifier());
  Tuple* t = rule->tuple_;
  const int32_t old_pri_max = t->pri_max();
  t->remove(rule);
  trie_update(*rule, /*add=*/false);
  --n_rules_;
  if (t->empty()) {
    tuples_by_mask_.erase(mask_hash(t->mask()),
                          [&](const Tuple* tp) { return tp == t; });
    sorted_.erase(std::find(sorted_.begin(), sorted_.end(), t));
    auto it = std::find_if(tuples_.begin(), tuples_.end(),
                           [&](const auto& up) { return up.get() == t; });
    tuples_.erase(it);
  } else if (t->pri_max() != old_pri_max) {
    sort_dirty_ = true;
  }
  sort_tuples_if_dirty();
}

Rule* Classifier::find_exact(const Match& match,
                             int32_t priority) const noexcept {
  Match m = match;
  m.normalize();
  Tuple* t = find_tuple(m.mask);
  if (t == nullptr) return nullptr;
  const uint64_t h = t->full_hash(m.key);
  Rule* const* head =
      t->rules_.find(h, [&](Rule* r) { return r->match().key == m.key; });
  if (head == nullptr) return nullptr;
  for (Rule* r = *head; r != nullptr; r = r->next_same_key_)
    if (r->priority() == priority) return r;
  return nullptr;
}

bool Classifier::check_tries(const Tuple& tuple, const FlowKey& pkt,
                             TrieCtx& ctx, FlowWildcards* wc) const noexcept {
  for (size_t i = 0; i < kNumTrieFields; ++i) {
    const FieldId f = kTrieFields[i];
    const bool port = is_port_trie_field(f);
    if (port ? !cfg_.port_prefix_tracking : !cfg_.prefix_tracking) continue;
    const int plen = tuple.trie_plen(i);
    if (plen <= 0) continue;  // field unmatched, or a non-prefix mask
    // §7.1 outlier bug injection: ICMP rules poison the port tries.
    if (cfg_.icmp_port_trie_bug && port && trie_icmp_rules_[i] > 0) continue;
    if (!ctx.computed[i]) {
      ctx.res[i] = tries_[i].lookup(trie_value(pkt, f));
      ctx.computed[i] = true;
    }
    const PrefixTrie::LookupResult& res = ctx.res[i];
    if (!res.plens.test(static_cast<size_t>(plen))) {
      // No rule anywhere in the classifier has a /plen prefix containing
      // this packet's field value, so this tuple cannot match. The skip
      // decision examined only min(nbits, plen) leading bits.
      if (wc != nullptr)
        wc->set_prefix(f, std::min(res.nbits, static_cast<unsigned>(plen)));
      return true;
    }
  }
  return false;
}

const Rule* Classifier::lookup(const FlowKey& pkt, FlowWildcards* wc,
                               uint32_t* n_searched) const noexcept {
  // Per-call counters, flushed once into the shared atomics at the end so
  // concurrent readers pay one relaxed RMW per counter instead of one per
  // tuple.
  uint32_t searched = 0, skipped = 0, stage_terms = 0;
  TrieCtx ctx;
  const Rule* best = nullptr;
  for (Tuple* t : sorted_) {
    if (best != nullptr && cfg_.priority_sorting &&
        best->priority() >= t->pri_max())
      break;
    if (cfg_.partitioning && t->partitions_metadata() &&
        !t->partition_contains(pkt.metadata())) {
      // The skip decision consulted (all of) the metadata field.
      if (wc != nullptr) wc->set_exact(FieldId::kMetadata);
      ++skipped;
      continue;
    }
    if (check_tries(*t, pkt, ctx, wc)) {
      ++skipped;
      continue;
    }
    size_t stage_searched = 0;
    const Rule* r = t->lookup(pkt, cfg_.staged_lookup, &stage_searched);
    ++searched;
    if (wc != nullptr) {
      if (stage_searched + 1 < t->n_stages()) {
        // Early stage miss: only the fields of stages [0, stage_searched]
        // were consulted (paper §5.3).
        for (size_t i = 0; i < kStageEnd[stage_searched]; ++i)
          wc->w[i] |= t->mask().w[i];
      } else {
        wc->unite(t->mask());
      }
    }
    if (stage_searched + 1 < t->n_stages()) ++stage_terms;
    if (r != nullptr && (best == nullptr || r->priority() > best->priority())) {
      best = r;
      if (cfg_.first_match_only) break;
    }
  }
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  if (searched != 0)
    stats_.tuples_searched.fetch_add(searched, std::memory_order_relaxed);
  if (skipped != 0)
    stats_.tuples_skipped.fetch_add(skipped, std::memory_order_relaxed);
  if (stage_terms != 0)
    stats_.stage_terminations.fetch_add(stage_terms,
                                        std::memory_order_relaxed);
  if (n_searched != nullptr) *n_searched = searched;
  return best;
}

}  // namespace ovs
