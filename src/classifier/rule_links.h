// Engine-shared access to Rule's intrusive classifier links, plus the
// same-masked-key priority chain discipline every engine's final rule table
// uses: rules with identical masked keys hang off one bucket in descending
// priority order, so a lookup's single hash probe lands on the
// highest-priority candidate directly.
#pragma once

#include <cassert>
#include <cstdint>

#include "classifier/rule.h"
#include "util/flat_hash.h"

namespace ovs {

struct RuleLinks {
  static Rule*& next(Rule& r) noexcept { return r.next_same_key_; }
  static Rule* next(const Rule& r) noexcept { return r.next_same_key_; }
  static void*& sub(Rule& r) noexcept { return r.sub_; }
  static void* sub(const Rule& r) noexcept { return r.sub_; }
  static uint64_t& key_hash(Rule& r) noexcept { return r.key_hash_; }
  static uint64_t key_hash(const Rule& r) noexcept { return r.key_hash_; }

  // Links `rule` (key_hash already set) into `rules`, keeping each same-key
  // chain sorted by descending priority. Equal priorities append after
  // existing rules, so replacement semantics stay with the caller.
  static void chain_insert(HashBuckets<Rule*>& rules, Rule* rule) {
    Rule** head = rules.find(rule->key_hash_, [&](Rule* r) {
      return r->match().key == rule->match().key;
    });
    if (head == nullptr) {
      rules.insert(rule->key_hash_, rule);
      return;
    }
    if (rule->priority() > (*head)->priority()) {
      rule->next_same_key_ = *head;
      *head = rule;
      return;
    }
    Rule* prev = *head;
    while (prev->next_same_key_ != nullptr &&
           prev->next_same_key_->priority() >= rule->priority())
      prev = prev->next_same_key_;
    rule->next_same_key_ = prev->next_same_key_;
    prev->next_same_key_ = rule;
  }

  // Unlinks `rule` from its same-key chain (and the bucket, if it was the
  // only rule with its key).
  static void chain_remove(HashBuckets<Rule*>& rules, Rule* rule) noexcept {
    Rule** head = rules.find(rule->key_hash_, [&](Rule* r) {
      return r->match().key == rule->match().key;
    });
    assert(head != nullptr);
    if (*head == rule) {
      if (rule->next_same_key_ != nullptr) {
        *head = rule->next_same_key_;
      } else {
        rules.erase(rule->key_hash_, [&](Rule* r) { return r == rule; });
      }
    } else {
      Rule* prev = *head;
      while (prev->next_same_key_ != rule) {
        prev = prev->next_same_key_;
        assert(prev != nullptr);
      }
      prev->next_same_key_ = rule->next_same_key_;
    }
    rule->next_same_key_ = nullptr;
  }
};

}  // namespace ovs
