// A classifier rule. Callers embed Rule as a base of their own entry types
// (an OpenFlow flow, a megaflow cache entry) and retain ownership; the
// classifier only links rules in and out of its subtables, mirroring how OVS
// embeds `cls_rule` inside larger structs.
#pragma once

#include <cstdint>

#include "packet/match.h"

namespace ovs {

class Rule {
 public:
  Rule(Match match, int32_t priority)
      : match_(match), priority_(priority) {
    match_.normalize();
  }
  virtual ~Rule() = default;

  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  const Match& match() const noexcept { return match_; }
  int32_t priority() const noexcept { return priority_; }

  bool in_classifier() const noexcept { return sub_ != nullptr; }

 private:
  // Engines reach the intrusive links through RuleLinks (rule_links.h) so
  // the link fields stay engine-opaque: `sub_` points at whatever subtable
  // structure the active ClassifierBackend keys rules by.
  friend struct RuleLinks;

  Match match_;
  int32_t priority_;

  // Classifier-internal state.
  Rule* next_same_key_ = nullptr;  // same masked key, lower priority
  void* sub_ = nullptr;            // owning engine subtable (opaque)
  uint64_t key_hash_ = 0;  // hash of masked key over all words
};

}  // namespace ovs
