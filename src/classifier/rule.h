// A classifier rule. Callers embed Rule as a base of their own entry types
// (an OpenFlow flow, a megaflow cache entry) and retain ownership; the
// classifier only links rules in and out of its tuples, mirroring how OVS
// embeds `cls_rule` inside larger structs.
#pragma once

#include <cstdint>

#include "packet/match.h"

namespace ovs {

class Tuple;

class Rule {
 public:
  Rule(Match match, int32_t priority)
      : match_(match), priority_(priority) {
    match_.normalize();
  }
  virtual ~Rule() = default;

  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  const Match& match() const noexcept { return match_; }
  int32_t priority() const noexcept { return priority_; }

  bool in_classifier() const noexcept { return tuple_ != nullptr; }

 private:
  friend class Classifier;
  friend class Tuple;

  Match match_;
  int32_t priority_;

  // Classifier-internal state.
  Rule* next_same_key_ = nullptr;  // same masked key, lower priority
  Tuple* tuple_ = nullptr;
  uint64_t key_hash_ = 0;  // hash of masked key over all words
};

}  // namespace ovs
