// Per-tenant partition wrapper (ClassifierConfig::tenant_partition,
// DESIGN.md §14): the structural defense against tuple-space explosion
// attacks (Csikor et al.). Rules whose match is exact on metadata — the
// logical-pipeline tenant tag (§5.5) — are segregated into one inner
// engine per metadata value; everything else (no metadata match, or a
// partial-bits one) lives in a shared inner engine that every lookup must
// still consult.
//
// A lookup therefore probes exactly two engines: shared + the packet's own
// tenant. An adversarial tenant inflating its subtable count makes ITS OWN
// lookups slower, but cannot add a single probe to any other tenant's
// sequence — the per-lookup budget is n_subtables(shared) + the victim's
// own subtables, independent of the attacker.
//
// Soundness of the partition skip mirrors §5.5: a rule exact on metadata
// != the packet's metadata can never match, and the routing decision
// consulted the full metadata word, so metadata is marked exact in the
// wildcards. Megaflows generated through the wrapper are consequently
// tenant-specific, which is also what keeps the KERNEL cache's masks from
// being shared across tenants.
//
// The wrapper composes with any inner engine: the factory builds inner
// backends from the same config with tenant_partition cleared, so staged,
// chained, and bloom-gated engines all honor the partition semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "classifier/cls_backend.h"

namespace ovs {

class TenantPartitionEngine final : public ClassifierBackend {
 public:
  explicit TenantPartitionEngine(const ClassifierConfig& cfg);
  ~TenantPartitionEngine() override;

  void insert(Rule* rule) override;
  void remove(Rule* rule) noexcept override;
  Rule* find_exact(const Match& match, int32_t priority) const noexcept
      override;
  const Rule* lookup(const FlowKey& pkt, FlowWildcards* wc,
                     uint32_t* n_searched) const noexcept override;

  size_t rule_count() const noexcept override;
  size_t mask_count() const noexcept override;
  size_t n_subtables() const noexcept override;
  size_t max_probe_depth() const noexcept override;

  ClassifierStats stats() const noexcept override;
  void reset_stats() const noexcept override;

  void for_each_rule(const std::function<void(Rule*)>& f) const override;

  // Partition-shape introspection for tests and the explosion bench.
  size_t tenant_count() const noexcept { return tenants_.size(); }
  size_t tenant_subtables(uint64_t tenant) const noexcept;
  size_t shared_subtables() const noexcept { return shared_->n_subtables(); }

 private:
  // Routing predicate: exact-metadata rules belong to their tenant's
  // engine; everything else is shared. Deterministic from the match alone,
  // so remove() re-derives the partition without extra per-rule state.
  const ClassifierBackend* route(const Match& match) const noexcept;
  ClassifierBackend* route(const Match& match) noexcept;

  ClassifierConfig inner_cfg_;  // cfg with tenant_partition cleared
  std::unique_ptr<ClassifierBackend> shared_;
  // Ordered so for_each_rule and stats aggregation are deterministic.
  std::map<uint64_t, std::unique_ptr<ClassifierBackend>> tenants_;

  // The inner engines count their own probes; the wrapper only counts
  // whole lookups so stats().lookups is not doubled by the two-engine
  // probe.
  mutable std::atomic<uint64_t> lookups_{0};
};

}  // namespace ovs
