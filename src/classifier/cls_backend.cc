#include "classifier/cls_backend.h"

#include "classifier/chain_engine.h"
#include "classifier/staged_tss.h"
#include "classifier/tenant_engine.h"

namespace ovs {

void ClassifierBackend::lookup_batch(const FlowKey* keys, size_t n,
                                     const Rule** out,
                                     FlowWildcards* wcs) const noexcept {
  for (size_t i = 0; i < n; ++i)
    out[i] = lookup(keys[i], wcs != nullptr ? &wcs[i] : nullptr, nullptr);
}

std::unique_ptr<ClassifierBackend> make_classifier_backend(
    const ClassifierConfig& cfg) {
  // The tenant-partition wrapper composes with any engine: it builds its
  // inner backends through this same factory with the flag cleared.
  if (cfg.tenant_partition) return std::make_unique<TenantPartitionEngine>(cfg);
  switch (cfg.engine) {
    case ClassifierEngine::kChainedTuple:
      return std::make_unique<ChainedTupleEngine>(cfg);
    case ClassifierEngine::kBloomGated:
      return std::make_unique<StagedTssEngine>(cfg, /*gated=*/true);
    case ClassifierEngine::kStagedTss:
      break;
  }
  return std::make_unique<StagedTssEngine>(cfg, /*gated=*/false);
}

}  // namespace ovs
