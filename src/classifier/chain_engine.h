// TupleChain-style chained-tuple engine (kChainedTuple).
//
// Subtables whose masks are totally ordered by subsumption (M0 ⊂ M1 ⊂ … ⊂
// Mk) are linked into a *chain*, coarsest mask first. Each chain level
// carries a *guide set*: the level-mask hashes of every rule at that level
// or deeper in the chain. Because Mi ⊆ Mj for j ≥ i, a packet that matches
// a level-j rule must agree with that rule on all Mi bits, so its level-i
// hash is in level i's guide. Contrapositive: a guide miss at level i
// proves no rule at level i or deeper matches, and the whole chain suffix
// is cut after one probe — having consulted exactly the Mi bits, which is
// what the megaflow wildcards accumulate for the cut.
//
// A lookup therefore walks chains instead of masks: with M masks grouped
// into C chains (C ≪ M for prefix-structured tables), the per-packet probe
// count drops from O(M) to O(C + matching-chain depth). Each level also
// tracks suffix_pri_max (max rule priority at this level or deeper) so
// tuple priority sorting (§5.2) cuts within a chain, not just between them.
//
// Updates stay O(1) hash work per level above the rule's own, but chain
// membership is greedy first-fit at subtable creation: heavily adversarial
// mask-churn can fragment chains (the RVH line of work addresses exactly
// this; see bench_classifier_scale's churn phase for the measured cost).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "classifier/cls_backend.h"
#include "util/flat_hash.h"

namespace ovs {

class ChainedTupleEngine final : public ClassifierBackend {
 public:
  explicit ChainedTupleEngine(const ClassifierConfig& cfg);
  ~ChainedTupleEngine() override;

  void insert(Rule* rule) override;
  void remove(Rule* rule) noexcept override;
  Rule* find_exact(const Match& match, int32_t priority) const noexcept
      override;
  const Rule* lookup(const FlowKey& pkt, FlowWildcards* wc,
                     uint32_t* n_searched) const noexcept override;
  void lookup_batch(const FlowKey* keys, size_t n, const Rule** out,
                    FlowWildcards* wcs) const noexcept override;

  size_t rule_count() const noexcept override { return n_rules_; }
  size_t mask_count() const noexcept override { return subs_.size(); }

  ClassifierStats stats() const noexcept override;
  void reset_stats() const noexcept override;

  void for_each_rule(const std::function<void(Rule*)>& f) const override;

  // Chain-shape introspection for tests and the scale benchmark.
  size_t chain_count() const noexcept { return chains_.size(); }
  size_t max_chain_length() const noexcept;

  // A lookup pays at most one guide probe per non-matching chain and walks
  // the matching chain to its depth.
  size_t max_probe_depth() const noexcept override {
    return chains_.empty() ? 0 : chains_.size() + max_chain_length() - 1;
  }

  // SoA batch slice width (see batch_block); matches StagedTssEngine's.
  static constexpr size_t kBatchBlock = 16;

 private:
  struct Sub;
  struct Chain;

  // One <= kBatchBlock slice of the SoA batch pipeline.
  void batch_block(const FlowKey* keys, size_t m, const Rule** out,
                   FlowWildcards* wcs) const noexcept;

  Sub* find_sub(const FlowMask& mask) const noexcept;
  Sub* get_sub(const FlowMask& mask);
  void drop_sub(Sub* s) noexcept;
  // Recomputes suffix_pri_max along `c` and marks the chain order dirty if
  // the chain's headline priority moved.
  void refresh_chain(Chain* c) noexcept;
  void sort_chains_if_dirty() noexcept;

  struct AtomicStats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> tuples_searched{0};
    std::atomic<uint64_t> tuples_skipped{0};
    std::atomic<uint64_t> guide_probes{0};
  };

  ClassifierConfig cfg_;
  std::vector<std::unique_ptr<Sub>> subs_;     // owned subtables
  std::vector<std::unique_ptr<Chain>> chains_; // owned chains
  std::vector<Chain*> sorted_;                 // by chain pri_max desc
  bool sort_dirty_ = false;
  HashBuckets<Sub*> by_mask_;
  size_t n_rules_ = 0;

  mutable AtomicStats stats_;
};

}  // namespace ovs
