// Tuple space search classifier with caching-aware optimizations.
//
// This is the paper's primary contribution (§3.2, §5). A *tuple* is one hash
// table per unique match mask; a lookup searches tuples and returns the
// highest-priority matching rule. Updates are O(1): a single hash-table
// operation (plus trie maintenance).
//
// The classifier also implements megaflow generation support: when a lookup
// is given a FlowWildcards accumulator, it records exactly which key bits
// were consulted, applying the four optimizations that keep megaflows as
// general as possible:
//
//   * tuple priority sorting  (§5.2) — cut the search, and hence the
//     unwildcarding, as soon as no better-priority tuple remains;
//   * staged lookup           (§5.3) — each tuple is four nested hash tables
//     (metadata ⊂ +L2 ⊂ +L3 ⊂ +L4); a miss at stage k unwildcards only the
//     stages searched so far;
//   * prefix tracking         (§5.4) — per-field tries decide both the
//     minimal prefix a megaflow must match and which tuples to skip;
//   * partitioning            (§5.5) — tuples exact-matching the metadata
//     field are skipped when the packet's metadata value has no rules there.
//
// Every optimization is individually switchable (ClassifierConfig) because
// Table 1 of the paper evaluates each in isolation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "classifier/rule.h"
#include "packet/flow_key.h"
#include "util/flat_hash.h"
#include "util/prefix_trie.h"

namespace ovs {

struct ClassifierConfig {
  bool priority_sorting = true;
  bool staged_lookup = true;
  bool prefix_tracking = true;       // IPv4/IPv6 address tries
  bool port_prefix_tracking = true;  // L4 port tries (§5.4 last paragraph)
  bool partitioning = true;          // metadata partitions (§5.5)
  // Megaflow-cache mode: entries are disjoint and priority-free, so a lookup
  // "can terminate as soon as it finds any match" (§4.2).
  bool first_match_only = false;
  // Injects the §7.1 outlier bug: any rule matching ICMP type/code poisons
  // the L4 port tries, forcing full port unwildcarding. Off by default.
  bool icmp_port_trie_bug = false;

  static ClassifierConfig all_disabled() {
    return ClassifierConfig{false, false, false, false, false, false, false};
  }
};

// Fields that have a prefix trie.
inline constexpr std::array<FieldId, 6> kTrieFields = {
    FieldId::kNwSrc,   FieldId::kNwDst, FieldId::kIpv6Src,
    FieldId::kIpv6Dst, FieldId::kTpSrc, FieldId::kTpDst};
inline constexpr size_t kNumTrieFields = kTrieFields.size();

// One hash table per unique mask ("subtable"). Exposed for tests.
class Tuple {
 public:
  explicit Tuple(const FlowMask& mask);

  const FlowMask& mask() const noexcept { return mask_; }
  int32_t pri_max() const noexcept { return pri_max_; }
  size_t size() const noexcept { return n_rules_; }
  bool empty() const noexcept { return n_rules_ == 0; }

  // Prefix length of each trie field in this mask; -1 if non-prefix, 0 if
  // the field is not matched.
  int trie_plen(size_t trie_idx) const noexcept { return trie_plen_[trie_idx]; }

  // Number of stages this tuple uses (1 + index of last non-empty stage).
  size_t n_stages() const noexcept { return n_stages_; }

 private:
  friend class Classifier;

  void insert(Rule* rule);
  void remove(Rule* rule) noexcept;

  // Miniflow-style sparse hashing: only words with mask bits participate in
  // the hash (real flow masks touch 2-5 of the 15 key words). `upto_stage`
  // hashes the words of stages [0, upto_stage]; results chain incrementally
  // exactly like the dense scheme.
  uint64_t hash_stage(const FlowWords& src, size_t stage,
                      uint64_t basis) const noexcept {
    uint64_t h = basis;
    for (uint8_t w : active_words_[stage])
      h = hash_add64(h, src.w[w] & mask_.w[w]);
    return h;
  }
  // Hash over every masked word (the rule-table key hash).
  uint64_t full_hash(const FlowWords& src) const noexcept {
    uint64_t h = 0;
    for (size_t s = 0; s < kNumStages; ++s) h = hash_stage(src, s, h);
    return h;
  }

  // Staged lookup. On return *stage_searched is the index of the last stage
  // consulted (== n_stages_-1 when the final rule table was probed).
  const Rule* lookup(const FlowKey& pkt, bool staged,
                     size_t* stage_searched) const noexcept;

  // Metadata partition support.
  bool partitions_metadata() const noexcept { return partitions_metadata_; }
  bool partition_contains(uint64_t metadata) const noexcept {
    return metadata_values_.contains(hash_mix64(metadata));
  }

  void recompute_pri_max() noexcept;

  FlowMask mask_;
  size_t n_stages_ = 1;
  bool partitions_metadata_ = false;

  // Final table: masked key hash -> chain of rules (descending priority).
  HashBuckets<Rule*> rules_;
  size_t n_rules_ = 0;

  // Intermediate stage membership sets (stages [0, n_stages_-1)).
  std::array<HashCounter, kNumStages - 1> stage_sets_;

  // Metadata values present among rules (only if partitions_metadata_).
  HashCounter metadata_values_;

  // Rule count per priority, for pri_max maintenance.
  std::map<int32_t, uint32_t> prio_counts_;
  int32_t pri_max_ = 0;

  std::array<int, kNumTrieFields> trie_plen_{};

  // Indices of mask-active words, grouped by stage.
  std::array<std::vector<uint8_t>, kNumStages> active_words_;
};

class Classifier {
 public:
  explicit Classifier(ClassifierConfig cfg = {});
  ~Classifier();

  Classifier(const Classifier&) = delete;
  Classifier& operator=(const Classifier&) = delete;

  const ClassifierConfig& config() const noexcept { return cfg_; }

  // Inserts a rule. The rule must outlive its membership and must not be a
  // duplicate of an existing (match, priority) pair (see find_exact).
  void insert(Rule* rule);

  // Removes a rule previously inserted. O(1) plus trie maintenance.
  void remove(Rule* rule) noexcept;

  // Finds the rule with identical match and priority, if any.
  Rule* find_exact(const Match& match, int32_t priority) const noexcept;

  // Returns the highest-priority matching rule (or the first match found in
  // first_match_only mode), or nullptr. If `wc` is non-null, all consulted
  // key bits are OR-ed into it — the caching-aware classification algorithm.
  // If `n_searched` is non-null it receives the number of tuples whose hash
  // tables were probed by THIS call (a thread-safe alternative to diffing
  // the cumulative stats).
  //
  // The lookup path is const and data-race-free: it mutates nothing but the
  // atomic statistics counters, so any number of reader threads may call it
  // concurrently as long as no thread is mutating the classifier (RCU-style
  // single-writer publication; see datapath/mt_datapath.h).
  const Rule* lookup(const FlowKey& pkt, FlowWildcards* wc = nullptr,
                     uint32_t* n_searched = nullptr) const noexcept;

  size_t rule_count() const noexcept { return n_rules_; }
  size_t tuple_count() const noexcept { return tuples_.size(); }  // "masks"

  // Cumulative lookup statistics (reset with reset_stats). Returned by
  // value: the internal counters are atomics shared by concurrent readers.
  struct Stats {
    uint64_t lookups = 0;
    uint64_t tuples_searched = 0;   // tuples whose hash tables were probed
    uint64_t tuples_skipped = 0;    // skipped via tries or partitions
    uint64_t stage_terminations = 0;  // staged-lookup early misses
  };
  Stats stats() const noexcept {
    Stats s;
    s.lookups = stats_.lookups.load(std::memory_order_relaxed);
    s.tuples_searched = stats_.tuples_searched.load(std::memory_order_relaxed);
    s.tuples_skipped = stats_.tuples_skipped.load(std::memory_order_relaxed);
    s.stage_terminations =
        stats_.stage_terminations.load(std::memory_order_relaxed);
    return s;
  }
  void reset_stats() const noexcept {
    stats_.lookups.store(0, std::memory_order_relaxed);
    stats_.tuples_searched.store(0, std::memory_order_relaxed);
    stats_.tuples_skipped.store(0, std::memory_order_relaxed);
    stats_.stage_terminations.store(0, std::memory_order_relaxed);
  }

  // Visits every rule (dump order is unspecified).
  template <typename F>
  void for_each_rule(F&& f) const {
    for (const auto& t : tuples_)
      t->rules_.for_each([&](Rule* head) {
        for (Rule* r = head; r != nullptr; r = r->next_same_key_) f(r);
      });
  }

 private:
  struct TrieCtx;  // per-lookup lazily computed trie results

  Tuple* find_tuple(const FlowMask& mask) const noexcept;
  Tuple* get_tuple(const FlowMask& mask);

  // Trie bookkeeping on rule insert/remove.
  void trie_update(const Rule& rule, bool add);

  // Returns true if `tuple` can be skipped for `pkt` per the tries; updates
  // wildcards with the prefix bits that justified the skip.
  bool check_tries(const Tuple& tuple, const FlowKey& pkt, TrieCtx& ctx,
                   FlowWildcards* wc) const noexcept;

  // Re-sorts `sorted_` by pri_max. Called from the mutators (insert/remove)
  // so that lookup never writes anything but its atomic counters.
  void sort_tuples_if_dirty() noexcept;

  struct AtomicStats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> tuples_searched{0};
    std::atomic<uint64_t> tuples_skipped{0};
    std::atomic<uint64_t> stage_terminations{0};
  };

  ClassifierConfig cfg_;
  std::vector<std::unique_ptr<Tuple>> tuples_;       // owned
  std::vector<Tuple*> sorted_;                       // by pri_max desc
  bool sort_dirty_ = false;
  HashBuckets<Tuple*> tuples_by_mask_;
  size_t n_rules_ = 0;

  std::array<PrefixTrie, kNumTrieFields> tries_;
  std::array<size_t, kNumTrieFields> trie_icmp_rules_{};  // bug-mode poison

  mutable AtomicStats stats_;
};

}  // namespace ovs
