// Packet classifier facade over pluggable lookup engines.
//
// The paper's primary contribution (§3.2, §5) is the staged tuple-space-
// search classifier with caching-aware megaflow generation. This header now
// fronts that algorithm with a backend seam (mirroring datapath/dp_backend.h)
// so alternative lookup engines can be raced against it under identical
// call sites, differential fuzzing, and benchmarks:
//
//   * kStagedTss     — the paper's TSS with all four optimizations (tuple
//     priority sorting §5.2, staged lookup §5.3, prefix tracking §5.4,
//     metadata partitioning §5.5). The reference engine.
//   * kChainedTuple  — TupleChain-style: subtables totally ordered by
//     mask subsumption form chains; a per-level guide set over full-masked
//     rule hashes lets a lookup stop a whole chain on one miss instead of
//     probing every mask (see chain_engine.h for the soundness argument).
//   * kBloomGated    — staged TSS with a per-subtable single-hash counting
//     gate in front of the staged walk, plus the SIMD-friendly
//     structure-of-arrays lookup_batch path (staged_tss.h).
//
// All engines implement the same caching-aware contract: when a lookup is
// given a FlowWildcards accumulator, every key bit the decision depended on
// is OR-ed into it, so megaflows generated from any engine are sound.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "classifier/rule.h"
#include "packet/flow_key.h"

namespace ovs {

class ClassifierBackend;

enum class ClassifierEngine : uint8_t {
  kStagedTss = 0,   // paper baseline (§5)
  kChainedTuple,    // mask-subsumption chains with guide sets
  kBloomGated,      // staged TSS behind single-hash gates + batched lookup
};

const char* classifier_engine_name(ClassifierEngine engine) noexcept;

struct ClassifierConfig {
  bool priority_sorting = true;
  bool staged_lookup = true;
  bool prefix_tracking = true;       // IPv4/IPv6 address tries
  bool port_prefix_tracking = true;  // L4 port tries (§5.4 last paragraph)
  bool partitioning = true;          // metadata partitions (§5.5)
  // Megaflow-cache mode: entries are disjoint and priority-free, so a lookup
  // "can terminate as soon as it finds any match" (§4.2).
  bool first_match_only = false;
  // Injects the §7.1 outlier bug: any rule matching ICMP type/code poisons
  // the L4 port tries, forcing full port unwildcarding. Off by default.
  bool icmp_port_trie_bug = false;

  // Lookup engine behind the seam. Defaults to the paper baseline; the
  // trailing position keeps the historical brace-init below (and every
  // aggregate-init call site) valid.
  ClassifierEngine engine = ClassifierEngine::kStagedTss;

  // Per-tenant hard partitioning (DESIGN.md §14): rules whose match is
  // exact on metadata are segregated into one inner engine per metadata
  // value; rules without an exact metadata match share a common inner
  // engine. A lookup probes only the shared engine plus the packet's own
  // tenant engine, so one tenant's subtable explosion cannot lengthen
  // another tenant's probe sequence. Semantics-preserving: a rule exact on
  // metadata != the packet's metadata can never match, and the partition
  // routing is recorded by marking metadata exact in the wildcards (the
  // same soundness argument as §5.5 metadata partitions). Off by default
  // (bit-for-bit the flat engine).
  bool tenant_partition = false;

  static ClassifierConfig all_disabled() {
    return ClassifierConfig{false, false, false, false, false, false, false};
  }
};

// Fields that have a prefix trie.
inline constexpr std::array<FieldId, 6> kTrieFields = {
    FieldId::kNwSrc,   FieldId::kNwDst, FieldId::kIpv6Src,
    FieldId::kIpv6Dst, FieldId::kTpSrc, FieldId::kTpDst};
inline constexpr size_t kNumTrieFields = kTrieFields.size();

// Cumulative lookup statistics (reset with reset_stats). Returned by value:
// the engine-internal counters are atomics shared by concurrent readers.
struct ClassifierStats {
  uint64_t lookups = 0;
  uint64_t tuples_searched = 0;      // subtables whose hash tables were probed
  uint64_t tuples_skipped = 0;       // skipped via tries/partitions/gates
  uint64_t stage_terminations = 0;   // staged-lookup early misses
  uint64_t gate_probes = 0;          // kBloomGated: single-hash gate tests
  uint64_t guide_probes = 0;         // kChainedTuple: chain guide-set probes
};

class Classifier {
 public:
  explicit Classifier(ClassifierConfig cfg = {});
  ~Classifier();

  Classifier(const Classifier&) = delete;
  Classifier& operator=(const Classifier&) = delete;

  const ClassifierConfig& config() const noexcept { return cfg_; }

  // Inserts a rule. The rule must outlive its membership and must not be a
  // duplicate of an existing (match, priority) pair (see find_exact).
  void insert(Rule* rule);

  // Removes a rule previously inserted. O(1) plus index maintenance.
  void remove(Rule* rule) noexcept;

  // Finds the rule with identical match and priority, if any.
  Rule* find_exact(const Match& match, int32_t priority) const noexcept;

  // Returns the highest-priority matching rule (or the first match found in
  // first_match_only mode), or nullptr. If `wc` is non-null, all consulted
  // key bits are OR-ed into it — the caching-aware classification algorithm.
  // If `n_searched` is non-null it receives the number of subtables whose
  // hash tables were probed by THIS call (a thread-safe alternative to
  // diffing the cumulative stats).
  //
  // The lookup path is const and data-race-free: it mutates nothing but the
  // atomic statistics counters, so any number of reader threads may call it
  // concurrently as long as no thread is mutating the classifier (RCU-style
  // single-writer publication; see datapath/mt_datapath.h).
  const Rule* lookup(const FlowKey& pkt, FlowWildcards* wc = nullptr,
                     uint32_t* n_searched = nullptr) const noexcept;

  // Classifies `n` keys in one call: out[i] receives what lookup(keys[i])
  // would return, and (if `wcs` is non-null) wcs[i] accumulates exactly the
  // bits a scalar lookup would have consulted for keys[i]. Engines without a
  // native batch path fall back to a scalar loop; kBloomGated runs its
  // structure-of-arrays probe pipeline. Same thread-safety as lookup().
  void lookup_batch(const FlowKey* keys, size_t n, const Rule** out,
                    FlowWildcards* wcs = nullptr) const noexcept;

  size_t rule_count() const noexcept;
  size_t tuple_count() const noexcept;  // distinct masks ("subtables")
  size_t n_subtables() const noexcept;  // per-mask hash tables maintained
  // Structural bound on subtables a single lookup may probe (see
  // cls_backend.h); the tuple-explosion detector and bench read this.
  size_t max_probe_depth() const noexcept;

  using Stats = ClassifierStats;
  Stats stats() const noexcept;
  void reset_stats() const noexcept;

  // Visits every rule (dump order is unspecified).
  void for_each_rule(const std::function<void(Rule*)>& f) const;

  ClassifierBackend& backend() noexcept { return *backend_; }
  const ClassifierBackend& backend() const noexcept { return *backend_; }

 private:
  ClassifierConfig cfg_;
  std::unique_ptr<ClassifierBackend> backend_;
};

}  // namespace ovs
